package alisa

import (
	"context"
	"reflect"
	"testing"
)

// The deprecated free functions are thin shims over the compiled Engine.
// These tests pin the equivalence bit for bit: any drift between the two
// paths — results, event logs, or reports — is a regression.

func TestSimulateShimBitIdentical(t *testing.T) {
	cases := []Options{
		{Model: "opt-6.7b", Scheduler: "alisa", Batch: 8, Input: 64, Output: 128, KVSparsity: 0.8, KVBits: 8},
		{Model: "opt-6.7b", Scheduler: "flexgen", Batch: 8, Input: 64, Output: 128, KVBits: 16},
		{Model: "opt-6.7b", Profile: "H100-80GB", Scheduler: "vllm", Batch: 16, Input: 64, Output: 64, KVBits: 16},
		{Model: "opt-6.7b", Scheduler: "no-cache", Batch: 2, Input: 32, Output: 32, KVBits: 16},
	}
	for _, opts := range cases {
		shim, err := Simulate(opts)
		if err != nil {
			t.Fatalf("%+v: shim: %v", opts, err)
		}

		engOpts := []Option{
			WithScheduler(opts.Scheduler),
			WithKVSparsity(opts.KVSparsity),
			WithKVBits(opts.KVBits),
		}
		if opts.Profile != "" {
			engOpts = append(engOpts, WithProfile(opts.Profile))
		}
		eng, err := New(opts.Model, engOpts...)
		if err != nil {
			t.Fatalf("%+v: New: %v", opts, err)
		}
		direct, err := eng.Simulate(context.Background(), Shape{Batch: opts.Batch, Input: opts.Input, Output: opts.Output})
		if err != nil {
			t.Fatalf("%+v: engine: %v", opts, err)
		}
		if !reflect.DeepEqual(shim, direct) {
			t.Fatalf("%s/%s: shim and engine results diverged\nshim:   %+v\nengine: %+v",
				opts.Model, opts.Scheduler, shim, direct)
		}
	}
}

func TestServeShimBitIdentical(t *testing.T) {
	trace := PoissonTrace(12, 3, 9)
	cases := []ServeOptions{
		{Model: "opt-6.7b", Scheduler: "alisa", Trace: trace, KVSparsity: 0.8, KVBits: 8, MaxBatch: 6},
		{Model: "opt-6.7b", Scheduler: "vllm", Trace: trace, KVBits: 16},
		{Model: "opt-6.7b", Scheduler: "hf-accelerate", Trace: trace, KVBits: 16, SLOTTFT: 5, SLOTPOT: 0.2},
		// The zero-valued Scheduler selects the documented default
		// ("alisa"), like every other zero-valued field of the shim — it
		// must not leak into WithScheduler("") and fail compilation.
		{Model: "opt-6.7b", Scheduler: "", Trace: trace, KVBits: 16},
	}
	for _, opts := range cases {
		shim, err := Serve(opts)
		if err != nil {
			t.Fatalf("%+v: shim: %v", opts, err)
		}

		engOpts := []Option{
			WithKVSparsity(opts.KVSparsity),
		}
		if opts.Scheduler != "" {
			engOpts = append(engOpts, WithScheduler(opts.Scheduler))
		}
		if opts.KVBits != 0 {
			engOpts = append(engOpts, WithKVBits(opts.KVBits))
		}
		if opts.MaxBatch != 0 {
			engOpts = append(engOpts, WithMaxBatch(opts.MaxBatch))
		}
		if opts.SLOTTFT != 0 {
			engOpts = append(engOpts, WithSLO(opts.SLOTTFT, opts.SLOTPOT))
		}
		eng, err := New(opts.Model, engOpts...)
		if err != nil {
			t.Fatalf("%+v: New: %v", opts, err)
		}
		direct, err := eng.Serve(context.Background(), opts.Trace)
		if err != nil {
			t.Fatalf("%+v: engine: %v", opts, err)
		}
		if shim.RenderEventLog() != direct.RenderEventLog() {
			t.Fatalf("%s: shim and engine event logs diverged", opts.Scheduler)
		}
		if !reflect.DeepEqual(shim, direct) {
			t.Fatalf("%s: shim and engine serve results diverged\nshim:   %+v\nengine: %+v",
				opts.Scheduler, shim, direct)
		}
		if opts.Scheduler == "" && shim.Scheduler != "alisa" {
			t.Fatalf("zero-valued Scheduler ran %q, want the documented default \"alisa\"", shim.Scheduler)
		}
	}
}

func TestEvaluatePolicyShimBitIdentical(t *testing.T) {
	for _, policy := range []string{"dense", "local", "strided", "h2o", "swa"} {
		shim, err := EvaluatePolicy("opt-13b", policy, 0.8, 96, 42)
		if err != nil {
			t.Fatalf("%s: shim: %v", policy, err)
		}
		eng, err := New("opt-13b", WithKVSparsity(0.8), WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		direct, err := eng.EvaluatePolicy(context.Background(), policy, 96)
		if err != nil {
			t.Fatalf("%s: engine: %v", policy, err)
		}
		if !reflect.DeepEqual(shim, direct) {
			t.Fatalf("%s: shim %+v != engine %+v", policy, shim, direct)
		}
	}
	// The dense reference is the identity by definition: ρ ≡ 1 exactly,
	// not approximately (see PolicyReport.Spearman).
	dense, err := EvaluatePolicy("opt-13b", "dense", 0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dense.Spearman != 1 || dense.MeanRecall != 1 {
		t.Fatalf("dense reference not the identity: %+v", dense)
	}
}
