package alisa

import (
	"repro/internal/experiments"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/workload"
)

// Request is one timestamped serving request (see workload.Request).
type Request = workload.Request

// TraceWorkload is an arrival-ordered serving workload.
type TraceWorkload = workload.Trace

// PoissonTrace samples n requests at the given mean arrival rate
// (requests/second) with heterogeneous input/output lengths, deterministic
// in the seed.
func PoissonTrace(n int, rate float64, seed int64) TraceWorkload {
	return workload.PoissonTrace(n, rate, seed)
}

// UniformTrace returns n identical-shape requests at fixed spacing.
func UniformTrace(n int, spacing float64, input, output int) TraceWorkload {
	return workload.UniformTrace(n, spacing, input, output)
}

// ServeOptions configures one continuous-batching serving simulation.
type ServeOptions struct {
	// Model is a catalog name (see Models); Profile a hardware name (empty
	// selects the paper's pairing for the model scale).
	Model   string
	Profile string
	// Scheduler is the per-request KV placement policy: alisa, flexgen,
	// vllm, hf-accelerate, gpu-only, no-cache.
	Scheduler string

	Trace TraceWorkload

	KVSparsity float64
	KVBits     int

	// MaxBatch caps concurrent decode sequences (0 → 16). SLOTTFT/SLOTPOT
	// are the goodput service-level objectives (0 → 10 s / 0.5 s).
	MaxBatch int
	SLOTTFT  float64
	SLOTPOT  float64
}

// ServeResult is the outcome of a serving simulation; see serve.Result.
type ServeResult = serve.Result

// Serve runs a continuous-batching serving simulation: requests arrive on
// the trace timeline, a dynamic decode batch forms under admission
// control, and the chosen scheduler places each request's KV — the
// multi-request, heterogeneous-traffic counterpart of Simulate.
func Serve(opts ServeOptions) (*ServeResult, error) {
	mc, err := model.ByName(opts.Model)
	if err != nil {
		return nil, err
	}
	var prof memsim.Profile
	if opts.Profile == "" {
		prof = experiments.PaperProfile(mc)
	} else {
		prof, err = memsim.ProfileByName(opts.Profile)
		if err != nil {
			return nil, err
		}
	}
	return serve.Run(serve.Config{
		Model:      mc,
		Profile:    prof,
		Scheduler:  opts.Scheduler,
		Trace:      opts.Trace,
		KVSparsity: opts.KVSparsity,
		KVBits:     opts.KVBits,
		MaxBatch:   opts.MaxBatch,
		SLOTTFT:    opts.SLOTTFT,
		SLOTPOT:    opts.SLOTPOT,
	})
}
