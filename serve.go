package alisa

import (
	"context"

	"repro/internal/serve"
	"repro/internal/workload"
)

// Request is one timestamped serving request (see workload.Request).
type Request = workload.Request

// TraceWorkload is an arrival-ordered serving workload.
type TraceWorkload = workload.Trace

// NewPoissonTrace samples n requests at the given mean arrival rate
// (requests/second) with heterogeneous input/output lengths,
// deterministic in the seed. The arguments are validated: a non-positive
// request count or rate is an error, never a silently empty trace.
func NewPoissonTrace(n int, rate float64, seed int64) (TraceWorkload, error) {
	return workload.NewPoissonTrace(n, rate, seed)
}

// PoissonTrace is NewPoissonTrace for arguments known to be valid; it
// panics with the validation error otherwise.
func PoissonTrace(n int, rate float64, seed int64) TraceWorkload {
	return workload.PoissonTrace(n, rate, seed)
}

// NewUniformTrace returns n identical-shape requests at fixed spacing
// (0 means all arrive at once). A non-positive count or shape, or a
// negative spacing, is an error, never a silently degenerate trace.
func NewUniformTrace(n int, spacing float64, input, output int) (TraceWorkload, error) {
	return workload.NewUniformTrace(n, spacing, input, output)
}

// UniformTrace is NewUniformTrace for arguments known to be valid; it
// panics with the validation error otherwise.
func UniformTrace(n int, spacing float64, input, output int) TraceWorkload {
	return workload.UniformTrace(n, spacing, input, output)
}

// ServeOptions configures one continuous-batching serving simulation.
//
// Deprecated: ServeOptions is the one-shot configuration for the Serve
// shim. New code should compile an Engine once with New and functional
// options, then call Engine.Serve per trace.
type ServeOptions struct {
	// Model is a catalog name (see Models); Profile a hardware name (empty
	// selects the paper's pairing for the model scale).
	Model   string
	Profile string
	// Scheduler is the per-request KV placement policy: alisa, flexgen,
	// vllm, hf-accelerate, gpu-only, no-cache. Empty selects the default,
	// "alisa".
	Scheduler string

	Trace TraceWorkload

	KVSparsity float64
	KVBits     int

	// MaxBatch caps concurrent decode sequences (0 → 16). SLOTTFT/SLOTPOT
	// are the goodput service-level objectives (0 → 10 s / 0.5 s).
	MaxBatch int
	SLOTTFT  float64
	SLOTPOT  float64
}

// ServeResult is the outcome of a serving simulation; see serve.Result.
type ServeResult = serve.Result

// Serve runs a continuous-batching serving simulation: requests arrive on
// the trace timeline, a dynamic decode batch forms under admission
// control, and the chosen scheduler places each request's KV — the
// multi-request, heterogeneous-traffic counterpart of Simulate.
//
// Deprecated: Serve compiles a throwaway Engine per call. New code should
// call New once and Engine.Serve per trace; results for accepted
// configurations are bit-identical. Zero-valued Scheduler, KVBits,
// MaxBatch, SLOTTFT, and SLOTPOT select the documented defaults
// ("alisa", 16, 16, 10 s, 0.5 s), as they always have. As in Simulate,
// KVBits is now validated up front to {8, 16}: the INT4 setting is
// rejected rather than passed through. One behaviour change rides along
// with the engine's event-log switch: the human-readable
// ServeResult.EventLog is no longer captured by default (it is opt-in
// via New + WithEventLog(true)); metrics are unaffected.
func Serve(opts ServeOptions) (*ServeResult, error) {
	engineOpts := []Option{
		maybeProfile(opts.Profile),
		WithKVSparsity(opts.KVSparsity),
	}
	// The legacy zero value selected the default scheduler; the compiled
	// option rejects "", so translate only a non-empty name — like every
	// other zero-valued field of this shim.
	if opts.Scheduler != "" {
		engineOpts = append(engineOpts, WithScheduler(opts.Scheduler))
	}
	// The legacy zero values meant "default"; the compiled options are
	// explicit, so translate only non-zero fields.
	if opts.KVBits != 0 {
		engineOpts = append(engineOpts, WithKVBits(opts.KVBits))
	}
	if opts.MaxBatch != 0 {
		engineOpts = append(engineOpts, WithMaxBatch(opts.MaxBatch))
	}
	if opts.SLOTTFT != 0 || opts.SLOTPOT != 0 {
		ttft, tpot := opts.SLOTTFT, opts.SLOTPOT
		if ttft == 0 {
			ttft = 10
		}
		if tpot == 0 {
			tpot = 0.5
		}
		engineOpts = append(engineOpts, WithSLO(ttft, tpot))
	}
	e, err := New(opts.Model, engineOpts...)
	if err != nil {
		return nil, err
	}
	return e.Serve(context.Background(), opts.Trace)
}
