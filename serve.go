package alisa

import (
	"context"

	"repro/internal/serve"
	"repro/internal/workload"
)

// Request is one timestamped serving request (see workload.Request).
type Request = workload.Request

// TraceWorkload is an arrival-ordered serving workload.
type TraceWorkload = workload.Trace

// NewPoissonTrace samples n requests at the given mean arrival rate
// (requests/second) with heterogeneous input/output lengths,
// deterministic in the seed. The arguments are validated: a non-positive
// request count or rate is an error, never a silently empty trace.
func NewPoissonTrace(n int, rate float64, seed int64) (TraceWorkload, error) {
	return workload.NewPoissonTrace(n, rate, seed)
}

// PoissonTrace is NewPoissonTrace for arguments known to be valid; it
// panics with the validation error otherwise.
func PoissonTrace(n int, rate float64, seed int64) TraceWorkload {
	return workload.PoissonTrace(n, rate, seed)
}

// NewUniformTrace returns n identical-shape requests at fixed spacing
// (0 means all arrive at once). A non-positive count or shape, or a
// negative spacing, is an error, never a silently degenerate trace.
func NewUniformTrace(n int, spacing float64, input, output int) (TraceWorkload, error) {
	return workload.NewUniformTrace(n, spacing, input, output)
}

// UniformTrace is NewUniformTrace for arguments known to be valid; it
// panics with the validation error otherwise.
func UniformTrace(n int, spacing float64, input, output int) TraceWorkload {
	return workload.UniformTrace(n, spacing, input, output)
}

// ClosedClient is one deterministic closed-loop client script for
// Engine.ServeScripted: each Next call yields the client's next request
// — prompt token IDs, output length, think time — or ok=false when the
// script ends. The conversation and agent constructors below build the
// prefix-sharing workloads; any custom implementation works as long as
// Next is deterministic.
type ClosedClient = workload.ClosedClient

// NewConversationClients returns n multi-turn conversation clients of up
// to `turns` turns, each turn's prompt replaying the conversation's full
// growing history — per-client system prompt, earlier turns, and
// synthesized assistant replies — plus fresh user tokens. Sharing is
// within a conversation (clients never share prefixes), making it the
// canonical prefix-cache workload. think is the mean exponential think
// time between a completion and the client's next turn; maxSeq caps the
// history (a conversation that would overflow ends early; pass the
// model's MaxSeq). Deterministic in seed, with per-client RNG streams.
func NewConversationClients(n, turns int, think float64, maxSeq int, seed int64) []ClosedClient {
	return workload.NewConversationClients(n, turns, think, maxSeq, seed)
}

// NewAgentClients returns n agent-loop clients of up to `steps` steps:
// every step issues a short task prompt over one huge tool preamble
// shared by all clients — the high-hit-rate, cross-client sharing
// regime. Parameters as in NewConversationClients.
func NewAgentClients(n, steps int, think float64, maxSeq int, seed int64) []ClosedClient {
	return workload.NewAgentClients(n, steps, think, maxSeq, seed)
}

// NewRAGTrace returns an open-loop Poisson trace of n retrieval-
// augmented requests: a shared system preamble, one of a small pool of
// long documents (popularity-skewed), and a unique question — a
// long-context mixture with moderate prefix reuse. Deterministic in
// seed.
func NewRAGTrace(n int, rate float64, maxSeq int, seed int64) (TraceWorkload, error) {
	return workload.NewRAGTrace(n, rate, maxSeq, seed)
}

// NewConversationTrace returns an open-loop multi-turn trace whose
// conversations' turns interleave round-robin on one Poisson timeline —
// the fleet-routing workload, where keeping a conversation's turns on
// one replica decides the prefix hit rate. Deterministic in seed.
func NewConversationTrace(conversations, turns int, rate float64, maxSeq int, seed int64) (TraceWorkload, error) {
	return workload.NewConversationTrace(conversations, turns, rate, maxSeq, seed)
}

// ServeOptions configures one continuous-batching serving simulation.
//
// Deprecated: ServeOptions is the one-shot configuration for the Serve
// shim. New code should compile an Engine once with New and functional
// options, then call Engine.Serve per trace.
type ServeOptions struct {
	// Model is a catalog name (see Models); Profile a hardware name (empty
	// selects the paper's pairing for the model scale).
	Model   string
	Profile string
	// Scheduler is the per-request KV placement policy: alisa, flexgen,
	// vllm, hf-accelerate, gpu-only, no-cache. Empty selects the default,
	// "alisa".
	Scheduler string

	Trace TraceWorkload

	KVSparsity float64
	KVBits     int

	// MaxBatch caps concurrent decode sequences (0 → 16). SLOTTFT/SLOTPOT
	// are the goodput service-level objectives (0 → 10 s / 0.5 s).
	MaxBatch int
	SLOTTFT  float64
	SLOTPOT  float64
}

// ServeResult is the outcome of a serving simulation; see serve.Result.
type ServeResult = serve.Result

// Serve runs a continuous-batching serving simulation: requests arrive on
// the trace timeline, a dynamic decode batch forms under admission
// control, and the chosen scheduler places each request's KV — the
// multi-request, heterogeneous-traffic counterpart of Simulate.
//
// Deprecated: Serve compiles a throwaway Engine per call. New code should
// call New once and Engine.Serve per trace; results for accepted
// configurations are bit-identical. Zero-valued Scheduler, KVBits,
// MaxBatch, SLOTTFT, and SLOTPOT select the documented defaults
// ("alisa", 16, 16, 10 s, 0.5 s), as they always have. As in Simulate,
// KVBits is now validated up front to {8, 16}: the INT4 setting is
// rejected rather than passed through. One behaviour change rides along
// with the engine's event-log switch: the human-readable
// ServeResult.EventLog is no longer captured by default (it is opt-in
// via New + WithEventLog(true)); metrics are unaffected.
func Serve(opts ServeOptions) (*ServeResult, error) {
	engineOpts := []Option{
		maybeProfile(opts.Profile),
		WithKVSparsity(opts.KVSparsity),
	}
	// The legacy zero value selected the default scheduler; the compiled
	// option rejects "", so translate only a non-empty name — like every
	// other zero-valued field of this shim.
	if opts.Scheduler != "" {
		engineOpts = append(engineOpts, WithScheduler(opts.Scheduler))
	}
	// The legacy zero values meant "default"; the compiled options are
	// explicit, so translate only non-zero fields.
	if opts.KVBits != 0 {
		engineOpts = append(engineOpts, WithKVBits(opts.KVBits))
	}
	if opts.MaxBatch != 0 {
		engineOpts = append(engineOpts, WithMaxBatch(opts.MaxBatch))
	}
	if opts.SLOTTFT != 0 || opts.SLOTPOT != 0 {
		ttft, tpot := opts.SLOTTFT, opts.SLOTPOT
		if ttft == 0 {
			ttft = 10
		}
		if tpot == 0 {
			tpot = 0.5
		}
		engineOpts = append(engineOpts, WithSLO(ttft, tpot))
	}
	e, err := New(opts.Model, engineOpts...)
	if err != nil {
		return nil, err
	}
	return e.Serve(context.Background(), opts.Trace)
}
