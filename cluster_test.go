package alisa

import (
	"context"
	"errors"
	"testing"
)

// clusterEngine compiles the suite's fleet engine: the paper's
// sparse/INT8 alisa setting with a small batch cap.
func clusterEngine(t *testing.T, extra ...Option) *Engine {
	t.Helper()
	opts := append([]Option{WithKVSparsity(0.8), WithKVBits(8), WithMaxBatch(4)}, extra...)
	eng, err := New("opt-6.7b", opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestServeClusterAcrossRouters replays one trace across every
// registered policy through the public API: all requests complete, and
// the result carries the per-replica and fleet-level views.
func TestServeClusterAcrossRouters(t *testing.T) {
	eng := clusterEngine(t)
	tr := PoissonTrace(36, 6, 5)
	if len(ClusterRouters()) < 4 {
		t.Fatalf("routers %v, want at least 4", ClusterRouters())
	}
	for _, router := range ClusterRouters() {
		res, err := eng.ServeCluster(context.Background(), ClusterSpec{Replicas: 3, Router: router}, tr)
		if err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		if res.Completed != len(tr) {
			t.Fatalf("%s: completed %d of %d", router, res.Completed, len(tr))
		}
		if len(res.Replicas) != 3 {
			t.Fatalf("%s: %d replica results, want 3", router, len(res.Replicas))
		}
		if res.Window.Count == 0 {
			t.Fatalf("%s: empty fleet window", router)
		}
	}
}

// TestServeClusterDeterministic pins the public determinism contract:
// repeated ServeCluster calls with the same (trace, spec) produce
// bit-identical fingerprints.
func TestServeClusterDeterministic(t *testing.T) {
	eng := clusterEngine(t)
	tr := PoissonTrace(32, 7, 9)
	spec := ClusterSpec{Replicas: 2, Router: "least-outstanding"}
	a, err := eng.ServeCluster(context.Background(), spec, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.ServeCluster(context.Background(), spec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("two identical cluster runs diverged")
	}
}

// TestOpenClusterInteractive drives the Session-mirroring surface by
// hand: Push future arrivals, Advance to idle, inspect Snapshot and
// Status, Close for the final result — and verify closed-fleet
// transitions fail.
func TestOpenClusterInteractive(t *testing.T) {
	eng := clusterEngine(t)
	c, err := eng.OpenCluster(context.Background(), ClusterSpec{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 || c.Pending() != 0 || c.InFlight() != 0 {
		t.Fatalf("idle fleet: size %d pending %d inflight %d", c.Size(), c.Pending(), c.InFlight())
	}
	for _, r := range UniformTrace(6, 0.4, 64, 16) {
		if err := c.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	for {
		progressed, err := c.Advance()
		if err != nil {
			t.Fatal(err)
		}
		if !progressed {
			break
		}
	}
	if snap := c.Snapshot(); snap.Count != 6 {
		t.Fatalf("fleet window count %d, want 6", snap.Count)
	}
	status := c.Status()
	if len(status) != 2 {
		t.Fatalf("%d status entries, want 2", len(status))
	}
	perReplica := 0
	for _, st := range status {
		perReplica += st.Window.Count
	}
	if perReplica != 6 {
		t.Fatalf("per-replica windows hold %d, want 6", perReplica)
	}
	if c.Frontier() <= 0 {
		t.Fatalf("frontier %v after serving work", c.Frontier())
	}
	res, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 6 {
		t.Fatalf("completed %d of 6", res.Completed)
	}
	// Idempotent close, dead transitions.
	res2, err2 := c.Close()
	if err2 != nil || res2 != res {
		t.Fatal("Close not idempotent")
	}
	if err := c.Push(Request{ID: 99, Arrival: 0, Input: 8, Output: 4}); err == nil {
		t.Fatal("push accepted on closed fleet")
	}
	if _, err := c.Advance(); err == nil {
		t.Fatal("advance accepted on closed fleet")
	}
}

// TestClusterHeterogeneousProfiles pins the Profiles cycling rule:
// alternating tier names shape a mixed fleet through the public spec.
func TestClusterHeterogeneousProfiles(t *testing.T) {
	eng := clusterEngine(t)
	res, err := eng.ServeCluster(context.Background(),
		ClusterSpec{Replicas: 3, Profiles: []string{"V100-16GB", "V100-32GB"}},
		PoissonTrace(24, 6, 3))
	if err != nil {
		t.Fatal(err)
	}
	tiers := []string{res.Replicas[0].Tier, res.Replicas[1].Tier, res.Replicas[2].Tier}
	want := []string{"V100-16GB", "V100-32GB", "V100-16GB"}
	for i := range want {
		if tiers[i] != want[i] {
			t.Fatalf("tiers %v, want %v", tiers, want)
		}
	}
}

// TestClusterAutoscalePublic runs the autoscaler through the public
// spec: an unmeetable SLO forces growth to Max.
func TestClusterAutoscalePublic(t *testing.T) {
	eng := clusterEngine(t, WithSLO(1e-9, 0.5))
	res, err := eng.ServeCluster(context.Background(),
		ClusterSpec{
			Replicas:  1,
			Autoscale: &ClusterAutoscale{Min: 1, Max: 3, SLOTarget: 0.9, MinObs: 4},
		},
		PoissonTrace(40, 10, 21))
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleUps == 0 || res.PeakReplicas != 3 {
		t.Fatalf("scaleups %d peak %d, want growth to 3", res.ScaleUps, res.PeakReplicas)
	}
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40", res.Completed)
	}
}

// TestClusterValidationErrors sweeps the public fleet validation: every
// bad spec must fail with a ConfigError naming the offending field.
func TestClusterValidationErrors(t *testing.T) {
	eng := clusterEngine(t)
	ctx := context.Background()
	cases := []struct {
		name  string
		spec  ClusterSpec
		field string
	}{
		{"zero replicas", ClusterSpec{Replicas: 0}, "Replicas"},
		{"negative replicas", ClusterSpec{Replicas: -2}, "Replicas"},
		{"unknown router", ClusterSpec{Replicas: 1, Router: "nope"}, "Router"},
		{"unknown profile", ClusterSpec{Replicas: 1, Profiles: []string{"TPU-v9"}}, "Profile"},
		{"negative window", ClusterSpec{Replicas: 1, Window: -1}, "MetricsWindow"},
		{"bad autoscale", ClusterSpec{Replicas: 1, Autoscale: &ClusterAutoscale{Min: 0, Max: 2}}, "Autoscale"},
	}
	for _, tc := range cases {
		_, err := eng.OpenCluster(ctx, tc.spec)
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != tc.field {
			t.Fatalf("%s: err %v, want ConfigError on %s", tc.name, err, tc.field)
		}
		if _, err := eng.ServeCluster(ctx, tc.spec, PoissonTrace(4, 5, 1)); err == nil {
			t.Fatalf("%s: ServeCluster accepted bad spec", tc.name)
		}
	}
	if _, err := eng.ServeCluster(ctx, ClusterSpec{Replicas: 1}, nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// TestClusterObserverDelivery checks the engine's compiled Observer
// hears every replica's completions through the fleet tap chain.
func TestClusterObserverDelivery(t *testing.T) {
	done := 0
	eng := clusterEngine(t, WithObserver(ObserverFuncs{Completion: func(CompletionEvent) { done++ }}))
	res, err := eng.ServeCluster(context.Background(), ClusterSpec{Replicas: 2}, PoissonTrace(12, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if done != res.Completed || done != 12 {
		t.Fatalf("observer saw %d completions, result has %d, want 12", done, res.Completed)
	}
}

// TestClusterCancellation mirrors the Session cancellation contract at
// fleet level through the public API.
func TestClusterCancellation(t *testing.T) {
	eng := clusterEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := eng.ServeCluster(ctx, ClusterSpec{Replicas: 2}, PoissonTrace(8, 5, 4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled fleet returned no partial result")
	}
}
