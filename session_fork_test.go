package alisa

import (
	"context"
	"reflect"
	"testing"
)

// TestSessionFork pins the public fork contract: a fork that takes the
// same future as its parent reproduces the straight-line run bit for bit
// — final ServeResult, event log, and the rolling window at the branch
// point — while a fork pushed extra work diverges without disturbing
// either the parent or its sibling.
func TestSessionFork(t *testing.T) {
	trace := PoissonTrace(16, 3.0, 21)
	ctx := context.Background()
	open := func() (*Session, *Engine) {
		eng, err := New("opt-6.7b", sessionEngineOpts("alisa")...)
		if err != nil {
			t.Fatal(err)
		}
		s, err := eng.Open(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return s, eng
	}

	straightSess, _ := open()
	for _, r := range trace {
		if err := straightSess.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	straight, err := straightSess.Close()
	if err != nil {
		t.Fatal(err)
	}

	s, _ := open()
	for _, r := range trace {
		if err := s.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	if s.InFlight() == 0 {
		t.Fatal("fork point has no in-flight sequences; nothing exercised")
	}

	same, err := s.Fork()
	if err != nil {
		t.Fatal(err)
	}
	diverged, err := s.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Snapshot(), same.Snapshot()) {
		t.Error("fork's rolling window diverged from parent at the branch point")
	}
	if err := diverged.Push(Request{ID: 9001, Arrival: diverged.Clock(), Input: 64, Output: 8}); err != nil {
		t.Fatal(err)
	}

	if got, err := same.Close(); err != nil {
		t.Fatal(err)
	} else if !reflect.DeepEqual(got, straight) {
		t.Errorf("same-future fork diverged from straight-line run:\nfork:     %+v\nstraight: %+v", got, straight)
	}
	if got, err := diverged.Close(); err != nil {
		t.Fatal(err)
	} else if got.Completed != straight.Completed+1 {
		t.Errorf("diverged fork completed %d, want %d", got.Completed, straight.Completed+1)
	}
	if got, err := s.Close(); err != nil {
		t.Fatal(err)
	} else if !reflect.DeepEqual(got, straight) {
		t.Error("forking perturbed the parent session")
	}

	if _, err := s.Fork(); err == nil {
		t.Fatal("fork of a closed session succeeded")
	}
}

// TestWithExactMetricsScaleServe pins the engine-level threshold option:
// a scale-mode Serve reports no per-request records but identical
// order-independent aggregates, and the default threshold keeps ordinary
// traces on the exact path.
func TestWithExactMetricsScaleServe(t *testing.T) {
	trace := PoissonTrace(24, 3.0, 9)
	ctx := context.Background()
	exactEng, err := New("opt-6.7b", WithMaxBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := exactEng.Serve(ctx, trace)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Requests == nil {
		t.Fatal("default threshold pushed a 24-request trace into scale mode")
	}

	scaleEng, err := New("opt-6.7b", WithMaxBatch(8), WithExactMetrics(-1))
	if err != nil {
		t.Fatal(err)
	}
	scale, err := scaleEng.Serve(ctx, trace)
	if err != nil {
		t.Fatal(err)
	}
	if scale.Requests != nil {
		t.Fatalf("scale mode retained %d records", len(scale.Requests))
	}
	if scale.Completed != exact.Completed || scale.Makespan != exact.Makespan ||
		scale.Throughput != exact.Throughput || scale.Goodput != exact.Goodput ||
		scale.SLOAttainment != exact.SLOAttainment || scale.Preemptions != exact.Preemptions {
		t.Fatalf("scale-mode aggregates drifted:\nexact: %+v\nscale: %+v", exact, scale)
	}
}
