package alisa

import (
	"strings"
	"testing"
)

func TestSimulateHeadline(t *testing.T) {
	res, err := Simulate(Options{
		Model: "opt-6.7b", Scheduler: "alisa",
		Batch: 16, Input: 128, Output: 256,
		KVSparsity: 0.8, KVBits: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
}

func TestSimulateExplicitProfile(t *testing.T) {
	res, err := Simulate(Options{
		Model: "opt-6.7b", Profile: "H100-80GB", Scheduler: "gpu-only",
		Batch: 8, Input: 64, Output: 64, KVSparsity: 0, KVBits: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM {
		t.Fatal("8×128 tokens must fit an H100")
	}
}

func TestSimulateErrors(t *testing.T) {
	cases := []Options{
		{Model: "gpt-5", Scheduler: "alisa", Batch: 1, Input: 1, Output: 1, KVBits: 16},
		{Model: "opt-6.7b", Scheduler: "magic", Batch: 1, Input: 1, Output: 1, KVBits: 16},
		{Model: "opt-6.7b", Profile: "TPU", Scheduler: "alisa", Batch: 1, Input: 1, Output: 1, KVBits: 16},
		{Model: "opt-6.7b", Scheduler: "alisa", Batch: 0, Input: 1, Output: 1, KVBits: 16},
	}
	for i, opts := range cases {
		if _, err := Simulate(opts); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestNewPolicyNames(t *testing.T) {
	for _, name := range []string{"dense", "local", "strided", "swa", "h2o"} {
		p, err := NewPolicy(name, 0.5, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("Name() = %q, want %q", p.Name(), name)
		}
	}
	if _, err := NewPolicy("oracle", 0.5, 2); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestEvaluatePolicyOrdering(t *testing.T) {
	swa, err := EvaluatePolicy("opt-6.7b", "swa", 0.8, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	local, err := EvaluatePolicy("opt-6.7b", "local", 0.8, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if swa.MeanRecall <= local.MeanRecall {
		t.Fatalf("SWA recall %.3f should beat local %.3f", swa.MeanRecall, local.MeanRecall)
	}
	if swa.Spearman <= local.Spearman {
		t.Fatalf("SWA ρ %.3f should beat local %.3f", swa.Spearman, local.Spearman)
	}
	dense, err := EvaluatePolicy("opt-6.7b", "dense", 0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dense.MeanRecall != 1 || dense.Spearman != 1 {
		t.Fatalf("dense should be the identity reference: %+v", dense)
	}
}

func TestEvaluatePolicyErrors(t *testing.T) {
	if _, err := EvaluatePolicy("gpt-5", "swa", 0.8, 16, 1); err == nil {
		t.Fatal("expected model error")
	}
	if _, err := EvaluatePolicy("opt-6.7b", "magic", 0.8, 16, 1); err == nil {
		t.Fatal("expected policy error")
	}
	if _, err := EvaluatePolicy("opt-6.7b", "swa", 0.8, 0, 1); err == nil {
		t.Fatal("expected steps error")
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(Experiments()) < 13 {
		t.Fatalf("expected ≥13 experiments, got %d", len(Experiments()))
	}
	out, err := RunExperiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ALISA") {
		t.Fatalf("table1 render missing content:\n%s", out)
	}
	if _, err := RunExperiment("fig99"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestCatalogs(t *testing.T) {
	if len(Models()) != 8 {
		t.Fatalf("models = %v", Models())
	}
	if len(Schedulers()) != 5 {
		t.Fatalf("schedulers = %v", Schedulers())
	}
}

func TestServePublicAPI(t *testing.T) {
	res, err := Serve(ServeOptions{
		Model: "opt-6.7b", Scheduler: "alisa",
		Trace:      PoissonTrace(12, 2, 3),
		KVSparsity: 0.8, KVBits: 8,
		MaxBatch: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Requests) != 12 {
		t.Fatalf("completed %d of 12 requests", len(res.Requests))
	}
	if res.Goodput <= 0 || res.Throughput <= 0 {
		t.Fatalf("goodput %v / throughput %v not positive", res.Goodput, res.Throughput)
	}
	if res.TTFT.P99 <= 0 || res.TPOT.P50 <= 0 {
		t.Fatalf("latency summaries empty: TTFT %+v TPOT %+v", res.TTFT, res.TPOT)
	}
}

func TestServePublicAPIErrors(t *testing.T) {
	if _, err := Serve(ServeOptions{Model: "nope", Scheduler: "alisa", Trace: UniformTrace(1, 0, 8, 8), KVBits: 16}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := Serve(ServeOptions{Model: "opt-6.7b", Scheduler: "deepspeed-zero", Trace: UniformTrace(1, 0, 8, 8), KVBits: 16}); err == nil {
		t.Error("deepspeed-zero accepted as serving policy")
	}
}
