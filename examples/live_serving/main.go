// live_serving demonstrates the streaming serving surface: an
// interactive alisa.Session driven push-by-push instead of replaying a
// pre-materialized trace.
//
// Part 1 opens a session, subscribes to per-request lifecycle events
// (admission → first token → completion), pushes a burst of requests
// plus a straggler that arrives later, and polls the rolling metrics
// window between turns — the online tail-latency view a monitoring loop
// would read while traffic is still in flight.
//
// Part 2 runs the workload regime a static trace cannot express at all:
// closed-loop clients that issue their next request only when the
// previous one completes, producing a latency-vs-concurrency table
// (the table EXPERIMENTS.md reports).
package main

import (
	"context"
	"fmt"
	"log"

	alisa "repro"
	"repro/internal/textfmt"
)

func main() {
	ctx := context.Background()

	fmt.Println("== part 1: interactive session — push, advance, snapshot")
	fmt.Println()
	eng, err := alisa.New("opt-6.7b",
		alisa.WithKVSparsity(0.8), alisa.WithKVBits(8),
		alisa.WithMaxBatch(8), alisa.WithMetricsWindow(16))
	if err != nil {
		log.Fatal(err)
	}
	s, err := eng.Open(ctx)
	if err != nil {
		log.Fatal(err)
	}
	// Lifecycle events stream inline as the simulation advances.
	err = s.Subscribe(alisa.ObserverFuncs{
		Admission: func(e alisa.AdmissionEvent) {
			fmt.Printf("  t=%-9s admit  r%-2d in=%-4d out=%-3d batch=%d\n",
				textfmt.Seconds(e.Clock), e.Request, e.Input, e.Output, e.Batch)
		},
		Completion: func(e alisa.CompletionEvent) {
			fmt.Printf("  t=%-9s finish r%-2d ttft=%s tpot=%s\n",
				textfmt.Seconds(e.Clock), e.Request, textfmt.Seconds(e.TTFT), textfmt.Seconds(e.TPOT))
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A burst at t=0 plus a straggler pushed up front with a future
	// arrival — the session jumps its clock to it when the burst drains.
	for i := 0; i < 6; i++ {
		if err := s.Push(alisa.Request{ID: i, Arrival: 0, Input: 128, Output: 48}); err != nil {
			log.Fatal(err)
		}
	}
	if err := s.Push(alisa.Request{ID: 6, Arrival: 30, Input: 512, Output: 64}); err != nil {
		log.Fatal(err)
	}

	turns := 0
	for {
		progressed, err := s.Advance()
		if err != nil {
			log.Fatal(err)
		}
		if !progressed {
			break
		}
		turns++
		if turns%24 == 0 {
			if snap := s.Snapshot(); snap.Count > 0 {
				fmt.Printf("  -- window after %d turns: %d done, TTFT p99 %s, TPOT p99 %s, SLO %.0f%%\n",
					turns, snap.Count, textfmt.Seconds(snap.TTFT.P99), textfmt.Seconds(snap.TPOT.P99), snap.SLOAttainment*100)
			}
		}
	}
	res, err := s.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  closed after %d turns: %d requests, throughput %.1f tok/s, TTFT p99 %s\n\n",
		turns, len(res.Requests), res.Throughput, textfmt.Seconds(res.TTFT.P99))

	fmt.Println("== part 2: closed-loop clients — latency vs concurrency")
	fmt.Println()
	tb := textfmt.NewTable("clients", "tput tok/s", "TTFT p50", "TTFT p99", "TPOT p99", "E2E p50", "batch")
	for _, clients := range []int{1, 2, 4, 8, 16} {
		r, err := eng.ServeClosedLoop(ctx, alisa.ClosedLoop{
			Clients: clients, Requests: 48, ThinkTime: 0.25, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(fmt.Sprint(clients),
			fmt.Sprintf("%.1f", r.Throughput),
			textfmt.Seconds(r.TTFT.P50), textfmt.Seconds(r.TTFT.P99),
			textfmt.Seconds(r.TPOT.P99), textfmt.Seconds(r.E2E.P50),
			fmt.Sprintf("%.1f", r.MeanBatch))
	}
	fmt.Println(tb.String())
	fmt.Println("offered load adapts to system speed: throughput rises with concurrency")
	fmt.Println("until the decode batch saturates, then latency absorbs the pressure.")
}
