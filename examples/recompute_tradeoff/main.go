// Recompute trade-off: the paper's Fig. 12(b) scenario — on a fast GPU,
// deleting old KV from CPU memory and recomputing it on demand beats
// fetching it over PCIe. This example shows the per-token economics, the
// offline optimizer's resulting {α, β, p1, p2}, and the end-to-end effect
// of disabling Phase III.
//
//	go run ./examples/recompute_tradeoff
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/textfmt"
)

func main() {
	mc := model.MustByName("opt-30b")
	prof := experiments.PaperProfile(mc)
	cost := costmodel.New(prof)
	const batch = 64

	// Per-token economics (Table II's Tr vs Tm): recomputing one token
	// position vs fetching its KV over PCIe.
	recompute := cost.RecomputeTime(mc, batch, 1)
	fetch := float64(batch*int(mc.KVBytesPerToken(2))) / prof.PCIeBandwidth
	fmt.Printf("%s on %s, batch %d, FP16 KV\n\n", mc.Name, prof.Name, batch)
	fmt.Printf("per token position:  recompute %s   vs   PCIe fetch %s\n",
		textfmt.Seconds(recompute), textfmt.Seconds(fetch))
	if recompute < fetch {
		fmt.Println("→ recomputation wins per token; Phase III should engage.")
	} else {
		fmt.Println("→ fetching wins per token; the optimizer should keep β = 0.")
	}

	// What the offline optimizer concludes (Eq. 5 greedy search).
	sys := memsim.NewSystem(prof)
	ctx := &sched.Context{
		Sys: sys, Cost: cost, Model: mc,
		Batch: batch, Input: 128, Output: 512,
		CachingRatio: 0.2, KVBits: 16,
	}
	must(sys.AllocGPU(prof.ReserveBytes))
	must(sys.AllocGPU(ctx.WeightBytes()))
	must(sys.AllocGPU(ctx.ActivationBytes()))
	p := sched.Optimize(ctx)
	fmt.Printf("\noptimizer:  α=%.2f  β=%.2f  p1=%d  p2=%d  (predicted %s)\n",
		p.Alpha, p.Beta, p.P1, p.P2, textfmt.Seconds(p.PredictedSeconds))

	// End-to-end: Phase III on vs off.
	run := func(s sched.Scheduler) *core.Result {
		res, err := core.Run(context.Background(), core.Config{
			Model: mc, Profile: prof, Scheduler: s,
			Batch: batch, Input: 128, Output: 512,
			KVSparsity: 0.8, KVBits: 16,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	with := run(sched.MustByName("alisa"))
	without := run(sched.NewAlisaManual(0, 512, false))
	fmt.Printf("\nend to end:  with recompute %s   without %s   (%.2fx)\n",
		textfmt.Seconds(with.TotalSeconds), textfmt.Seconds(without.TotalSeconds),
		without.TotalSeconds/with.TotalSeconds)
	fmt.Printf("with-recompute breakdown: %s\n", with.Breakdown)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
