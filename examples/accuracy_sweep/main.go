// Accuracy sweep: the paper's Fig. 8 scenario for one model — sweep KV
// sparsity for every attention method on a language-modeling and a
// question-answering dataset, printing the proxy metrics anchored at the
// published dense baselines.
//
//	go run ./examples/accuracy_sweep [model]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/textfmt"
)

func main() {
	modelName := "llama-13b"
	if len(os.Args) > 1 {
		modelName = os.Args[1]
	}

	cfg := experiments.Fig8Config{
		Models:     []string{modelName},
		Datasets:   []string{"wikitext-2", "piqa"},
		Sparsities: []float64{0, 0.2, 0.4, 0.6, 0.8},
		Steps:      256,
		Layers:     4,
	}
	res, err := experiments.Fig8(cfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, ds := range cfg.Datasets {
		task := "perplexity ↓"
		if ds == "piqa" {
			task = "accuracy ↑"
		}
		fmt.Printf("%s on %s (%s)\n\n", modelName, ds, task)
		hdr := []string{"method"}
		for _, sp := range cfg.Sparsities {
			hdr = append(hdr, fmt.Sprintf("%.0f%%", sp*100))
		}
		tb := textfmt.NewTable(hdr...)
		for _, method := range []string{"dense", "local", "strided", "swa", "alisa"} {
			row := []string{method}
			for _, sp := range cfg.Sparsities {
				c, ok := res.Cell(modelName, ds, method, sp)
				if !ok {
					row = append(row, "-")
					continue
				}
				row = append(row, fmt.Sprintf("%.3f", c.Metric))
			}
			tb.AddRow(row...)
		}
		fmt.Println(tb.String())
	}
	fmt.Println("Note: metrics are recall-anchored proxies (see DESIGN.md §1);")
	fmt.Println("the shape — SWA ≈ dense up to 80% sparsity, local/strided collapse — is the result.")
}
