// Quickstart: simulate ALISA against FlexGen on the paper's headline
// workload and evaluate Sparse Window Attention's accuracy mechanism,
// through the compiled-engine API: each alisa.New call resolves and
// validates its configuration once, and the run methods execute against
// that compiled state.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	alisa "repro"
)

func main() {
	ctx := context.Background()

	// System side: OPT-13B on its paper-paired V100-32G, batch 64,
	// Alpaca-shaped workload (s=128, n=512).
	shape := alisa.Shape{Batch: 64, Input: 128, Output: 512}

	fg, err := alisa.New("opt-13b", alisa.WithScheduler("flexgen"))
	if err != nil {
		log.Fatal(err)
	}
	flexgen, err := fg.Simulate(ctx, shape)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's headline setting: 80 % KV sparsity, INT8 KV.
	al, err := alisa.New("opt-13b",
		alisa.WithScheduler("alisa"),
		alisa.WithKVSparsity(0.8),
		alisa.WithKVBits(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	ours, err := al.Simulate(ctx, shape)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== system side (paper Fig. 9) ==")
	fmt.Printf("FlexGen: %8.1f tokens/s\n", flexgen.Throughput)
	fmt.Printf("ALISA:   %8.1f tokens/s  (%.2fx)\n",
		ours.Throughput, ours.Throughput/flexgen.Throughput)
	fmt.Printf("ALISA breakdown: %s\n\n", ours.Breakdown)

	// Algorithm side: how much dense-attention mass each policy retains
	// at 80 % KV sparsity, and how well it preserves the score ranking.
	// One engine compiles the calibrated attention process once; every
	// EvaluatePolicy call runs against it.
	eval, err := alisa.New("opt-13b", alisa.WithKVSparsity(0.8), alisa.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== algorithm side (paper Fig. 4) ==")
	for _, policy := range []string{"local", "strided", "h2o", "swa"} {
		rep, err := eval.EvaluatePolicy(ctx, policy, 256)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s recall=%.3f  Spearman ρ=%.3f\n",
			policy, rep.MeanRecall, rep.Spearman)
	}
}
