// Quickstart: simulate ALISA against FlexGen on the paper's headline
// workload and evaluate Sparse Window Attention's accuracy mechanism.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	alisa "repro"
)

func main() {
	// System side: OPT-13B on its paper-paired V100-32G, batch 64,
	// Alpaca-shaped workload (s=128, n=512).
	base := alisa.Options{
		Model: "opt-13b",
		Batch: 64, Input: 128, Output: 512,
	}

	fg := base
	fg.Scheduler = "flexgen"
	fg.KVSparsity, fg.KVBits = 0, 16
	flexgen, err := alisa.Simulate(fg)
	if err != nil {
		log.Fatal(err)
	}

	al := base
	al.Scheduler = "alisa"
	al.KVSparsity, al.KVBits = 0.8, 8 // the paper's headline setting
	ours, err := alisa.Simulate(al)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== system side (paper Fig. 9) ==")
	fmt.Printf("FlexGen: %8.1f tokens/s\n", flexgen.Throughput)
	fmt.Printf("ALISA:   %8.1f tokens/s  (%.2fx)\n",
		ours.Throughput, ours.Throughput/flexgen.Throughput)
	fmt.Printf("ALISA breakdown: %s\n\n", ours.Breakdown)

	// Algorithm side: how much dense-attention mass each policy retains
	// at 80 % KV sparsity, and how well it preserves the score ranking.
	fmt.Println("== algorithm side (paper Fig. 4) ==")
	for _, policy := range []string{"local", "strided", "h2o", "swa"} {
		rep, err := alisa.EvaluatePolicy("opt-13b", policy, 0.8, 256, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s recall=%.3f  Spearman ρ=%.3f\n",
			policy, rep.MeanRecall, rep.Spearman)
	}
}
