// SWA demo: the paper's Fig. 6 worked example on a live transformer — run
// the runnable decoder with Sparse Window Attention at a 40 % caching
// ratio, show which tokens the policy keeps at each step (locally static
// window + globally dynamic top-k by local attention sum), and verify the
// output stays close to dense attention while INT8 KV compression adds
// almost nothing on top.
//
//	go run ./examples/swa_demo
package main

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/attention"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/workload"
)

func main() {
	cfg := model.SmallConfig()
	dec := model.NewDecoder(cfg, 7)
	gen := workload.NewGenerator(cfg.Vocab, 3)
	tokens := gen.Prompt(24)

	// Dense reference pass.
	denseState := dec.NewState()
	var denseLogits []float32
	for _, tok := range tokens {
		denseLogits = dec.DecodeStep(denseState, tok, nil).Logits
	}

	// SWA pass at 40 % caching ratio (60 % KV sparsity), constructed
	// through the open policy registry exactly as the engine would.
	swa, err := attention.ByName("swa", 0.4, cfg.Layers)
	if err != nil {
		panic(err)
	}
	swaState := dec.NewState()
	var swaLogits []float32
	fmt.Println("SWA token selection on layer 0 (x = selected, . = skipped, * = current):")
	for step, tok := range tokens {
		sel := swa.Select(0, step)
		fmt.Printf("step %2d  %s\n", step, selectionPicture(sel, step))
		swaLogits = dec.DecodeStep(swaState, tok, swa).Logits
	}

	// INT8 round trip on the final KV cache, as the compression applies.
	for l := range swaState.K {
		quant.RoundTrip(swaState.K[l], 8)
		quant.RoundTrip(swaState.V[l], 8)
	}

	fmt.Println()
	fmt.Printf("dense vs SWA top-1 token:   %d vs %d\n", argmax(denseLogits), argmax(swaLogits))
	fmt.Printf("logit cosine similarity:    %.4f\n", cosine(denseLogits, swaLogits))
	fmt.Println()
	fmt.Println("The locally static window tracks the sequence tail; the globally")
	fmt.Println("dynamic half locks onto heavy-hitter positions via the local")
	fmt.Println("attention sum — the mixture of Fig. 6.")
}

// selectionPicture draws which cache positions the policy selected.
func selectionPicture(sel []int, n int) string {
	marks := make([]byte, n+1)
	for i := range marks {
		marks[i] = '.'
	}
	for _, s := range sel {
		marks[s] = 'x'
	}
	marks[n] = '*'
	var b strings.Builder
	for _, m := range marks {
		b.WriteByte(m)
		b.WriteByte(' ')
	}
	return b.String()
}

func argmax(v []float32) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func cosine(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	return dot / math.Sqrt(na*nb)
}
