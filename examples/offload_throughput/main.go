// Offload throughput: the paper's Fig. 9 scenario for one model — sweep
// batch sizes across all five serving systems on the Alpaca workload and
// print the throughput matrix with OOM markers. Each system's engine is
// compiled once and reused across the whole batch sweep.
//
//	go run ./examples/offload_throughput [model]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	alisa "repro"
	"repro/internal/textfmt"
)

func main() {
	modelName := "opt-6.7b"
	if len(os.Args) > 1 {
		modelName = os.Args[1]
	}

	ctx := context.Background()
	batches := []int{4, 8, 16, 32, 64}
	systems := alisa.Schedulers()

	hdr := []string{"system"}
	for _, b := range batches {
		hdr = append(hdr, fmt.Sprintf("b=%d", b))
	}
	tb := textfmt.NewTable(hdr...)

	for _, system := range systems {
		opts := []alisa.Option{alisa.WithScheduler(system)}
		if system == "alisa" {
			opts = append(opts, alisa.WithKVSparsity(0.8), alisa.WithKVBits(8))
		}
		eng, err := alisa.New(modelName, opts...)
		if err != nil {
			log.Fatal(err)
		}

		row := []string{system}
		for _, batch := range batches {
			res, err := eng.Simulate(ctx, alisa.Shape{Batch: batch, Input: 128, Output: 512})
			switch {
			case err == nil:
				row = append(row, fmt.Sprintf("%.1f", res.Throughput))
			case res != nil && res.OOM:
				row = append(row, "OOM")
			default:
				log.Fatalf("%s b=%d: %v", system, batch, err)
			}
		}
		tb.AddRow(row...)
	}

	fmt.Printf("throughput (tokens/s) — %s, Alpaca workload (s=128, n=512)\n", modelName)
	fmt.Printf("ALISA at 80%% KV sparsity with INT8 KV; baselines dense FP16\n\n")
	fmt.Println(tb.String())
}
