// Offload throughput: the paper's Fig. 9 scenario for one model — sweep
// batch sizes across all five serving systems on the Alpaca workload and
// print the throughput matrix with OOM markers.
//
//	go run ./examples/offload_throughput [model]
package main

import (
	"fmt"
	"log"
	"os"

	alisa "repro"
	"repro/internal/textfmt"
)

func main() {
	modelName := "opt-6.7b"
	if len(os.Args) > 1 {
		modelName = os.Args[1]
	}

	batches := []int{4, 8, 16, 32, 64}
	systems := alisa.Schedulers()

	hdr := []string{"system"}
	for _, b := range batches {
		hdr = append(hdr, fmt.Sprintf("b=%d", b))
	}
	tb := textfmt.NewTable(hdr...)

	for _, system := range systems {
		row := []string{system}
		for _, batch := range batches {
			opts := alisa.Options{
				Model: modelName, Scheduler: system,
				Batch: batch, Input: 128, Output: 512,
				KVSparsity: 0, KVBits: 16,
			}
			if system == "alisa" {
				opts.KVSparsity, opts.KVBits = 0.8, 8
			}
			res, err := alisa.Simulate(opts)
			switch {
			case err == nil:
				row = append(row, fmt.Sprintf("%.1f", res.Throughput))
			case res != nil && res.OOM:
				row = append(row, "OOM")
			default:
				log.Fatalf("%s b=%d: %v", system, batch, err)
			}
		}
		tb.AddRow(row...)
	}

	fmt.Printf("throughput (tokens/s) — %s, Alpaca workload (s=128, n=512)\n", modelName)
	fmt.Printf("ALISA at 80%% KV sparsity with INT8 KV; baselines dense FP16\n\n")
	fmt.Println(tb.String())
}
