package main

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	ok := func(addr string, scale float64, buffer int, onFull string, drain time.Duration) func(*testing.T) {
		return func(t *testing.T) {
			if err := validateFlags(addr, scale, buffer, onFull, drain); err != nil {
				t.Fatalf("validateFlags: unexpected error %v", err)
			}
		}
	}
	bad := func(addr string, scale float64, buffer int, onFull string, drain time.Duration, wantErr string) func(*testing.T) {
		return func(t *testing.T) {
			err := validateFlags(addr, scale, buffer, onFull, drain)
			if err == nil {
				t.Fatal("validateFlags: want error, got nil")
			}
			if !strings.Contains(err.Error(), wantErr) {
				t.Fatalf("validateFlags: error %q does not contain %q", err, wantErr)
			}
		}
	}

	t.Run("defaults", ok("127.0.0.1:8080", 1, 64, "drop", 30*time.Second))
	t.Run("ephemeral port", ok("127.0.0.1:0", 0, 1, "block", time.Second))
	t.Run("wildcard host", ok(":9090", 100, 8, "drop", time.Minute))

	t.Run("missing port", bad("127.0.0.1", 1, 64, "drop", time.Second, "-addr must be host:port"))
	t.Run("negative port", bad("127.0.0.1:-1", 1, 64, "drop", time.Second, "port must be in [0, 65535]"))
	t.Run("oversized port", bad("127.0.0.1:70000", 1, 64, "drop", time.Second, "port must be in [0, 65535]"))
	t.Run("textual port", bad("127.0.0.1:http", 1, 64, "drop", time.Second, "port must be numeric"))
	t.Run("negative time scale", bad("127.0.0.1:8080", -1, 64, "drop", time.Second, "-time-scale"))
	t.Run("NaN time scale", bad("127.0.0.1:8080", math.NaN(), 64, "drop", time.Second, "-time-scale"))
	t.Run("Inf time scale", bad("127.0.0.1:8080", math.Inf(1), 64, "drop", time.Second, "-time-scale"))
	t.Run("zero buffer", bad("127.0.0.1:8080", 1, 0, "drop", time.Second, "-buffer must be positive"))
	t.Run("negative buffer", bad("127.0.0.1:8080", 1, -4, "drop", time.Second, "-buffer must be positive"))
	t.Run("unknown on-full", bad("127.0.0.1:8080", 1, 64, "oldest", time.Second, `unknown -on-full "oldest"`))
	t.Run("zero drain timeout", bad("127.0.0.1:8080", 1, 64, "drop", 0, "-drain-timeout must be positive"))
}
