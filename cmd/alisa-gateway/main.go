// Command alisa-gateway serves the streaming simulation over HTTP: an
// OpenAI-style completions endpoint where every request becomes a
// Session.Push and lifecycle events (admission, first token, per-token,
// completion) stream back as server-sent events, plus a rolling-window
// metrics snapshot and health/readiness probes. It turns the simulator
// into a load-testable service: point any HTTP load generator at it and
// measure wall-clock TTFT against offered request rate.
//
// Usage:
//
//	alisa-gateway                                # real-time pacing on :8080
//	alisa-gateway -time-scale 10                 # simulation runs 10× wall clock
//	alisa-gateway -time-scale 0                  # as fast as possible
//	alisa-gateway -addr 127.0.0.1:0              # ephemeral port (printed on stdout)
//	alisa-gateway -on-full block -buffer 16      # backpressure slow consumers
//	alisa-gateway -hold                          # gate the clock until
//	                                             # POST /v1/admin/release
//
// Endpoints:
//
//	POST /v1/completions     {"input_tokens":128,"max_tokens":32,"stream":true}
//	GET  /v1/metrics         rolling TTFT/TPOT/E2E percentiles + goodput
//	GET  /healthz            process liveness
//	GET  /readyz             503 once draining
//	POST /v1/admin/release   open a -hold gateway
//
// SIGTERM/SIGINT drains gracefully: admission stops (readyz flips to
// 503), every pending and in-flight request runs to completion with its
// SSE stream flushed, and the final metrics are logged. A drain that
// outlives -drain-timeout is aborted with partial metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	alisa "repro"
	"repro/internal/gateway"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 = ephemeral; bound address printed on stdout)")
	modelName := flag.String("model", "opt-6.7b", "model catalog name")
	profile := flag.String("profile", "", "hardware profile (empty = paper default for the model)")
	sched := flag.String("sched", "alisa", "KV placement scheduler")
	sparsity := flag.Float64("sparsity", 0.8, "ALISA KV sparsity")
	bits := flag.Int("bits", 8, "ALISA KV bits")
	maxBatch := flag.Int("max-batch", 8, "decode batch cap")
	sloTTFT := flag.Float64("slo-ttft", 10, "TTFT SLO seconds (simulated)")
	sloTPOT := flag.Float64("slo-tpot", 0.5, "TPOT SLO seconds/token (simulated)")
	window := flag.Int("window", 256, "rolling metrics window, completions")
	timeScale := flag.Float64("time-scale", 1, "simulated seconds per wall second (0 = as fast as possible)")
	buffer := flag.Int("buffer", 64, "per-connection event buffer, events")
	onFull := flag.String("on-full", "drop", "slow-consumer policy: drop (oldest, with marker) or block (backpressure)")
	hold := flag.Bool("hold", false, "gate the simulated clock until POST /v1/admin/release")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM before aborting")
	flag.Parse()

	if err := validateFlags(*addr, *timeScale, *buffer, *onFull, *drainTimeout); err != nil {
		fatal(err)
	}
	policy := gateway.DropOldest
	if *onFull == "block" {
		policy = gateway.Block
	}

	eng, err := alisa.New(*modelName,
		engineOpts(*profile, *sched, *sparsity, *bits, *maxBatch, *sloTTFT, *sloTPOT, *window)...)
	if err != nil {
		fatal(err)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	gw, err := gateway.New(gateway.Config{
		Engine: eng, TimeScale: *timeScale,
		Buffer: *buffer, OnFull: policy, Hold: *hold, Logger: logger,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("alisa-gateway listening on http://%s\n", ln.Addr())
	logger.Info("gateway: serving", "addr", ln.Addr().String(),
		"model", eng.Model(), "profile", eng.Profile(), "sched", eng.Scheduler(),
		"time_scale", *timeScale, "on_full", policy.String(), "buffer", *buffer, "hold", *hold)

	srv := &http.Server{Handler: gw}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-sigCtx.Done():
	case err := <-serveErr:
		fatal(err)
	}

	// Graceful drain: stop admitting, finish everything in flight (SSE
	// streams flush as their requests complete), then close the session
	// and log the final metrics. Past the budget, abort with partial
	// metrics rather than hang.
	logger.Info("gateway: signal received, draining", "timeout", *drainTimeout)
	drained := make(chan struct{})
	go func() {
		if _, err := gw.Drain(context.Background()); err != nil {
			logger.Error("gateway: drain", "err", err)
		}
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(*drainTimeout):
		logger.Error("gateway: drain timeout, aborting")
		gw.Abort()
		<-drained
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Error("gateway: http shutdown", "err", err)
	}
	logger.Info("gateway: stopped")
}

// engineOpts assembles the engine options shared with the other CLIs.
func engineOpts(profile, sched string, sparsity float64, bits, maxBatch int, sloTTFT, sloTPOT float64, window int) []alisa.Option {
	opts := []alisa.Option{
		alisa.WithScheduler(sched),
		alisa.WithKVSparsity(sparsity),
		alisa.WithKVBits(bits),
		alisa.WithMaxBatch(maxBatch),
		alisa.WithSLO(sloTTFT, sloTPOT),
		alisa.WithMetricsWindow(window),
	}
	if profile != "" {
		opts = append(opts, alisa.WithProfile(profile))
	}
	return opts
}

// validateFlags rejects unserviceable gateway flags up front, in the
// shared table-tested idiom of the other CLIs.
func validateFlags(addr string, timeScale float64, buffer int, onFull string, drainTimeout time.Duration) error {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-addr must be host:port, got %q: %v", addr, err)
	}
	_ = host
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return fmt.Errorf("-addr port must be numeric, got %q", portStr)
	}
	if port < 0 || port > 65535 {
		return fmt.Errorf("-addr port must be in [0, 65535], got %d", port)
	}
	if timeScale < 0 || math.IsNaN(timeScale) || math.IsInf(timeScale, 0) {
		return fmt.Errorf("-time-scale must be a finite dilation ≥ 0 (0 = as fast as possible), got %v", timeScale)
	}
	if buffer <= 0 {
		return fmt.Errorf("-buffer must be positive, got %d", buffer)
	}
	if onFull != "drop" && onFull != "block" {
		return fmt.Errorf("unknown -on-full %q (want drop or block)", onFull)
	}
	if drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", drainTimeout)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alisa-gateway:", err)
	os.Exit(1)
}
