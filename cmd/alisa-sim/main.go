// Command alisa-sim runs one end-to-end inference simulation and prints
// the throughput, execution-time breakdown, memory trajectory, and (for
// ALISA) the scheduling phases.
//
// Example:
//
//	alisa-sim -model opt-13b -scheduler alisa -batch 64 -sparsity 0.8 -kvbits 8
//	alisa-sim -model opt-6.7b -scheduler flexgen -batch 32
//	alisa-sim -progress   # stream per-step progress to stderr
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	alisa "repro"
	"repro/internal/textfmt"
)

func main() {
	modelName := flag.String("model", "opt-6.7b", "model: "+strings.Join(alisa.Models(), ", "))
	profile := flag.String("profile", "", "hardware profile (default: paper pairing for the model)")
	scheduler := flag.String("scheduler", "alisa", "scheduler: "+strings.Join(alisa.Schedulers(), ", "))
	batch := flag.Int("batch", 32, "batch size")
	input := flag.Int("input", 128, "prompt length s")
	output := flag.Int("output", 512, "generated tokens n")
	sparsity := flag.Float64("sparsity", 0.8, "KV sparsity in [0,1)")
	kvbits := flag.Int("kvbits", 8, "KV precision: 16 or 8")
	progress := flag.Bool("progress", false, "stream per-step progress to stderr")
	flag.Parse()

	opts := []alisa.Option{
		alisa.WithScheduler(*scheduler),
		alisa.WithKVSparsity(*sparsity),
		alisa.WithKVBits(*kvbits),
	}
	if *profile != "" {
		opts = append(opts, alisa.WithProfile(*profile))
	}
	if *progress {
		opts = append(opts, alisa.WithObserver(alisa.ObserverFuncs{
			Step: func(e alisa.StepEvent) {
				if e.Step%64 == 0 {
					fmt.Fprintf(os.Stderr, "step %d: t=%s batch=%d\n",
						e.Step, textfmt.Seconds(e.Clock), e.Batch)
				}
			},
		}))
	}
	eng, err := alisa.New(*modelName, opts...)
	if err != nil {
		fatal(err)
	}

	// Ctrl-C cancels the run and reports the partial measurements.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := eng.Simulate(ctx, alisa.Shape{Batch: *batch, Input: *input, Output: *output})
	if err != nil {
		switch {
		case res != nil && res.OOM:
			fmt.Printf("result: OOM — %v\n", err)
			os.Exit(0)
		case res != nil && ctx.Err() != nil:
			fmt.Printf("cancelled after %s simulated (%d steps measured)\n",
				textfmt.Seconds(res.TotalSeconds), len(res.Steps))
			os.Exit(0)
		}
		fatal(err)
	}

	fmt.Printf("model=%s profile=%s scheduler=%s batch=%d s=%d n=%d sparsity=%.0f%% kv=INT%d\n\n",
		eng.Model(), eng.Profile(), eng.Scheduler(), *batch, *input, *output,
		*sparsity*100, *kvbits)
	fmt.Printf("throughput:  %.1f tokens/s (%d tokens in %s)\n",
		res.Throughput, res.Tokens, textfmt.Seconds(res.TotalSeconds))
	if len(res.Waves) > 1 {
		fmt.Printf("waves:       %v\n", res.Waves)
	}
	fmt.Printf("breakdown:   %s\n", res.Breakdown)
	fmt.Printf("peak memory: GPU %s, CPU %s\n",
		textfmt.Bytes(res.Memory.PeakGPU()), textfmt.Bytes(res.Memory.PeakCPU()))
	if res.Phase2Start >= 0 {
		fmt.Printf("phase II:    from decode step %d\n", res.Phase2Start)
	}
	if res.Phase3Start >= 0 {
		fmt.Printf("phase III:   from decode step %d\n", res.Phase3Start)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alisa-sim:", err)
	os.Exit(1)
}
