// Command alisa-sim runs one end-to-end inference simulation and prints
// the throughput, execution-time breakdown, memory trajectory, and (for
// ALISA) the scheduling phases.
//
// Example:
//
//	alisa-sim -model opt-13b -scheduler alisa -batch 64 -sparsity 0.8 -kvbits 8
//	alisa-sim -model opt-6.7b -scheduler flexgen -batch 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	alisa "repro"
	"repro/internal/textfmt"
)

func main() {
	opts := alisa.Options{}
	flag.StringVar(&opts.Model, "model", "opt-6.7b", "model: "+strings.Join(alisa.Models(), ", "))
	flag.StringVar(&opts.Profile, "profile", "", "hardware profile (default: paper pairing for the model)")
	flag.StringVar(&opts.Scheduler, "scheduler", "alisa", "scheduler: "+strings.Join(alisa.Schedulers(), ", "))
	flag.IntVar(&opts.Batch, "batch", 32, "batch size")
	flag.IntVar(&opts.Input, "input", 128, "prompt length s")
	flag.IntVar(&opts.Output, "output", 512, "generated tokens n")
	flag.Float64Var(&opts.KVSparsity, "sparsity", 0.8, "KV sparsity in [0,1)")
	flag.IntVar(&opts.KVBits, "kvbits", 8, "KV precision: 16 or 8")
	flag.Parse()

	res, err := alisa.Simulate(opts)
	if err != nil {
		if res != nil && res.OOM {
			fmt.Printf("result: OOM — %v\n", err)
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "alisa-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("model=%s scheduler=%s batch=%d s=%d n=%d sparsity=%.0f%% kv=INT%d\n\n",
		opts.Model, opts.Scheduler, opts.Batch, opts.Input, opts.Output,
		opts.KVSparsity*100, opts.KVBits)
	fmt.Printf("throughput:  %.1f tokens/s (%d tokens in %s)\n",
		res.Throughput, res.Tokens, textfmt.Seconds(res.TotalSeconds))
	if len(res.Waves) > 1 {
		fmt.Printf("waves:       %v\n", res.Waves)
	}
	fmt.Printf("breakdown:   %s\n", res.Breakdown)
	fmt.Printf("peak memory: GPU %s, CPU %s\n",
		textfmt.Bytes(res.Memory.PeakGPU()), textfmt.Bytes(res.Memory.PeakCPU()))
	if res.Phase2Start >= 0 {
		fmt.Printf("phase II:    from decode step %d\n", res.Phase2Start)
	}
	if res.Phase3Start >= 0 {
		fmt.Printf("phase III:   from decode step %d\n", res.Phase3Start)
	}
}
