package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSuiteComposition pins the production analyzer set: dropping one
// from the gate is a contract change, not a refactor.
func TestSuiteComposition(t *testing.T) {
	want := []string{"determinism", "hotpath", "registry", "cancellation"}
	got := suite()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// TestRunExitCodes drives the driver itself over a throwaway module
// that shadows the repro module path, proving the acceptance case
// end to end: a reintroduced time.Now in internal/serve makes the
// gate exit non-zero, and removing it brings the exit back to 0.
func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro\n\ngo 1.24\n")
	write("internal/serve/clock.go", `package serve

import "time"

func stamp() int64 { return time.Now().UnixNano() }
`)

	var out strings.Builder
	if code := run(&out, dir, []string{"./..."}); code != 1 {
		t.Fatalf("dirty tree: run = %d, want 1 (output: %s)", code, out.String())
	}
	if !strings.Contains(out.String(), "[determinism]") || !strings.Contains(out.String(), "time.Now") {
		t.Fatalf("dirty tree output missing determinism finding:\n%s", out.String())
	}

	write("internal/serve/clock.go", `package serve

func stamp() int64 { return 0 }
`)
	out.Reset()
	if code := run(&out, dir, []string{"./..."}); code != 0 {
		t.Fatalf("clean tree: run = %d, want 0 (output: %s)", code, out.String())
	}

	out.Reset()
	if code := run(&out, dir, []string{"./no/such/pkg"}); code != 2 {
		t.Fatalf("bad pattern: run = %d, want 2", code)
	}
}
