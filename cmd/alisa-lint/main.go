// Command alisa-lint is the repo's static-contract gate: a
// multichecker-style driver over the internal/analysis suite. It loads
// the packages matched by its arguments (default ./...), runs every
// analyzer in its production configuration, and exits non-zero when any
// finding survives suppression — CI runs it alongside vet and gofmt.
//
// Usage:
//
//	alisa-lint [-list] [packages]
//
// Findings print one per line, compiler-style:
//
//	internal/serve/serve.go:123:4: [determinism] time.Now reads the wall clock; ...
//
// A finding is suppressed by an //alisa:ignore comment naming the
// analyzer and a reason (DESIGN.md §12); reason-less suppressions are
// themselves findings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/cancellation"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/registry"
)

// suite is the production analyzer set, each in its default
// configuration: determinism scoped to the simulation packages, the
// rest module-wide.
func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		hotpath.Analyzer,
		registry.Analyzer,
		cancellation.Analyzer,
	}
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and their contracts, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: alisa-lint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range suite() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	os.Exit(run(os.Stdout, ".", flag.Args()))
}

// run executes the suite over the module rooted at dir and returns the
// process exit code: 0 clean, 1 findings, 2 load or internal error.
func run(out io.Writer, dir string, patterns []string) int {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	findings, err := analysis.Run(pkgs, suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "alisa-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
