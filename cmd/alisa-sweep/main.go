// Command alisa-sweep explores the scheduling-parameter space: for a model
// and workload it reports the offline optimizer's chosen {α, β, p1, p2}
// across KV sparsities, alongside the measured throughput at each point —
// the tooling behind §V-A's "greedy search ... done offline".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	alisa "repro"
	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/textfmt"
)

func main() {
	modelName := flag.String("model", "opt-13b", "model: "+strings.Join(alisa.Models(), ", "))
	batch := flag.Int("batch", 64, "batch size")
	input := flag.Int("input", 128, "prompt length")
	output := flag.Int("output", 512, "generated tokens")
	kvbits := flag.Int("kvbits", 8, "KV precision: 16 or 8")
	flag.Parse()

	mc, err := model.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	prof := experiments.PaperProfile(mc)
	fmt.Printf("optimizer sweep: %s on %s, b=%d s=%d n=%d INT%d\n\n",
		mc.Name, prof.Name, *batch, *input, *output, *kvbits)

	tb := textfmt.NewTable("KV sparsity", "alpha", "beta", "p1", "p2", "predicted", "measured tput")
	shape := alisa.Shape{Batch: *batch, Input: *input, Output: *output}
	for _, sparsity := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		params := optimize(mc, prof, *batch, *input, *output, sparsity, *kvbits)
		eng, err := alisa.New(mc.Name,
			alisa.WithProfile(prof.Name),
			alisa.WithScheduler("alisa"),
			alisa.WithKVSparsity(sparsity),
			alisa.WithKVBits(*kvbits),
		)
		if err != nil {
			fatal(err)
		}
		res, err := eng.Simulate(context.Background(), shape)
		measured := "OOM"
		if err == nil {
			measured = fmt.Sprintf("%.1f tok/s", res.Throughput)
		}
		tb.AddRow(
			fmt.Sprintf("%.0f%%", sparsity*100),
			fmt.Sprintf("%.2f", params.Alpha),
			fmt.Sprintf("%.2f", params.Beta),
			fmt.Sprint(params.P1),
			fmt.Sprint(params.P2),
			textfmt.Seconds(params.PredictedSeconds),
			measured,
		)
	}
	fmt.Println(tb.String())
}

// optimize reproduces the engine's pre-run state and invokes the offline
// parameter search for one sparsity point.
func optimize(mc model.Config, prof memsim.Profile, batch, input, output int, sparsity float64, kvbits int) sched.Params {
	sys := memsim.NewSystem(prof)
	ctx := &sched.Context{
		Sys: sys, Cost: costmodel.New(prof), Model: mc,
		Batch: batch, Input: input, Output: output,
		CachingRatio: 1 - sparsity, KVBits: kvbits,
	}
	// Mirror the engine's static reservations.
	_ = sys.AllocGPU(prof.ReserveBytes)
	_ = sys.AllocGPU(ctx.WeightBytes())
	_ = sys.AllocGPU(ctx.ActivationBytes())
	return sched.Optimize(ctx)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alisa-sweep:", err)
	os.Exit(1)
}
