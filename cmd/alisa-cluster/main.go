// Command alisa-cluster runs the replicated-fleet serving simulator: N
// independent engine replicas behind a pluggable router, swept over
// (routing policy × offered load × fleet size) and reported as SLO
// attainment versus request rate versus replica count — the cluster-level
// load curves on top of the single-engine tables of alisa-serve.
//
// Usage:
//
//	alisa-cluster                                  # default load curves
//	alisa-cluster -replicas 1,2,4 -rates 2,4,8,16  # the full grid
//	alisa-cluster -routers least-kv,affinity       # a policy subset
//	alisa-cluster -profiles V100-16GB,V100-32GB    # heterogeneous fleet:
//	                                               # tiers cycle across
//	                                               # replicas
//	alisa-cluster -autoscale -as-max 4             # autoscaler on: fleets
//	                                               # grow to -as-max on
//	                                               # missed SLO, shrink on
//	                                               # sustained idle
//	alisa-cluster -parallel 0                      # grid cells run
//	                                               # concurrently (0 =
//	                                               # GOMAXPROCS workers)
//
// Every cell is one deterministic fleet simulation — single-goroutine,
// bit-identical in (seed, spec) — so the tables are stable under any
// -parallel setting, the same executor discipline as the alisa-serve
// sweep. Ctrl-C cancels the grid; finished cells still print.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	alisa "repro"
	"repro/internal/grid"
	"repro/internal/textfmt"
)

func main() {
	modelName := flag.String("model", "opt-6.7b", "model catalog name")
	sched := flag.String("sched", "alisa", "scheduler for every replica")
	sparsity := flag.Float64("sparsity", 0.8, "ALISA KV sparsity")
	bits := flag.Int("bits", 8, "ALISA KV bits")
	maxBatch := flag.Int("max-batch", 8, "decode batch cap per replica")
	sloTTFT := flag.Float64("slo-ttft", 10, "TTFT SLO seconds")
	sloTPOT := flag.Float64("slo-tpot", 0.5, "TPOT SLO seconds/token")
	n := flag.Int("n", 64, "requests in the trace")
	seed := flag.Int64("seed", 1, "trace seed")
	replicas := flag.String("replicas", "1,2,4", "comma-separated fleet sizes")
	routers := flag.String("routers", "", "comma-separated routing policies (empty = all registered)")
	rates := flag.String("rates", "2,4,8", "comma-separated arrival rates, requests/second")
	profiles := flag.String("profiles", "", "comma-separated hardware tiers cycled across replicas (empty = engine default)")
	window := flag.Int("window", 0, "fleet metrics window in completions (0 = engine default)")
	autoscale := flag.Bool("autoscale", false, "enable the SLO-driven autoscaler (fleet sizes become the Min bound)")
	asMax := flag.Int("as-max", 4, "autoscaler fleet ceiling")
	asTarget := flag.Float64("as-target", 0.9, "autoscaler windowed SLO-attainment target")
	asIdle := flag.Float64("as-idle", 5, "autoscaler scale-down idle threshold, simulated seconds")
	parallel := flag.Int("parallel", 1, "concurrent grid cells (0 = GOMAXPROCS workers, 1 = serial)")
	flag.Parse()

	routerNames := splitList(*routers)
	if len(routerNames) == 0 {
		routerNames = alisa.ClusterRouters()
	}
	sizes, err := parseInts(*replicas, "-replicas")
	if err != nil {
		fatal(err)
	}
	rateVals, err := parseRates(*rates, "-rates")
	if err != nil {
		fatal(err)
	}
	if err := validateFlags(*n, *parallel, sizes, routerNames, *autoscale, *asMax, *asTarget); err != nil {
		fatal(err)
	}

	opts := []alisa.Option{
		alisa.WithScheduler(*sched),
		alisa.WithMaxBatch(*maxBatch),
		alisa.WithSLO(*sloTTFT, *sloTPOT),
	}
	if *sched == "alisa" {
		opts = append(opts, alisa.WithKVSparsity(*sparsity), alisa.WithKVBits(*bits))
	}
	eng, err := alisa.New(*modelName, opts...)
	if err != nil {
		fatal(err)
	}

	traces := make([]alisa.TraceWorkload, len(rateVals))
	for ri, r := range rateVals {
		traces[ri] = alisa.PoissonTrace(*n, r, *seed)
	}

	// The grid: cell index c = ((router × rate) × size), results in
	// index-addressed storage so tables render in deterministic order no
	// matter which worker finishes first.
	spec := func(c int) (string, int, int) { // router, rate index, size index
		si := c % len(sizes)
		ri := (c / len(sizes)) % len(rateVals)
		pi := c / (len(sizes) * len(rateVals))
		return routerNames[pi], ri, si
	}
	cells := len(routerNames) * len(rateVals) * len(sizes)
	results := make([]*alisa.ClusterResult, cells)
	errs := make([]error, cells)
	started := make([]bool, cells)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	_ = grid.Run(ctx, cells, *parallel, func(cellCtx context.Context, c int) {
		started[c] = true
		router, ri, si := spec(c)
		cs := alisa.ClusterSpec{
			Replicas: sizes[si],
			Profiles: splitList(*profiles),
			Router:   router,
			Window:   *window,
		}
		if *autoscale {
			cs.Autoscale = &alisa.ClusterAutoscale{
				Min:       sizes[si],
				Max:       *asMax,
				SLOTarget: *asTarget,
				IdleAfter: *asIdle,
			}
		}
		results[c], errs[c] = eng.ServeCluster(cellCtx, cs, traces[ri])
	})

	for pi, router := range routerNames {
		fmt.Printf("## %s, %d requests (seed %d) — router %s: SLO attainment vs rate vs fleet size\n\n",
			*modelName, *n, *seed, router)
		header := []string{"req/s"}
		for _, size := range sizes {
			header = append(header, fmt.Sprintf("n=%d SLO%%", size), fmt.Sprintf("n=%d tok/s", size))
		}
		tb := textfmt.NewTable(header...)
		for ri := range rateVals {
			row := []string{fmt.Sprintf("%.1f", rateVals[ri])}
			for si := range sizes {
				c := (pi*len(rateVals)+ri)*len(sizes) + si
				res := results[c]
				switch {
				case !started[c]:
					row = append(row, "skipped", "—")
				case errs[c] != nil && res == nil:
					row = append(row, "error: "+errs[c].Error(), "—")
				default:
					slo := fmt.Sprintf("%.0f%%", res.SLOAttainment*100)
					if *autoscale {
						slo += fmt.Sprintf(" (peak %d)", res.PeakReplicas)
					}
					row = append(row, slo, fmt.Sprintf("%.1f", res.Throughput))
				}
			}
			tb.AddRow(row...)
		}
		fmt.Println(tb.String())
	}
	if ctx.Err() != nil {
		fmt.Println("(grid cancelled; unstarted cells were skipped)")
	}
}

// validateFlags rejects inconsistent grid parameters before any fleet is
// built; table-tested in main_test.go.
func validateFlags(n, parallel int, sizes []int, routers []string, autoscale bool, asMax int, asTarget float64) error {
	if n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", n)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be ≥ 0, got %d", parallel)
	}
	if len(sizes) == 0 {
		return fmt.Errorf("-replicas must list at least one fleet size")
	}
	for _, s := range sizes {
		if s <= 0 {
			return fmt.Errorf("-replicas entries must be positive, got %d", s)
		}
		if autoscale && s > asMax {
			return fmt.Errorf("-replicas %d exceeds -as-max %d", s, asMax)
		}
	}
	known := alisa.ClusterRouters()
	for _, r := range routers {
		found := false
		for _, k := range known {
			if r == k {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown router %q (registered: %s)", r, strings.Join(known, ", "))
		}
	}
	if autoscale && (asTarget <= 0 || asTarget > 1) {
		return fmt.Errorf("-as-target must be in (0, 1], got %v", asTarget)
	}
	return nil
}

// splitList splits a comma-separated flag into trimmed non-empty entries.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseInts parses a comma-separated integer list flag.
func parseInts(s, flagName string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad %s entry %q: %w", flagName, f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseRates parses a comma-separated positive float list flag.
func parseRates(s, flagName string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad %s entry %q: want a positive rate", flagName, f)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alisa-cluster:", err)
	os.Exit(1)
}
