package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	ok := []string{"round-robin"}
	cases := []struct {
		name      string
		n, par    int
		sizes     []int
		routers   []string
		autoscale bool
		asMax     int
		asTarget  float64
		wantErr   string
	}{
		{"defaults", 64, 1, []int{1, 2, 4}, ok, false, 4, 0.9, ""},
		{"parallel zero is GOMAXPROCS", 64, 0, []int{1}, ok, false, 4, 0.9, ""},
		{"zero n", 0, 1, []int{1}, ok, false, 4, 0.9, "-n must be positive"},
		{"negative parallel", 64, -1, []int{1}, ok, false, 4, 0.9, "-parallel must be ≥ 0"},
		{"empty sizes", 64, 1, nil, ok, false, 4, 0.9, "at least one fleet size"},
		{"zero size", 64, 1, []int{0}, ok, false, 4, 0.9, "must be positive"},
		{"unknown router", 64, 1, []int{1}, []string{"wat"}, false, 4, 0.9, "unknown router"},
		{"size above as-max", 64, 1, []int{8}, ok, true, 4, 0.9, "exceeds -as-max"},
		{"bad as-target", 64, 1, []int{1}, ok, true, 4, 1.5, "-as-target must be in"},
		{"autoscale ok", 64, 1, []int{2}, ok, true, 4, 0.9, ""},
	}
	for _, tc := range cases {
		err := validateFlags(tc.n, tc.par, tc.sizes, tc.routers, tc.autoscale, tc.asMax, tc.asTarget)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestParseLists(t *testing.T) {
	sizes, err := parseInts(" 1, 2 ,4", "-replicas")
	if err != nil || len(sizes) != 3 || sizes[2] != 4 {
		t.Fatalf("parseInts: %v %v", sizes, err)
	}
	if _, err := parseInts("1,x", "-replicas"); err == nil {
		t.Fatal("parseInts accepted a non-integer")
	}
	rates, err := parseRates("0.5, 2", "-rates")
	if err != nil || len(rates) != 2 || rates[0] != 0.5 {
		t.Fatalf("parseRates: %v %v", rates, err)
	}
	if _, err := parseRates("-1", "-rates"); err == nil {
		t.Fatal("parseRates accepted a negative rate")
	}
	if got := splitList(" a, ,b "); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("splitList: %v", got)
	}
}
