package main

import (
	"strings"
	"testing"
)

func TestValidateParallelism(t *testing.T) {
	cases := []struct {
		name                 string
		grid, sweep, cluster int
		wantErr              string
	}{
		{"all serial", 1, 1, 1, ""},
		{"all GOMAXPROCS", 0, 0, 0, ""},
		{"negative grid", -1, 0, 0, "-grid-parallel must be ≥ 0"},
		{"negative sweep", 0, -4, 0, "-sweep-parallel must be ≥ 0"},
		{"negative cluster", 0, 0, -2, "-cluster-parallel must be ≥ 0"},
	}
	for _, tc := range cases {
		err := validateParallelism(tc.grid, tc.sweep, tc.cluster)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestRunClusterBenchRejectsBadInputs(t *testing.T) {
	if _, err := runClusterBench("", "1", 0, 6, 1, true); err == nil {
		t.Fatal("zero -cluster-n accepted")
	}
	if _, err := runClusterBench("", "1", 8, -1, 1, true); err == nil {
		t.Fatal("negative -cluster-rate accepted")
	}
	if _, err := runClusterBench("", "1,zero", 8, 6, 1, true); err == nil {
		t.Fatal("non-integer -cluster-replicas accepted")
	}
}
