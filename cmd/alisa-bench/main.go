// Command alisa-bench regenerates the paper's evaluation: every table and
// figure, or a selected subset.
//
// Usage:
//
//	alisa-bench -list            # enumerate experiments
//	alisa-bench -run fig9        # one experiment
//	alisa-bench -all             # the full evaluation
//	alisa-bench -all -json       # machine-readable timings on stdout
//
// With -json the rendered reports are suppressed and a single JSON
// document is written to stdout instead, so the bench trajectory can be
// tracked PR-over-PR (e.g. `alisa-bench -all -json > BENCH_$(git
// rev-parse --short HEAD).json`). The format is documented in
// EXPERIMENTS.md:
//
//	{
//	  "total_seconds": 3.21,
//	  "experiments": [
//	    {"id": "fig8", "title": "...", "seconds": 2.38, "output_bytes": 123456},
//	    ...
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

// timing is one experiment's entry in the -json report.
type timing struct {
	ID          string  `json:"id"`
	Title       string  `json:"title"`
	Seconds     float64 `json:"seconds"`
	OutputBytes int     `json:"output_bytes"`
}

// report is the top-level -json document.
type report struct {
	TotalSeconds float64  `json:"total_seconds"`
	Experiments  []timing `json:"experiments"`
}

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "run one experiment by id (e.g. fig9)")
	all := flag.Bool("all", false, "run every experiment in paper order")
	asJSON := flag.Bool("json", false, "emit machine-readable timings instead of rendered reports")
	flag.Parse()

	var runners []experiments.Runner
	switch {
	case *list:
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	case *run != "":
		r, err := experiments.ByID(*run)
		if err != nil {
			fatal(err)
		}
		runners = []experiments.Runner{r}
	case *all:
		runners = experiments.All()
	default:
		flag.Usage()
		os.Exit(2)
	}

	rep := report{}
	start := time.Now()
	for _, r := range runners {
		t, err := execute(r, *asJSON)
		if err != nil {
			fatal(err)
		}
		rep.Experiments = append(rep.Experiments, t)
	}
	rep.TotalSeconds = time.Since(start).Seconds()
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	}
}

func execute(r experiments.Runner, quiet bool) (timing, error) {
	start := time.Now()
	res, err := r.Run()
	if err != nil {
		return timing{}, fmt.Errorf("%s: %w", r.ID, err)
	}
	elapsed := time.Since(start)
	out := res.Render()
	if !quiet {
		fmt.Printf("== %s — %s (ran in %s)\n\n", r.ID, r.Title, elapsed.Round(time.Millisecond))
		fmt.Println(out)
	}
	return timing{
		ID:          r.ID,
		Title:       r.Title,
		Seconds:     elapsed.Seconds(),
		OutputBytes: len(out),
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alisa-bench:", err)
	os.Exit(1)
}
