// Command alisa-bench regenerates the paper's evaluation: every table and
// figure, or a selected subset.
//
// Usage:
//
//	alisa-bench -list            # enumerate experiments
//	alisa-bench -run fig9        # one experiment
//	alisa-bench -all             # the full evaluation (minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "run one experiment by id (e.g. fig9)")
	all := flag.Bool("all", false, "run every experiment in paper order")
	flag.Parse()

	switch {
	case *list:
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
	case *run != "":
		r, err := experiments.ByID(*run)
		if err != nil {
			fatal(err)
		}
		if err := execute(r); err != nil {
			fatal(err)
		}
	case *all:
		for _, r := range experiments.All() {
			if err := execute(r); err != nil {
				fatal(err)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func execute(r experiments.Runner) error {
	start := time.Now()
	res, err := r.Run()
	if err != nil {
		return fmt.Errorf("%s: %w", r.ID, err)
	}
	fmt.Printf("== %s — %s (ran in %s)\n\n", r.ID, r.Title, time.Since(start).Round(time.Millisecond))
	fmt.Println(res.Render())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alisa-bench:", err)
	os.Exit(1)
}
