// Command alisa-bench regenerates the paper's evaluation: every table and
// figure, or a selected subset — and benches the compiled engine itself
// over a (model × scheduler × batch) grid and the serving sweep runner.
//
// Usage:
//
//	alisa-bench -list            # enumerate experiments
//	alisa-bench -run fig9        # one experiment
//	alisa-bench -all             # the full evaluation
//	alisa-bench -all -json       # machine-readable timings on stdout
//	alisa-bench -grid            # engine grid: per-cell wall/sim timing
//	alisa-bench -grid -grid-parallel 0   # grid pairs run concurrently
//	alisa-bench -sweep-bench     # serving sweep: serial vs parallel wall
//	                             # clock + serve.Run allocation counts
//	alisa-bench -scale-bench     # paced scale-mode stream: wall clock,
//	                             # steady-state allocs/request, heap
//	alisa-bench -prefix-bench    # prefix-sharing workloads cache-off vs
//	                             # cache-on: hit rate, prefill reduction,
//	                             # TTFT and goodput deltas (self-checked)
//
// With -json the rendered reports are suppressed and a single JSON
// document is written to stdout instead, so the bench trajectory can be
// tracked PR-over-PR (e.g. `alisa-bench -all -sweep-bench -json >
// BENCH_$(git rev-parse --short HEAD).json`). The format is documented in
// EXPERIMENTS.md:
//
//	{
//	  "total_seconds": 3.21,
//	  "experiments": [
//	    {"id": "fig8", "title": "...", "seconds": 2.38, "output_bytes": 123456},
//	    ...
//	  ],
//	  "serve_sweep": {"serial_seconds": ..., "parallel_seconds": ..., ...}
//	}
//
// With -grid the engine API is exercised directly: one alisa.Engine is
// compiled per (model, scheduler) pair and reused across every batch-size
// cell, and a streaming Observer collects per-cell decode-step counts and
// simulated time alongside the measured wall time — the per-cell timing
// view of the public API's hot path. -grid-parallel runs the pairs
// concurrently (each pair's batch cells stay serial so its observer
// stays single-goroutine); rows print in deterministic grid order.
//
// With -sweep-bench the (scheduler × offered load) serving sweep is run
// twice — one cell at a time, then concurrently on -sweep-parallel
// workers — against the same compiled engines with the event log off,
// verifying the parallel pass reproduces the serial results bit for bit
// and reporting both wall clocks plus serve.Run allocation counts with
// the event log off and on.
//
// With -scale-bench a single scale-mode serving stream (streaming metric
// digests, recycled records — WithExactMetrics(-1)) is paced through the
// public Session API with a bounded in-flight backlog (-scale-live),
// reporting wall clock, steady-state allocations per request, and heap —
// the public-API companion of internal/serve's BenchmarkServeMillion.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	alisa "repro"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/textfmt"
)

// timing is one experiment's entry in the -json report.
type timing struct {
	ID          string  `json:"id"`
	Title       string  `json:"title"`
	Seconds     float64 `json:"seconds"`
	OutputBytes int     `json:"output_bytes"`
}

// sweepTiming is the -sweep-bench entry in the -json report.
type sweepTiming struct {
	Schedulers []string  `json:"schedulers"`
	Rates      []float64 `json:"rates"`
	Requests   int       `json:"requests"`
	Workers    int       `json:"workers"`
	// SerialSeconds and ParallelSeconds are the wall clocks of running
	// every (scheduler × rate) cell one at a time vs through the bounded
	// worker pool; Identical reports whether the parallel pass reproduced
	// the serial results bit for bit.
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	Identical       bool    `json:"parallel_results_identical"`
	// AllocsPerServeRun / AllocsPerServeRunCaptured are
	// testing.AllocsPerRun over one pressured serve.Run with the event
	// log off (sweep mode) and on (determinism-suite mode).
	AllocsPerServeRun         float64 `json:"allocs_per_serve_run"`
	AllocsPerServeRunCaptured float64 `json:"allocs_per_serve_run_captured"`
}

// clusterTiming is the -cluster-bench entry in the -json report: the
// (router × fleet size) cluster grid run serially and in parallel on the
// same engine, with the bit-identity self-check over result fingerprints.
type clusterTiming struct {
	Routers  []string `json:"routers"`
	Replicas []int    `json:"replicas"`
	Requests int      `json:"requests"`
	Rate     float64  `json:"rate"`
	Workers  int      `json:"workers"`
	// SerialSeconds and ParallelSeconds are the wall clocks of the two
	// passes; Identical reports whether every cell's full-precision result
	// fingerprint matched bit for bit across them.
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	Identical       bool    `json:"parallel_results_identical"`
}

// prefixWorkload is one workload row of the -prefix-bench report: the
// same token-carrying workload served cache-off and cache-on, with the
// prefix-sharing wins the PR claims measured directly.
type prefixWorkload struct {
	Name     string `json:"name"`
	Requests int    `json:"requests"`
	// HitRate is the cache-on run's prefix hit rate over probed
	// admissions; SharedBytesPeak its peak shared-cache residency.
	HitRate         float64 `json:"hit_rate"`
	SharedBytesPeak int64   `json:"shared_bytes_peak"`
	// PrefillTokensOff/On and PrefillReduction compare total prefilled
	// tokens; TTFT and goodput pairs compare the serving metrics.
	PrefillTokensOff int64   `json:"prefill_tokens_off"`
	PrefillTokensOn  int64   `json:"prefill_tokens_on"`
	PrefillReduction float64 `json:"prefill_reduction"`
	TTFTMeanOff      float64 `json:"ttft_mean_off"`
	TTFTMeanOn       float64 `json:"ttft_mean_on"`
	GoodputOff       float64 `json:"goodput_off"`
	GoodputOn        float64 `json:"goodput_on"`
	GoodputDelta     float64 `json:"goodput_delta"`
	Seconds          float64 `json:"seconds"`
}

// prefixTiming is the -prefix-bench entry in the -json report.
type prefixTiming struct {
	BlockTokens int              `json:"block_tokens"`
	Workloads   []prefixWorkload `json:"workloads"`
}

// scaleTiming is the -scale-bench entry in the -json report: one paced
// scale-mode serving stream through the public Session API.
type scaleTiming struct {
	Requests int `json:"requests"`
	LiveCap  int `json:"live_cap"`
	// WallSeconds covers the whole stream; AllocsPerRequest and HeapMB
	// are measured over the post-warm-up steady state, so they report
	// the asymptotic per-request cost the scale rebuild pins.
	WallSeconds       float64 `json:"wall_seconds"`
	RequestsPerSecond float64 `json:"requests_per_second"`
	AllocsPerRequest  float64 `json:"allocs_per_request"`
	HeapMB            float64 `json:"heap_mb"`
}

// report is the top-level -json document.
type report struct {
	TotalSeconds float64        `json:"total_seconds"`
	Experiments  []timing       `json:"experiments"`
	ServeSweep   *sweepTiming   `json:"serve_sweep,omitempty"`
	ScaleServe   *scaleTiming   `json:"scale_serve,omitempty"`
	Cluster      *clusterTiming `json:"cluster,omitempty"`
	Prefix       *prefixTiming  `json:"prefix,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "run one experiment by id (e.g. fig9)")
	all := flag.Bool("all", false, "run every experiment in paper order")
	asJSON := flag.Bool("json", false, "emit machine-readable timings instead of rendered reports")
	gridMode := flag.Bool("grid", false, "bench the compiled engine over a model × scheduler × batch grid")
	gridModels := flag.String("grid-models", "opt-6.7b,opt-13b", "comma-separated models for -grid")
	gridScheds := flag.String("grid-sched", "alisa,flexgen,vllm", "comma-separated schedulers for -grid")
	gridBatches := flag.String("grid-batches", "8,16,32", "comma-separated batch sizes for -grid")
	gridParallel := flag.Int("grid-parallel", 1, "concurrent (model, scheduler) pairs for -grid (0 = GOMAXPROCS)")
	sweepBench := flag.Bool("sweep-bench", false, "bench the serving sweep serially vs in parallel")
	scaleBench := flag.Bool("scale-bench", false, "bench a paced scale-mode serving stream (streaming digests, O(in-flight) memory)")
	scaleN := flag.Int("scale-n", 1_000_000, "requests for -scale-bench")
	scaleLive := flag.Int("scale-live", 256, "in-flight cap (pending+active) for -scale-bench pacing")
	sweepScheds := flag.String("sweep-sched", "alisa,vllm,hf-accelerate,gpu-only", "comma-separated schedulers for -sweep-bench")
	sweepRates := flag.String("sweep-rates", "1,2,4,8", "comma-separated arrival rates for -sweep-bench")
	sweepN := flag.Int("sweep-n", 48, "requests per -sweep-bench cell")
	sweepParallel := flag.Int("sweep-parallel", 0, "workers for the parallel pass (0 = GOMAXPROCS)")
	clusterBench := flag.Bool("cluster-bench", false, "bench the replicated-fleet grid serially vs in parallel")
	clusterRouters := flag.String("cluster-routers", "", "comma-separated routing policies for -cluster-bench (empty = all registered)")
	clusterReplicas := flag.String("cluster-replicas", "1,2,4", "comma-separated fleet sizes for -cluster-bench")
	clusterN := flag.Int("cluster-n", 48, "requests per -cluster-bench cell")
	clusterRate := flag.Float64("cluster-rate", 6, "arrival rate for -cluster-bench, requests/second")
	clusterParallel := flag.Int("cluster-parallel", 0, "workers for the parallel pass (0 = GOMAXPROCS)")
	prefixBench := flag.Bool("prefix-bench", false, "bench the prefix-sharing workloads cache-off vs cache-on")
	prefixBlock := flag.Int("prefix-block", 16, "prefix cache block size in tokens for -prefix-bench")
	flag.Parse()

	if err := validateParallelism(*gridParallel, *sweepParallel, *clusterParallel); err != nil {
		fatal(err)
	}

	var runners []experiments.Runner
	switch {
	case *gridMode:
		if err := runGrid(*gridModels, *gridScheds, *gridBatches, *gridParallel); err != nil {
			fatal(err)
		}
		return
	case *list:
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	case *run != "":
		r, err := experiments.ByID(*run)
		if err != nil {
			fatal(err)
		}
		runners = []experiments.Runner{r}
	case *all:
		runners = experiments.All()
	case *sweepBench, *scaleBench, *clusterBench, *prefixBench:
		// bench modes alone: no experiments, just their sections.
	default:
		flag.Usage()
		os.Exit(2)
	}

	rep := report{}
	start := time.Now()
	for _, r := range runners {
		t, err := execute(r, *asJSON)
		if err != nil {
			fatal(err)
		}
		rep.Experiments = append(rep.Experiments, t)
	}
	if *sweepBench {
		st, err := runSweepBench(*sweepScheds, *sweepRates, *sweepN, *sweepParallel, *asJSON)
		if err != nil {
			fatal(err)
		}
		rep.ServeSweep = st
	}
	if *scaleBench {
		st, err := runScaleBench(*scaleN, *scaleLive, *asJSON)
		if err != nil {
			fatal(err)
		}
		rep.ScaleServe = st
	}
	if *clusterBench {
		ct, err := runClusterBench(*clusterRouters, *clusterReplicas, *clusterN, *clusterRate, *clusterParallel, *asJSON)
		if err != nil {
			fatal(err)
		}
		rep.Cluster = ct
	}
	if *prefixBench {
		pt, err := runPrefixBench(*prefixBlock, *asJSON)
		if err != nil {
			fatal(err)
		}
		rep.Prefix = pt
	}
	rep.TotalSeconds = time.Since(start).Seconds()
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	}
}

// cellStats accumulates one grid cell's observer events.
type cellStats struct {
	steps int
}

// gridPair is one (model, scheduler) engine of the -grid bench with its
// rendered rows, buffered so parallel pairs print in deterministic order.
type gridPair struct {
	model, sched string
	rows         [][]string
	err          error
}

// runGrid benches the compiled-engine hot path: each (model, scheduler)
// engine is compiled once, then every batch cell reuses it serially (the
// cell observer is single-goroutine state); with workers > 1 the pairs
// themselves run concurrently through the shared grid executor.
func runGrid(models, scheds, batches string, workers int) error {
	var sizes []int
	for _, b := range strings.Split(batches, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(b), "%d", &v); err != nil || v <= 0 {
			return fmt.Errorf("bad -grid-batches entry %q", b)
		}
		sizes = append(sizes, v)
	}

	var pairs []*gridPair
	for _, modelName := range strings.Split(models, ",") {
		for _, schedName := range strings.Split(scheds, ",") {
			pairs = append(pairs, &gridPair{
				model: strings.TrimSpace(modelName),
				sched: strings.TrimSpace(schedName),
			})
		}
	}

	_ = grid.Run(context.Background(), len(pairs), workers, func(ctx context.Context, i int) {
		p := pairs[i]
		stats := &cellStats{}
		opts := []alisa.Option{
			alisa.WithScheduler(p.sched),
			alisa.WithObserver(alisa.ObserverFuncs{
				Step: func(e alisa.StepEvent) { stats.steps++ },
			}),
		}
		if p.sched == "alisa" {
			opts = append(opts, alisa.WithKVSparsity(0.8), alisa.WithKVBits(8))
		}
		eng, err := alisa.New(p.model, opts...)
		if err != nil {
			p.err = err
			return
		}
		for _, batch := range sizes {
			*stats = cellStats{}
			start := time.Now()
			res, err := eng.Simulate(ctx, alisa.Shape{Batch: batch, Input: 128, Output: 256})
			wall := time.Since(start)
			if err != nil {
				p.rows = append(p.rows, []string{p.model, p.sched, fmt.Sprint(batch),
					wall.Round(time.Microsecond).String(), "—", "—", "error: " + err.Error()})
				continue
			}
			p.rows = append(p.rows, []string{p.model, p.sched, fmt.Sprint(batch),
				wall.Round(time.Microsecond).String(),
				textfmt.Seconds(res.TotalSeconds),
				fmt.Sprint(stats.steps),
				fmt.Sprintf("%.1f", res.Throughput)})
		}
	})

	tb := textfmt.NewTable("model", "scheduler", "batch", "wall", "sim", "steps", "tok/s")
	for _, p := range pairs {
		if p.err != nil {
			return p.err
		}
		for _, row := range p.rows {
			tb.AddRow(row...)
		}
	}
	fmt.Println(tb.String())
	return nil
}

// runSweepBench measures the (scheduler × rate) serving sweep twice —
// serially and through the bounded worker pool — on identical compiled
// engines, checks the two passes agree bit for bit, and measures
// serve.Run allocation counts with the event log off and on.
func runSweepBench(scheds, rates string, n, workers int, quiet bool) (*sweepTiming, error) {
	if n <= 0 {
		return nil, fmt.Errorf("-sweep-n must be positive, got %d", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	names := strings.Split(scheds, ",")
	var rateVals []float64
	for _, f := range strings.Split(rates, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -sweep-rates entry %q", f)
		}
		rateVals = append(rateVals, v)
	}

	ctx := context.Background()
	// engineOpts is the one option set per scheduler, shared by the sweep
	// engines and the allocation-measurement engines below so the
	// capture-off/on comparison differs only in WithEventLog.
	engineOpts := func(name string) []alisa.Option {
		opts := []alisa.Option{alisa.WithScheduler(name)}
		if name == "alisa" {
			opts = append(opts, alisa.WithKVSparsity(0.8), alisa.WithKVBits(8))
		}
		return opts
	}
	var engines []*alisa.Engine
	for i, name := range names {
		name = strings.TrimSpace(name)
		names[i] = name
		eng, err := alisa.New("opt-6.7b", engineOpts(name)...)
		if err != nil {
			return nil, err
		}
		engines = append(engines, eng)
	}
	traces := make([]alisa.TraceWorkload, len(rateVals))
	for i, r := range rateVals {
		traces[i] = alisa.PoissonTrace(n, r, 1)
	}

	cells := len(engines) * len(traces)
	runCell := func(ctx context.Context, out []*alisa.ServeResult, c int) error {
		res, err := engines[c/len(traces)].Serve(ctx, traces[c%len(traces)])
		out[c] = res
		return err
	}

	serial := make([]*alisa.ServeResult, cells)
	serialStart := time.Now()
	for c := 0; c < cells; c++ {
		if err := runCell(ctx, serial, c); err != nil {
			return nil, fmt.Errorf("serial cell %d: %w", c, err)
		}
	}
	serialSeconds := time.Since(serialStart).Seconds()

	parallel := make([]*alisa.ServeResult, cells)
	parallelStart := time.Now()
	errs := make([]error, cells)
	_ = grid.Run(ctx, cells, workers, func(ctx context.Context, c int) {
		errs[c] = runCell(ctx, parallel, c)
	})
	parallelSeconds := time.Since(parallelStart).Seconds()
	for c, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("parallel cell %d: %w", c, err)
		}
	}

	identical := true
	for c := range serial {
		if !reflect.DeepEqual(serial[c], parallel[c]) {
			identical = false
			break
		}
	}

	// Allocation counts of one pressured cell, sweep mode vs captured.
	allocEng := engines[0]
	allocTrace := traces[len(traces)-1]
	allocsOff := testing.AllocsPerRun(5, func() {
		if _, err := allocEng.Serve(ctx, allocTrace); err != nil {
			panic(err)
		}
	})
	capEng, err := alisa.New("opt-6.7b", append(engineOpts(names[0]), alisa.WithEventLog(true))...)
	if err != nil {
		return nil, err
	}
	allocsOn := testing.AllocsPerRun(5, func() {
		if _, err := capEng.Serve(ctx, allocTrace); err != nil {
			panic(err)
		}
	})

	st := &sweepTiming{
		Schedulers:                names,
		Rates:                     rateVals,
		Requests:                  n,
		Workers:                   workers,
		SerialSeconds:             serialSeconds,
		ParallelSeconds:           parallelSeconds,
		Speedup:                   serialSeconds / parallelSeconds,
		Identical:                 identical,
		AllocsPerServeRun:         allocsOff,
		AllocsPerServeRunCaptured: allocsOn,
	}
	if !quiet {
		fmt.Printf("== serve sweep bench — %d schedulers × %d rates, %d requests/cell, %d workers\n\n",
			len(names), len(rateVals), n, workers)
		tb := textfmt.NewTable("pass", "wall", "speedup", "bit-identical")
		tb.AddRow("serial", fmt.Sprintf("%.3fs", serialSeconds), "1.00×", "—")
		tb.AddRow("parallel", fmt.Sprintf("%.3fs", parallelSeconds),
			fmt.Sprintf("%.2f×", st.Speedup), fmt.Sprint(identical))
		fmt.Println(tb.String())
		fmt.Printf("serve.Run allocs: %.0f (event log off) / %.0f (captured)\n\n", allocsOff, allocsOn)
	}
	if !identical {
		return st, fmt.Errorf("parallel sweep diverged from serial results")
	}
	return st, nil
}

// validateParallelism rejects negative worker counts for every grid-style
// bench mode (0 means GOMAXPROCS everywhere); table-tested in
// main_test.go.
func validateParallelism(gridParallel, sweepParallel, clusterParallel int) error {
	if gridParallel < 0 {
		return fmt.Errorf("-grid-parallel must be ≥ 0, got %d", gridParallel)
	}
	if sweepParallel < 0 {
		return fmt.Errorf("-sweep-parallel must be ≥ 0, got %d", sweepParallel)
	}
	if clusterParallel < 0 {
		return fmt.Errorf("-cluster-parallel must be ≥ 0, got %d", clusterParallel)
	}
	return nil
}

// runClusterBench measures the (router × fleet size) cluster grid twice —
// serially and through the bounded worker pool — on one compiled engine,
// and checks the two passes agree bit for bit via the full-precision
// result fingerprints.
func runClusterBench(routers, replicas string, n int, rate float64, workers int, quiet bool) (*clusterTiming, error) {
	if n <= 0 {
		return nil, fmt.Errorf("-cluster-n must be positive, got %d", n)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("-cluster-rate must be positive, got %v", rate)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	routerNames := alisa.ClusterRouters()
	if routers != "" {
		routerNames = strings.Split(routers, ",")
		for i := range routerNames {
			routerNames[i] = strings.TrimSpace(routerNames[i])
		}
	}
	var sizes []int
	for _, f := range strings.Split(replicas, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -cluster-replicas entry %q", f)
		}
		sizes = append(sizes, v)
	}

	eng, err := alisa.New("opt-6.7b",
		alisa.WithScheduler("alisa"), alisa.WithKVSparsity(0.8), alisa.WithKVBits(8), alisa.WithMaxBatch(8))
	if err != nil {
		return nil, err
	}
	trace := alisa.PoissonTrace(n, rate, 1)

	ctx := context.Background()
	cells := len(routerNames) * len(sizes)
	runCell := func(ctx context.Context, out []string, c int) error {
		res, err := eng.ServeCluster(ctx, alisa.ClusterSpec{
			Replicas: sizes[c%len(sizes)],
			Router:   routerNames[c/len(sizes)],
		}, trace)
		if err != nil {
			return err
		}
		out[c] = res.Fingerprint()
		return nil
	}

	serial := make([]string, cells)
	serialStart := time.Now()
	for c := 0; c < cells; c++ {
		if err := runCell(ctx, serial, c); err != nil {
			return nil, fmt.Errorf("serial cell %d: %w", c, err)
		}
	}
	serialSeconds := time.Since(serialStart).Seconds()

	parallel := make([]string, cells)
	errs := make([]error, cells)
	parallelStart := time.Now()
	_ = grid.Run(ctx, cells, workers, func(ctx context.Context, c int) {
		errs[c] = runCell(ctx, parallel, c)
	})
	parallelSeconds := time.Since(parallelStart).Seconds()
	for c, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("parallel cell %d: %w", c, err)
		}
	}

	identical := true
	for c := range serial {
		if serial[c] != parallel[c] {
			identical = false
			break
		}
	}

	ct := &clusterTiming{
		Routers:         routerNames,
		Replicas:        sizes,
		Requests:        n,
		Rate:            rate,
		Workers:         workers,
		SerialSeconds:   serialSeconds,
		ParallelSeconds: parallelSeconds,
		Speedup:         serialSeconds / parallelSeconds,
		Identical:       identical,
	}
	if !quiet {
		fmt.Printf("== cluster bench — %d routers × %d fleet sizes, %d requests/cell at %.1f req/s, %d workers\n\n",
			len(routerNames), len(sizes), n, rate, workers)
		tb := textfmt.NewTable("pass", "wall", "speedup", "bit-identical")
		tb.AddRow("serial", fmt.Sprintf("%.3fs", serialSeconds), "1.00×", "—")
		tb.AddRow("parallel", fmt.Sprintf("%.3fs", parallelSeconds),
			fmt.Sprintf("%.2f×", ct.Speedup), fmt.Sprint(identical))
		fmt.Println(tb.String())
	}
	if !identical {
		return ct, fmt.Errorf("parallel cluster grid diverged from serial results")
	}
	return ct, nil
}

// runPrefixBench serves the three prefix-sharing workloads — multi-turn
// conversations, agent loops over a common tool preamble, and RAG
// prompts against a popularity-skewed document set — twice each on
// matched engines, cache off and cache on, and reports the hit rate and
// the prefill/TTFT/goodput deltas. The conversation row doubles as a
// self-check of the PR's acceptance claims: at least a 2× prefill-token
// reduction and a positive goodput delta, or the bench fails.
func runPrefixBench(block int, quiet bool) (*prefixTiming, error) {
	if block <= 0 {
		return nil, fmt.Errorf("-prefix-block must be positive, got %d", block)
	}
	ctx := context.Background()
	// The 32G card gives the cache a budget that holds a conversation
	// working set next to the 6.7B weights (the default 16G pairing
	// thrashes it — the serve tests pin that regime separately).
	newEngine := func(cacheOn bool) (*alisa.Engine, error) {
		opts := []alisa.Option{alisa.WithProfile("V100-32GB"), alisa.WithMaxBatch(8)}
		if cacheOn {
			opts = append(opts, alisa.WithPrefixCache(alisa.PrefixCache{BlockTokens: block}))
		}
		return alisa.New("opt-6.7b", opts...)
	}
	workloads := []struct {
		name string
		run  func(eng *alisa.Engine) (*alisa.ServeResult, error)
	}{
		{"conversation", func(eng *alisa.Engine) (*alisa.ServeResult, error) {
			tr, err := alisa.NewConversationTrace(6, 8, 4.0, 2048, 21)
			if err != nil {
				return nil, err
			}
			return eng.Serve(ctx, tr)
		}},
		{"agent", func(eng *alisa.Engine) (*alisa.ServeResult, error) {
			return eng.ServeScripted(ctx, alisa.NewAgentClients(4, 8, 0.25, 2048, 17))
		}},
		{"rag", func(eng *alisa.Engine) (*alisa.ServeResult, error) {
			tr, err := alisa.NewRAGTrace(48, 8.0, 2048, 23)
			if err != nil {
				return nil, err
			}
			return eng.Serve(ctx, tr)
		}},
	}

	pt := &prefixTiming{BlockTokens: block}
	for _, w := range workloads {
		start := time.Now()
		pair := [2]*alisa.ServeResult{}
		for i, cacheOn := range []bool{false, true} {
			eng, err := newEngine(cacheOn)
			if err != nil {
				return nil, err
			}
			if pair[i], err = w.run(eng); err != nil {
				return nil, fmt.Errorf("%s (cache %t): %w", w.name, cacheOn, err)
			}
		}
		off, on := pair[0], pair[1]
		row := prefixWorkload{
			Name:             w.name,
			Requests:         len(on.Requests),
			HitRate:          on.PrefixHitRate(),
			SharedBytesPeak:  on.PrefixSharedBytes,
			PrefillTokensOff: off.PrefillTokens,
			PrefillTokensOn:  on.PrefillTokens,
			TTFTMeanOff:      off.TTFT.Mean,
			TTFTMeanOn:       on.TTFT.Mean,
			GoodputOff:       off.Goodput,
			GoodputOn:        on.Goodput,
			GoodputDelta:     on.Goodput - off.Goodput,
			Seconds:          time.Since(start).Seconds(),
		}
		if on.PrefillTokens > 0 {
			row.PrefillReduction = float64(off.PrefillTokens) / float64(on.PrefillTokens)
		}
		pt.Workloads = append(pt.Workloads, row)
	}

	if !quiet {
		fmt.Printf("== prefix-sharing bench — cache-off vs cache-on, %d-token blocks\n\n", block)
		tb := textfmt.NewTable("workload", "requests", "hit%", "prefill off", "prefill on", "reduction",
			"TTFT off", "TTFT on", "goodput off", "goodput on")
		for _, w := range pt.Workloads {
			tb.AddRow(w.Name, fmt.Sprint(w.Requests),
				fmt.Sprintf("%.0f%%", w.HitRate*100),
				fmt.Sprint(w.PrefillTokensOff), fmt.Sprint(w.PrefillTokensOn),
				fmt.Sprintf("%.1f×", w.PrefillReduction),
				textfmt.Seconds(w.TTFTMeanOff), textfmt.Seconds(w.TTFTMeanOn),
				fmt.Sprintf("%.1f", w.GoodputOff), fmt.Sprintf("%.1f", w.GoodputOn))
		}
		fmt.Println(tb.String())
	}
	conv := pt.Workloads[0]
	if conv.PrefillReduction < 2 {
		return pt, fmt.Errorf("conversation prefill reduction %.2f× under the 2× acceptance floor", conv.PrefillReduction)
	}
	if conv.GoodputDelta <= 0 {
		return pt, fmt.Errorf("conversation goodput delta %.3f not positive", conv.GoodputDelta)
	}
	return pt, nil
}

// runScaleBench streams n requests through one scale-mode Session
// (WithExactMetrics(-1): streaming digests, recycled records) under
// paced injection — the queue is topped up to liveCap and advanced until
// it half-drains, an open-loop client with bounded backlog. It measures
// wall clock over the whole stream and the steady-state allocation rate
// past a warm-up prefix, the public-API view of BenchmarkServeMillion.
func runScaleBench(n, liveCap int, quiet bool) (*scaleTiming, error) {
	if n <= 0 {
		return nil, fmt.Errorf("-scale-n must be positive, got %d", n)
	}
	if liveCap < 2 {
		return nil, fmt.Errorf("-scale-live must be at least 2, got %d", liveCap)
	}
	eng, err := alisa.New("opt-6.7b",
		alisa.WithScheduler("gpu-only"), alisa.WithMaxBatch(8), alisa.WithExactMetrics(-1))
	if err != nil {
		return nil, err
	}
	s, err := eng.Open(context.Background())
	if err != nil {
		return nil, err
	}
	pace := func(next, until int) (int, error) {
		for next < until {
			for next < until && s.Pending()+s.InFlight() < liveCap {
				if err := s.Push(alisa.Request{ID: next, Arrival: s.Clock(), Input: 32, Output: 4}); err != nil {
					return next, err
				}
				next++
			}
			for s.Pending()+s.InFlight() > liveCap/2 {
				if _, err := s.Advance(); err != nil {
					return next, err
				}
			}
		}
		return next, nil
	}

	warm := 4096
	if warm > n/2 {
		warm = n / 2
	}
	start := time.Now()
	next, err := pace(0, warm)
	if err != nil {
		return nil, err
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if _, err := pace(next, n); err != nil {
		return nil, err
	}
	runtime.ReadMemStats(&m1)
	res, err := s.Close()
	if err != nil {
		return nil, err
	}
	wall := time.Since(start).Seconds()
	if res.Completed != n {
		return nil, fmt.Errorf("scale bench completed %d of %d requests", res.Completed, n)
	}

	st := &scaleTiming{
		Requests:          n,
		LiveCap:           liveCap,
		WallSeconds:       wall,
		RequestsPerSecond: float64(n) / wall,
		AllocsPerRequest:  float64(m1.Mallocs-m0.Mallocs) / float64(n-warm),
		HeapMB:            float64(m1.HeapAlloc) / (1 << 20),
	}
	if !quiet {
		fmt.Printf("== scale serve bench — %d requests, in-flight cap %d\n\n", n, liveCap)
		tb := textfmt.NewTable("requests", "wall", "req/s", "allocs/req", "heap")
		tb.AddRow(fmt.Sprint(n), fmt.Sprintf("%.3fs", wall),
			fmt.Sprintf("%.0f", st.RequestsPerSecond),
			fmt.Sprintf("%.2f", st.AllocsPerRequest),
			fmt.Sprintf("%.1f MB", st.HeapMB))
		fmt.Println(tb.String())
	}
	return st, nil
}

func execute(r experiments.Runner, quiet bool) (timing, error) {
	start := time.Now()
	res, err := r.Run()
	if err != nil {
		return timing{}, fmt.Errorf("%s: %w", r.ID, err)
	}
	elapsed := time.Since(start)
	out := res.Render()
	if !quiet {
		fmt.Printf("== %s — %s (ran in %s)\n\n", r.ID, r.Title, elapsed.Round(time.Millisecond))
		fmt.Println(out)
	}
	return timing{
		ID:          r.ID,
		Title:       r.Title,
		Seconds:     elapsed.Seconds(),
		OutputBytes: len(out),
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alisa-bench:", err)
	os.Exit(1)
}
