// Command alisa-bench regenerates the paper's evaluation: every table and
// figure, or a selected subset — and benches the compiled engine itself
// over a (model × scheduler × batch) grid.
//
// Usage:
//
//	alisa-bench -list            # enumerate experiments
//	alisa-bench -run fig9        # one experiment
//	alisa-bench -all             # the full evaluation
//	alisa-bench -all -json       # machine-readable timings on stdout
//	alisa-bench -grid            # engine grid: per-cell wall/sim timing
//
// With -json the rendered reports are suppressed and a single JSON
// document is written to stdout instead, so the bench trajectory can be
// tracked PR-over-PR (e.g. `alisa-bench -all -json > BENCH_$(git
// rev-parse --short HEAD).json`). The format is documented in
// EXPERIMENTS.md:
//
//	{
//	  "total_seconds": 3.21,
//	  "experiments": [
//	    {"id": "fig8", "title": "...", "seconds": 2.38, "output_bytes": 123456},
//	    ...
//	  ]
//	}
//
// With -grid the engine API is exercised directly: one alisa.Engine is
// compiled per (model, scheduler) pair and reused across every batch-size
// cell, and a streaming Observer collects per-cell decode-step counts and
// simulated time alongside the measured wall time — the per-cell timing
// view of the public API's hot path.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	alisa "repro"
	"repro/internal/experiments"
	"repro/internal/textfmt"
)

// timing is one experiment's entry in the -json report.
type timing struct {
	ID          string  `json:"id"`
	Title       string  `json:"title"`
	Seconds     float64 `json:"seconds"`
	OutputBytes int     `json:"output_bytes"`
}

// report is the top-level -json document.
type report struct {
	TotalSeconds float64  `json:"total_seconds"`
	Experiments  []timing `json:"experiments"`
}

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "run one experiment by id (e.g. fig9)")
	all := flag.Bool("all", false, "run every experiment in paper order")
	asJSON := flag.Bool("json", false, "emit machine-readable timings instead of rendered reports")
	grid := flag.Bool("grid", false, "bench the compiled engine over a model × scheduler × batch grid")
	gridModels := flag.String("grid-models", "opt-6.7b,opt-13b", "comma-separated models for -grid")
	gridScheds := flag.String("grid-sched", "alisa,flexgen,vllm", "comma-separated schedulers for -grid")
	gridBatches := flag.String("grid-batches", "8,16,32", "comma-separated batch sizes for -grid")
	flag.Parse()

	var runners []experiments.Runner
	switch {
	case *grid:
		if err := runGrid(*gridModels, *gridScheds, *gridBatches); err != nil {
			fatal(err)
		}
		return
	case *list:
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	case *run != "":
		r, err := experiments.ByID(*run)
		if err != nil {
			fatal(err)
		}
		runners = []experiments.Runner{r}
	case *all:
		runners = experiments.All()
	default:
		flag.Usage()
		os.Exit(2)
	}

	rep := report{}
	start := time.Now()
	for _, r := range runners {
		t, err := execute(r, *asJSON)
		if err != nil {
			fatal(err)
		}
		rep.Experiments = append(rep.Experiments, t)
	}
	rep.TotalSeconds = time.Since(start).Seconds()
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	}
}

// cellStats accumulates one grid cell's observer events.
type cellStats struct {
	steps int
}

// runGrid benches the compiled-engine hot path: each (model, scheduler)
// engine is compiled once, then every batch cell reuses it. The observer
// counts the decode steps the cell actually simulated.
func runGrid(models, scheds, batches string) error {
	var sizes []int
	for _, b := range strings.Split(batches, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(b), "%d", &v); err != nil || v <= 0 {
			return fmt.Errorf("bad -grid-batches entry %q", b)
		}
		sizes = append(sizes, v)
	}

	ctx := context.Background()
	tb := textfmt.NewTable("model", "scheduler", "batch", "wall", "sim", "steps", "tok/s")
	for _, modelName := range strings.Split(models, ",") {
		modelName = strings.TrimSpace(modelName)
		for _, schedName := range strings.Split(scheds, ",") {
			schedName = strings.TrimSpace(schedName)
			stats := &cellStats{}
			opts := []alisa.Option{
				alisa.WithScheduler(schedName),
				alisa.WithObserver(alisa.ObserverFuncs{
					Step: func(e alisa.StepEvent) { stats.steps++ },
				}),
			}
			if schedName == "alisa" {
				opts = append(opts, alisa.WithKVSparsity(0.8), alisa.WithKVBits(8))
			}
			eng, err := alisa.New(modelName, opts...)
			if err != nil {
				return err
			}
			for _, batch := range sizes {
				*stats = cellStats{}
				start := time.Now()
				res, err := eng.Simulate(ctx, alisa.Shape{Batch: batch, Input: 128, Output: 256})
				wall := time.Since(start)
				if err != nil {
					tb.AddRow(modelName, schedName, fmt.Sprint(batch),
						wall.Round(time.Microsecond).String(), "—", "—", "error: "+err.Error())
					continue
				}
				tb.AddRow(modelName, schedName, fmt.Sprint(batch),
					wall.Round(time.Microsecond).String(),
					textfmt.Seconds(res.TotalSeconds),
					fmt.Sprint(stats.steps),
					fmt.Sprintf("%.1f", res.Throughput))
			}
		}
	}
	fmt.Println(tb.String())
	return nil
}

func execute(r experiments.Runner, quiet bool) (timing, error) {
	start := time.Now()
	res, err := r.Run()
	if err != nil {
		return timing{}, fmt.Errorf("%s: %w", r.ID, err)
	}
	elapsed := time.Since(start)
	out := res.Render()
	if !quiet {
		fmt.Printf("== %s — %s (ran in %s)\n\n", r.ID, r.Title, elapsed.Round(time.Millisecond))
		fmt.Println(out)
	}
	return timing{
		ID:          r.ID,
		Title:       r.Title,
		Seconds:     elapsed.Seconds(),
		OutputBytes: len(out),
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alisa-bench:", err)
	os.Exit(1)
}
