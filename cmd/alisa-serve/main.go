// Command alisa-serve runs the continuous-batching serving simulator on a
// Poisson arrival trace with heterogeneous request shapes and compares KV
// placement policies on serving metrics: TTFT, TPOT, tail latency, and
// goodput.
//
// Usage:
//
//	alisa-serve                                  # default comparison
//	alisa-serve -model opt-6.7b -rate 3 -n 48    # one operating point
//	alisa-serve -sched alisa,vllm -rate 4
//	alisa-serve -sweep 0.5,1,2,4,8               # load sweep: throughput
//	                                             # and goodput vs offered
//	                                             # load per scheduler
//
// The baselines run dense FP16 KV; ALISA runs at -sparsity / -bits
// (paper headline: 0.8 / INT8), mirroring the lockstep evaluation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	alisa "repro"
	"repro/internal/textfmt"
)

func main() {
	modelName := flag.String("model", "opt-6.7b", "model catalog name")
	profile := flag.String("profile", "", "hardware profile (empty = paper pairing)")
	scheds := flag.String("sched", "alisa,flexgen,vllm,hf-accelerate,gpu-only", "comma-separated schedulers")
	n := flag.Int("n", 48, "requests in the trace")
	rate := flag.Float64("rate", 2, "mean arrival rate, requests/second")
	seed := flag.Int64("seed", 1, "trace seed")
	sparsity := flag.Float64("sparsity", 0.8, "ALISA KV sparsity")
	bits := flag.Int("bits", 8, "ALISA KV bits")
	maxBatch := flag.Int("max-batch", 16, "decode batch cap")
	sloTTFT := flag.Float64("slo-ttft", 10, "TTFT SLO seconds (goodput)")
	sloTPOT := flag.Float64("slo-tpot", 0.5, "TPOT SLO seconds/token (goodput)")
	sweep := flag.String("sweep", "", "comma-separated arrival rates for a load sweep")
	flag.Parse()

	if *n <= 0 {
		fatal(fmt.Errorf("-n must be positive, got %d", *n))
	}
	names := strings.Split(*scheds, ",")
	rates := []float64{*rate}
	if *sweep != "" {
		rates = nil
		for _, f := range strings.Split(*sweep, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fatal(fmt.Errorf("bad -sweep entry %q: %w", f, err))
			}
			rates = append(rates, v)
		}
	}
	for _, r := range rates {
		if r <= 0 {
			fatal(fmt.Errorf("arrival rate must be positive, got %v", r))
		}
	}

	for _, r := range rates {
		trace := alisa.PoissonTrace(*n, r, *seed)
		fmt.Printf("## %s, %d requests, Poisson %.2f req/s (offered load seed %d)\n\n",
			*modelName, *n, r, *seed)
		tb := textfmt.NewTable("scheduler", "tput tok/s", "goodput", "SLO%", "TTFT p50", "TTFT p99",
			"TPOT p50", "TPOT p99", "preempt", "batch")
		for _, name := range names {
			name = strings.TrimSpace(name)
			opts := alisa.ServeOptions{
				Model: *modelName, Profile: *profile, Scheduler: name,
				Trace: trace, KVBits: 16,
				MaxBatch: *maxBatch, SLOTTFT: *sloTTFT, SLOTPOT: *sloTPOT,
			}
			if name == "alisa" {
				opts.KVSparsity = *sparsity
				opts.KVBits = *bits
			}
			res, err := alisa.Serve(opts)
			if err != nil {
				tb.AddRow(name, "error: "+err.Error(), "", "", "", "", "", "", "", "")
				continue
			}
			tb.AddRow(name,
				fmt.Sprintf("%.1f", res.Throughput),
				fmt.Sprintf("%.1f", res.Goodput),
				fmt.Sprintf("%.0f%%", res.SLOAttainment*100),
				textfmt.Seconds(res.TTFT.P50), textfmt.Seconds(res.TTFT.P99),
				textfmt.Seconds(res.TPOT.P50), textfmt.Seconds(res.TPOT.P99),
				fmt.Sprintf("%d", res.Preemptions),
				fmt.Sprintf("%.1f", res.MeanBatch))
		}
		fmt.Println(tb.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alisa-serve:", err)
	os.Exit(1)
}
