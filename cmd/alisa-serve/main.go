// Command alisa-serve runs the continuous-batching serving simulator on a
// Poisson arrival trace with heterogeneous request shapes and compares KV
// placement policies on serving metrics: TTFT, TPOT, tail latency, and
// goodput.
//
// Usage:
//
//	alisa-serve                                  # default comparison
//	alisa-serve -model opt-6.7b -rate 3 -n 48    # one operating point
//	alisa-serve -sched alisa,vllm -rate 4
//	alisa-serve -sweep 0.5,1,2,4,8               # load sweep: throughput
//	                                             # and goodput vs offered
//	                                             # load per scheduler
//	alisa-serve -sweep 1,2,4,8 -parallel 0       # sweep cells run
//	                                             # concurrently (0 =
//	                                             # GOMAXPROCS workers)
//	alisa-serve -progress                        # live admit/preempt/finish
//	                                             # events on stderr
//
// The baselines run dense FP16 KV; ALISA runs at -sparsity / -bits
// (paper headline: 0.8 / INT8), mirroring the lockstep evaluation.
//
// Each scheduler's engine is compiled once and reused across every sweep
// rate. With -parallel the (scheduler × rate) cells execute concurrently
// on a bounded worker pool; every cell is the same single-goroutine
// deterministic simulation, so the tables are identical to a serial run
// regardless of completion order. Ctrl-C cancels the sweep: in-flight
// cells report metrics over the requests that completed, unstarted cells
// are skipped.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	alisa "repro"
	"repro/internal/grid"
	"repro/internal/textfmt"
)

func main() {
	modelName := flag.String("model", "opt-6.7b", "model catalog name")
	profile := flag.String("profile", "", "hardware profile (empty = paper pairing)")
	scheds := flag.String("sched", "alisa,flexgen,vllm,hf-accelerate,gpu-only", "comma-separated schedulers")
	n := flag.Int("n", 48, "requests in the trace")
	rate := flag.Float64("rate", 2, "mean arrival rate, requests/second")
	seed := flag.Int64("seed", 1, "trace seed")
	sparsity := flag.Float64("sparsity", 0.8, "ALISA KV sparsity")
	bits := flag.Int("bits", 8, "ALISA KV bits")
	maxBatch := flag.Int("max-batch", 16, "decode batch cap")
	sloTTFT := flag.Float64("slo-ttft", 10, "TTFT SLO seconds (goodput)")
	sloTPOT := flag.Float64("slo-tpot", 0.5, "TPOT SLO seconds/token (goodput)")
	sweep := flag.String("sweep", "", "comma-separated arrival rates for a load sweep")
	parallel := flag.Int("parallel", 1, "concurrent sweep cells (0 = GOMAXPROCS workers, 1 = serial)")
	progress := flag.Bool("progress", false, "stream admission/preemption/completion events to stderr")
	flag.Parse()

	if *n <= 0 {
		fatal(fmt.Errorf("-n must be positive, got %d", *n))
	}
	if *parallel < 0 {
		fatal(fmt.Errorf("-parallel must be ≥ 0, got %d", *parallel))
	}
	names := strings.Split(*scheds, ",")
	rates := []float64{*rate}
	if *sweep != "" {
		rates = nil
		for _, f := range strings.Split(*sweep, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fatal(fmt.Errorf("bad -sweep entry %q: %w", f, err))
			}
			rates = append(rates, v)
		}
	}
	for _, r := range rates {
		if r <= 0 {
			fatal(fmt.Errorf("arrival rate must be positive, got %v", r))
		}
	}

	// Compile one engine per scheduler up front; the sweep below reuses
	// them across every offered-load point. A scheduler that fails to
	// compile (unknown name, bad option) renders as an error row in every
	// table instead of aborting the comparison.
	engines := make(map[string]*alisa.Engine, len(names))
	compileErr := make(map[string]error, len(names))
	for i, name := range names {
		name = strings.TrimSpace(name)
		names[i] = name
		opts := []alisa.Option{
			alisa.WithScheduler(name),
			alisa.WithMaxBatch(*maxBatch),
			alisa.WithSLO(*sloTTFT, *sloTPOT),
		}
		if *profile != "" {
			opts = append(opts, alisa.WithProfile(*profile))
		}
		if name == "alisa" {
			opts = append(opts, alisa.WithKVSparsity(*sparsity), alisa.WithKVBits(*bits))
		}
		if *progress {
			// One observer instance serves every cell of this scheduler;
			// with -parallel those cells run concurrently, so delivery is
			// serialized.
			opts = append(opts, alisa.WithObserver(alisa.SynchronizedObserver(progressObserver(name))))
		}
		eng, err := alisa.New(*modelName, opts...)
		if err != nil {
			compileErr[name] = err
			continue
		}
		engines[name] = eng
	}

	// Ctrl-C cancels the sweep; computed and in-flight cells still print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The sweep grid: cell (ri, si) = rates[ri] × names[si], results in
	// index-addressed storage so the tables render in deterministic order
	// no matter which worker finishes a cell first.
	traces := make([]alisa.TraceWorkload, len(rates))
	for ri, r := range rates {
		traces[ri] = alisa.PoissonTrace(*n, r, *seed)
	}
	cells := len(rates) * len(names)
	results := make([]*alisa.ServeResult, cells)
	errs := make([]error, cells)
	started := make([]bool, cells)
	_ = grid.Run(ctx, cells, *parallel, func(cellCtx context.Context, c int) {
		name := names[c%len(names)]
		eng := engines[name]
		if eng == nil {
			return // compile error renders from compileErr
		}
		started[c] = true
		results[c], errs[c] = eng.Serve(cellCtx, traces[c/len(names)])
	})

	for ri := range rates {
		fmt.Printf("## %s, %d requests, Poisson %.2f req/s (offered load seed %d)\n\n",
			*modelName, *n, rates[ri], *seed)
		tb := textfmt.NewTable("scheduler", "tput tok/s", "goodput", "SLO%", "TTFT p50", "TTFT p99",
			"TPOT p50", "TPOT p99", "preempt", "batch")
		for si, name := range names {
			c := ri*len(names) + si
			res, err := results[c], errs[c]
			switch {
			case compileErr[name] != nil:
				addErrorRow(tb, name, compileErr[name])
			case !started[c]:
				addErrorRow(tb, name, fmt.Errorf("skipped: sweep cancelled"))
			case err != nil && !(res != nil && ctx.Err() != nil):
				addErrorRow(tb, name, err)
			default:
				label := name
				if err != nil {
					// The only error that reaches here is this cell's own
					// cancellation with partial metrics; cells that finished
					// before Ctrl-C keep their plain label.
					label = fmt.Sprintf("%s (cancelled: %d/%d done)", name, len(res.Requests), *n)
				}
				tb.AddRow(label,
					fmt.Sprintf("%.1f", res.Throughput),
					fmt.Sprintf("%.1f", res.Goodput),
					fmt.Sprintf("%.0f%%", res.SLOAttainment*100),
					textfmt.Seconds(res.TTFT.P50), textfmt.Seconds(res.TTFT.P99),
					textfmt.Seconds(res.TPOT.P50), textfmt.Seconds(res.TPOT.P99),
					fmt.Sprintf("%d", res.Preemptions),
					fmt.Sprintf("%.1f", res.MeanBatch))
			}
		}
		fmt.Println(tb.String())
	}
	if ctx.Err() != nil {
		fmt.Println("(sweep cancelled; unstarted cells were skipped)")
	}
}

// addErrorRow renders a cell that produced no metrics — compile failure,
// run error, or a cancelled-before-start cell — through the same column
// layout as the metric rows.
func addErrorRow(tb *textfmt.Table, name string, err error) {
	tb.AddRow(name, "error: "+err.Error(), "", "", "", "", "", "", "", "")
}

// progressObserver streams serving events live to stderr, prefixed with
// the scheduler under test.
func progressObserver(sched string) alisa.Observer {
	return alisa.ObserverFuncs{
		Admission: func(e alisa.AdmissionEvent) {
			fmt.Fprintf(os.Stderr, "[%s] t=%-10s admit   r%-3d in=%d out=%d wait=%s batch=%d\n",
				sched, textfmt.Seconds(e.Clock), e.Request, e.Input, e.Output,
				textfmt.Seconds(e.Wait), e.Batch)
		},
		Preemption: func(e alisa.PreemptionEvent) {
			fmt.Fprintf(os.Stderr, "[%s] t=%-10s preempt r%-3d gen=%d\n",
				sched, textfmt.Seconds(e.Clock), e.Request, e.Generated)
		},
		Completion: func(e alisa.CompletionEvent) {
			fmt.Fprintf(os.Stderr, "[%s] t=%-10s finish  r%-3d ttft=%s tpot=%s\n",
				sched, textfmt.Seconds(e.Clock), e.Request,
				textfmt.Seconds(e.TTFT), textfmt.Seconds(e.TPOT))
		},
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alisa-serve:", err)
	os.Exit(1)
}
