// Command alisa-serve runs the continuous-batching serving simulator on a
// Poisson arrival trace with heterogeneous request shapes and compares KV
// placement policies on serving metrics: TTFT, TPOT, tail latency, and
// goodput.
//
// Usage:
//
//	alisa-serve                                  # default comparison
//	alisa-serve -model opt-6.7b -rate 3 -n 48    # one operating point
//	alisa-serve -sched alisa,vllm -rate 4
//	alisa-serve -sweep 0.5,1,2,4,8               # load sweep: throughput
//	                                             # and goodput vs offered
//	                                             # load per scheduler
//	alisa-serve -sweep 1,2,4,8 -parallel 0       # sweep cells run
//	                                             # concurrently (0 =
//	                                             # GOMAXPROCS workers)
//	alisa-serve -progress                        # live admit/preempt/finish
//	                                             # events on stderr
//	alisa-serve -closed-loop 1,2,4,8 -think 0.5  # closed-loop clients:
//	                                             # latency vs concurrency
//	alisa-serve -prefix-cache -workload conv     # multi-turn conversations
//	                                             # with block-granular
//	                                             # prefix KV sharing
//	alisa-serve -prefix-cache -workload agent \
//	            -closed-loop 2,4                 # agent loops sharing a
//	                                             # tool preamble
//
// The baselines run dense FP16 KV; ALISA runs at -sparsity / -bits
// (paper headline: 0.8 / INT8), mirroring the lockstep evaluation.
//
// -workload switches the request generator from the plain Poisson trace
// to one of the prefix-sharing shapes: "conv" (multi-turn conversations
// whose turns replay growing histories; open or closed loop), "agent"
// (tool-calling loops sharing a common preamble; closed loop only), or
// "rag" (retrieval prompts over a popularity-skewed document set; open
// loop only). With -prefix-cache the engines share block-aligned prompt
// prefixes copy-on-write across requests, and the tables grow hit-rate
// and prefilled-token columns.
//
// -closed-loop switches the workload regime: instead of replaying a
// Poisson arrival trace (open loop, offered load fixed), each of N
// concurrent clients issues a request, waits for its completion, thinks
// (-think, exponential), and issues the next — the feedback regime where
// offered load adapts to system speed, built on the streaming
// alisa.Session API. The comma-separated values are client counts; -n
// is the total request budget per cell, and the resulting table is
// latency versus concurrency per scheduler.
//
// Each scheduler's engine is compiled once and reused across every sweep
// rate. With -parallel the (scheduler × rate) cells execute concurrently
// on a bounded worker pool; every cell is the same single-goroutine
// deterministic simulation, so the tables are identical to a serial run
// regardless of completion order. Ctrl-C cancels the sweep: in-flight
// cells report metrics over the requests that completed, unstarted cells
// are skipped.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	alisa "repro"
	"repro/internal/grid"
	"repro/internal/textfmt"
)

func main() {
	modelName := flag.String("model", "opt-6.7b", "model catalog name")
	profile := flag.String("profile", "", "hardware profile (empty = paper pairing)")
	scheds := flag.String("sched", "alisa,flexgen,vllm,hf-accelerate,gpu-only", "comma-separated schedulers")
	n := flag.Int("n", 48, "requests in the trace")
	rate := flag.Float64("rate", 2, "mean arrival rate, requests/second")
	seed := flag.Int64("seed", 1, "trace seed")
	sparsity := flag.Float64("sparsity", 0.8, "ALISA KV sparsity")
	bits := flag.Int("bits", 8, "ALISA KV bits")
	maxBatch := flag.Int("max-batch", 16, "decode batch cap")
	sloTTFT := flag.Float64("slo-ttft", 10, "TTFT SLO seconds (goodput)")
	sloTPOT := flag.Float64("slo-tpot", 0.5, "TPOT SLO seconds/token (goodput)")
	sweep := flag.String("sweep", "", "comma-separated arrival rates for a load sweep")
	closedLoop := flag.String("closed-loop", "", "comma-separated client counts for a closed-loop latency-vs-concurrency run")
	think := flag.Float64("think", 0.5, "mean client think time in seconds for -closed-loop (exponential)")
	parallel := flag.Int("parallel", 1, "concurrent sweep cells (0 = GOMAXPROCS workers, 1 = serial)")
	progress := flag.Bool("progress", false, "stream admission/preemption/completion events to stderr")
	prefixCache := flag.Bool("prefix-cache", false, "share block-aligned prompt prefixes copy-on-write across requests")
	prefixBlock := flag.Int("prefix-block", 16, "prefix cache block size in tokens (with -prefix-cache)")
	workloadName := flag.String("workload", "", "prefix-sharing workload: conv, agent (closed loop only), or rag (open loop only); empty = plain Poisson")
	flag.Parse()

	if err := validateFlags(*n, *parallel, *think, *sweep, *closedLoop, *workloadName, *prefixCache, *prefixBlock); err != nil {
		fatal(err)
	}
	names := strings.Split(*scheds, ",")
	rates := []float64{*rate}
	if *sweep != "" {
		rates = nil
		for _, f := range strings.Split(*sweep, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fatal(fmt.Errorf("bad -sweep entry %q: %w", f, err))
			}
			rates = append(rates, v)
		}
	}
	for _, r := range rates {
		if r <= 0 {
			fatal(fmt.Errorf("arrival rate must be positive, got %v", r))
		}
	}
	var clientCounts []int
	if *closedLoop != "" {
		for _, f := range strings.Split(*closedLoop, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v <= 0 {
				fatal(fmt.Errorf("bad -closed-loop entry %q: want a positive client count", f))
			}
			clientCounts = append(clientCounts, v)
		}
	}

	// Compile one engine per scheduler up front; the sweep below reuses
	// them across every offered-load point. A scheduler that fails to
	// compile (unknown name, bad option) renders as an error row in every
	// table instead of aborting the comparison.
	engines := make(map[string]*alisa.Engine, len(names))
	compileErr := make(map[string]error, len(names))
	for i, name := range names {
		name = strings.TrimSpace(name)
		names[i] = name
		opts := []alisa.Option{
			alisa.WithScheduler(name),
			alisa.WithMaxBatch(*maxBatch),
			alisa.WithSLO(*sloTTFT, *sloTPOT),
		}
		if *profile != "" {
			opts = append(opts, alisa.WithProfile(*profile))
		}
		if name == "alisa" {
			opts = append(opts, alisa.WithKVSparsity(*sparsity), alisa.WithKVBits(*bits))
		}
		if *prefixCache {
			opts = append(opts, alisa.WithPrefixCache(alisa.PrefixCache{BlockTokens: *prefixBlock}))
		}
		if *progress {
			// One observer instance serves every cell of this scheduler;
			// with -parallel those cells run concurrently, so delivery is
			// serialized.
			opts = append(opts, alisa.WithObserver(alisa.SynchronizedObserver(progressObserver(name))))
		}
		eng, err := alisa.New(*modelName, opts...)
		if err != nil {
			compileErr[name] = err
			continue
		}
		engines[name] = eng
	}

	// Ctrl-C cancels the sweep; computed and in-flight cells still print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if len(clientCounts) > 0 {
		runClosedLoop(ctx, names, engines, compileErr, clientCounts, *n, *think, *seed, *parallel,
			*modelName, *workloadName, *prefixCache)
		return
	}

	// The sweep grid: cell (ri, si) = rates[ri] × names[si], results in
	// index-addressed storage so the tables render in deterministic order
	// no matter which worker finishes a cell first.
	traces := make([]alisa.TraceWorkload, len(rates))
	for ri, r := range rates {
		tr, err := makeTrace(*workloadName, *n, r, *seed)
		if err != nil {
			fatal(err)
		}
		traces[ri] = tr
	}
	cells := len(rates) * len(names)
	results, errs, started := runCells(ctx, cells, *parallel, func(cellCtx context.Context, c int) (*alisa.ServeResult, error) {
		eng := engines[names[c%len(names)]]
		if eng == nil {
			return nil, nil // compile error renders from compileErr
		}
		return eng.Serve(cellCtx, traces[c/len(names)])
	})

	for ri := range rates {
		fmt.Printf("## %s, %d %s requests, %.2f req/s (seed %d)\n\n",
			*modelName, len(traces[ri]), workloadLabel(*workloadName), rates[ri], *seed)
		tb := textfmt.NewTable(tableCols(*prefixCache, "scheduler", "tput tok/s", "goodput", "SLO%",
			"TTFT p50", "TTFT p99", "TPOT p50", "TPOT p99", "preempt", "batch")...)
		for si, name := range names {
			c := ri*len(names) + si
			res := results[c]
			suffix, rowErr := classifyCell(compileErr[name], started[c], res, errs[c], ctx.Err() != nil, len(traces[ri]))
			if rowErr != nil {
				addErrorRow(tb, name, rowErr)
				continue
			}
			tb.AddRow(prefixRow(*prefixCache, res,
				name+suffix,
				fmt.Sprintf("%.1f", res.Throughput),
				fmt.Sprintf("%.1f", res.Goodput),
				fmt.Sprintf("%.0f%%", res.SLOAttainment*100),
				textfmt.Seconds(res.TTFT.P50), textfmt.Seconds(res.TTFT.P99),
				textfmt.Seconds(res.TPOT.P50), textfmt.Seconds(res.TPOT.P99),
				fmt.Sprintf("%d", res.Preemptions),
				fmt.Sprintf("%.1f", res.MeanBatch))...)
		}
		fmt.Println(tb.String())
	}
	if ctx.Err() != nil {
		fmt.Println("(sweep cancelled; unstarted cells were skipped)")
	}
}

// validateFlags rejects inconsistent serve parameters before any engine
// compiles; table-tested in main_test.go.
func validateFlags(n, parallel int, think float64, sweep, closedLoop, workload string,
	prefixCache bool, prefixBlock int) error {
	if n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", n)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be ≥ 0, got %d", parallel)
	}
	if sweep != "" && closedLoop != "" {
		return fmt.Errorf("-sweep and -closed-loop are different load regimes; pick one")
	}
	if think < 0 {
		return fmt.Errorf("-think must be ≥ 0, got %v", think)
	}
	switch workload {
	case "", "conv":
	case "agent":
		if closedLoop == "" {
			return fmt.Errorf("-workload agent is closed-loop only; add -closed-loop")
		}
	case "rag":
		if closedLoop != "" {
			return fmt.Errorf("-workload rag is open-loop only; drop -closed-loop")
		}
	default:
		return fmt.Errorf("unknown -workload %q (want conv, agent, or rag)", workload)
	}
	if prefixCache && prefixBlock <= 0 {
		return fmt.Errorf("-prefix-block must be positive, got %d", prefixBlock)
	}
	return nil
}

// convTurns and scriptMaxSeq fix the workload-shape knobs the CLI does
// not expose: six-turn conversations and agent loops, capped at the
// catalog's universal 2048-token context.
const (
	convTurns    = 6
	scriptMaxSeq = 2048
)

// makeTrace builds one open-loop trace at the offered rate: the plain
// Poisson shape trace, or a token-carrying prefix-sharing workload. n is
// the request budget; the conversation shape rounds it up to whole
// conversations.
func makeTrace(workload string, n int, rate float64, seed int64) (alisa.TraceWorkload, error) {
	switch workload {
	case "conv":
		return alisa.NewConversationTrace((n+convTurns-1)/convTurns, convTurns, rate, scriptMaxSeq, seed)
	case "rag":
		return alisa.NewRAGTrace(n, rate, scriptMaxSeq, seed)
	}
	return alisa.PoissonTrace(n, rate, seed), nil
}

// workloadLabel names the request generator in table headings.
func workloadLabel(workload string) string {
	switch workload {
	case "conv":
		return "conversation"
	case "agent":
		return "agent-loop"
	case "rag":
		return "RAG"
	}
	return "Poisson"
}

// tableCols appends the prefix-cache columns to a table header when the
// cache is on; prefixRow does the same for a metric row.
func tableCols(prefixOn bool, cols ...string) []string {
	if prefixOn {
		cols = append(cols, "hit%", "prefill tok")
	}
	return cols
}

func prefixRow(prefixOn bool, res *alisa.ServeResult, cells ...string) []string {
	if prefixOn {
		cells = append(cells,
			fmt.Sprintf("%.0f%%", res.PrefixHitRate()*100),
			fmt.Sprintf("%d", res.PrefillTokens))
	}
	return cells
}

// runCells executes one scheduler-grid's cells on the bounded worker
// pool, storing each outcome at its deterministic index so tables render
// in grid order regardless of completion order.
func runCells(ctx context.Context, cells, parallel int,
	run func(context.Context, int) (*alisa.ServeResult, error)) (results []*alisa.ServeResult, errs []error, started []bool) {
	results = make([]*alisa.ServeResult, cells)
	errs = make([]error, cells)
	started = make([]bool, cells)
	_ = grid.Run(ctx, cells, parallel, func(cellCtx context.Context, c int) {
		started[c] = true
		results[c], errs[c] = run(cellCtx, c)
	})
	return results, errs, started
}

// classifyCell folds one executed cell's outcome into either an error to
// render as an error row, or a label suffix — empty for a healthy cell,
// the partial-progress note for a cell cancelled mid-run (the only
// runErr that carries metrics: interrupted runs report over the
// requests that completed; cells that finished before Ctrl-C keep their
// plain label).
func classifyCell(compileErr error, started bool, res *alisa.ServeResult, runErr error,
	interrupted bool, n int) (suffix string, rowErr error) {
	switch {
	case compileErr != nil:
		return "", compileErr
	case !started:
		return "", fmt.Errorf("skipped: cancelled before start")
	case runErr != nil && !(res != nil && interrupted):
		return "", runErr
	case runErr != nil:
		return fmt.Sprintf(" (cancelled: %d/%d done)", len(res.Requests), n), nil
	}
	return "", nil
}

// runClosedLoop runs the closed-loop latency-vs-concurrency grid: for
// every (client count × scheduler) cell, n requests are issued by that
// many closed-loop clients — Engine.ServeClosedLoop for the plain
// workload, Engine.ServeScripted with conversation or agent scripts for
// the prefix-sharing ones — and each scheduler prints one table of
// serving metrics against concurrency.
// Cells run on the same bounded worker pool as the sweep; every cell is
// deterministic in the seed, so the tables are stable across -parallel
// settings.
func runClosedLoop(ctx context.Context, names []string, engines map[string]*alisa.Engine,
	compileErr map[string]error, clientCounts []int, n int, think float64, seed int64, parallel int,
	modelName, workload string, prefixOn bool) {
	// Scripted workloads issue whole per-client scripts instead of a
	// shared request budget: each client runs budget(clients) requests.
	budget := func(clients int) int {
		if workload == "" {
			return n
		}
		per := n / clients
		if per < 1 {
			per = 1
		}
		return per * clients
	}
	cells := len(clientCounts) * len(names)
	results, errs, started := runCells(ctx, cells, parallel, func(cellCtx context.Context, c int) (*alisa.ServeResult, error) {
		eng := engines[names[c%len(names)]]
		if eng == nil {
			return nil, nil // compile error renders from compileErr
		}
		clients := clientCounts[c/len(names)]
		switch workload {
		case "conv":
			return eng.ServeScripted(cellCtx,
				alisa.NewConversationClients(clients, budget(clients)/clients, think, scriptMaxSeq, seed))
		case "agent":
			return eng.ServeScripted(cellCtx,
				alisa.NewAgentClients(clients, budget(clients)/clients, think, scriptMaxSeq, seed))
		}
		return eng.ServeClosedLoop(cellCtx, alisa.ClosedLoop{
			Clients:   clients,
			Requests:  n,
			ThinkTime: think,
			Seed:      seed,
		})
	})

	for si, name := range names {
		fmt.Printf("## %s, closed loop (%s): %d requests, think %.2fs (seed %d) — %s\n\n",
			modelName, workloadLabel(workload), n, think, seed, name)
		tb := textfmt.NewTable(tableCols(prefixOn, "clients", "tput tok/s", "goodput", "SLO%",
			"TTFT p50", "TTFT p99", "TPOT p50", "TPOT p99", "E2E p50", "preempt", "batch")...)
		for ci, clients := range clientCounts {
			c := ci*len(names) + si
			res := results[c]
			label := fmt.Sprintf("%d", clients)
			suffix, rowErr := classifyCell(compileErr[name], started[c], res, errs[c], ctx.Err() != nil, budget(clients))
			if rowErr != nil {
				addErrorRow(tb, label, rowErr)
				continue
			}
			tb.AddRow(prefixRow(prefixOn, res,
				label+suffix,
				fmt.Sprintf("%.1f", res.Throughput),
				fmt.Sprintf("%.1f", res.Goodput),
				fmt.Sprintf("%.0f%%", res.SLOAttainment*100),
				textfmt.Seconds(res.TTFT.P50), textfmt.Seconds(res.TTFT.P99),
				textfmt.Seconds(res.TPOT.P50), textfmt.Seconds(res.TPOT.P99),
				textfmt.Seconds(res.E2E.P50),
				fmt.Sprintf("%d", res.Preemptions),
				fmt.Sprintf("%.1f", res.MeanBatch))...)
		}
		fmt.Println(tb.String())
	}
	if ctx.Err() != nil {
		fmt.Println("(closed-loop run cancelled; unstarted cells were skipped)")
	}
}

// addErrorRow renders a cell that produced no metrics — compile failure,
// run error, or a cancelled-before-start cell — through the same column
// layout as the metric rows (AddRow pads the remaining columns), for
// both the sweep and closed-loop tables.
func addErrorRow(tb *textfmt.Table, label string, err error) {
	tb.AddRow(label, "error: "+err.Error())
}

// progressObserver streams serving events live to stderr, prefixed with
// the scheduler under test.
func progressObserver(sched string) alisa.Observer {
	return alisa.ObserverFuncs{
		Admission: func(e alisa.AdmissionEvent) {
			fmt.Fprintf(os.Stderr, "[%s] t=%-10s admit   r%-3d in=%d out=%d wait=%s batch=%d\n",
				sched, textfmt.Seconds(e.Clock), e.Request, e.Input, e.Output,
				textfmt.Seconds(e.Wait), e.Batch)
		},
		Preemption: func(e alisa.PreemptionEvent) {
			fmt.Fprintf(os.Stderr, "[%s] t=%-10s preempt r%-3d gen=%d\n",
				sched, textfmt.Seconds(e.Clock), e.Request, e.Generated)
		},
		Completion: func(e alisa.CompletionEvent) {
			fmt.Fprintf(os.Stderr, "[%s] t=%-10s finish  r%-3d ttft=%s tpot=%s\n",
				sched, textfmt.Seconds(e.Clock), e.Request,
				textfmt.Seconds(e.TTFT), textfmt.Seconds(e.TPOT))
		},
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alisa-serve:", err)
	os.Exit(1)
}
