package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name        string
		n, parallel int
		think       float64
		sweep       string
		closedLoop  string
		workload    string
		prefixCache bool
		prefixBlock int
		wantErr     string
	}{
		{"defaults", 48, 1, 0.5, "", "", "", false, 16, ""},
		{"parallel zero is GOMAXPROCS", 48, 0, 0.5, "1,2", "", "", false, 16, ""},
		{"zero n", 0, 1, 0.5, "", "", "", false, 16, "-n must be positive"},
		{"negative n", -3, 1, 0.5, "", "", "", false, 16, "-n must be positive"},
		{"negative parallel", 48, -2, 0.5, "", "", "", false, 16, "-parallel must be ≥ 0"},
		{"sweep and closed-loop", 48, 1, 0.5, "1,2", "4,8", "", false, 16, "pick one"},
		{"negative think", 48, 1, -0.1, "", "", "", false, 16, "-think must be ≥ 0"},
		{"closed loop alone", 48, 1, 0, "", "4,8", "", false, 16, ""},
		{"conv open loop", 48, 1, 0.5, "", "", "conv", true, 16, ""},
		{"conv closed loop", 48, 1, 0.5, "", "2,4", "conv", true, 16, ""},
		{"agent closed loop", 48, 1, 0.5, "", "2,4", "agent", true, 16, ""},
		{"agent open loop", 48, 1, 0.5, "", "", "agent", true, 16, "closed-loop only"},
		{"rag open loop", 48, 1, 0.5, "", "", "rag", true, 16, ""},
		{"rag closed loop", 48, 1, 0.5, "", "2,4", "rag", true, 16, "open-loop only"},
		{"unknown workload", 48, 1, 0.5, "", "", "batch", false, 16, "unknown -workload"},
		{"zero prefix block", 48, 1, 0.5, "", "", "conv", true, 0, "-prefix-block must be positive"},
		{"negative prefix block", 48, 1, 0.5, "", "", "", true, -8, "-prefix-block must be positive"},
		{"bad block ignored when cache off", 48, 1, 0.5, "", "", "", false, 0, ""},
	}
	for _, tc := range cases {
		err := validateFlags(tc.n, tc.parallel, tc.think, tc.sweep, tc.closedLoop,
			tc.workload, tc.prefixCache, tc.prefixBlock)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestMakeTrace(t *testing.T) {
	for _, tc := range []struct {
		workload string
		n, want  int
	}{
		{"", 48, 48},
		{"conv", 48, 48}, // 8 conversations × 6 turns
		{"conv", 50, 54}, // rounded up to 9 whole conversations
		{"rag", 32, 32},
	} {
		tr, err := makeTrace(tc.workload, tc.n, 2.0, 7)
		if err != nil {
			t.Fatalf("%q: %v", tc.workload, err)
		}
		if len(tr) != tc.want {
			t.Errorf("%q n=%d: trace length %d, want %d", tc.workload, tc.n, len(tr), tc.want)
		}
		if tc.workload != "" && len(tr[0].Tokens) == 0 {
			t.Errorf("%q: trace carries no token IDs", tc.workload)
		}
	}
}
