package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name        string
		n, parallel int
		think       float64
		sweep       string
		closedLoop  string
		wantErr     string
	}{
		{"defaults", 48, 1, 0.5, "", "", ""},
		{"parallel zero is GOMAXPROCS", 48, 0, 0.5, "1,2", "", ""},
		{"zero n", 0, 1, 0.5, "", "", "-n must be positive"},
		{"negative n", -3, 1, 0.5, "", "", "-n must be positive"},
		{"negative parallel", 48, -2, 0.5, "", "", "-parallel must be ≥ 0"},
		{"sweep and closed-loop", 48, 1, 0.5, "1,2", "4,8", "pick one"},
		{"negative think", 48, 1, -0.1, "", "", "-think must be ≥ 0"},
		{"closed loop alone", 48, 1, 0, "", "4,8", ""},
	}
	for _, tc := range cases {
		err := validateFlags(tc.n, tc.parallel, tc.think, tc.sweep, tc.closedLoop)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}
