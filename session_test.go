package alisa

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/sched"
)

// sessionEngineOpts compiles the option set the session suite uses for a
// scheduler: the paper's sparse/INT8 setting for alisa, dense FP16 for
// every baseline.
func sessionEngineOpts(name string, extra ...Option) []Option {
	opts := []Option{WithScheduler(name), WithMaxBatch(8), WithEventLog(true)}
	if name == "alisa" {
		opts = append(opts, WithKVSparsity(0.8), WithKVBits(8))
	}
	return append(opts, extra...)
}

// recordingObserver flattens every streamed event into strings, so two
// paths' full event streams — kinds, order, and payloads — compare as
// one slice.
type recordingObserver struct{ events []string }

func (r *recordingObserver) funcs() Observer {
	return ObserverFuncs{
		Step: func(e StepEvent) {
			r.events = append(r.events, fmt.Sprintf("step %+v", e))
		},
		Admission: func(e AdmissionEvent) {
			r.events = append(r.events, fmt.Sprintf("admit %+v", e))
		},
		FirstToken: func(e FirstTokenEvent) {
			r.events = append(r.events, fmt.Sprintf("first %+v", e))
		},
		Token: func(e TokenEvent) {
			r.events = append(r.events, fmt.Sprintf("token %+v", e))
		},
		Preemption: func(e PreemptionEvent) {
			r.events = append(r.events, fmt.Sprintf("preempt %+v", e))
		},
		Completion: func(e CompletionEvent) {
			r.events = append(r.events, fmt.Sprintf("finish %+v", e))
		},
	}
}

// TestSessionMatchesServe is the replay-equivalence property of the
// session redesign: for every registered servable scheduler, pushing a
// trace's arrivals into a Session and closing produces metrics, captured
// event log, AND streamed observer events bit-identical to Engine.Serve
// on the same trace. Runs pinned at GOMAXPROCS=4 so the -race CI pass
// exercises it with real parallelism available.
func TestSessionMatchesServe(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	trace := PoissonTrace(16, 3.0, 21)
	ctx := context.Background()
	for _, name := range sched.Registered() {
		if name == "deepspeed-zero" || name == "deepspeed" {
			continue // not servable: engine-wide weight streaming
		}
		t.Run(name, func(t *testing.T) {
			serveRec := &recordingObserver{}
			serveEng, err := New("opt-6.7b", sessionEngineOpts(name, WithObserver(serveRec.funcs()))...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := serveEng.Serve(ctx, trace)
			if err != nil {
				t.Fatalf("Serve: %v", err)
			}

			sessRec := &recordingObserver{}
			sessEng, err := New("opt-6.7b", sessionEngineOpts(name, WithObserver(sessRec.funcs()))...)
			if err != nil {
				t.Fatal(err)
			}
			s, err := sessEng.Open(ctx)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			for _, r := range trace {
				if err := s.Push(r); err != nil {
					t.Fatalf("Push r%d: %v", r.ID, err)
				}
			}
			got, err := s.Close()
			if err != nil {
				t.Fatalf("Close: %v", err)
			}

			if !reflect.DeepEqual(want, got) {
				t.Fatalf("session result diverged from Serve:\nserve:   %+v\nsession: %+v", want, got)
			}
			if want.RenderEventLog() != got.RenderEventLog() {
				t.Fatal("captured event logs diverged")
			}
			if !reflect.DeepEqual(serveRec.events, sessRec.events) {
				min := len(serveRec.events)
				if len(sessRec.events) < min {
					min = len(sessRec.events)
				}
				for i := 0; i < min; i++ {
					if serveRec.events[i] != sessRec.events[i] {
						t.Fatalf("observer streams diverged at event %d:\nserve:   %s\nsession: %s",
							i, serveRec.events[i], sessRec.events[i])
					}
				}
				t.Fatalf("observer stream lengths diverged: %d vs %d", len(serveRec.events), len(sessRec.events))
			}
		})
	}
}

// sessionSeedAllocs mirrors internal/serve's seedAllocsPerRun: the
// allocation count of the pre-rebuild PR 3 loop on the pressured replay
// workload. The session path must stay ≥ 5× below it, extending
// TestServeSteadyStateAllocs to the streaming API.
const sessionSeedAllocs = 5647

// TestSessionSteadyStateAllocs is the session-path allocation guard: a
// full Open → Push×N → drain → Close cycle on the pressured replay
// workload (event log off) must stay ≥ 5× below the seed loop, i.e. the
// streaming surface must not reintroduce the per-iteration allocations
// the PR 4 rebuild removed.
func TestSessionSteadyStateAllocs(t *testing.T) {
	eng, err := New("opt-6.7b", WithKVSparsity(0.8), WithKVBits(8), WithMaxBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	trace := PoissonTrace(20, 3.0, 42)
	ctx := context.Background()
	cycle := func() {
		s, err := eng.Open(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range trace {
			if err := s.Push(r); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm build caches before measuring
	allocs := testing.AllocsPerRun(10, cycle)
	if limit := float64(sessionSeedAllocs) / 5; allocs > limit {
		t.Errorf("session cycle allocates %.0f per run, want ≤ %.0f (≥5× below the %d-alloc seed loop)",
			allocs, limit, sessionSeedAllocs)
	}
	t.Logf("allocs/session-cycle: %.0f (seed loop: %d)", allocs, sessionSeedAllocs)
}

// TestSessionWindowedMetrics drives a session turn by turn and checks
// the online window: snapshots appear as completions land, and with a
// window at least as large as the workload the final snapshot's digests
// equal the final ServeResult's exactly.
func TestSessionWindowedMetrics(t *testing.T) {
	const n = 12
	eng, err := New("opt-6.7b", WithKVSparsity(0.8), WithKVBits(8), WithMetricsWindow(n))
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Open(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap := s.Snapshot(); snap.Count != 0 {
		t.Fatalf("fresh session snapshot %+v", snap)
	}
	for _, r := range PoissonTrace(n, 2.5, 13) {
		if err := s.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	sawPartial := false
	for {
		progressed, err := s.Advance()
		if err != nil {
			t.Fatal(err)
		}
		if !progressed {
			break
		}
		if c := s.Snapshot().Count; c > 0 && c < n {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("no mid-run snapshot observed completions before the end")
	}
	final := s.Snapshot()
	res, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if final.Count != n {
		t.Fatalf("final window holds %d of %d", final.Count, n)
	}
	if final.TTFT != res.TTFT || final.TPOT != res.TPOT || final.E2E != res.E2E {
		t.Fatalf("full-window digests diverged from final result:\nwindow TTFT %+v\nresult TTFT %+v", final.TTFT, res.TTFT)
	}
	if final.SLOAttainment != res.SLOAttainment {
		t.Fatalf("window SLO %v != result %v", final.SLOAttainment, res.SLOAttainment)
	}
}

// TestSessionLifecycleEvents pins the new lifecycle kinds end to end:
// one first-token event per admission, and exactly one token event per
// generated token of every completed request (preempted generations
// restart their token indices).
func TestSessionLifecycleEvents(t *testing.T) {
	var admits, firsts, tokens int
	outputs := map[int]int{}
	obs := ObserverFuncs{
		Admission:  func(AdmissionEvent) { admits++ },
		FirstToken: func(FirstTokenEvent) { firsts++ },
		Token: func(e TokenEvent) {
			tokens++
			outputs[e.Request] = e.Index
		},
	}
	eng, err := New("opt-6.7b", WithKVSparsity(0.8), WithKVBits(8), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	trace := PoissonTrace(10, 3, 4)
	res, err := eng.Serve(context.Background(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if firsts != admits {
		t.Fatalf("%d first-token events, %d admissions", firsts, admits)
	}
	want := 0
	for _, r := range trace {
		want += r.Output
		if outputs[r.ID] != r.Output {
			t.Fatalf("r%d: last token index %d, want %d", r.ID, outputs[r.ID], r.Output)
		}
	}
	if res.Preemptions == 0 && tokens != want {
		t.Fatalf("%d token events, want %d (no preemptions)", tokens, want)
	}
	if tokens < want {
		t.Fatalf("%d token events, want ≥ %d", tokens, want)
	}
}

// TestSessionStateErrors pins the session state machine: pushing,
// advancing, or subscribing after Close fails; Close is idempotent.
func TestSessionStateErrors(t *testing.T) {
	eng, err := New("opt-6.7b")
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Open(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe(nil); err == nil {
		t.Fatal("nil subscriber accepted")
	}
	if err := s.Push(Request{ID: 0, Arrival: 0, Input: 32, Output: 8}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Close()
	if err != nil || len(res.Requests) != 1 {
		t.Fatalf("Close: %v, %d requests", err, len(res.Requests))
	}
	again, err := s.Close()
	if err != nil || again != res {
		t.Fatal("Close not idempotent")
	}
	// Every use-after-Close failure is the one sentinel, so callers (the
	// HTTP gateway maps it to 503) can branch with errors.Is.
	if err := s.Push(Request{ID: 1, Arrival: 0, Input: 32, Output: 8}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Push after Close: %v, want ErrSessionClosed", err)
	}
	if _, err := s.Advance(); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Advance after Close: %v, want ErrSessionClosed", err)
	}
	if err := s.Subscribe(ObserverFuncs{}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Subscribe after Close: %v, want ErrSessionClosed", err)
	}
	if _, err := s.Fork(); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Fork after Close: %v, want ErrSessionClosed", err)
	}
}

// TestSessionCancellation cancels mid-session from a completion callback
// and expects Close to mirror Serve's contract: partial metrics over the
// finished requests alongside ctx.Err().
func TestSessionCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n, cancelAfter = 16, 3
	done := 0
	eng, err := New("opt-6.7b", WithKVSparsity(0.8), WithKVBits(8), WithMaxBatch(4),
		WithObserver(ObserverFuncs{Completion: func(CompletionEvent) {
			done++
			if done == cancelAfter {
				cancel()
			}
		}}))
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range PoissonTrace(n, 4, 7) {
		if err := s.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Close()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled Close returned no partial result")
	}
	if len(res.Requests) < cancelAfter || len(res.Requests) >= n {
		t.Fatalf("partial result has %d finished requests, want in [%d, %d)", len(res.Requests), cancelAfter, n)
	}
}

// TestSessionCancelCauseClassified pins the cancellation classification
// on the Session.Close path for cause-wrapped contexts: a context
// cancelled via context.WithCancelCause must still be treated as a
// cancellation — partial result returned, error matching
// context.Canceled — identically to serve.Run (see
// TestRunClassifiesCauseWrappedCancel in internal/serve).
func TestSessionCancelCauseClassified(t *testing.T) {
	cause := errors.New("fleet rebalance moved this session")
	ctx, cancel := context.WithCancelCause(context.Background())
	eng, err := New("opt-6.7b", WithKVSparsity(0.8), WithKVBits(8), WithMaxBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range PoissonTrace(8, 4, 7) {
		if err := s.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	cancel(cause)
	res, err := s.Close()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a context.Canceled classification", err)
	}
	if res == nil {
		t.Fatal("cause-wrapped cancellation must still carry the partial result")
	}
	if context.Cause(ctx) != cause {
		t.Fatalf("cause lost: %v", context.Cause(ctx))
	}
}

// TestServeClosedLoopDeterministicAndComplete pins the closed-loop
// driver: every budgeted request completes, the result is bit-identical
// across runs, and concurrency actually scales the in-flight load.
func TestServeClosedLoopDeterministicAndComplete(t *testing.T) {
	eng, err := New("opt-6.7b", WithKVSparsity(0.8), WithKVBits(8))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cl := ClosedLoop{Clients: 4, Requests: 24, ThinkTime: 0.25, Seed: 7}
	first, err := eng.ServeClosedLoop(ctx, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Requests) != cl.Requests {
		t.Fatalf("completed %d of %d", len(first.Requests), cl.Requests)
	}
	if first.Throughput <= 0 || first.TTFT.P99 <= 0 {
		t.Fatalf("degenerate metrics: %+v", first)
	}
	second, err := eng.ServeClosedLoop(ctx, cl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("closed-loop run not deterministic in its seed")
	}

	// The closed loop self-limits: never more in flight than clients.
	peak := 0
	probe, err := New("opt-6.7b", WithKVSparsity(0.8), WithKVBits(8),
		WithObserver(ObserverFuncs{Admission: func(e AdmissionEvent) {
			if e.Batch > peak {
				peak = e.Batch
			}
		}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.ServeClosedLoop(ctx, ClosedLoop{Clients: 3, Requests: 12, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if peak > 3 {
		t.Fatalf("peak batch %d exceeds %d closed-loop clients", peak, 3)
	}
}

// TestServeClosedLoopValidation walks the ClosedLoop field checks.
func TestServeClosedLoopValidation(t *testing.T) {
	eng, err := New("opt-6.7b")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		cl    ClosedLoop
		field string
	}{
		{ClosedLoop{Clients: 0, Requests: 8}, "Clients"},
		{ClosedLoop{Clients: -2, Requests: 8}, "Clients"},
		{ClosedLoop{Clients: 2, Requests: 0}, "Requests"},
		{ClosedLoop{Clients: 2, Requests: 8, ThinkTime: -1}, "ThinkTime"},
	}
	for _, tc := range cases {
		var ce *ConfigError
		if _, err := eng.ServeClosedLoop(ctx, tc.cl); !errors.As(err, &ce) || ce.Field != tc.field {
			t.Errorf("%+v: err = %v, want ConfigError on %s", tc.cl, err, tc.field)
		}
	}

	// Fewer requests than clients is legal: only Requests clients start.
	res, err := eng.ServeClosedLoop(ctx, ClosedLoop{Clients: 8, Requests: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Requests) != 3 {
		t.Fatalf("completed %d of 3", len(res.Requests))
	}
}

// TestWithMetricsWindowValidation pins the new option's field error.
func TestWithMetricsWindowValidation(t *testing.T) {
	for _, n := range []int{0, -5} {
		var ce *ConfigError
		if _, err := New("opt-6.7b", WithMetricsWindow(n)); !errors.As(err, &ce) || ce.Field != "MetricsWindow" {
			t.Errorf("WithMetricsWindow(%d): err = %v, want ConfigError on MetricsWindow", n, err)
		}
	}
}
