package alisa

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// prefixEngine builds the cache-on engine the scripted-workload tests
// use: dense FP16 on the 32G card, whose post-static headroom gives the
// cache a budget that holds a conversation working set.
func prefixEngine(t *testing.T, extra ...Option) *Engine {
	t.Helper()
	opts := append([]Option{
		WithProfile("V100-32GB"),
		WithMaxBatch(8),
		WithPrefixCache(PrefixCache{BlockTokens: 16}),
	}, extra...)
	eng, err := New("opt-6.7b", opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestServeScriptedPrefixSharing is the public-surface acceptance test:
// conversation clients driven through ServeScripted on a cache-on
// engine hit the prefix cache, prefill fewer tokens than the same
// scripts on a cache-off engine, and the whole run is deterministic.
func TestServeScriptedPrefixSharing(t *testing.T) {
	ctx := context.Background()
	run := func(eng *Engine) *ServeResult {
		res, err := eng.ServeScripted(ctx, NewConversationClients(4, 6, 0.5, 2048, 11))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Requests) != 4*6 {
			t.Fatalf("completed %d of %d scripted requests", len(res.Requests), 4*6)
		}
		return res
	}

	off, err := New("opt-6.7b", WithProfile("V100-32GB"), WithMaxBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	roff := run(off)
	if roff.PrefixHits != 0 || roff.PrefixCachedTokens != 0 {
		t.Fatalf("cache-off engine reported prefix activity: %+v", roff)
	}

	ron := run(prefixEngine(t))
	if ron.PrefixHits == 0 || ron.PrefixCachedTokens == 0 || ron.PrefixSharedBytes <= 0 {
		t.Fatalf("cache-on engine saw no sharing: hits=%d cached=%d shared=%d",
			ron.PrefixHits, ron.PrefixCachedTokens, ron.PrefixSharedBytes)
	}
	if ron.PrefillTokens >= roff.PrefillTokens {
		t.Errorf("cache did not reduce prefill: off=%d on=%d tokens",
			roff.PrefillTokens, ron.PrefillTokens)
	}

	again := run(prefixEngine(t))
	if !reflect.DeepEqual(ron, again) {
		t.Fatal("scripted cache-on run not deterministic")
	}
}

// TestServeScriptedValidation pins the scripted runner's input checks.
func TestServeScriptedValidation(t *testing.T) {
	eng := prefixEngine(t)
	ctx := context.Background()
	var ce *ConfigError
	if _, err := eng.ServeScripted(ctx, nil); !errors.As(err, &ce) || ce.Field != "Clients" {
		t.Errorf("empty clients: err = %v, want ConfigError on Clients", err)
	}
	clients := NewConversationClients(2, 2, 0.5, 2048, 1)
	clients[1] = nil
	if _, err := eng.ServeScripted(ctx, clients); !errors.As(err, &ce) || ce.Field != "Clients" {
		t.Errorf("nil client: err = %v, want ConfigError on Clients", err)
	}
}

// TestWithPrefixCacheValidation walks the option's field errors, plus
// the static cross-check (budget without a block size) caught at New.
func TestWithPrefixCacheValidation(t *testing.T) {
	cases := []struct {
		pc    PrefixCache
		field string
	}{
		{PrefixCache{BlockTokens: 0}, "PrefixBlock"},
		{PrefixCache{BlockTokens: -16}, "PrefixBlock"},
		{PrefixCache{BlockTokens: 16, BudgetBytes: -1}, "PrefixBudget"},
	}
	for _, tc := range cases {
		var ce *ConfigError
		if _, err := New("opt-6.7b", WithPrefixCache(tc.pc)); !errors.As(err, &ce) || ce.Field != tc.field {
			t.Errorf("%+v: err = %v, want ConfigError on %s", tc.pc, err, tc.field)
		}
	}
	if _, err := New("opt-6.7b", WithPrefixCache(PrefixCache{BlockTokens: 16, BudgetBytes: 64 << 20})); err != nil {
		t.Errorf("valid prefix cache rejected: %v", err)
	}
}

// TestAgentAndRAGWorkloads smoke-tests the other two prefix workload
// shapes end to end: agent loops share their tool preamble through the
// cache, and the RAG trace's popularity-skewed document prefixes reuse
// across requests.
func TestAgentAndRAGWorkloads(t *testing.T) {
	ctx := context.Background()

	agents, err := prefixEngine(t).ServeScripted(ctx, NewAgentClients(3, 5, 0.25, 2048, 17))
	if err != nil {
		t.Fatal(err)
	}
	if len(agents.Requests) != 3*5 {
		t.Fatalf("agent run completed %d of %d", len(agents.Requests), 3*5)
	}
	if agents.PrefixHits == 0 {
		t.Error("agent loops shared no prefixes — the tool preamble should hit")
	}

	tr, err := NewRAGTrace(48, 8.0, 2048, 23)
	if err != nil {
		t.Fatal(err)
	}
	rag, err := prefixEngine(t).Serve(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rag.Requests) != len(tr) {
		t.Fatalf("rag run completed %d of %d", len(rag.Requests), len(tr))
	}
	if rag.PrefixHits == 0 {
		t.Error("rag trace shared no prefixes — popular documents should hit")
	}
}
