package cachepolicy

import (
	"testing"

	"repro/internal/attention"
	"repro/internal/model"
	"repro/internal/oracle"
)

// handTrace builds a trace from explicit request sets.
func handTrace(reqs ...[]int) *Trace { return &Trace{Requests: reqs} }

func TestReplayCountsMisses(t *testing.T) {
	// Steps: 0 requests {0}; 1 requests {0,1}; 2 requests {0,2}.
	tr := handTrace([]int{0}, []int{0, 1}, []int{0, 2})
	res := Replay(tr, 4, NewFIFO())
	// Step 0: only the newborn — no cache-served requests.
	// Step 1: token 0 is cached (inserted at birth) — hit.
	// Step 2: token 0 hit again. Total requests 2 (newborns excluded).
	if res.Requests != 2 {
		t.Fatalf("requests = %d, want 2", res.Requests)
	}
	if res.Misses != 0 {
		t.Fatalf("misses = %d, want 0 with ample capacity", res.Misses)
	}
}

func TestReplayEvictsUnderPressure(t *testing.T) {
	// Capacity 2, tokens born 0..3; step 3 re-requests token 0, which a
	// FIFO cache of 2 must have evicted.
	tr := handTrace([]int{0}, []int{1}, []int{2}, []int{0, 3})
	res := Replay(tr, 2, NewFIFO())
	if res.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (token 0 evicted)", res.Misses)
	}
}

func TestBeladyKeepsFutureUse(t *testing.T) {
	// Token 0 is re-requested at the end; Belady keeps it while FIFO
	// evicts it.
	tr := handTrace([]int{0}, []int{1}, []int{2}, []int{3}, []int{0, 4})
	fifo := Replay(tr, 2, NewFIFO())
	belady := Replay(tr, 2, NewBelady(tr))
	if belady.Misses >= fifo.Misses {
		t.Fatalf("belady %d misses should beat fifo %d", belady.Misses, fifo.Misses)
	}
	if belady.Misses != 0 {
		t.Fatalf("belady should serve this trace without misses, got %d", belady.Misses)
	}
}

func TestLRUBeatsFIFOOnReuse(t *testing.T) {
	// Token 0 reused every step: LRU keeps it hot, FIFO ages it out.
	reqs := [][]int{{0}}
	for step := 1; step < 10; step++ {
		reqs = append(reqs, []int{0, step})
	}
	tr := handTrace(reqs...)
	lru := Replay(tr, 3, NewLRU())
	fifo := Replay(tr, 3, NewFIFO())
	if lru.Misses > fifo.Misses {
		t.Fatalf("lru %d should not lose to fifo %d on a reuse trace", lru.Misses, fifo.Misses)
	}
	if lru.Misses != 0 {
		t.Fatalf("lru should keep the hot token resident, got %d misses", lru.Misses)
	}
}

func TestCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Replay(handTrace([]int{0}), 1, NewFIFO())
}

func TestHeuristicParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAlisaHeuristic(-1, 4)
}

// The §III-B claim, end to end: on a realistic SWA request trace, ALISA's
// heuristic sits between Belady's lower bound and FIFO, and close to
// Belady.
func TestHeuristicNearBeladyOnSWATrace(t *testing.T) {
	spec := oracle.SpecForModel(model.MustByName("opt-6.7b"), 77)
	spec.Layers = 1
	const steps = 320
	pol := attention.NewSWA(0.2, 1)
	tr := TraceFromPolicy(spec, pol, steps)

	capacity := 64 // well below the ~320-token population
	window := 32   // the locally static half of the budget

	belady := Replay(tr, capacity, NewBelady(tr))
	lru := Replay(tr, capacity, NewLRU())
	fifo := Replay(tr, capacity, NewFIFO())
	alisa := Replay(tr, capacity, NewAlisaHeuristic(window, 64))

	if !(belady.Misses <= alisa.Misses && alisa.Misses <= fifo.Misses) {
		t.Fatalf("ordering broken: belady %d ≤ alisa %d ≤ fifo %d expected",
			belady.Misses, alisa.Misses, fifo.Misses)
	}
	if belady.Misses > lru.Misses {
		t.Fatalf("belady %d must lower-bound lru %d", belady.Misses, lru.Misses)
	}
	// "Effectively reduce the potential CPU memory access": the heuristic
	// recovers most of the gap between FIFO and the oracle.
	if fifo.Misses > belady.Misses {
		recovered := float64(fifo.Misses-alisa.Misses) / float64(fifo.Misses-belady.Misses)
		if recovered < 0.5 {
			t.Fatalf("heuristic recovers only %.0f%% of the FIFO→Belady gap (fifo=%d alisa=%d belady=%d)",
				recovered*100, fifo.Misses, alisa.Misses, belady.Misses)
		}
	}
}

func TestTraceFromPolicyShape(t *testing.T) {
	spec := oracle.DefaultSpec(1, 3)
	tr := TraceFromPolicy(spec, attention.NewSWA(0.5, 1), 24)
	if tr.Steps() != 24 {
		t.Fatalf("trace steps = %d", tr.Steps())
	}
	for step, req := range tr.Requests {
		if len(req) == 0 || req[len(req)-1] != step {
			t.Fatalf("step %d request set must end with the newborn: %v", step, req)
		}
		for _, tok := range req {
			if tok < 0 || tok > step {
				t.Fatalf("step %d requested unborn token %d", step, tok)
			}
		}
	}
}

func TestReplayDeterministic(t *testing.T) {
	spec := oracle.DefaultSpec(1, 9)
	tr := TraceFromPolicy(spec, attention.NewSWA(0.3, 1), 64)
	a := Replay(tr, 24, NewAlisaHeuristic(12, 32))
	b := Replay(tr, 24, NewAlisaHeuristic(12, 32))
	if a != b {
		t.Fatalf("nondeterministic replay: %+v vs %+v", a, b)
	}
}
