// Package cachepolicy quantifies the paper's §III-B caching argument:
// Belady's algorithm would be the optimal policy for deciding which KV
// tensors stay in GPU memory, but it needs future knowledge, so ALISA
// ships a heuristic ("keep the locally static tokens in the GPU, store the
// preceding ones in the CPU") that is claimed to "effectively reduce the
// potential CPU memory access".
//
// This package makes that claim measurable. A Trace is the sequence of
// per-step token-request sets produced by running a sparse-attention
// policy; a cache simulator replays the trace against a fixed-capacity
// fast tier under interchangeable eviction policies — clairvoyant Belady
// as the lower bound, LRU and FIFO as classical references, and ALISA's
// window-plus-recent-score heuristic — counting misses (CPU fetches).
package cachepolicy

import (
	"fmt"

	"repro/internal/attention"
	"repro/internal/oracle"
)

// Trace is a sequence of request sets over a growing token population:
// token t is born at step t and Requests[t] lists the token indices step
// t's attention touched (including t itself).
type Trace struct {
	Requests [][]int
}

// Steps returns the trace length.
func (t *Trace) Steps() int { return len(t.Requests) }

// TraceFromPolicy runs an attention policy over an oracle process and
// records which tokens each step actually touched — the request stream a
// KV cache must serve.
func TraceFromPolicy(spec oracle.Spec, pol attention.Policy, steps int) *Trace {
	proc := oracle.New(spec)
	tr := &Trace{Requests: make([][]int, 0, steps)}
	for t := 0; t < steps; t++ {
		rows := proc.Next()
		sel := pol.Select(0, t)
		indices, weights := oracle.MaskRow(rows[0], sel)
		pol.Observe(0, indices, weights)
		tr.Requests = append(tr.Requests, indices)
	}
	return tr
}

// Evictor decides which cached token leaves when the fast tier is full.
type Evictor interface {
	Name() string
	// Touch notifies the evictor that token tok was requested at step.
	Touch(step, tok int)
	// Insert notifies that token tok entered the cache at step.
	Insert(step, tok int)
	// Victim picks the token to evict from cached (non-empty); step is
	// the current step.
	Victim(step int, cached []int) int
}

// Result summarises one replay.
type Result struct {
	Policy   string
	Capacity int
	Requests int
	Misses   int
}

// MissRate returns misses per request.
func (r Result) MissRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Requests)
}

// Replay serves the trace from a fast tier of the given token capacity
// under the evictor's policy. Each step: requested tokens not in the tier
// count as misses and are brought in (evicting victims as needed, but
// never tokens requested this same step); the newborn token is inserted
// last, matching the KV production order of a decode step.
func Replay(tr *Trace, capacity int, ev Evictor) Result {
	if capacity < 2 {
		panic(fmt.Sprintf("cachepolicy: capacity must be ≥ 2, got %d", capacity))
	}
	cached := make(map[int]bool, capacity)
	res := Result{Policy: ev.Name(), Capacity: capacity}

	pinned := make(map[int]bool)
	evictOne := func(step int) {
		candidates := make([]int, 0, len(cached))
		for tok := range cached {
			if !pinned[tok] {
				candidates = append(candidates, tok)
			}
		}
		if len(candidates) == 0 {
			// Everything cached is needed this step; the request set
			// exceeds capacity and the overflow simply streams through.
			return
		}
		victim := ev.Victim(step, candidates)
		delete(cached, victim)
	}
	insert := func(step, tok int) {
		for len(cached) >= capacity {
			before := len(cached)
			evictOne(step)
			if len(cached) == before {
				return // nothing evictable; stream instead of caching
			}
		}
		cached[tok] = true
		ev.Insert(step, tok)
	}

	for step, req := range tr.Requests {
		newborn := step
		for k := range pinned {
			delete(pinned, k)
		}
		for _, tok := range req {
			pinned[tok] = true
		}
		for _, tok := range req {
			if tok == newborn {
				continue // produced this step, not served from cache
			}
			res.Requests++
			ev.Touch(step, tok)
			if !cached[tok] {
				res.Misses++
				insert(step, tok)
			}
		}
		insert(step, newborn)
	}
	return res
}

// FIFO evicts the oldest inserted token.
type FIFO struct {
	inserted map[int]int
}

// NewFIFO returns a first-in-first-out evictor.
func NewFIFO() *FIFO { return &FIFO{inserted: map[int]int{}} }

// Name implements Evictor.
func (f *FIFO) Name() string { return "fifo" }

// Touch implements Evictor (no-op).
func (f *FIFO) Touch(int, int) {}

// Insert implements Evictor.
func (f *FIFO) Insert(step, tok int) { f.inserted[tok] = step }

// Victim implements Evictor.
func (f *FIFO) Victim(_ int, cached []int) int {
	best, bestStep := cached[0], int(^uint(0)>>1)
	for _, tok := range cached {
		if s := f.inserted[tok]; s < bestStep || (s == bestStep && tok < best) {
			best, bestStep = tok, s
		}
	}
	return best
}

// LRU evicts the least recently requested token.
type LRU struct {
	last map[int]int
}

// NewLRU returns a least-recently-used evictor.
func NewLRU() *LRU { return &LRU{last: map[int]int{}} }

// Name implements Evictor.
func (l *LRU) Name() string { return "lru" }

// Touch implements Evictor.
func (l *LRU) Touch(step, tok int) { l.last[tok] = step }

// Insert implements Evictor.
func (l *LRU) Insert(step, tok int) {
	if _, ok := l.last[tok]; !ok {
		l.last[tok] = step
	}
}

// Victim implements Evictor.
func (l *LRU) Victim(_ int, cached []int) int {
	best, bestStep := cached[0], int(^uint(0)>>1)
	for _, tok := range cached {
		if s := l.last[tok]; s < bestStep || (s == bestStep && tok < best) {
			best, bestStep = tok, s
		}
	}
	return best
}

// Belady evicts the token whose next request lies farthest in the future —
// the clairvoyant optimum the paper rules out as impractical ("this oracle
// algorithm assumes future knowledge", §III-B).
type Belady struct {
	// nextUse[tok] holds the ascending request steps of tok.
	uses map[int][]int
}

// NewBelady builds the oracle evictor from the full trace.
func NewBelady(tr *Trace) *Belady {
	uses := make(map[int][]int)
	for step, req := range tr.Requests {
		for _, tok := range req {
			uses[tok] = append(uses[tok], step)
		}
	}
	return &Belady{uses: uses}
}

// Name implements Evictor.
func (b *Belady) Name() string { return "belady" }

// Touch implements Evictor (the use lists already contain the future).
func (b *Belady) Touch(int, int) {}

// Insert implements Evictor (no-op).
func (b *Belady) Insert(int, int) {}

// Victim implements Evictor: farthest next use, never-again first.
func (b *Belady) Victim(step int, cached []int) int {
	best, bestNext := -1, -1
	for _, tok := range cached {
		next := b.nextUse(step, tok)
		if next > bestNext || (next == bestNext && tok < best) {
			best, bestNext = tok, next
		}
	}
	return best
}

func (b *Belady) nextUse(step, tok int) int {
	const never = int(^uint(0) >> 1)
	for _, s := range b.uses[tok] {
		if s > step {
			return s
		}
	}
	return never
}

// AlisaHeuristic is the paper's practical policy: the locally static
// window (the newest tokens) is never evicted, and among the rest the
// token with the smallest recent-use count goes first — the cache-level
// mirror of SWA's local attention sum.
type AlisaHeuristic struct {
	// Window is the protected local-window size.
	Window int
	// HistoryLen bounds the recent-use horizon.
	HistoryLen int

	touches map[int][]int
}

// NewAlisaHeuristic returns the window+recent-score evictor.
func NewAlisaHeuristic(window, historyLen int) *AlisaHeuristic {
	if window < 0 || historyLen <= 0 {
		panic(fmt.Sprintf("cachepolicy: bad heuristic parameters %d/%d", window, historyLen))
	}
	return &AlisaHeuristic{Window: window, HistoryLen: historyLen, touches: map[int][]int{}}
}

// Name implements Evictor.
func (a *AlisaHeuristic) Name() string { return "alisa" }

// Touch implements Evictor.
func (a *AlisaHeuristic) Touch(step, tok int) {
	hist := append(a.touches[tok], step)
	if len(hist) > a.HistoryLen {
		hist = hist[len(hist)-a.HistoryLen:]
	}
	a.touches[tok] = hist
}

// Insert implements Evictor (no-op; newborn tokens earn scores by use).
func (a *AlisaHeuristic) Insert(int, int) {}

// Victim implements Evictor.
func (a *AlisaHeuristic) Victim(step int, cached []int) int {
	horizon := step - a.HistoryLen
	best, bestScore, bestTok := -1, int(^uint(0)>>1), -1
	for _, tok := range cached {
		if tok >= step-a.Window {
			continue // locally static: protected
		}
		score := 0
		for _, s := range a.touches[tok] {
			if s >= horizon {
				score++
			}
		}
		if score < bestScore || (score == bestScore && tok < bestTok) {
			best, bestScore, bestTok = tok, score, tok
		}
	}
	if best < 0 {
		// Everything unprotected is inside the window; fall back to the
		// oldest cached token.
		for _, tok := range cached {
			if best < 0 || tok < best {
				best = tok
			}
		}
	}
	return best
}

// interface checks
var (
	_ Evictor = (*FIFO)(nil)
	_ Evictor = (*LRU)(nil)
	_ Evictor = (*Belady)(nil)
	_ Evictor = (*AlisaHeuristic)(nil)
)
