package experiments

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"sync"

	"repro/internal/attention"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/textfmt"
	"repro/internal/workload"
)

// int8RecallPenalty is the relative attention-mass loss INT8 KV
// compression adds on top of SWA. Fig. 8's observation is that "the
// accuracy of ALISA almost perfectly tracks that of SWA", so the penalty
// is small and constant.
const int8RecallPenalty = 0.002

// Fig8Config sizes the accuracy sweep.
type Fig8Config struct {
	Models     []string
	Datasets   []string
	Sparsities []float64
	Steps      int
	Layers     int
}

// DefaultFig8Config covers all eight models, all seven datasets, and the
// paper's sparsity axis.
func DefaultFig8Config() Fig8Config {
	datasets := make([]string, 0, 7)
	for _, d := range workload.Datasets() {
		datasets = append(datasets, d.Name)
	}
	return Fig8Config{
		Models:     model.Names(),
		Datasets:   datasets,
		Sparsities: []float64{0, 0.2, 0.4, 0.6, 0.8},
		Steps:      256,
		Layers:     4,
	}
}

// Fig8Cell is one point of Fig. 8: a model × dataset × method × sparsity
// accuracy measurement.
type Fig8Cell struct {
	Model      string
	Dataset    string
	Task       string
	Method     string // dense, local, strided, swa, alisa
	KVSparsity float64
	Recall     float64
	// Metric is perplexity for lm tasks (lower better) and accuracy for
	// qa tasks (higher better).
	Metric float64
}

// Fig8Result reproduces Fig. 8.
type Fig8Result struct {
	Config Fig8Config
	Cells  []Fig8Cell
}

// fig8Methods is the method axis of every Fig. 8 panel, in render order.
var fig8Methods = []string{"dense", "local", "strided", "swa", "alisa"}

// Fig8 sweeps KV sparsity for every model × dataset × attention method,
// mapping attention-mass recall to dataset metrics anchored at published
// dense baselines. Cells group by (model, dataset): every cell of a group
// shares one attention process (the seed depends only on those two
// coordinates), so the group evaluates all its policies in a single
// EvaluateMany pass over shared dense rows instead of regenerating the
// process per cell. Groups are independent and run on a bounded worker
// pool; determinism is preserved because each group derives its seed from
// its coordinates and writes a disjoint, pre-assigned slice of the result.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	type group struct {
		model model.Config
		ds    workload.Dataset
		dense float64
		out   int // base index of the group's cell block
	}

	cellsPerGroup := len(cfg.Sparsities) * len(fig8Methods)
	var groups []group
	for _, modelName := range cfg.Models {
		mc, err := model.ByName(modelName)
		if err != nil {
			return nil, err
		}
		for _, dsName := range cfg.Datasets {
			ds, err := workload.DatasetByName(dsName)
			if err != nil {
				return nil, err
			}
			dense, err := ds.DenseBaseline(modelName)
			if err != nil {
				return nil, err
			}
			groups = append(groups, group{
				model: mc, ds: ds, dense: dense,
				out: len(groups) * cellsPerGroup,
			})
		}
	}

	cells := make([]Fig8Cell, len(groups)*cellsPerGroup)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(groups) {
		workers = len(groups)
	}
	queue := make(chan group)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range queue {
				recalls := groupRecalls(g.model, seedFor(g.model.Name, g.ds.Name), cfg)
				for i, r := range recalls {
					cells[g.out+i] = Fig8Cell{
						Model: g.model.Name, Dataset: g.ds.Name, Task: g.ds.Task,
						Method: r.method, KVSparsity: r.sparsity,
						Recall: r.recall,
						Metric: recallToMetric(g.ds, g.dense, r.recall),
					}
				}
			}
		}()
	}
	for _, g := range groups {
		queue <- g
	}
	close(queue)
	wg.Wait()
	return &Fig8Result{Config: cfg, Cells: cells}, nil
}

// fig8Recall is one (sparsity, method) measurement within a group.
type fig8Recall struct {
	sparsity float64
	method   string
	recall   float64
}

// groupRecalls measures attention-mass recall for every (sparsity, method)
// cell of one model × dataset group. All cells that need a live evaluation
// share a single EvaluateMany pass — one attention process instead of one
// per cell; dense and 0 %-sparsity cells have recall 1 by definition.
func groupRecalls(mc model.Config, seed int64, cfg Fig8Config) []fig8Recall {
	spec := oracle.SpecForModel(mc, seed)
	spec.Layers = cfg.Layers

	recalls := make([]fig8Recall, 0, len(cfg.Sparsities)*len(fig8Methods))
	var pols []attention.Policy
	var evaluated []int // indices into recalls awaiting a MeanRecall
	for _, sparsity := range cfg.Sparsities {
		ratio := 1 - sparsity
		for _, method := range fig8Methods {
			r := fig8Recall{sparsity: sparsity, method: method}
			if method == "dense" || ratio >= 1 {
				r.recall = 1
				if method == "alisa" {
					r.recall = 1 - int8RecallPenalty
				}
				recalls = append(recalls, r)
				continue
			}
			var pol attention.Policy
			switch method {
			case "local", "strided":
				pol = attention.MustByName(method, ratio, spec.Layers)
			case "swa", "alisa":
				pol = attention.MustByName("swa", ratio, spec.Layers)
			default:
				panic(fmt.Sprintf("fig8: unknown method %q", method))
			}
			pols = append(pols, pol)
			evaluated = append(evaluated, len(recalls))
			recalls = append(recalls, r)
		}
	}
	if len(pols) > 0 {
		for i, res := range evalPolicies(spec, pols, cfg.Steps) {
			r := &recalls[evaluated[i]]
			r.recall = res.MeanRecall
			if r.method == "alisa" {
				r.recall *= 1 - int8RecallPenalty
			}
		}
	}
	return recalls
}

func recallToMetric(ds workload.Dataset, dense, recall float64) float64 {
	if ds.Task == "lm" {
		return metrics.PerplexityProxy(dense, recall)
	}
	return metrics.AccuracyProxy(dense, ds.Chance, recall)
}

func seedFor(parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Cell returns the measurement for the given coordinates, or false.
func (r *Fig8Result) Cell(modelName, dataset, method string, sparsity float64) (Fig8Cell, bool) {
	for _, c := range r.Cells {
		if c.Model == modelName && c.Dataset == dataset && c.Method == method && c.KVSparsity == sparsity {
			return c, true
		}
	}
	return Fig8Cell{}, false
}

// Render implements Renderer, printing each model × dataset panel as a
// metric-vs-sparsity table.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 8 — accuracy under KV sparsity (lm: perplexity ↓, qa: accuracy ↑)\n")
	for _, modelName := range r.Config.Models {
		for _, dsName := range r.Config.Datasets {
			fmt.Fprintf(&b, "\n%s on %s:\n", modelName, dsName)
			hdr := []string{"method"}
			for _, sp := range r.Config.Sparsities {
				hdr = append(hdr, fmt.Sprintf("%.0f%%", sp*100))
			}
			tb := textfmt.NewTable(hdr...)
			for _, method := range fig8Methods {
				row := []string{method}
				for _, sp := range r.Config.Sparsities {
					c, ok := r.Cell(modelName, dsName, method, sp)
					if !ok {
						row = append(row, "-")
						continue
					}
					if c.Task == "lm" {
						row = append(row, formatPPL(c.Metric))
					} else {
						row = append(row, fmt.Sprintf("%.3f", c.Metric))
					}
				}
				tb.AddRow(row...)
			}
			b.WriteString(tb.String())
		}
	}
	return b.String()
}

func formatPPL(p float64) string {
	if p > 1e4 {
		return ">1e4"
	}
	return fmt.Sprintf("%.2f", p)
}
