package experiments

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"sync"

	"repro/internal/attention"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/textfmt"
	"repro/internal/workload"
)

// int8RecallPenalty is the relative attention-mass loss INT8 KV
// compression adds on top of SWA. Fig. 8's observation is that "the
// accuracy of ALISA almost perfectly tracks that of SWA", so the penalty
// is small and constant.
const int8RecallPenalty = 0.002

// Fig8Config sizes the accuracy sweep.
type Fig8Config struct {
	Models     []string
	Datasets   []string
	Sparsities []float64
	Steps      int
	Layers     int
}

// DefaultFig8Config covers all eight models, all seven datasets, and the
// paper's sparsity axis.
func DefaultFig8Config() Fig8Config {
	datasets := make([]string, 0, 7)
	for _, d := range workload.Datasets() {
		datasets = append(datasets, d.Name)
	}
	return Fig8Config{
		Models:     model.Names(),
		Datasets:   datasets,
		Sparsities: []float64{0, 0.2, 0.4, 0.6, 0.8},
		Steps:      256,
		Layers:     4,
	}
}

// Fig8Cell is one point of Fig. 8: a model × dataset × method × sparsity
// accuracy measurement.
type Fig8Cell struct {
	Model      string
	Dataset    string
	Task       string
	Method     string // dense, local, strided, swa, alisa
	KVSparsity float64
	Recall     float64
	// Metric is perplexity for lm tasks (lower better) and accuracy for
	// qa tasks (higher better).
	Metric float64
}

// Fig8Result reproduces Fig. 8.
type Fig8Result struct {
	Config Fig8Config
	Cells  []Fig8Cell
}

// Fig8 sweeps KV sparsity for every model × dataset × attention method,
// mapping attention-mass recall to dataset metrics anchored at published
// dense baselines. The (model, dataset, sparsity, method) cells are
// independent, so they evaluate on a bounded worker pool; determinism is
// preserved because every cell derives its seed from its own coordinates
// and results are ordered after the fact.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	type job struct {
		model    model.Config
		ds       workload.Dataset
		dense    float64
		sparsity float64
		method   string
		out      int // index into the results slice
	}

	var jobs []job
	for _, modelName := range cfg.Models {
		mc, err := model.ByName(modelName)
		if err != nil {
			return nil, err
		}
		for _, dsName := range cfg.Datasets {
			ds, err := workload.DatasetByName(dsName)
			if err != nil {
				return nil, err
			}
			dense, err := ds.DenseBaseline(modelName)
			if err != nil {
				return nil, err
			}
			for _, sparsity := range cfg.Sparsities {
				for _, method := range []string{"dense", "local", "strided", "swa", "alisa"} {
					jobs = append(jobs, job{
						model: mc, ds: ds, dense: dense,
						sparsity: sparsity, method: method, out: len(jobs),
					})
				}
			}
		}
	}

	cells := make([]Fig8Cell, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	queue := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range queue {
				seed := seedFor(j.model.Name, j.ds.Name)
				recall := methodRecall(j.model, seed, j.method, 1-j.sparsity, cfg)
				cells[j.out] = Fig8Cell{
					Model: j.model.Name, Dataset: j.ds.Name, Task: j.ds.Task,
					Method: j.method, KVSparsity: j.sparsity,
					Recall: recall,
					Metric: recallToMetric(j.ds, j.dense, recall),
				}
			}
		}()
	}
	for _, j := range jobs {
		queue <- j
	}
	close(queue)
	wg.Wait()
	return &Fig8Result{Config: cfg, Cells: cells}, nil
}

func methodRecall(mc model.Config, seed int64, method string, ratio float64, cfg Fig8Config) float64 {
	if method == "dense" || ratio >= 1 {
		if method == "alisa" {
			return 1 - int8RecallPenalty
		}
		return 1
	}
	spec := oracle.SpecForModel(mc, seed)
	spec.Layers = cfg.Layers
	var pol attention.Policy
	switch method {
	case "local":
		pol = attention.NewLocal(ratio)
	case "strided":
		pol = attention.NewStrided(ratio)
	case "swa", "alisa":
		pol = attention.NewSWA(ratio, spec.Layers)
	default:
		panic(fmt.Sprintf("fig8: unknown method %q", method))
	}
	recall := oracle.Evaluate(spec, pol, cfg.Steps).MeanRecall
	if method == "alisa" {
		recall *= 1 - int8RecallPenalty
	}
	return recall
}

func recallToMetric(ds workload.Dataset, dense, recall float64) float64 {
	if ds.Task == "lm" {
		return metrics.PerplexityProxy(dense, recall)
	}
	return metrics.AccuracyProxy(dense, ds.Chance, recall)
}

func seedFor(parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Cell returns the measurement for the given coordinates, or false.
func (r *Fig8Result) Cell(modelName, dataset, method string, sparsity float64) (Fig8Cell, bool) {
	for _, c := range r.Cells {
		if c.Model == modelName && c.Dataset == dataset && c.Method == method && c.KVSparsity == sparsity {
			return c, true
		}
	}
	return Fig8Cell{}, false
}

// Render implements Renderer, printing each model × dataset panel as a
// metric-vs-sparsity table.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 8 — accuracy under KV sparsity (lm: perplexity ↓, qa: accuracy ↑)\n")
	for _, modelName := range r.Config.Models {
		for _, dsName := range r.Config.Datasets {
			fmt.Fprintf(&b, "\n%s on %s:\n", modelName, dsName)
			hdr := []string{"method"}
			for _, sp := range r.Config.Sparsities {
				hdr = append(hdr, fmt.Sprintf("%.0f%%", sp*100))
			}
			tb := textfmt.NewTable(hdr...)
			for _, method := range []string{"dense", "local", "strided", "swa", "alisa"} {
				row := []string{method}
				for _, sp := range r.Config.Sparsities {
					c, ok := r.Cell(modelName, dsName, method, sp)
					if !ok {
						row = append(row, "-")
						continue
					}
					if c.Task == "lm" {
						row = append(row, formatPPL(c.Metric))
					} else {
						row = append(row, fmt.Sprintf("%.3f", c.Metric))
					}
				}
				tb.AddRow(row...)
			}
			b.WriteString(tb.String())
		}
	}
	return b.String()
}

func formatPPL(p float64) string {
	if p > 1e4 {
		return ">1e4"
	}
	return fmt.Sprintf("%.2f", p)
}
