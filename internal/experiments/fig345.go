package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/attention"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/textfmt"
)

// fig3Layers is the layer sample per model for the sparsity sweep; the
// statistics are layer-exchangeable, so a sample stands in for all layers.
const fig3Layers = 8

// Fig3Series is one model's attention-sparsity trajectory.
type Fig3Series struct {
	Model            string
	MeanSparsity     float64
	PerStep          []float64 // averaged across layers
	PerLayerFinal    []float64 // per-layer sparsity at the final step window
	MinLayer, MaxLay float64
}

// Fig3Result reproduces Fig. 3: attention weight sparsity (1 %-of-row-max
// threshold) across decode steps and layers for the OPT family.
type Fig3Result struct {
	Steps  int
	Series []Fig3Series
}

// Fig3 measures dense attention sparsity for OPT-6.7B/13B/30B processes.
func Fig3() (*Fig3Result, error) {
	const steps = 512
	res := &Fig3Result{Steps: steps}
	for _, name := range []string{"opt-6.7b", "opt-13b", "opt-30b"} {
		cfg := model.MustByName(name)
		spec := oracle.SpecForModel(cfg, 101)
		spec.Layers = fig3Layers
		proc := oracle.New(spec)

		series := Fig3Series{Model: name, PerStep: make([]float64, steps)}
		perLayerSum := make([]float64, fig3Layers)
		perLayerN := 0
		var total float64
		var totalN int
		var rows [][]float64 // step-scoped row buffers, reused every step
		for t := 0; t < steps; t++ {
			rows = proc.NextInto(rows)
			var stepSum float64
			for l, row := range rows {
				sp := metrics.Sparsity(row, 0.01)
				stepSum += sp
				if t >= steps-64 { // final window for the per-layer view
					perLayerSum[l] += sp
				}
			}
			if t >= steps-64 {
				perLayerN++
			}
			series.PerStep[t] = stepSum / float64(len(rows))
			if t >= 64 { // skip short-row regime, as the paper's x-axis does
				total += series.PerStep[t]
				totalN++
			}
		}
		series.MeanSparsity = total / float64(totalN)
		series.PerLayerFinal = make([]float64, fig3Layers)
		series.MinLayer, series.MaxLay = 1, 0
		for l := range perLayerSum {
			v := perLayerSum[l] / float64(perLayerN)
			series.PerLayerFinal[l] = v
			if v < series.MinLayer {
				series.MinLayer = v
			}
			if v > series.MaxLay {
				series.MaxLay = v
			}
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 3 — attention weight sparsity (zeros below 1% of row max)\n\n")
	tb := textfmt.NewTable("model", "mean sparsity", "layer min", "layer max", "density vs opt-6.7b")
	base := 1 - r.Series[0].MeanSparsity
	for _, s := range r.Series {
		density := 1 - s.MeanSparsity
		tb.AddRow(s.Model,
			fmt.Sprintf("%.1f%%", s.MeanSparsity*100),
			fmt.Sprintf("%.1f%%", s.MinLayer*100),
			fmt.Sprintf("%.1f%%", s.MaxLay*100),
			fmt.Sprintf("%.2fx", density/base))
	}
	b.WriteString(tb.String())
	b.WriteString("\nsparsity vs step (every 64th):\n")
	tb2Hdr := []string{"step"}
	for _, s := range r.Series {
		tb2Hdr = append(tb2Hdr, s.Model)
	}
	tb2 := textfmt.NewTable(tb2Hdr...)
	for t := 64; t < r.Steps; t += 64 {
		row := []string{fmt.Sprint(t)}
		for _, s := range r.Series {
			row = append(row, fmt.Sprintf("%.1f%%", s.PerStep[t]*100))
		}
		tb2.AddRow(row...)
	}
	b.WriteString(tb2.String())
	return b.String()
}

// Fig4Series is one attention method's score distribution and its rank
// correlation against dense attention.
type Fig4Series struct {
	Policy   string
	Spearman float64
	// TopScores is the sorted (descending) average attention score
	// distribution — the curve under each Fig. 4 panel.
	TopScores []float64
	Recall    float64
}

// Fig4Result reproduces Fig. 4: dense vs local vs strided vs SWA.
type Fig4Result struct {
	KVSparsity float64
	Series     []Fig4Series
}

// Fig4 evaluates the four attention methods at 80 % KV sparsity on an
// OPT-6.7B-calibrated process.
func Fig4() (*Fig4Result, error) {
	const (
		ratio = 0.2
		steps = 384
	)
	spec := oracle.SpecForModel(model.MustByName("opt-6.7b"), 202)
	spec.Layers = 4

	policies := []attention.Policy{
		attention.MustByName("dense", ratio, spec.Layers),
		attention.MustByName("local", ratio, spec.Layers),
		attention.MustByName("strided", ratio, spec.Layers),
		attention.MustByName("swa", ratio, spec.Layers),
	}
	res := &Fig4Result{KVSparsity: 1 - ratio}
	for _, pol := range policies {
		ev := evalPolicy(spec, pol, steps)
		rho := 1.0
		if pol.Name() != "dense" {
			var err error
			rho, err = ev.SpearmanVsDense()
			if err != nil {
				return nil, fmt.Errorf("fig4 %s: %w", pol.Name(), err)
			}
		}
		scores := append([]float64(nil), ev.AvgScore...)
		sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
		if len(scores) > 16 {
			scores = scores[:16]
		}
		res.Series = append(res.Series, Fig4Series{
			Policy:    pol.Name(),
			Spearman:  rho,
			TopScores: scores,
			Recall:    ev.MeanRecall,
		})
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — attention score distributions at %.0f%% KV sparsity\n\n", r.KVSparsity*100)
	tb := textfmt.NewTable("method", "Spearman ρ", "mass recall", "top-4 avg scores")
	for _, s := range r.Series {
		top := make([]string, 0, 4)
		for i := 0; i < 4 && i < len(s.TopScores); i++ {
			top = append(top, fmt.Sprintf("%.3f", s.TopScores[i]))
		}
		tb.AddRow(s.Policy, fmt.Sprintf("%.3f", s.Spearman),
			fmt.Sprintf("%.3f", s.Recall), strings.Join(top, " "))
	}
	b.WriteString(tb.String())
	return b.String()
}

// Fig5Result reproduces Fig. 5: average dense attention weight maps.
type Fig5Result struct {
	SeqLen int
	Maps   []Fig5Map
}

// Fig5Map is one panel: an averaged lower-triangular weight map.
type Fig5Map struct {
	Label string
	Map   [][]float64
}

// Fig5 renders averaged attention maps for a 16-token sequence at four
// seeds, standing in for the four layer depths of the paper's figure.
func Fig5() (*Fig5Result, error) {
	const seqLen = 16
	res := &Fig5Result{SeqLen: seqLen}
	for i, label := range []string{"layer 0", "layer 8", "layer 16", "layer 24"} {
		spec := oracle.SpecForModel(model.MustByName("opt-6.7b"), int64(300+i))
		spec.Layers = 2
		res.Maps = append(res.Maps, Fig5Map{Label: label, Map: oracle.AttentionMap(spec, seqLen)})
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — average attention weight maps (seq len %d, dark = heavy)\n", r.SeqLen)
	for _, m := range r.Maps {
		fmt.Fprintf(&b, "\n%s:\n%s", m.Label, textfmt.Heatmap(m.Map))
	}
	return b.String()
}
