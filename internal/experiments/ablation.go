package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attention"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/oracle"
	"repro/internal/textfmt"
)

// ScoringRow compares token-importance scoring signals at one sparsity.
type ScoringRow struct {
	Policy     string
	KVSparsity float64
	Recall     float64
	Spearman   float64
}

// ScoringResult is the design-choice ablation behind SWA's local attention
// sum (DESIGN.md §4.1): the same budget allocated by recency (local),
// stride, cumulative attention sum (H2O), and ALISA's local sum, measured
// on a drifting-hitter process where stale heavy hitters are the failure
// mode the paper attributes to H2O (§II-B).
type ScoringResult struct {
	Rows []ScoringRow
}

// AblationScoring sweeps the scoring signals across sparsities.
func AblationScoring() (*ScoringResult, error) {
	const steps = 320
	spec := oracle.SpecForModel(model.MustByName("opt-6.7b"), 1234)
	spec.Layers = 4
	// Faster hitter turnover stresses the stale-hitter distinction.
	spec.HitterLifetime = 24

	res := &ScoringResult{}
	for _, sparsity := range []float64{0.6, 0.8, 0.9} {
		ratio := 1 - sparsity
		policies := []attention.Policy{
			attention.MustByName("local", ratio, spec.Layers),
			attention.MustByName("strided", ratio, spec.Layers),
			attention.MustByName("h2o", ratio, spec.Layers),
			attention.MustByName("swa", ratio, spec.Layers),
		}
		for _, pol := range policies {
			ev := evalPolicy(spec, pol, steps)
			rho, err := ev.SpearmanVsDense()
			if err != nil {
				return nil, fmt.Errorf("ablation %s: %w", pol.Name(), err)
			}
			res.Rows = append(res.Rows, ScoringRow{
				Policy:     pol.Name(),
				KVSparsity: sparsity,
				Recall:     ev.MeanRecall,
				Spearman:   rho,
			})
		}
	}
	return res, nil
}

// Render implements Renderer.
func (r *ScoringResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation — token-importance scoring signals (drifting-hitter process)\n\n")
	tb := textfmt.NewTable("KV sparsity", "policy", "mass recall", "Spearman ρ")
	for _, row := range r.Rows {
		tb.AddRow(fmt.Sprintf("%.0f%%", row.KVSparsity*100), row.Policy,
			fmt.Sprintf("%.3f", row.Recall), fmt.Sprintf("%.3f", row.Spearman))
	}
	b.WriteString(tb.String())
	return b.String()
}

// NumericRow is one live-tensor validation point.
type NumericRow struct {
	Policy       string
	KVBits       int
	LogitCosine  float64
	TopAgreement float64
	NLLDelta     float64 // policy NLL − dense NLL
}

// NumericResult cross-validates the accuracy orderings on the runnable
// decoder (real softmax attention), including quantized KV storage.
type NumericResult struct {
	Tokens int
	Rows   []NumericRow
}

// AblationNumeric runs dense/local/SWA/ALISA(+INT8/+INT4) on live tensors.
func AblationNumeric() (*NumericResult, error) {
	const tokens = 96
	cfg := model.SmallConfig()
	cases := []struct {
		name   string
		policy attention.Policy
		bits   int
	}{
		{"dense", nil, 0},
		{"dense+int8", nil, 8},
		{"local", attention.MustByName("local", 0.4, cfg.Layers), 0},
		{"swa", attention.MustByName("swa", 0.4, cfg.Layers), 0},
		{"swa+int8", attention.MustByName("swa", 0.4, cfg.Layers), 8},
		{"swa+int4", attention.MustByName("swa", 0.4, cfg.Layers), 4},
	}
	res := &NumericResult{Tokens: tokens}
	for _, c := range cases {
		rep, err := numeric.Compare(numeric.Config{
			ModelSeed: 11, DataSeed: 12, Tokens: tokens,
			Policy: c.policy, KVBits: c.bits,
		})
		if err != nil {
			return nil, fmt.Errorf("numeric ablation %s: %w", c.name, err)
		}
		res.Rows = append(res.Rows, NumericRow{
			Policy:       c.name,
			KVBits:       c.bits,
			LogitCosine:  rep.LogitCosine,
			TopAgreement: rep.TopAgreement,
			NLLDelta:     rep.MeanNLL - rep.DenseNLL,
		})
	}
	return res, nil
}

// Render implements Renderer.
func (r *NumericResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Numeric cross-validation — live decoder, %d-token stream, 60%% KV sparsity\n\n", r.Tokens)
	tb := textfmt.NewTable("configuration", "logit cosine", "top-1 agreement", "ΔNLL vs dense")
	for _, row := range r.Rows {
		tb.AddRow(row.Policy,
			fmt.Sprintf("%.4f", row.LogitCosine),
			fmt.Sprintf("%.3f", row.TopAgreement),
			fmt.Sprintf("%+.4f", row.NLLDelta))
	}
	b.WriteString(tb.String())
	return b.String()
}
