package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/textfmt"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig1Row is one bar group of Fig. 1: a workload × KV placement, with the
// time breakdown (MHA / FFN / memory access) and memory breakdown
// (weights / activations / KV) the paper plots, or an OOM marker.
type Fig1Row struct {
	Workload  workload.Spec
	Placement string // "GPU only", "50% CPU", "100% CPU"

	OOM bool

	MHASeconds      float64
	FFNSeconds      float64
	MemAccessSecond float64
	TotalSeconds    float64

	WeightBytes     int64
	ActivationBytes int64
	KVGPUBytes      int64
	KVCPUBytes      int64
}

// Fig1Result reproduces Fig. 1.
type Fig1Result struct {
	Profile memsim.Profile
	Model   model.Config
	Rows    []Fig1Row
}

// Fig1 runs OPT-6.7B on a V100-32G under the two motivation workloads
// with KV placed GPU-only, 50 % on CPU, and 100 % on CPU (streamed over
// PCIe, as the paper measures with FlexGen).
func Fig1() (*Fig1Result, error) {
	prof := memsim.V100_32G()
	cfg := model.MustByName("opt-6.7b")
	res := &Fig1Result{Profile: prof, Model: cfg}

	placements := []struct {
		name  string
		sched func() sched.Scheduler
	}{
		{"GPU only", func() sched.Scheduler { return sched.MustByName("gpu-only") }},
		{"50% CPU", func() sched.Scheduler { return sched.NewPCIeSplit(0.5) }},
		{"100% CPU", func() sched.Scheduler { return sched.NewPCIeSplit(1.0) }},
	}

	for _, wl := range workload.Fig1Workloads() {
		for _, pl := range placements {
			run := core.Config{
				Model: cfg, Profile: prof, Scheduler: pl.sched(),
				Batch: wl.Batch, Input: wl.Input, Output: wl.Output,
				KVSparsity: 0, KVBits: 16,
			}
			row := Fig1Row{
				Workload:        wl,
				Placement:       pl.name,
				WeightBytes:     cfg.WeightBytes(2),
				ActivationBytes: cfg.ActivationBytes(wl.Batch, 2),
			}
			out, err := core.Run(context.Background(), run)
			if err != nil {
				if out != nil && out.OOM {
					row.OOM = true
					res.Rows = append(res.Rows, row)
					continue
				}
				return nil, fmt.Errorf("fig1 %s/%s: %w", wl.Name, pl.name, err)
			}
			row.MHASeconds = out.Breakdown.Get(trace.CatMHA) + out.Breakdown.Get(trace.CatPrefill)
			row.FFNSeconds = out.Breakdown.Get(trace.CatFFN)
			row.MemAccessSecond = out.Breakdown.Get(trace.CatTransfer)
			row.TotalSeconds = out.TotalSeconds
			row.KVGPUBytes = out.Memory.PeakGPU() - row.WeightBytes - row.ActivationBytes - prof.ReserveBytes
			row.KVCPUBytes = out.Memory.PeakCPU()
			res.Rows = append(res.Rows, row)
		}
	}
	if len(res.Rows) == 0 {
		return nil, errors.New("fig1: no rows produced")
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 — %s inference on %s (FlexGen-style placement)\n\n", r.Model.Name, r.Profile.Name)
	tb := textfmt.NewTable("workload", "placement", "MHA", "FFN", "mem access", "total",
		"weights", "activations", "KV gpu", "KV cpu")
	for _, row := range r.Rows {
		if row.OOM {
			tb.AddRow(row.Workload.String(), row.Placement, "OOM", "-", "-", "-",
				textfmt.Bytes(row.WeightBytes), textfmt.Bytes(row.ActivationBytes), "-", "-")
			continue
		}
		tb.AddRow(row.Workload.String(), row.Placement,
			textfmt.Seconds(row.MHASeconds), textfmt.Seconds(row.FFNSeconds),
			textfmt.Seconds(row.MemAccessSecond), textfmt.Seconds(row.TotalSeconds),
			textfmt.Bytes(row.WeightBytes), textfmt.Bytes(row.ActivationBytes),
			textfmt.Bytes(row.KVGPUBytes), textfmt.Bytes(row.KVCPUBytes))
	}
	b.WriteString(tb.String())
	return b.String()
}
