package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/textfmt"
	"repro/internal/trace"
	"repro/internal/workload"
)

// EvictionRow compares one eviction order at one sparsity.
type EvictionRow struct {
	Order      string
	KVSparsity float64
	Throughput float64
	TransferS  float64
}

// EvictionResult is the keep-local ablation (DESIGN.md §4.5): ALISA's
// oldest-first offloading keeps the locally static window GPU-resident
// ("we choose to keep the KV tensors for the locally static tokens in the
// GPU", §V-A); inverting the order streams the window from CPU memory
// every step.
type EvictionResult struct {
	Rows []EvictionRow
}

// AblationEviction runs both eviction orders on the memory-pressured
// headline workload.
func AblationEviction() (*EvictionResult, error) {
	mc := model.MustByName("opt-6.7b")
	prof := PaperProfile(mc)
	spec := workload.Alpaca(64)
	res := &EvictionResult{}
	for _, sparsity := range []float64{0.6, 0.8} {
		for _, newestFirst := range []bool{false, true} {
			// Registry-resolved, then narrowed to the concrete type: the
			// eviction-order knob is an ablation field, not part of the
			// Scheduler surface.
			s := sched.MustByName("alisa").(*sched.Alisa)
			s.EvictNewestFirst = newestFirst
			out, err := core.Run(context.Background(), core.Config{
				Model: mc, Profile: prof, Scheduler: s,
				Batch: spec.Batch, Input: spec.Input, Output: spec.Output,
				KVSparsity: sparsity, KVBits: 8,
			})
			if err != nil {
				return nil, fmt.Errorf("eviction ablation: %w", err)
			}
			order := "keep-local (oldest-first)"
			if newestFirst {
				order = "inverted (newest-first)"
			}
			res.Rows = append(res.Rows, EvictionRow{
				Order:      order,
				KVSparsity: sparsity,
				Throughput: out.Throughput,
				TransferS:  out.Breakdown.Get(trace.CatTransfer),
			})
		}
	}
	return res, nil
}

// Render implements Renderer.
func (r *EvictionResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation — offload (eviction) order for ALISA's GPU cache (§V-A)\n\n")
	tb := textfmt.NewTable("KV sparsity", "eviction order", "throughput", "transfer time")
	for _, row := range r.Rows {
		tb.AddRow(fmt.Sprintf("%.0f%%", row.KVSparsity*100), row.Order,
			fmt.Sprintf("%.1f tok/s", row.Throughput),
			textfmt.Seconds(row.TransferS))
	}
	b.WriteString(tb.String())
	return b.String()
}
