package experiments

import (
	"testing"

	"repro/internal/attention"
	"repro/internal/oracle"
)

// TestRenderedOutputMatchesSequentialReference proves the acceptance
// criterion for the parallel accuracy hot path at the experiment level:
// every oracle-backed figure renders byte-identical output whether the
// cells are evaluated by the parallel scratch-reusing oracle.Evaluate or
// by the retained sequential reference.
func TestRenderedOutputMatchesSequentialReference(t *testing.T) {
	if testing.Short() {
		t.Skip("renders several experiments twice")
	}
	defer func() {
		evalPolicy = oracle.Evaluate
		evalPolicies = oracle.EvaluateMany
	}()

	fig8cfg := Fig8Config{
		Models:     []string{"opt-6.7b", "opt-30b"},
		Datasets:   []string{"wikitext-2", "piqa"},
		Sparsities: []float64{0, 0.4, 0.8},
		Steps:      128,
		Layers:     3,
	}
	render := func() map[string]string {
		out := map[string]string{}
		f4, err := Fig4()
		if err != nil {
			t.Fatal(err)
		}
		out["fig4"] = f4.Render()
		f8, err := Fig8(fig8cfg)
		if err != nil {
			t.Fatal(err)
		}
		out["fig8"] = f8.Render()
		f10, err := Fig10()
		if err != nil {
			t.Fatal(err)
		}
		out["fig10"] = f10.Render()
		ab, err := AblationScoring()
		if err != nil {
			t.Fatal(err)
		}
		out["ablation-scoring"] = ab.Render()
		return out
	}

	evalPolicy = oracle.Evaluate
	evalPolicies = oracle.EvaluateMany
	parallel := render()
	evalPolicy = oracle.EvaluateSequential
	evalPolicies = func(spec oracle.Spec, pols []attention.Policy, steps int) []*oracle.Result {
		// Per-policy sequential reference: each policy gets its own fresh
		// process, the semantics EvaluateMany promises to reproduce exactly.
		out := make([]*oracle.Result, len(pols))
		for i, pol := range pols {
			out[i] = oracle.EvaluateSequential(spec, pol, steps)
		}
		return out
	}
	sequential := render()

	for id, want := range sequential {
		if parallel[id] != want {
			t.Errorf("%s: parallel rendered output differs from the sequential reference", id)
		}
	}
}
