package experiments

import (
	"sort"
	"strings"
	"testing"
)

func TestAblationScoringOrdering(t *testing.T) {
	r, err := AblationScoring()
	if err != nil {
		t.Fatal(err)
	}
	get := func(sp float64, policy string) ScoringRow {
		for _, row := range r.Rows {
			if row.KVSparsity == sp && row.Policy == policy {
				return row
			}
		}
		t.Fatalf("missing %v/%s", sp, policy)
		return ScoringRow{}
	}
	for _, sp := range []float64{0.6, 0.8, 0.9} {
		local := get(sp, "local")
		strided := get(sp, "strided")
		h2o := get(sp, "h2o")
		swa := get(sp, "swa")
		// Learned scoring beats fixed patterns.
		if !(h2o.Recall > local.Recall && h2o.Recall > strided.Recall) {
			t.Errorf("sparsity %.0f%%: H2O should beat fixed patterns: %+v vs %+v/%+v", sp*100, h2o, local, strided)
		}
		// ALISA's local sum beats the cumulative sum on a drifting
		// process — the §II-B design choice.
		if swa.Recall <= h2o.Recall {
			t.Errorf("sparsity %.0f%%: SWA recall %.3f should beat H2O %.3f on drifting hitters",
				sp*100, swa.Recall, h2o.Recall)
		}
	}
	if !strings.Contains(r.Render(), "h2o") {
		t.Error("render missing policies")
	}
}

func TestAblationNumericShape(t *testing.T) {
	r, err := AblationNumeric()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) NumericRow {
		for _, row := range r.Rows {
			if row.Policy == name {
				return row
			}
		}
		t.Fatalf("missing %s", name)
		return NumericRow{}
	}
	if get("dense").LogitCosine < 0.999 {
		t.Error("dense self-reference should be exact")
	}
	if get("swa").LogitCosine <= get("local").LogitCosine {
		t.Errorf("SWA %.4f should track dense better than local %.4f on live tensors",
			get("swa").LogitCosine, get("local").LogitCosine)
	}
	// INT8 on top of SWA costs almost nothing; INT4 costs more.
	swaDelta := get("swa+int8").LogitCosine - get("swa").LogitCosine
	if swaDelta < -0.02 {
		t.Errorf("INT8 should be nearly free on top of SWA, cost %.4f", -swaDelta)
	}
	if get("swa+int4").LogitCosine > get("swa+int8").LogitCosine+1e-9 {
		t.Error("INT4 should not beat INT8")
	}
}

func TestAblationCachingOrdering(t *testing.T) {
	r, err := AblationCaching()
	if err != nil {
		t.Fatal(err)
	}
	byCap := map[int]map[string]CachingRow{}
	for _, row := range r.Rows {
		if byCap[row.Capacity] == nil {
			byCap[row.Capacity] = map[string]CachingRow{}
		}
		byCap[row.Capacity][row.Policy] = row
	}
	for capacity, rows := range byCap {
		belady := rows["belady"]
		alisa := rows["alisa"]
		fifo := rows["fifo"]
		if !(belady.Misses <= alisa.Misses && alisa.Misses <= fifo.Misses) {
			t.Errorf("capacity %d: belady %d ≤ alisa %d ≤ fifo %d violated",
				capacity, belady.Misses, alisa.Misses, fifo.Misses)
		}
	}
	// Larger caches miss less under every policy.
	caps := make([]int, 0, len(byCap))
	for c := range byCap {
		caps = append(caps, c)
	}
	sort.Ints(caps)
	for _, policy := range []string{"belady", "alisa", "lru", "fifo"} {
		if byCap[caps[len(caps)-1]][policy].Misses > byCap[caps[0]][policy].Misses {
			t.Errorf("%s: largest cache misses more than smallest", policy)
		}
	}
	if !strings.Contains(r.Render(), "belady") {
		t.Error("render incomplete")
	}
}

func TestAblationEvictionOrdering(t *testing.T) {
	r, err := AblationEviction()
	if err != nil {
		t.Fatal(err)
	}
	get := func(sp float64, order string) EvictionRow {
		for _, row := range r.Rows {
			if row.KVSparsity == sp && strings.HasPrefix(row.Order, order) {
				return row
			}
		}
		t.Fatalf("missing %v/%s", sp, order)
		return EvictionRow{}
	}
	for _, sp := range []float64{0.6, 0.8} {
		keep := get(sp, "keep-local")
		inverted := get(sp, "inverted")
		if keep.Throughput <= inverted.Throughput {
			t.Errorf("sparsity %.0f%%: keep-local %.1f should beat inverted %.1f",
				sp*100, keep.Throughput, inverted.Throughput)
		}
		if keep.TransferS >= inverted.TransferS {
			t.Errorf("sparsity %.0f%%: keep-local should move fewer bytes", sp*100)
		}
	}
	if !strings.Contains(r.Render(), "keep-local") {
		t.Error("render incomplete")
	}
}
