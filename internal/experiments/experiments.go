// Package experiments reproduces every table and figure of the paper's
// evaluation (§III and §VI). Each experiment has a constructor returning a
// structured result plus a Render method that prints the same rows or
// series the paper reports, so `alisa-bench` regenerates the full
// evaluation and EXPERIMENTS.md can record paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/attention"
	"repro/internal/oracle"
)

// evalPolicy and evalPolicies are the accuracy-evaluation kernels every
// experiment shares: oracle.Evaluate and oracle.EvaluateMany, the parallel
// scratch-reusing hot path. The determinism test swaps in
// oracle.EvaluateSequential (and a per-policy sequential loop for the
// many-policy form) to prove rendered experiment output is byte-identical
// to the sequential reference.
var (
	evalPolicy   func(oracle.Spec, attention.Policy, int) *oracle.Result     = oracle.Evaluate
	evalPolicies func(oracle.Spec, []attention.Policy, int) []*oracle.Result = oracle.EvaluateMany
)

// Renderer is a result that can print itself for the CLI.
type Renderer interface {
	Render() string
}

// Runner describes one reproducible experiment.
type Runner struct {
	ID    string // e.g. "fig9"
	Title string
	Run   func() (Renderer, error)
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{ID: "table1", Title: "Table I: design comparison of vLLM, FlexGen, and ALISA", Run: func() (Renderer, error) { return Table1() }},
		{ID: "fig1", Title: "Fig. 1: execution time and memory breakdown, OPT-6.7B on V100-32G", Run: func() (Renderer, error) { return Fig1() }},
		{ID: "fig2c", Title: "Fig. 2(c): KV caching vs no caching, time and memory per step", Run: func() (Renderer, error) { return Fig2c() }},
		{ID: "fig3", Title: "Fig. 3: attention weight sparsity across steps and layers", Run: func() (Renderer, error) { return Fig3() }},
		{ID: "fig4", Title: "Fig. 4: attention score distributions and Spearman correlation", Run: func() (Renderer, error) { return Fig4() }},
		{ID: "fig5", Title: "Fig. 5: average dense attention weight maps", Run: func() (Renderer, error) { return Fig5() }},
		{ID: "fig8", Title: "Fig. 8: accuracy under KV sparsity across models and datasets", Run: func() (Renderer, error) { return Fig8(DefaultFig8Config()) }},
		{ID: "fig9", Title: "Fig. 9: end-to-end throughput vs baselines", Run: func() (Renderer, error) { return Fig9(DefaultFig9Config()) }},
		{ID: "fig10", Title: "Fig. 10: attainable attention sparsity vs KV sparsity", Run: func() (Renderer, error) { return Fig10() }},
		{ID: "fig11", Title: "Fig. 11: attention module execution breakdown", Run: func() (Renderer, error) { return Fig11() }},
		{ID: "fig12a", Title: "Fig. 12(a): per-phase execution time and memory", Run: func() (Renderer, error) { return Fig12a() }},
		{ID: "fig12b", Title: "Fig. 12(b): impact of recomputation", Run: func() (Renderer, error) { return Fig12b() }},
		{ID: "fig12c", Title: "Fig. 12(c): ablation of SWA, dynamic scheduling, and compression", Run: func() (Renderer, error) { return Fig12c() }},
		{ID: "ablation-scoring", Title: "Extra: token-importance scoring ablation (local sum vs H2O global sum)", Run: func() (Renderer, error) { return AblationScoring() }},
		{ID: "numeric", Title: "Extra: live-decoder cross-validation of the accuracy orderings", Run: func() (Renderer, error) { return AblationNumeric() }},
		{ID: "extension-int4", Title: "Extra: INT4 KV compression extension (§V-B future direction)", Run: func() (Renderer, error) { return ExtensionInt4() }},
		{ID: "ablation-caching", Title: "Extra: caching-policy ablation vs Belady's oracle (§III-B)", Run: func() (Renderer, error) { return AblationCaching() }},
		{ID: "ablation-eviction", Title: "Extra: keep-local eviction order ablation (§V-A)", Run: func() (Renderer, error) { return AblationEviction() }},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, r := range All() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return Runner{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, ids)
}
