package experiments

import (
	"strings"

	"repro/internal/textfmt"
)

// Table1Result reproduces Table I: the qualitative design comparison of
// vLLM, FlexGen, and ALISA.
type Table1Result struct {
	Rows [][]string
}

// Table1 returns the feature matrix exactly as the paper states it.
func Table1() (*Table1Result, error) {
	return &Table1Result{Rows: [][]string{
		{"Sparse Attn.", "no", "no", "yes"},
		{"Caching Granularity", "Block-level (Static)", "Head-level (Static)", "Token-level (Dynamic)"},
		{"Recomputation", "yes", "no", "yes"},
		{"Scenario", "Online (Multi-GPU)", "Offline (Single-GPU)", "Offline (Single-GPU)"},
		{"Co-Design", "no", "no", "yes"},
	}}, nil
}

// Render implements Renderer.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table I — comparison of prior works and ALISA\n\n")
	tb := textfmt.NewTable("Design", "vLLM", "FlexGen", "ALISA (Ours)")
	for _, row := range r.Rows {
		tb.AddRow(row...)
	}
	b.WriteString(tb.String())
	return b.String()
}
