package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/textfmt"
	"repro/internal/workload"
)

// fig12Workload is the configuration of all Fig. 12 panels: OPT-30B,
// batch 64, input 128, output 512, one H100.
func fig12Workload() (model.Config, workload.Spec) {
	return model.MustByName("opt-30b"), workload.Alpaca(64)
}

// Fig12aPhase is one phase bar of Fig. 12(a).
type Fig12aPhase struct {
	Phase   int
	EndStep int // sequence position at the end of the phase
	Seconds float64
	GPUPeak int64
	CPUPeak int64
}

// Fig12aRow is one system × sparsity group.
type Fig12aRow struct {
	System     string
	KVSparsity float64
	Phases     []Fig12aPhase
	Total      float64
}

// Fig12aResult reproduces Fig. 12(a): execution time and memory usage by
// scheduling phase for FlexGen and ALISA at several KV sparsities.
type Fig12aResult struct {
	Rows []Fig12aRow
}

// Fig12a runs ALISA at 40/60/80 % sparsity plus the FlexGen reference and
// aggregates per-phase times and memory peaks.
func Fig12a() (*Fig12aResult, error) {
	mc, spec := fig12Workload()
	prof := PaperProfile(mc)
	res := &Fig12aResult{}

	// FlexGen reference: no phases; reported as one bar.
	fgRun, err := core.Run(context.Background(), core.Config{
		Model: mc, Profile: prof, Scheduler: sched.MustByName("flexgen"),
		Batch: spec.Batch, Input: spec.Input, Output: spec.Output,
		KVSparsity: 0, KVBits: 16,
	})
	if err != nil {
		return nil, fmt.Errorf("fig12a flexgen: %w", err)
	}
	res.Rows = append(res.Rows, Fig12aRow{
		System: "flexgen", KVSparsity: 0, Total: fgRun.TotalSeconds,
		Phases: []Fig12aPhase{{
			Phase: 1, EndStep: spec.Input + spec.Output,
			Seconds: fgRun.TotalSeconds,
			GPUPeak: fgRun.Memory.PeakGPU(), CPUPeak: fgRun.Memory.PeakCPU(),
		}},
	})

	for _, sparsity := range []float64{0.4, 0.6, 0.8} {
		// FP16 KV: INT8 compression joins only in the Fig. 12(c) ablation.
		out, err := core.Run(context.Background(), core.Config{
			Model: mc, Profile: prof, Scheduler: sched.MustByName("alisa"),
			Batch: spec.Batch, Input: spec.Input, Output: spec.Output,
			KVSparsity: sparsity, KVBits: 16,
		})
		if err != nil {
			return nil, fmt.Errorf("fig12a alisa %.0f%%: %w", sparsity*100, err)
		}
		row := Fig12aRow{System: "alisa", KVSparsity: sparsity, Total: out.TotalSeconds}
		for phase := 1; phase <= 3; phase++ {
			var ph Fig12aPhase
			ph.Phase = phase
			seen := false
			for j, p := range out.PhaseOf {
				if p != phase {
					continue
				}
				seen = true
				ph.Seconds += out.Steps[j].Seconds
				ph.EndStep = spec.Input + j + 1
				if m, ok := out.Memory.At(j); ok {
					if m.GPUBytes > ph.GPUPeak {
						ph.GPUPeak = m.GPUBytes
					}
					if m.CPUBytes > ph.CPUPeak {
						ph.CPUPeak = m.CPUBytes
					}
				}
			}
			if seen {
				row.Phases = append(row.Phases, ph)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig12aResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 12(a) — OPT-30B (b=64, s=128, n=512) on H100: time and memory by phase\n\n")
	tb := textfmt.NewTable("system", "KV sparsity", "phase", "end seq", "time", "GPU peak", "CPU peak")
	for _, row := range r.Rows {
		for _, ph := range row.Phases {
			tb.AddRow(row.System,
				fmt.Sprintf("%.0f%%", row.KVSparsity*100),
				fmt.Sprint(ph.Phase), fmt.Sprint(ph.EndStep),
				textfmt.Seconds(ph.Seconds),
				textfmt.Bytes(ph.GPUPeak), textfmt.Bytes(ph.CPUPeak))
		}
		tb.AddRow(row.System, fmt.Sprintf("%.0f%%", row.KVSparsity*100), "all", "",
			textfmt.Seconds(row.Total), "", "")
	}
	b.WriteString(tb.String())
	return b.String()
}

// Fig12bRow is one sparsity point of Fig. 12(b).
type Fig12bRow struct {
	KVSparsity       float64
	WithRecompute    float64
	WithoutRecompute float64
	Speedup          float64
}

// Fig12bResult reproduces Fig. 12(b): the effect of Phase III
// recomputation on total execution time.
type Fig12bResult struct {
	Rows []Fig12bRow
}

// Fig12b toggles recomputation at each sparsity.
func Fig12b() (*Fig12bResult, error) {
	mc, spec := fig12Workload()
	prof := PaperProfile(mc)
	res := &Fig12bResult{}
	for _, sparsity := range []float64{0.4, 0.6, 0.8} {
		base := core.Config{
			Model: mc, Profile: prof,
			Batch: spec.Batch, Input: spec.Input, Output: spec.Output,
			KVSparsity: sparsity, KVBits: 16,
		}
		withCfg := base
		withCfg.Scheduler = sched.MustByName("alisa")
		with, err := core.Run(context.Background(), withCfg)
		if err != nil {
			return nil, fmt.Errorf("fig12b with: %w", err)
		}
		withoutCfg := base
		withoutCfg.Scheduler = sched.NewAlisaManual(0, spec.Output, false)
		without, err := core.Run(context.Background(), withoutCfg)
		if err != nil {
			return nil, fmt.Errorf("fig12b without: %w", err)
		}
		res.Rows = append(res.Rows, Fig12bRow{
			KVSparsity:       sparsity,
			WithRecompute:    with.TotalSeconds,
			WithoutRecompute: without.TotalSeconds,
			Speedup:          without.TotalSeconds / with.TotalSeconds,
		})
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig12bResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 12(b) — impact of recomputation at full sequence length\n\n")
	tb := textfmt.NewTable("KV sparsity", "with recompute", "without", "speedup")
	for _, row := range r.Rows {
		tb.AddRow(fmt.Sprintf("%.0f%%", row.KVSparsity*100),
			textfmt.Seconds(row.WithRecompute), textfmt.Seconds(row.WithoutRecompute),
			fmt.Sprintf("%.2fx", row.Speedup))
	}
	b.WriteString(tb.String())
	return b.String()
}

// Fig12cRow is one technique-accumulation point of Fig. 12(c).
type Fig12cRow struct {
	KVSparsity float64
	Variant    string // flexgen, +swa, +ds, +int8
	Throughput float64
}

// Fig12cResult reproduces Fig. 12(c): the ablation of SWA, dynamic
// scheduling (DS) and INT8 KV compression, accumulated left to right.
type Fig12cResult struct {
	Rows []Fig12cRow
}

// Fig12c stacks the three techniques on the FlexGen baseline.
func Fig12c() (*Fig12cResult, error) {
	mc, spec := fig12Workload()
	prof := PaperProfile(mc)
	res := &Fig12cResult{}
	for _, sparsity := range []float64{0.4, 0.6, 0.8} {
		variants := []struct {
			name      string
			scheduler sched.Scheduler
			sparsity  float64
			bits      int
		}{
			{"flexgen", sched.MustByName("flexgen"), 0, 16},
			{"+swa", sched.MustByName("flexgen"), sparsity, 16},
			{"+ds", sched.MustByName("alisa"), sparsity, 16},
			{"+int8", sched.MustByName("alisa"), sparsity, 8},
		}
		for _, v := range variants {
			out, err := core.Run(context.Background(), core.Config{
				Model: mc, Profile: prof, Scheduler: v.scheduler,
				Batch: spec.Batch, Input: spec.Input, Output: spec.Output,
				KVSparsity: v.sparsity, KVBits: v.bits,
			})
			if err != nil {
				return nil, fmt.Errorf("fig12c %s: %w", v.name, err)
			}
			res.Rows = append(res.Rows, Fig12cRow{
				KVSparsity: sparsity, Variant: v.name, Throughput: out.Throughput,
			})
		}
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig12cResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 12(c) — ablation (tokens/s); techniques accumulate left to right\n\n")
	tb := textfmt.NewTable("KV sparsity", "flexgen", "+swa", "+ds", "+int8")
	for _, sparsity := range []float64{0.4, 0.6, 0.8} {
		row := []string{fmt.Sprintf("%.0f%%", sparsity*100)}
		for _, variant := range []string{"flexgen", "+swa", "+ds", "+int8"} {
			for _, c := range r.Rows {
				if c.KVSparsity == sparsity && c.Variant == variant {
					row = append(row, fmt.Sprintf("%.1f", c.Throughput))
				}
			}
		}
		tb.AddRow(row...)
	}
	b.WriteString(tb.String())
	return b.String()
}
