package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/textfmt"
	"repro/internal/workload"
)

// Int4Row is one precision point of the INT4 extension study.
type Int4Row struct {
	Model      string
	KVBits     int
	Throughput float64
	TransferS  float64
}

// Int4Result is the paper's future-work direction made concrete: §V-B
// cites Dettmers & Zettlemoyer that OPT models stay accurate down to
// INT4, while the paper ships INT8 "to generalize to more LLMs". This
// experiment quantifies what INT4 KV would buy on the system side; the
// accuracy cost appears in the numeric cross-validation (swa+int4 row).
type Int4Result struct {
	Rows []Int4Row
}

// ExtensionInt4 sweeps KV precision at the headline workload.
func ExtensionInt4() (*Int4Result, error) {
	res := &Int4Result{}
	for _, name := range []string{"opt-6.7b", "opt-30b"} {
		mc := model.MustByName(name)
		prof := PaperProfile(mc)
		spec := workload.Alpaca(64)
		for _, bits := range []int{16, 8, 4} {
			out, err := core.Run(context.Background(), core.Config{
				Model: mc, Profile: prof, Scheduler: sched.MustByName("alisa"),
				Batch: spec.Batch, Input: spec.Input, Output: spec.Output,
				KVSparsity: 0.8, KVBits: bits,
			})
			if err != nil {
				return nil, fmt.Errorf("int4 extension %s/%d: %w", name, bits, err)
			}
			res.Rows = append(res.Rows, Int4Row{
				Model:      name,
				KVBits:     bits,
				Throughput: out.Throughput,
				TransferS:  out.Breakdown.Get("transfer"),
			})
		}
	}
	return res, nil
}

// Render implements Renderer.
func (r *Int4Result) Render() string {
	var b strings.Builder
	b.WriteString("Extension — INT4 KV compression (paper §V-B cites INT4 viability for OPT)\n")
	b.WriteString("ALISA at 80% KV sparsity, Alpaca workload, batch 64\n\n")
	tb := textfmt.NewTable("model", "KV precision", "throughput", "transfer time")
	for _, row := range r.Rows {
		tb.AddRow(row.Model, fmt.Sprintf("INT%d", row.KVBits),
			fmt.Sprintf("%.1f tok/s", row.Throughput),
			textfmt.Seconds(row.TransferS))
	}
	b.WriteString(tb.String())
	b.WriteString("\nAccuracy side: see the `numeric` experiment — INT4 KV is measurably\n")
	b.WriteString("noisier than INT8 on live tensors, matching the paper's caution.\n")
	return b.String()
}
