package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attention"
	"repro/internal/costmodel"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/textfmt"
)

// Fig10Point is one point of Fig. 10.
type Fig10Point struct {
	Model             string
	KVSparsity        float64
	AttentionSparsity float64 // measured on SWA-masked rows
	DenseSparsity     float64 // the dense-attention ceiling
}

// Fig10Result reproduces Fig. 10: attainable attention weight sparsity as
// a function of KV sparsity.
type Fig10Result struct {
	Points []Fig10Point
}

// Fig10 sweeps SWA KV sparsity on OPT-6.7B and OPT-30B processes.
func Fig10() (*Fig10Result, error) {
	const steps = 320
	res := &Fig10Result{}
	for _, name := range []string{"opt-6.7b", "opt-30b"} {
		mc := model.MustByName(name)
		spec := oracle.SpecForModel(mc, 404)
		spec.Layers = 4
		for _, sparsity := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
			ratio := 1 - sparsity
			pol := attention.MustByName("swa", ratio, spec.Layers)
			if sparsity == 0 {
				pol = attention.MustByName("dense", ratio, spec.Layers)
			}
			ev := evalPolicy(spec, pol, steps)
			res.Points = append(res.Points, Fig10Point{
				Model:             name,
				KVSparsity:        sparsity,
				AttentionSparsity: metrics.Mean(ev.MaskedSparsityPerStep[64:]),
				DenseSparsity:     metrics.Mean(ev.DenseSparsityPerStep[64:]),
			})
		}
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 10 — attention weight sparsity attained by SWA vs KV sparsity\n\n")
	tb := textfmt.NewTable("model", "KV sparsity", "attained attn sparsity", "dense attn sparsity")
	for _, p := range r.Points {
		tb.AddRow(p.Model,
			fmt.Sprintf("%.0f%%", p.KVSparsity*100),
			fmt.Sprintf("%.1f%%", p.AttentionSparsity*100),
			fmt.Sprintf("%.1f%%", p.DenseSparsity*100))
	}
	b.WriteString(tb.String())
	return b.String()
}

// Fig11Row is one bar of Fig. 11: an attention module configuration with
// its per-operation times and effective FLOPS.
type Fig11Row struct {
	Model      string
	KVSparsity float64
	Breakdown  costmodel.AttnBreakdown
}

// Fig11Result reproduces Fig. 11: single-attention-module execution time
// broken into QKᵀ, local attention sum, sparse-KV gather, softmax and
// AW·V, with effective FLOPS per op.
type Fig11Result struct {
	Batch, SeqLen int
	Rows          []Fig11Row
}

// Fig11 profiles the SWA attention module at the paper's configuration:
// batch 64, sequence length 128, both models on one card (an op-level
// microbenchmark isolating the dimension effect; the paper's comparison
// is SWA-to-SWA across KV sparsity, so the 0 % row also pays SWA's
// local-sum and gather overheads).
func Fig11() (*Fig11Result, error) {
	const (
		batch  = 64
		seqLen = 128
	)
	cost := costmodel.New(memsim.H100_80G())
	res := &Fig11Result{Batch: batch, SeqLen: seqLen}
	for _, name := range []string{"opt-6.7b", "opt-30b"} {
		mc := model.MustByName(name)
		for _, sparsity := range []float64{0, 0.4, 0.8} {
			attended := int(float64(seqLen)*(1-sparsity) + 0.5)
			if attended < 1 {
				attended = 1
			}
			cfg := costmodel.AttnConfig{
				Batch: batch, Hidden: mc.Hidden, Heads: mc.Heads,
				Attended: attended, BytesKV: 2,
				LocalWindow: attended / 2,
			}
			res.Rows = append(res.Rows, Fig11Row{
				Model:      name,
				KVSparsity: sparsity,
				Breakdown:  cost.Attention(cfg),
			})
		}
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11 — attention module breakdown (b=%d, s=%d); GFLOPS in brackets\n\n", r.Batch, r.SeqLen)
	tb := textfmt.NewTable("model", "KV sparsity", "QKᵀ", "local sum", "gather", "softmax", "AW·V", "total")
	for _, row := range r.Rows {
		bd := row.Breakdown
		cell := func(s costmodel.Sample) string {
			if s.Seconds == 0 {
				return "-"
			}
			if s.FLOPs == 0 {
				return textfmt.Seconds(s.Seconds)
			}
			return fmt.Sprintf("%s [%.0f]", textfmt.Seconds(s.Seconds), s.EffFLOPS()/1e9)
		}
		tb.AddRow(row.Model,
			fmt.Sprintf("%.0f%%", row.KVSparsity*100),
			cell(bd.QKT), cell(bd.LocalSum), cell(bd.Gather),
			cell(bd.Softmax), cell(bd.AV),
			textfmt.Seconds(bd.Total()))
	}
	b.WriteString(tb.String())
	return b.String()
}
