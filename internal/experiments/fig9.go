package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/textfmt"
	"repro/internal/workload"
)

// Fig9Config sizes the throughput sweep.
type Fig9Config struct {
	Models  []string
	Batches []int
	Systems []string
	// ALISA settings for the sweep: the paper's 80 % KV sparsity + INT8.
	KVSparsity float64
	KVBits     int
}

// DefaultFig9Config covers the six OPT/LLaMA models of Fig. 9 at the
// paper's batch sizes against all four baselines.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Models:     []string{"opt-6.7b", "opt-13b", "opt-30b", "llama-7b", "llama-13b", "llama-33b"},
		Batches:    workload.Fig9Batches(),
		Systems:    sched.Names(),
		KVSparsity: 0.8,
		KVBits:     8,
	}
}

// PaperProfile returns the hardware the paper pairs with the model scale:
// V100-16G for ~7B, V100-32G for ~13B, H100-80G for ≥30B.
func PaperProfile(cfg model.Config) memsim.Profile {
	switch {
	case cfg.Params() > 20e9:
		return memsim.H100_80G()
	case cfg.Params() > 10e9:
		return memsim.V100_32G()
	default:
		return memsim.V100_16G()
	}
}

// Fig9Cell is one bar of Fig. 9.
type Fig9Cell struct {
	Model      string
	Batch      int
	System     string
	Throughput float64 // tokens/s; 0 with OOM set means the OOM marker
	OOM        bool
}

// Fig9Result reproduces Fig. 9.
type Fig9Result struct {
	Config Fig9Config
	Cells  []Fig9Cell
}

// Fig9 sweeps model × batch × system on the Alpaca workload (s=128,
// n=512). ALISA runs at the configured sparsity and KV precision;
// baselines run dense FP16, as in the paper.
func Fig9(cfg Fig9Config) (*Fig9Result, error) {
	res := &Fig9Result{Config: cfg}
	for _, modelName := range cfg.Models {
		mc, err := model.ByName(modelName)
		if err != nil {
			return nil, err
		}
		prof := PaperProfile(mc)
		for _, batch := range cfg.Batches {
			spec := workload.Alpaca(batch)
			for _, system := range cfg.Systems {
				s, err := sched.ByName(system)
				if err != nil {
					return nil, err
				}
				runCfg := core.Config{
					Model: mc, Profile: prof, Scheduler: s,
					Batch: spec.Batch, Input: spec.Input, Output: spec.Output,
					KVSparsity: 0, KVBits: 16,
				}
				if system == "alisa" {
					runCfg.KVSparsity = cfg.KVSparsity
					runCfg.KVBits = cfg.KVBits
				}
				cell := Fig9Cell{Model: modelName, Batch: batch, System: system}
				out, err := core.Run(context.Background(), runCfg)
				switch {
				case err == nil:
					cell.Throughput = out.Throughput
				case out != nil && out.OOM:
					cell.OOM = true
				default:
					return nil, fmt.Errorf("fig9 %s/%s/b%d: %w", modelName, system, batch, err)
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res, nil
}

// Cell returns the measurement at the coordinates, or false.
func (r *Fig9Result) Cell(modelName string, batch int, system string) (Fig9Cell, bool) {
	for _, c := range r.Cells {
		if c.Model == modelName && c.Batch == batch && c.System == system {
			return c, true
		}
	}
	return Fig9Cell{}, false
}

// Speedup returns ALISA's throughput ratio over the named system at the
// coordinates; OOM baselines yield +Inf-like large values, absent cells 0.
func (r *Fig9Result) Speedup(modelName string, batch int, over string) float64 {
	a, okA := r.Cell(modelName, batch, "alisa")
	b, okB := r.Cell(modelName, batch, over)
	if !okA || !okB || b.OOM || b.Throughput == 0 {
		return 0
	}
	return a.Throughput / b.Throughput
}

// Render implements Renderer.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 — throughput (tokens/s) on Alpaca (s=128, n=512); ALISA at %.0f%% KV sparsity, INT%d\n",
		r.Config.KVSparsity*100, r.Config.KVBits)
	for _, modelName := range r.Config.Models {
		mc := model.MustByName(modelName)
		fmt.Fprintf(&b, "\n%s on %s:\n", modelName, PaperProfile(mc).Name)
		hdr := []string{"system"}
		for _, batch := range r.Config.Batches {
			hdr = append(hdr, fmt.Sprintf("b=%d", batch))
		}
		hdr = append(hdr, "vs flexgen (b=64)", "vs vllm (b=64)")
		tb := textfmt.NewTable(hdr...)
		for _, system := range r.Config.Systems {
			row := []string{system}
			for _, batch := range r.Config.Batches {
				c, ok := r.Cell(modelName, batch, system)
				switch {
				case !ok:
					row = append(row, "-")
				case c.OOM:
					row = append(row, "OOM")
				default:
					row = append(row, fmt.Sprintf("%.1f", c.Throughput))
				}
			}
			if system == "alisa" {
				maxBatch := r.Config.Batches[len(r.Config.Batches)-1]
				row = append(row,
					fmt.Sprintf("%.2fx", r.Speedup(modelName, maxBatch, "flexgen")),
					fmt.Sprintf("%.2fx", r.Speedup(modelName, maxBatch, "vllm")))
			}
			tb.AddRow(row...)
		}
		b.WriteString(tb.String())
	}
	return b.String()
}
