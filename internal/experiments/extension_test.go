package experiments

import (
	"strings"
	"testing"
)

func TestExtensionInt4Shape(t *testing.T) {
	r, err := ExtensionInt4()
	if err != nil {
		t.Fatal(err)
	}
	get := func(model string, bits int) Int4Row {
		for _, row := range r.Rows {
			if row.Model == model && row.KVBits == bits {
				return row
			}
		}
		t.Fatalf("missing %s/INT%d", model, bits)
		return Int4Row{}
	}
	for _, m := range []string{"opt-6.7b", "opt-30b"} {
		fp16 := get(m, 16)
		int8 := get(m, 8)
		int4 := get(m, 4)
		// Narrower KV means less traffic and at least as much throughput.
		if !(int8.Throughput > fp16.Throughput) {
			t.Errorf("%s: INT8 %.1f should beat FP16 %.1f", m, int8.Throughput, fp16.Throughput)
		}
		if int4.Throughput < int8.Throughput {
			t.Errorf("%s: INT4 %.1f should not lose to INT8 %.1f", m, int4.Throughput, int8.Throughput)
		}
		if !(int4.TransferS <= int8.TransferS && int8.TransferS <= fp16.TransferS) {
			t.Errorf("%s: transfer time should shrink with precision: %v, %v, %v",
				m, fp16.TransferS, int8.TransferS, int4.TransferS)
		}
	}
	if !strings.Contains(r.Render(), "INT4") {
		t.Error("render missing precision labels")
	}
}
