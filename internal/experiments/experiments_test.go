package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range All() {
		if r.ID == "" || r.Title == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if ids[r.ID] {
			t.Fatalf("duplicate id %q", r.ID)
		}
		ids[r.ID] = true
	}
	// Every evaluation artefact of the paper must be present.
	for _, id := range []string{"table1", "fig1", "fig2c", "fig3", "fig4", "fig5",
		"fig8", "fig9", "fig10", "fig11", "fig12a", "fig12b", "fig12c"} {
		if !ids[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
	if _, err := ByID("fig9"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestTable1(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, want := range []string{"Token-level (Dynamic)", "Head-level (Static)", "Block-level (Static)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestFig1ShapeMatchesPaper(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("want 2 workloads × 3 placements = 6 rows, got %d", len(r.Rows))
	}
	byKey := map[string]Fig1Row{}
	for _, row := range r.Rows {
		byKey[row.Workload.Name+"/"+row.Placement] = row
	}
	// Large workload without offloading OOMs (the paper's red "OOM" bar).
	if !byKey["w2/GPU only"].OOM {
		t.Error("w2 GPU-only should OOM")
	}
	if byKey["w1/GPU only"].OOM {
		t.Error("w1 GPU-only should fit")
	}
	// Moving KV to CPU slows the run down, strongly with 100 % placement
	// (paper: ≈3× at 50 %, ≈5× at 100 %).
	base := byKey["w1/GPU only"].TotalSeconds
	half := byKey["w1/50% CPU"].TotalSeconds
	full := byKey["w1/100% CPU"].TotalSeconds
	if !(base < half && half < full) {
		t.Fatalf("slowdown ordering broken: %v < %v < %v expected", base, half, full)
	}
	if ratio := half / base; ratio < 1.5 || ratio > 6 {
		t.Errorf("50%% CPU slowdown %.2f× outside the paper's ≈3× region", ratio)
	}
	if ratio := full / base; ratio < 2.5 || ratio > 10 {
		t.Errorf("100%% CPU slowdown %.2f× outside the paper's ≈5× region", ratio)
	}
	// Memory-access time dominates the offloaded runs.
	if byKey["w1/100% CPU"].MemAccessSecond < byKey["w1/100% CPU"].MHASeconds {
		t.Error("100% CPU run should be transfer-dominated")
	}
}

func TestFig2cShape(t *testing.T) {
	r, err := Fig2c()
	if err != nil {
		t.Fatal(err)
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	// Cached: flat time, growing memory. Uncached: growing time, flat mem.
	if last.CachedSeconds > first.CachedSeconds*1.5 {
		t.Errorf("cached step time should stay near-flat: %v → %v", first.CachedSeconds, last.CachedSeconds)
	}
	if last.UncachedSeconds < first.UncachedSeconds*2 {
		t.Errorf("uncached step time should grow: %v → %v", first.UncachedSeconds, last.UncachedSeconds)
	}
	if last.CachedGPUBytes <= first.CachedGPUBytes {
		t.Error("cached memory should grow")
	}
	if last.UncachedGPU != first.UncachedGPU {
		t.Error("uncached memory should stay flat")
	}
	if !strings.Contains(r.Render(), "step") {
		t.Error("render missing header")
	}
}

func TestFig3ShapeMatchesPaper(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("want 3 OPT models, got %d", len(r.Series))
	}
	for _, s := range r.Series {
		if s.MeanSparsity < 0.75 || s.MeanSparsity > 0.99 {
			t.Errorf("%s: sparsity %.3f outside the paper's 80–95%% band", s.Model, s.MeanSparsity)
		}
	}
	// Larger models sparser (paper: OPT-30B density ≈3× below OPT-6.7B).
	if !(r.Series[0].MeanSparsity < r.Series[1].MeanSparsity &&
		r.Series[1].MeanSparsity < r.Series[2].MeanSparsity) {
		t.Error("sparsity should grow with model size")
	}
}

func TestFig4ShapeMatchesPaper(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	rho := map[string]float64{}
	for _, s := range r.Series {
		rho[s.Policy] = s.Spearman
	}
	if rho["dense"] != 1 {
		t.Errorf("dense ρ = %v, want 1", rho["dense"])
	}
	if !(rho["swa"] > rho["local"] && rho["swa"] > rho["strided"]) {
		t.Errorf("SWA ρ should dominate: %v", rho)
	}
	if rho["swa"] < 0.8 {
		t.Errorf("SWA ρ = %.3f, paper reports ≈1", rho["swa"])
	}
	// Score distributions are near power law: the top score dominates.
	for _, s := range r.Series {
		if len(s.TopScores) < 4 || s.TopScores[0] <= s.TopScores[3] {
			t.Errorf("%s: scores not heavy-tailed: %v", s.Policy, s.TopScores[:4])
		}
	}
}

func TestFig5Causal(t *testing.T) {
	r, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Maps) != 4 {
		t.Fatalf("want 4 panels, got %d", len(r.Maps))
	}
	for _, m := range r.Maps {
		for i := range m.Map {
			for j := i + 1; j < len(m.Map[i]); j++ {
				if m.Map[i][j] != 0 {
					t.Fatalf("%s: causality violated at (%d,%d)", m.Label, i, j)
				}
			}
		}
	}
	if !strings.Contains(r.Render(), "layer 16") {
		t.Error("render missing panel labels")
	}
}

func TestFig8ShapeMatchesPaper(t *testing.T) {
	cfg := Fig8Config{
		Models:     []string{"opt-6.7b", "llama-33b"},
		Datasets:   []string{"wikitext-2", "piqa"},
		Sparsities: []float64{0, 0.4, 0.8},
		Steps:      192,
		Layers:     3,
	}
	r, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At 0 % sparsity every method matches dense.
	for _, m := range []string{"local", "strided", "swa"} {
		c, ok := r.Cell("opt-6.7b", "wikitext-2", m, 0)
		if !ok || c.Metric != mustCell(t, r, "opt-6.7b", "wikitext-2", "dense", 0).Metric {
			t.Errorf("%s at 0%% sparsity should equal dense", m)
		}
	}
	// At 80 % sparsity: SWA stays near dense (<10 % ppl regression), local
	// collapses (the paper's central accuracy finding).
	dense := mustCell(t, r, "opt-6.7b", "wikitext-2", "dense", 0.8)
	swa := mustCell(t, r, "opt-6.7b", "wikitext-2", "swa", 0.8)
	local := mustCell(t, r, "opt-6.7b", "wikitext-2", "local", 0.8)
	if swa.Metric > dense.Metric*1.25 {
		t.Errorf("SWA ppl %.2f should stay near dense %.2f at 80%%", swa.Metric, dense.Metric)
	}
	if local.Metric < dense.Metric*2 {
		t.Errorf("local ppl %.2f should collapse vs dense %.2f", local.Metric, dense.Metric)
	}
	// ALISA tracks SWA closely (KV compression is accuracy-neutral).
	alisa := mustCell(t, r, "opt-6.7b", "wikitext-2", "alisa", 0.8)
	if alisa.Metric < swa.Metric || alisa.Metric > swa.Metric*1.1 {
		t.Errorf("ALISA ppl %.3f should track SWA %.3f", alisa.Metric, swa.Metric)
	}
	// QA accuracy: SWA above local at high sparsity.
	swaQA := mustCell(t, r, "llama-33b", "piqa", "swa", 0.8)
	localQA := mustCell(t, r, "llama-33b", "piqa", "local", 0.8)
	if swaQA.Metric <= localQA.Metric {
		t.Errorf("SWA acc %.3f should beat local %.3f", swaQA.Metric, localQA.Metric)
	}
}

func mustCell(t *testing.T, r *Fig8Result, m, d, method string, sp float64) Fig8Cell {
	t.Helper()
	c, ok := r.Cell(m, d, method, sp)
	if !ok {
		t.Fatalf("missing cell %s/%s/%s/%v", m, d, method, sp)
	}
	return c
}

func TestFig9ShapeMatchesPaper(t *testing.T) {
	cfg := Fig9Config{
		Models:     []string{"opt-6.7b"},
		Batches:    []int{4, 64},
		Systems:    []string{"deepspeed-zero", "hf-accelerate", "flexgen", "vllm", "alisa"},
		KVSparsity: 0.8,
		KVBits:     8,
	}
	r, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ALISA wins at the large batch over FlexGen. The paper reports up to
	// 3.0×; our FlexGen baseline lacks its compression and CPU-compute
	// options, so the measured ratio overshoots (recorded in
	// EXPERIMENTS.md) while the winner and growth direction hold.
	if s := r.Speedup("opt-6.7b", 64, "flexgen"); s < 1.4 || s > 20 {
		t.Errorf("ALISA/FlexGen speedup %.2f× outside band", s)
	}
	if s := r.Speedup("opt-6.7b", 64, "vllm"); s <= 1 {
		t.Errorf("ALISA should beat vLLM at b=64, got %.2f×", s)
	}
	// DeepSpeed OOMs at the large batch (paper Fig. 9 "OOM" markers).
	if c, ok := r.Cell("opt-6.7b", 64, "deepspeed-zero"); !ok || !c.OOM {
		t.Error("DeepSpeed should OOM at b=64")
	}
	// Speedup grows with batch (paper: "As the batch size grows, the
	// speedup of ALISA over FlexGen and other methods increases").
	if r.Speedup("opt-6.7b", 64, "flexgen") <= r.Speedup("opt-6.7b", 4, "flexgen") {
		t.Error("speedup should grow with batch size")
	}
	if !strings.Contains(r.Render(), "OOM") {
		t.Error("render should mark OOM cells")
	}
}

func TestFig10ShapeMatchesPaper(t *testing.T) {
	r, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	// Within each model, attained attention sparsity rises with KV
	// sparsity (Fig. 10's first observation).
	byModel := map[string][]Fig10Point{}
	for _, p := range r.Points {
		byModel[p.Model] = append(byModel[p.Model], p)
	}
	for model, pts := range byModel {
		for i := 1; i < len(pts); i++ {
			if pts[i].AttentionSparsity+0.005 < pts[i-1].AttentionSparsity {
				t.Errorf("%s: attention sparsity fell from %.3f to %.3f",
					model, pts[i-1].AttentionSparsity, pts[i].AttentionSparsity)
			}
		}
	}
	// Larger model needs higher KV sparsity to approach its dense
	// sparsity: at 80 % KV sparsity the 30B gap to dense exceeds the
	// 6.7B gap relative to their levels... the robust check is that the
	// 30B dense ceiling is higher than 6.7B's.
	if byModel["opt-30b"][0].DenseSparsity <= byModel["opt-6.7b"][0].DenseSparsity {
		t.Error("OPT-30B dense sparsity should exceed OPT-6.7B")
	}
}

func TestFig11ShapeMatchesPaper(t *testing.T) {
	r, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]map[float64]Fig11Row{}
	for _, row := range r.Rows {
		if rows[row.Model] == nil {
			rows[row.Model] = map[float64]Fig11Row{}
		}
		rows[row.Model][row.KVSparsity] = row
	}
	for model, byS := range rows {
		// Higher KV sparsity always reduces module time.
		if !(byS[0].Breakdown.Total() > byS[0.4].Breakdown.Total() &&
			byS[0.4].Breakdown.Total() > byS[0.8].Breakdown.Total()) {
			t.Errorf("%s: time should fall with sparsity", model)
		}
		// Effective QKᵀ FLOPS drop at high sparsity (under-utilisation).
		if byS[0.8].Breakdown.QKT.EffFLOPS() >= byS[0].Breakdown.QKT.EffFLOPS() {
			t.Errorf("%s: QKᵀ FLOPS should drop at 80%% sparsity", model)
		}
	}
	// Larger model pays a higher SWA overhead (local sum + gather).
	small := rows["opt-6.7b"][0.4].Breakdown
	large := rows["opt-30b"][0.4].Breakdown
	if large.LocalSum.Seconds+large.Gather.Seconds <= small.LocalSum.Seconds+small.Gather.Seconds {
		t.Error("OPT-30B should pay more SWA overhead than OPT-6.7B")
	}
}

func TestFig12aShapeMatchesPaper(t *testing.T) {
	r, err := Fig12a()
	if err != nil {
		t.Fatal(err)
	}
	var alisaRows []Fig12aRow
	var flexgen Fig12aRow
	for _, row := range r.Rows {
		if row.System == "alisa" {
			alisaRows = append(alisaRows, row)
		} else {
			flexgen = row
		}
	}
	if len(alisaRows) != 3 {
		t.Fatalf("want 3 ALISA sparsities, got %d", len(alisaRows))
	}
	for _, row := range alisaRows {
		// ALISA beats FlexGen at every sparsity (Fig. 12(a) observation 1).
		if row.Total >= flexgen.Total {
			t.Errorf("ALISA %.0f%% total %.2fs should beat FlexGen %.2fs",
				row.KVSparsity*100, row.Total, flexgen.Total)
		}
		// All three phases appear under this memory-pressured workload.
		if len(row.Phases) != 3 {
			t.Errorf("ALISA %.0f%%: %d phases, want 3", row.KVSparsity*100, len(row.Phases))
		}
	}
	// Higher sparsity delays Phase III (observation 3: "higher KV sparsity
	// enters Phase III later").
	endOfPhase2 := func(row Fig12aRow) int {
		for _, ph := range row.Phases {
			if ph.Phase == 2 {
				return ph.EndStep
			}
		}
		return 0
	}
	if !(endOfPhase2(alisaRows[0]) <= endOfPhase2(alisaRows[1]) &&
		endOfPhase2(alisaRows[1]) <= endOfPhase2(alisaRows[2])) {
		t.Errorf("Phase III should start later with higher sparsity: %d, %d, %d",
			endOfPhase2(alisaRows[0]), endOfPhase2(alisaRows[1]), endOfPhase2(alisaRows[2]))
	}
	// Higher sparsity means higher speedup over FlexGen (observation 1).
	if !(alisaRows[2].Total < alisaRows[1].Total && alisaRows[1].Total < alisaRows[0].Total) {
		t.Error("total time should fall with sparsity")
	}
	if out := r.Render(); !strings.Contains(out, "phase") || !strings.Contains(out, "flexgen") {
		t.Error("render incomplete")
	}
}

func TestFig12bShapeMatchesPaper(t *testing.T) {
	r, err := Fig12b()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// Paper: recomputation reduces total time by 1.2–1.3×. Accept a
		// generous band around it.
		if row.Speedup < 1.02 {
			t.Errorf("recompute speedup %.3f at %.0f%% sparsity should exceed 1",
				row.Speedup, row.KVSparsity*100)
		}
		if row.Speedup > 2.5 {
			t.Errorf("recompute speedup %.2f implausibly large", row.Speedup)
		}
	}
	if !strings.Contains(r.Render(), "speedup") {
		t.Error("render incomplete")
	}
}

func TestFig12cShapeMatchesPaper(t *testing.T) {
	r, err := Fig12c()
	if err != nil {
		t.Fatal(err)
	}
	get := func(sp float64, variant string) float64 {
		for _, c := range r.Rows {
			if c.KVSparsity == sp && c.Variant == variant {
				return c.Throughput
			}
		}
		t.Fatalf("missing %v/%s", sp, variant)
		return 0
	}
	for _, sp := range []float64{0.4, 0.6, 0.8} {
		fg, swa, ds, int8 := get(sp, "flexgen"), get(sp, "+swa"), get(sp, "+ds"), get(sp, "+int8")
		// Techniques accumulate: each addition helps (Fig. 12(c): the
		// techniques "almost contribute equally").
		if !(swa > fg && ds > swa && int8 > ds) {
			t.Errorf("sparsity %.0f%%: ablation not monotone: %.1f, %.1f, %.1f, %.1f",
				sp*100, fg, swa, ds, int8)
		}
	}
	// The gain of the full stack grows with sparsity.
	if get(0.8, "+int8")/get(0.8, "flexgen") <= get(0.4, "+int8")/get(0.4, "flexgen") {
		t.Error("ablation gain should grow with sparsity")
	}
	if !strings.Contains(r.Render(), "+int8") {
		t.Error("render incomplete")
	}
}
