package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/textfmt"
)

// Fig2cPoint is one step of the Fig. 2(c) series.
type Fig2cPoint struct {
	Step            int
	CachedSeconds   float64
	UncachedSeconds float64
	CachedGPUBytes  int64
	UncachedGPU     int64
}

// Fig2cResult reproduces Fig. 2(c): per-step execution time and GPU memory
// with and without KV caching.
type Fig2cResult struct {
	Model  model.Config
	Points []Fig2cPoint
}

// Fig2c decodes 128 steps of OPT-6.7B with KV caching (flat time, growing
// memory) and without (growing time, flat memory).
func Fig2c() (*Fig2cResult, error) {
	cfg := model.MustByName("opt-6.7b")
	prof := memsim.V100_32G()
	base := core.Config{
		Model: cfg, Profile: prof,
		Batch: 8, Input: 32, Output: 128,
		KVSparsity: 0, KVBits: 16,
	}

	cached := base
	cached.Scheduler = sched.MustByName("gpu-only")
	cachedRes, err := core.Run(context.Background(), cached)
	if err != nil {
		return nil, fmt.Errorf("fig2c cached: %w", err)
	}
	uncached := base
	uncached.Scheduler = sched.MustByName("no-cache")
	uncachedRes, err := core.Run(context.Background(), uncached)
	if err != nil {
		return nil, fmt.Errorf("fig2c uncached: %w", err)
	}

	res := &Fig2cResult{Model: cfg}
	for j := 0; j < base.Output; j++ {
		cm, _ := cachedRes.Memory.At(j)
		um, _ := uncachedRes.Memory.At(j)
		res.Points = append(res.Points, Fig2cPoint{
			Step:            j,
			CachedSeconds:   cachedRes.Steps[j].Seconds,
			UncachedSeconds: uncachedRes.Steps[j].Seconds,
			CachedGPUBytes:  cm.GPUBytes,
			UncachedGPU:     um.GPUBytes,
		})
	}
	return res, nil
}

// Render implements Renderer, printing every 16th step like the figure's
// tick marks.
func (r *Fig2cResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2(c) — %s decode: with vs without KV caching\n\n", r.Model.Name)
	tb := textfmt.NewTable("step", "time w/ cache", "time w/o cache", "GPU mem w/ cache", "GPU mem w/o cache")
	for _, p := range r.Points {
		if p.Step%16 != 0 && p.Step != len(r.Points)-1 {
			continue
		}
		tb.AddRow(fmt.Sprint(p.Step),
			textfmt.Seconds(p.CachedSeconds), textfmt.Seconds(p.UncachedSeconds),
			textfmt.Bytes(p.CachedGPUBytes), textfmt.Bytes(p.UncachedGPU))
	}
	b.WriteString(tb.String())
	return b.String()
}
