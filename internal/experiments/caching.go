package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attention"
	"repro/internal/cachepolicy"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/textfmt"
)

// CachingRow is one (capacity, policy) miss-rate measurement.
type CachingRow struct {
	Capacity int
	Policy   string
	Misses   int
	Requests int
	MissRate float64
}

// CachingResult quantifies the §III-B caching-policy discussion: Belady's
// clairvoyant optimum versus classical LRU/FIFO versus ALISA's
// window-plus-recent-score heuristic, replayed over a real SWA request
// trace at several GPU capacities.
type CachingResult struct {
	Steps int
	Rows  []CachingRow
}

// AblationCaching replays a 512-step SWA trace at three capacities spanning
// the regimes: below the attended set (misses are structural and policy-
// independent), just above it (the discriminative band), and ample.
func AblationCaching() (*CachingResult, error) {
	const steps = 512
	spec := oracle.SpecForModel(model.MustByName("opt-6.7b"), 77)
	spec.Layers = 1
	spec.HitterLifetime = 24
	tr := cachepolicy.TraceFromPolicy(spec, attention.MustByName("swa", 0.2, 1), steps)

	maxReq := 0
	for _, req := range tr.Requests {
		if len(req) > maxReq {
			maxReq = len(req)
		}
	}

	res := &CachingResult{Steps: steps}
	for _, capacity := range []int{maxReq / 2, maxReq + 8, maxReq + 64} {
		window := capacity / 3
		evictors := []cachepolicy.Evictor{
			cachepolicy.NewFIFO(),
			cachepolicy.NewLRU(),
			cachepolicy.NewAlisaHeuristic(window, 64),
			cachepolicy.NewBelady(tr),
		}
		for _, ev := range evictors {
			r := cachepolicy.Replay(tr, capacity, ev)
			res.Rows = append(res.Rows, CachingRow{
				Capacity: capacity,
				Policy:   r.Policy,
				Misses:   r.Misses,
				Requests: r.Requests,
				MissRate: r.MissRate(),
			})
		}
	}
	return res, nil
}

// Render implements Renderer.
func (r *CachingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — KV caching policies on a %d-step SWA request trace (§III-B)\n", r.Steps)
	b.WriteString("belady is the clairvoyant lower bound the paper rules out as impractical\n\n")
	tb := textfmt.NewTable("GPU capacity (tokens)", "policy", "misses", "requests", "miss rate")
	for _, row := range r.Rows {
		tb.AddRow(fmt.Sprint(row.Capacity), row.Policy,
			fmt.Sprint(row.Misses), fmt.Sprint(row.Requests),
			fmt.Sprintf("%.1f%%", row.MissRate*100))
	}
	b.WriteString(tb.String())
	b.WriteString("\nSWA's request stream is sticky (the selected set drifts slowly), so a\n")
	b.WriteString("protected local window plus any recency signal is near-oracle — the\n")
	b.WriteString("empirical case for the paper's cheap heuristic over Belady.\n")
	return b.String()
}
