// Package events defines the streaming observer contract shared by the
// lockstep engine (internal/core) and the serving simulator
// (internal/serve). An Observer receives progress events as a run
// unfolds — decode steps, request admissions, preemptions, and
// completions — instead of only the final Result, so CLIs can show live
// progress and harnesses can collect per-cell timing without re-parsing
// rendered reports.
//
// All times are simulated seconds on the run's clock, not wall time.
// Events are emitted synchronously from the single-goroutine event loops,
// in deterministic order: an Observer sees exactly the sequence the
// run's event log records, and a nil observer costs nothing. An observer
// shared across concurrent runs (a parallel sweep) can be wrapped with
// Synchronized to serialize delivery instead of locking internally.
package events

import "sync"

// Step reports one completed decode step (lockstep engine) or one
// continuous-batching decode iteration (serving simulator).
type Step struct {
	// Step is the 0-based decode-step index within the current wave
	// (lockstep engine) or the 0-based iteration index (serving loop).
	Step int
	// Batch is the number of sequences the step advanced.
	Batch int
	// Clock is the simulated time at the end of the step.
	Clock float64
	// Seconds is the simulated duration of the step itself.
	Seconds float64
}

// Admission reports a request joining the decode batch after prefill.
type Admission struct {
	Request int // request ID
	// Clock is the simulated admission-complete time (end of prefill).
	Clock float64
	// Wait is the time the request spent queued since its arrival,
	// re-prefill work after preemption included.
	Wait          float64
	Input, Output int
	// Batch is the decode-batch occupancy after the admission.
	Batch int
	// PrefixProbed reports whether the serving loop's shared prefix cache
	// probed this request — true only when the cache is on and the
	// request carries token IDs. The two fields below are zero otherwise.
	PrefixProbed bool
	// CachedTokens is how many leading prompt tokens were served from the
	// shared prefix cache instead of being prefilled.
	CachedTokens int
	// SharedBytes is the cache's simulated resident bytes right after the
	// admission (the request's own prefix grafted in).
	SharedBytes int64
}

// FirstToken reports a request producing its first output token — the
// end of prefill after its (final) admission. A preempted request emits
// a new FirstToken after each readmission; the last one is the TTFT the
// metrics report.
type FirstToken struct {
	Request int
	Clock   float64
	// TTFT is arrival → this first token, queueing included.
	TTFT float64
}

// Token reports one generated output token of one request — the
// finest-grained lifecycle event, emitted once per active sequence per
// decode iteration. Streaming clients subscribe to it to model
// token-by-token delivery; everyone else leaves the callback nil, which
// costs nothing.
type Token struct {
	Request int
	Clock   float64
	// Index is the 1-based generated-token index within the request
	// (restarts from 1 after a preemption, like the generation itself).
	Index int
}

// Preemption reports a sequence losing its KV under memory pressure; the
// request restarts from its prompt on readmission.
type Preemption struct {
	Request int
	Clock   float64
	// Generated is how many tokens the sequence had decoded when its KV
	// was dropped — all of them are regenerated after readmission.
	Generated int
}

// Completion reports a request finishing its final decode step.
type Completion struct {
	Request int
	Clock   float64
	// TTFT and TPOT are the request's final latency metrics: arrival to
	// first token, and mean seconds per output token after the first.
	TTFT, TPOT float64
	// E2E is the request's end-to-end latency: arrival → completion.
	E2E float64
	// Output is the request's generated-token count — the tokens a
	// windowed goodput metric credits to this completion.
	Output int
	// SLOMet reports whether the request met both serving SLOs — the
	// goodput criterion, computed by the serving core with exactly the
	// predicate the final metrics use.
	SLOMet bool
	// Preemptions is how many times the request was preempted and
	// restarted before completing.
	Preemptions int
}

// Observer receives streaming run events. Implementations must be fast:
// callbacks run inline on the simulation loop. They need not be
// goroutine-safe — each run delivers its events from one goroutine — but
// one Observer attached to several concurrent runs must synchronise
// internally.
type Observer interface {
	OnStep(Step)
	OnAdmission(Admission)
	OnFirstToken(FirstToken)
	OnToken(Token)
	OnPreemption(Preemption)
	OnCompletion(Completion)
}

// Funcs adapts a set of optional callbacks to the Observer interface;
// nil fields ignore their events.
type Funcs struct {
	Step       func(Step)
	Admission  func(Admission)
	FirstToken func(FirstToken)
	Token      func(Token)
	Preemption func(Preemption)
	Completion func(Completion)
}

// OnStep implements Observer.
func (f Funcs) OnStep(e Step) {
	if f.Step != nil {
		f.Step(e)
	}
}

// OnAdmission implements Observer.
func (f Funcs) OnAdmission(e Admission) {
	if f.Admission != nil {
		f.Admission(e)
	}
}

// OnFirstToken implements Observer.
func (f Funcs) OnFirstToken(e FirstToken) {
	if f.FirstToken != nil {
		f.FirstToken(e)
	}
}

// OnToken implements Observer.
func (f Funcs) OnToken(e Token) {
	if f.Token != nil {
		f.Token(e)
	}
}

// OnPreemption implements Observer.
func (f Funcs) OnPreemption(e Preemption) {
	if f.Preemption != nil {
		f.Preemption(e)
	}
}

// OnCompletion implements Observer.
func (f Funcs) OnCompletion(e Completion) {
	if f.Completion != nil {
		f.Completion(e)
	}
}

// Synchronized wraps obs so callbacks arriving from several goroutines —
// an observer shared across the concurrent cells of a parallel sweep —
// are serialized through one mutex: each callback runs exclusively, so
// the wrapped observer needs no internal locking. Events from different
// cells interleave in completion order (cells are independent runs), but
// every individual event is delivered exactly once and atomically.
// A nil observer wraps to nil.
func Synchronized(obs Observer) Observer {
	if obs == nil {
		return nil
	}
	return &synced{obs: obs}
}

type synced struct {
	mu  sync.Mutex
	obs Observer
}

func (s *synced) OnStep(e Step) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs.OnStep(e)
}

func (s *synced) OnAdmission(e Admission) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs.OnAdmission(e)
}

func (s *synced) OnFirstToken(e FirstToken) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs.OnFirstToken(e)
}

func (s *synced) OnToken(e Token) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs.OnToken(e)
}

func (s *synced) OnPreemption(e Preemption) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs.OnPreemption(e)
}

func (s *synced) OnCompletion(e Completion) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs.OnCompletion(e)
}

// Multi fans every event out to each observer in order.
func Multi(obs ...Observer) Observer {
	flat := make(multi, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			flat = append(flat, o)
		}
	}
	return flat
}

type multi []Observer

func (m multi) OnStep(e Step) {
	for _, o := range m {
		o.OnStep(e)
	}
}

func (m multi) OnAdmission(e Admission) {
	for _, o := range m {
		o.OnAdmission(e)
	}
}

func (m multi) OnFirstToken(e FirstToken) {
	for _, o := range m {
		o.OnFirstToken(e)
	}
}

func (m multi) OnToken(e Token) {
	for _, o := range m {
		o.OnToken(e)
	}
}

func (m multi) OnPreemption(e Preemption) {
	for _, o := range m {
		o.OnPreemption(e)
	}
}

func (m multi) OnCompletion(e Completion) {
	for _, o := range m {
		o.OnCompletion(e)
	}
}
