package events

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// recorder appends a tagged string per event so tests can compare full
// delivery sequences — kinds, payloads, and order — as one slice.
type recorder struct {
	tag    string
	events []string
}

func (r *recorder) OnStep(e Step) { r.events = append(r.events, fmt.Sprintf("%s:step:%+v", r.tag, e)) }
func (r *recorder) OnAdmission(e Admission) {
	r.events = append(r.events, fmt.Sprintf("%s:admit:%+v", r.tag, e))
}
func (r *recorder) OnFirstToken(e FirstToken) {
	r.events = append(r.events, fmt.Sprintf("%s:first:%+v", r.tag, e))
}
func (r *recorder) OnToken(e Token) {
	r.events = append(r.events, fmt.Sprintf("%s:token:%+v", r.tag, e))
}
func (r *recorder) OnPreemption(e Preemption) {
	r.events = append(r.events, fmt.Sprintf("%s:preempt:%+v", r.tag, e))
}
func (r *recorder) OnCompletion(e Completion) {
	r.events = append(r.events, fmt.Sprintf("%s:finish:%+v", r.tag, e))
}

// emitAll drives one of each event kind through obs, in lifecycle order.
func emitAll(obs Observer) {
	obs.OnAdmission(Admission{Request: 7, Clock: 0.5, Input: 32, Output: 8, Batch: 1})
	obs.OnFirstToken(FirstToken{Request: 7, Clock: 0.5, TTFT: 0.5})
	obs.OnToken(Token{Request: 7, Clock: 0.6, Index: 1})
	obs.OnStep(Step{Step: 0, Batch: 1, Clock: 0.6, Seconds: 0.1})
	obs.OnPreemption(Preemption{Request: 7, Clock: 0.7, Generated: 1})
	obs.OnCompletion(Completion{Request: 7, Clock: 1.2, TTFT: 0.5, TPOT: 0.1, E2E: 1.2, Output: 8, SLOMet: true})
}

// TestMultiFanOutOrder pins the fan-out contract the session layer
// relies on: every observer sees every event, in Subscribe order, with
// the engine observer (first argument) always delivered to first.
func TestMultiFanOutOrder(t *testing.T) {
	var order []string
	tap := func(tag string) Observer {
		return Funcs{
			Step:       func(Step) { order = append(order, tag+":step") },
			Admission:  func(Admission) { order = append(order, tag+":admit") },
			FirstToken: func(FirstToken) { order = append(order, tag+":first") },
			Token:      func(Token) { order = append(order, tag+":token") },
			Preemption: func(Preemption) { order = append(order, tag+":preempt") },
			Completion: func(Completion) { order = append(order, tag+":finish") },
		}
	}
	m := Multi(tap("engine"), tap("sub0"), tap("sub1"))
	emitAll(m)

	want := []string{}
	for _, kind := range []string{"admit", "first", "token", "step", "preempt", "finish"} {
		for _, tag := range []string{"engine", "sub0", "sub1"} {
			want = append(want, tag+":"+kind)
		}
	}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("fan-out order:\n got %v\nwant %v", order, want)
	}
}

// TestMultiSkipsNils checks Multi drops nil observers at construction
// instead of panicking at delivery time.
func TestMultiSkipsNils(t *testing.T) {
	rec := &recorder{tag: "only"}
	m := Multi(nil, rec, nil)
	emitAll(m)
	if len(rec.events) != 6 {
		t.Fatalf("got %d events, want 6: %v", len(rec.events), rec.events)
	}
	empty := Multi(nil, nil)
	emitAll(empty) // must not panic
}

// TestMultiPayloadFidelity checks the fan-out forwards payloads
// untouched: two independent recorders see byte-identical sequences.
func TestMultiPayloadFidelity(t *testing.T) {
	a, b := &recorder{tag: "x"}, &recorder{tag: "x"}
	emitAll(Multi(a, b))
	if !reflect.DeepEqual(a.events, b.events) {
		t.Fatalf("observers diverged:\n a %v\n b %v", a.events, b.events)
	}
}

// TestFuncsNilCallbacks checks a zero Funcs ignores every event — the
// "leave the callback nil, it costs nothing" contract.
func TestFuncsNilCallbacks(t *testing.T) {
	emitAll(Funcs{}) // must not panic
}

// TestSynchronizedNil pins the nil-wraps-to-nil rule that keeps the
// nil-observer fast path alive through wrapping.
func TestSynchronizedNil(t *testing.T) {
	if got := Synchronized(nil); got != nil {
		t.Fatalf("Synchronized(nil) = %v, want nil", got)
	}
}

// TestSynchronizedConcurrentDelivery hammers one Synchronized-wrapped
// observer from many goroutines — the parallel-sweep sharing pattern —
// and checks under -race that every event is delivered exactly once.
// The wrapped recorder has no internal locking; only Synchronized's
// mutex keeps the slice appends safe.
func TestSynchronizedConcurrentDelivery(t *testing.T) {
	rec := &recorder{tag: "s"}
	obs := Synchronized(rec)
	const goroutines, rounds = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				obs.OnCompletion(Completion{Request: g*rounds + i, Output: 1})
			}
		}(g)
	}
	wg.Wait()
	if len(rec.events) != goroutines*rounds {
		t.Fatalf("delivered %d events, want %d", len(rec.events), goroutines*rounds)
	}
	seen := make(map[string]bool, len(rec.events))
	for _, e := range rec.events {
		if seen[e] {
			t.Fatalf("event delivered twice: %s", e)
		}
		seen[e] = true
	}
}

// TestSynchronizedForwardsAllKinds checks the wrapper forwards each of
// the six callbacks (not just completions) with payloads intact.
func TestSynchronizedForwardsAllKinds(t *testing.T) {
	plain, wrapped := &recorder{tag: "r"}, &recorder{tag: "r"}
	emitAll(plain)
	emitAll(Synchronized(wrapped))
	if !reflect.DeepEqual(plain.events, wrapped.events) {
		t.Fatalf("Synchronized altered delivery:\n plain   %v\n wrapped %v", plain.events, wrapped.events)
	}
}
