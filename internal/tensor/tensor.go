// Package tensor provides the dense numeric substrate used by the runnable
// transformer model and the attention policies: row-major float32 matrices
// with the handful of operations LLM inference needs (matmul, softmax,
// gather, concat, top-k). Accumulation is performed in float64 so results
// are stable enough for cross-checking cached against uncached decoding.
//
// Shape mismatches are programmer errors and panic, mirroring the behaviour
// of the Go runtime on out-of-range slice indexing.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float32 values.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix. The slice is used directly,
// not copied; len(data) must equal rows*cols.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 {
	m.checkIndex(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float32) {
	m.checkIndex(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) checkIndex(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns the i-th row as a slice sharing the matrix's backing array.
func (m *Matrix) Row(i int) []float32 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Equal reports whether m and n have identical shape and element-wise
// absolute difference at most tol.
func (m *Matrix) Equal(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(float64(m.Data[i])-float64(n.Data[i])) > tol {
			return false
		}
	}
	return true
}

// MatMul returns a·b. a is m×k, b is k×n; the result is m×n.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := float64(arow[k])
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += float32(av * float64(brow[j]))
			}
		}
	}
	return out
}

// MatMulT returns a·bᵀ. a is m×k, b is n×k; the result is m×n. This is the
// QKᵀ shape used by attention, avoiding an explicit transpose.
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var sum float64
			for k := range arow {
				sum += float64(arow[k]) * float64(brow[k])
			}
			orow[j] = float32(sum)
		}
	}
	return out
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Matrix) Scale(s float32) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Add accumulates n into m element-wise in place and returns m.
func (m *Matrix) Add(n *Matrix) *Matrix {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic(fmt.Sprintf("tensor: add shape mismatch %dx%d + %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	for i := range m.Data {
		m.Data[i] += n.Data[i]
	}
	return m
}

// SoftmaxRows applies a numerically stable softmax to each row in place and
// returns m. Rows that are entirely -Inf become all zeros.
func (m *Matrix) SoftmaxRows() *Matrix {
	for i := 0; i < m.Rows; i++ {
		SoftmaxInPlace(m.Row(i))
	}
	return m
}

// SoftmaxInPlace applies a numerically stable softmax to v. A slice of all
// -Inf values becomes all zeros rather than NaN.
func SoftmaxInPlace(v []float32) {
	if len(v) == 0 {
		return
	}
	maxv := math.Inf(-1)
	for _, x := range v {
		if float64(x) > maxv {
			maxv = float64(x)
		}
	}
	if math.IsInf(maxv, -1) {
		for i := range v {
			v[i] = 0
		}
		return
	}
	var sum float64
	for i, x := range v {
		e := math.Exp(float64(x) - maxv)
		v[i] = float32(e)
		sum += e
	}
	if sum == 0 {
		return
	}
	inv := 1 / sum
	for i := range v {
		v[i] = float32(float64(v[i]) * inv)
	}
}

// GatherRows returns a new matrix whose i-th row is m's row idx[i]. Indices
// may repeat; each must be in range. This is the "pack sparse KV tensors
// into a dense one" gather from the paper's Algorithm 1.
func GatherRows(m *Matrix, idx []int) *Matrix {
	out := New(len(idx), m.Cols)
	for i, r := range idx {
		if r < 0 || r >= m.Rows {
			panic(fmt.Sprintf("tensor: gather index %d out of range %d", r, m.Rows))
		}
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// ConcatRows stacks a on top of b; both must have the same column count.
func ConcatRows(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: concat col mismatch %d vs %d", a.Cols, b.Cols))
	}
	out := New(a.Rows+b.Rows, a.Cols)
	copy(out.Data[:len(a.Data)], a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// AppendRow appends row v (len == m.Cols) to m, returning a matrix that may
// share m's backing array when capacity allows.
func (m *Matrix) AppendRow(v []float32) *Matrix {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: append row length %d != cols %d", len(v), m.Cols))
	}
	return &Matrix{Rows: m.Rows + 1, Cols: m.Cols, Data: append(m.Data, v...)}
}

// SliceRows returns the sub-matrix of rows [from, to) sharing m's backing
// array.
func (m *Matrix) SliceRows(from, to int) *Matrix {
	if from < 0 || to > m.Rows || from > to {
		panic(fmt.Sprintf("tensor: row slice [%d,%d) out of range %d", from, to, m.Rows))
	}
	return &Matrix{Rows: to - from, Cols: m.Cols, Data: m.Data[from*m.Cols : to*m.Cols]}
}

// Dot returns the inner product of a and b, accumulated in float64.
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		sum += float64(a[i]) * float64(b[i])
	}
	return sum
}

// Sum returns the float64 sum of v.
func Sum(v []float32) float64 {
	var s float64
	for _, x := range v {
		s += float64(x)
	}
	return s
}

// ArgTopK returns the indices of the k largest values of v in descending
// value order. Ties break toward the lower index, matching a stable argmax
// over repeated scans. k is clamped to len(v).
func ArgTopK(v []float32, k int) []int {
	if k <= 0 {
		return nil
	}
	if k > len(v) {
		k = len(v)
	}
	// Selection by repeated max keeps deterministic tie-breaking and is
	// O(k·n); k is a handful of tokens per step, so this beats a heap in
	// practice for the sizes the policies use.
	idx := make([]int, 0, k)
	taken := make([]bool, len(v))
	for range make([]struct{}, k) {
		best := -1
		var bestV float32
		for i, x := range v {
			if taken[i] {
				continue
			}
			if best == -1 || x > bestV {
				best, bestV = i, x
			}
		}
		taken[best] = true
		idx = append(idx, best)
	}
	return idx
}

// LayerNorm normalises v in place to zero mean and unit variance, then
// applies elementwise gain g and bias b when non-nil.
func LayerNorm(v []float32, g, b []float32, eps float64) {
	if len(v) == 0 {
		return
	}
	var mean float64
	for _, x := range v {
		mean += float64(x)
	}
	mean /= float64(len(v))
	var varsum float64
	for _, x := range v {
		d := float64(x) - mean
		varsum += d * d
	}
	inv := 1 / math.Sqrt(varsum/float64(len(v))+eps)
	for i := range v {
		n := (float64(v[i]) - mean) * inv
		if g != nil {
			n *= float64(g[i])
		}
		if b != nil {
			n += float64(b[i])
		}
		v[i] = float32(n)
	}
}
