// Package tensor provides the dense numeric substrate used by the runnable
// transformer model and the attention policies: row-major float32 matrices
// with the handful of operations LLM inference needs (matmul, softmax,
// gather, concat, top-k). Accumulation is performed in float64 so results
// are stable enough for cross-checking cached against uncached decoding.
//
// Shape mismatches are programmer errors and panic, mirroring the behaviour
// of the Go runtime on out-of-range slice indexing.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float32 values.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix. The slice is used directly,
// not copied; len(data) must equal rows*cols.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 {
	m.checkIndex(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float32) {
	m.checkIndex(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) checkIndex(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns the i-th row as a slice sharing the matrix's backing array.
func (m *Matrix) Row(i int) []float32 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Equal reports whether m and n have identical shape and element-wise
// absolute difference at most tol.
func (m *Matrix) Equal(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(float64(m.Data[i])-float64(n.Data[i])) > tol {
			return false
		}
	}
	return true
}

// MatMul returns a·b. a is m×k, b is k×n; the result is m×n.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := float64(arow[k])
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += float32(av * float64(brow[j]))
			}
		}
	}
	return out
}

// MatMulT returns a·bᵀ. a is m×k, b is n×k; the result is m×n. This is the
// QKᵀ shape used by attention, avoiding an explicit transpose.
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var sum float64
			for k := range arow {
				sum += float64(arow[k]) * float64(brow[k])
			}
			orow[j] = float32(sum)
		}
	}
	return out
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Matrix) Scale(s float32) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Add accumulates n into m element-wise in place and returns m.
func (m *Matrix) Add(n *Matrix) *Matrix {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic(fmt.Sprintf("tensor: add shape mismatch %dx%d + %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	for i := range m.Data {
		m.Data[i] += n.Data[i]
	}
	return m
}

// SoftmaxRows applies a numerically stable softmax to each row in place and
// returns m. Rows that are entirely -Inf become all zeros.
func (m *Matrix) SoftmaxRows() *Matrix {
	for i := 0; i < m.Rows; i++ {
		SoftmaxInPlace(m.Row(i))
	}
	return m
}

// SoftmaxInPlace applies a numerically stable softmax to v. A slice of all
// -Inf values becomes all zeros rather than NaN.
func SoftmaxInPlace(v []float32) {
	if len(v) == 0 {
		return
	}
	maxv := math.Inf(-1)
	for _, x := range v {
		if float64(x) > maxv {
			maxv = float64(x)
		}
	}
	if math.IsInf(maxv, -1) {
		for i := range v {
			v[i] = 0
		}
		return
	}
	var sum float64
	for i, x := range v {
		e := math.Exp(float64(x) - maxv)
		v[i] = float32(e)
		sum += e
	}
	if sum == 0 {
		return
	}
	inv := 1 / sum
	for i := range v {
		v[i] = float32(float64(v[i]) * inv)
	}
}

// GatherRows returns a new matrix whose i-th row is m's row idx[i]. Indices
// may repeat; each must be in range. This is the "pack sparse KV tensors
// into a dense one" gather from the paper's Algorithm 1.
func GatherRows(m *Matrix, idx []int) *Matrix {
	out := New(len(idx), m.Cols)
	for i, r := range idx {
		if r < 0 || r >= m.Rows {
			panic(fmt.Sprintf("tensor: gather index %d out of range %d", r, m.Rows))
		}
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// ConcatRows stacks a on top of b; both must have the same column count.
func ConcatRows(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: concat col mismatch %d vs %d", a.Cols, b.Cols))
	}
	out := New(a.Rows+b.Rows, a.Cols)
	copy(out.Data[:len(a.Data)], a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// AppendRow appends row v (len == m.Cols) to m, returning a matrix that may
// share m's backing array when capacity allows.
func (m *Matrix) AppendRow(v []float32) *Matrix {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: append row length %d != cols %d", len(v), m.Cols))
	}
	return &Matrix{Rows: m.Rows + 1, Cols: m.Cols, Data: append(m.Data, v...)}
}

// SliceRows returns the sub-matrix of rows [from, to) sharing m's backing
// array.
func (m *Matrix) SliceRows(from, to int) *Matrix {
	if from < 0 || to > m.Rows || from > to {
		panic(fmt.Sprintf("tensor: row slice [%d,%d) out of range %d", from, to, m.Rows))
	}
	return &Matrix{Rows: to - from, Cols: m.Cols, Data: m.Data[from*m.Cols : to*m.Cols]}
}

// Dot returns the inner product of a and b, accumulated in float64.
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		sum += float64(a[i]) * float64(b[i])
	}
	return sum
}

// Sum returns the float64 sum of v.
func Sum(v []float32) float64 {
	var s float64
	for _, x := range v {
		s += float64(x)
	}
	return s
}

// ArgTopK returns the indices of the k largest values of v in descending
// value order. Ties break toward the lower index, matching a stable argmax
// over repeated scans. k is clamped to len(v).
//
// This is the allocating convenience wrapper; hot paths should hold a
// TopKScratch and call its ArgTopK to amortise the index permutation.
func ArgTopK(v []float32, k int) []int {
	if k <= 0 {
		return nil
	}
	var s TopKScratch
	return s.ArgTopK(v, k, nil)
}

// TopKScratch holds the reusable index permutation behind ArgTopK so
// repeated selections over same-sized inputs allocate nothing after the
// first call. The zero value is ready to use. Not safe for concurrent use.
type TopKScratch struct {
	perm []int
}

// ArgTopK selects the indices of the k largest values of v, written into
// dst[:0] (grown as needed) and returned in descending value order with
// ties breaking toward the lower index — the same total order as the
// package-level ArgTopK. It runs an O(n) deterministic quickselect
// (median-of-three pivots) followed by an O(k log k) sort of the winners,
// replacing the previous O(k·n) repeated-max scan. k is clamped to len(v).
func (s *TopKScratch) ArgTopK(v []float32, k int, dst []int) []int {
	if k > len(v) {
		k = len(v)
	}
	if k <= 0 {
		return dst[:0]
	}
	if cap(s.perm) < len(v) {
		// Grow geometrically: selections over steadily lengthening inputs
		// (one new token per decode step) must not reallocate every call.
		s.perm = make([]int, max(len(v), 2*cap(s.perm)))
	}
	perm := s.perm[:len(v)]
	for i := range perm {
		perm[i] = i
	}
	topKSelect(v, perm, k)
	topKSort(v, perm[:k])
	return append(dst[:0], perm[:k]...)
}

// topKBefore is the strict total order of the selection: larger value
// first, equal values ordered by ascending index. Because the index breaks
// every tie, no two distinct perm entries compare equal, which keeps the
// Hoare partition below well-defined.
func topKBefore(v []float32, a, b int) bool {
	if v[a] != v[b] {
		return v[a] > v[b]
	}
	return a < b
}

// topKPartition runs a Hoare partition on perm[lo:hi] (hi−lo > 2) around
// a median-of-three pivot (which guards against the already-sorted score
// vectors the policies produce). On return, entries in perm[lo:j+1]
// precede the pivot band and entries in perm[i:hi] follow it, with
// j+1 ≤ i; any entries in perm[j+1:i] are settled in their final
// positions under topKBefore.
func topKPartition(v []float32, perm []int, lo, hi int) (i, j int) {
	mid := lo + (hi-lo)/2
	if topKBefore(v, perm[mid], perm[lo]) {
		perm[mid], perm[lo] = perm[lo], perm[mid]
	}
	if topKBefore(v, perm[hi-1], perm[lo]) {
		perm[hi-1], perm[lo] = perm[lo], perm[hi-1]
	}
	if topKBefore(v, perm[hi-1], perm[mid]) {
		perm[hi-1], perm[mid] = perm[mid], perm[hi-1]
	}
	pivot := perm[mid]
	i, j = lo, hi-1
	for i <= j {
		for topKBefore(v, perm[i], pivot) {
			i++
		}
		for topKBefore(v, pivot, perm[j]) {
			j--
		}
		if i <= j {
			perm[i], perm[j] = perm[j], perm[i]
			i++
			j--
		}
	}
	return i, j
}

// topKSelect partially orders perm so that perm[:k] holds the first k
// entries under topKBefore, in arbitrary order. Average O(len(perm)).
func topKSelect(v []float32, perm []int, k int) {
	lo, hi := 0, len(perm)
	for hi-lo > 12 {
		i, j := topKPartition(v, perm, lo, hi)
		switch {
		case k <= j+1:
			hi = j + 1
		case k >= i:
			lo = i
		default:
			return // boundary falls inside the settled [j+1, i) band
		}
	}
	topKInsertionSort(v, perm[lo:hi])
}

// topKSort fully orders perm under topKBefore (quicksort, insertion base).
func topKSort(v []float32, perm []int) {
	for len(perm) > 12 {
		i, j := topKPartition(v, perm, 0, len(perm))
		// Recurse into the smaller side, loop on the larger.
		if j+1 < len(perm)-i {
			topKSort(v, perm[:j+1])
			perm = perm[i:]
		} else {
			topKSort(v, perm[i:])
			perm = perm[:j+1]
		}
	}
	topKInsertionSort(v, perm)
}

func topKInsertionSort(v []float32, perm []int) {
	for i := 1; i < len(perm); i++ {
		for j := i; j > 0 && topKBefore(v, perm[j], perm[j-1]); j-- {
			perm[j], perm[j-1] = perm[j-1], perm[j]
		}
	}
}

// LayerNorm normalises v in place to zero mean and unit variance, then
// applies elementwise gain g and bias b when non-nil.
func LayerNorm(v []float32, g, b []float32, eps float64) {
	if len(v) == 0 {
		return
	}
	var mean float64
	for _, x := range v {
		mean += float64(x)
	}
	mean /= float64(len(v))
	var varsum float64
	for _, x := range v {
		d := float64(x) - mean
		varsum += d * d
	}
	inv := 1 / math.Sqrt(varsum/float64(len(v))+eps)
	for i := range v {
		n := (float64(v[i]) - mean) * inv
		if g != nil {
			n *= float64(g[i])
		}
		if b != nil {
			n += float64(b[i])
		}
		v[i] = float32(n)
	}
}
