package tensor

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

// refArgTopK is the sort-based reference for ArgTopK's contract: indices
// of the k largest values, descending by value, ties toward the lower
// index.
func refArgTopK(v []float32, k int) []int {
	if k > len(v) {
		k = len(v)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if v[idx[a]] != v[idx[b]] {
			return v[idx[a]] > v[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// decodeFloats turns fuzz bytes into a finite float32 vector. NaNs would
// make the selection order itself ill-defined (x != x), so they map to 0;
// infinities are kept — the quickselect must order them correctly.
func decodeFloats(data []byte) []float32 {
	n := len(data) / 4
	v := make([]float32, n)
	for i := 0; i < n; i++ {
		f := math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:]))
		if f != f {
			f = 0
		}
		v[i] = f
	}
	return v
}

// FuzzArgTopK cross-checks the deterministic quickselect against the
// sort-based reference on arbitrary vectors and budgets.
func FuzzArgTopK(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, 2)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, 1)         // ties
	f.Add([]byte{0, 0, 128, 127, 0, 0, 128, 255}, 2) // +Inf, -Inf
	f.Add([]byte{}, 3)
	f.Fuzz(func(t *testing.T, data []byte, k int) {
		if len(data) > 1<<16 {
			t.Skip("cap input size")
		}
		v := decodeFloats(data)
		if k < -1 {
			k = -k
		}
		got := ArgTopK(v, k)
		want := refArgTopK(v, k)
		if len(got) != len(want) {
			t.Fatalf("len(v)=%d k=%d: got %d indices, want %d", len(v), k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("len(v)=%d k=%d: index %d: got %d (%v), want %d (%v)",
					len(v), k, i, got[i], v[got[i]], want[i], v[want[i]])
			}
		}
		// The scratch path must agree with the allocating wrapper when
		// reusing state across calls.
		var s TopKScratch
		var dst []int
		for round := 0; round < 2; round++ {
			dst = s.ArgTopK(v, k, dst)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("scratch round %d diverged at %d: got %d want %d", round, i, dst[i], want[i])
				}
			}
		}
	})
}
