package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zeroed: %v", i, v)
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float32{58, 64, 139, 154})
	if !got.Equal(want, 1e-6) {
		t.Fatalf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5, 7)
	b := randomMatrix(rng, 4, 7)
	bt := New(7, 4)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	if got, want := MatMulT(a, b), MatMul(a, bt); !got.Equal(want, 1e-5) {
		t.Fatalf("MatMulT disagrees with MatMul on transpose")
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 6, 9)
	m.SoftmaxRows()
	for i := 0; i < m.Rows; i++ {
		if s := Sum(m.Row(i)); math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v, want 1", i, s)
		}
		for j, v := range m.Row(i) {
			if v < 0 {
				t.Fatalf("row %d col %d negative: %v", i, j, v)
			}
		}
	}
}

func TestSoftmaxAllNegInfBecomesZeros(t *testing.T) {
	inf := float32(math.Inf(-1))
	v := []float32{inf, inf, inf}
	SoftmaxInPlace(v)
	for i, x := range v {
		if x != 0 {
			t.Fatalf("element %d = %v, want 0", i, x)
		}
	}
}

func TestSoftmaxLargeValuesStable(t *testing.T) {
	v := []float32{1e30, 1e30, -1e30}
	SoftmaxInPlace(v)
	if math.IsNaN(float64(v[0])) || math.Abs(float64(v[0])-0.5) > 1e-5 {
		t.Fatalf("softmax unstable: %v", v)
	}
}

func TestGatherRows(t *testing.T) {
	m := FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	g := GatherRows(m, []int{2, 0, 2})
	want := FromSlice(3, 2, []float32{5, 6, 1, 2, 5, 6})
	if !g.Equal(want, 0) {
		t.Fatalf("GatherRows = %v, want %v", g.Data, want.Data)
	}
}

func TestGatherOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range gather")
		}
	}()
	GatherRows(New(2, 2), []int{5})
}

func TestConcatRows(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := FromSlice(2, 2, []float32{3, 4, 5, 6})
	c := ConcatRows(a, b)
	want := FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	if !c.Equal(want, 0) {
		t.Fatalf("ConcatRows = %v, want %v", c.Data, want.Data)
	}
}

func TestAppendRowAndSliceRows(t *testing.T) {
	m := New(0, 3)
	m = m.AppendRow([]float32{1, 2, 3})
	m = m.AppendRow([]float32{4, 5, 6})
	if m.Rows != 2 || m.At(1, 1) != 5 {
		t.Fatalf("AppendRow produced %v", m)
	}
	s := m.SliceRows(1, 2)
	if s.Rows != 1 || s.At(0, 0) != 4 {
		t.Fatalf("SliceRows produced %v", s)
	}
}

func TestArgTopK(t *testing.T) {
	v := []float32{0.1, 0.9, 0.3, 0.9, 0.2}
	got := ArgTopK(v, 3)
	// Ties break to the lower index: 1 before 3.
	want := []int{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgTopK = %v, want %v", got, want)
		}
	}
	if len(ArgTopK(v, 0)) != 0 {
		t.Fatal("ArgTopK(0) should be empty")
	}
	if len(ArgTopK(v, 99)) != len(v) {
		t.Fatal("ArgTopK should clamp k to len(v)")
	}
}

func TestLayerNormZeroMeanUnitVar(t *testing.T) {
	v := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	LayerNorm(v, nil, nil, 1e-5)
	var mean, varsum float64
	for _, x := range v {
		mean += float64(x)
	}
	mean /= float64(len(v))
	for _, x := range v {
		d := float64(x) - mean
		varsum += d * d
	}
	if math.Abs(mean) > 1e-5 {
		t.Fatalf("mean after LayerNorm = %v", mean)
	}
	if math.Abs(varsum/float64(len(v))-1) > 1e-3 {
		t.Fatalf("variance after LayerNorm = %v", varsum/float64(len(v)))
	}
}

func TestLayerNormGainBias(t *testing.T) {
	v := []float32{1, 2, 3, 4}
	g := []float32{2, 2, 2, 2}
	b := []float32{1, 1, 1, 1}
	u := append([]float32(nil), v...)
	LayerNorm(u, nil, nil, 1e-5)
	LayerNorm(v, g, b, 1e-5)
	for i := range v {
		want := u[i]*2 + 1
		if math.Abs(float64(v[i]-want)) > 1e-4 {
			t.Fatalf("gain/bias mismatch at %d: %v vs %v", i, v[i], want)
		}
	}
}

// Property: gather with the identity permutation is the identity.
func TestGatherIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(8)
		m := randomMatrix(rng, rows, cols)
		idx := make([]int, rows)
		for i := range idx {
			idx[i] = i
		}
		return GatherRows(m, idx).Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is a probability distribution for finite input.
func TestSoftmaxDistributionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := make([]float32, 1+rng.Intn(32))
		for i := range v {
			v[i] = float32(rng.NormFloat64() * 10)
		}
		SoftmaxInPlace(v)
		var s float64
		for _, x := range v {
			if x < 0 || math.IsNaN(float64(x)) {
				return false
			}
			s += float64(x)
		}
		return math.Abs(s-1) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMul distributes over ConcatRows on the left operand.
func TestMatMulConcatProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(5)
		n := 1 + rng.Intn(5)
		a := randomMatrix(rng, 1+rng.Intn(4), k)
		b := randomMatrix(rng, 1+rng.Intn(4), k)
		w := randomMatrix(rng, k, n)
		joint := MatMul(ConcatRows(a, b), w)
		split := ConcatRows(MatMul(a, w), MatMul(b, w))
		return joint.Equal(split, 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func TestScaleAndAdd(t *testing.T) {
	m := FromSlice(1, 3, []float32{1, 2, 3})
	m.Scale(2)
	want := FromSlice(1, 3, []float32{2, 4, 6})
	if !m.Equal(want, 0) {
		t.Fatalf("Scale = %v", m.Data)
	}
	m.Add(FromSlice(1, 3, []float32{1, 1, 1}))
	want = FromSlice(1, 3, []float32{3, 5, 7})
	if !m.Equal(want, 0) {
		t.Fatalf("Add = %v", m.Data)
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 2).Add(New(2, 1))
}

func TestCloneIndependent(t *testing.T) {
	m := FromSlice(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares backing storage")
	}
	if m.Equal(c, 0) {
		t.Fatal("Equal should detect the difference")
	}
	if m.Equal(New(2, 1), 0) {
		t.Fatal("Equal should reject shape mismatch")
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestRowSliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).SliceRows(1, 3)
}

func TestRowOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Row(5)
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(0, 7)
}

func TestConcatColMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ConcatRows(New(1, 2), New(1, 3))
}

func TestAppendRowLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 2).AppendRow([]float32{1, 2, 3})
}

func TestNegativeDimensionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1, 2)
}

// argTopKReference is the original O(k·n) repeated-max selection, retained
// as the semantic oracle for the quickselect implementation: descending
// value order, ties toward the lower index.
func argTopKReference(v []float32, k int) []int {
	if k <= 0 {
		return nil
	}
	if k > len(v) {
		k = len(v)
	}
	idx := make([]int, 0, k)
	taken := make([]bool, len(v))
	for range make([]struct{}, k) {
		best := -1
		var bestV float32
		for i, x := range v {
			if taken[i] {
				continue
			}
			if best == -1 || x > bestV {
				best, bestV = i, x
			}
		}
		taken[best] = true
		idx = append(idx, best)
	}
	return idx
}

func TestArgTopKMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var scratch TopKScratch
	var dst []int
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(64)
		v := make([]float32, n)
		for i := range v {
			if rng.Intn(3) == 0 {
				// Force heavy ties to exercise the index tie-break.
				v[i] = float32(rng.Intn(4))
			} else {
				v[i] = float32(rng.NormFloat64())
			}
		}
		k := rng.Intn(n + 2)
		want := argTopKReference(v, k)
		got := ArgTopK(v, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d k=%d): got %v, want %v\nv=%v", trial, n, k, got, want, v)
			}
		}
		dst = scratch.ArgTopK(v, k, dst)
		if len(dst) != len(want) {
			t.Fatalf("trial %d: scratch len %d, want %d", trial, len(dst), len(want))
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("trial %d: scratch got %v, want %v", trial, dst, want)
			}
		}
	}
}

func TestArgTopKSortedInputs(t *testing.T) {
	// Ascending, descending, and constant inputs are the quickselect's
	// classic worst cases; median-of-three must keep them linear and exact.
	const n = 512
	shapes := map[string]func(i int) float32{
		"ascending":  func(i int) float32 { return float32(i) },
		"descending": func(i int) float32 { return float32(n - i) },
		"constant":   func(i int) float32 { return 1 },
	}
	var scratch TopKScratch
	for name, f := range shapes {
		v := make([]float32, n)
		for i := range v {
			v[i] = f(i)
		}
		for _, k := range []int{1, 7, n / 2, n - 1, n} {
			want := argTopKReference(v, k)
			got := scratch.ArgTopK(v, k, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s k=%d: got[%d]=%d, want %d", name, k, i, got[i], want[i])
				}
			}
		}
	}
}

func BenchmarkArgTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	v := make([]float32, 512)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	var scratch TopKScratch
	var dst []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = scratch.ArgTopK(v, 102, dst)
	}
}
