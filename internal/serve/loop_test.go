package serve

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/workload"
)

// runThroughLoop feeds cfg's trace through the step-driven core the way
// a streaming session does — empty loop, Inject every arrival, Drain —
// and finalizes.
func runThroughLoop(t *testing.T, cfg Config) *Result {
	t.Helper()
	trace := cfg.Trace
	cfg.Trace = nil
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatalf("NewLoop: %v", err)
	}
	for _, r := range trace {
		if err := l.Inject(r); err != nil {
			t.Fatalf("Inject r%d: %v", r.ID, err)
		}
	}
	if err := l.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	return l.Finalize()
}

// TestLoopReplaysTraceBitIdentical is the core equivalence property of
// the step-driven redesign: for every registered servable scheduler,
// injecting a trace's arrivals into an empty Loop produces a Result —
// metrics, per-request records, and captured event log — bit-identical
// to Run replaying that trace.
func TestLoopReplaysTraceBitIdentical(t *testing.T) {
	for _, name := range sched.Registered() {
		if name == "deepspeed-zero" || name == "deepspeed" {
			continue // not servable: engine-wide weight streaming
		}
		t.Run(name, func(t *testing.T) {
			cfg := replayConfig(name)
			if name != "alisa" {
				cfg.KVSparsity, cfg.KVBits = 0, 16
			}
			want, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			got := runThroughLoop(t, cfg)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("loop-injected result diverged from Run:\nrun:  %+v\nloop: %+v", want, got)
			}
			if want.RenderEventLog() != got.RenderEventLog() {
				t.Fatal("event logs diverged")
			}
		})
	}
}

// TestLoopStreamingInject drives the streaming shape Run cannot express:
// requests pushed mid-run, after earlier work already completed, with
// out-of-order arrivals between pushes.
func TestLoopStreamingInject(t *testing.T) {
	cfg := lightConfig("alisa")
	cfg.Trace = nil
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if progressed, err := l.Advance(ctx); err != nil || progressed {
		t.Fatalf("empty loop advanced: %v %v", progressed, err)
	}

	// First wave.
	if err := l.Inject(workload.Request{ID: 0, Arrival: 0, Input: 64, Output: 16}); err != nil {
		t.Fatal(err)
	}
	for {
		progressed, err := l.Advance(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !progressed {
			break
		}
	}
	mid := l.Clock()
	if mid <= 0 {
		t.Fatal("clock did not advance")
	}

	// Second wave, pushed only after the first completed: a future
	// arrival and then an earlier one — Inject must keep arrival order.
	if err := l.Inject(workload.Request{ID: 1, Arrival: mid + 2, Input: 64, Output: 8}); err != nil {
		t.Fatal(err)
	}
	if err := l.Inject(workload.Request{ID: 2, Arrival: mid + 1, Input: 64, Output: 8}); err != nil {
		t.Fatal(err)
	}
	if l.Pending() != 2 {
		t.Fatalf("pending %d, want 2", l.Pending())
	}
	if err := l.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	res := l.Finalize()
	if len(res.Requests) != 3 {
		t.Fatalf("completed %d of 3", len(res.Requests))
	}
	// Request 2 arrives first and must be admitted first.
	var r1, r2 RequestRecord
	for _, r := range res.Requests {
		switch r.ID {
		case 1:
			r1 = r
		case 2:
			r2 = r
		}
	}
	if r2.Admitted >= r1.Admitted {
		t.Fatalf("arrival order not honoured: r2 admitted %.6f, r1 %.6f", r2.Admitted, r1.Admitted)
	}
}

// TestLoopInjectDuringAdmissionCallback pins the mid-admission
// injection hazard: an Inject fired from an OnAdmission callback with an
// arrival EARLIER than the request being admitted must not claim the
// queue slot that admission is consuming. Before the head-pop reorder,
// this stranded the injected request behind the head (silently dropped)
// and admitted the in-flight request twice, double-counting its record.
func TestLoopInjectDuringAdmissionCallback(t *testing.T) {
	cfg := lightConfig("alisa") // uniform arrivals at 0.5 s spacing
	var l *Loop
	admitted := map[int]int{}
	completed := map[int]int{}
	injected := false
	cfg.Observer = events.Funcs{
		Admission: func(e events.Admission) {
			admitted[e.Request]++
			// From request 2's admission (arrival 1.0), push a request
			// whose arrival 0.1 precedes every still-waiting arrival.
			if e.Request == 2 && !injected {
				injected = true
				if err := l.Inject(workload.Request{ID: 10, Arrival: 0.1, Input: 32, Output: 8}); err != nil {
					t.Errorf("mid-admission Inject: %v", err)
				}
			}
		},
		Completion: func(e events.Completion) { completed[e.Request]++ },
	}
	var err error
	l, err = NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	res := l.Finalize()
	if len(res.Requests) != 7 {
		t.Fatalf("completed %d of 7 requests (injected request dropped?)", len(res.Requests))
	}
	for id, n := range admitted {
		if n != 1 {
			t.Errorf("request %d admitted %d times", id, n)
		}
	}
	for id, n := range completed {
		if n != 1 {
			t.Errorf("request %d completed %d times", id, n)
		}
	}
	if completed[10] != 1 {
		t.Errorf("injected request never completed")
	}
}

// TestLoopInjectValidation covers the per-request checks that replace
// trace-level validation in streaming mode.
func TestLoopInjectValidation(t *testing.T) {
	cfg := lightConfig("alisa")
	cfg.Trace = nil
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Inject(workload.Request{ID: 0, Arrival: 0, Input: 64, Output: 16}); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		req  workload.Request
		want string
	}{
		{"duplicate ID", workload.Request{ID: 0, Arrival: 1, Input: 8, Output: 8}, "duplicate"},
		{"zero input", workload.Request{ID: 1, Arrival: 1, Input: 0, Output: 8}, "non-positive"},
		{"zero output", workload.Request{ID: 1, Arrival: 1, Input: 8, Output: 0}, "non-positive"},
		{"negative arrival", workload.Request{ID: 1, Arrival: -0.5, Input: 8, Output: 8}, "negative arrival"},
		{"exceeds max seq", workload.Request{ID: 1, Arrival: 1, Input: 4096, Output: 4096}, "exceeds max"},
	}
	for _, tc := range bad {
		err := l.Inject(tc.req)
		if err == nil {
			t.Errorf("%s accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if l.Pending() != 1 {
		t.Fatalf("rejected injections changed the queue: pending %d", l.Pending())
	}
	if err := l.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestLoopFinalizeGate pins the terminal state: after Finalize every
// transition fails, and Finalize stays idempotent.
func TestLoopFinalizeGate(t *testing.T) {
	cfg := lightConfig("vllm")
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	res := l.Finalize()
	if len(res.Requests) != len(cfg.Trace) {
		t.Fatalf("completed %d of %d", len(res.Requests), len(cfg.Trace))
	}
	if l.Finalize() != res {
		t.Fatal("Finalize not idempotent")
	}
	if err := l.Inject(workload.Request{ID: 99, Arrival: 0, Input: 8, Output: 8}); err == nil {
		t.Fatal("Inject accepted after Finalize")
	}
	if _, err := l.Advance(context.Background()); err == nil {
		t.Fatal("Advance accepted after Finalize")
	}
}

// TestLoopCancelLatched pins the failure latch: a cancelled Advance
// releases in-flight KV, and the same error resurfaces on every
// subsequent transition.
func TestLoopCancelLatched(t *testing.T) {
	cfg := Config{
		Model:     model.MustByName("opt-6.7b"),
		Profile:   memsim.V100_16G(),
		Scheduler: "alisa",
		Trace:     workload.PoissonTrace(8, 4, 3),
	}
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := l.Advance(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := l.Advance(ctx); err != context.Canceled {
		t.Fatalf("cancelled Advance: %v, want context.Canceled", err)
	}
	if l.Err() != context.Canceled {
		t.Fatalf("latched error %v", l.Err())
	}
	if _, err := l.Advance(context.Background()); err != context.Canceled {
		t.Fatalf("post-cancel Advance: %v, want the latched error", err)
	}
	if err := l.Inject(workload.Request{ID: 99, Arrival: 0, Input: 8, Output: 8}); err != context.Canceled {
		t.Fatalf("post-cancel Inject: %v, want the latched error", err)
	}
	// Partial finalize still works, over whatever completed.
	if res := l.Finalize(); res == nil {
		t.Fatal("no partial result after cancellation")
	}
}
