package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/workload"
)

// tightProfile returns a V100-derived profile whose GPU fits the static
// reservations (runtime reserve, weights, activations for maxBatch) plus
// exactly kvTokens of FP16 KV, so the admission arithmetic in the gate
// tests is controlled to the token.
func tightProfile(m model.Config, maxBatch, kvTokens int) memsim.Profile {
	prof := memsim.V100_16G()
	static := prof.ReserveBytes + m.WeightBytes(2) + m.ActivationBytes(maxBatch, 2)
	prof.Name = "tight-test"
	prof.GPUMemBytes = static + int64(kvTokens)*m.KVBytesPerToken(2)
	return prof
}

// TestInjectAheadOfBlockedHeadResetsGate is the stale-admission-gate
// regression: a failed probe's "head didn't fit" verdict is cached in
// admissionBlockedHeadroom, and before the fix an injected request that
// sorted ahead of the blocked head inherited that verdict — it was not
// probed until GPU headroom moved, even when it would have fit, inflating
// TTFT in closed-loop and session runs. The injected head must admit on
// the very next turn, with no completion freeing memory.
func TestInjectAheadOfBlockedHeadResetsGate(t *testing.T) {
	m := model.MustByName("opt-6.7b")
	const maxBatch = 2
	cfg := Config{
		Model:     m,
		Profile:   tightProfile(m, maxBatch, 600),
		Scheduler: "gpu-only",
		MaxBatch:  maxBatch,
	}
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Request 0 (256-token prompt) fits; request 1's 500-token prompt
	// cannot be placed next to it, so its probe fails and the headroom
	// gate latches against the 344 tokens that remain.
	if err := l.Inject(workload.Request{ID: 0, Arrival: 0, Input: 256, Output: 64}); err != nil {
		t.Fatal(err)
	}
	if err := l.Inject(workload.Request{ID: 1, Arrival: 0.01, Input: 500, Output: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Advance(ctx); err != nil {
		t.Fatal(err)
	}
	if l.Active() != 1 {
		t.Fatalf("setup: active %d, want 1 (request 0 admitted, request 1 blocked)", l.Active())
	}

	// A small request with an earlier arrival becomes the new queue head.
	// Headroom only shrinks while request 0 decodes, so no headroom
	// movement will ever unblock the gate — only the injection-time reset
	// can let the new head be probed.
	if err := l.Inject(workload.Request{ID: 2, Arrival: 0.005, Input: 32, Output: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Advance(ctx); err != nil {
		t.Fatal(err)
	}
	if l.Active() != 2 {
		t.Fatalf("injected head not admitted: active %d, want 2 (stale admission gate)", l.Active())
	}

	if err := l.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	res := l.Finalize()
	if res.Completed != 3 {
		t.Fatalf("completed %d of 3", res.Completed)
	}
	var rec2, rec0 RequestRecord
	for _, r := range res.Requests {
		switch r.ID {
		case 0:
			rec0 = r
		case 2:
			rec2 = r
		}
	}
	if rec2.Admitted >= rec0.Finished {
		t.Fatalf("request 2 admitted at %.6f only after request 0 finished at %.6f — memory had to be freed first",
			rec2.Admitted, rec0.Finished)
	}
}

// TestInjectBehindBlockedHeadKeepsGate is the complement: an injection
// that does NOT displace the blocked head must leave the gate latched —
// the whole point of the gate is to not re-probe a stuck head every
// iteration.
func TestInjectBehindBlockedHeadKeepsGate(t *testing.T) {
	m := model.MustByName("opt-6.7b")
	const maxBatch = 2
	cfg := Config{
		Model:     m,
		Profile:   tightProfile(m, maxBatch, 600),
		Scheduler: "gpu-only",
		MaxBatch:  maxBatch,
	}
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := l.Inject(workload.Request{ID: 0, Arrival: 0, Input: 256, Output: 64}); err != nil {
		t.Fatal(err)
	}
	if err := l.Inject(workload.Request{ID: 1, Arrival: 0.01, Input: 500, Output: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Advance(ctx); err != nil {
		t.Fatal(err)
	}

	// Arrival 0.02 sorts behind the blocked head at 0.01: the verdict
	// still describes the front of the queue, so nothing may be admitted.
	if err := l.Inject(workload.Request{ID: 2, Arrival: 0.02, Input: 32, Output: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Advance(ctx); err != nil {
		t.Fatal(err)
	}
	if l.Active() != 1 {
		t.Fatalf("active %d, want 1: a request behind the blocked head must stay queued", l.Active())
	}
	if err := l.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if res := l.Finalize(); res.Completed != 3 {
		t.Fatalf("completed %d of 3", res.Completed)
	}
}

// TestIsCancellation pins the one cancellation classification every
// drain path shares.
func TestIsCancellation(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"canceled", context.Canceled, true},
		{"deadline", context.DeadlineExceeded, true},
		{"wrapped canceled", fmt.Errorf("turn: %w", context.Canceled), true},
		{"fatal", errors.New("KV accounting leak"), false},
	}
	for _, tc := range cases {
		if got := IsCancellation(tc.err); got != tc.want {
			t.Errorf("IsCancellation(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestRunClassifiesCauseWrappedCancel drives a context.WithCancelCause
// cancellation through Run: the custom cause must not change the
// classification — Run still returns the partial result alongside the
// cancellation error.
func TestRunClassifiesCauseWrappedCancel(t *testing.T) {
	cause := errors.New("backend drained by the load balancer")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	res, err := Run(ctx, lightConfig("alisa"))
	if err == nil || !IsCancellation(err) {
		t.Fatalf("cause-wrapped cancellation classified as fatal: %v", err)
	}
	if res == nil {
		t.Fatal("cancellation must carry the partial result")
	}
	if context.Cause(ctx) != cause {
		t.Fatalf("cause lost: %v", context.Cause(ctx))
	}
}
