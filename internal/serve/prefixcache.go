package serve

import (
	"fmt"

	"repro/internal/serve/prefix"
)

// This file wires the shared prefix KV cache (internal/serve/prefix)
// into the event loop. Every entry point is gated on s.cache != nil:
// with Config.PrefixBlock zero the loop never touches any of it, which
// is what keeps cache-off runs bit-identical to the pre-cache tree.
//
// Memory model: the cache owns one simulated GPU-resident copy of every
// shared block, mirrored into the memsim.System as it grows and
// shrinks, so shared bytes are accounted exactly once and occupied
// headroom squeezes admission like any other KV. Admitted requests
// still allocate their full private KV through their scheduler — the
// cache buys them the prefill time, not the bytes — and lease their
// matched path so it cannot be evicted while they run.

// newPrefixCache builds the loop's cache from the defaulted config.
// Called after reserveStatic, so the default budget — a quarter of the
// post-reservation headroom — sees the true free pool.
func (s *server) newPrefixCache() {
	if s.cfg.PrefixBlock <= 0 {
		return
	}
	tokenBytes := s.kvTokenFP16
	if s.cfg.KVBits < 16 {
		// The cache stores blocks at serving precision.
		tokenBytes = tokenBytes * int64(s.cfg.KVBits) / 16
	}
	blockBytes := int64(s.cfg.PrefixBlock) * tokenBytes
	budget := s.cfg.PrefixBudget
	if budget == 0 {
		budget = s.sys.GPUHeadroom() / 4
	}
	if budget < blockBytes {
		budget = blockBytes
	}
	s.cacheTokenBytes = tokenBytes
	s.cache = prefix.NewIndex(s.cfg.PrefixBlock, blockBytes, budget)
}

// cacheAcquire grafts the request's block-aligned prompt prefix into
// the shared cache — best-effort under the byte budget and current GPU
// headroom, evicting LRU refcount-0 blocks to make room — and leases
// the resulting resident path for the sequence's lifetime. It returns
// the leased token length, released again by cacheRelease.
//
//alisa:hotpath
func (s *server) cacheAcquire(tokens []int) (int, error) {
	added, freed := s.cache.Insert(tokens, s.sys.GPUHeadroom(), s.sys.Clock())
	if freed > 0 {
		s.sys.FreeGPU(freed)
	}
	if added > 0 {
		// Insert bounds net growth by the headroom passed in, so after the
		// eviction refund this allocation cannot fail.
		if err := s.sys.AllocGPU(added); err != nil {
			return 0, fmt.Errorf("serve: prefix cache grew past GPU headroom: %w", err)
		}
	}
	if rb := s.cache.ResidentBytes(); rb > s.prefixPeakBytes {
		s.prefixPeakBytes = rb
	}
	return s.cache.Lease(tokens), nil
}

// cacheRelease returns a retired sequence's lease. Safe on sequences
// that never leased (leaseLen 0, the cache-off case included).
//
//alisa:hotpath
func (s *server) cacheRelease(st *seqState) {
	if st.leaseLen > 0 {
		s.cache.Release(st.req.Tokens[:st.leaseLen], s.sys.Clock())
		st.leaseLen = 0
	}
}

// cacheRelieve responds to memory pressure: it evicts least-recently-
// used refcount-0 cache blocks until target bytes are freed (or nothing
// evictable remains) and returns whether any memory moved. The serving
// loop prefers shedding cache over preempting a sequence or declaring a
// request unservable — cached blocks are a speculative speedup, live KV
// is work in flight.
//
//alisa:hotpath
func (s *server) cacheRelieve(target int64) bool {
	if s.cache == nil {
		return false
	}
	var freed int64
	for freed < target {
		n := s.cache.EvictOne()
		if n == 0 {
			break
		}
		freed += n
	}
	if freed == 0 {
		return false
	}
	s.sys.FreeGPU(freed)
	return true
}

// seqKVBytes estimates one request's full dense KV footprint — the
// eviction target when that request cannot be placed.
//
//alisa:hotpath
func (s *server) seqKVBytes(input, output int) int64 {
	return int64(input+output) * s.kvTokenFP16
}
