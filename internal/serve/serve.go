// Package serve is a discrete-event, multi-request serving simulator
// layered on the lockstep engine's cost and memory models — the
// continuous-batching regime (vLLM-style) projected onto the paper's
// simulated GPU–CPU system.
//
// Requests arrive on a workload.Trace timeline with heterogeneous
// input/output lengths. A single event loop owns the simulated clock:
//
//   - Admission (FCFS): while capacity and the batch cap allow, arrived
//     requests are prefilled and join the dynamic decode batch. Each
//     request runs its own instance of a sched.Scheduler as its KV
//     placement policy, sharing one memsim.System, so every policy's
//     memory pressure is global while its placement decisions stay
//     per-sequence.
//   - Decode iterations: every active request plans one step through its
//     scheduler (transfers charged to the shared clock/PCIe link), then
//     the whole ragged batch is charged as one fused iteration through
//     costmodel.RaggedDecodeTime.
//   - Preemption: when a request cannot allocate (GPU pressure from new
//     admissions), the youngest-admitted sequence is preempted — its KV
//     is released in full and the request restarts from its prompt on
//     readmission, i.e. recompute-style preemption, the serving-level
//     analogue of ALISA's Phase III deletion.
//   - Completion: a finished request's KV is freed through the
//     scheduler's Release hook (free-on-completion).
//
// The loop is single-goroutine and seeded, so a (trace, config) pair
// replays to a byte-identical event log and metrics, independent of
// GOMAXPROCS.
//
// The steady state is engineered allocation-free: the per-iteration plan
// and ragged-attention scratch, the per-admission scheduler Context and
// sequence state, and the preemption requeue all reuse server-owned
// storage, and the human-readable event log is opt-in (Config.CaptureLog)
// so sweeps pay no formatting at all. Run is safe to execute concurrently
// with other Runs — each owns its state — which is what Engine.ServeMany
// and the parallel sweep CLIs exploit. See DESIGN.md §8.
//
// The event loop itself is step-driven: Loop exposes the three
// transitions — Inject (push a request onto the timeline), Advance (one
// event-loop turn), Drain (advance to empty, then leak-check) — and Run
// is a thin adapter that seeds a Loop with a full trace and drains it.
// Streaming callers (the public alisa.Session) inject requests at any
// simulated time instead, including from observer callbacks mid-run,
// which is how closed-loop clients issue their next request on
// completion. A Loop fed the same arrivals as a trace replays the trace
// bit for bit. See DESIGN.md §9.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/costmodel"
	"repro/internal/events"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/serve/prefix"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config specifies one serving simulation.
type Config struct {
	Model   model.Config
	Profile memsim.Profile
	// Scheduler is the per-request KV placement policy, by sched.ByName
	// name. Every admission instantiates a fresh scheduler, so policies
	// keep per-sequence state. deepspeed-zero is not servable: weight
	// streaming is an engine-wide property, not a per-request one.
	Scheduler string

	// Factory, when non-nil, constructs the per-admission scheduler
	// instances instead of resolving Scheduler through the registry on
	// every admission — compiled engines resolve the name exactly once.
	// Scheduler stays the reported name.
	Factory sched.Factory

	Trace workload.Trace

	// KVSparsity and KVBits configure SWA and KV compression exactly as in
	// the lockstep engine (KVBits 0 → 16, dense FP16).
	KVSparsity float64
	KVBits     int

	// MaxBatch caps concurrent decode sequences (0 → 16). Activations are
	// reserved for this cap up front.
	MaxBatch int

	// SLOTTFT and SLOTPOT are the goodput service-level objectives:
	// a completed request counts toward goodput only when its
	// time-to-first-token and time-per-output-token meet both bounds
	// (0 → 10 s and 0.5 s).
	SLOTTFT float64
	SLOTPOT float64

	// Observer, when non-nil, receives streaming admission, preemption,
	// completion, and per-iteration step events, mirroring the event log.
	// Callbacks run inline on the event loop.
	Observer events.Observer

	// CaptureLog enables Result.EventLog, the human-readable record of
	// every admission, preemption, and completion. Off (the default) the
	// steady-state loop formats nothing — the mode sweeps run in; on, the
	// captured log is byte-identical to what the loop has always produced,
	// which the replay-determinism suite pins.
	CaptureLog bool

	// ExactMetrics is the exact-metrics threshold: while the total number
	// of requests handed to the loop stays at or below it, the run keeps
	// every per-request record and Finalize digests them with one
	// end-of-run sort per latency — bit-identical to what the loop has
	// always produced, which every golden, compat, and replay suite pins.
	// The first injection that pushes the total past the threshold
	// switches the loop to scale mode, deterministically (the trigger
	// depends only on the injection count): completed requests stream
	// into fixed-size digests (metrics.LatencyDigest) at completion time
	// and their records are recycled immediately, so retained memory
	// tracks the live backlog, not the trace length. In scale mode
	// Result.Requests is nil, the latency percentiles are sketch
	// estimates within the documented rank-error bound (Mean and Max stay
	// exact), and duplicate-ID detection covers live requests only. 0
	// selects DefaultExactMetrics; negative means scale mode from the
	// first request. See DESIGN.md §10.
	ExactMetrics int

	// PrefixBlock enables the shared prefix KV cache (DESIGN.md §13):
	// prompts of admitted requests are cached in PrefixBlock-token blocks
	// in a copy-on-write radix index, and later requests whose token IDs
	// share a block-aligned prefix skip prefilling the matched tokens,
	// paying a fast HBM copy of the shared KV instead. 0 — the default —
	// leaves the cache out entirely: the loop is bit-identical to a build
	// without it. Only requests that carry token IDs
	// (workload.Request.Tokens) participate; shape-only requests always
	// prefill in full.
	PrefixBlock int

	// PrefixBudget caps the cache's simulated GPU-resident bytes. 0
	// defaults to a quarter of the post-reservation headroom. Ignored
	// when PrefixBlock is 0.
	PrefixBudget int64
}

// DefaultExactMetrics is the exact-metrics threshold when
// Config.ExactMetrics is zero: large enough that every current trace,
// test, and example stays on the bit-identical exact path, small enough
// that million-request runs stream.
const DefaultExactMetrics = 65536

// withDefaults returns the config with zero fields defaulted.
func (c Config) withDefaults() Config {
	if c.KVBits == 0 {
		c.KVBits = 16
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 16
	}
	if c.SLOTTFT == 0 {
		c.SLOTTFT = 10
	}
	if c.SLOTPOT == 0 {
		c.SLOTPOT = 0.5
	}
	return c
}

// Validate reports configuration errors before a run. Run requires a
// non-empty trace; a streaming Loop validates with validateStatic and
// checks each injected request instead.
func (c Config) Validate() error {
	if err := c.validateStatic(); err != nil {
		return err
	}
	return c.Trace.Validate(c.Model.MaxSeq)
}

// validateStatic checks every configuration field except the trace.
func (c Config) validateStatic() error {
	switch {
	case c.Model.Layers <= 0:
		return fmt.Errorf("serve: model config required")
	case c.Scheduler == "deepspeed-zero" || c.Scheduler == "deepspeed":
		return fmt.Errorf("serve: deepspeed-zero streams weights engine-wide and cannot act as a per-request policy")
	case c.KVSparsity < 0 || c.KVSparsity >= 1:
		return fmt.Errorf("serve: KV sparsity must be in [0,1), got %v", c.KVSparsity)
	case c.KVBits != 4 && c.KVBits != 8 && c.KVBits != 16:
		return fmt.Errorf("serve: KV bits must be 4, 8 or 16, got %d", c.KVBits)
	case c.MaxBatch < 0:
		return fmt.Errorf("serve: negative batch cap %d", c.MaxBatch)
	case c.PrefixBlock < 0:
		return fmt.Errorf("serve: negative prefix cache block of %d tokens", c.PrefixBlock)
	case c.PrefixBudget < 0:
		return fmt.Errorf("serve: negative prefix cache budget of %d bytes", c.PrefixBudget)
	case c.PrefixBudget > 0 && c.PrefixBlock == 0:
		return fmt.Errorf("serve: prefix cache budget set but the cache is off (PrefixBlock 0)")
	}
	if c.Factory == nil {
		if _, err := sched.FactoryByName(c.Scheduler); err != nil {
			return err
		}
	}
	return nil
}

// RequestRecord is the per-request outcome of a serving run.
type RequestRecord struct {
	ID      int
	Arrival float64
	// Admitted is the (final) admission time; preempted requests are
	// readmitted and the latest admission is kept.
	Admitted float64
	// FirstToken is when the prompt finished prefilling after final
	// admission — the end of TTFT.
	FirstToken float64
	Finished   float64
	Input      int
	Output     int
	// Preemptions counts how many times the request lost its KV and
	// restarted from the prompt.
	Preemptions int
}

// String renders the record with full float precision, so replay
// fingerprints catch any drift.
func (r RequestRecord) String() string {
	return fmt.Sprintf("r%d arr=%.9f adm=%.9f ft=%.9f fin=%.9f s=%d n=%d pre=%d",
		r.ID, r.Arrival, r.Admitted, r.FirstToken, r.Finished, r.Input, r.Output, r.Preemptions)
}

// TTFT returns the request's time to first token: arrival → first token,
// queueing and any preempted work included.
func (r RequestRecord) TTFT() float64 { return r.FirstToken - r.Arrival }

// TPOT returns the request's mean time per output token after the first.
func (r RequestRecord) TPOT() float64 {
	if r.Output <= 0 {
		return 0
	}
	return (r.Finished - r.FirstToken) / float64(r.Output)
}

// Result is the outcome of a serving simulation.
type Result struct {
	Scheduler string
	// Requests holds the per-request records in insertion order — on the
	// exact-metrics path only. A scale-mode run (see Config.ExactMetrics)
	// streams records into digests at completion time and reports
	// Requests nil; Completed still counts them.
	Requests []RequestRecord
	// Completed is the number of requests that ran to completion, in
	// either mode.
	Completed int
	Breakdown *trace.Breakdown

	// Makespan is the simulated time from trace start to the last
	// completion.
	Makespan float64
	// Throughput is generated tokens per second over the makespan.
	Throughput float64
	// Goodput is the generated-token rate counting only requests that met
	// both SLOs.
	Goodput float64
	// SLOAttainment is the fraction of requests that met both SLOs.
	SLOAttainment float64

	TTFT metrics.LatencySummary
	TPOT metrics.LatencySummary
	E2E  metrics.LatencySummary

	Preemptions int
	// MeanBatch is the decode-batch occupancy averaged over iterations.
	MeanBatch float64

	// PrefillTokens is the total prompt tokens actually prefilled across
	// all admissions (readmissions after preemption included). With the
	// prefix cache on, tokens served from shared blocks are excluded —
	// the prefill-reduction claims compare this field across cache-off
	// and cache-on runs of the same trace.
	PrefillTokens int64
	// PrefixHits and PrefixMisses count admissions of token-carrying
	// requests whose prefix-cache probe matched at least one block /
	// matched nothing. Both are zero when the cache is off.
	PrefixHits, PrefixMisses int
	// PrefixCachedTokens is the total leading prompt tokens served from
	// the shared cache, summed over admissions.
	PrefixCachedTokens int64
	// PrefixSharedBytes is the peak simulated bytes resident in the
	// shared prefix cache over the run.
	PrefixSharedBytes int64
	// PeakGPU and PeakCPU are the memory high-water marks.
	PeakGPU, PeakCPU int64

	// EventLog is the deterministic, human-readable record of every
	// admission, preemption, and completion; the replay tests pin it
	// byte for byte.
	EventLog []string
}

// PrefixHitRate is the prefix-cache hit rate over probed admissions,
// 0 before any probe (and always 0 with the cache off).
func (r *Result) PrefixHitRate() float64 {
	if probes := r.PrefixHits + r.PrefixMisses; probes > 0 {
		return float64(r.PrefixHits) / float64(probes)
	}
	return 0
}

// RenderEventLog joins the event log into one newline-terminated string.
// An empty log (capture off, or no events fired) renders as "".
func (r *Result) RenderEventLog() string {
	if len(r.EventLog) == 0 {
		return ""
	}
	return strings.Join(r.EventLog, "\n") + "\n"
}

// seqState is one admitted request's runtime state. Instances (and their
// embedded sched.Context) are owned by the server's seqPool and recycled
// across admissions, so the steady-state loop does not allocate them.
type seqState struct {
	req workload.Request
	sch sched.Scheduler
	rel sched.Releaser
	ctx *sched.Context
	j   int // completed decode steps
	rec *RequestRecord
	// seq is the request's wait-queue ticket, kept so a preemption
	// requeue restores its FCFS position (see reqQueue).
	seq uint64
	// done marks a sequence completed this iteration; iterate compacts
	// the active list once after the completion sweep instead of paying a
	// linear scan-and-shift per completion.
	done bool
	// leaseLen is the token length of the sequence's prefix-cache lease
	// (0 when the cache is off or the request carries no tokens); the
	// release re-walks req.Tokens[:leaseLen], so cloning a loop never has
	// to translate node pointers for in-flight leases.
	leaseLen int
}

// stepped pairs a sequence with its plan for the current iteration.
type stepped struct {
	st   *seqState
	plan sched.StepPlan
}

// server is the event-loop state of one run.
type server struct {
	cfg        Config
	captureLog bool
	sys        *memsim.System
	cost       costmodel.Cost
	newSched   sched.Factory // per-admission scheduler constructor

	// queue is the arrival-keyed indexed wait queue: a binary min-heap on
	// (Arrival, ticket) that frees each slot on pop. Preemption requeues
	// re-enqueue under the original ticket, restoring the victim's FCFS
	// position without allocating.
	queue reqQueue

	// injected counts every request ever handed to the loop; crossing
	// exactLimit flips the run into scale mode, deterministically.
	injected   int
	exactLimit int
	// streaming is true once the run entered scale mode: completions
	// stream into dig and their records recycle through freeRecs.
	streaming bool
	dig       *scaleDigests

	// all records every request ever handed to the loop — the seed trace
	// followed by injections, in insertion order — and is what finalize
	// reports over on the exact path. For a trace run it aliases
	// cfg.Trace (capacity-capped, so injections never write into the
	// caller's array). Scale mode drops it: finalize reads the digests.
	all []workload.Request

	active  []*seqState
	records map[int]*RequestRecord
	// recArena is the current chunk of the flat arena backing the records
	// map. A trace run sizes one exact chunk up front; injections append,
	// and a full chunk is replaced (never grown in place) so the pointers
	// the map already holds stay valid.
	recArena []RequestRecord
	// freeRecs pools records recycled by scale-mode completions, so a
	// steady-state stream allocates no new records at all.
	freeRecs []*RequestRecord

	preemptions int
	iterations  int
	batchSum    int

	// staticGPU/staticCPU are the post-reservation baselines; when the
	// last request retires, usage must return to them exactly or the
	// per-sequence accounting leaked.
	staticGPU, staticCPU int64

	// admissionBlockedHeadroom remembers the GPU headroom at the last
	// failed admission probe; re-probing waits until headroom grows, so a
	// stuck head-of-queue request does not charge probe transfers every
	// iteration. lastAdmitErr keeps that probe's placement error for the
	// unservable diagnosis.
	admissionBlockedHeadroom int64
	lastAdmitErr             error

	// Iteration scratch, reused every turn: the per-sequence plans and
	// the ragged attended-token counts of the fused compute charge.
	plans    []stepped
	attended []int
	// seqPool recycles seqState+Context pairs released by completion,
	// preemption, or a failed admission probe; bounded by MaxBatch+1.
	seqPool []*seqState
	// kvTokenFP16 is the per-run constant Model.KVBytesPerToken(2),
	// hoisted out of the quantization charge.
	kvTokenFP16 int64

	// cache is the shared prefix KV index, nil unless Config.PrefixBlock
	// is set; every cache touch in the loop is gated on it, which is what
	// keeps cache-off runs bit-identical to the pre-cache tree.
	cache *prefix.Index
	// cacheTokenBytes is the per-token KV footprint at serving precision
	// — what one cached token costs in simulated GPU bytes.
	cacheTokenBytes int64
	// prefillTokens totals the prompt tokens actually prefilled;
	// prefixPeakBytes is the cache's resident-byte high-water mark.
	prefillTokens   int64
	prefixPeakBytes int64

	log []string
	res *Result
}

// Run simulates the configured serving workload to completion: it seeds
// a Loop with the full trace and drains it — the offline replay adapter
// over the step-driven session core, bit-identical to the monolithic
// loop it replaced.
//
// Cancellation is checked once per event-loop turn: when ctx is cancelled
// mid-run, every active sequence's KV is released (the end-of-run leak
// check still applies), the metrics are finalised over the requests that
// completed, and the partial Result is returned alongside ctx.Err().
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l, err := newLoop(cfg)
	if err != nil {
		return nil, err
	}
	if err := l.Drain(ctx); err != nil {
		if IsCancellation(err) {
			return l.Finalize(), err
		}
		return nil, err
	}
	return l.Finalize(), nil
}

// IsCancellation reports whether err is a context cancellation or
// deadline expiry — the class of failures that still carries a partial
// Result (metrics over the requests that completed). It is the one
// classification every drain path uses — Run, the public session Close,
// and the cluster layer — so cause-wrapped cancellations
// (context.WithCancelCause) behave identically everywhere.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Loop is the step-driven serving core: one discrete-event continuous-
// batching simulation advanced a turn at a time, with requests injected
// at any point instead of replayed from a pre-materialized trace. The
// three transitions are Inject, Advance, and Drain; Finalize digests the
// aggregate Result. A Loop is single-goroutine like Run — callers own
// the sequencing — and a Loop fed a trace's arrivals through Inject
// produces the same metrics and event stream as Run on that trace.
type Loop struct {
	s server
	// err latches the first fatal or cancellation error; every transition
	// after it reports the same failure instead of touching torn state.
	err       error
	finalized bool
}

// NewLoop validates the configuration and builds an idle serving loop.
// Unlike Run, cfg.Trace is optional: a non-empty trace pre-seeds the
// wait queue, and streaming callers start empty and Inject instead.
func NewLoop(cfg Config) (*Loop, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validateStatic(); err != nil {
		return nil, err
	}
	if len(cfg.Trace) > 0 {
		if err := cfg.Trace.Validate(cfg.Model.MaxSeq); err != nil {
			return nil, err
		}
	}
	return newLoop(cfg)
}

// newLoop builds the loop state from an already-validated, defaulted
// configuration and reserves the static memory.
func newLoop(cfg Config) (*Loop, error) {
	factory := cfg.Factory
	if factory == nil {
		var err error
		factory, err = sched.FactoryByName(cfg.Scheduler)
		if err != nil {
			return nil, err
		}
	}

	exactLimit := cfg.ExactMetrics
	if exactLimit == 0 {
		exactLimit = DefaultExactMetrics
	}
	l := &Loop{}
	l.s = server{
		cfg:                      cfg,
		captureLog:               cfg.CaptureLog,
		sys:                      memsim.NewSystem(cfg.Profile),
		cost:                     costmodel.New(cfg.Profile),
		newSched:                 factory,
		exactLimit:               exactLimit,
		injected:                 len(cfg.Trace),
		all:                      cfg.Trace[:len(cfg.Trace):len(cfg.Trace)],
		records:                  make(map[int]*RequestRecord, len(cfg.Trace)),
		recArena:                 make([]RequestRecord, 0, len(cfg.Trace)),
		admissionBlockedHeadroom: -1,
		kvTokenFP16:              cfg.Model.KVBytesPerToken(2),
		res: &Result{
			Scheduler: cfg.Scheduler,
			Breakdown: trace.NewBreakdown(),
		},
	}
	s := &l.s
	s.queue.seed(cfg.Trace)
	for _, r := range cfg.Trace {
		s.addRecord(r)
	}
	if exactLimit < 0 || s.injected > exactLimit {
		s.enterScaleMode()
	}

	if err := s.reserveStatic(); err != nil {
		return nil, err
	}
	s.newPrefixCache()
	return l, nil
}

// Inject pushes one request onto the simulated timeline. The arrival may
// lie anywhere at or after zero — in the future (the loop advances the
// clock to it when it goes idle), or before the current clock, in which
// case the request is immediately due and queues behind the already-
// waiting work. Equal arrivals keep injection order. Injecting from an
// Observer callback mid-turn is supported; that is how closed-loop
// clients issue their next request on completion.
func (l *Loop) Inject(req workload.Request) error {
	if err := l.gate(); err != nil {
		return err
	}
	s := &l.s
	switch {
	case req.Input <= 0 || req.Output <= 0:
		return fmt.Errorf("serve: request %d has non-positive lengths s=%d n=%d", req.ID, req.Input, req.Output)
	case s.cfg.Model.MaxSeq > 0 && req.Input+req.Output > s.cfg.Model.MaxSeq:
		return fmt.Errorf("serve: request %d sequence %d exceeds max %d", req.ID, req.Input+req.Output, s.cfg.Model.MaxSeq)
	case req.Arrival < 0:
		return fmt.Errorf("serve: request %d has negative arrival %v", req.ID, req.Arrival)
	case req.Tokens != nil && len(req.Tokens) != req.Input:
		return fmt.Errorf("serve: request %d carries %d token IDs for an input of %d", req.ID, len(req.Tokens), req.Input)
	}
	// Duplicate detection spans every request ever injected on the exact
	// path; in scale mode completed records are recycled, so it covers
	// live requests only (see Config.ExactMetrics).
	if _, dup := s.records[req.ID]; dup {
		return fmt.Errorf("serve: duplicate request ID %d", req.ID)
	}

	// Enqueue under a fresh ticket: the (arrival, ticket) key keeps the
	// admission loop's FCFS contract — arrival order, injection order
	// across equal arrivals — no matter when the request was pushed.
	s.queue.Push(req)
	// A failed probe's "head didn't fit" verdict belongs to the request
	// that was probed. If this injection sorts ahead of that blocked
	// head, the cached verdict no longer describes the queue front: clear
	// the gate so the next admission pass probes the new head even though
	// GPU headroom has not moved, and drop the stale probe error so the
	// unservable diagnosis can never report a different request's failure.
	if s.admissionBlockedHeadroom >= 0 && s.queue.Peek().ID == req.ID {
		s.admissionBlockedHeadroom = -1
		s.lastAdmitErr = nil
	}
	s.injected++
	if !s.streaming {
		s.all = append(s.all, req)
	}
	s.addRecord(req)
	if !s.streaming && s.exactLimit >= 0 && s.injected > s.exactLimit {
		s.enterScaleMode()
	}
	return nil
}

// Advance runs one event-loop turn: jump the clock to the next arrival
// if the system is idle, admit arrived requests FCFS, then execute one
// fused decode iteration over the active batch. It reports false with a
// nil error when the loop is idle — nothing waiting, nothing active —
// which is the signal to Inject more work or Drain. Cancelling ctx
// releases every in-flight sequence's KV and latches ctx.Err().
func (l *Loop) Advance(ctx context.Context) (bool, error) {
	if err := l.gate(); err != nil {
		return false, err
	}
	progressed, err := l.s.turn(ctx)
	if err != nil {
		l.err = err
	}
	return progressed, err
}

// Drain advances the loop until it goes idle — every injected request
// completed — then verifies the KV accounting returned exactly to the
// static reservations. It does not block new injections itself (the
// loop has no intrinsic "closing" state); callers wanting a graceful
// close stop injecting and Drain.
func (l *Loop) Drain(ctx context.Context) error {
	for {
		progressed, err := l.Advance(ctx)
		if err != nil {
			return err
		}
		if !progressed {
			if err := l.s.checkLeak(); err != nil {
				l.err = err
				return err
			}
			return nil
		}
	}
}

// Finalize computes the aggregate metrics over every request handed to
// the loop, in insertion order, and returns the Result. Requests that
// never completed (cancelled or still-pending work) are summarised out,
// exactly as Run's cancellation path reports partial metrics. Finalize
// is idempotent and ends the loop: every later transition fails.
func (l *Loop) Finalize() *Result {
	if !l.finalized {
		l.finalized = true
		l.s.finalize()
	}
	return l.s.res
}

// Clock returns the current simulated time in seconds.
func (l *Loop) Clock() float64 { return l.s.sys.Clock() }

// Pending returns the number of injected requests waiting for admission.
func (l *Loop) Pending() int { return l.s.queue.Len() }

// NextArrival reports the earliest queued arrival and whether the wait
// queue holds any request. While the decode batch is empty the next
// Advance jumps the clock straight to this time, so a wall-clock pacing
// layer sleeps the dilated interval up front instead of discovering the
// jump after the fact.
func (l *Loop) NextArrival() (float64, bool) {
	if l.s.queue.Len() == 0 {
		return 0, false
	}
	return l.s.queue.Peek().Arrival, true
}

// Active returns the current decode-batch occupancy.
func (l *Loop) Active() int { return len(l.s.active) }

// GPUHeadroom returns the simulated GPU bytes currently free — the
// signal KV-pressure-aware cluster routers rank replicas by.
func (l *Loop) GPUHeadroom() int64 { return l.s.sys.GPUHeadroom() }

// Err returns the latched fatal or cancellation error, if any.
func (l *Loop) Err() error { return l.err }

// gate rejects transitions on a finalized or failed loop.
func (l *Loop) gate() error {
	if l.finalized {
		return fmt.Errorf("serve: loop already finalized")
	}
	return l.err
}

// reserveStatic allocates weights and a MaxBatch worth of activations.
func (s *server) reserveStatic() error {
	if err := s.sys.AllocGPU(s.cfg.Profile.ReserveBytes); err != nil {
		return fmt.Errorf("serve: runtime reserve: %w", err)
	}
	if err := s.sys.AllocGPU(s.cfg.Model.WeightBytes(2)); err != nil {
		return fmt.Errorf("serve: weights: %w", err)
	}
	if err := s.sys.AllocGPU(s.cfg.Model.ActivationBytes(s.cfg.MaxBatch, 2)); err != nil {
		return fmt.Errorf("serve: activations for batch cap %d: %w", s.cfg.MaxBatch, err)
	}
	s.staticGPU, s.staticCPU = s.sys.Usage()
	return nil
}

// addRecord indexes a per-request record for req, reusing a recycled
// record when scale mode has freed one; otherwise it allocates from the
// current arena chunk, and a full chunk is swapped for a fresh one (the
// map keeps the old chunk's pointers alive and valid).
func (s *server) addRecord(req workload.Request) *RequestRecord {
	if n := len(s.freeRecs); n > 0 {
		rec := s.freeRecs[n-1]
		s.freeRecs = s.freeRecs[:n-1]
		*rec = RequestRecord{ID: req.ID, Arrival: req.Arrival, Input: req.Input, Output: req.Output}
		s.records[req.ID] = rec
		return rec
	}
	if len(s.recArena) == cap(s.recArena) {
		n := 2 * cap(s.recArena)
		if n < 16 {
			n = 16
		}
		s.recArena = make([]RequestRecord, 0, n)
	}
	s.recArena = append(s.recArena, RequestRecord{ID: req.ID, Arrival: req.Arrival, Input: req.Input, Output: req.Output})
	rec := &s.recArena[len(s.recArena)-1]
	s.records[req.ID] = rec
	return rec
}

// turn is one step of the discrete-event engine: admit, decode one
// iteration, complete — the body of what used to be the monolithic run
// loop. It reports false when the loop is idle (nothing waiting, nothing
// active). Cancellation is checked once per turn; a cancelled turn
// releases every active sequence so the leak check still holds.
//
//alisa:hotpath
func (s *server) turn(ctx context.Context) (bool, error) {
	if s.queue.Len() == 0 && len(s.active) == 0 {
		return false, nil
	}
	if err := ctx.Err(); err != nil {
		return false, s.cancel(err)
	}
	// Idle with work only in the future: jump to the next arrival.
	if len(s.active) == 0 && s.queue.Peek().Arrival > s.sys.Clock() {
		s.sys.Advance(s.queue.Peek().Arrival - s.sys.Clock())
		s.admissionBlockedHeadroom = -1
	}
	if err := s.admit(); err != nil {
		return false, err
	}
	if len(s.active) == 0 {
		// Admission failed on an empty system: the head request can
		// never run.
		return false, fmt.Errorf("serve: request %d unservable: prompt KV cannot be placed on an empty system: %w",
			s.queue.Peek().ID, s.lastAdmitErr)
	}
	if err := s.iterate(); err != nil {
		return false, err
	}
	return true, nil
}

// cancel tears a cancelled run down: every active sequence's KV is
// released exactly, then the accounting is leak-checked as at a normal
// end of run. It returns cause unless the accounting leaked.
func (s *server) cancel(cause error) error {
	for _, st := range s.active {
		gpu, cpu := st.rel.Release(st.ctx)
		s.cacheRelease(st)
		if s.captureLog {
			s.logf("t=%.9f cancel r=%d gen=%d freedGPU=%d freedCPU=%d",
				s.sys.Clock(), st.req.ID, st.j, gpu, cpu)
		}
	}
	s.active = s.active[:0]
	if err := s.checkLeak(); err != nil {
		return err
	}
	return cause
}

// checkLeak verifies usage returned exactly to the static reservations —
// plus, with the cache on, the cache's resident bytes, whose refcounts
// must all have returned to zero (every lease released).
func (s *server) checkLeak() error {
	wantGPU := s.staticGPU
	if s.cache != nil {
		if err := s.cache.CheckInvariants(true); err != nil {
			return fmt.Errorf("serve: prefix cache leak: %w", err)
		}
		wantGPU += s.cache.ResidentBytes()
	}
	if gpu, cpu := s.sys.Usage(); gpu != wantGPU || cpu != s.staticCPU {
		return fmt.Errorf("serve: KV accounting leak: usage gpu=%d cpu=%d, static gpu=%d cpu=%d",
			gpu, cpu, wantGPU, s.staticCPU)
	}
	return nil
}

// admit moves arrived requests from the wait queue into the decode batch,
// FCFS, until the batch cap or capacity stops it.
//
//alisa:hotpath
func (s *server) admit() error {
	for len(s.active) < s.cfg.MaxBatch && s.queue.Len() > 0 {
		if s.queue.Peek().Arrival > s.sys.Clock() {
			return nil
		}
		if s.admissionBlockedHeadroom >= 0 && s.sys.GPUHeadroom() <= s.admissionBlockedHeadroom {
			// Last probe failed and nothing was freed since; skip
			// re-probing until memory moves.
			return nil
		}
		// Pop the head before tryAdmit: its admission callbacks may
		// Inject, mutating the heap, and an injected arrival earlier than
		// req's must not displace the slot this admission is consuming. A
		// failed probe fires no callbacks, so requeueing under the
		// original ticket restores the exact head position.
		req, seq := s.queue.Pop()
		ok, err := s.tryAdmit(req, seq)
		if err != nil {
			return err
		}
		if !ok {
			s.queue.Requeue(req, seq)
			// Shed speculative cache before giving up on the head: evicting
			// unreferenced shared blocks frees real headroom, and a re-probe
			// with the same memory is pointless without it.
			if s.cacheRelieve(s.seqKVBytes(req.Input, req.Output)) {
				s.admissionBlockedHeadroom = -1
				continue
			}
			s.admissionBlockedHeadroom = s.sys.GPUHeadroom()
			return nil
		}
		s.admissionBlockedHeadroom = -1
	}
	return nil
}

// getSeq takes a recycled seqState (with its Context) from the pool, or
// allocates the pool's newest member.
func (s *server) getSeq() *seqState {
	if n := len(s.seqPool); n > 0 {
		st := s.seqPool[n-1]
		s.seqPool = s.seqPool[:n-1]
		return st
	}
	return &seqState{ctx: &sched.Context{}}
}

// putSeq resets a retired seqState and returns it to the pool. The
// scheduler instance is dropped — policies keep per-sequence state, so a
// fresh one is constructed per admission — but the seqState and Context
// shells are reused.
func (s *server) putSeq(st *seqState) {
	ctx := st.ctx
	*ctx = sched.Context{}
	*st = seqState{ctx: ctx}
	s.seqPool = append(s.seqPool, st)
}

// tryAdmit prefills and places one request. A placement failure rolls the
// memory deltas back exactly (the loop is single-goroutine, so the
// snapshot diff is attributable) and reports ok=false; the clock cost of
// the aborted attempt stays charged, as a real engine's aborted prefill
// would.
//
//alisa:hotpath
func (s *server) tryAdmit(req workload.Request, seq uint64) (bool, error) {
	sch := s.newSched()
	rel, ok := sch.(sched.Releaser)
	if !ok {
		return false, fmt.Errorf("serve: scheduler %q has no Release hook", s.cfg.Scheduler)
	}
	st := s.getSeq()
	ctx := st.ctx
	*ctx = sched.Context{
		Sys:          s.sys,
		Cost:         s.cost,
		Model:        s.cfg.Model,
		Batch:        1,
		Input:        req.Input,
		Output:       req.Output,
		CachingRatio: 1 - s.cfg.KVSparsity,
		KVBits:       s.cfg.KVBits,
		Breakdown:    s.res.Breakdown,
	}

	cached := 0
	if s.cache != nil && len(req.Tokens) > 0 {
		cached = s.cache.Probe(req.Tokens)
		if cached >= req.Input {
			// A full hit still prefills the final block: the sequence's
			// first logits have to be computed from something.
			cached -= s.cfg.PrefixBlock
		}
	}
	gpuBefore, cpuBefore := s.sys.Usage()
	prefill := s.cost.PrefillTime(s.cfg.Model, 1, req.Input-cached)
	if cached > 0 {
		// Reuse is not free: the shared KV is copied into the sequence's
		// private allocation at HBM bandwidth.
		prefill += s.cost.PrefixReuse(int64(cached) * s.cacheTokenBytes).Seconds
	}
	s.sys.Advance(prefill)
	s.res.Breakdown.Add(trace.CatPrefill, prefill)
	if err := sch.Init(ctx); err != nil {
		// Roll back whatever Init managed to place, keeping the cause for
		// the unservable diagnosis.
		gpuAfter, cpuAfter := s.sys.Usage()
		s.sys.FreeGPU(gpuAfter - gpuBefore)
		s.sys.FreeCPU(cpuAfter - cpuBefore)
		s.lastAdmitErr = err
		s.putSeq(st)
		return false, nil
	}

	s.prefillTokens += int64(req.Input - cached)
	if s.cache != nil && len(req.Tokens) > 0 {
		s.cache.CountProbe(cached)
		n, err := s.cacheAcquire(req.Tokens)
		if err != nil {
			return false, err
		}
		st.leaseLen = n
	}
	rec := s.records[req.ID]
	rec.Admitted = s.sys.Clock() - prefill
	rec.FirstToken = s.sys.Clock()
	st.req, st.sch, st.rel, st.rec, st.seq = req, sch, rel, rec, seq
	s.active = append(s.active, st)
	if s.captureLog {
		if s.cache != nil {
			s.logf("t=%.9f admit r=%d in=%d out=%d wait=%.9f batch=%d cached=%d",
				s.sys.Clock(), req.ID, req.Input, req.Output, rec.Admitted-req.Arrival, len(s.active), cached)
		} else {
			s.logf("t=%.9f admit r=%d in=%d out=%d wait=%.9f batch=%d",
				s.sys.Clock(), req.ID, req.Input, req.Output, rec.Admitted-req.Arrival, len(s.active))
		}
	}
	if s.cfg.Observer != nil {
		adm := events.Admission{
			Request: req.ID, Clock: s.sys.Clock(), Wait: rec.Admitted - req.Arrival,
			Input: req.Input, Output: req.Output, Batch: len(s.active),
		}
		if s.cache != nil && len(req.Tokens) > 0 {
			adm.PrefixProbed = true
			adm.CachedTokens = cached
			adm.SharedBytes = s.cache.ResidentBytes()
		}
		s.cfg.Observer.OnAdmission(adm)
		// Prefill just finished: this is the request's first output token
		// (re-emitted after each readmission; the last one is the TTFT).
		s.cfg.Observer.OnFirstToken(events.FirstToken{
			Request: req.ID, Clock: s.sys.Clock(), TTFT: s.sys.Clock() - req.Arrival,
		})
	}
	return true, nil
}

// iterate runs one continuous-batching decode iteration over the active
// batch: per-sequence placement plans, one fused ragged compute charge,
// then completions.
//
//alisa:hotpath
func (s *server) iterate() error {
	iteration := s.iterations
	startClock := s.sys.Clock()
	startBatch := len(s.active)
	s.iterations++
	s.batchSum += len(s.active)

	plans := s.plans[:0]
	// The active list is admission-ordered (appends only), so the
	// youngest sequence is always the last element — and therefore never
	// one that was already stepped this iteration.
	for i := 0; i < len(s.active); {
		st := s.active[i]
		plan, err := st.sch.Step(st.ctx, st.j)
		if err == nil {
			plans = append(plans, stepped{st, plan})
			i++
			continue
		}
		// Memory pressure: preempt the youngest-admitted sequence
		// (vLLM-style recompute preemption; the serving analogue of
		// ALISA's Phase III deletion under admission pressure), then
		// retry. The retry re-runs the whole Step, so any transfers the
		// failed attempt already charged stay on the clock and the PCIe
		// counters — deliberate: a real engine's aborted iteration also
		// consumed link bandwidth before re-issuing its fetches. A
		// sequence that fails alone can never finish. Unreferenced shared
		// cache blocks go first in either case: they are a speculative
		// speedup, live KV is work in flight.
		if s.cacheRelieve(s.seqKVBytes(st.req.Input, st.req.Output)) {
			continue
		}
		if len(s.active) == 1 {
			return fmt.Errorf("serve: request %d cannot be served even alone: %w", st.req.ID, err)
		}
		victim := s.active[len(s.active)-1]
		s.preempt(victim)
		// If st itself was the victim it is gone and i == len(active);
		// otherwise retry st with the freed memory. Either way i stands.
	}

	// Fused iteration compute: ragged attention + shared projections for
	// normally cached sequences; full forward passes for no-cache plans;
	// pooled recomputation and quantization charges.
	attended := s.attended[:0]
	recomputed, quantPos := 0, 0
	sparse := false
	for _, p := range plans {
		if p.plan.FullRecompute {
			t := s.cost.PrefillTime(s.cfg.Model, 1, p.plan.Attended)
			s.sys.Advance(t)
			s.res.Breakdown.Add(trace.CatFullForward, t)
			continue
		}
		attended = append(attended, p.plan.Attended)
		recomputed += p.plan.RecomputedTokens
		quantPos += 1 + p.plan.FetchedTokens
		sparse = sparse || p.plan.Sparse
	}
	if len(attended) > 0 {
		kvWidth := 2
		if s.cfg.KVBits < 16 {
			kvWidth = 1
		}
		mha, ffn := s.cost.RaggedDecodeTime(s.cfg.Model, attended, kvWidth, sparse)
		s.sys.Advance(mha + ffn)
		s.res.Breakdown.Add(trace.CatMHA, mha)
		s.res.Breakdown.Add(trace.CatFFN, ffn)
	}
	if recomputed > 0 {
		t := s.cost.RecomputeTime(s.cfg.Model, 1, recomputed)
		s.sys.Advance(t)
		s.res.Breakdown.Add(trace.CatRecompute, t)
	}
	if s.cfg.KVBits < 16 && quantPos > 0 {
		t := s.cost.Quantize(int64(quantPos) * s.kvTokenFP16).Seconds
		s.sys.Advance(t)
		s.res.Breakdown.Add(trace.CatQuant, t)
	}

	// Advance step counters and retire finished sequences. Token events
	// fire before the completion they may trigger, so a subscriber sees
	// every request's lifecycle close in order: ... token, completion.
	finished := 0
	for _, p := range plans {
		p.st.j++
		if s.cfg.Observer != nil {
			s.cfg.Observer.OnToken(events.Token{
				Request: p.st.req.ID, Clock: s.sys.Clock(), Index: p.st.j,
			})
		}
		if p.st.j >= p.st.req.Output {
			s.complete(p.st)
			finished++
		}
	}
	if finished > 0 {
		// One order-preserving compaction retires every sequence complete
		// marked done, recycling it into the pool.
		out := s.active[:0]
		for _, st := range s.active {
			if st.done {
				s.putSeq(st)
			} else {
				out = append(out, st)
			}
		}
		for i := len(out); i < len(s.active); i++ {
			s.active[i] = nil
		}
		s.active = out
	}
	// Hand the (possibly grown) scratch back for the next iteration. The
	// retired seqStates plans still points at were recycled by the
	// compaction, so the truncation on entry is what drops those
	// references.
	s.plans, s.attended = plans, attended
	if s.cfg.Observer != nil {
		s.cfg.Observer.OnStep(events.Step{
			Step: iteration, Batch: startBatch,
			Clock: s.sys.Clock(), Seconds: s.sys.Clock() - startClock,
		})
	}
	return nil
}

// preempt releases every byte the victim (the last active sequence) holds
// and sends its request back to the head of the wait queue to restart from
// the prompt.
//
//alisa:hotpath
func (s *server) preempt(victim *seqState) {
	gpu, cpu := victim.rel.Release(victim.ctx)
	s.cacheRelease(victim)
	victim.rec.Preemptions++
	s.preemptions++
	if s.captureLog {
		s.logf("t=%.9f preempt r=%d gen=%d freedGPU=%d freedCPU=%d",
			s.sys.Clock(), victim.req.ID, victim.j, gpu, cpu)
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer.OnPreemption(events.Preemption{
			Request: victim.req.ID, Clock: s.sys.Clock(), Generated: victim.j,
		})
	}

	s.active = s.active[:len(s.active)-1]
	// Requeue under the original ticket: the (arrival, ticket) key
	// restores the request's FCFS position ahead of everything that
	// queued behind it, and a heap push into warm capacity allocates
	// nothing — the old slice-based path's "prepend by fresh allocation"
	// fallback is gone with the slice.
	s.queue.Requeue(victim.req, victim.seq)
	s.putSeq(victim)
	s.admissionBlockedHeadroom = -1
}

// complete retires a finished sequence: it frees the KV, closes the
// record, and — in scale mode — streams the completion into the digests
// and recycles the record on the spot. The sequence is only marked done
// here; iterate compacts the active list once after the completion
// sweep, so retiring k of b sequences costs O(b), not O(k·b).
//
//alisa:hotpath
func (s *server) complete(st *seqState) {
	gpu, cpu := st.rel.Release(st.ctx)
	s.cacheRelease(st)
	st.rec.Finished = s.sys.Clock()
	st.done = true
	s.admissionBlockedHeadroom = -1
	if s.captureLog {
		s.logf("t=%.9f finish r=%d ttft=%.9f tpot=%.9f freedGPU=%d freedCPU=%d",
			s.sys.Clock(), st.req.ID, st.rec.TTFT(), st.rec.TPOT(), gpu, cpu)
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer.OnCompletion(events.Completion{
			Request: st.req.ID, Clock: s.sys.Clock(),
			TTFT: st.rec.TTFT(), TPOT: st.rec.TPOT(),
			E2E: s.sys.Clock() - st.rec.Arrival, Output: st.req.Output,
			SLOMet:      s.sloMet(st.rec),
			Preemptions: st.rec.Preemptions,
		})
	}
	if s.streaming {
		s.streamCompletion(st.rec)
		delete(s.records, st.req.ID)
		s.freeRecs = append(s.freeRecs, st.rec)
	}
}

// sloMet is the goodput criterion: the request met both service-level
// objectives. The one predicate serves the final metrics and the
// completion events' SLOMet field, so online windowed goodput can never
// diverge from the end-of-run numbers.
func (s *server) sloMet(rec *RequestRecord) bool {
	return rec.TTFT() <= s.cfg.SLOTTFT && rec.TPOT() <= s.cfg.SLOTPOT
}

// scaleDigests is the fixed-size accumulator state of a scale-mode run:
// three streaming latency digests plus the running throughput and
// goodput aggregates — everything finalize needs, with no per-request
// retention.
type scaleDigests struct {
	ttft, tpot, e2e *metrics.LatencyDigest
	completed       int
	totalTokens     int
	goodTokens      int
	good            int
	makespan        float64
}

func newScaleDigests() *scaleDigests {
	return &scaleDigests{
		ttft: metrics.NewLatencyDigest(0),
		tpot: metrics.NewLatencyDigest(0),
		e2e:  metrics.NewLatencyDigest(0),
	}
}

// clone deep-copies the digest state for Loop.Snapshot.
func (d *scaleDigests) clone() *scaleDigests {
	c := *d
	c.ttft, c.tpot, c.e2e = d.ttft.Clone(), d.tpot.Clone(), d.e2e.Clone()
	return &c
}

// enterScaleMode flips the run into streaming-digest mode: every already
// completed record is streamed into the digests in insertion order —
// deterministic, since the switch itself fires at a deterministic
// injection count — and recycled; records stay indexed for live requests
// only, and the insertion-order request list is dropped. From here on,
// complete streams each finish directly.
func (s *server) enterScaleMode() {
	s.streaming = true
	s.dig = newScaleDigests()
	for _, r := range s.all {
		rec := s.records[r.ID]
		if rec == nil || rec.Finished == 0 {
			continue
		}
		s.streamCompletion(rec)
		delete(s.records, r.ID)
		s.freeRecs = append(s.freeRecs, rec)
	}
	s.all = nil
}

// streamCompletion folds one completed record into the digests.
func (s *server) streamCompletion(rec *RequestRecord) {
	d := s.dig
	d.completed++
	d.ttft.Observe(rec.TTFT())
	d.tpot.Observe(rec.TPOT())
	d.e2e.Observe(rec.Finished - rec.Arrival)
	d.totalTokens += rec.Output
	if rec.Finished > d.makespan {
		d.makespan = rec.Finished
	}
	if s.sloMet(rec) {
		d.good++
		d.goodTokens += rec.Output
	}
}

// finalize computes the aggregate metrics — from the per-request records
// on the exact path, from the streaming digests in scale mode.
func (s *server) finalize() {
	res := s.res
	res.EventLog = s.log
	res.Preemptions = s.preemptions
	if s.iterations > 0 {
		res.MeanBatch = float64(s.batchSum) / float64(s.iterations)
	}
	res.PeakGPU, res.PeakCPU = s.sys.Peak()
	res.PrefillTokens = s.prefillTokens
	if s.cache != nil {
		res.PrefixHits, res.PrefixMisses, res.PrefixCachedTokens = s.cache.Stats()
		res.PrefixSharedBytes = s.prefixPeakBytes
	}

	if s.streaming {
		d := s.dig
		res.Completed = d.completed
		res.TTFT = d.ttft.Summary()
		res.TPOT = d.tpot.Summary()
		res.E2E = d.e2e.Summary()
		res.Makespan = d.makespan
		if d.makespan > 0 {
			res.Throughput = float64(d.totalTokens) / d.makespan
			res.Goodput = float64(d.goodTokens) / d.makespan
		}
		if d.completed > 0 {
			res.SLOAttainment = float64(d.good) / float64(d.completed)
		}
		return
	}

	n := len(s.all)
	res.Requests = make([]RequestRecord, 0, n)
	ttft := make([]float64, 0, n)
	tpot := make([]float64, 0, n)
	e2e := make([]float64, 0, n)
	totalTokens, goodTokens, good := 0, 0, 0
	for _, r := range s.all {
		rec := s.records[r.ID]
		if rec.Finished == 0 {
			// Never completed — only possible on a cancelled or
			// mid-stream-finalized run; partial results summarise the
			// requests that did finish.
			continue
		}
		res.Requests = append(res.Requests, *rec)
		ttft = append(ttft, rec.TTFT())
		tpot = append(tpot, rec.TPOT())
		e2e = append(e2e, rec.Finished-rec.Arrival)
		totalTokens += rec.Output
		if rec.Finished > res.Makespan {
			res.Makespan = rec.Finished
		}
		if s.sloMet(rec) {
			good++
			goodTokens += rec.Output
		}
	}
	res.Completed = len(res.Requests)
	// One percentile scratch serves all three latency digests.
	var scratch []float64
	res.TTFT, scratch = metrics.SummarizeInto(ttft, scratch)
	res.TPOT, scratch = metrics.SummarizeInto(tpot, scratch)
	res.E2E, _ = metrics.SummarizeInto(e2e, scratch)
	if res.Makespan > 0 {
		res.Throughput = float64(totalTokens) / res.Makespan
		res.Goodput = float64(goodTokens) / res.Makespan
	}
	if len(res.Requests) > 0 {
		res.SLOAttainment = float64(good) / float64(len(res.Requests))
	}
}

func (s *server) logf(format string, args ...any) {
	s.log = append(s.log, fmt.Sprintf(format, args...))
}
