package serve

import (
	"context"
	"testing"

	"repro/internal/events"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/workload"
)

// BenchmarkServe measures one full pressured serving run — the unit of a
// sweep cell — with the event log off, the sweep configuration.
func BenchmarkServe(b *testing.B) {
	cfg := replayConfig("alisa")
	cfg.CaptureLog = false
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ctx, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeCaptureLog is the same run with the event log captured —
// the determinism-suite configuration; the allocs/op delta against
// BenchmarkServe is the price of the log.
func BenchmarkServeCaptureLog(b *testing.B) {
	cfg := replayConfig("alisa")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ctx, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIterate isolates the steady-state decode loop: a uniform
// batch that admits once and then runs pure decode iterations. The
// iters/op metric says how many iterations one op spans, so
// allocs/op ÷ iters/op is the marginal allocation cost per iteration
// (zero for the loop itself; see TestServeIterationAllocsFlat).
func BenchmarkIterate(b *testing.B) {
	cfg := Config{
		Model:     model.MustByName("opt-6.7b"),
		Profile:   memsim.V100_16G(),
		Scheduler: "gpu-only",
		Trace:     workload.UniformTrace(4, 0, 128, 512),
		KVBits:    16,
		MaxBatch:  4,
	}
	ctx := context.Background()

	// Count the iterations one run performs (outside the timed region).
	iters := 0
	counted := cfg
	counted.Observer = events.Funcs{Step: func(events.Step) { iters++ }}
	if _, err := Run(ctx, counted); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ctx, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(iters), "iters/op")
}
