package serve

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/workload"
)

// replayConfig is a pressured, heterogeneous workload that exercises
// admission, offloading, and completions — the paths whose ordering a
// nondeterministic loop would scramble. The determinism suite runs with
// the event log captured: the log is the replay artifact it pins.
func replayConfig(scheduler string) Config {
	return Config{
		Model:      model.MustByName("opt-6.7b"),
		Profile:    memsim.V100_16G(),
		Scheduler:  scheduler,
		Trace:      workload.PoissonTrace(20, 3.0, 42),
		KVSparsity: 0.8,
		KVBits:     8,
		MaxBatch:   8,
		CaptureLog: true,
	}
}

// resultFingerprint flattens everything the replay contract pins: the
// full event log plus the aggregate metrics.
func resultFingerprint(t *testing.T, res *Result) string {
	t.Helper()
	fp := res.RenderEventLog()
	fp += res.Scheduler
	for _, r := range res.Requests {
		fp += "|" + r.String()
	}
	return fp
}

// TestServeReplayDeterminism runs the same (seed, trace, config) twice per
// scheduler and across GOMAXPROCS settings: the event log and metrics must
// be byte-identical — the serving analogue of the oracle's
// EvaluateSequential pinning.
func TestServeReplayDeterminism(t *testing.T) {
	for _, name := range []string{"alisa", "vllm", "hf-accelerate"} {
		t.Run(name, func(t *testing.T) {
			cfg := replayConfig(name)
			first, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("run 1: %v", err)
			}
			want := resultFingerprint(t, first)

			// Re-run in-process, then under different GOMAXPROCS values:
			// the loop is single-goroutine by design and must not observe
			// the scheduler's parallelism at all.
			prev := runtime.GOMAXPROCS(0)
			defer runtime.GOMAXPROCS(prev)
			for _, procs := range []int{0, 1, 2, runtime.NumCPU()} {
				if procs > 0 {
					runtime.GOMAXPROCS(procs)
				}
				res, err := Run(context.Background(), cfg)
				if err != nil {
					t.Fatalf("replay at GOMAXPROCS=%d: %v", procs, err)
				}
				if got := resultFingerprint(t, res); got != want {
					t.Fatalf("replay diverged at GOMAXPROCS=%d:\nfirst difference in fingerprints of %d vs %d bytes",
						procs, len(want), len(got))
				}
			}

			// Metric-level pinning: identical floats, not just close ones.
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("run 3: %v", err)
			}
			if res.Throughput != first.Throughput || res.Goodput != first.Goodput ||
				res.TTFT != first.TTFT || res.TPOT != first.TPOT || res.E2E != first.E2E ||
				res.Preemptions != first.Preemptions || res.MeanBatch != first.MeanBatch {
				t.Fatalf("aggregate metrics drifted between identical runs")
			}
		})
	}
}

// TestServeEventLogShape sanity-checks the pinned artifact itself: one
// admit and one finish per request (plus preemption re-admissions), all
// timestamped in nondecreasing order.
func TestServeEventLogShape(t *testing.T) {
	res, err := Run(context.Background(), replayConfig("alisa"))
	if err != nil {
		t.Fatal(err)
	}
	admits, finishes, preempts := 0, 0, 0
	for _, e := range res.EventLog {
		switch {
		case strings.Contains(e, " admit "):
			admits++
		case strings.Contains(e, " preempt "):
			preempts++
		case strings.Contains(e, " finish "):
			finishes++
		default:
			t.Errorf("unclassified event %q", e)
		}
	}
	n := len(res.Requests)
	if finishes != n {
		t.Errorf("finish events %d != requests %d", finishes, n)
	}
	if admits != n+preempts {
		t.Errorf("admit events %d != requests %d + preemptions %d", admits, n, preempts)
	}
	if preempts != res.Preemptions {
		t.Errorf("preempt events %d != reported %d", preempts, res.Preemptions)
	}
}
