package serve

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/workload"
)

// scaleStreamConfig is the scale-mode streaming workload: the cheapest
// scheduler and small shapes, so the benchmark measures the loop's own
// per-request cost, not the cost model's.
func scaleStreamConfig() Config {
	return Config{
		Model:        model.MustByName("opt-6.7b"),
		Profile:      memsim.V100_16G(),
		Scheduler:    "gpu-only",
		KVBits:       16,
		MaxBatch:     8,
		ExactMetrics: -1,
	}
}

// runPacedStream drives requests [start, total) through the loop with a
// bounded live backlog: top the queue up to liveCap, advance until it
// half-drains, repeat — the open-loop client a scale run models, and the
// pacing that keeps every resource O(in-flight).
func runPacedStream(tb testing.TB, l *Loop, start, total, liveCap int) {
	tb.Helper()
	ctx := context.Background()
	next := start
	for next < total {
		for next < total && l.Pending()+l.Active() < liveCap {
			if err := l.Inject(workload.Request{ID: next, Arrival: l.Clock(), Input: 32, Output: 4}); err != nil {
				tb.Fatal(err)
			}
			next++
		}
		for l.Pending()+l.Active() > liveCap/2 {
			if _, err := l.Advance(ctx); err != nil {
				tb.Fatal(err)
			}
		}
	}
}

// benchRequests returns the request count for BenchmarkServeMillion:
// 10⁶ by default, overridable through SERVE_BENCH_REQUESTS (the CI smoke
// runs ~10⁵ to bound wall clock; the acceptance run uses the default).
func benchRequests(tb testing.TB) int {
	if s := os.Getenv("SERVE_BENCH_REQUESTS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			tb.Fatalf("bad SERVE_BENCH_REQUESTS %q", s)
		}
		return n
	}
	return 1_000_000
}

// BenchmarkServeMillion streams a million requests through a scale-mode
// loop under paced injection and reports the steady-state allocation
// rate per request — the headline number of the O(in-flight) rebuild.
// Past warm-up the loop itself allocates nothing per request (records,
// queue slots, sequence state, and digests all recycle); what remains is
// exactly one small allocation per admission, the fresh policy instance
// the scheduler contract requires ("every admission instantiates a
// fresh scheduler"), so allocs/req reads ~1.0 with O(1) bytes behind it.
func BenchmarkServeMillion(b *testing.B) {
	total := benchRequests(b)
	const liveCap = 256
	warm := 4096
	if warm > total/2 {
		warm = total / 2
	}
	for i := 0; i < b.N; i++ {
		l, err := NewLoop(scaleStreamConfig())
		if err != nil {
			b.Fatal(err)
		}
		runPacedStream(b, l, 0, warm, liveCap)
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		runPacedStream(b, l, warm, total, liveCap)
		runtime.ReadMemStats(&m1)
		if err := l.Drain(context.Background()); err != nil {
			b.Fatal(err)
		}
		res := l.Finalize()
		if res.Completed != total {
			b.Fatalf("completed %d of %d", res.Completed, total)
		}
		b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(total-warm), "allocs/req")
		b.ReportMetric(float64(m1.HeapAlloc)/(1<<20), "heapMB")
	}
}

// TestServeMemoryTracksInFlight is the heap-growth guard of the scale
// rebuild: retained memory after a paced scale-mode stream must track
// the in-flight cap, not the number of requests served — a 5× longer
// stream at the same backlog may not retain measurably more. A per-
// request retention bug (records, queue slots, request list) of even
// ~50 bytes would show up as multiple MiB across the 32k-request gap;
// the guard allows 2 MiB of measurement noise.
func TestServeMemoryTracksInFlight(t *testing.T) {
	const liveCap = 64
	retained := func(total int) int64 {
		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		l, err := NewLoop(scaleStreamConfig())
		if err != nil {
			t.Fatal(err)
		}
		runPacedStream(t, l, 0, total, liveCap)
		if err := l.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		if res := l.Finalize(); res.Completed != total {
			t.Fatalf("completed %d of %d", res.Completed, total)
		}
		runtime.GC()
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		heap := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
		runtime.KeepAlive(l)
		return heap
	}

	retained(2048) // warm pools and lazily-built runtime state
	small := retained(8192)
	large := retained(40960)
	growth := large - small
	t.Logf("retained: %d B after 8192 requests, %d B after 40960 (growth %d B)", small, large, growth)
	if growth > 2<<20 {
		t.Errorf("retained heap grew %d bytes across a 5× longer stream at the same in-flight cap; memory is not O(in-flight)", growth)
	}
}
