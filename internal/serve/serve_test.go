package serve

import (
	"context"
	"strings"
	"testing"

	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/workload"
)

// servable lists every scheduler the serving loop supports.
var servable = []string{"alisa", "flexgen", "vllm", "hf-accelerate", "gpu-only", "no-cache"}

// lightConfig is a low-pressure serving config every scheduler can finish.
func lightConfig(scheduler string) Config {
	return Config{
		Model:     model.MustByName("opt-6.7b"),
		Profile:   memsim.V100_16G(),
		Scheduler: scheduler,
		Trace:     workload.UniformTrace(6, 0.5, 96, 48),
		KVBits:    16,
		MaxBatch:  4,
	}
}

func TestServeCompletesAllSchedulers(t *testing.T) {
	for _, name := range servable {
		t.Run(name, func(t *testing.T) {
			res, err := Run(context.Background(), lightConfig(name))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(res.Requests) != 6 {
				t.Fatalf("completed %d of 6 requests", len(res.Requests))
			}
			for _, r := range res.Requests {
				if r.FirstToken <= r.Arrival {
					t.Errorf("r%d: first token %.6f not after arrival %.6f", r.ID, r.FirstToken, r.Arrival)
				}
				if r.Finished <= r.FirstToken {
					t.Errorf("r%d: finished %.6f not after first token %.6f", r.ID, r.Finished, r.FirstToken)
				}
			}
			if res.Throughput <= 0 {
				t.Errorf("throughput %v not positive", res.Throughput)
			}
			if res.TTFT.P99 < res.TTFT.P50 || res.TPOT.P99 < res.TPOT.P50 {
				t.Errorf("percentiles not monotone: TTFT %+v TPOT %+v", res.TTFT, res.TPOT)
			}
			if res.MeanBatch <= 0 || res.MeanBatch > 4 {
				t.Errorf("mean batch %v outside (0,4]", res.MeanBatch)
			}
		})
	}
}

func TestServeHeterogeneousPoisson(t *testing.T) {
	for _, name := range []string{"alisa", "vllm", "hf-accelerate"} {
		t.Run(name, func(t *testing.T) {
			cfg := Config{
				Model:      model.MustByName("opt-6.7b"),
				Profile:    memsim.V100_16G(),
				Scheduler:  name,
				Trace:      workload.PoissonTrace(24, 2.0, 11),
				KVBits:     16,
				MaxBatch:   8,
				KVSparsity: 0,
			}
			if name == "alisa" {
				cfg.KVSparsity = 0.8
				cfg.KVBits = 8
			}
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(res.Requests) != 24 {
				t.Fatalf("completed %d of 24", len(res.Requests))
			}
			if res.Makespan <= 0 {
				t.Fatalf("makespan %v", res.Makespan)
			}
		})
	}
}

// TestServeAlisaBeatsHFAccelerateGoodput pins the acceptance criterion: at
// a memory-pressured operating point (OPT-6.7B on a V100-16G under Poisson
// load, where the GPU cannot hold the full batch's dense KV), ALISA's
// sparse, mostly-GPU-resident caching delivers higher goodput than the
// whole-KV-offload baseline, which streams every attended token across
// PCIe at every step.
func TestServeAlisaBeatsHFAccelerateGoodput(t *testing.T) {
	trace := workload.PoissonTrace(32, 3.0, 5)
	base := Config{
		Model:    model.MustByName("opt-6.7b"),
		Profile:  memsim.V100_16G(),
		Trace:    trace,
		MaxBatch: 12,
	}

	alisa := base
	alisa.Scheduler = "alisa"
	alisa.KVSparsity = 0.8
	alisa.KVBits = 8
	ra, err := Run(context.Background(), alisa)
	if err != nil {
		t.Fatalf("alisa: %v", err)
	}

	hf := base
	hf.Scheduler = "hf-accelerate"
	hf.KVBits = 16
	rh, err := Run(context.Background(), hf)
	if err != nil {
		t.Fatalf("hf-accelerate: %v", err)
	}

	if ra.Goodput <= rh.Goodput {
		t.Fatalf("alisa goodput %.2f tok/s not above hf-accelerate %.2f tok/s\nalisa: TTFT %+v TPOT %+v\nhf: TTFT %+v TPOT %+v",
			ra.Goodput, rh.Goodput, ra.TTFT, ra.TPOT, rh.TTFT, rh.TPOT)
	}
	if ra.Throughput <= rh.Throughput {
		t.Errorf("alisa throughput %.2f not above hf-accelerate %.2f", ra.Throughput, rh.Throughput)
	}
}

// TestServePreemptionRecovers forces GPU pressure with a policy that
// cannot offload: preempted requests must restart and still complete, and
// the preemption must appear in both the records and the event log.
func TestServePreemptionRecovers(t *testing.T) {
	cfg := Config{
		Model:     model.MustByName("opt-6.7b"),
		Profile:   memsim.V100_16G(),
		Scheduler: "gpu-only",
		// Four long sequences whose dense KV cannot coexist in the
		// ~1.8 GB of GPU headroom left next to the 6.7B weights.
		Trace:      workload.UniformTrace(4, 0.05, 1024, 512),
		KVBits:     16,
		MaxBatch:   4,
		CaptureLog: true,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Preemptions == 0 {
		t.Fatalf("expected preemptions under forced GPU pressure, got none (peak GPU %d)", res.PeakGPU)
	}
	total := 0
	for _, r := range res.Requests {
		total += r.Preemptions
		if r.Finished <= 0 {
			t.Errorf("r%d never finished", r.ID)
		}
	}
	if total != res.Preemptions {
		t.Errorf("per-request preemptions %d != total %d", total, res.Preemptions)
	}
	found := false
	for _, e := range res.EventLog {
		if strings.Contains(e, "preempt") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no preempt event in log of %d entries", len(res.EventLog))
	}
}

// TestServeValidate exercises the config error paths.
func TestServeValidate(t *testing.T) {
	good := lightConfig("alisa").withDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(Config) Config{
		func(c Config) Config { c.Scheduler = "deepspeed-zero"; return c },
		func(c Config) Config { c.Scheduler = "nope"; return c },
		func(c Config) Config { c.KVSparsity = 1.0; return c },
		func(c Config) Config { c.KVBits = 7; return c },
		func(c Config) Config { c.Trace = nil; return c },
		func(c Config) Config {
			c.Trace = workload.Trace{{ID: 0, Input: 4096, Output: 4096}}
			return c
		},
	}
	for i, mutate := range bad {
		if err := mutate(good).Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
