package serve

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/workload"
)

// convTrace is the shared multi-turn workload of the prefix-cache tests:
// interleaved conversations whose turns replay growing histories — the
// regime the cache is built for.
func convTrace(t testing.TB) workload.Trace {
	t.Helper()
	tr, err := workload.NewConversationTrace(6, 8, 4.0, 2048, 21)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// prefixConfig is the cache-on baseline config of these tests. The 32G
// card leaves the cache a budget (a quarter of post-static headroom)
// that actually holds the working set of shared histories; on a 16G
// card next to 6.7B weights the cache thrashes, which the budget-
// pressure tests cover separately.
func prefixConfig(scheduler string, tr workload.Trace) Config {
	return Config{
		Model:       model.MustByName("opt-6.7b"),
		Profile:     memsim.V100_32G(),
		Scheduler:   scheduler,
		Trace:       tr,
		KVBits:      16,
		MaxBatch:    8,
		PrefixBlock: 16,
	}
}

// stripTokens returns the trace with every request's token IDs dropped —
// same shapes, same timeline, anonymous prompts.
func stripTokens(tr workload.Trace) workload.Trace {
	out := make(workload.Trace, len(tr))
	for i, r := range tr {
		r.Tokens = nil
		out[i] = r
	}
	return out
}

// TestPrefixCacheOffBitIdentical pins the compatibility contract: with
// the cache off (PrefixBlock 0), a token-carrying trace and the same
// trace with tokens stripped produce byte-identical results — token IDs
// are inert until the cache is enabled.
func TestPrefixCacheOffBitIdentical(t *testing.T) {
	tr := convTrace(t)
	cfg := prefixConfig("alisa", tr)
	cfg.PrefixBlock = 0
	cfg.CaptureLog = true
	withTokens, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = stripTokens(tr)
	without, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withTokens, without) {
		t.Fatalf("cache-off run depends on token IDs:\nwith:    %+v\nwithout: %+v", withTokens, without)
	}
	if withTokens.PrefixHits != 0 || withTokens.PrefixCachedTokens != 0 || withTokens.PrefixSharedBytes != 0 {
		t.Fatalf("cache-off run reported prefix activity: %+v", withTokens)
	}
}

// TestPrefixCacheReducesPrefill pins the acceptance criterion: on the
// multi-turn conversation workload the cache cuts prefilled tokens by at
// least 2x and improves TTFT and goodput.
func TestPrefixCacheReducesPrefill(t *testing.T) {
	tr := convTrace(t)
	off := prefixConfig("alisa", tr)
	off.PrefixBlock = 0
	roff, err := Run(context.Background(), off)
	if err != nil {
		t.Fatal(err)
	}
	ron, err := Run(context.Background(), prefixConfig("alisa", tr))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(ron.Requests), len(tr); got != want {
		t.Fatalf("cache-on run completed %d of %d", got, want)
	}
	if ron.PrefixHits == 0 || ron.PrefixCachedTokens == 0 {
		t.Fatalf("no cache hits on the conversation workload: %+v", ron)
	}
	if 2*ron.PrefillTokens > roff.PrefillTokens {
		t.Errorf("prefill reduction under 2x: off=%d on=%d tokens", roff.PrefillTokens, ron.PrefillTokens)
	}
	if ron.TTFT.Mean >= roff.TTFT.Mean {
		t.Errorf("mean TTFT did not improve: off=%.6f on=%.6f", roff.TTFT.Mean, ron.TTFT.Mean)
	}
	if ron.Goodput <= roff.Goodput {
		t.Errorf("goodput did not improve: off=%.3f on=%.3f tok/s", roff.Goodput, ron.Goodput)
	}
	if ron.PrefixSharedBytes <= 0 {
		t.Errorf("no shared bytes recorded: %d", ron.PrefixSharedBytes)
	}
}

// TestPrefixFullHitExactAccounting replays one prompt twice: the second
// admission must hit everything except the final block (a sequence's
// first logits are always computed), with the counters exact.
func TestPrefixFullHitExactAccounting(t *testing.T) {
	gen := workload.NewGenerator(512, 3)
	tok := gen.Prompt(96)
	tr := workload.Trace{
		{ID: 0, Arrival: 0, Input: 96, Output: 16, Tokens: tok},
		{ID: 1, Arrival: 30, Input: 96, Output: 16, Tokens: append([]int(nil), tok...)},
	}
	res, err := Run(context.Background(), prefixConfig("alisa", tr))
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefixHits != 1 || res.PrefixMisses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", res.PrefixHits, res.PrefixMisses)
	}
	// 96 tokens = 6 blocks of 16; the full 96-token match is capped to 80
	// so the last block prefills.
	if res.PrefixCachedTokens != 80 {
		t.Fatalf("cached tokens %d, want 80", res.PrefixCachedTokens)
	}
	if res.PrefillTokens != 96+16 {
		t.Fatalf("prefilled tokens %d, want %d", res.PrefillTokens, 96+16)
	}
	if r0, r1 := res.Requests[0], res.Requests[1]; r1.FirstToken-r1.Admitted >= r0.FirstToken-r0.Admitted {
		t.Fatalf("hit admission not faster: miss prefill %.9f, hit prefill %.9f",
			r0.FirstToken-r0.Admitted, r1.FirstToken-r1.Admitted)
	}
}

// TestPrefixLeakFree drains a cache-on conversation run for every
// servable scheduler: Drain's end-of-run check verifies both the memsim
// accounting (static + cache residency, to the byte) and the cache's own
// invariants with every lease released.
func TestPrefixLeakFree(t *testing.T) {
	for _, name := range servable {
		t.Run(name, func(t *testing.T) {
			cfg := prefixConfig(name, convTrace(t))
			cfg.MaxBatch = 4
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(res.Requests) != len(cfg.Trace) {
				t.Fatalf("completed %d of %d", len(res.Requests), len(cfg.Trace))
			}
		})
	}
}

// TestPrefixLeakFreeUnderPreemption adds memory pressure: long shared-
// prefix sequences on a policy that cannot offload, so sequences are
// preempted mid-flight with leases held — the release paths that only
// fire under pressure.
func TestPrefixLeakFreeUnderPreemption(t *testing.T) {
	gen := workload.NewGenerator(512, 9)
	shared := gen.Prompt(512)
	tr := make(workload.Trace, 4)
	for i := range tr {
		tail := gen.Prompt(512)
		tokens := make([]int, 0, 1024)
		tokens = append(tokens, shared...)
		tokens = append(tokens, tail...)
		tr[i] = workload.Request{ID: i, Arrival: float64(i) * 0.05, Input: 1024, Output: 512, Tokens: tokens}
	}
	cfg := prefixConfig("gpu-only", tr)
	// The 16G card's ~1.8 GB of post-weights headroom cannot hold four
	// dense 1536-token sequences: preemption is guaranteed.
	cfg.Profile = memsim.V100_16G()
	cfg.MaxBatch = 4
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Preemptions == 0 {
		t.Fatalf("expected preemptions under forced GPU pressure (peak GPU %d)", res.PeakGPU)
	}
	for _, r := range res.Requests {
		if r.Finished <= 0 {
			t.Errorf("r%d never finished", r.ID)
		}
	}
}

// TestPrefixForkDeterminism extends the fork contract to cache-on runs:
// fork-then-advance is bit-identical to straight-line advance with
// shared refcounted blocks and leases in flight.
func TestPrefixForkDeterminism(t *testing.T) {
	mk := func() Config {
		cfg := prefixConfig("alisa", convTrace(t))
		cfg.CaptureLog = true
		return cfg
	}
	sl, err := NewLoop(mk())
	if err != nil {
		t.Fatal(err)
	}
	straight := drainResult(t, sl)
	if straight.PrefixHits == 0 {
		t.Fatal("workload produced no cache hits; fork test would not exercise lease cloning")
	}

	sawLease := false
	for _, k := range []int{1, 6, 14} {
		l, err := NewLoop(mk())
		if err != nil {
			t.Fatal(err)
		}
		advanceTurns(t, l, k)
		for _, st := range l.s.active {
			if st.leaseLen > 0 {
				sawLease = true
			}
		}
		sn, err := l.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		fork, err := sn.Fork(nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := drainResult(t, fork); !reflect.DeepEqual(got, straight) {
			t.Errorf("turn %d: cache-on fork diverged from straight-line:\nfork:     %+v\nstraight: %+v", k, got, straight)
		}
		if got := drainResult(t, l); !reflect.DeepEqual(got, straight) {
			t.Errorf("turn %d: snapshot perturbed the original cache-on run", k)
		}
	}
	if !sawLease {
		t.Fatal("no snapshot point caught a held lease; lease cloning was never exercised")
	}
}

// BenchmarkPrefixServe measures a full cache-on conversation run —
// radix probes, COW inserts, lease churn, and eviction included.
func BenchmarkPrefixServe(b *testing.B) {
	tr := convTrace(b)
	cfg := prefixConfig("alisa", tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
