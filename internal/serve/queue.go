package serve

import "repro/internal/workload"

// queuedReq is one wait-queue entry: the request plus its admission
// ticket. seq is assigned once, at first insertion, and survives
// preemption requeues, so the queue key (Arrival, seq) reproduces the
// FCFS contract exactly: arrival order first, insertion order across
// equal arrivals — and a preempted request (older ticket than anything
// injected since) returns to the head of its arrival class.
type queuedReq struct {
	req workload.Request
	seq uint64
}

// reqQueue is the arrival-keyed indexed wait queue: a binary min-heap on
// (Arrival, seq). Where the previous insertion-sorted slice paid O(n)
// per out-of-order injection and retained every consumed slot until the
// run ended, the heap pays O(log n) per operation and frees each slot on
// pop, so the queue's footprint is the live backlog — the indexed-queue
// half of the O(in-flight) memory contract.
//
// Pushes are allocation-free once the backing array is warm, which the
// steady-state allocs guards rely on; in particular a preemption requeue
// (push of a just-popped request) never allocates.
type reqQueue struct {
	h       []queuedReq
	nextSeq uint64
}

// seed initializes the queue from an arrival-ordered trace in O(n): a
// nondecreasing array is already a valid min-heap, and trace validation
// guarantees arrival order.
func (q *reqQueue) seed(tr workload.Trace) {
	q.h = make([]queuedReq, len(tr))
	for i, r := range tr {
		q.h[i] = queuedReq{req: r, seq: uint64(i)}
	}
	q.nextSeq = uint64(len(tr))
}

// Len returns the number of waiting requests.
func (q *reqQueue) Len() int { return len(q.h) }

// Peek returns the earliest-keyed waiting request. It must not be called
// on an empty queue.
func (q *reqQueue) Peek() workload.Request { return q.h[0].req }

// Push enqueues a new request under a fresh ticket.
//
//alisa:hotpath
func (q *reqQueue) Push(req workload.Request) {
	q.push(queuedReq{req: req, seq: q.nextSeq})
	q.nextSeq++
}

// Requeue re-enqueues a previously popped request under its original
// ticket — the preemption-requeue path, and the step-back of a failed
// admission probe. The old ticket restores the request's FCFS position.
//
//alisa:hotpath
func (q *reqQueue) Requeue(req workload.Request, seq uint64) {
	q.push(queuedReq{req: req, seq: seq})
}

// Pop removes and returns the earliest-keyed waiting request and its
// ticket. It must not be called on an empty queue.
//
//alisa:hotpath
func (q *reqQueue) Pop() (workload.Request, uint64) {
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = queuedReq{} // release the request for GC
	q.h = q.h[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return top.req, top.seq
}

// Clone returns an independent deep copy — the wait-queue half of
// Loop.Snapshot.
func (q *reqQueue) Clone() reqQueue {
	return reqQueue{h: append([]queuedReq(nil), q.h...), nextSeq: q.nextSeq}
}

func (q *reqQueue) less(a, b queuedReq) bool {
	if a.req.Arrival != b.req.Arrival {
		return a.req.Arrival < b.req.Arrival
	}
	return a.seq < b.seq
}

//alisa:hotpath
func (q *reqQueue) push(e queuedReq) {
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.h[i], q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

//alisa:hotpath
func (q *reqQueue) siftDown(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.less(q.h[l], q.h[small]) {
			small = l
		}
		if r < n && q.less(q.h[r], q.h[small]) {
			small = r
		}
		if small == i {
			return
		}
		q.h[i], q.h[small] = q.h[small], q.h[i]
		i = small
	}
}
