package prefix

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

const (
	testBlock      = 4
	testBlockBytes = 64
	bigBudget      = int64(1) << 40
)

// naiveIndex is the O(n²) reference: it remembers every inserted
// (block-aligned) sequence and answers probes by scanning them all.
// The trie stores exactly the union of inserted prefixes, so the
// longest block-aligned common prefix with any inserted sequence is
// the ground truth for Probe.
type naiveIndex struct {
	bs   int
	seqs [][]int
}

func (n *naiveIndex) insert(tokens []int) {
	aligned := len(tokens) - len(tokens)%n.bs
	n.seqs = append(n.seqs, append([]int(nil), tokens[:aligned]...))
}

func (n *naiveIndex) probe(query []int) int {
	best := 0
	for _, s := range n.seqs {
		l := 0
		for l < len(query) && l < len(s) && query[l] == s[l] {
			l++
		}
		l -= l % n.bs
		if l > best {
			best = l
		}
	}
	return best
}

// genSeq draws a random token sequence, half the time branching off a
// prefix of an already-generated one so the trie sees real sharing,
// divergence, and mid-span splits.
func genSeq(rng *rand.Rand, pool [][]int) []int {
	n := 1 + rng.Intn(40)
	seq := make([]int, 0, n+40)
	if len(pool) > 0 && rng.Intn(2) == 0 {
		base := pool[rng.Intn(len(pool))]
		if len(base) > 0 {
			k := rng.Intn(len(base) + 1)
			seq = append(seq, base[:k]...)
		}
	}
	for len(seq) < n {
		seq = append(seq, rng.Intn(3))
	}
	return seq
}

func TestProbeMatchesNaiveReference(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			x := NewIndex(testBlock, testBlockBytes, bigBudget)
			ref := &naiveIndex{bs: testBlock}
			var pool [][]int
			type leaseRec struct {
				tokens []int
				n      int
			}
			var leases []leaseRec
			for op := 0; op < 600; op++ {
				seq := genSeq(rng, pool)
				pool = append(pool, seq)
				switch rng.Intn(4) {
				case 0, 1: // insert (unbounded budget: never truncates)
					x.Insert(seq, bigBudget, float64(op))
					ref.insert(seq)
				case 2: // probe
					if got, want := x.Probe(seq), ref.probe(seq); got != want {
						t.Fatalf("op %d: Probe=%d, naive reference=%d (seq %v)", op, got, want, seq)
					}
				case 3: // lease/release churn — must never change probe results
					if len(leases) > 0 && rng.Intn(2) == 0 {
						l := leases[len(leases)-1]
						leases = leases[:len(leases)-1]
						x.Release(l.tokens[:l.n], float64(op))
					} else {
						n := x.Lease(seq)
						leases = append(leases, leaseRec{seq, n})
					}
				}
				if err := x.CheckInvariants(false); err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
			}
			for _, l := range leases {
				x.Release(l.tokens[:l.n], 1e9)
			}
			if err := x.CheckInvariants(true); err != nil {
				t.Fatalf("after releasing all leases: %v", err)
			}
			// Every insert was full-length, so every stored prefix must probe
			// back completely.
			for _, s := range ref.seqs {
				if got := x.Probe(s); got != len(s) {
					t.Fatalf("inserted sequence probes %d of %d tokens", got, len(s))
				}
			}
		})
	}
}

func TestEvictionRespectsBudgetAndLRU(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	budget := int64(8) * testBlockBytes
	x := NewIndex(testBlock, testBlockBytes, budget)
	ref := &naiveIndex{bs: testBlock}
	var pool [][]int
	for op := 0; op < 500; op++ {
		seq := genSeq(rng, pool)
		pool = append(pool, seq)
		switch rng.Intn(3) {
		case 0, 1:
			x.Insert(seq, bigBudget, float64(op))
			ref.insert(seq)
		case 2:
			x.EvictOne()
		}
		if x.ResidentBytes() > budget {
			t.Fatalf("op %d: resident %d exceeds budget %d", op, x.ResidentBytes(), budget)
		}
		// Eviction and truncation only ever remove entries, so the trie can
		// never claim a longer match than the naive upper bound.
		if got, bound := x.Probe(seq), ref.probe(seq); got > bound {
			t.Fatalf("op %d: Probe=%d exceeds naive upper bound %d", op, got, bound)
		}
		if err := x.CheckInvariants(true); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
	}
}

func TestLRUEvictsOldestFirst(t *testing.T) {
	t.Parallel()
	x := NewIndex(testBlock, testBlockBytes, bigBudget)
	// Three disjoint single-block entries inserted at times 1, 2, 3.
	a := []int{10, 10, 10, 10}
	b := []int{20, 20, 20, 20}
	c := []int{30, 30, 30, 30}
	x.Insert(a, bigBudget, 1)
	x.Insert(b, bigBudget, 2)
	x.Insert(c, bigBudget, 3)
	// Touch a (lease+release at t=4): it becomes the most recent.
	x.Release(a[:x.Lease(a)], 4)
	if freed := x.EvictOne(); freed != testBlockBytes {
		t.Fatalf("evict freed %d bytes, want %d", freed, testBlockBytes)
	}
	if x.Probe(b) != 0 {
		t.Fatal("LRU eviction should have removed b (oldest untouched)")
	}
	x.EvictOne()
	if x.Probe(c) != 0 {
		t.Fatal("second eviction should have removed c")
	}
	if x.Probe(a) != len(a) {
		t.Fatal("a was touched last and must survive two evictions")
	}
	if err := x.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

func TestLeasedPathIsPinned(t *testing.T) {
	t.Parallel()
	x := NewIndex(testBlock, testBlockBytes, bigBudget)
	seq := []int{1, 1, 1, 1, 2, 2, 2, 2}
	x.Insert(seq, bigBudget, 1)
	n := x.Lease(seq)
	if n != len(seq) {
		t.Fatalf("leased %d of %d tokens", n, len(seq))
	}
	for i := 0; i < 10; i++ {
		if freed := x.EvictOne(); freed != 0 {
			t.Fatalf("evicted %d bytes from a fully leased trie", freed)
		}
	}
	if x.Probe(seq) != len(seq) {
		t.Fatal("leased path must survive eviction pressure")
	}
	x.Release(seq[:n], 2)
	total := int64(0)
	for {
		freed := x.EvictOne()
		if freed == 0 {
			break
		}
		total += freed
	}
	if total != int64(len(seq)/testBlock)*testBlockBytes {
		t.Fatalf("released path freed %d bytes, want all %d", total, int64(len(seq)/testBlock)*testBlockBytes)
	}
	if x.ResidentBytes() != 0 {
		t.Fatalf("resident %d after full eviction", x.ResidentBytes())
	}
	if err := x.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

func TestCOWSplitPreservesBytesAndRefs(t *testing.T) {
	t.Parallel()
	x := NewIndex(testBlock, testBlockBytes, bigBudget)
	// One 4-block span, fully leased.
	a := []int{1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4}
	x.Insert(a, bigBudget, 1)
	leaseA := x.Lease(a)
	before := x.ResidentBytes()

	// Diverge after 2 blocks: forces a copy-on-write split of the leased
	// span. The split itself must add no bytes; only b's unique suffix
	// (2 blocks) is new.
	b := []int{1, 1, 1, 1, 2, 2, 2, 2, 9, 9, 9, 9, 8, 8, 8, 8}
	added, freed := x.Insert(b, bigBudget, 2)
	if want := int64(2) * testBlockBytes; added != want || freed != 0 {
		t.Fatalf("divergent insert added=%d freed=%d, want added=%d freed=0", added, freed, want)
	}
	if x.ResidentBytes() != before+2*testBlockBytes {
		t.Fatalf("resident %d, want %d", x.ResidentBytes(), before+2*testBlockBytes)
	}
	if got := x.Probe(a); got != len(a) {
		t.Fatalf("split broke a's match: %d of %d", got, len(a))
	}
	if got := x.Probe(b); got != len(b) {
		t.Fatalf("b matches %d of %d after insert", got, len(b))
	}
	if err := x.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}

	// a's lease was split across two nodes; releasing the original leased
	// length must drop every refcount back to zero.
	leaseB := x.Lease(b)
	x.Release(a[:leaseA], 3)
	x.Release(b[:leaseB], 4)
	if err := x.CheckInvariants(true); err != nil {
		t.Fatalf("refcounts after split + release: %v", err)
	}
}

func TestInsertTruncatesAtBudget(t *testing.T) {
	t.Parallel()
	budget := int64(2) * testBlockBytes
	x := NewIndex(testBlock, testBlockBytes, budget)
	seq := []int{1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4}
	added, _ := x.Insert(seq, bigBudget, 1)
	if added != budget {
		t.Fatalf("added %d bytes into a %d budget", added, budget)
	}
	if got := x.Probe(seq); got != 2*testBlock {
		t.Fatalf("truncated insert probes %d tokens, want %d", got, 2*testBlock)
	}
	// Headroom binds tighter than budget.
	y := NewIndex(testBlock, testBlockBytes, bigBudget)
	added, _ = y.Insert(seq, testBlockBytes, 1)
	if added != testBlockBytes {
		t.Fatalf("added %d bytes into %d headroom", added, testBlockBytes)
	}
	if err := x.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	x := NewIndex(testBlock, testBlockBytes, 16*testBlockBytes)
	var pool [][]int
	for op := 0; op < 200; op++ {
		seq := genSeq(rng, pool)
		pool = append(pool, seq)
		x.Insert(seq, bigBudget, float64(op))
	}
	lease := pool[0]
	leaseN := x.Lease(lease)

	c := x.Clone()
	if c.ResidentBytes() != x.ResidentBytes() {
		t.Fatalf("clone resident %d, original %d", c.ResidentBytes(), x.ResidentBytes())
	}
	snapshot := make([]int, len(pool))
	for i, s := range pool {
		snapshot[i] = c.Probe(s)
	}

	// Mutate the original heavily; the clone must not move.
	for op := 0; op < 200; op++ {
		seq := genSeq(rng, pool)
		x.Insert(seq, bigBudget, float64(1000+op))
		x.EvictOne()
	}
	x.Release(lease[:leaseN], 1e6)
	for i, s := range pool {
		if got := c.Probe(s); got != snapshot[i] {
			t.Fatalf("clone drifted: probe(pool[%d])=%d, snapshot %d", i, got, snapshot[i])
		}
	}
	if err := c.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}

	// Two clones of the same index must evict in the same order — the
	// clone preserves the LRU list, not just the structure.
	c2 := x.Clone()
	c3 := x.Clone()
	for {
		f2, f3 := c2.EvictOne(), c3.EvictOne()
		if f2 != f3 {
			t.Fatalf("clones diverged during eviction: %d vs %d", f2, f3)
		}
		if f2 == 0 {
			break
		}
	}
}

// TestDeterministicAcrossGoroutines drives four independent indices
// through the identical op sequence on four goroutines (the suite runs
// under -race with GOMAXPROCS pinned to 4) and requires bit-identical
// observable traces.
func TestDeterministicAcrossGoroutines(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	run := func() string {
		rng := rand.New(rand.NewSource(99))
		x := NewIndex(testBlock, testBlockBytes, 32*testBlockBytes)
		var pool [][]int
		var trace []byte
		for op := 0; op < 400; op++ {
			seq := genSeq(rng, pool)
			pool = append(pool, seq)
			switch rng.Intn(4) {
			case 0, 1:
				a, f := x.Insert(seq, bigBudget, float64(op))
				trace = fmt.Appendf(trace, "i%d,%d;", a, f)
			case 2:
				trace = fmt.Appendf(trace, "p%d;", x.Probe(seq))
			case 3:
				trace = fmt.Appendf(trace, "e%d;", x.EvictOne())
			}
		}
		return string(trace)
	}

	results := make([]string, 4)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = run()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d produced a different trace", i)
		}
	}
}

// TestProbeAllocFree pins the steady-state contract: probing a warm
// trie allocates nothing.
func TestProbeAllocFree(t *testing.T) {
	x, queries := warmIndex()
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		x.Probe(queries[i%len(queries)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Probe allocates %.1f allocs/op, want 0", allocs)
	}
}

// warmIndex builds a populated trie plus a query mix of hits, partial
// hits, and misses.
func warmIndex() (*Index, [][]int) {
	rng := rand.New(rand.NewSource(5))
	x := NewIndex(16, 1<<14, bigBudget)
	var pool [][]int
	for i := 0; i < 64; i++ {
		seq := make([]int, 0, 256)
		if len(pool) > 0 && i%2 == 0 {
			base := pool[rng.Intn(len(pool))]
			seq = append(seq, base[:rng.Intn(len(base)+1)]...)
		}
		for len(seq) < 64+rng.Intn(192) {
			seq = append(seq, rng.Intn(1000))
		}
		pool = append(pool, seq)
		x.Insert(seq, bigBudget, float64(i))
	}
	queries := make([][]int, 0, len(pool))
	for _, s := range pool {
		q := append([]int(nil), s...)
		if rng.Intn(3) == 0 && len(q) > 8 {
			q[len(q)/2] = -1 // force a partial match
		}
		queries = append(queries, q)
	}
	return x, queries
}

func BenchmarkTrieProbe(b *testing.B) {
	x, queries := warmIndex()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Probe(queries[i%len(queries)])
	}
}

func BenchmarkTrieInsertEvict(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var pool [][]int
	for i := 0; i < 256; i++ {
		pool = append(pool, genSeq(rng, pool))
	}
	x := NewIndex(testBlock, testBlockBytes, 64*testBlockBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Insert(pool[i%len(pool)], bigBudget, float64(i))
	}
}
