// Package prefix is the shared-prefix KV index of the serving layer: a
// deterministic radix trie over token-ID prefixes with block-granular
// matching, refcounted copy-on-write shared blocks, and LRU-by-virtual-
// time eviction of blocks whose refcount has dropped to zero.
//
// The index models what production engines call prefix caching (vLLM's
// automatic prefix caching, SGLang's RadixAttention): requests whose
// prompts share a leading token sequence — system prompts, conversation
// history, tool preambles — reuse the KV state of that prefix instead of
// re-prefilling it. The serving loop probes the index at admission,
// charges prefill only for the uncached suffix, and grafts the request's
// own block-aligned prefix back in so later requests can hit it.
//
// Structure. Every node holds a span of whole blocks (BlockSize tokens
// each; the root holds the empty span). Children are kept in a slice
// sorted lexicographically by their leading block and found by binary
// search — no maps anywhere, so iteration order can never leak into
// results and Clone is trivially deterministic. An insertion that
// diverges (or ends) mid-span splits the node copy-on-write: the span's
// token storage is resliced, never copied, and the split preserves the
// total block count, resident bytes, and every refcount — the invariant
// the property tests pin.
//
// Sharing and lifetime. A request that admits against the index leases
// its matched path: every fully covered node's refcount is incremented,
// and decremented again by Release when the request retires. A leased
// node is never evictable, so a shared block is always either live
// (refcount > 0) or sitting in the LRU list awaiting eviction — the
// extended end-of-run leak check walks the trie and verifies exactly
// that. Evictable nodes (refcount 0, no children) form an intrusive
// doubly-linked list ordered by last use in simulated virtual time;
// EvictOne pops the least recently used. The list order is maintained
// by the deterministic single-goroutine event loop, so eviction order
// is a pure function of the event history.
//
// The index performs no real memory management: blocks are simulated
// bytes, accounted once per resident block regardless of how many
// requests lease them. The serving loop mirrors ResidentBytes into its
// memsim.System so shared prefix KV occupies (simulated) GPU headroom
// exactly once.
package prefix

import "fmt"

// node is one radix-trie node: a span of whole blocks plus its sorted
// children. The zero ref, nil links state is an unleased leaf.
type node struct {
	// tokens is the node's span — whole blocks only; the root's is empty.
	// Splits reslice this storage, they never copy it (the copy-on-write
	// half of the COW contract: block payloads are shared, structure is
	// rewritten).
	tokens []int
	// children is sorted lexicographically by each child's leading block;
	// the radix invariant guarantees leading blocks are unique under one
	// parent.
	children []*node
	parent   *node
	// ref counts the active leases whose matched path fully covers this
	// node. A node with ref > 0 is pinned: it cannot be evicted.
	ref int
	// prev/next link the node into the evictable LRU list while it is a
	// refcount-0 leaf; inLRU tracks membership.
	prev, next *node
	inLRU      bool
	// lastUse is the virtual time of the node's last lease release or
	// insertion — diagnostic only; the intrusive list order is the policy.
	lastUse float64
}

// blocks returns the node's span length in blocks.
func (n *node) blocks(blockSize int) int { return len(n.tokens) / blockSize }

// Index is a deterministic block-granular radix trie over token-ID
// prefixes. It is single-goroutine, like the serving loop that owns it.
type Index struct {
	blockSize  int
	blockBytes int64
	// budget caps resident bytes; Insert evicts LRU refcount-0 blocks to
	// stay within it and truncates the insertion when eviction cannot
	// make room.
	budget   int64
	resident int64
	root     *node
	// lruHead is the least recently used evictable node, lruTail the most
	// recently used.
	lruHead, lruTail *node

	// hits/misses/cachedTokens are probe-outcome counters maintained by
	// the owner via CountProbe — kept here so forks carry them.
	hits, misses int
	cachedTokens int64
}

// NewIndex returns an empty index over blockSize-token blocks, each
// accounting blockBytes simulated bytes, with resident bytes capped at
// budget. All three must be positive.
func NewIndex(blockSize int, blockBytes, budget int64) *Index {
	if blockSize <= 0 {
		panic(fmt.Sprintf("prefix: block size must be positive, got %d", blockSize))
	}
	if blockBytes <= 0 {
		panic(fmt.Sprintf("prefix: block bytes must be positive, got %d", blockBytes))
	}
	if budget <= 0 {
		panic(fmt.Sprintf("prefix: byte budget must be positive, got %d", budget))
	}
	return &Index{blockSize: blockSize, blockBytes: blockBytes, budget: budget, root: &node{}}
}

// BlockSize returns the matching granularity in tokens.
func (x *Index) BlockSize() int { return x.blockSize }

// BlockBytes returns the simulated KV bytes one resident block accounts.
func (x *Index) BlockBytes() int64 { return x.blockBytes }

// Budget returns the resident-byte cap.
func (x *Index) Budget() int64 { return x.budget }

// ResidentBytes returns the simulated bytes of all resident blocks —
// each shared block accounted exactly once.
func (x *Index) ResidentBytes() int64 { return x.resident }

// Stats returns the lifetime probe counters: hits, misses, and total
// cached tokens, as recorded through CountProbe.
func (x *Index) Stats() (hits, misses int, cachedTokens int64) {
	return x.hits, x.misses, x.cachedTokens
}

// CountProbe records one admission probe outcome: cached is the matched
// token count the admission was discounted by.
func (x *Index) CountProbe(cached int) {
	if cached > 0 {
		x.hits++
		x.cachedTokens += int64(cached)
	} else {
		x.misses++
	}
}

// cmpBlock compares two blocks (slices of exactly blockSize tokens)
// lexicographically.
//
//alisa:hotpath
func cmpBlock(a, b []int) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// findChild binary-searches n's sorted children for the one whose span
// leads with block, returning its slot and whether it exists; on a miss
// the slot is the insertion point.
//
//alisa:hotpath
func (x *Index) findChild(n *node, block []int) (int, bool) {
	lo, hi := 0, len(n.children)
	for lo < hi {
		mid := (lo + hi) / 2
		switch cmpBlock(n.children[mid].tokens[:x.blockSize], block) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// matchedBlocks counts how many whole leading blocks of query the node's
// span matches.
//
//alisa:hotpath
func (x *Index) matchedBlocks(n *node, query []int) int {
	limit := len(n.tokens)
	if len(query) < limit {
		limit = len(query)
	}
	limit -= limit % x.blockSize
	m := 0
	for m < limit && n.tokens[m] == query[m] {
		m++
	}
	return m / x.blockSize
}

// Probe returns how many leading tokens of tokens are resident, in whole
// blocks. It is read-only — no recency update, no counter update — and
// allocation-free, which the steady-state probe guards pin at 0
// allocs/op.
//
//alisa:hotpath
func (x *Index) Probe(tokens []int) int {
	cur := x.root
	matched := 0
	for {
		rest := tokens[matched:]
		if len(rest) < x.blockSize {
			return matched
		}
		slot, ok := x.findChild(cur, rest[:x.blockSize])
		if !ok {
			return matched
		}
		c := cur.children[slot]
		m := x.matchedBlocks(c, rest)
		matched += m * x.blockSize
		if m < c.blocks(x.blockSize) {
			return matched
		}
		cur = c
	}
}

// Lease pins the resident path covering tokens: every node whose span is
// fully matched has its refcount incremented and leaves the evictable
// list. It returns the leased token length — the longest fully-node-
// covered resident prefix, which after an Insert of the same tokens is
// exactly the resident prefix (Insert splits nodes at the insertion
// end). The caller must Release the same leased length exactly once.
//
//alisa:hotpath
func (x *Index) Lease(tokens []int) int {
	cur := x.root
	leased := 0
	for {
		rest := tokens[leased:]
		if len(rest) < x.blockSize {
			return leased
		}
		slot, ok := x.findChild(cur, rest[:x.blockSize])
		if !ok {
			return leased
		}
		c := cur.children[slot]
		m := x.matchedBlocks(c, rest)
		if m < c.blocks(x.blockSize) {
			// Partial coverage: leasing would over-pin the span's tail and
			// break split refcount inheritance; stop at the node boundary.
			return leased
		}
		c.ref++
		if c.inLRU {
			x.lruUnlink(c)
		}
		leased += len(c.tokens)
		cur = c
	}
}

// Release undoes one Lease of tokens (the exact leased slice): refcounts
// along the fully covered path are decremented, and nodes that drop to
// refcount 0 with no children become evictable at virtual time now —
// the most recently used end of the LRU list.
//
//alisa:hotpath
func (x *Index) Release(tokens []int, now float64) {
	cur := x.root
	released := 0
	for {
		rest := tokens[released:]
		if len(rest) < x.blockSize {
			return
		}
		slot, ok := x.findChild(cur, rest[:x.blockSize])
		if !ok {
			return
		}
		c := cur.children[slot]
		m := x.matchedBlocks(c, rest)
		if m < c.blocks(x.blockSize) {
			return
		}
		if c.ref > 0 {
			c.ref--
		}
		if c.ref == 0 && len(c.children) == 0 && !c.inLRU {
			c.lastUse = now
			x.lruPushTail(c)
		}
		released += len(c.tokens)
		cur = c
	}
}

// Insert grafts the whole-block prefix of tokens into the trie, evicting
// least-recently-used refcount-0 blocks as needed to respect the byte
// budget, and creating at most headroom bytes of net growth (added −
// freed). The insertion truncates — never fails — when neither budget
// nor headroom can be satisfied. It returns the bytes of newly created
// blocks and the bytes freed by evictions; the owner mirrors both into
// its memory system. now stamps recency for any node the insertion
// makes evictable.
//
// A divergent or mid-span insertion splits the node copy-on-write:
// token storage is resliced in place and the split preserves total
// blocks, resident bytes, and every refcount.
//
//alisa:hotpath
func (x *Index) Insert(tokens []int, headroom int64, now float64) (added, freed int64) {
	aligned := len(tokens) - len(tokens)%x.blockSize
	tokens = tokens[:aligned]
	cur := x.root
	i := 0
	for i < len(tokens) {
		rest := tokens[i:]
		slot, ok := x.findChild(cur, rest[:x.blockSize])
		if !ok {
			// Divergence (or empty node): graft a new leaf with as many of
			// the remaining blocks as budget and headroom allow, evicting
			// LRU refcount-0 leaves to make room. cur is pinned for the
			// duration — unlinked from the list and refcount-bumped — so
			// room-making can neither evict it nor re-list it; its own
			// children ARE fair game, which also shifts child slots, so the
			// insertion slot is recomputed after the evictions.
			if cur.inLRU {
				x.lruUnlink(cur)
			}
			cur.ref++
			want := int64(len(rest)/x.blockSize) * x.blockBytes
			for x.afford(headroom+freed-added) < want && x.lruHead != nil {
				freed += x.evict(x.lruHead)
			}
			cur.ref--
			slot, _ = x.findChild(cur, rest[:x.blockSize])
			room := x.afford(headroom + freed - added)
			if room > want {
				room = want
			}
			nblocks := int(room / x.blockBytes)
			if nblocks == 0 {
				if cur != x.root && cur.ref == 0 && len(cur.children) == 0 && !cur.inLRU {
					cur.lastUse = now
					x.lruPushTail(cur)
				}
				return added, freed
			}
			leaf := &node{
				tokens:  rest[:nblocks*x.blockSize],
				parent:  cur,
				lastUse: now,
			}
			cur.children = append(cur.children, nil)
			copy(cur.children[slot+1:], cur.children[slot:])
			cur.children[slot] = leaf
			x.resident += int64(nblocks) * x.blockBytes
			added += int64(nblocks) * x.blockBytes
			x.lruPushTail(leaf)
			return added, freed
		}
		c := cur.children[slot]
		m := x.matchedBlocks(c, rest)
		if m < c.blocks(x.blockSize) {
			x.split(c, m)
		}
		i += m * x.blockSize
		cur = c
	}
	return added, freed
}

// afford returns the bytes the index may still grow by: the tighter of
// the budget gap and the caller-supplied headroom.
//
//alisa:hotpath
func (x *Index) afford(headroom int64) int64 {
	room := x.budget - x.resident
	if headroom < room {
		room = headroom
	}
	if room < 0 {
		return 0
	}
	return room
}

// split divides n after its first m blocks: n keeps the head, a new tail
// node inherits the rest of the span (resliced, not copied), n's
// children, and n's refcount — every lease that covered n covered all of
// it, so it covers both halves. Total blocks, resident bytes, and
// refcount-weighted coverage are preserved exactly.
//
//alisa:hotpath
func (x *Index) split(n *node, m int) {
	cut := m * x.blockSize
	tail := &node{
		tokens:   n.tokens[cut:],
		children: n.children,
		parent:   n,
		ref:      n.ref,
		lastUse:  n.lastUse,
	}
	for _, c := range tail.children {
		c.parent = tail
	}
	n.tokens = n.tokens[:cut]
	n.children = []*node{tail}
	if n.inLRU {
		// n was an evictable leaf; the tail is the leaf now. Splice it into
		// n's list position — the split changes structure, not recency.
		x.lruReplace(n, tail)
	}
}

// EvictOne removes the least-recently-used evictable node (refcount 0,
// no children) and returns the simulated bytes freed — 0 when nothing is
// evictable. Parents that become childless refcount-0 leaves re-enter
// the list at the most recently used end: every lease through the
// evicted child also touched the parent, so its true recency is at
// least the child's.
//
//alisa:hotpath
func (x *Index) EvictOne() int64 {
	if x.lruHead == nil {
		return 0
	}
	return x.evict(x.lruHead)
}

// evict removes one evictable node from the trie and the list.
//
//alisa:hotpath
func (x *Index) evict(n *node) int64 {
	x.lruUnlink(n)
	p := n.parent
	slot, ok := x.findChild(p, n.tokens[:x.blockSize])
	if !ok {
		// Structural corruption; the invariant checker reports it, the hot
		// path must not spin.
		return 0
	}
	copy(p.children[slot:], p.children[slot+1:])
	p.children[len(p.children)-1] = nil
	p.children = p.children[:len(p.children)-1]
	bytes := int64(n.blocks(x.blockSize)) * x.blockBytes
	x.resident -= bytes
	n.parent = nil
	if p != x.root && p.ref == 0 && len(p.children) == 0 && !p.inLRU {
		x.lruPushTail(p)
	}
	return bytes
}

// lruPushTail appends n at the most recently used end.
//
//alisa:hotpath
func (x *Index) lruPushTail(n *node) {
	n.inLRU = true
	n.prev = x.lruTail
	n.next = nil
	if x.lruTail != nil {
		x.lruTail.next = n
	} else {
		x.lruHead = n
	}
	x.lruTail = n
}

// lruUnlink removes n from the list.
//
//alisa:hotpath
func (x *Index) lruUnlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		x.lruHead = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		x.lruTail = n.prev
	}
	n.prev, n.next = nil, nil
	n.inLRU = false
}

// lruReplace splices repl into n's list position.
//
//alisa:hotpath
func (x *Index) lruReplace(n, repl *node) {
	repl.prev, repl.next = n.prev, n.next
	repl.inLRU = true
	if n.prev != nil {
		n.prev.next = repl
	} else {
		x.lruHead = repl
	}
	if n.next != nil {
		n.next.prev = repl
	} else {
		x.lruTail = repl
	}
	n.prev, n.next = nil, nil
	n.inLRU = false
}

// Clone returns an independent deep copy: same structure, refcounts,
// byte accounting, counters, and — order included — the same evictable
// list, so the copy evicts identically. Used by Loop.Snapshot.
func (x *Index) Clone() *Index {
	c := &Index{
		blockSize:    x.blockSize,
		blockBytes:   x.blockBytes,
		budget:       x.budget,
		resident:     x.resident,
		hits:         x.hits,
		misses:       x.misses,
		cachedTokens: x.cachedTokens,
	}
	// Structural copy in deterministic child order, recording the old→new
	// mapping; the map is only ever looked up by known pointers, never
	// ranged, so no iteration order can escape.
	mapping := make(map[*node]*node)
	c.root = cloneNode(x.root, nil, mapping)
	for n := x.lruHead; n != nil; n = n.next {
		c.lruPushTail(mapping[n])
	}
	return c
}

// cloneNode deep-copies one subtree. Token spans are copied (not
// aliased) so the clone cannot observe later reslicing of the
// original's storage.
func cloneNode(n, parent *node, mapping map[*node]*node) *node {
	cn := &node{
		tokens:  append([]int(nil), n.tokens...),
		parent:  parent,
		ref:     n.ref,
		lastUse: n.lastUse,
	}
	if len(n.children) > 0 {
		cn.children = make([]*node, len(n.children))
		for i, ch := range n.children {
			cn.children[i] = cloneNode(ch, cn, mapping)
		}
	}
	mapping[n] = cn
	return cn
}

// CheckInvariants walks the whole trie and verifies the structural
// contract: spans are whole blocks (root empty), children are sorted
// and lead with unique blocks, parent links are consistent, resident
// bytes equal the block count times block bytes within budget, and
// every node is either pinned (refcount > 0), an interior node, or on
// the evictable list exactly once. leaseFree additionally requires every
// refcount to be zero — the end-of-run state after all requests
// released their paths.
func (x *Index) CheckInvariants(leaseFree bool) error {
	inList := make(map[*node]int)
	listed := 0
	for n := x.lruHead; n != nil; n = n.next {
		inList[n]++
		listed++
		if listed > 1<<30 {
			return fmt.Errorf("prefix: LRU list cycle")
		}
	}
	var blocks int64
	evictable := 0
	if err := x.checkNode(x.root, nil, leaseFree, inList, &blocks, &evictable); err != nil {
		return err
	}
	if got := blocks * x.blockBytes; got != x.resident {
		return fmt.Errorf("prefix: resident bytes %d but %d blocks account %d", x.resident, blocks, got)
	}
	if x.resident > x.budget {
		return fmt.Errorf("prefix: resident %d exceeds budget %d", x.resident, x.budget)
	}
	// checkNode verified every in-trie evictable node is listed exactly
	// once; equal counts rule out orphans linked into the list but no
	// longer in the trie.
	if listed != evictable {
		return fmt.Errorf("prefix: LRU list holds %d nodes but the trie has %d evictable", listed, evictable)
	}
	return nil
}

func (x *Index) checkNode(n, parent *node, leaseFree bool, inList map[*node]int, blocks *int64, evictableCount *int) error {
	if n.parent != parent {
		return fmt.Errorf("prefix: broken parent link at span %v", n.tokens)
	}
	if n == x.root {
		if len(n.tokens) != 0 {
			return fmt.Errorf("prefix: root span must be empty, got %d tokens", len(n.tokens))
		}
		if n.ref != 0 || n.inLRU {
			return fmt.Errorf("prefix: root must be unpinned and unlisted")
		}
	} else {
		if len(n.tokens) == 0 || len(n.tokens)%x.blockSize != 0 {
			return fmt.Errorf("prefix: span of %d tokens is not whole blocks of %d", len(n.tokens), x.blockSize)
		}
		*blocks += int64(n.blocks(x.blockSize))
		if n.ref < 0 {
			return fmt.Errorf("prefix: negative refcount %d", n.ref)
		}
		if leaseFree && n.ref != 0 {
			return fmt.Errorf("prefix: leaked lease: refcount %d after all requests released", n.ref)
		}
		evictable := n.ref == 0 && len(n.children) == 0
		if evictable != n.inLRU || (n.inLRU && inList[n] != 1) {
			return fmt.Errorf("prefix: evictable=%t but inLRU=%t (listed %d×)", evictable, n.inLRU, inList[n])
		}
		if evictable {
			*evictableCount++
		}
	}
	for i, c := range n.children {
		if i > 0 && cmpBlock(n.children[i-1].tokens[:x.blockSize], c.tokens[:x.blockSize]) >= 0 {
			return fmt.Errorf("prefix: children unsorted or duplicate leading block at slot %d", i)
		}
		if err := x.checkNode(c, n, leaseFree, inList, blocks, evictableCount); err != nil {
			return err
		}
	}
	return nil
}
