package serve

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/workload"
)

// seedAllocsPerRun is the measured allocation count of one Run of
// replayConfig("alisa") before the hot path was rebuilt (PR 3 code:
// per-iteration plan/attended slices, per-admission Context/seqState,
// unconditional Sprintf event log). The steady-state guard holds the
// rebuilt loop ≥ 5× below it; see EXPERIMENTS.md for the trajectory.
const seedAllocsPerRun = 5647

// TestServeSteadyStateAllocs is the allocs/op regression guard of the
// acceptance criterion: with the event log off, a full pressured run
// must allocate at least 5× less than the pre-rebuild loop did.
func TestServeSteadyStateAllocs(t *testing.T) {
	cfg := replayConfig("alisa")
	cfg.CaptureLog = false
	ctx := context.Background()
	if _, err := Run(ctx, cfg); err != nil { // warm build caches before measuring
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Run(ctx, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if limit := float64(seedAllocsPerRun) / 5; allocs > limit {
		t.Errorf("serve.Run allocates %.0f per run with capture off, want ≤ %.0f (≥5× below the %d-alloc seed loop)",
			allocs, limit, seedAllocsPerRun)
	}
	t.Logf("allocs/run capture off: %.0f (seed loop: %d)", allocs, seedAllocsPerRun)
}

// TestServeIterationAllocsFlat pins the "allocation-free steady state"
// property directly: growing a uniform workload's output length — pure
// extra decode iterations, identical admission/completion structure —
// must not grow allocations beyond the scheduler's own per-step
// bookkeeping. gpu-only plans steps without allocating, so the loop's
// marginal cost per iteration must be zero.
func TestServeIterationAllocsFlat(t *testing.T) {
	run := func(output int) float64 {
		cfg := Config{
			Model:     model.MustByName("opt-6.7b"),
			Profile:   memsim.V100_16G(),
			Scheduler: "gpu-only",
			Trace:     workload.UniformTrace(4, 0, 64, output),
			KVBits:    16,
			MaxBatch:  4,
		}
		ctx := context.Background()
		if _, err := Run(ctx, cfg); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := Run(ctx, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := run(32), run(256)
	// 224 extra iterations; allow a little noise, not per-iteration cost.
	if long > short+8 {
		t.Errorf("allocations grew with iteration count: %v at 32 output tokens, %v at 256", short, long)
	}
}

// TestCaptureLogMetricsBitIdentical is the capture-invariance property:
// for every registered servable scheduler and several workloads, a run
// with the event log captured and one with it off must produce
// bit-identical results in everything except the log itself.
func TestCaptureLogMetricsBitIdentical(t *testing.T) {
	traces := []workload.Trace{
		workload.PoissonTrace(16, 2.5, 7),
		workload.PoissonTrace(12, 5.0, 21),
		workload.UniformTrace(6, 0.25, 96, 48),
	}
	for _, name := range sched.Registered() {
		if name == "deepspeed-zero" || name == "deepspeed" {
			continue // not servable: engine-wide weight streaming
		}
		t.Run(name, func(t *testing.T) {
			for ti, tr := range traces {
				cfg := Config{
					Model:     model.MustByName("opt-6.7b"),
					Profile:   memsim.V100_16G(),
					Scheduler: name,
					Trace:     tr,
					KVBits:    16,
					MaxBatch:  6,
				}
				if name == "alisa" {
					cfg.KVSparsity = 0.8
					cfg.KVBits = 8
				}
				ctx := context.Background()
				cfg.CaptureLog = true
				on, err := Run(ctx, cfg)
				if err != nil {
					t.Fatalf("trace %d capture on: %v", ti, err)
				}
				cfg.CaptureLog = false
				off, err := Run(ctx, cfg)
				if err != nil {
					t.Fatalf("trace %d capture off: %v", ti, err)
				}
				if len(on.EventLog) == 0 {
					t.Fatalf("trace %d: captured run recorded no events", ti)
				}
				if len(off.EventLog) != 0 {
					t.Fatalf("trace %d: capture-off run recorded %d events", ti, len(off.EventLog))
				}
				on.EventLog, off.EventLog = nil, nil
				if !reflect.DeepEqual(on, off) {
					t.Fatalf("trace %d: metrics diverged between capture on and off:\non:  %+v\noff: %+v", ti, on, off)
				}
			}
		})
	}
}

// TestRenderEventLogEmpty pins the empty-log rendering: no events (or
// capture off) must render as "", not a bare newline.
func TestRenderEventLogEmpty(t *testing.T) {
	if got := (&Result{}).RenderEventLog(); got != "" {
		t.Fatalf("empty log renders %q, want %q", got, "")
	}
	cfg := replayConfig("alisa")
	cfg.CaptureLog = false
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.RenderEventLog(); got != "" {
		t.Fatalf("capture-off run renders %q, want %q", got, "")
	}
	cfg.CaptureLog = true
	res, err = Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out := res.RenderEventLog(); len(out) == 0 || out[len(out)-1] != '\n' {
		t.Fatalf("captured log must stay newline-terminated, got %d bytes", len(out))
	}
}
