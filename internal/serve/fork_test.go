package serve

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/workload"
)

// forkConfig is a heterogeneous-arrival workload with the event log
// captured, so fork determinism is pinned byte-for-byte down to the log.
func forkConfig(name string) Config {
	cfg := lightConfig(name)
	cfg.Trace = workload.PoissonTrace(16, 2.0, 7)
	cfg.CaptureLog = true
	if name == "alisa" {
		cfg.KVSparsity = 0.8
		cfg.KVBits = 8
	}
	return cfg
}

// advanceTurns advances up to k turns, reporting whether the loop still
// had work at every step.
func advanceTurns(t *testing.T, l *Loop, k int) bool {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < k; i++ {
		progressed, err := l.Advance(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !progressed {
			return false
		}
	}
	return true
}

func drainResult(t *testing.T, l *Loop) *Result {
	t.Helper()
	if err := l.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	return l.Finalize()
}

// TestForkDeterminism is the tentpole contract: fork-then-advance is
// bit-identical to straight-line advance — Result, metrics, and event
// log — at every snapshot depth, for every store-backed and plain
// scheduler, and the snapshot leaves the original run unperturbed.
func TestForkDeterminism(t *testing.T) {
	for _, name := range []string{"alisa", "flexgen", "vllm", "gpu-only"} {
		t.Run(name, func(t *testing.T) {
			sl, err := NewLoop(forkConfig(name))
			if err != nil {
				t.Fatal(err)
			}
			straight := drainResult(t, sl)

			sawActive := false
			for _, k := range []int{1, 5, 12} {
				l, err := NewLoop(forkConfig(name))
				if err != nil {
					t.Fatal(err)
				}
				advanceTurns(t, l, k)
				if l.Active() > 0 {
					sawActive = true
				}
				sn, err := l.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				fork, err := sn.Fork(nil)
				if err != nil {
					t.Fatal(err)
				}
				if got := drainResult(t, fork); !reflect.DeepEqual(got, straight) {
					t.Errorf("turn %d: fork-then-advance diverged from straight-line:\nfork:     %+v\nstraight: %+v", k, got, straight)
				}
				if got := drainResult(t, l); !reflect.DeepEqual(got, straight) {
					t.Errorf("turn %d: snapshot perturbed the original run", k)
				}
			}
			if !sawActive {
				t.Fatal("no snapshot point caught active sequences; scheduler cloning was never exercised")
			}
		})
	}
}

// TestForkScaleMode pins the same fork-then-advance ≡ straight-line
// contract with the streaming digests live: the cloned sketch state must
// continue identically.
func TestForkScaleMode(t *testing.T) {
	cfg := forkConfig("alisa")
	cfg.ExactMetrics = -1
	sl, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	straight := drainResult(t, sl)
	if straight.Requests != nil {
		t.Fatal("scale-mode run retained per-request records")
	}

	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	advanceTurns(t, l, 8)
	fork, err := l.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainResult(t, fork); !reflect.DeepEqual(got, straight) {
		t.Errorf("scale-mode fork diverged:\nfork:     %+v\nstraight: %+v", got, straight)
	}
	if got := drainResult(t, l); !reflect.DeepEqual(got, straight) {
		t.Error("scale-mode snapshot perturbed the original run")
	}
}

// TestForkDivergentFutures exercises the reason Fork exists: multiple
// independent continuations from one snapshot, each free to take a
// different future. The undisturbed fork must still match the
// straight-line run exactly while its sibling diverges.
func TestForkDivergentFutures(t *testing.T) {
	cfg := forkConfig("vllm")
	sl, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	straight := drainResult(t, sl)

	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	advanceTurns(t, l, 6)
	sn, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	base, err := sn.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := sn.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := extra.Inject(workload.Request{ID: 9001, Arrival: extra.Clock(), Input: 64, Output: 8}); err != nil {
		t.Fatal(err)
	}

	if got := drainResult(t, base); !reflect.DeepEqual(got, straight) {
		t.Errorf("undisturbed fork diverged from straight-line:\nfork:     %+v\nstraight: %+v", got, straight)
	}
	if got := drainResult(t, extra); got.Completed != straight.Completed+1 {
		t.Errorf("diverged fork completed %d requests, want %d", got.Completed, straight.Completed+1)
	}
	if got := drainResult(t, l); !reflect.DeepEqual(got, straight) {
		t.Error("forking perturbed the original run")
	}
}

// TestSnapshotGates pins the failure modes: a finalized loop cannot be
// snapshotted.
func TestSnapshotGates(t *testing.T) {
	l, err := NewLoop(forkConfig("gpu-only"))
	if err != nil {
		t.Fatal(err)
	}
	drainResult(t, l)
	if _, err := l.Snapshot(); err == nil {
		t.Fatal("snapshot of a finalized loop succeeded")
	}
}
