package serve

import (
	"fmt"
	"sort"

	"repro/internal/events"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Snapshot is a frozen deep copy of a running Loop, taken between turns.
// It is inert — it has no transitions of its own — and exists to be
// forked: each Fork call clones the snapshot again, so any number of
// independent continuations can branch from the same point, each free to
// Inject different futures. The snapshot stays valid however far the
// original loop (or any fork) advances.
//
// The copy is cheap in the sense that matters at scale: its size is the
// live state — wait-queue backlog, active batch, in-flight records,
// digest state — not the history of the run, so snapshotting a
// million-request run mid-stream costs what snapshotting a
// thousand-request run costs (plus the exact-path record table, when the
// run is below the exact-metrics threshold).
type Snapshot struct {
	s *server
}

// Snapshot freezes the loop's current state. It fails on a finalized or
// errored loop, and when any active sequence's scheduler does not
// implement sched.Cloner (every built-in scheduler does).
//
// Determinism contract, pinned by TestForkDeterminism: a fork driven
// through the same Inject/Advance sequence as the original produces a
// bit-identical Result — fork-then-advance ≡ straight-line advance.
func (l *Loop) Snapshot() (*Snapshot, error) {
	if l.finalized {
		return nil, fmt.Errorf("serve: cannot snapshot a finalized loop")
	}
	if l.err != nil {
		return nil, fmt.Errorf("serve: cannot snapshot a failed loop: %w", l.err)
	}
	s, err := l.s.clone(nil)
	if err != nil {
		return nil, err
	}
	// The frozen copy must not retain the live loop's observer: events
	// belong to continuations, which attach their own through Fork.
	s.cfg.Observer = nil
	return &Snapshot{s: s}, nil
}

// Fork builds a live Loop resuming from the snapshot, with obs (which may
// be nil) as its observer. Each call clones the snapshot's state again,
// so forks are fully independent of each other and of the snapshot.
func (sn *Snapshot) Fork(obs events.Observer) (*Loop, error) {
	s, err := sn.s.clone(obs)
	if err != nil {
		return nil, err
	}
	l := &Loop{}
	l.s = *s
	return l, nil
}

// Fork is the one-shot convenience: Snapshot then Fork, for callers that
// want a single divergent continuation rather than a reusable branch
// point.
func (l *Loop) Fork(obs events.Observer) (*Loop, error) {
	sn, err := l.Snapshot()
	if err != nil {
		return nil, err
	}
	return sn.Fork(obs)
}

// clone deep-copies the server so the copy can advance independently:
// simulated system, wait queue, records, digest state, per-sequence
// scheduler state, and the result-in-progress are all duplicated; the
// factory and cost model are shared (stateless). obs becomes the copy's
// observer. Scratch (plans, attended, pools) starts empty — it is
// rebuilt on demand and never observable.
func (s *server) clone(obs events.Observer) (*server, error) {
	c := &server{
		cfg:                      s.cfg,
		captureLog:               s.captureLog,
		sys:                      s.sys.Clone(),
		cost:                     s.cost,
		newSched:                 s.newSched,
		queue:                    s.queue.Clone(),
		injected:                 s.injected,
		exactLimit:               s.exactLimit,
		streaming:                s.streaming,
		all:                      append([]workload.Request(nil), s.all...),
		preemptions:              s.preemptions,
		iterations:               s.iterations,
		batchSum:                 s.batchSum,
		staticGPU:                s.staticGPU,
		staticCPU:                s.staticCPU,
		admissionBlockedHeadroom: s.admissionBlockedHeadroom,
		lastAdmitErr:             s.lastAdmitErr,
		kvTokenFP16:              s.kvTokenFP16,
		cacheTokenBytes:          s.cacheTokenBytes,
		prefillTokens:            s.prefillTokens,
		prefixPeakBytes:          s.prefixPeakBytes,
		log:                      append([]string(nil), s.log...),
		res: &Result{
			Scheduler: s.res.Scheduler,
			Breakdown: s.res.Breakdown.Clone(),
		},
	}
	c.cfg.Observer = obs
	if s.dig != nil {
		c.dig = s.dig.clone()
	}
	if s.cache != nil {
		// Leases deep-copy with the index (refcounts are node state), and
		// each cloned sequence's leaseLen re-walks its own tokens on
		// release, so no pointer translation is needed.
		c.cache = s.cache.Clone()
	}

	// Fresh records in one arena chunk; the map lookup by ID replaces any
	// old-pointer bookkeeping when the active sequences are repointed.
	// The arena fills in ascending request ID, not map order: every
	// lookup goes through the map, but letting map iteration pick the
	// clone's memory layout is exactly the nondeterminism class the
	// determinism analyzer bans — a future reader of the arena would
	// inherit a per-process order.
	ids := make([]int, 0, len(s.records))
	for id := range s.records {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	c.records = make(map[int]*RequestRecord, len(s.records))
	c.recArena = make([]RequestRecord, 0, len(s.records)+16)
	for _, id := range ids {
		c.recArena = append(c.recArena, *s.records[id])
		c.records[id] = &c.recArena[len(c.recArena)-1]
	}

	c.active = make([]*seqState, 0, len(s.active))
	for _, st := range s.active {
		cl, ok := st.sch.(sched.Cloner)
		if !ok {
			return nil, fmt.Errorf("serve: scheduler %q (%T) does not implement sched.Cloner; snapshot needs per-sequence state it can copy", s.cfg.Scheduler, st.sch)
		}
		sch := cl.CloneScheduler()
		rel, ok := sch.(sched.Releaser)
		if !ok {
			return nil, fmt.Errorf("serve: cloned scheduler %q lost its Release hook", s.cfg.Scheduler)
		}
		ctx := &sched.Context{}
		*ctx = *st.ctx
		ctx.Sys = c.sys
		ctx.Breakdown = c.res.Breakdown
		c.active = append(c.active, &seqState{
			req:      st.req,
			sch:      sch,
			rel:      rel,
			ctx:      ctx,
			j:        st.j,
			rec:      c.records[st.req.ID],
			seq:      st.seq,
			done:     st.done,
			leaseLen: st.leaseLen,
		})
	}
	return c, nil
}
