package serve

import (
	"context"
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

// preemptionConfig is the forced-GPU-pressure workload of
// TestServePreemptionRecovers, parameterized by request count: gpu-only
// cannot offload, so the long dense sequences evict each other
// constantly.
func preemptionConfig(n int) Config {
	return Config{
		Model:     model.MustByName("opt-6.7b"),
		Profile:   memsim.V100_16G(),
		Scheduler: "gpu-only",
		Trace:     workload.UniformTrace(n, 0.05, 1024, 512),
		KVBits:    16,
		MaxBatch:  4,
	}
}

// TestRequeueAllocFree is the satellite regression guard for the old
// requeue fallback (a fresh-slice prepend when the head slack ran out):
// a preemption requeue is a pop followed by a push under the original
// ticket, and into warm queue capacity that cycle must allocate nothing,
// no matter how deep the backlog is.
func TestRequeueAllocFree(t *testing.T) {
	var q reqQueue
	for i := 0; i < 1024; i++ {
		q.Push(workload.Request{ID: i, Arrival: float64(i % 37), Input: 8, Output: 8})
	}
	allocs := testing.AllocsPerRun(100, func() {
		// Admission pop, then the preemption's requeue — the exact pair
		// the serving loop performs — plus an interleaved fresh push/pop
		// at stable occupancy.
		req, seq := q.Pop()
		q.Requeue(req, seq)
		req2, seq2 := q.Pop()
		q.Requeue(req2, seq2)
	})
	if allocs != 0 {
		t.Errorf("requeue cycle allocates %.0f per op into warm capacity, want 0", allocs)
	}
}

// TestPreemptionAllocsBounded holds the end-to-end line: on the forced-
// pressure workload, allocations may scale only with admission probes
// (each failed probe formats one placement error — pre-existing), never
// with backlog size; the per-preemption allocation count stays a small
// constant instead of the old fallback's whole-queue copy.
func TestPreemptionAllocsBounded(t *testing.T) {
	ctx := context.Background()
	run := func(n int) (float64, int) {
		cfg := preemptionConfig(n)
		res, err := Run(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := Run(ctx, cfg); err != nil {
				t.Fatal(err)
			}
		})
		return allocs, res.Preemptions
	}
	small, preS := run(4)
	large, preL := run(8)
	if preL <= preS {
		t.Fatalf("workload did not scale preemptions: %d then %d", preS, preL)
	}
	perPreemption := (large - small) / float64(preL-preS)
	// Headroom over the ~20 observed: -race instrumentation inflates
	// allocation counts. A whole-queue copy would blow past this as soon
	// as the backlog grows.
	if perPreemption > 64 {
		t.Errorf("%.1f allocations per additional preemption (%.0f→%.0f allocs across %d→%d preemptions), want a small constant",
			perPreemption, small, large, preS, preL)
	}
	t.Logf("allocs/run: %.0f (%d preemptions) → %.0f (%d preemptions), %.1f per extra preemption",
		small, preS, large, preL, perPreemption)
}

// sketchRankError measures how far outside the rank interval of answer
// the requested rank falls, in the exact sorted sample — 0 when the
// answer's tie run covers the rank.
func sketchRankError(sorted []float64, answer, wantRank float64) float64 {
	lo := float64(sort.SearchFloat64s(sorted, answer))
	hi := float64(sort.SearchFloat64s(sorted, math.Nextafter(answer, math.Inf(1))))
	switch {
	case wantRank < lo:
		return lo - wantRank
	case wantRank > hi:
		return wantRank - hi
	}
	return 0
}

// TestScaleModeMatchesExact runs the same trace on the exact path and in
// scale mode (ExactMetrics < 0) and pins the contract between them:
// order-independent aggregates identical, means within float tolerance,
// and every digest percentile within the sketch's documented rank-error
// bound of the exact distribution.
func TestScaleModeMatchesExact(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{3, 17, 99} {
		cfg := Config{
			Model:      model.MustByName("opt-6.7b"),
			Profile:    memsim.V100_16G(),
			Scheduler:  "alisa",
			Trace:      workload.PoissonTrace(64, 4.0, seed),
			KVSparsity: 0.8,
			KVBits:     8,
			MaxBatch:   8,
		}
		exact, err := Run(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.ExactMetrics = -1
		scale, err := Run(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}

		if scale.Requests != nil {
			t.Fatalf("seed %d: scale mode retained %d records", seed, len(scale.Requests))
		}
		if scale.Completed != exact.Completed || scale.Completed != len(exact.Requests) {
			t.Fatalf("seed %d: completed %d vs exact %d", seed, scale.Completed, exact.Completed)
		}
		if scale.Makespan != exact.Makespan || scale.Throughput != exact.Throughput ||
			scale.Goodput != exact.Goodput || scale.SLOAttainment != exact.SLOAttainment {
			t.Fatalf("seed %d: aggregate drift:\nexact %+v\nscale %+v", seed, exact, scale)
		}
		if scale.Preemptions != exact.Preemptions || scale.MeanBatch != exact.MeanBatch ||
			scale.PeakGPU != exact.PeakGPU || scale.PeakCPU != exact.PeakCPU {
			t.Fatalf("seed %d: simulation drift between modes", seed)
		}

		// Rebuild the exact latency distributions from the records and
		// hold each digest percentile to the sketch bound.
		n := len(exact.Requests)
		dists := map[string]struct {
			vals []float64
			sum  metrics.LatencySummary
		}{}
		ttft := make([]float64, 0, n)
		tpot := make([]float64, 0, n)
		e2e := make([]float64, 0, n)
		for _, r := range exact.Requests {
			ttft = append(ttft, r.TTFT())
			tpot = append(tpot, r.TPOT())
			e2e = append(e2e, r.Finished-r.Arrival)
		}
		dists["ttft"] = struct {
			vals []float64
			sum  metrics.LatencySummary
		}{ttft, scale.TTFT}
		dists["tpot"] = struct {
			vals []float64
			sum  metrics.LatencySummary
		}{tpot, scale.TPOT}
		dists["e2e"] = struct {
			vals []float64
			sum  metrics.LatencySummary
		}{e2e, scale.E2E}

		bound := 3 * float64(n) / 256
		if bound < 1 {
			bound = 1
		}
		for name, d := range dists {
			sorted := append([]float64(nil), d.vals...)
			sort.Float64s(sorted)
			exactMean := metrics.Mean(d.vals)
			if math.Abs(d.sum.Mean-exactMean) > 1e-9*math.Max(1, exactMean) {
				t.Errorf("seed %d %s: digest mean %v, exact %v", seed, name, d.sum.Mean, exactMean)
			}
			if d.sum.Max != sorted[n-1] {
				t.Errorf("seed %d %s: digest max %v, exact %v", seed, name, d.sum.Max, sorted[n-1])
			}
			for _, p := range []struct {
				pct float64
				got float64
			}{{50, d.sum.P50}, {95, d.sum.P95}, {99, d.sum.P99}} {
				wantRank := p.pct / 100 * float64(n-1)
				if derr := sketchRankError(sorted, p.got, wantRank); derr > bound {
					t.Errorf("seed %d %s p%v: %v misses rank %.1f by %.1f (bound %.1f)",
						seed, name, p.pct, p.got, wantRank, derr, bound)
				}
			}
		}
	}
}

// TestScaleModeDeterministic pins replay determinism across the
// mid-run exact→scale switch: the same streamed workload, crossing the
// threshold at the same injection, must finalize bit-identically.
func TestScaleModeDeterministic(t *testing.T) {
	run := func() *Result {
		cfg := lightConfig("alisa")
		cfg.Trace = nil
		cfg.KVSparsity = 0.8
		cfg.KVBits = 8
		cfg.ExactMetrics = 8 // crossed mid-stream below
		l, err := NewLoop(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		tr := workload.PoissonTrace(24, 3.0, 5)
		for i, r := range tr {
			if err := l.Inject(r); err != nil {
				t.Fatal(err)
			}
			// Interleave work so completions exist on both sides of the
			// switch at injection 9.
			if i%4 == 3 {
				for j := 0; j < 6; j++ {
					if _, err := l.Advance(ctx); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if err := l.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		return l.Finalize()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scale-mode replay diverged:\na: %+v\nb: %+v", a, b)
	}
	if a.Requests != nil || a.Completed != 24 {
		t.Fatalf("expected scale-mode result over 24 requests, got %+v", a)
	}
}

// TestScaleModeRetainsOnlyLiveRecords is the O(in-flight) record guard
// at the unit level: a paced streaming run of many requests must keep
// record storage bounded by the peak live count — every completed
// record recycles — and leave no records behind after the drain.
func TestScaleModeRetainsOnlyLiveRecords(t *testing.T) {
	cfg := Config{
		Model:        model.MustByName("opt-6.7b"),
		Profile:      memsim.V100_16G(),
		Scheduler:    "gpu-only",
		KVBits:       16,
		MaxBatch:     8,
		ExactMetrics: -1,
	}
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const total = 4096
	const liveCap = 64
	next := 0
	for next < total {
		// Top the backlog up to liveCap, then advance until it drains
		// below half — the paced injection that keeps the run O(live).
		for next < total && l.Pending()+l.Active() < liveCap {
			if err := l.Inject(workload.Request{ID: next, Arrival: l.Clock(), Input: 32, Output: 4}); err != nil {
				t.Fatal(err)
			}
			next++
		}
		for l.Pending()+l.Active() > liveCap/2 {
			if _, err := l.Advance(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	s := &l.s
	if got := len(s.records); got != 0 {
		t.Errorf("drained scale run still indexes %d records", got)
	}
	// Every record ever allocated is now pooled; the pool size is the
	// peak live record count, which pacing bounded.
	if got := len(s.freeRecs); got > liveCap+8 {
		t.Errorf("record pool holds %d records after %d requests; want ≤ %d (peak live)", got, total, liveCap+8)
	}
	if got := s.queue.Len(); got != 0 {
		t.Errorf("drained queue still holds %d requests", got)
	}

	res := l.Finalize()
	if res.Completed != total {
		t.Fatalf("completed %d of %d", res.Completed, total)
	}
	if res.Requests != nil {
		t.Fatalf("scale mode returned %d per-request records", len(res.Requests))
	}
	if res.TTFT.P50 <= 0 || res.E2E.P99 < res.E2E.P50 {
		t.Fatalf("degenerate digests: %+v", res)
	}
}

// TestExactThresholdDefaultCoversCurrentTraces pins the threshold
// contract: a default-config run far below DefaultExactMetrics stays on
// the exact path, bit-identical to an explicit huge threshold.
func TestExactThresholdDefaultCoversCurrentTraces(t *testing.T) {
	cfg := lightConfig("vllm")
	def, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if def.Requests == nil {
		t.Fatal("default threshold pushed a 6-request trace into scale mode")
	}
	cfg.ExactMetrics = 1 << 30
	huge, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, huge) {
		t.Fatal("default and explicit exact thresholds diverged")
	}
}
