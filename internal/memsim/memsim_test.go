package memsim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestProfiles(t *testing.T) {
	for _, name := range []string{"V100-16GB", "V100-32GB", "H100-80GB"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Errorf("profile name %q != %q", p.Name, name)
		}
		if p.PCIeBandwidth != 20e9 {
			t.Errorf("%s: PCIe bandwidth %v, paper specifies 20 GB/s", name, p.PCIeBandwidth)
		}
		if p.GPUMemBytes <= 0 || p.PeakFLOPS <= 0 {
			t.Errorf("%s: nonsensical profile %+v", name, p)
		}
	}
	if _, err := ProfileByName("TPU"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestAllocOOM(t *testing.T) {
	s := NewSystem(Profile{Name: "t", GPUMemBytes: 100, CPUMemBytes: 50, PCIeBandwidth: 1})
	if err := s.AllocGPU(80); err != nil {
		t.Fatal(err)
	}
	err := s.AllocGPU(30)
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("expected OOMError, got %v", err)
	}
	if oom.Device != "GPU" || oom.Requested != 30 || oom.Used != 80 {
		t.Fatalf("OOM details wrong: %+v", oom)
	}
	// Failed allocation must not change usage.
	if gpu, _ := s.Usage(); gpu != 80 {
		t.Fatalf("usage after failed alloc = %d, want 80", gpu)
	}
}

func TestFreeRestoresHeadroom(t *testing.T) {
	s := NewSystem(Profile{GPUMemBytes: 100, CPUMemBytes: 100, PCIeBandwidth: 1})
	if err := s.AllocGPU(60); err != nil {
		t.Fatal(err)
	}
	s.FreeGPU(60)
	if err := s.AllocGPU(100); err != nil {
		t.Fatalf("free did not restore headroom: %v", err)
	}
	if g, _ := s.Peak(); g != 100 {
		t.Fatalf("peak = %d, want 100", g)
	}
}

func TestOverFreePanics(t *testing.T) {
	s := NewSystem(Profile{GPUMemBytes: 100, CPUMemBytes: 100, PCIeBandwidth: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-free")
		}
	}()
	s.FreeGPU(1)
}

func TestTransferTimeExact(t *testing.T) {
	s := NewSystem(Profile{GPUMemBytes: 1, CPUMemBytes: 1, PCIeBandwidth: 20e9})
	dt := s.TransferToCPU(40e9 / 2) // 20 GB over a 20 GB/s link
	if math.Abs(dt-1.0) > 1e-12 {
		t.Fatalf("transfer time = %v, want exactly 1s", dt)
	}
	if s.Clock() != dt {
		t.Fatalf("clock %v != transfer time %v", s.Clock(), dt)
	}
	toCPU, toGPU, secs := s.TransferStats()
	if toCPU != 20e9 || toGPU != 0 || secs != dt {
		t.Fatalf("stats = (%d,%d,%v)", toCPU, toGPU, secs)
	}
}

func TestCPUAllocOOM(t *testing.T) {
	s := NewSystem(Profile{GPUMemBytes: 10, CPUMemBytes: 10, PCIeBandwidth: 1})
	if err := s.AllocCPU(10); err != nil {
		t.Fatal(err)
	}
	var oom *OOMError
	if err := s.AllocCPU(1); !errors.As(err, &oom) || oom.Device != "CPU" {
		t.Fatalf("expected CPU OOM, got %v", err)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	s := NewSystem(V100_16G())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	s.Advance(-1)
}

// Property: the clock is monotone under any sequence of operations, and
// usage is always within [0, capacity].
func TestClockMonotoneProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := NewSystem(Profile{GPUMemBytes: 1000, CPUMemBytes: 1000, PCIeBandwidth: 7})
		prev := 0.0
		var gpuHeld int64
		for _, op := range ops {
			switch op % 4 {
			case 0:
				if err := s.AllocGPU(int64(op)); err == nil {
					gpuHeld += int64(op)
				}
			case 1:
				if gpuHeld > 0 {
					s.FreeGPU(1)
					gpuHeld--
				}
			case 2:
				s.TransferToCPU(int64(op))
			case 3:
				s.Advance(float64(op) / 255)
			}
			if s.Clock() < prev {
				return false
			}
			prev = s.Clock()
			gpu, cpu := s.Usage()
			if gpu < 0 || gpu > 1000 || cpu < 0 || cpu > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: transfer time equals bytes/bandwidth exactly and accumulates
// linearly.
func TestTransferLinearityProperty(t *testing.T) {
	f := func(chunks []uint16) bool {
		bw := 13.0
		s := NewSystem(Profile{GPUMemBytes: 1, CPUMemBytes: 1, PCIeBandwidth: bw})
		var total int64
		for _, c := range chunks {
			s.TransferToGPU(int64(c))
			total += int64(c)
		}
		_, toGPU, secs := s.TransferStats()
		if toGPU != total {
			return false
		}
		return math.Abs(secs-float64(total)/bw) < 1e-6*(1+secs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
