// Package memsim simulates the single GPU–CPU system the paper evaluates
// on: GPU high-bandwidth memory, CPU DRAM, and the PCIe link between them,
// each with a capacity or bandwidth. A simulated monotone clock advances as
// compute and transfers are charged, so schedulers can be compared on
// end-to-end execution time exactly as the paper compares FlexGen, vLLM,
// and ALISA — by counting the bytes they move and the FLOPs they spend.
//
// The simulator is deliberately analytic, not cycle-accurate: the paper's
// effects (I/O bottleneck at 20 GB/s PCIe, OOM without offload, the
// caching-vs-recomputation crossover) are first-order consequences of
// capacities and bandwidths, which is exactly what is modelled.
package memsim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// GiB is 2³⁰ bytes.
const GiB = int64(1) << 30

// Profile describes the simulated hardware. Bandwidths are bytes/second,
// compute is FLOP/second.
type Profile struct {
	Name string

	GPUMemBytes int64 // HBM capacity
	CPUMemBytes int64 // DRAM capacity

	HBMBandwidth  float64 // GPU memory bandwidth
	PCIeBandwidth float64 // CPU↔GPU link (the paper's B = 20 GB/s)
	CPUBandwidth  float64 // DRAM bandwidth for CPU-side work

	PeakFLOPS float64 // GPU FP16 peak
	// GEMMUtil is the fraction of peak a well-shaped GEMM achieves;
	// SaturationElems is the output-matrix size (elements) below which
	// utilisation degrades linearly — the Fig. 11 "FLOPS drop" effect for
	// small gathered tensors.
	GEMMUtil        float64
	SaturationElems float64

	// ReserveBytes is GPU memory unavailable to KV placement: CUDA
	// context, framework workspace, and allocator fragmentation. Runtimes
	// reserve roughly a fixed context plus a share of the card.
	ReserveBytes int64
}

// V100_16G models an NVIDIA Tesla V100 SXM2 16 GB (paper: 7B models).
func V100_16G() Profile {
	return Profile{
		Name:            "V100-16GB",
		GPUMemBytes:     16 * GiB,
		CPUMemBytes:     128 * GiB,
		HBMBandwidth:    900e9,
		PCIeBandwidth:   20e9, // paper §VI-A
		CPUBandwidth:    100e9,
		PeakFLOPS:       112e12,
		GEMMUtil:        0.55,
		SaturationElems: 256 << 10,
		ReserveBytes:    GiB + 16*GiB/20,
	}
}

// V100_32G models an NVIDIA Tesla V100 32 GB (paper: 13B models, Fig. 1).
func V100_32G() Profile {
	p := V100_16G()
	p.Name = "V100-32GB"
	p.GPUMemBytes = 32 * GiB
	p.ReserveBytes = GiB + 32*GiB/20
	return p
}

// H100_80G models an NVIDIA H100 80 GB (paper: 30B models).
func H100_80G() Profile {
	return Profile{
		Name:            "H100-80GB",
		GPUMemBytes:     80 * GiB,
		CPUMemBytes:     128 * GiB,
		HBMBandwidth:    3350e9,
		PCIeBandwidth:   20e9,
		CPUBandwidth:    100e9,
		PeakFLOPS:       990e12,
		GEMMUtil:        0.5,
		SaturationElems: 1 << 20,
		ReserveBytes:    GiB + 80*GiB/20,
	}
}

// profiles maps lower-cased names to hardware profiles. Built-ins are
// installed at package init; user code extends the set through
// RegisterProfile.
var profiles = struct {
	sync.RWMutex
	m map[string]Profile
}{m: make(map[string]Profile)}

// builtinProfiles guards the paper's testbeds against replacement so the
// pinned experiment results stay trustworthy.
var builtinProfiles = map[string]bool{}

func init() {
	for _, p := range []Profile{V100_16G(), V100_32G(), H100_80G()} {
		key := strings.ToLower(p.Name)
		profiles.m[key] = p
		builtinProfiles[key] = true
	}
}

// RegisterProfile adds a hardware profile to the lookup set, keyed by its
// (case-insensitive) Name — the extension point for testbeds beyond the
// paper's V100/H100 pairings. Built-in profile names cannot be replaced;
// re-registering an extension name replaces it. Safe for concurrent use
// with itself and with ProfileByName.
func RegisterProfile(p Profile) error {
	key := strings.ToLower(p.Name)
	switch {
	case key == "":
		return fmt.Errorf("memsim: RegisterProfile with empty Name")
	case p.GPUMemBytes <= 0 || p.CPUMemBytes <= 0:
		return fmt.Errorf("memsim: RegisterProfile %q: memory capacities must be positive", p.Name)
	case p.HBMBandwidth <= 0 || p.PCIeBandwidth <= 0 || p.CPUBandwidth <= 0:
		return fmt.Errorf("memsim: RegisterProfile %q: bandwidths must be positive", p.Name)
	case p.PeakFLOPS <= 0 || p.GEMMUtil <= 0 || p.GEMMUtil > 1:
		return fmt.Errorf("memsim: RegisterProfile %q: need PeakFLOPS > 0 and GEMMUtil in (0,1]", p.Name)
	case p.ReserveBytes < 0 || p.ReserveBytes >= p.GPUMemBytes:
		return fmt.Errorf("memsim: RegisterProfile %q: ReserveBytes must be in [0, GPUMemBytes)", p.Name)
	}
	if builtinProfiles[key] {
		return fmt.Errorf("memsim: RegisterProfile %q: cannot replace a built-in profile", p.Name)
	}
	profiles.Lock()
	profiles.m[key] = p
	profiles.Unlock()
	return nil
}

// ProfileByName looks up a profile (case-insensitive): the paper's
// built-in testbeds or any profile added through RegisterProfile. Safe
// for concurrent use.
func ProfileByName(name string) (Profile, error) {
	profiles.RLock()
	p, ok := profiles.m[strings.ToLower(name)]
	profiles.RUnlock()
	if !ok {
		return Profile{}, fmt.Errorf("memsim: unknown profile %q (registered: %v)", name, ProfileNames())
	}
	return p, nil
}

// ProfileNames returns every registered profile name in sorted order.
func ProfileNames() []string {
	profiles.RLock()
	names := make([]string, 0, len(profiles.m))
	for n := range profiles.m {
		names = append(names, n)
	}
	profiles.RUnlock()
	sort.Strings(names)
	return names
}

// OOMError reports a GPU or CPU memory exhaustion — the paper's "OOM"
// bars in Fig. 1 and Fig. 9.
type OOMError struct {
	Device    string
	Requested int64
	Used      int64
	Capacity  int64
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("memsim: %s out of memory: requested %d, used %d of %d",
		e.Device, e.Requested, e.Used, e.Capacity)
}

// System is a running simulation instance: allocation state for both
// memories, the transfer link, and the simulated clock.
type System struct {
	Prof Profile

	clock float64 // seconds

	gpuUsed, cpuUsed int64
	gpuPeak, cpuPeak int64

	toCPUBytes, toGPUBytes int64
	transferTime           float64
}

// NewSystem returns a fresh simulation over the profile.
func NewSystem(p Profile) *System {
	return &System{Prof: p}
}

// Clone returns an independent copy of the system — clock, usage, peaks,
// and transfer counters — advancing either side leaves the other
// untouched. System is plain value state, so a fork is one copy; the
// serving loop's Snapshot relies on that.
func (s *System) Clone() *System {
	c := *s
	return &c
}

// Clock returns the simulated time in seconds.
func (s *System) Clock() float64 { return s.clock }

// Advance moves the clock forward by dt seconds of compute (dt ≥ 0).
func (s *System) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("memsim: negative time advance %v", dt))
	}
	s.clock += dt
}

// AllocGPU reserves bytes of GPU memory, failing with *OOMError when the
// capacity would be exceeded.
func (s *System) AllocGPU(bytes int64) error {
	if bytes < 0 {
		panic("memsim: negative allocation")
	}
	if s.gpuUsed+bytes > s.Prof.GPUMemBytes {
		return &OOMError{Device: "GPU", Requested: bytes, Used: s.gpuUsed, Capacity: s.Prof.GPUMemBytes}
	}
	s.gpuUsed += bytes
	if s.gpuUsed > s.gpuPeak {
		s.gpuPeak = s.gpuUsed
	}
	return nil
}

// FreeGPU releases bytes of GPU memory.
func (s *System) FreeGPU(bytes int64) {
	if bytes < 0 || bytes > s.gpuUsed {
		panic(fmt.Sprintf("memsim: bad GPU free %d (used %d)", bytes, s.gpuUsed))
	}
	s.gpuUsed -= bytes
}

// AllocCPU reserves bytes of CPU memory.
func (s *System) AllocCPU(bytes int64) error {
	if bytes < 0 {
		panic("memsim: negative allocation")
	}
	if s.cpuUsed+bytes > s.Prof.CPUMemBytes {
		return &OOMError{Device: "CPU", Requested: bytes, Used: s.cpuUsed, Capacity: s.Prof.CPUMemBytes}
	}
	s.cpuUsed += bytes
	if s.cpuUsed > s.cpuPeak {
		s.cpuPeak = s.cpuUsed
	}
	return nil
}

// FreeCPU releases bytes of CPU memory.
func (s *System) FreeCPU(bytes int64) {
	if bytes < 0 || bytes > s.cpuUsed {
		panic(fmt.Sprintf("memsim: bad CPU free %d (used %d)", bytes, s.cpuUsed))
	}
	s.cpuUsed -= bytes
}

// TransferToCPU charges a GPU→CPU transfer of the given bytes over PCIe,
// advancing the clock, and returns the transfer time. Memory accounting is
// the caller's responsibility (schedulers move logical tokens; the
// simulator moves bytes).
func (s *System) TransferToCPU(bytes int64) float64 {
	return s.transfer(bytes, &s.toCPUBytes)
}

// TransferToGPU charges a CPU→GPU transfer of the given bytes over PCIe.
func (s *System) TransferToGPU(bytes int64) float64 {
	return s.transfer(bytes, &s.toGPUBytes)
}

func (s *System) transfer(bytes int64, counter *int64) float64 {
	if bytes < 0 {
		panic("memsim: negative transfer")
	}
	dt := float64(bytes) / s.Prof.PCIeBandwidth
	s.clock += dt
	s.transferTime += dt
	*counter += bytes
	return dt
}

// Usage reports current GPU and CPU memory consumption in bytes.
func (s *System) Usage() (gpu, cpu int64) { return s.gpuUsed, s.cpuUsed }

// Peak reports the high-water marks of GPU and CPU memory.
func (s *System) Peak() (gpu, cpu int64) { return s.gpuPeak, s.cpuPeak }

// TransferStats reports cumulative bytes moved in each direction and the
// total time spent on the link.
func (s *System) TransferStats() (toCPU, toGPU int64, seconds float64) {
	return s.toCPUBytes, s.toGPUBytes, s.transferTime
}

// GPUHeadroom returns the free GPU bytes.
func (s *System) GPUHeadroom() int64 { return s.Prof.GPUMemBytes - s.gpuUsed }
