// Package f16 implements IEEE-754 binary16 (half precision) conversion.
//
// The paper stores KV tensors in FP16 and quantizes them to INT8 for
// transfer; this package provides the FP16 leg so byte-level accounting and
// round-trip precision in the simulator match what a GPU runtime would see.
// Conversions use round-to-nearest-even, the hardware default.
package f16

import "math"

// F16 is a half-precision float stored in its 16-bit wire format.
type F16 uint16

const (
	signMask16     = 0x8000
	expMask16      = 0x7C00
	fracMask16     = 0x03FF
	expBias16      = 15
	maxFiniteBits  = 0x7BFF // 65504
	positiveInf    = F16(0x7C00)
	negativeInf    = F16(0xFC00)
	quietNaN       = F16(0x7E00)
	smallestSubn32 = 0x33000000 // float32 bits of 2^-25, the f16 rounding floor
)

// FromFloat32 converts f to half precision with round-to-nearest-even.
// Values beyond ±65504 become ±Inf; NaN is preserved as a quiet NaN.
func FromFloat32(f float32) F16 {
	b := math.Float32bits(f)
	sign := F16((b >> 16) & signMask16)
	exp := int32((b>>23)&0xFF) - 127
	frac := b & 0x7FFFFF

	switch {
	case exp == 128: // Inf or NaN
		if frac != 0 {
			return sign | quietNaN
		}
		return sign | positiveInf
	case exp > 15: // overflow to infinity
		return sign | positiveInf
	case exp >= -14: // normal range
		// 10 fraction bits; round-to-nearest-even on the truncated 13 bits.
		out := uint32(exp+expBias16)<<10 | frac>>13
		rem := frac & 0x1FFF
		if rem > 0x1000 || (rem == 0x1000 && out&1 == 1) {
			out++ // may carry into the exponent, which is correct behaviour
		}
		return sign | F16(out)
	case exp >= -25: // subnormal range
		// The f16 subnormal integer is round(1.frac · 2^(exp+24)), i.e. the
		// full 24-bit mantissa shifted right by -(exp+1) ∈ [14, 24] bits.
		shift := uint32(-exp - 1)
		mant := frac | 0x800000
		out := mant >> shift
		rem := mant & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && out&1 == 1) {
			out++
		}
		return sign | F16(out)
	default: // underflow to signed zero
		return sign
	}
}

// Float32 converts h back to single precision exactly (every f16 value is
// representable in f32).
func (h F16) Float32() float32 {
	sign := uint32(h&signMask16) << 16
	exp := uint32(h&expMask16) >> 10
	frac := uint32(h & fracMask16)

	switch exp {
	case 0:
		if frac == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalise into f32.
		e := int32(-14)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= fracMask16
		return math.Float32frombits(sign | uint32(e+127)<<23 | frac<<13)
	case 0x1F:
		if frac == 0 {
			return math.Float32frombits(sign | 0x7F800000) // Inf
		}
		return math.Float32frombits(sign | 0x7FC00000 | frac<<13) // NaN
	default:
		return math.Float32frombits(sign | (exp-expBias16+127)<<23 | frac<<13)
	}
}

// IsNaN reports whether h encodes a NaN.
func (h F16) IsNaN() bool {
	return h&expMask16 == expMask16 && h&fracMask16 != 0
}

// IsInf reports whether h encodes an infinity.
func (h F16) IsInf() bool {
	return h&expMask16 == expMask16 && h&fracMask16 == 0
}

// MaxValue is the largest finite half-precision value, 65504.
func MaxValue() float32 { return F16(maxFiniteBits).Float32() }

// EncodeSlice converts src to half precision.
func EncodeSlice(src []float32) []F16 {
	out := make([]F16, len(src))
	for i, v := range src {
		out[i] = FromFloat32(v)
	}
	return out
}

// DecodeSlice converts src back to single precision.
func DecodeSlice(src []F16) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = v.Float32()
	}
	return out
}

// RoundTripSlice applies an encode/decode round trip in place, imposing
// half-precision resolution on src — how the simulator models FP16 KV
// storage without keeping a second buffer.
func RoundTripSlice(src []float32) {
	for i, v := range src {
		src[i] = FromFloat32(v).Float32()
	}
}

// Bytes reports the storage size in bytes of n half-precision values.
func Bytes(n int) int64 { return int64(n) * 2 }
