package f16

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	cases := []struct {
		in   float32
		want float32
	}{
		{0, 0},
		{1, 1},
		{-1, -1},
		{0.5, 0.5},
		{2, 2},
		{65504, 65504},                     // max finite
		{6.103515625e-05, 6.103515625e-05}, // smallest normal 2^-14
		{5.960464477539063e-08, 5.960464477539063e-08}, // smallest subnormal 2^-24
	}
	for _, c := range cases {
		if got := FromFloat32(c.in).Float32(); got != c.want {
			t.Errorf("round trip %v = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestOverflowToInf(t *testing.T) {
	if h := FromFloat32(70000); !h.IsInf() {
		t.Fatalf("70000 should overflow to Inf, got %v", h.Float32())
	}
	if h := FromFloat32(-70000); !h.IsInf() || h.Float32() > 0 {
		t.Fatalf("-70000 should overflow to -Inf, got %v", h.Float32())
	}
}

func TestNaNPreserved(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if !h.IsNaN() {
		t.Fatal("NaN not preserved")
	}
	if !math.IsNaN(float64(h.Float32())) {
		t.Fatal("decoded NaN is not NaN")
	}
}

func TestInfPreserved(t *testing.T) {
	pos := FromFloat32(float32(math.Inf(1)))
	neg := FromFloat32(float32(math.Inf(-1)))
	if !pos.IsInf() || !neg.IsInf() {
		t.Fatal("infinity not preserved")
	}
	if !math.IsInf(float64(pos.Float32()), 1) || !math.IsInf(float64(neg.Float32()), -1) {
		t.Fatal("decoded infinity has wrong sign or value")
	}
}

func TestSignedZero(t *testing.T) {
	nz := FromFloat32(float32(math.Copysign(0, -1)))
	if f := nz.Float32(); math.Signbit(float64(f)) == false || f != 0 {
		t.Fatalf("negative zero round trip = %v", f)
	}
}

func TestUnderflowToZero(t *testing.T) {
	if f := FromFloat32(1e-10).Float32(); f != 0 {
		t.Fatalf("1e-10 should underflow to zero, got %v", f)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and 1+2^-10; ties go to even
	// (the mantissa of 1.0), so the result must be exactly 1.
	in := float32(1 + 1.0/2048)
	if got := FromFloat32(in).Float32(); got != 1 {
		t.Fatalf("halfway value rounded to %v, want 1 (ties-to-even)", got)
	}
	// 1 + 3·2^-11 is halfway between 1+2^-10 and 1+2^-9; even mantissa is
	// the larger one here.
	in = float32(1 + 3.0/2048)
	want := float32(1 + 2.0/1024)
	if got := FromFloat32(in).Float32(); got != want {
		t.Fatalf("halfway value rounded to %v, want %v", got, want)
	}
}

func TestMaxValue(t *testing.T) {
	if MaxValue() != 65504 {
		t.Fatalf("MaxValue = %v, want 65504", MaxValue())
	}
}

func TestSliceHelpers(t *testing.T) {
	src := []float32{1.5, -2.25, 1000, 0}
	enc := EncodeSlice(src)
	dec := DecodeSlice(enc)
	for i := range src {
		if dec[i] != src[i] {
			t.Fatalf("slice round trip [%d] = %v, want %v", i, dec[i], src[i])
		}
	}
	if Bytes(4) != 8 {
		t.Fatalf("Bytes(4) = %d, want 8", Bytes(4))
	}
}

func TestRoundTripSliceInPlace(t *testing.T) {
	v := []float32{1.0000001, 3.14159, -0.333333}
	orig := append([]float32(nil), v...)
	RoundTripSlice(v)
	for i := range v {
		if math.Abs(float64(v[i]-orig[i])) > 1e-3*math.Abs(float64(orig[i]))+1e-7 {
			t.Fatalf("round trip moved %v too far: %v", orig[i], v[i])
		}
	}
}

// Property: round trip error is bounded by half-ULP relative error (2^-11)
// for values in the normal f16 range.
func TestRoundTripErrorBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for range make([]struct{}, 64) {
			v := float32(rng.NormFloat64() * 100)
			if v == 0 {
				continue
			}
			got := FromFloat32(v).Float32()
			rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
			if rel > 1.0/2048+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: conversion is monotone — a ≤ b implies f16(a) ≤ f16(b).
func TestMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := float32(rng.NormFloat64() * 1000)
		b := float32(rng.NormFloat64() * 1000)
		if a > b {
			a, b = b, a
		}
		return FromFloat32(a).Float32() <= FromFloat32(b).Float32()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encoding is idempotent — re-encoding a decoded value is exact.
func TestIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := float32(rng.NormFloat64() * 10)
		once := FromFloat32(v).Float32()
		twice := FromFloat32(once).Float32()
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllBitPatternsRoundTrip(t *testing.T) {
	// Every finite f16 bit pattern must survive f16 → f32 → f16 exactly.
	for bits := 0; bits < 1<<16; bits++ {
		h := F16(bits)
		if h.IsNaN() {
			continue
		}
		back := FromFloat32(h.Float32())
		if back != h {
			t.Fatalf("bit pattern %#04x decoded to %v re-encoded as %#04x", bits, h.Float32(), uint16(back))
		}
	}
}
