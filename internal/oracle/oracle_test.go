package oracle

import (
	"math"
	"testing"

	"repro/internal/attention"
	"repro/internal/metrics"
	"repro/internal/model"
)

func TestRowsAreCausalDistributions(t *testing.T) {
	p := New(DefaultSpec(3, 1))
	for step := 0; step < 20; step++ {
		rows := p.Next()
		if len(rows) != 3 {
			t.Fatalf("step %d: %d rows, want 3", step, len(rows))
		}
		for l, row := range rows {
			if len(row) != step+1 {
				t.Fatalf("step %d layer %d: row length %d, want %d", step, l, len(row), step+1)
			}
			var sum float64
			for _, w := range row {
				if w < 0 {
					t.Fatalf("negative weight %v", w)
				}
				sum += w
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("row sums to %v", sum)
			}
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := New(DefaultSpec(2, 7))
	b := New(DefaultSpec(2, 7))
	for step := 0; step < 10; step++ {
		ra, rb := a.Next(), b.Next()
		for l := range ra {
			for i := range ra[l] {
				if ra[l][i] != rb[l][i] {
					t.Fatalf("seeded process diverged at step %d", step)
				}
			}
		}
	}
	c := New(DefaultSpec(2, 8))
	c.Next()
	c.Next()
	r2 := c.Next()
	a2 := New(DefaultSpec(2, 7))
	a2.Next()
	a2.Next()
	ra2 := a2.Next()
	same := true
	for i := range r2[0] {
		if r2[0][i] != ra2[0][i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical rows")
	}
}

func TestSparsityInPaperRange(t *testing.T) {
	// Fig. 3: sparsity between ~80 % and ~95 % across steps for OPT-scale
	// models once sequences are long enough.
	spec := SpecForModel(model.MustByName("opt-6.7b"), 3)
	p := New(spec)
	var sum float64
	var n int
	for step := 0; step < 256; step++ {
		rows := p.Next()
		if step < 64 {
			continue // sparsity is ill-defined for very short rows
		}
		for _, row := range rows {
			sum += metrics.Sparsity(row, 0.01)
			n++
		}
	}
	avg := sum / float64(n)
	if avg < 0.75 || avg > 0.97 {
		t.Fatalf("OPT-6.7B-calibrated sparsity = %.3f, want ≈0.80–0.95", avg)
	}
}

func TestLargerModelsSparser(t *testing.T) {
	// Fig. 3's second observation: OPT-30B density ≈ 3× lower than
	// OPT-6.7B. Accept anything ≥2× with the right ordering.
	density := func(name string) float64 {
		spec := SpecForModel(model.MustByName(name), 11)
		p := New(spec)
		var sum float64
		var n int
		for step := 0; step < 256; step++ {
			rows := p.Next()
			if step < 64 {
				continue
			}
			for _, row := range rows {
				sum += 1 - metrics.Sparsity(row, 0.01)
				n++
			}
		}
		return sum / float64(n)
	}
	small := density("opt-6.7b")
	mid := density("opt-13b")
	large := density("opt-30b")
	if !(small > mid && mid > large) {
		t.Fatalf("density ordering violated: 6.7B=%.4f 13B=%.4f 30B=%.4f", small, mid, large)
	}
	if small/large < 2 {
		t.Fatalf("OPT-30B density should be ≫ lower than 6.7B: %.4f vs %.4f", large, small)
	}
}

func TestMaskRowExactRenormalisation(t *testing.T) {
	dense := []float64{0.4, 0.3, 0.2, 0.1}
	idx, w := MaskRow(dense, []int{0, 2})
	if len(idx) != 3 || idx[2] != 3 {
		t.Fatalf("indices = %v, want [0 2 3]", idx)
	}
	total := 0.4 + 0.2 + 0.1
	want := []float64{0.4 / total, 0.2 / total, 0.1 / total}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("weights = %v, want %v", w, want)
		}
	}
}

func TestEvaluateDenseRecallIsOne(t *testing.T) {
	res := Evaluate(DefaultSpec(2, 5), attention.NewDense(), 64)
	if math.Abs(res.MeanRecall-1) > 1e-9 {
		t.Fatalf("dense recall = %v, want 1", res.MeanRecall)
	}
}

func TestEvaluatePolicyOrdering(t *testing.T) {
	// The paper's core accuracy claim (Fig. 4/8): at the same caching
	// ratio, SWA retains far more attention mass than local or strided.
	const ratio = 0.2
	const steps = 384
	spec := SpecForModel(model.MustByName("opt-6.7b"), 17)
	local := Evaluate(spec, attention.NewLocal(ratio), steps)
	strided := Evaluate(spec, attention.NewStrided(ratio), steps)
	swa := Evaluate(spec, attention.NewSWA(ratio, spec.Layers), steps)

	if swa.MeanRecall <= local.MeanRecall {
		t.Fatalf("SWA recall %.3f should beat local %.3f", swa.MeanRecall, local.MeanRecall)
	}
	if swa.MeanRecall <= strided.MeanRecall {
		t.Fatalf("SWA recall %.3f should beat strided %.3f", swa.MeanRecall, strided.MeanRecall)
	}
	if swa.MeanRecall < 0.85 {
		t.Fatalf("SWA at 80%% sparsity should keep most mass, got %.3f", swa.MeanRecall)
	}
}

func TestSpearmanOrderingMatchesFig4(t *testing.T) {
	const ratio = 0.2
	const steps = 384
	spec := SpecForModel(model.MustByName("opt-6.7b"), 23)
	swa := Evaluate(spec, attention.NewSWA(ratio, spec.Layers), steps)
	local := Evaluate(spec, attention.NewLocal(ratio), steps)

	rhoSWA, err := swa.SpearmanVsDense()
	if err != nil {
		t.Fatal(err)
	}
	rhoLocal, err := local.SpearmanVsDense()
	if err != nil {
		t.Fatal(err)
	}
	if rhoSWA <= rhoLocal {
		t.Fatalf("SWA ρ %.3f should beat local ρ %.3f", rhoSWA, rhoLocal)
	}
	if rhoSWA < 0.8 {
		t.Fatalf("SWA ρ = %.3f, paper reports ≈1", rhoSWA)
	}
}

func TestAttentionMapCausalAndSinkHeavy(t *testing.T) {
	m := AttentionMap(DefaultSpec(4, 31), 16)
	if len(m) != 16 {
		t.Fatalf("map has %d rows", len(m))
	}
	for i := range m {
		for j := i + 1; j < 16; j++ {
			if m[i][j] != 0 {
				t.Fatalf("causality violated at (%d,%d)", i, j)
			}
		}
	}
	// The sink column (0) should, averaged over seeds, outweigh the
	// mid-distance columns for late rows — the "important tokens far from
	// the current token" observation behind Fig. 5. A single seed can have
	// an unlucky base draw, so average over several processes.
	var sink, mid float64
	for seed := int64(0); seed < 12; seed++ {
		mm := AttentionMap(DefaultSpec(4, seed), 16)
		for i := 8; i < 16; i++ {
			sink += mm[i][0]
			for j := 3; j < 8; j++ {
				mid += mm[i][j] / 5
			}
		}
	}
	if sink <= mid {
		t.Fatalf("sink column %.4f should outweigh mid columns %.4f", sink, mid)
	}
}

func TestEvaluateMaskedSparsityAtLeastDense(t *testing.T) {
	// Masking can only remove mass from positions, so measured sparsity of
	// masked rows must be ≥ dense rows on average (Fig. 10's mechanism).
	spec := SpecForModel(model.MustByName("opt-6.7b"), 41)
	const steps = 256
	swa := Evaluate(spec, attention.NewSWA(0.2, spec.Layers), steps)
	var maskedAvg, denseAvg float64
	for t0 := 64; t0 < steps; t0++ {
		maskedAvg += swa.MaskedSparsityPerStep[t0]
		denseAvg += swa.DenseSparsityPerStep[t0]
	}
	if maskedAvg < denseAvg {
		t.Fatalf("masked sparsity %.3f should be ≥ dense %.3f", maskedAvg, denseAvg)
	}
}

func TestNewPanicsOnZeroLayers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero layers")
		}
	}()
	New(Spec{Layers: 0})
}
