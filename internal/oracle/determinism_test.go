package oracle

import (
	"math"
	"testing"

	"repro/internal/attention"
	"repro/internal/model"
)

// policiesUnderTest builds one fresh instance of every shipped policy at
// the given caching ratio; fresh instances matter because policies are
// stateful and each Evaluate run must start cold.
func policiesUnderTest(ratio float64, layers int) []attention.Policy {
	return []attention.Policy{
		attention.NewDense(),
		attention.NewLocal(ratio),
		attention.NewStrided(ratio),
		attention.NewSWA(ratio, layers),
		attention.NewH2O(ratio, layers),
	}
}

func resultsIdentical(a, b *Result) (string, bool) {
	if a.PolicyName != b.PolicyName || a.Steps != b.Steps {
		return "header", false
	}
	if a.MeanRecall != b.MeanRecall {
		return "MeanRecall", false
	}
	pairs := []struct {
		name string
		x, y []float64
	}{
		{"RecallPerStep", a.RecallPerStep, b.RecallPerStep},
		{"DenseSparsityPerStep", a.DenseSparsityPerStep, b.DenseSparsityPerStep},
		{"MaskedSparsityPerStep", a.MaskedSparsityPerStep, b.MaskedSparsityPerStep},
		{"AvgScore", a.AvgScore, b.AvgScore},
		{"DenseAvgScore", a.DenseAvgScore, b.DenseAvgScore},
	}
	for _, p := range pairs {
		if len(p.x) != len(p.y) {
			return p.name, false
		}
		for i := range p.x {
			if p.x[i] != p.y[i] {
				return p.name, false
			}
		}
	}
	return "", true
}

// TestEvaluateMatchesSequentialReference is the determinism regression for
// the parallel scratch-reusing hot path: across seeds, specs, and every
// shipped policy, Evaluate must reproduce the retained sequential
// reference bit for bit — same random streams, same masking, same merge
// order, no cross-goroutine interference.
func TestEvaluateMatchesSequentialReference(t *testing.T) {
	const steps = 96
	specs := []Spec{
		DefaultSpec(4, 1),
		DefaultSpec(3, 99),
		SpecForModel(model.MustByName("opt-6.7b"), 17),
		SpecForModel(model.MustByName("opt-30b"), 23),
	}
	for _, spec := range specs {
		spec.Layers = 4
		for _, ratio := range []float64{0.2, 0.5} {
			seqPols := policiesUnderTest(ratio, spec.Layers)
			parPols := policiesUnderTest(ratio, spec.Layers)
			for i := range seqPols {
				want := EvaluateSequential(spec, seqPols[i], steps)
				got := Evaluate(spec, parPols[i], steps)
				if field, ok := resultsIdentical(got, want); !ok {
					t.Errorf("seed %d ratio %.1f policy %s: parallel result diverges from sequential reference in %s",
						spec.Seed, ratio, want.PolicyName, field)
				}
			}
		}
	}
}

// TestEvaluateManyMatchesSingle pins EvaluateMany's contract: evaluating a
// batch of policies against one shared process is bit-identical to
// evaluating each policy alone against its own fresh process.
func TestEvaluateManyMatchesSingle(t *testing.T) {
	const steps = 96
	spec := SpecForModel(model.MustByName("opt-13b"), 55)
	spec.Layers = 4
	for _, ratio := range []float64{0.2, 0.6} {
		batch := policiesUnderTest(ratio, spec.Layers)
		many := EvaluateMany(spec, batch, steps)
		singles := policiesUnderTest(ratio, spec.Layers)
		for i := range singles {
			want := Evaluate(spec, singles[i], steps)
			if field, ok := resultsIdentical(many[i], want); !ok {
				t.Errorf("ratio %.1f policy %s: EvaluateMany diverges from Evaluate in %s",
					ratio, want.PolicyName, field)
			}
		}
	}
}

// TestEvaluateRepeatable guards against scratch-reuse bugs that would make
// two runs of the same configuration disagree (e.g. a buffer surviving
// across Evaluate calls).
func TestEvaluateRepeatable(t *testing.T) {
	spec := SpecForModel(model.MustByName("opt-6.7b"), 7)
	spec.Layers = 4
	a := Evaluate(spec, attention.NewSWA(0.2, spec.Layers), 128)
	b := Evaluate(spec, attention.NewSWA(0.2, spec.Layers), 128)
	if field, ok := resultsIdentical(a, b); !ok {
		t.Fatalf("repeated Evaluate diverged in %s", field)
	}
}

// TestSWAGoldenAtSparsity80 pins the headline accuracy numbers: SWA at the
// paper's 80 % KV sparsity setting on an OPT-6.7B-calibrated process. The
// values were produced by EvaluateSequential and must not drift, because
// fig8/fig4 build directly on them (recorded in EXPERIMENTS.md).
func TestSWAGoldenAtSparsity80(t *testing.T) {
	const (
		steps      = 256
		ratio      = 0.2 // KV sparsity 0.8
		goldenSeed = 4242

		wantMeanRecall = 0.8562643250469790
		wantSpearman   = 0.9591124971389334
	)
	spec := SpecForModel(model.MustByName("opt-6.7b"), goldenSeed)
	spec.Layers = 4
	res := Evaluate(spec, attention.NewSWA(ratio, spec.Layers), steps)
	rho, err := res.SpearmanVsDense()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanRecall-wantMeanRecall) > 1e-9 {
		t.Errorf("MeanRecall = %.16f, golden %.16f", res.MeanRecall, wantMeanRecall)
	}
	if math.Abs(rho-wantSpearman) > 1e-9 {
		t.Errorf("Spearman = %.16f, golden %.16f", rho, wantSpearman)
	}
}

// TestNextMatchesNextInto checks the compat wrapper and the zero-alloc
// variant generate identical rows from identical seeds.
func TestNextMatchesNextInto(t *testing.T) {
	a := New(DefaultSpec(3, 5))
	b := New(DefaultSpec(3, 5))
	var rows [][]float64
	for step := 0; step < 32; step++ {
		fresh := a.Next()
		rows = b.NextInto(rows)
		if len(fresh) != len(rows) {
			t.Fatalf("step %d: layer counts differ", step)
		}
		for l := range fresh {
			for i := range fresh[l] {
				if fresh[l][i] != rows[l][i] {
					t.Fatalf("step %d layer %d pos %d: %v != %v", step, l, i, fresh[l][i], rows[l][i])
				}
			}
		}
	}
}
