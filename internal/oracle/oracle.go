// Package oracle generates synthetic attention-weight processes with the
// statistical structure the paper observes in real LLMs (Fig. 3 and 5):
// heavy-tailed per-token importance, a locality bias toward recent tokens,
// an attention-sink first token, and a small set of persistent but
// *drifting* heavy hitters. It stands in for running OPT/LLaMA/Pythia
// checkpoints, which the reproduction environment cannot host.
//
// The substitution is mechanism-preserving: the paper's accuracy argument
// is that SWA's retained token set captures nearly all attention mass
// (Fig. 4, Spearman ρ ≈ 1), and that argument only depends on the mass
// distribution — concentrated, local-biased, with slowly moving heavy
// hitters — not on the language itself. Restricting a softmax to a subset
// of positions and renormalising is exactly what sparse attention computes
// for fixed scores, so masked rows derived from the dense row are exact,
// not approximate, at the single-step level.
//
// Each layer runs on its own deterministic random stream, so layers are
// mutually independent and Evaluate drives them on parallel goroutines;
// EvaluateSequential is the retained single-goroutine reference the
// determinism tests compare against.
package oracle

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/attention"
	"repro/internal/metrics"
	"repro/internal/model"
)

// Spec parameterises an attention process. A Spec must not be mutated
// after being handed to New or Evaluate.
type Spec struct {
	Layers int
	Seed   int64

	// Concentration scales the per-token importance logits; higher values
	// concentrate the softmax and raise attention-weight sparsity. This is
	// the model-size knob: the paper's Fig. 3 shows larger models are
	// sparser.
	Concentration float64

	// LocalityWeight and LocalityTau shape the recency boost
	// LocalityWeight · exp(−distance/LocalityTau).
	LocalityWeight float64
	LocalityTau    float64

	// SinkBoost elevates position 0, the attention-sink token.
	SinkBoost float64

	// HitterRate is the probability a newly generated token becomes a
	// heavy hitter; HitterBoost its logit strength; HitterLifetime the
	// geometric-mean number of steps it stays hot before drifting away.
	HitterRate     float64
	HitterBoost    float64
	HitterLifetime int
}

// DefaultSpec returns the base process used when no model calibration is
// requested: mid-sized-model statistics.
func DefaultSpec(layers int, seed int64) Spec {
	return Spec{
		Layers:         layers,
		Seed:           seed,
		Concentration:  2.4,
		LocalityWeight: 2.0,
		LocalityTau:    6,
		SinkBoost:      1.5,
		HitterRate:     0.06,
		HitterBoost:    3.2,
		HitterLifetime: 48,
	}
}

// SpecForModel calibrates a process to a model configuration so that the
// measured dense attention sparsity lands where Fig. 3 reports it:
// roughly 85 % for ~7 B models, ~90 % for ~13 B, ~95 % for ~30 B (density
// of OPT-30B ≈ 3× lower than OPT-6.7B).
func SpecForModel(cfg model.Config, seed int64) Spec {
	s := DefaultSpec(cfg.Layers, seed)
	params := float64(cfg.Params())
	switch {
	case params >= 25e9:
		s.Concentration = 3.6
		s.HitterBoost = 4.4
	case params >= 10e9:
		s.Concentration = 2.9
		s.HitterBoost = 3.7
	default:
		s.Concentration = 2.4
		s.HitterBoost = 3.2
	}
	return s
}

// Process is a running attention-weight generator. Each call to Next
// advances one decode step and returns, per layer, the dense post-softmax
// attention row of the new token over positions 0..t (self last).
type Process struct {
	Spec  Spec
	step  int
	layer []*layerState
}

// layerState is one layer's independent generator: its own random stream,
// the per-token state, and the incrementally maintained locality term.
// The locality boost W·exp(−(t−i)/τ) decays by the constant factor
// exp(−1/τ) each step, so it is maintained with one multiply per position
// instead of a math.Exp call.
type layerState struct {
	rng     *rand.Rand
	tempo   float64 // per-layer concentration jitter
	decay   float64 // exp(−1/τ), the per-step locality decay factor
	static  []float64
	hitter  []float64 // current hitter boost per token (0 when cold)
	expires []int     // step at which the hitter boost lapses
	loc     []float64 // locality boost per token, decayed in place
}

// New returns a Process for the given spec.
func New(spec Spec) *Process {
	if spec.Layers <= 0 {
		panic(fmt.Sprintf("oracle: layers must be positive, got %d", spec.Layers))
	}
	p := &Process{
		Spec:  spec,
		layer: make([]*layerState, spec.Layers),
	}
	// Layers differ in sharpness (Fig. 3 shows per-layer spread) and each
	// gets its own random stream; both derive deterministically from the
	// spec seed, so layers can advance independently — the property the
	// parallel Evaluate relies on.
	master := rand.New(rand.NewSource(spec.Seed))
	decay := localityDecay(spec.LocalityTau)
	for i := range p.layer {
		tempo := 0.75 + 0.5*master.Float64()
		p.layer[i] = &layerState{
			rng:   rand.New(rand.NewSource(master.Int63())),
			tempo: tempo,
			decay: decay,
		}
	}
	return p
}

func localityDecay(tau float64) float64 {
	if tau <= 0 {
		return 0
	}
	return math.Exp(-1 / tau)
}

// Step reports how many steps the process has generated.
func (p *Process) Step() int { return p.step }

// Next advances one decode step and returns one dense attention row per
// layer. Row l has length Step() (positions 0..t inclusive of the new
// token, which is last) and sums to 1. Each call allocates fresh rows;
// hot paths should use NextInto.
func (p *Process) Next() [][]float64 {
	return p.NextInto(make([][]float64, p.Spec.Layers))
}

// NextInto is the allocation-free variant of Next: it reuses the backing
// arrays of rows (grown as needed) and returns the slice resized to the
// layer count. The returned rows are valid until the next NextInto call.
func (p *Process) NextInto(rows [][]float64) [][]float64 {
	for len(rows) < p.Spec.Layers {
		rows = append(rows, nil)
	}
	rows = rows[:p.Spec.Layers]
	for l, st := range p.layer {
		rows[l] = st.advance(&p.Spec, p.step, rows[l])
	}
	p.step++
	return rows
}

// reserve pre-sizes the per-token state for a run of the given length so
// the append-per-step in advance never regrows mid-run.
func (st *layerState) reserve(steps int) {
	if cap(st.static) >= steps {
		return
	}
	st.static = append(make([]float64, 0, steps), st.static...)
	st.hitter = append(make([]float64, 0, steps), st.hitter...)
	st.expires = append(make([]int, 0, steps), st.expires...)
	st.loc = append(make([]float64, 0, steps), st.loc...)
}

// advance generates the layer's dense attention row for decode step t into
// dst's backing array (grown as needed) and returns it with length t+1.
func (st *layerState) advance(spec *Spec, t int, dst []float64) []float64 {
	// Birth of token t on this layer. The static part of its logit —
	// concentration-scaled importance plus the position-0 sink boost —
	// never changes, so it is computed once here.
	stat := spec.Concentration * st.tempo * st.rng.NormFloat64()
	if t == 0 {
		stat += spec.SinkBoost
	}
	st.static = append(st.static, stat)
	st.hitter = append(st.hitter, 0)
	st.expires = append(st.expires, 0)
	if st.rng.Float64() < spec.HitterRate {
		st.hitter[t] = spec.HitterBoost * (0.5 + st.rng.ExpFloat64())
		life := 1 + int(float64(spec.HitterLifetime)*st.rng.ExpFloat64())
		st.expires[t] = t + life
	}

	// One multiply per position replaces the per-step math.Exp: the
	// locality term decays by the constant factor exp(−1/τ) each step.
	for i := range st.loc {
		st.loc[i] *= st.decay
	}
	st.loc = append(st.loc, spec.LocalityWeight)

	if cap(dst) < t+1 {
		dst = make([]float64, t+1, max(t+1, 2*cap(dst)))
	} else {
		dst = dst[:t+1]
	}
	for i := 0; i <= t; i++ {
		if st.expires[i] <= t {
			st.hitter[i] = 0
		}
		dst[i] = st.static[i] + st.hitter[i] + st.loc[i]
	}
	softmaxInPlace(dst)
	return dst
}

// softmaxInPlace applies a numerically stable softmax to v.
func softmaxInPlace(v []float64) {
	maxv := math.Inf(-1)
	for _, x := range v {
		if x > maxv {
			maxv = x
		}
	}
	var sum float64
	for i, x := range v {
		e := math.Exp(x - maxv)
		v[i] = e
		sum += e
	}
	for i := range v {
		v[i] /= sum
	}
}

// MaskRow restricts the dense row to the retained cache indices plus the
// current token (the row's last position) and renormalises — exactly the
// distribution a sparse-attention softmax over the same scores produces.
// It returns the retained global indices (current token last) and their
// renormalised weights.
func MaskRow(dense []float64, selected []int) (indices []int, weights []float64) {
	indices, weights, _ = maskRowInto(dense, selected, nil, nil)
	return indices, weights
}

// maskRowInto is the scratch-reusing core of MaskRow. It writes the
// retained indices (current token last) into idx[:0] and their
// renormalised weights into w[:0], and additionally returns the retained
// raw attention mass (the pre-normalisation weight sum).
func maskRowInto(dense []float64, selected []int, idx []int, w []float64) ([]int, []float64, float64) {
	cur := len(dense) - 1
	idx = append(idx[:0], selected...)
	idx = append(idx, cur)
	w = w[:0]
	var sum float64
	for _, i := range idx {
		w = append(w, dense[i])
		sum += dense[i]
	}
	if sum > 0 {
		for i := range w {
			w[i] /= sum
		}
	}
	return idx, w, sum
}

// Result aggregates an Evaluate run.
type Result struct {
	PolicyName string
	Steps      int

	// MeanRecall is the average fraction of dense attention mass the
	// policy's retained sets captured, across steps and layers.
	MeanRecall float64
	// RecallPerStep averages recall across layers at each step.
	RecallPerStep []float64
	// DenseSparsityPerStep and MaskedSparsityPerStep measure attention
	// weight sparsity (1 %-of-row-max threshold) of the dense row and of
	// the policy-masked row embedded back into a full-length row.
	DenseSparsityPerStep  []float64
	MaskedSparsityPerStep []float64
	// AvgScore[i] is the average attention weight position i received
	// under the policy (masked rows); DenseAvgScore is the same for the
	// dense rows. Both average over the steps at which position i existed
	// and are the series behind the paper's Fig. 4 distributions.
	AvgScore      []float64
	DenseAvgScore []float64
}

// layerAccum collects one layer's per-step measurements; merge combines
// the layers in deterministic layer order, so parallel and sequential
// evaluation produce bit-identical Results.
type layerAccum struct {
	recall        []float64
	denseSp       []float64
	maskedSp      []float64
	avgScore      []float64
	denseAvgScore []float64
}

func newLayerAccum(steps int) *layerAccum {
	return &layerAccum{
		recall:        make([]float64, steps),
		denseSp:       make([]float64, steps),
		maskedSp:      make([]float64, steps),
		avgScore:      make([]float64, steps),
		denseAvgScore: make([]float64, steps),
	}
}

// Evaluate runs a policy against a fresh process for the given number of
// steps, feeding the policy masked attention rows exactly as a sparse
// decoder would, and collecting recall, sparsity, and score-distribution
// measurements.
//
// Layers evaluate concurrently, one goroutine per layer: every layer has
// its own random stream and policies confine per-layer state to the layer
// index (see attention.Policy). Results merge in deterministic layer
// order, so Evaluate returns bit-identical results to the sequential
// reference EvaluateSequential.
func Evaluate(spec Spec, pol attention.Policy, steps int) *Result {
	return EvaluateMany(spec, []attention.Policy{pol}, steps)[0]
}

// EvaluateContext is Evaluate with cancellation: every layer checks ctx
// once per decode step and the evaluation aborts with ctx.Err() when
// cancelled. An accuracy evaluation has no meaningful partial result, so
// a cancelled evaluation returns a nil Result.
func EvaluateContext(ctx context.Context, spec Spec, pol attention.Policy, steps int) (*Result, error) {
	res, err := EvaluateManyContext(ctx, spec, []attention.Policy{pol}, steps)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// EvaluateMany evaluates several policies against the *same* attention
// process, amortising row generation and the dense-row measurements
// (which do not depend on the policy) across all of them. Each policy
// observes only its own masked rows, so EvaluateMany(spec, pols, steps)[i]
// is bit-identical to Evaluate(spec, pols[i], steps) with a fresh policy —
// the sweep experiments lean on this to avoid regenerating one process per
// (policy, sparsity) cell. Policies must be distinct instances.
func EvaluateMany(spec Spec, pols []attention.Policy, steps int) []*Result {
	// context.Background never cancels, so the error branch is unreachable.
	res, _ := EvaluateManyContext(context.Background(), spec, pols, steps)
	return res
}

// EvaluateManyContext is EvaluateMany with cancellation: every layer
// goroutine checks ctx once per decode step and the whole evaluation
// aborts with ctx.Err() when cancelled, returning nil Results.
func EvaluateManyContext(ctx context.Context, spec Spec, pols []attention.Policy, steps int) ([]*Result, error) {
	proc := New(spec)
	per := make([][]*layerAccum, spec.Layers) // [layer][policy]
	panics := make([]any, spec.Layers)
	var wg sync.WaitGroup
	for l := 0; l < spec.Layers; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[l] = r
				}
			}()
			per[l] = evalLayerFast(ctx, &proc.Spec, proc.layer[l], pols, l, steps)
		}(l)
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]*Result, len(pols))
	for pi, pol := range pols {
		perLayer := make([]*layerAccum, spec.Layers)
		for l := range perLayer {
			perLayer[l] = per[l][pi]
		}
		results[pi] = mergeLayers(pol.Name(), steps, perLayer)
	}
	return results, nil
}

// EvaluateSequential is the retained reference implementation of Evaluate:
// one goroutine, straightforward per-step allocations, and the public
// metrics helpers instead of the fused scratch-reusing kernels. The
// determinism regression tests assert Evaluate reproduces its results
// exactly; it is also the ground truth for the golden values recorded in
// EXPERIMENTS.md.
func EvaluateSequential(spec Spec, pol attention.Policy, steps int) *Result {
	proc := New(spec)
	per := make([]*layerAccum, spec.Layers)
	for l := 0; l < spec.Layers; l++ {
		per[l] = evalLayerReference(&proc.Spec, proc.layer[l], pol, l, steps)
	}
	return mergeLayers(pol.Name(), steps, per)
}

// evalLayerFast is the allocation-free per-layer evaluation loop: the
// dense row, mask index/weight pairs, and selection scratch all live in
// step-scoped buffers reused across the whole run, the masked-row
// sparsity is computed directly from the retained weights instead of
// materialising the full-length row, and the policy-independent dense-row
// measurements are computed once per step and shared across all policies.
func evalLayerFast(ctx context.Context, spec *Spec, st *layerState, pols []attention.Policy, l, steps int) []*layerAccum {
	accs := make([]*layerAccum, len(pols))
	for i := range accs {
		accs[i] = newLayerAccum(steps)
	}
	st.reserve(steps)
	row := make([]float64, 0, steps)
	denseAvg := make([]float64, steps)
	var idxBuf []int
	var wBuf []float64
	for t := 0; t < steps; t++ {
		if ctx.Err() != nil {
			// Cancelled mid-evaluation: the partial accumulators are
			// meaningless, the caller discards everything.
			return nil
		}
		row = st.advance(spec, t, row)

		var total float64
		for _, w := range row {
			total += w
		}
		denseSp := metrics.Sparsity(row, 0.01)
		for i, w := range row {
			denseAvg[i] += w
		}

		for pi, pol := range pols {
			acc := accs[pi]
			sel := pol.Select(l, t) // t cached tokens before this step

			var kept float64
			idxBuf, wBuf, kept = maskRowInto(row, sel, idxBuf, wBuf)

			// Recall over the cached positions plus current token. Retained
			// indices are distinct by construction (ascending policy indices
			// below t, then t itself), so the raw retained mass over total
			// mass equals metrics.MassRecall.
			if total == 0 {
				acc.recall[t] = 1
			} else {
				acc.recall[t] = kept / total
			}

			acc.denseSp[t] = denseSp
			acc.maskedSp[t] = metrics.SparsityMasked(wBuf, len(row), 0.01)

			for i, idx := range idxBuf {
				acc.avgScore[idx] += wBuf[i]
			}
			pol.Observe(l, idxBuf, wBuf)
		}
	}
	for _, acc := range accs {
		copy(acc.denseAvgScore, denseAvg)
	}
	return accs
}

// evalLayerReference mirrors evalLayerFast with fresh allocations per step
// and the original public helpers (MaskRow, metrics.MassRecall,
// materialised masked rows), making it the simple-but-slow oracle the
// fused hot path is validated against.
func evalLayerReference(spec *Spec, st *layerState, pol attention.Policy, l, steps int) *layerAccum {
	acc := newLayerAccum(steps)
	for t := 0; t < steps; t++ {
		row := st.advance(spec, t, nil)
		sel := pol.Select(l, t)
		indices, weights := MaskRow(row, sel)

		acc.recall[t] = metrics.MassRecall(row, indices)
		acc.denseSp[t] = metrics.Sparsity(row, 0.01)
		masked := make([]float64, len(row))
		for i, idx := range indices {
			masked[idx] = weights[i]
		}
		acc.maskedSp[t] = metrics.Sparsity(masked, 0.01)

		for i, idx := range indices {
			acc.avgScore[idx] += weights[i]
		}
		for i, w := range row {
			acc.denseAvgScore[i] += w
		}
		pol.Observe(l, indices, weights)
	}
	return acc
}

// mergeLayers combines per-layer accumulators into a Result. The merge is
// fully deterministic: per-step statistics sum in ascending layer order
// and per-position scores sum layer-by-layer, independent of the order
// the layer goroutines finished in.
func mergeLayers(policyName string, steps int, per []*layerAccum) *Result {
	layers := float64(len(per))
	res := &Result{
		PolicyName:            policyName,
		Steps:                 steps,
		RecallPerStep:         make([]float64, steps),
		DenseSparsityPerStep:  make([]float64, steps),
		MaskedSparsityPerStep: make([]float64, steps),
		AvgScore:              make([]float64, steps),
		DenseAvgScore:         make([]float64, steps),
	}
	var recallSum float64
	for t := 0; t < steps; t++ {
		var stepRecall, stepDenseSp, stepMaskedSp float64
		for _, acc := range per {
			stepRecall += acc.recall[t]
			stepDenseSp += acc.denseSp[t]
			stepMaskedSp += acc.maskedSp[t]
			recallSum += acc.recall[t]
		}
		res.RecallPerStep[t] = stepRecall / layers
		res.DenseSparsityPerStep[t] = stepDenseSp / layers
		res.MaskedSparsityPerStep[t] = stepMaskedSp / layers
	}
	for i := 0; i < steps; i++ {
		// Position i exists from step i on, on every layer.
		count := layers * float64(steps-i)
		var score, dense float64
		for _, acc := range per {
			score += acc.avgScore[i]
			dense += acc.denseAvgScore[i]
		}
		res.AvgScore[i] = score / count
		res.DenseAvgScore[i] = dense / count
	}
	res.MeanRecall = recallSum / (float64(steps) * layers)
	return res
}

// SpearmanVsDense computes the Spearman rank correlation between the
// policy's average score distribution and the dense distribution — the ρ
// the paper reports under each panel of Fig. 4.
func (r *Result) SpearmanVsDense() (float64, error) {
	return metrics.Spearman(r.AvgScore, r.DenseAvgScore)
}

// AttentionMap generates the average dense attention weight map for a
// sequence of the given length: entry (i, j) is the weight position j
// received when decoding position i, averaged across layers (paper
// Fig. 5). The upper triangle is zero by causality.
func AttentionMap(spec Spec, seqLen int) [][]float64 {
	proc := New(spec)
	m := make([][]float64, seqLen)
	var rows [][]float64
	for i := range m {
		m[i] = make([]float64, seqLen)
		rows = proc.NextInto(rows)
		for _, row := range rows {
			for j, w := range row {
				m[i][j] += w
			}
		}
		for j := range m[i] {
			m[i][j] /= float64(len(rows))
		}
	}
	return m
}
