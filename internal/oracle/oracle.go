// Package oracle generates synthetic attention-weight processes with the
// statistical structure the paper observes in real LLMs (Fig. 3 and 5):
// heavy-tailed per-token importance, a locality bias toward recent tokens,
// an attention-sink first token, and a small set of persistent but
// *drifting* heavy hitters. It stands in for running OPT/LLaMA/Pythia
// checkpoints, which the reproduction environment cannot host.
//
// The substitution is mechanism-preserving: the paper's accuracy argument
// is that SWA's retained token set captures nearly all attention mass
// (Fig. 4, Spearman ρ ≈ 1), and that argument only depends on the mass
// distribution — concentrated, local-biased, with slowly moving heavy
// hitters — not on the language itself. Restricting a softmax to a subset
// of positions and renormalising is exactly what sparse attention computes
// for fixed scores, so masked rows derived from the dense row are exact,
// not approximate, at the single-step level.
package oracle

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/attention"
	"repro/internal/metrics"
	"repro/internal/model"
)

// Spec parameterises an attention process.
type Spec struct {
	Layers int
	Seed   int64

	// Concentration scales the per-token importance logits; higher values
	// concentrate the softmax and raise attention-weight sparsity. This is
	// the model-size knob: the paper's Fig. 3 shows larger models are
	// sparser.
	Concentration float64

	// LocalityWeight and LocalityTau shape the recency boost
	// LocalityWeight · exp(−distance/LocalityTau).
	LocalityWeight float64
	LocalityTau    float64

	// SinkBoost elevates position 0, the attention-sink token.
	SinkBoost float64

	// HitterRate is the probability a newly generated token becomes a
	// heavy hitter; HitterBoost its logit strength; HitterLifetime the
	// geometric-mean number of steps it stays hot before drifting away.
	HitterRate     float64
	HitterBoost    float64
	HitterLifetime int
}

// DefaultSpec returns the base process used when no model calibration is
// requested: mid-sized-model statistics.
func DefaultSpec(layers int, seed int64) Spec {
	return Spec{
		Layers:         layers,
		Seed:           seed,
		Concentration:  2.4,
		LocalityWeight: 2.0,
		LocalityTau:    6,
		SinkBoost:      1.5,
		HitterRate:     0.06,
		HitterBoost:    3.2,
		HitterLifetime: 48,
	}
}

// SpecForModel calibrates a process to a model configuration so that the
// measured dense attention sparsity lands where Fig. 3 reports it:
// roughly 85 % for ~7 B models, ~90 % for ~13 B, ~95 % for ~30 B (density
// of OPT-30B ≈ 3× lower than OPT-6.7B).
func SpecForModel(cfg model.Config, seed int64) Spec {
	s := DefaultSpec(cfg.Layers, seed)
	params := float64(cfg.Params())
	switch {
	case params >= 25e9:
		s.Concentration = 3.6
		s.HitterBoost = 4.4
	case params >= 10e9:
		s.Concentration = 2.9
		s.HitterBoost = 3.7
	default:
		s.Concentration = 2.4
		s.HitterBoost = 3.2
	}
	return s
}

// Process is a running attention-weight generator. Each call to Next
// advances one decode step and returns, per layer, the dense post-softmax
// attention row of the new token over positions 0..t (self last).
type Process struct {
	Spec  Spec
	step  int
	rng   *rand.Rand
	layer []*layerState
}

type layerState struct {
	base    []float64 // per-token importance logit, drawn at token birth
	hitter  []float64 // current hitter boost per token (0 when cold)
	expires []int     // step at which the hitter boost lapses
	tempo   float64   // per-layer concentration jitter
}

// New returns a Process for the given spec.
func New(spec Spec) *Process {
	if spec.Layers <= 0 {
		panic(fmt.Sprintf("oracle: layers must be positive, got %d", spec.Layers))
	}
	p := &Process{
		Spec:  spec,
		rng:   rand.New(rand.NewSource(spec.Seed)),
		layer: make([]*layerState, spec.Layers),
	}
	for i := range p.layer {
		// Layers differ in sharpness (Fig. 3 shows per-layer spread); the
		// jitter is deterministic in the seed.
		p.layer[i] = &layerState{tempo: 0.75 + 0.5*p.rng.Float64()}
	}
	return p
}

// Step reports how many steps the process has generated.
func (p *Process) Step() int { return p.step }

// Next advances one decode step and returns one dense attention row per
// layer. Row l has length Step() (positions 0..t inclusive of the new
// token, which is last) and sums to 1.
func (p *Process) Next() [][]float64 {
	t := p.step
	rows := make([][]float64, p.Spec.Layers)
	for l, st := range p.layer {
		// Birth of token t on this layer.
		st.base = append(st.base, p.rng.NormFloat64())
		st.hitter = append(st.hitter, 0)
		st.expires = append(st.expires, 0)
		if p.rng.Float64() < p.Spec.HitterRate {
			st.hitter[t] = p.Spec.HitterBoost * (0.5 + p.rng.ExpFloat64())
			life := 1 + int(float64(p.Spec.HitterLifetime)*p.rng.ExpFloat64())
			st.expires[t] = t + life
		}

		logits := make([]float64, t+1)
		conc := p.Spec.Concentration * st.tempo
		for i := 0; i <= t; i++ {
			if st.expires[i] <= t {
				st.hitter[i] = 0
			}
			dist := float64(t - i)
			logit := conc*st.base[i] + st.hitter[i]
			logit += p.Spec.LocalityWeight * math.Exp(-dist/p.Spec.LocalityTau)
			if i == 0 {
				logit += p.Spec.SinkBoost
			}
			logits[i] = logit
		}
		rows[l] = softmax(logits)
	}
	p.step++
	return rows
}

func softmax(logits []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// MaskRow restricts the dense row to the retained cache indices plus the
// current token (the row's last position) and renormalises — exactly the
// distribution a sparse-attention softmax over the same scores produces.
// It returns the retained global indices (current token last) and their
// renormalised weights.
func MaskRow(dense []float64, selected []int) (indices []int, weights []float64) {
	cur := len(dense) - 1
	indices = append(append([]int(nil), selected...), cur)
	weights = make([]float64, len(indices))
	var sum float64
	for i, idx := range indices {
		weights[i] = dense[idx]
		sum += dense[idx]
	}
	if sum > 0 {
		for i := range weights {
			weights[i] /= sum
		}
	}
	return indices, weights
}

// Result aggregates an Evaluate run.
type Result struct {
	PolicyName string
	Steps      int

	// MeanRecall is the average fraction of dense attention mass the
	// policy's retained sets captured, across steps and layers.
	MeanRecall float64
	// RecallPerStep averages recall across layers at each step.
	RecallPerStep []float64
	// DenseSparsityPerStep and MaskedSparsityPerStep measure attention
	// weight sparsity (1 %-of-row-max threshold) of the dense row and of
	// the policy-masked row embedded back into a full-length row.
	DenseSparsityPerStep  []float64
	MaskedSparsityPerStep []float64
	// AvgScore[i] is the average attention weight position i received
	// under the policy (masked rows); DenseAvgScore is the same for the
	// dense rows. Both average over the steps at which position i existed
	// and are the series behind the paper's Fig. 4 distributions.
	AvgScore      []float64
	DenseAvgScore []float64
}

// Evaluate runs a policy against a fresh process for the given number of
// steps, feeding the policy masked attention rows exactly as a sparse
// decoder would, and collecting recall, sparsity, and score-distribution
// measurements.
func Evaluate(spec Spec, pol attention.Policy, steps int) *Result {
	proc := New(spec)
	res := &Result{
		PolicyName:            pol.Name(),
		Steps:                 steps,
		RecallPerStep:         make([]float64, steps),
		DenseSparsityPerStep:  make([]float64, steps),
		MaskedSparsityPerStep: make([]float64, steps),
		AvgScore:              make([]float64, steps),
		DenseAvgScore:         make([]float64, steps),
	}
	counts := make([]float64, steps)
	var recallSum float64
	var recallN int

	for t := 0; t < steps; t++ {
		rows := proc.Next()
		var stepRecall, stepDenseSp, stepMaskedSp float64
		for l, dense := range rows {
			sel := pol.Select(l, t) // t cached tokens before this step
			indices, weights := MaskRow(dense, sel)

			// Recall over the cached positions plus current token.
			recall := metrics.MassRecall(dense, indices)
			stepRecall += recall
			recallSum += recall
			recallN++

			stepDenseSp += metrics.Sparsity(dense, 0.01)
			masked := make([]float64, len(dense))
			for i, idx := range indices {
				masked[idx] = weights[i]
			}
			stepMaskedSp += metrics.Sparsity(masked, 0.01)

			for i, idx := range indices {
				res.AvgScore[idx] += weights[i]
			}
			for i, w := range dense {
				res.DenseAvgScore[i] += w
			}
			_ = l
			pol.Observe(l, indices, weights)
		}
		layers := float64(len(rows))
		res.RecallPerStep[t] = stepRecall / layers
		res.DenseSparsityPerStep[t] = stepDenseSp / layers
		res.MaskedSparsityPerStep[t] = stepMaskedSp / layers
		for i := 0; i <= t; i++ {
			counts[i] += layers
		}
	}
	for i := range res.AvgScore {
		if counts[i] > 0 {
			res.AvgScore[i] /= counts[i]
			res.DenseAvgScore[i] /= counts[i]
		}
	}
	res.MeanRecall = recallSum / float64(recallN)
	return res
}

// SpearmanVsDense computes the Spearman rank correlation between the
// policy's average score distribution and the dense distribution — the ρ
// the paper reports under each panel of Fig. 4.
func (r *Result) SpearmanVsDense() (float64, error) {
	return metrics.Spearman(r.AvgScore, r.DenseAvgScore)
}

// AttentionMap generates the average dense attention weight map for a
// sequence of the given length: entry (i, j) is the weight position j
// received when decoding position i, averaged across layers (paper
// Fig. 5). The upper triangle is zero by causality.
func AttentionMap(spec Spec, seqLen int) [][]float64 {
	proc := New(spec)
	m := make([][]float64, seqLen)
	for i := range m {
		m[i] = make([]float64, seqLen)
		rows := proc.Next()
		for _, row := range rows {
			for j, w := range row {
				m[i][j] += w
			}
		}
		for j := range m[i] {
			m[i][j] /= float64(len(rows))
		}
	}
	return m
}
