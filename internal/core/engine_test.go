package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/trace"
)

// paperWorkload returns the Fig. 9 system workload: Alpaca-style input 128,
// output 512, on the paper's hardware pairing for the model.
func paperWorkload(t *testing.T, name string, batch int, schedName string, sparsity float64, bits int) Config {
	t.Helper()
	cfg := model.MustByName(name)
	var prof memsim.Profile
	switch {
	case cfg.Params() > 20e9:
		prof = memsim.H100_80G()
	case cfg.Params() > 10e9:
		prof = memsim.V100_32G()
	default:
		prof = memsim.V100_16G()
	}
	s, err := sched.ByName(schedName)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Model: cfg, Profile: prof, Scheduler: s,
		Batch: batch, Input: 128, Output: 512,
		KVSparsity: sparsity, KVBits: bits,
	}
}

func TestValidate(t *testing.T) {
	good := paperWorkload(t, "opt-6.7b", 8, "alisa", 0.8, 8)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Scheduler = nil },
		func(c *Config) { c.Batch = 0 },
		func(c *Config) { c.KVSparsity = 1.0 },
		func(c *Config) { c.KVSparsity = -0.1 },
		func(c *Config) { c.KVBits = 12 },
		func(c *Config) { c.Model = model.Config{} },
		func(c *Config) { c.Output = 4000 },
	}
	for i, mutate := range cases {
		bad := paperWorkload(t, "opt-6.7b", 8, "alisa", 0.8, 8)
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunProducesPositiveThroughput(t *testing.T) {
	res, err := Run(context.Background(), paperWorkload(t, "opt-6.7b", 16, "alisa", 0.8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
	if res.Tokens != 16*512 {
		t.Fatalf("tokens = %d, want %d", res.Tokens, 16*512)
	}
	if res.TotalSeconds <= 0 {
		t.Fatal("no time elapsed")
	}
	if len(res.Steps) != 512 {
		t.Fatalf("step samples = %d, want 512", len(res.Steps))
	}
	if res.Breakdown.Get(trace.CatPrefill) <= 0 {
		t.Fatal("prefill not charged")
	}
	if res.Breakdown.Get(trace.CatMHA) <= 0 || res.Breakdown.Get(trace.CatFFN) <= 0 {
		t.Fatal("decode compute not charged")
	}
}

// The headline result (Fig. 9): at batch 64 with 80 % KV sparsity, ALISA
// out-throughputs FlexGen and vLLM; the speedup over FlexGen lands in the
// paper's 1.4–3× band and over vLLM up to ~1.9×.
func TestHeadlineThroughputOrdering(t *testing.T) {
	run := func(schedName string, sparsity float64, bits int) *Result {
		res, err := Run(context.Background(), paperWorkload(t, "opt-6.7b", 64, schedName, sparsity, bits))
		if err != nil {
			t.Fatalf("%s: %v", schedName, err)
		}
		return res
	}
	alisa := run("alisa", 0.8, 8)
	flexgen := run("flexgen", 0, 16)
	vllm := run("vllm", 0, 16)

	if alisa.Throughput <= flexgen.Throughput {
		t.Fatalf("ALISA %.1f tok/s should beat FlexGen %.1f", alisa.Throughput, flexgen.Throughput)
	}
	if alisa.Throughput <= vllm.Throughput {
		t.Fatalf("ALISA %.1f tok/s should beat vLLM %.1f at batch 64", alisa.Throughput, vllm.Throughput)
	}
	// The paper reports 1.4–3.0×. Our FlexGen baseline lacks FlexGen's
	// KV compression and CPU-compute policy options, so at severe memory
	// pressure the measured ratio overshoots the paper's cap; the winner
	// and the direction hold (see EXPERIMENTS.md).
	speedup := alisa.Throughput / flexgen.Throughput
	if speedup < 1.4 || speedup > 20 {
		t.Fatalf("ALISA/FlexGen speedup %.2f× outside plausible band", speedup)
	}
}

func TestDeepSpeedOOMsAtLargeBatch(t *testing.T) {
	res, err := Run(context.Background(), paperWorkload(t, "opt-6.7b", 64, "deepspeed-zero", 0, 16))
	if err == nil {
		t.Fatal("expected OOM")
	}
	if !res.OOM {
		t.Fatalf("OOM flag not set: %v", err)
	}
}

func TestDeepSpeedRunsAtSmallBatch(t *testing.T) {
	res, err := Run(context.Background(), paperWorkload(t, "opt-6.7b", 4, "deepspeed-zero", 0, 16))
	if err != nil {
		t.Fatal(err)
	}
	// Weight streaming must dominate: transfer time ≫ compute time.
	if res.Breakdown.Get(trace.CatTransfer) < res.Breakdown.Get(trace.CatMHA) {
		t.Fatal("DeepSpeed weight streaming should dominate at small batch")
	}
}

func TestVLLMRunsInWaves(t *testing.T) {
	res, err := Run(context.Background(), paperWorkload(t, "opt-6.7b", 64, "vllm", 0, 16))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Waves) < 2 {
		t.Fatalf("waves = %v, want several at batch 64 on 16 GB", res.Waves)
	}
	small, err := Run(context.Background(), paperWorkload(t, "opt-6.7b", 4, "vllm", 0, 16))
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Waves) != 1 {
		t.Fatalf("waves = %v, want 1 at batch 4", small.Waves)
	}
}

func TestVLLMBestBaselineAtSmallBatch(t *testing.T) {
	// Fig. 9: "under small batch sizes, vLLM outperforms [other baselines]
	// as it is optimized for online serving with fine-grained memory
	// management."
	run := func(name string) float64 {
		res, err := Run(context.Background(), paperWorkload(t, "opt-6.7b", 4, name, 0, 16))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return res.Throughput
	}
	vllm := run("vllm")
	if hf := run("hf-accelerate"); vllm <= hf {
		t.Fatalf("vLLM %.1f should beat HF Accelerate %.1f at small batch", vllm, hf)
	}
	if ds := run("deepspeed-zero"); vllm <= ds {
		t.Fatalf("vLLM %.1f should beat DeepSpeed %.1f at small batch", vllm, ds)
	}
}

func TestAlisaScalesBetterWithBatch(t *testing.T) {
	// Fig. 9's second observation: the ALISA/FlexGen speedup grows with
	// batch size.
	speedup := func(batch int) float64 {
		a, err := Run(context.Background(), paperWorkload(t, "opt-6.7b", batch, "alisa", 0.8, 8))
		if err != nil {
			t.Fatal(err)
		}
		f, err := Run(context.Background(), paperWorkload(t, "opt-6.7b", batch, "flexgen", 0, 16))
		if err != nil {
			t.Fatal(err)
		}
		return a.Throughput / f.Throughput
	}
	if s8, s64 := speedup(8), speedup(64); s64 <= s8 {
		t.Fatalf("speedup should grow with batch: %0.2f× at 8 vs %0.2f× at 64", s8, s64)
	}
}

func TestMemorySeriesRecorded(t *testing.T) {
	res, err := Run(context.Background(), paperWorkload(t, "opt-6.7b", 32, "alisa", 0.8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Memory.Samples) != 512 {
		t.Fatalf("memory samples = %d", len(res.Memory.Samples))
	}
	prof := memsim.V100_16G()
	if res.Memory.PeakGPU() > prof.GPUMemBytes {
		t.Fatalf("GPU peak %d exceeds capacity %d", res.Memory.PeakGPU(), prof.GPUMemBytes)
	}
	// Memory grows as KV accumulates.
	first := res.Memory.Samples[0]
	last := res.Memory.Samples[len(res.Memory.Samples)-1]
	if last.GPUBytes+last.CPUBytes <= first.GPUBytes+first.CPUBytes {
		t.Fatal("total memory should grow with sequence length")
	}
}

func TestNoCacheQuadraticVsCachedFlat(t *testing.T) {
	// Fig. 2(c): without KV caching, per-step time grows; with caching it
	// stays near-flat while memory grows.
	base := paperWorkload(t, "opt-6.7b", 1, "no-cache", 0, 16)
	base.Batch, base.Input, base.Output = 1, 32, 128
	noCache, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	cachedCfg := paperWorkload(t, "opt-6.7b", 1, "gpu-only", 0, 16)
	cachedCfg.Batch, cachedCfg.Input, cachedCfg.Output = 1, 32, 128
	cached, err := Run(context.Background(), cachedCfg)
	if err != nil {
		t.Fatal(err)
	}

	growth := func(r *Result) float64 {
		return r.Steps[len(r.Steps)-1].Seconds / r.Steps[0].Seconds
	}
	if g := growth(noCache); g < 2 {
		t.Fatalf("no-cache per-step time should grow strongly, grew %.2f×", g)
	}
	if g := growth(cached); g > 1.5 {
		t.Fatalf("cached per-step time should stay near-flat, grew %.2f×", g)
	}
	if noCache.TotalSeconds <= cached.TotalSeconds {
		t.Fatal("KV caching should be faster end-to-end")
	}
	// Cached memory grows; uncached stays flat.
	nc := noCache.Memory
	if nc.Samples[len(nc.Samples)-1].GPUBytes != nc.Samples[0].GPUBytes {
		t.Fatal("no-cache memory should be flat")
	}
	cm := cached.Memory
	if cm.Samples[len(cm.Samples)-1].GPUBytes <= cm.Samples[0].GPUBytes {
		t.Fatal("cached memory should grow")
	}
}

func TestAlisaPhaseReporting(t *testing.T) {
	res, err := Run(context.Background(), paperWorkload(t, "opt-6.7b", 64, "alisa", 0.8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.PhaseOf == nil {
		t.Fatal("phase map missing for ALISA")
	}
	for j := 1; j < len(res.PhaseOf); j++ {
		if res.PhaseOf[j] < res.PhaseOf[j-1] {
			t.Fatal("phases must be monotone")
		}
	}
}

func TestRecomputationImprovesThroughput(t *testing.T) {
	// Fig. 12(b): recomputation reduces total execution time (paper:
	// 1.2–1.3× on OPT-30B/H100).
	mk := func(recompute bool) Config {
		cfg := paperWorkload(t, "opt-30b", 64, "alisa", 0.8, 8)
		if recompute {
			cfg.Scheduler = sched.NewAlisa()
		} else {
			cfg.Scheduler = sched.NewAlisaManual(0, 512, false)
		}
		return cfg
	}
	with, err := Run(context.Background(), mk(true))
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(context.Background(), mk(false))
	if err != nil {
		t.Fatal(err)
	}
	ratio := without.TotalSeconds / with.TotalSeconds
	if ratio <= 1.0 {
		t.Fatalf("recomputation should help on H100: ratio %.3f", ratio)
	}
	if ratio > 2.0 {
		t.Fatalf("recomputation gain %.2f× implausibly large (paper: 1.2–1.3×)", ratio)
	}
}

func TestINT8CompressionImprovesThroughput(t *testing.T) {
	// Fig. 12(c): KV compression contributes throughput on top of SWA+DS.
	fp16, err := Run(context.Background(), paperWorkload(t, "opt-6.7b", 64, "alisa", 0.8, 16))
	if err != nil {
		t.Fatal(err)
	}
	int8, err := Run(context.Background(), paperWorkload(t, "opt-6.7b", 64, "alisa", 0.8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if int8.Throughput <= fp16.Throughput {
		t.Fatalf("INT8 %.1f tok/s should beat FP16 %.1f", int8.Throughput, fp16.Throughput)
	}
}

func TestHigherSparsityHigherThroughput(t *testing.T) {
	// Fig. 12(a): with higher KV sparsity the speedup is more significant.
	run := func(sp float64) float64 {
		res, err := Run(context.Background(), paperWorkload(t, "opt-6.7b", 64, "alisa", sp, 8))
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	t40, t60, t80 := run(0.4), run(0.6), run(0.8)
	if !(t80 > t60 && t60 > t40) {
		t.Fatalf("throughput should rise with sparsity: %.1f, %.1f, %.1f", t40, t60, t80)
	}
}

func TestErrorMessagesNameScheduler(t *testing.T) {
	_, err := Run(context.Background(), paperWorkload(t, "opt-6.7b", 64, "gpu-only", 0, 16))
	if err == nil {
		t.Fatal("expected OOM")
	}
	if !strings.Contains(err.Error(), "gpu-only") {
		t.Fatalf("error should identify the scheduler: %v", err)
	}
}
