package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/sched"
)

// The offline optimizer's closed-form cost prediction and the runtime
// simulation share the same cost helpers; the prediction must therefore
// track the measured decode time closely. This is the §V-A contract:
// parameters are chosen offline, "introducing no overhead during LLM
// inference" — which only works if the offline model is faithful.
func TestOptimizerPredictionTracksMeasurement(t *testing.T) {
	cases := []struct {
		model string
		prof  memsim.Profile
		batch int
		bits  int
		spars float64
	}{
		{"opt-30b", memsim.H100_80G(), 64, 16, 0.8},
		{"opt-6.7b", memsim.V100_16G(), 64, 8, 0.8},
		{"opt-13b", memsim.V100_32G(), 64, 8, 0.6},
	}
	for _, c := range cases {
		mc := model.MustByName(c.model)

		// Reproduce the engine's pre-run state for the optimizer.
		sys := memsim.NewSystem(c.prof)
		ctx := &sched.Context{
			Sys: sys, Cost: costmodel.New(c.prof), Model: mc,
			Batch: c.batch, Input: 128, Output: 512,
			CachingRatio: 1 - c.spars, KVBits: c.bits,
		}
		if err := sys.AllocGPU(c.prof.ReserveBytes); err != nil {
			t.Fatal(err)
		}
		if err := sys.AllocGPU(ctx.WeightBytes()); err != nil {
			t.Fatal(err)
		}
		if err := sys.AllocGPU(ctx.ActivationBytes()); err != nil {
			t.Fatal(err)
		}
		params := sched.Optimize(ctx)

		res, err := Run(context.Background(), Config{
			Model: mc, Profile: c.prof, Scheduler: sched.NewAlisa(),
			Batch: c.batch, Input: 128, Output: 512,
			KVSparsity: c.spars, KVBits: c.bits,
		})
		if err != nil {
			t.Fatalf("%s: %v", c.model, err)
		}
		// The prediction covers decode only; compare against the measured
		// total minus prefill.
		decode := res.TotalSeconds - res.Breakdown.Get("prefill")
		rel := math.Abs(params.PredictedSeconds-decode) / decode
		if rel > 0.3 {
			t.Errorf("%s: predicted %.2fs vs measured decode %.2fs (%.0f%% off)",
				c.model, params.PredictedSeconds, decode, rel*100)
		}
	}
}

// Two identical engine runs must be byte-identical: the whole stack is
// deterministic (no wall clocks, no unseeded randomness).
func TestEngineDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Run(context.Background(), Config{
			Model:   model.MustByName("opt-6.7b"),
			Profile: memsim.V100_16G(),
			Batch:   32, Input: 128, Output: 128,
			KVSparsity: 0.8, KVBits: 8,
			Scheduler: sched.NewAlisa(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalSeconds != b.TotalSeconds || a.Throughput != b.Throughput {
		t.Fatalf("nondeterministic totals: %v vs %v", a.TotalSeconds, b.TotalSeconds)
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, a.Steps[i], b.Steps[i])
		}
	}
}

// Throughput accounting: tokens always equals batch × output, and
// throughput × time recovers it.
func TestThroughputConservation(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Model:   model.MustByName("opt-6.7b"),
		Profile: memsim.V100_16G(),
		Batch:   16, Input: 64, Output: 96,
		KVSparsity: 0.8, KVBits: 8,
		Scheduler: sched.NewAlisa(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tokens != 16*96 {
		t.Fatalf("tokens = %d", res.Tokens)
	}
	if rec := res.Throughput * res.TotalSeconds; math.Abs(rec-float64(res.Tokens)) > 1e-6 {
		t.Fatalf("throughput × time = %v, want %d", rec, res.Tokens)
	}
}
