// Package core is ALISA's inference engine — the composition of the
// paper's three techniques over the simulated GPU–CPU system:
//
//   - Sparse Window Attention sets the per-step token budget
//     (KVSparsity → caching ratio, Algorithm 1's k).
//   - A sched.Scheduler places and moves KV tensors (the three-phase
//     dynamic scheduler for ALISA, or one of the baselines).
//   - KV compression stores and ships KV as INT8 (KVBits = 8).
//
// Run simulates a full inference — prefill plus n decode steps — charging
// compute through the roofline cost model and transfers through the
// memsim system, and returns the end-to-end breakdown, per-step memory
// trajectory, and token throughput the paper's evaluation reports.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/events"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Config specifies one simulated inference run.
type Config struct {
	Model     model.Config
	Profile   memsim.Profile
	Scheduler sched.Scheduler

	Batch  int
	Input  int // prompt length s
	Output int // generated tokens n

	// KVSparsity ∈ [0, 1) is the fraction of cached tokens SWA skips each
	// step; 0 means dense attention. The paper's headline setting is 0.8.
	KVSparsity float64
	// KVBits is the stored KV precision: 16 (FP16), 8 (INT8, §V-B), or
	// 4 (the INT4 extension the paper cites as viable for OPT).
	KVBits int

	// Observer, when non-nil, receives one events.Step per decode step as
	// the run unfolds. Callbacks run inline on the simulation loop.
	Observer events.Observer
}

// Validate reports configuration errors before a run.
func (c Config) Validate() error {
	switch {
	case c.Scheduler == nil:
		return errors.New("core: scheduler required")
	case c.Batch <= 0 || c.Input <= 0 || c.Output <= 0:
		return fmt.Errorf("core: batch/input/output must be positive, got %d/%d/%d", c.Batch, c.Input, c.Output)
	case c.KVSparsity < 0 || c.KVSparsity >= 1:
		return fmt.Errorf("core: KV sparsity must be in [0,1), got %v", c.KVSparsity)
	case c.KVBits != 4 && c.KVBits != 8 && c.KVBits != 16:
		return fmt.Errorf("core: KV bits must be 4, 8 or 16, got %d", c.KVBits)
	case c.Model.Layers <= 0:
		return errors.New("core: model config required")
	case c.Input+c.Output > c.Model.MaxSeq:
		return fmt.Errorf("core: sequence %d exceeds model max %d", c.Input+c.Output, c.Model.MaxSeq)
	}
	return nil
}

// StepSample records one decode step's timing for time-per-step figures.
type StepSample struct {
	Step    int
	Seconds float64
}

// Result is the outcome of a simulated run.
type Result struct {
	Scheduler string
	Breakdown *trace.Breakdown
	Memory    trace.MemSeries
	Steps     []StepSample

	TotalSeconds float64
	Tokens       int     // generated tokens across the batch
	Throughput   float64 // tokens per second, the paper's metric

	// OOM is set when the run died with an out-of-memory error; Err holds
	// the cause. Partial measurements up to the failure are retained.
	OOM bool
	Err error

	// Waves lists the sub-batch sizes the scheduler served sequentially
	// (len 1 except for vLLM-style admission control).
	Waves []int

	// PhaseStarts holds the first decode steps of ALISA's Phases II and
	// III, -1 when the phase never triggered or the scheduler has no
	// phases.
	Phase2Start, Phase3Start int

	// PhaseOf maps each decode step to its phase (1-3) for phase-resolved
	// reporting; nil for schedulers without phases.
	PhaseOf []int
}

// Run simulates the configured inference and returns its measurements.
// Out-of-memory failures return a Result with OOM set alongside the error,
// because OOM is itself a reported datapoint in Fig. 1 and Fig. 9.
//
// Cancellation is checked before every decode step: when ctx is cancelled
// mid-run, Run stops and returns the partial Result measured so far
// alongside ctx.Err().
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	res := &Result{
		Scheduler:   cfg.Scheduler.Name(),
		Breakdown:   trace.NewBreakdown(),
		Phase2Start: -1,
		Phase3Start: -1,
	}

	waves := []int{cfg.Batch}
	// Wave planning needs a context with the full batch and a scratch
	// system to measure headroom.
	if wp, ok := cfg.Scheduler.(sched.WavePlanner); ok {
		scratch := memsim.NewSystem(cfg.Profile)
		sctx := newContext(cfg, scratch, cfg.Batch, trace.NewBreakdown())
		if err := reserveStatic(cfg, sctx); err != nil {
			return failed(res, err)
		}
		w, err := wp.Waves(sctx)
		if err != nil {
			return failed(res, err)
		}
		waves = w
	}
	res.Waves = waves

	for _, wave := range waves {
		if err := runWave(ctx, cfg, wave, res); err != nil {
			return failed(res, err)
		}
	}

	res.Tokens = cfg.Batch * cfg.Output
	if res.TotalSeconds > 0 {
		res.Throughput = float64(res.Tokens) / res.TotalSeconds
	}
	return res, nil
}

func failed(res *Result, err error) (*Result, error) {
	res.Err = err
	var oom *memsim.OOMError
	if errors.As(err, &oom) {
		res.OOM = true
	}
	return res, err
}

func newContext(cfg Config, sys *memsim.System, batch int, b *trace.Breakdown) *sched.Context {
	return &sched.Context{
		Sys:          sys,
		Cost:         costmodel.New(cfg.Profile),
		Model:        cfg.Model,
		Batch:        batch,
		Input:        cfg.Input,
		Output:       cfg.Output,
		CachingRatio: 1 - cfg.KVSparsity,
		KVBits:       cfg.KVBits,
		Breakdown:    b,
	}
}

// reserveStatic allocates weights and activations for the run: weights on
// GPU unless the scheduler streams them from CPU (DeepSpeed-ZeRO).
func reserveStatic(cfg Config, ctx *sched.Context) error {
	weightsOnCPU := false
	if w, ok := cfg.Scheduler.(interface{ WeightsOnCPU() bool }); ok {
		weightsOnCPU = w.WeightsOnCPU()
	}
	if err := ctx.Sys.AllocGPU(cfg.Profile.ReserveBytes); err != nil {
		return fmt.Errorf("core: runtime reserve: %w", err)
	}
	if weightsOnCPU {
		if err := ctx.Sys.AllocCPU(ctx.WeightBytes()); err != nil {
			return fmt.Errorf("core: weights: %w", err)
		}
	} else {
		if err := ctx.Sys.AllocGPU(ctx.WeightBytes()); err != nil {
			return fmt.Errorf("core: weights: %w", err)
		}
	}
	if err := ctx.Sys.AllocGPU(ctx.ActivationBytes()); err != nil {
		return fmt.Errorf("core: activations: %w", err)
	}
	return nil
}

func runWave(ctx context.Context, cfg Config, wave int, res *Result) error {
	sys := memsim.NewSystem(cfg.Profile)
	sctx := newContext(cfg, sys, wave, res.Breakdown)
	base := res.TotalSeconds // absolute clock offset of this wave

	if err := reserveStatic(cfg, sctx); err != nil {
		res.TotalSeconds += sys.Clock()
		return err
	}

	// Prefill: one pass over the prompt, then the scheduler places its KV.
	prefill := sctx.Cost.PrefillTime(cfg.Model, wave, cfg.Input)
	sys.Advance(prefill)
	res.Breakdown.Add(trace.CatPrefill, prefill)
	if err := cfg.Scheduler.Init(sctx); err != nil {
		res.TotalSeconds += sys.Clock()
		return err
	}

	for j := 0; j < cfg.Output; j++ {
		if err := ctx.Err(); err != nil {
			res.TotalSeconds += sys.Clock()
			return err
		}
		before := sys.Clock()
		plan, err := cfg.Scheduler.Step(sctx, j)
		if err != nil {
			res.TotalSeconds += sys.Clock()
			return err
		}
		chargeCompute(sctx, plan, res.Breakdown)

		gpu, cpu := sys.Usage()
		res.Memory.Record(j, gpu, cpu)
		res.Steps = append(res.Steps, StepSample{Step: j, Seconds: sys.Clock() - before})
		if cfg.Observer != nil {
			cfg.Observer.OnStep(events.Step{
				Step: j, Batch: wave,
				Clock: base + sys.Clock(), Seconds: sys.Clock() - before,
			})
		}
	}

	if ph, ok := cfg.Scheduler.(interface{ Phase(j int) int }); ok {
		res.PhaseOf = make([]int, cfg.Output)
		for j := 0; j < cfg.Output; j++ {
			res.PhaseOf[j] = ph.Phase(j)
		}
	}
	if ps, ok := cfg.Scheduler.(interface{ PhaseStarts() (int, int) }); ok {
		res.Phase2Start, res.Phase3Start = ps.PhaseStarts()
	}

	res.TotalSeconds += sys.Clock()
	return nil
}

func chargeCompute(ctx *sched.Context, plan sched.StepPlan, b *trace.Breakdown) {
	if plan.FullRecompute {
		// KV caching disabled: the step reprocesses the whole sequence.
		t := ctx.Cost.PrefillTime(ctx.Model, ctx.Batch, plan.Attended)
		ctx.Sys.Advance(t)
		b.Add(trace.CatFullForward, t)
		return
	}
	sched.ChargeStepCompute(ctx, plan)
}
