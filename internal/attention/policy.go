// Package attention implements the sparse attention policies the paper
// compares: dense attention, Longformer-style local attention [3],
// SparseTransformer-style strided attention [8], H2O-style heavy-hitter
// retention [43], and ALISA's Sparse Window Attention (Algorithm 1).
//
// A Policy decides, at every decode step, which cached token positions the
// new token may attend to. Policies are stateful per layer: SWA and H2O
// learn token importance from the attention weights observed at earlier
// steps. The same Policy drives both the runnable decoder (package model's
// Selector hook) and the synthetic attention-process experiments (package
// oracle), so algorithmic results and system results use one code path.
package attention

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Policy selects cached token positions at each decode step.
//
// Select returns, for the given layer, the cache indices (0..n-1, n =
// tokens currently cached) the step attends to, in ascending order. The
// returned slice may alias policy-owned scratch: it is valid only until
// the next Select call on the same policy, and callers that retain it must
// copy. Observe feeds back the post-softmax attention weights the step
// produced: indices are global token positions with the current token
// appended last, weights align with indices; implementations must copy
// anything they keep and must tolerate Observe calls with indices they did
// not select (the dense reference path).
//
// Stateful policies confine mutable state to the layer argument, so
// distinct layers of the same policy may be driven from distinct
// goroutines concurrently (package oracle's parallel Evaluate relies on
// this); a single layer is not safe for concurrent use.
type Policy interface {
	Name() string
	Select(layer, n int) []int
	Observe(layer int, indices []int, weights []float64)
}

// Budget converts a caching ratio r into a token budget for n cached
// tokens: ⌊n·r⌉, at least 1 when n > 0 (attending to nothing collapses the
// distribution).
func Budget(n int, r float64) int {
	if n <= 0 {
		return 0
	}
	b := int(math.Floor(float64(n)*r + 0.5))
	if b < 1 {
		b = 1
	}
	if b > n {
		b = n
	}
	return b
}

// Dense, Local, and Strided are stateless, so one instance may serve all
// layers concurrently (package oracle's parallel Evaluate does exactly
// that). That sharing is also why their Select allocates a fresh slice
// per call rather than reusing scratch: policy-level scratch would race
// across layer goroutines, and unlike SWA/H2O they have no per-layer
// state to hang it from.

// Dense attends to every cached token — the accuracy reference.
type Dense struct{}

// NewDense returns the dense (full) attention policy.
func NewDense() *Dense { return &Dense{} }

// Name implements Policy.
func (*Dense) Name() string { return "dense" }

// Select implements Policy, returning every cache index.
func (*Dense) Select(_, n int) []int { return ascending(0, n) }

// Observe implements Policy as a no-op; dense attention is stateless.
func (*Dense) Observe(int, []int, []float64) {}

// Local is Longformer-style sliding-window attention: keep only the most
// recent Budget(n, r) tokens. Its failure mode, per the paper's Fig. 4-5,
// is losing important tokens that sit far from the current position.
type Local struct {
	Ratio float64
}

// NewLocal returns a local-attention policy with the given caching ratio.
func NewLocal(ratio float64) *Local { return &Local{Ratio: ratio} }

// Name implements Policy.
func (p *Local) Name() string { return "local" }

// Select implements Policy, returning the last ⌊n·r⌉ cache indices.
func (p *Local) Select(_, n int) []int {
	b := Budget(n, p.Ratio)
	return ascending(n-b, n)
}

// Observe implements Policy as a no-op; the window ignores history.
func (*Local) Observe(int, []int, []float64) {}

// Strided is SparseTransformer-style strided attention: attend to every
// stride-th token walking back from the current position, with the stride
// chosen so roughly ⌊n·r⌉ tokens are kept.
type Strided struct {
	Ratio float64
}

// NewStrided returns a strided policy with the given caching ratio.
func NewStrided(ratio float64) *Strided { return &Strided{Ratio: ratio} }

// Name implements Policy.
func (p *Strided) Name() string { return "strided" }

// Select implements Policy.
func (p *Strided) Select(_, n int) []int {
	if n <= 0 {
		return nil
	}
	b := Budget(n, p.Ratio)
	stride := n / b
	if stride < 1 {
		stride = 1
	}
	idx := make([]int, 0, b)
	for i := n - 1; i >= 0 && len(idx) < b; i -= stride {
		idx = append(idx, i)
	}
	reverse(idx)
	return idx
}

// Observe implements Policy as a no-op.
func (*Strided) Observe(int, []int, []float64) {}

// SWA is ALISA's Sparse Window Attention (Algorithm 1). At each step with n
// cached tokens it keeps k = ⌊n·r/2⌉ locally static tokens (the most
// recent k) and k globally dynamic tokens — the positions with the largest
// local attention sum, i.e. the column sums of the attention weights
// observed over the preceding k steps. The mixture captures both language
// locality and drifting long-range importance, which is why its attention
// score distribution tracks dense attention (paper Fig. 4(d)).
type SWA struct {
	Ratio  float64
	layers []*swaLayer
}

// swaLayer keeps the observation window as a ring of row descriptors over
// a flat index/weight arena, plus the scratch the selection reuses across
// steps. Pushes append to the arena and trims advance a start offset;
// the arena compacts when its dead prefix outgrows the live data, so a
// warmed-up layer is amortised allocation-free per decode step.
type swaLayer struct {
	ring  []winRow // circular descriptors, oldest at head
	head  int      // ring index of the oldest retained row
	count int      // retained rows

	arenaIdx []int     // concatenated indices of the retained rows
	arenaW   []float64 // concatenated weights, in lockstep with arenaIdx
	start    int       // arena offset of the oldest live row

	sum []float64 // per-position weight sum over the retained rows

	selScratch
}

// selScratch is the reusable selection state shared by the SWA and H2O
// layer types, together with the top-k + local-window assembly both
// policies' Select methods reduce to.
type selScratch struct {
	scores []float32 // per-position score vector
	global []int     // top-k winners
	sel    []int     // returned index slice
	topk   tensor.TopKScratch
}

// selectTopPlusLocal builds the selection both budget-splitting policies
// share: the top-g positions before localStart ranked by sum (ascending
// after selection), followed by the local window [localStart, n). With
// recencyEps, unobserved ties break toward newer tokens so cold-start
// behaviour degrades to local attention. The result aliases the scratch.
func (sc *selScratch) selectTopPlusLocal(sum []float64, localStart, k, n int, recencyEps bool) []int {
	scores := growScores(&sc.scores, localStart)
	for pos := 0; pos < localStart && pos < len(sum); pos++ {
		scores[pos] = float32(sum[pos])
	}
	if recencyEps {
		// Small recency epsilon for deterministic, recency-biased tie-breaks.
		for pos := range scores {
			scores[pos] += float32(pos) * 1e-12
		}
	}
	g := k
	if g > localStart {
		g = localStart
	}
	sc.global = sc.topk.ArgTopK(scores, g, sc.global)
	sortInts(sc.global)
	sc.sel = append(sc.sel[:0], sc.global...)
	sc.sel = appendAscending(sc.sel, localStart, n)
	return sc.sel
}

// winRow locates one observed row inside the arenas.
type winRow struct{ off, n int }

// push appends one observed row to the window.
func (st *swaLayer) push(indices []int, weights []float64) {
	if st.count == len(st.ring) {
		grown := make([]winRow, max(8, 2*len(st.ring)))
		for i := 0; i < st.count; i++ {
			grown[i] = st.ring[(st.head+i)%len(st.ring)]
		}
		st.ring = grown
		st.head = 0
	}
	slot := st.head + st.count
	if slot >= len(st.ring) {
		slot -= len(st.ring)
	}
	st.ring[slot] = winRow{off: len(st.arenaIdx), n: len(indices)}
	st.arenaIdx = append(st.arenaIdx, indices...)
	st.arenaW = append(st.arenaW, weights...)
	st.count++
}

// NewSWA returns a Sparse Window Attention policy with the given caching
// ratio for a model with the given layer count.
func NewSWA(ratio float64, layers int) *SWA {
	p := &SWA{Ratio: ratio, layers: make([]*swaLayer, layers)}
	for i := range p.layers {
		p.layers[i] = &swaLayer{}
	}
	return p
}

// Name implements Policy.
func (p *SWA) Name() string { return "swa" }

// K returns the per-half token budget k = ⌊n·r/2⌉ from Algorithm 1, at
// least 1 for non-empty caches.
func (p *SWA) K(n int) int {
	if n <= 0 {
		return 0
	}
	k := int(math.Floor(float64(n)*p.Ratio/2 + 0.5))
	if k < 1 {
		k = 1
	}
	if 2*k > n {
		k = n / 2
		if k < 1 {
			k = 1
		}
	}
	return k
}

// Select implements Policy: the union of locally static tokens
// [n−k, n−1] and the top-k earlier positions by local attention sum. The
// returned slice is scratch owned by the layer, valid until the next
// Select on the same layer.
func (p *SWA) Select(layer, n int) []int {
	if n <= 0 {
		return nil
	}
	k := p.K(n)
	st := p.layer(layer)
	st.trimTo(k)

	localStart := n - k
	if localStart == 0 {
		st.sel = appendAscending(st.sel[:0], 0, n)
		return st.sel
	}

	// Globally dynamic: top-k positions before the local window, ranked by
	// the local attention sum S. Positions never observed score zero and
	// lose to any observed position.
	return st.selectTopPlusLocal(st.sum, localStart, k, n, true)
}

// growScores returns (*buf)[:n] zeroed, growing the backing array
// geometrically so score vectors that lengthen by one position per decode
// step do not reallocate every call.
func growScores(buf *[]float32, n int) []float32 {
	if cap(*buf) < n {
		*buf = make([]float32, max(n, 2*cap(*buf)))
	}
	scores := (*buf)[:n]
	for i := range scores {
		scores[i] = 0
	}
	return scores
}

// Observe implements Policy, pushing this step's attention row into the
// layer's local-sum window. The indices and weights are copied.
func (p *SWA) Observe(layer int, indices []int, weights []float64) {
	st := p.layer(layer)
	st.push(indices, weights)
	for i, pos := range indices {
		st.grow(pos + 1)
		st.sum[pos] += weights[i]
	}
}

func (p *SWA) layer(l int) *swaLayer {
	if l < 0 || l >= len(p.layers) {
		panic(fmt.Sprintf("attention: layer %d out of range %d", l, len(p.layers)))
	}
	return p.layers[l]
}

func (st *swaLayer) grow(n int) {
	for len(st.sum) < n {
		st.sum = append(st.sum, 0)
	}
}

// trimTo keeps only the most recent k observed rows in the running sum:
// S = Σ AW[n−k : n−1] from Algorithm 1, maintained incrementally. Expired
// rows become a dead arena prefix; when that prefix outgrows the live
// data, the arena compacts in place (amortised O(1) per observed weight).
func (st *swaLayer) trimTo(k int) {
	for st.count > k {
		row := st.ring[st.head]
		idx := st.arenaIdx[row.off : row.off+row.n]
		w := st.arenaW[row.off : row.off+row.n]
		for i, pos := range idx {
			if pos < len(st.sum) {
				st.sum[pos] -= w[i]
			}
		}
		st.start = row.off + row.n
		st.head++
		if st.head == len(st.ring) {
			st.head = 0
		}
		st.count--
	}
	if st.start > len(st.arenaIdx)-st.start {
		live := len(st.arenaIdx) - st.start
		copy(st.arenaIdx, st.arenaIdx[st.start:])
		copy(st.arenaW, st.arenaW[st.start:])
		st.arenaIdx = st.arenaIdx[:live]
		st.arenaW = st.arenaW[:live]
		for i := 0; i < st.count; i++ {
			st.ring[(st.head+i)%len(st.ring)].off -= st.start
		}
		st.start = 0
	}
}

// H2O is the heavy-hitter oracle baseline [43]: like SWA it splits the
// budget between recent tokens and scored tokens, but scores are the
// *cumulative* attention sum over all steps rather than ALISA's local
// (last-k-step) sum. Stale heavy hitters therefore linger, which is the
// behavioural difference the paper calls out in §II-B.
type H2O struct {
	Ratio  float64
	layers []*h2oLayer
}

// h2oLayer is the cumulative attention sum plus the same selection scratch
// swaLayer carries, reused across steps.
type h2oLayer struct {
	sum []float64 // cumulative attention sum per position

	selScratch
}

// NewH2O returns a heavy-hitter policy with the given caching ratio.
func NewH2O(ratio float64, layers int) *H2O {
	p := &H2O{Ratio: ratio, layers: make([]*h2oLayer, layers)}
	for i := range p.layers {
		p.layers[i] = &h2oLayer{}
	}
	return p
}

// Name implements Policy.
func (p *H2O) Name() string { return "h2o" }

// Select implements Policy: last-k recents plus top-k cumulative scorers.
// The returned slice is scratch owned by the layer, valid until the next
// Select on the same layer.
func (p *H2O) Select(layer, n int) []int {
	if n <= 0 {
		return nil
	}
	k := int(math.Floor(float64(n)*p.Ratio/2 + 0.5))
	if k < 1 {
		k = 1
	}
	if 2*k > n {
		k = n / 2
		if k < 1 {
			k = 1
		}
	}
	st := p.layers[layer]
	localStart := n - k
	if localStart == 0 {
		st.sel = appendAscending(st.sel[:0], 0, n)
		return st.sel
	}
	// No recency epsilon: H2O ranks purely by cumulative mass, which is
	// exactly the stale-hitter behaviour the ablation isolates.
	return st.selectTopPlusLocal(st.sum, localStart, k, n, false)
}

// Observe implements Policy, accumulating into the cumulative sums.
func (p *H2O) Observe(layer int, indices []int, weights []float64) {
	st := p.layers[layer]
	for i, pos := range indices {
		for len(st.sum) <= pos {
			st.sum = append(st.sum, 0)
		}
		st.sum[pos] += weights[i]
	}
}

func ascending(from, to int) []int {
	if to <= from {
		return nil
	}
	idx := make([]int, to-from)
	for i := range idx {
		idx[i] = from + i
	}
	return idx
}

// appendAscending appends from, from+1, …, to−1 to dst.
func appendAscending(dst []int, from, to int) []int {
	for i := from; i < to; i++ {
		dst = append(dst, i)
	}
	return dst
}

func reverse(v []int) {
	for i, j := 0, len(v)-1; i < j; i, j = i+1, j-1 {
		v[i], v[j] = v[j], v[i]
	}
}

// sortInts is insertion sort: selection lists are short and nearly sorted,
// and avoiding package sort keeps this hot path allocation-free.
func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
