// Package attention implements the sparse attention policies the paper
// compares: dense attention, Longformer-style local attention [3],
// SparseTransformer-style strided attention [8], H2O-style heavy-hitter
// retention [43], and ALISA's Sparse Window Attention (Algorithm 1).
//
// A Policy decides, at every decode step, which cached token positions the
// new token may attend to. Policies are stateful per layer: SWA and H2O
// learn token importance from the attention weights observed at earlier
// steps. The same Policy drives both the runnable decoder (package model's
// Selector hook) and the synthetic attention-process experiments (package
// oracle), so algorithmic results and system results use one code path.
package attention

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Policy selects cached token positions at each decode step.
//
// Select returns, for the given layer, the cache indices (0..n-1, n =
// tokens currently cached) the step attends to, in ascending order.
// Observe feeds back the post-softmax attention weights the step produced:
// indices are global token positions with the current token appended last,
// weights align with indices. Implementations must tolerate Observe calls
// with indices they did not select (the dense reference path).
type Policy interface {
	Name() string
	Select(layer, n int) []int
	Observe(layer int, indices []int, weights []float64)
}

// Budget converts a caching ratio r into a token budget for n cached
// tokens: ⌊n·r⌉, at least 1 when n > 0 (attending to nothing collapses the
// distribution).
func Budget(n int, r float64) int {
	if n <= 0 {
		return 0
	}
	b := int(math.Floor(float64(n)*r + 0.5))
	if b < 1 {
		b = 1
	}
	if b > n {
		b = n
	}
	return b
}

// Dense attends to every cached token — the accuracy reference.
type Dense struct{}

// NewDense returns the dense (full) attention policy.
func NewDense() *Dense { return &Dense{} }

// Name implements Policy.
func (*Dense) Name() string { return "dense" }

// Select implements Policy, returning every cache index.
func (*Dense) Select(_, n int) []int { return ascending(0, n) }

// Observe implements Policy as a no-op; dense attention is stateless.
func (*Dense) Observe(int, []int, []float64) {}

// Local is Longformer-style sliding-window attention: keep only the most
// recent Budget(n, r) tokens. Its failure mode, per the paper's Fig. 4-5,
// is losing important tokens that sit far from the current position.
type Local struct {
	Ratio float64
}

// NewLocal returns a local-attention policy with the given caching ratio.
func NewLocal(ratio float64) *Local { return &Local{Ratio: ratio} }

// Name implements Policy.
func (p *Local) Name() string { return "local" }

// Select implements Policy, returning the last ⌊n·r⌉ cache indices.
func (p *Local) Select(_, n int) []int {
	b := Budget(n, p.Ratio)
	return ascending(n-b, n)
}

// Observe implements Policy as a no-op; the window ignores history.
func (*Local) Observe(int, []int, []float64) {}

// Strided is SparseTransformer-style strided attention: attend to every
// stride-th token walking back from the current position, with the stride
// chosen so roughly ⌊n·r⌉ tokens are kept.
type Strided struct {
	Ratio float64
}

// NewStrided returns a strided policy with the given caching ratio.
func NewStrided(ratio float64) *Strided { return &Strided{Ratio: ratio} }

// Name implements Policy.
func (p *Strided) Name() string { return "strided" }

// Select implements Policy.
func (p *Strided) Select(_, n int) []int {
	if n <= 0 {
		return nil
	}
	b := Budget(n, p.Ratio)
	stride := n / b
	if stride < 1 {
		stride = 1
	}
	idx := make([]int, 0, b)
	for i := n - 1; i >= 0 && len(idx) < b; i -= stride {
		idx = append(idx, i)
	}
	reverse(idx)
	return idx
}

// Observe implements Policy as a no-op.
func (*Strided) Observe(int, []int, []float64) {}

// SWA is ALISA's Sparse Window Attention (Algorithm 1). At each step with n
// cached tokens it keeps k = ⌊n·r/2⌉ locally static tokens (the most
// recent k) and k globally dynamic tokens — the positions with the largest
// local attention sum, i.e. the column sums of the attention weights
// observed over the preceding k steps. The mixture captures both language
// locality and drifting long-range importance, which is why its attention
// score distribution tracks dense attention (paper Fig. 4(d)).
type SWA struct {
	Ratio  float64
	layers []*swaLayer
}

type swaLayer struct {
	steps []stepRow // history of observed attention rows, oldest first
	sum   []float64 // per-position weight sum over steps[cut:]
	cut   int       // steps[:cut] have been subtracted out of sum
}

type stepRow struct {
	indices []int
	weights []float64
}

// NewSWA returns a Sparse Window Attention policy with the given caching
// ratio for a model with the given layer count.
func NewSWA(ratio float64, layers int) *SWA {
	p := &SWA{Ratio: ratio, layers: make([]*swaLayer, layers)}
	for i := range p.layers {
		p.layers[i] = &swaLayer{}
	}
	return p
}

// Name implements Policy.
func (p *SWA) Name() string { return "swa" }

// K returns the per-half token budget k = ⌊n·r/2⌉ from Algorithm 1, at
// least 1 for non-empty caches.
func (p *SWA) K(n int) int {
	if n <= 0 {
		return 0
	}
	k := int(math.Floor(float64(n)*p.Ratio/2 + 0.5))
	if k < 1 {
		k = 1
	}
	if 2*k > n {
		k = n / 2
		if k < 1 {
			k = 1
		}
	}
	return k
}

// Select implements Policy: the union of locally static tokens
// [n−k, n−1] and the top-k earlier positions by local attention sum.
func (p *SWA) Select(layer, n int) []int {
	if n <= 0 {
		return nil
	}
	k := p.K(n)
	st := p.layer(layer)
	st.trimTo(k)

	localStart := n - k
	local := ascending(localStart, n)
	if localStart == 0 {
		return local
	}

	// Globally dynamic: top-k positions before the local window, ranked by
	// the local attention sum S. Positions never observed score zero and
	// lose to any observed position; ties break toward newer tokens so the
	// cold-start behaviour degrades to local attention.
	scores := make([]float32, localStart)
	for pos := 0; pos < localStart && pos < len(st.sum); pos++ {
		scores[pos] = float32(st.sum[pos])
	}
	// Small recency epsilon for deterministic, recency-biased tie-breaks.
	for pos := range scores {
		scores[pos] += float32(pos) * 1e-12
	}
	g := k
	if g > localStart {
		g = localStart
	}
	global := tensor.ArgTopK(scores, g)
	sortInts(global)
	return append(global, local...)
}

// Observe implements Policy, pushing this step's attention row into the
// layer's local-sum window.
func (p *SWA) Observe(layer int, indices []int, weights []float64) {
	st := p.layer(layer)
	row := stepRow{
		indices: append([]int(nil), indices...),
		weights: append([]float64(nil), weights...),
	}
	st.steps = append(st.steps, row)
	for i, pos := range row.indices {
		st.grow(pos + 1)
		st.sum[pos] += row.weights[i]
	}
}

func (p *SWA) layer(l int) *swaLayer {
	if l < 0 || l >= len(p.layers) {
		panic(fmt.Sprintf("attention: layer %d out of range %d", l, len(p.layers)))
	}
	return p.layers[l]
}

func (st *swaLayer) grow(n int) {
	for len(st.sum) < n {
		st.sum = append(st.sum, 0)
	}
}

// trimTo keeps only the most recent k observed rows in the running sum:
// S = Σ AW[n−k : n−1] from Algorithm 1, maintained incrementally.
func (st *swaLayer) trimTo(k int) {
	for len(st.steps)-st.cut > k {
		row := st.steps[st.cut]
		for i, pos := range row.indices {
			if pos < len(st.sum) {
				st.sum[pos] -= row.weights[i]
			}
		}
		st.steps[st.cut] = stepRow{} // release for GC
		st.cut++
	}
}

// H2O is the heavy-hitter oracle baseline [43]: like SWA it splits the
// budget between recent tokens and scored tokens, but scores are the
// *cumulative* attention sum over all steps rather than ALISA's local
// (last-k-step) sum. Stale heavy hitters therefore linger, which is the
// behavioural difference the paper calls out in §II-B.
type H2O struct {
	Ratio  float64
	layers [][]float64 // cumulative attention sum per position
}

// NewH2O returns a heavy-hitter policy with the given caching ratio.
func NewH2O(ratio float64, layers int) *H2O {
	return &H2O{Ratio: ratio, layers: make([][]float64, layers)}
}

// Name implements Policy.
func (p *H2O) Name() string { return "h2o" }

// Select implements Policy: last-k recents plus top-k cumulative scorers.
func (p *H2O) Select(layer, n int) []int {
	if n <= 0 {
		return nil
	}
	k := int(math.Floor(float64(n)*p.Ratio/2 + 0.5))
	if k < 1 {
		k = 1
	}
	if 2*k > n {
		k = n / 2
		if k < 1 {
			k = 1
		}
	}
	localStart := n - k
	local := ascending(localStart, n)
	if localStart == 0 {
		return local
	}
	sums := p.layers[layer]
	scores := make([]float32, localStart)
	for pos := 0; pos < localStart && pos < len(sums); pos++ {
		scores[pos] = float32(sums[pos])
	}
	g := k
	if g > localStart {
		g = localStart
	}
	global := tensor.ArgTopK(scores, g)
	sortInts(global)
	return append(global, local...)
}

// Observe implements Policy, accumulating into the global sums.
func (p *H2O) Observe(layer int, indices []int, weights []float64) {
	sums := p.layers[layer]
	for i, pos := range indices {
		for len(sums) <= pos {
			sums = append(sums, 0)
		}
		sums[pos] += weights[i]
	}
	p.layers[layer] = sums
}

func ascending(from, to int) []int {
	if to <= from {
		return nil
	}
	idx := make([]int, to-from)
	for i := range idx {
		idx[i] = from + i
	}
	return idx
}

func reverse(v []int) {
	for i, j := 0, len(v)-1; i < j; i, j = i+1, j-1 {
		v[i], v[j] = v[j], v[i]
	}
}

// sortInts is insertion sort: selection lists are short and nearly sorted,
// and avoiding package sort keeps this hot path allocation-free.
func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
