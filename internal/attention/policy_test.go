package attention

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBudget(t *testing.T) {
	cases := []struct {
		n    int
		r    float64
		want int
	}{
		{0, 0.5, 0},
		{10, 0.5, 5},
		{10, 0.04, 1}, // floor would be 0; clamp to 1
		{10, 1.0, 10},
		{10, 2.0, 10}, // clamp to n
		{3, 0.5, 2},   // 1.5 rounds to 2
	}
	for _, c := range cases {
		if got := Budget(c.n, c.r); got != c.want {
			t.Errorf("Budget(%d, %v) = %d, want %d", c.n, c.r, got, c.want)
		}
	}
}

func TestDenseSelectsEverything(t *testing.T) {
	p := NewDense()
	got := p.Select(0, 5)
	if len(got) != 5 {
		t.Fatalf("dense selected %d of 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("dense indices = %v", got)
		}
	}
	if p.Select(0, 0) != nil {
		t.Fatal("empty cache should select nothing")
	}
}

func TestLocalKeepsMostRecent(t *testing.T) {
	p := NewLocal(0.4)
	got := p.Select(0, 10)
	want := []int{6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("local selected %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("local selected %v, want %v", got, want)
		}
	}
}

func TestStridedCoversWholeHistory(t *testing.T) {
	p := NewStrided(0.25)
	got := p.Select(0, 16)
	if len(got) != 4 {
		t.Fatalf("strided selected %d tokens, want 4: %v", len(got), got)
	}
	// Must include the most recent token and reach far back.
	if got[len(got)-1] != 15 {
		t.Fatalf("strided must include current-1 position: %v", got)
	}
	if got[0] > 4 {
		t.Fatalf("strided should reach early positions: %v", got)
	}
}

func TestSWAKMatchesAlgorithm1(t *testing.T) {
	p := NewSWA(0.4, 1)
	// k = ⌊n·r/2⌉ = ⌊10·0.4/2⌉ = 2
	if got := p.K(10); got != 2 {
		t.Fatalf("K(10) = %d, want 2", got)
	}
	// Clamp: 2k may not exceed n.
	if got := p.K(1); got != 1 {
		t.Fatalf("K(1) = %d, want 1 (n/2 clamp floor)", got)
	}
}

func TestSWAColdStartIsLocal(t *testing.T) {
	// Before any Observe, the global half has all-zero scores and must pick
	// deterministically (recency-biased), and the local half is the window.
	p := NewSWA(0.4, 1)
	got := p.Select(0, 10)
	if len(got) != 4 {
		t.Fatalf("selected %v, want 4 tokens", got)
	}
	// Local window [8,9] must be present.
	if got[len(got)-1] != 9 || got[len(got)-2] != 8 {
		t.Fatalf("local window missing: %v", got)
	}
}

func TestSWATracksHeavyHitter(t *testing.T) {
	// Feed attention rows where position 2 consistently dominates; SWA's
	// global half must select it even when it is far outside the window.
	p := NewSWA(0.2, 1)
	n := 40
	for step := 10; step < n; step++ {
		idx := []int{2, step - 2, step - 1, step}
		w := []float64{0.7, 0.1, 0.1, 0.1}
		p.Observe(0, idx, w)
	}
	sel := p.Select(0, n)
	found := false
	for _, i := range sel {
		if i == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("SWA failed to keep heavy hitter 2: %v", sel)
	}
}

func TestSWALocalSumForgetsStaleHitters(t *testing.T) {
	// A token that was heavy long ago but silent within the last k steps
	// must lose to a recently heavy token — the local vs. global sum
	// distinction between SWA and H2O.
	swa := NewSWA(0.2, 1)
	h2o := NewH2O(0.2, 1)
	n := 100
	k := swa.K(n) // window of recent steps that count
	for step := 10; step < n; step++ {
		var idx []int
		var w []float64
		if step < n-3*k {
			idx = []int{3, step} // position 3 dominant early, huge mass
			w = []float64{0.9, 0.1}
		} else {
			idx = []int{7, step} // position 7 dominant recently, modest mass
			w = []float64{0.6, 0.4}
		}
		swa.Observe(0, idx, w)
		h2o.Observe(0, idx, w)
	}
	swaSel := swa.Select(0, n)
	h2oSel := h2o.Select(0, n)
	if !contains(swaSel, 7) {
		t.Fatalf("SWA should keep recently-hot token 7: %v", swaSel)
	}
	if contains(swaSel, 3) {
		t.Fatalf("SWA local sum should have forgotten stale token 3: %v", swaSel)
	}
	if !contains(h2oSel, 3) {
		t.Fatalf("H2O cumulative sum should still hold stale token 3: %v", h2oSel)
	}
}

func TestSWASelectionSorted(t *testing.T) {
	p := NewSWA(0.5, 1)
	rng := rand.New(rand.NewSource(1))
	for step := 1; step <= 30; step++ {
		sel := p.Select(0, step)
		for i := 1; i < len(sel); i++ {
			if sel[i] <= sel[i-1] {
				t.Fatalf("step %d: selection not strictly ascending: %v", step, sel)
			}
		}
		w := make([]float64, len(sel)+1)
		for i := range w {
			w[i] = rng.Float64()
		}
		p.Observe(0, append(sel, step), w)
	}
}

func TestSWAPerLayerState(t *testing.T) {
	p := NewSWA(0.2, 2)
	// Make position 1 hot on layer 0 only.
	for step := 10; step < 40; step++ {
		p.Observe(0, []int{1, step}, []float64{0.9, 0.1})
		p.Observe(1, []int{5, step}, []float64{0.9, 0.1})
	}
	if sel := p.Select(0, 40); !contains(sel, 1) {
		t.Fatalf("layer 0 lost its hitter: %v", sel)
	}
	if sel := p.Select(1, 40); !contains(sel, 5) || contains(sel, 1) {
		t.Fatalf("layer 1 state bled across layers: %v", sel)
	}
}

func TestSWALayerOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range layer")
		}
	}()
	NewSWA(0.5, 1).Select(3, 10)
}

func TestH2OKeepsCumulativeHitters(t *testing.T) {
	p := NewH2O(0.2, 1)
	for step := 10; step < 50; step++ {
		p.Observe(0, []int{4, step}, []float64{0.8, 0.2})
	}
	if sel := p.Select(0, 50); !contains(sel, 4) {
		t.Fatalf("H2O lost heavy hitter: %v", sel)
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]Policy{
		"dense":   NewDense(),
		"local":   NewLocal(0.5),
		"strided": NewStrided(0.5),
		"swa":     NewSWA(0.5, 1),
		"h2o":     NewH2O(0.5, 1),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}

// Property: every policy returns ascending, in-range, duplicate-free
// indices whose count never exceeds the cache size.
func TestSelectionWellFormedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 0.05 + rng.Float64()*0.9
		policies := []Policy{
			NewDense(), NewLocal(r), NewStrided(r), NewSWA(r, 1), NewH2O(r, 1),
		}
		for _, p := range policies {
			for step := 0; step < 24; step++ {
				sel := p.Select(0, step)
				if len(sel) > step {
					return false
				}
				seen := map[int]bool{}
				prev := -1
				for _, i := range sel {
					if i < 0 || i >= step || seen[i] || i <= prev {
						return false
					}
					seen[i] = true
					prev = i
				}
				w := make([]float64, len(sel)+1)
				for i := range w {
					w[i] = rng.Float64()
				}
				p.Observe(0, append(append([]int(nil), sel...), step), w)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: SWA at caching ratio 1.0 selects every cached token — it
// degrades to dense attention exactly, one of the paper's implicit
// invariants (0 % KV sparsity = dense).
func TestSWAFullRatioIsDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewSWA(1.0, 1)
		for step := 1; step < 20; step++ {
			sel := p.Select(0, step)
			// k = ⌊step/2⌉ each half; for even step this is everything, for
			// odd step one token may drop due to the 2k ≤ n clamp — allow
			// n−1 as the floor.
			if len(sel) < step-1 {
				return false
			}
			w := make([]float64, len(sel)+1)
			for i := range w {
				w[i] = rng.Float64()
			}
			p.Observe(0, append(sel, step), w)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func contains(v []int, x int) bool {
	for _, e := range v {
		if e == x {
			return true
		}
	}
	return false
}
