package attention

import (
	"fmt"
	"sort"
	"sync"
)

// Factory constructs a fresh policy instance for a model with the given
// layer count at the given caching ratio r = 1 − KV sparsity. Policies
// are stateful per layer, so factories must return independent instances
// on every call.
type Factory func(ratio float64, layers int) (Policy, error)

// registry maps policy names to factories. Built-ins are installed at
// package init; user code extends the set through Register.
var registry = struct {
	sync.RWMutex
	m map[string]Factory
}{m: make(map[string]Factory)}

// builtin guards the paper's comparison set against replacement so the
// pinned experiment results stay trustworthy.
var builtin = map[string]bool{}

func init() {
	for name, f := range map[string]Factory{
		"dense":   func(float64, int) (Policy, error) { return NewDense(), nil },
		"local":   func(r float64, _ int) (Policy, error) { return NewLocal(r), nil },
		"strided": func(r float64, _ int) (Policy, error) { return NewStrided(r), nil },
		"swa":     func(r float64, l int) (Policy, error) { return NewSWA(r, l), nil },
		"h2o":     func(r float64, l int) (Policy, error) { return NewH2O(r, l), nil },
	} {
		registry.m[name] = f
		builtin[name] = true
	}
}

// Register makes a sparse-attention policy constructible by name through
// ByName, from any package — the extension point for the eviction and
// selection variants beyond the paper's comparison set. Built-in names
// cannot be replaced; re-registering an extension name replaces it. Safe
// for concurrent use with itself and with ByName.
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("attention: Register with empty name")
	}
	if f == nil {
		return fmt.Errorf("attention: Register %q with nil factory", name)
	}
	if builtin[name] {
		return fmt.Errorf("attention: Register %q: cannot replace a built-in policy", name)
	}
	registry.Lock()
	defer registry.Unlock()
	registry.m[name] = f
	return nil
}

// ByName constructs a fresh policy from its registered name at the given
// caching ratio for a model with the given layer count. Safe for
// concurrent use.
func ByName(name string, ratio float64, layers int) (Policy, error) {
	registry.RLock()
	f, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("attention: unknown policy %q (registered: %v)", name, Registered())
	}
	return f(ratio, layers)
}

// MustByName is ByName for static names — the experiment tables whose
// policy names are compile-time constants. It panics on an unknown name
// or a factory error, either of which is a programming error for a
// static configuration, not an input error.
func MustByName(name string, ratio float64, layers int) Policy {
	p, err := ByName(name, ratio, layers)
	if err != nil {
		panic(err)
	}
	return p
}

// Names lists the paper's comparison set in presentation order.
// Runtime-registered extensions are resolvable through ByName and
// enumerable through Registered but do not join this list; the pinned
// experiment outputs iterate Names.
func Names() []string {
	return []string{"dense", "local", "strided", "h2o", "swa"}
}

// Registered lists every registered policy name in sorted order.
func Registered() []string {
	registry.RLock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	registry.RUnlock()
	sort.Strings(names)
	return names
}
