package numeric

import (
	"math"
	"testing"

	"repro/internal/attention"
	"repro/internal/model"
)

func TestDenseSelfComparisonIsExact(t *testing.T) {
	rep, err := Compare(Config{ModelSeed: 1, DataSeed: 2, Tokens: 32})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TopAgreement != 1 {
		t.Fatalf("dense vs dense agreement = %v, want 1", rep.TopAgreement)
	}
	if math.Abs(rep.LogitCosine-1) > 1e-6 {
		t.Fatalf("dense vs dense cosine = %v, want 1", rep.LogitCosine)
	}
	if rep.MeanNLL != rep.DenseNLL {
		t.Fatalf("dense NLL mismatch: %v vs %v", rep.MeanNLL, rep.DenseNLL)
	}
}

func TestSWATracksDenseOnLiveTensors(t *testing.T) {
	cfg := model.SmallConfig()
	swa, err := Compare(Config{
		ModelSeed: 1, DataSeed: 2, Tokens: 96,
		Policy: attention.NewSWA(0.4, cfg.Layers),
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := Compare(Config{
		ModelSeed: 1, DataSeed: 2, Tokens: 96,
		Policy: attention.NewLocal(0.4),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The oracle-level ordering must hold on real softmax attention too.
	if swa.LogitCosine <= local.LogitCosine {
		t.Fatalf("SWA cosine %.4f should beat local %.4f", swa.LogitCosine, local.LogitCosine)
	}
	if swa.TopAgreement <= local.TopAgreement {
		t.Fatalf("SWA agreement %.3f should beat local %.3f", swa.TopAgreement, local.TopAgreement)
	}
	if swa.LogitCosine < 0.85 {
		t.Fatalf("SWA at 60%% sparsity should stay close to dense: cosine %.4f", swa.LogitCosine)
	}
}

func TestSWAFullRatioMatchesDense(t *testing.T) {
	cfg := model.SmallConfig()
	rep, err := Compare(Config{
		ModelSeed: 3, DataSeed: 4, Tokens: 48,
		Policy: attention.NewSWA(1.0, cfg.Layers),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ratio 1.0 may drop one token on odd steps (k-clamping), so demand
	// near-identity rather than exactness.
	if rep.LogitCosine < 0.995 {
		t.Fatalf("SWA at ratio 1.0 cosine = %v, want ≈1", rep.LogitCosine)
	}
	if rep.TopAgreement < 0.95 {
		t.Fatalf("SWA at ratio 1.0 agreement = %v, want ≈1", rep.TopAgreement)
	}
}

func TestINT8QuantizationNearlyFree(t *testing.T) {
	// Fig. 8's compression finding on live tensors: INT8 KV storage
	// barely moves the logits.
	plain, err := Compare(Config{ModelSeed: 5, DataSeed: 6, Tokens: 64})
	if err != nil {
		t.Fatal(err)
	}
	int8, err := Compare(Config{ModelSeed: 5, DataSeed: 6, Tokens: 64, KVBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if int8.LogitCosine < 0.99 {
		t.Fatalf("INT8 KV cosine vs dense = %.4f, want ≥0.99", int8.LogitCosine)
	}
	if int8.TopAgreement < 0.9 {
		t.Fatalf("INT8 KV agreement = %.3f, want ≥0.9", int8.TopAgreement)
	}
	nllShift := math.Abs(int8.MeanNLL - plain.MeanNLL)
	if nllShift > 0.1 {
		t.Fatalf("INT8 NLL shift %.4f too large", nllShift)
	}
}

func TestINT4NoisierThanINT8(t *testing.T) {
	int8, err := Compare(Config{ModelSeed: 7, DataSeed: 8, Tokens: 64, KVBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	int4, err := Compare(Config{ModelSeed: 7, DataSeed: 8, Tokens: 64, KVBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if int4.LogitCosine > int8.LogitCosine {
		t.Fatalf("INT4 cosine %.4f should not beat INT8 %.4f", int4.LogitCosine, int8.LogitCosine)
	}
}

func TestAlisaStackOnLiveTensors(t *testing.T) {
	// The full ALISA algorithm stack (SWA + INT8 KV) stays close to the
	// pure SWA run — the compression is accuracy-neutral on top of
	// sparsity, numerically.
	cfg := model.SmallConfig()
	swa, err := Compare(Config{
		ModelSeed: 9, DataSeed: 10, Tokens: 96,
		Policy: attention.NewSWA(0.4, cfg.Layers),
	})
	if err != nil {
		t.Fatal(err)
	}
	alisa, err := Compare(Config{
		ModelSeed: 9, DataSeed: 10, Tokens: 96,
		Policy: attention.NewSWA(0.4, cfg.Layers), KVBits: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alisa.MeanNLL-swa.MeanNLL) > 0.15 {
		t.Fatalf("ALISA NLL %.4f should track SWA %.4f", alisa.MeanNLL, swa.MeanNLL)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(Config{Tokens: 4}); err == nil {
		t.Fatal("expected error for short stream")
	}
	if _, err := Compare(Config{Tokens: 32, KVBits: 3}); err == nil {
		t.Fatal("expected error for bad KV bits")
	}
	if _, err := Compare(Config{Tokens: 10000}); err == nil {
		t.Fatal("expected error for over-long stream")
	}
}

func TestNLLIsProperLoss(t *testing.T) {
	logits := []float32{0, 0, 10}
	if nll(logits, 2) > 0.01 {
		t.Fatalf("confident correct prediction should have tiny NLL: %v", nll(logits, 2))
	}
	if nll(logits, 0) < 5 {
		t.Fatalf("confident wrong prediction should have large NLL: %v", nll(logits, 0))
	}
}

func TestFP16StorageNearlyExact(t *testing.T) {
	// FP16 KV storage (what the paper's systems hold before compression)
	// is effectively lossless at these magnitudes.
	fp32, err := Compare(Config{ModelSeed: 13, DataSeed: 14, Tokens: 64})
	if err != nil {
		t.Fatal(err)
	}
	fp16, err := Compare(Config{ModelSeed: 13, DataSeed: 14, Tokens: 64, KVBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	if fp16.LogitCosine < 0.9999 {
		t.Fatalf("FP16 KV cosine = %v, want ≈1", fp16.LogitCosine)
	}
	if math.Abs(fp16.MeanNLL-fp32.MeanNLL) > 0.01 {
		t.Fatalf("FP16 NLL shift %v too large", math.Abs(fp16.MeanNLL-fp32.MeanNLL))
	}
	// Precision ladder: fp16 ≥ int8 ≥ int4 fidelity.
	int8, err := Compare(Config{ModelSeed: 13, DataSeed: 14, Tokens: 64, KVBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if int8.LogitCosine > fp16.LogitCosine+1e-9 {
		t.Fatal("INT8 should not beat FP16 fidelity")
	}
}
