// Package numeric cross-validates the sparse-attention policies on the
// runnable transformer decoder: instead of the calibrated synthetic
// attention processes (package oracle), these experiments execute real
// softmax attention with real KV tensors, apply a policy's token
// selection, optionally impose quantized KV storage, and compare the
// resulting logits and next-token predictions against the dense reference
// on the same token stream.
//
// This is the numeric leg of the reproduction: the oracle experiments
// show the accuracy *mechanism* at paper scale; these show the same
// machinery producing the same orderings end to end on live tensors.
package numeric

import (
	"fmt"
	"math"

	"repro/internal/attention"
	"repro/internal/f16"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Config describes one numeric comparison run.
type Config struct {
	// ModelSeed and DataSeed fix the decoder weights and the token
	// stream.
	ModelSeed, DataSeed int64
	// Tokens is the stream length (teacher-forced).
	Tokens int
	// Policy selects cached tokens; nil means dense.
	Policy attention.Policy
	// KVBits imposes KV storage precision by round-tripping the cache
	// after every step: 16 through IEEE half precision (what a GPU
	// runtime stores), 8 or 4 through the channel-wise quantizer; 0
	// leaves the cache in full float32.
	KVBits int
	// Model overrides the decoder shape; zero value uses SmallConfig.
	Model model.Config
}

// Report compares a policy run against the dense reference.
type Report struct {
	Steps int
	// MeanNLL is the teacher-forced negative log-likelihood of the next
	// token (the log of the perplexity proxy, on live logits).
	MeanNLL float64
	// DenseNLL is the reference NLL on the identical stream.
	DenseNLL float64
	// TopAgreement is the fraction of steps whose argmax token matches
	// the dense run.
	TopAgreement float64
	// LogitCosine is the mean cosine similarity of the logit vectors
	// against the dense run.
	LogitCosine float64
}

// Compare runs the policy and the dense reference over the same stream
// and reports divergence measures.
func Compare(cfg Config) (*Report, error) {
	if cfg.Tokens < 8 {
		return nil, fmt.Errorf("numeric: need at least 8 tokens, got %d", cfg.Tokens)
	}
	switch cfg.KVBits {
	case 0, 16, 8, 4:
	default:
		return nil, fmt.Errorf("numeric: unsupported KV bits %d", cfg.KVBits)
	}
	mc := cfg.Model
	if mc.Layers == 0 {
		mc = model.SmallConfig()
	}
	if cfg.Tokens > mc.MaxSeq {
		return nil, fmt.Errorf("numeric: %d tokens exceed model max %d", cfg.Tokens, mc.MaxSeq)
	}
	dec := model.NewDecoder(mc, cfg.ModelSeed)
	stream := workload.NewGenerator(mc.Vocab, cfg.DataSeed).Prompt(cfg.Tokens)

	denseLogits := run(dec, stream, nil, 0)
	policyLogits := run(dec, stream, cfg.Policy, cfg.KVBits)

	rep := &Report{Steps: cfg.Tokens - 1}
	var agree int
	var cosSum float64
	for i := 0; i < cfg.Tokens-1; i++ {
		next := stream[i+1]
		rep.MeanNLL += nll(policyLogits[i], next)
		rep.DenseNLL += nll(denseLogits[i], next)
		if argmax(policyLogits[i]) == argmax(denseLogits[i]) {
			agree++
		}
		cosSum += cosine(policyLogits[i], denseLogits[i])
	}
	n := float64(cfg.Tokens - 1)
	rep.MeanNLL /= n
	rep.DenseNLL /= n
	rep.TopAgreement = float64(agree) / n
	rep.LogitCosine = cosSum / n
	return rep, nil
}

// run teacher-forces the stream through the decoder and collects per-step
// logits. The KV cache is round-tripped through the configured storage
// precision after each step, imposing it on everything later steps read.
func run(dec *model.Decoder, stream []int, pol attention.Policy, kvBits int) [][]float32 {
	st := dec.NewState()
	logits := make([][]float32, 0, len(stream))
	var sel model.Selector
	if pol != nil {
		sel = policyAdapter{pol}
	}
	for _, tok := range stream {
		res := dec.DecodeStep(st, tok, sel)
		logits = append(logits, res.Logits)
		switch kvBits {
		case 16:
			for l := range st.K {
				f16.RoundTripSlice(st.K[l].Data)
				f16.RoundTripSlice(st.V[l].Data)
			}
		case 8, 4:
			for l := range st.K {
				quant.RoundTrip(st.K[l], kvBits)
				quant.RoundTrip(st.V[l], kvBits)
			}
		}
	}
	return logits
}

// policyAdapter bridges attention.Policy to the decoder's Selector hook.
type policyAdapter struct {
	p attention.Policy
}

func (a policyAdapter) Select(layer, n int) []int { return a.p.Select(layer, n) }

func (a policyAdapter) Observe(layer int, indices []int, weights []float64) {
	a.p.Observe(layer, indices, weights)
}

func nll(logits []float32, target int) float64 {
	// log-softmax at the target index, numerically stable.
	maxv := math.Inf(-1)
	for _, v := range logits {
		if float64(v) > maxv {
			maxv = float64(v)
		}
	}
	var sum float64
	for _, v := range logits {
		sum += math.Exp(float64(v) - maxv)
	}
	return math.Log(sum) - (float64(logits[target]) - maxv)
}

func argmax(v []float32) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func cosine(a, b []float32) float64 {
	dot := tensor.Dot(a, b)
	na := tensor.Dot(a, a)
	nb := tensor.Dot(b, b)
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
