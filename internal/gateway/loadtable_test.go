package gateway

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGatewayLoadTable is the wall-clock load generator behind the
// EXPERIMENTS.md gateway table: it offers live (unscripted) requests at
// a fixed wall rate against gateways at several time scales and measures
// wall-clock time-to-first-token from POST to the first_token SSE event.
// It measures the real wall clock, so it is skipped unless
// GATEWAY_LOAD_TABLE=1 — CI latency noise would make it flaky, and the
// numbers only mean anything on an idle machine.
func TestGatewayLoadTable(t *testing.T) {
	if os.Getenv("GATEWAY_LOAD_TABLE") == "" {
		t.Skip("set GATEWAY_LOAD_TABLE=1 to run the wall-clock load generator")
	}
	for _, scale := range []float64{1, 8, 0} {
		for _, rate := range []float64{4, 16} {
			runLoadRow(t, scale, rate, 12)
		}
	}
}

func runLoadRow(t *testing.T, scale, rate float64, n int) {
	t.Helper()
	g := newTestGateway(t, Config{TimeScale: scale})
	srv := httptest.NewServer(g)
	defer srv.Close()

	wallTTFT := make([]float64, 0, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		if i > 0 {
			time.Sleep(time.Duration(float64(time.Second) / rate))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sent := time.Now()
			resp, err := http.Post(srv.URL+"/v1/completions", "application/json",
				strings.NewReader(`{"input_tokens":512,"max_tokens":8,"stream":true}`))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if sc.Text() == "event: first_token" {
					mu.Lock()
					wallTTFT = append(wallTTFT, time.Since(sent).Seconds())
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	span := time.Since(start).Seconds()
	if t.Failed() {
		t.FailNow()
	}
	if len(wallTTFT) != n {
		t.Fatalf("saw %d first tokens, want %d", len(wallTTFT), n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := g.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(wallTTFT)
	mean := 0.0
	for _, v := range wallTTFT {
		mean += v
	}
	mean /= float64(len(wallTTFT))
	p95 := wallTTFT[(len(wallTTFT)*95)/100]
	scaleLabel := fmt.Sprintf("%g", scale)
	if scale == 0 {
		scaleLabel = "0 (AFAP)"
	}
	t.Logf("| %-8s | %7.0f | %8.1f | %12.0f | %11.0f | %12.0f |",
		scaleLabel, rate, float64(n)/span, mean*1000, p95*1000, res.TTFT.Mean*1000)
}
