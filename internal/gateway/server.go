package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strings"
	"time"

	alisa "repro"
)

// Config assembles a Gateway.
type Config struct {
	// Engine is the compiled simulation configuration every request runs
	// against. Required.
	Engine *alisa.Engine
	// TimeScale is the pacing dilation: how many simulated seconds pass
	// per wall-clock second. 1 is real time, 10 runs the simulation 10×
	// faster than the wall, 0 means as fast as possible (no pacing).
	TimeScale float64
	// Buffer is the per-connection event-buffer capacity; 0 means 64.
	Buffer int
	// OnFull picks the slow-consumer policy: DropOldest (default) or
	// Block. See OverflowPolicy.
	OnFull OverflowPolicy
	// Hold starts the gateway gated: requests are accepted and queued on
	// the simulated timeline, but the clock does not advance until
	// POST /v1/admin/release (or Gateway.Release). Scripted load uses it
	// to make results independent of submission timing.
	Hold bool
	// Logger receives the structured request/lifecycle log, each line
	// carrying the request's correlation ID. Nil discards.
	Logger *slog.Logger
}

// Gateway is the HTTP face of one serving session: an OpenAI-style
// completions endpoint streaming lifecycle events over SSE, a metrics
// snapshot endpoint, and health/readiness probes, all backed by the
// pacing Bridge.
//
//	POST /v1/completions       submit; SSE stream or blocking JSON
//	GET  /v1/metrics           rolling-window snapshot + queue depths
//	GET  /healthz              process liveness (always 200)
//	GET  /readyz               503 once draining or failed
//	POST /v1/admin/release     open a held gateway
type Gateway struct {
	bridge *Bridge
	model  string
	scale  float64
	mux    *http.ServeMux
}

// New validates cfg, opens a session against the engine, and starts the
// pacing driver. The returned Gateway is an http.Handler; the caller
// owns the listener and must Drain on shutdown.
func New(cfg Config) (*Gateway, error) {
	if cfg.Engine == nil {
		return nil, &alisa.ConfigError{Field: "Engine", Value: nil, Reason: "gateway needs a compiled engine"}
	}
	if cfg.TimeScale < 0 || math.IsNaN(cfg.TimeScale) || math.IsInf(cfg.TimeScale, 0) {
		return nil, &alisa.ConfigError{Field: "TimeScale", Value: cfg.TimeScale, Reason: "must be a finite dilation ≥ 0 (0 = as fast as possible)"}
	}
	buffer := cfg.Buffer
	if buffer == 0 {
		buffer = 64
	}
	if buffer < 0 {
		return nil, &alisa.ConfigError{Field: "Buffer", Value: cfg.Buffer, Reason: "per-connection event buffer must be positive"}
	}
	if cfg.OnFull != DropOldest && cfg.OnFull != Block {
		return nil, &alisa.ConfigError{Field: "OnFull", Value: cfg.OnFull, Reason: "unknown overflow policy"}
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	bridge, err := newBridge(cfg.Engine, cfg.TimeScale, buffer, cfg.OnFull, cfg.Hold, log)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		bridge: bridge,
		model:  cfg.Engine.Model(),
		scale:  cfg.TimeScale,
		mux:    http.NewServeMux(),
	}
	g.mux.HandleFunc("POST /v1/completions", g.handleCompletions)
	g.mux.HandleFunc("GET /v1/metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
	g.mux.HandleFunc("POST /v1/admin/release", g.handleRelease)
	return g, nil
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Drain gracefully shuts the gateway down; see Bridge.Drain.
func (g *Gateway) Drain(ctx context.Context) (*alisa.ServeResult, error) { return g.bridge.Drain(ctx) }

// Abort hard-stops the session; see Bridge.Abort.
func (g *Gateway) Abort() { g.bridge.Abort() }

// Release opens a held gateway; see Bridge.Release.
func (g *Gateway) Release(ctx context.Context) error { return g.bridge.Release(ctx) }

// Accepting reports whether new completions are admitted.
func (g *Gateway) Accepting() bool { return g.bridge.Accepting() }

// completionRequest is the POST /v1/completions body. Exactly one of
// prompt / input_tokens sets the prompt length (the simulator costs
// token counts, so a prompt string is measured by whitespace-split
// length). An explicit arrival pins the request to the simulated
// timeline; omitted, it is stamped with the simulated clock at
// admission — live load.
type completionRequest struct {
	Model       string   `json:"model"`
	Prompt      string   `json:"prompt"`
	InputTokens int      `json:"input_tokens"`
	MaxTokens   int      `json:"max_tokens"`
	Stream      bool     `json:"stream"`
	Arrival     *float64 `json:"arrival"`
	ID          string   `json:"id"`
}

// completionResponse is the blocking (stream=false) success body.
type completionResponse struct {
	ID           string  `json:"id"`
	Request      int     `json:"request"`
	Model        string  `json:"model"`
	InputTokens  int     `json:"input_tokens"`
	OutputTokens int     `json:"output_tokens"`
	TTFT         float64 `json:"ttft"`
	TPOT         float64 `json:"tpot"`
	E2E          float64 `json:"e2e"`
	SLOMet       bool    `json:"slo_met"`
	Preemptions  int     `json:"preemptions"`
	Clock        float64 `json:"clock"`
}

// metricsResponse is the GET /v1/metrics body: identification, queue
// depths, and the rolling window in the WindowSnapshot wire format.
type metricsResponse struct {
	Model     string               `json:"model"`
	TimeScale float64              `json:"time_scale"`
	Clock     float64              `json:"clock"`
	Pending   int                  `json:"pending"`
	InFlight  int                  `json:"in_flight"`
	Draining  bool                 `json:"draining"`
	Held      bool                 `json:"held"`
	Window    alisa.WindowSnapshot `json:"window"`
}

// errorBody is the structured error envelope, OpenAI-style: a type, the
// offending parameter when one is identifiable (ConfigError field-error
// style), and a human message.
type errorBody struct {
	Error errorInfo `json:"error"`
}

type errorInfo struct {
	Type    string `json:"type"`
	Param   string `json:"param,omitempty"`
	Message string `json:"message"`
}

func (g *Gateway) handleCompletions(w http.ResponseWriter, r *http.Request) {
	spec, stream, err := g.parseCompletion(r)
	if err != nil {
		g.writeError(w, err)
		return
	}
	sub, err := g.bridge.Submit(r.Context(), spec)
	if err != nil {
		g.writeError(w, err)
		return
	}
	defer sub.Close()
	if stream {
		g.streamCompletion(w, r, sub)
	} else {
		g.blockCompletion(w, r, sub, spec)
	}
}

// parseCompletion validates the body into a SubmitSpec. Every failure is
// an *alisa.ConfigError whose Field names the wire parameter, so the
// error envelope's param is machine-usable.
func (g *Gateway) parseCompletion(r *http.Request) (SubmitSpec, bool, error) {
	var creq completionRequest
	if err := json.NewDecoder(r.Body).Decode(&creq); err != nil {
		return SubmitSpec{}, false, &alisa.ConfigError{Field: "body", Value: "json", Reason: err.Error()}
	}
	if creq.Model != "" && creq.Model != g.model {
		return SubmitSpec{}, false, &alisa.ConfigError{Field: "model", Value: creq.Model,
			Reason: fmt.Sprintf("this gateway serves %q", g.model)}
	}
	input := creq.InputTokens
	switch {
	case creq.Prompt != "" && creq.InputTokens > 0:
		return SubmitSpec{}, false, &alisa.ConfigError{Field: "input_tokens", Value: creq.InputTokens,
			Reason: "give prompt or input_tokens, not both"}
	case creq.Prompt != "":
		input = len(strings.Fields(creq.Prompt))
	}
	if input <= 0 {
		return SubmitSpec{}, false, &alisa.ConfigError{Field: "input_tokens", Value: input,
			Reason: "prompt or input_tokens must supply a positive prompt length"}
	}
	if creq.MaxTokens <= 0 {
		return SubmitSpec{}, false, &alisa.ConfigError{Field: "max_tokens", Value: creq.MaxTokens,
			Reason: "must be positive"}
	}
	spec := SubmitSpec{ID: creq.ID, Input: input, Output: creq.MaxTokens}
	if creq.Arrival != nil {
		if *creq.Arrival < 0 || math.IsNaN(*creq.Arrival) || math.IsInf(*creq.Arrival, 0) {
			return SubmitSpec{}, false, &alisa.ConfigError{Field: "arrival", Value: *creq.Arrival,
				Reason: "must be a finite simulated time ≥ 0"}
		}
		spec.Arrival, spec.HasArrival = *creq.Arrival, true
	}
	return spec, creq.Stream, nil
}

// streamCompletion writes the request's lifecycle as SSE until its
// terminal event (or the client goes away).
func (g *Gateway) streamCompletion(w http.ResponseWriter, r *http.Request, sub *Subscriber) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Request-Id", sub.ID())
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	for {
		ev, dropped, ok := sub.Next(r.Context())
		if !ok {
			return // client disconnected; deferred Close unhooks the fan-out
		}
		if !holdUntil(r.Context(), ev.At) {
			return
		}
		if dropped > 0 {
			if writeDropMarker(w, sub.ID(), sub.Request(), dropped) != nil {
				return
			}
		}
		if encodeSSE(w, ev) != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if ev.Kind.Terminal() {
			_ = writeDone(w)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
	}
}

// blockCompletion waits for the terminal event and answers with one JSON
// body — the stream=false path.
func (g *Gateway) blockCompletion(w http.ResponseWriter, r *http.Request, sub *Subscriber, spec SubmitSpec) {
	for {
		ev, _, ok := sub.Next(r.Context())
		if !ok {
			return
		}
		if ev.Kind.Terminal() && !holdUntil(r.Context(), ev.At) {
			return
		}
		switch ev.Kind {
		case KindCompletion:
			writeJSON(w, http.StatusOK, completionResponse{
				ID: sub.ID(), Request: sub.Request(), Model: g.model,
				InputTokens: spec.Input, OutputTokens: spec.Output,
				TTFT: ev.TTFT, TPOT: ev.TPOT, E2E: ev.E2E,
				SLOMet: ev.SLOMet, Preemptions: ev.Preemptions, Clock: ev.Clock,
			})
			return
		case KindError:
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: errorInfo{
				Type: "internal_error", Message: ev.Err,
			}})
			return
		}
	}
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st, err := g.bridge.Status(r.Context())
	if err != nil {
		g.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, metricsResponse{
		Model: g.model, TimeScale: g.scale,
		Clock: st.Clock, Pending: st.Pending, InFlight: st.InFlight,
		Draining: st.Draining, Held: st.Held, Window: st.Window,
	})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !g.bridge.Accepting() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ready\n")
}

func (g *Gateway) handleRelease(w http.ResponseWriter, r *http.Request) {
	if err := g.bridge.Release(r.Context()); err != nil {
		g.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "released\n")
}

// writeError maps an error onto the structured envelope: validation
// failures (ConfigError, Push contract violations) are 400 with the
// offending param; shutdown states (draining, closed session, failed
// session) are 503 with Retry-After so load generators back off.
func (g *Gateway) writeError(w http.ResponseWriter, err error) {
	var ce *alisa.ConfigError
	switch {
	case errors.As(err, &ce):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: errorInfo{
			Type: "invalid_request_error", Param: ce.Field, Message: err.Error(),
		}})
	case errors.Is(err, ErrDraining), errors.Is(err, ErrClosed),
		errors.Is(err, ErrFailed), errors.Is(err, alisa.ErrSessionClosed):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: errorInfo{
			Type: "unavailable_error", Message: err.Error(),
		}})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: errorInfo{
			Type: "invalid_request_error", Message: err.Error(),
		}})
	}
}

// holdUntil blocks until a paced event's wall-clock delivery deadline
// (a zero deadline passes immediately); false means the client's context
// ended the wait.
func holdUntil(ctx context.Context, at time.Time) bool {
	if at.IsZero() {
		return true
	}
	d := time.Until(at)
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	data, err := json.Marshal(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
	io.WriteString(w, "\n")
}
