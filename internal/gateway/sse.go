package gateway

import (
	"encoding/json"
	"fmt"
	"io"
)

// The wire payloads are per-kind projections of Event: each SSE `data:`
// line carries exactly the fields its kind documents, in a fixed order,
// so a stream transcript is byte-stable and golden-testable. Every
// payload leads with type/id/request/clock — the correlation spine a
// client or log scraper keys on.

type wireAdmission struct {
	Type    Kind    `json:"type"`
	ID      string  `json:"id"`
	Request int     `json:"request"`
	Clock   float64 `json:"clock"`
	Wait    float64 `json:"wait"`
	Input   int     `json:"input_tokens"`
	Output  int     `json:"output_tokens"`
	Batch   int     `json:"batch"`
}

type wireFirstToken struct {
	Type    Kind    `json:"type"`
	ID      string  `json:"id"`
	Request int     `json:"request"`
	Clock   float64 `json:"clock"`
	TTFT    float64 `json:"ttft"`
}

type wireToken struct {
	Type    Kind    `json:"type"`
	ID      string  `json:"id"`
	Request int     `json:"request"`
	Clock   float64 `json:"clock"`
	Index   int     `json:"index"`
}

type wirePreemption struct {
	Type      Kind    `json:"type"`
	ID        string  `json:"id"`
	Request   int     `json:"request"`
	Clock     float64 `json:"clock"`
	Generated int     `json:"generated"`
}

type wireCompletion struct {
	Type        Kind    `json:"type"`
	ID          string  `json:"id"`
	Request     int     `json:"request"`
	Clock       float64 `json:"clock"`
	TTFT        float64 `json:"ttft"`
	TPOT        float64 `json:"tpot"`
	E2E         float64 `json:"e2e"`
	SLOMet      bool    `json:"slo_met"`
	Preemptions int     `json:"preemptions"`
}

type wireDropped struct {
	Type    Kind   `json:"type"`
	ID      string `json:"id"`
	Request int    `json:"request"`
	Dropped int    `json:"dropped"`
}

type wireError struct {
	Type    Kind    `json:"type"`
	ID      string  `json:"id"`
	Request int     `json:"request"`
	Clock   float64 `json:"clock"`
	Error   string  `json:"error"`
}

// writeSSE emits one server-sent event: the kind as the event name, the
// payload JSON as the data line.
func writeSSE(w io.Writer, kind Kind, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", kind, data)
	return err
}

// encodeSSE projects ev onto its kind's wire payload and writes it.
func encodeSSE(w io.Writer, ev Event) error {
	switch ev.Kind {
	case KindAdmission:
		return writeSSE(w, ev.Kind, wireAdmission{Type: ev.Kind, ID: ev.ID, Request: ev.Request,
			Clock: ev.Clock, Wait: ev.Wait, Input: ev.Input, Output: ev.Output, Batch: ev.Batch})
	case KindFirstToken:
		return writeSSE(w, ev.Kind, wireFirstToken{Type: ev.Kind, ID: ev.ID, Request: ev.Request,
			Clock: ev.Clock, TTFT: ev.TTFT})
	case KindToken:
		return writeSSE(w, ev.Kind, wireToken{Type: ev.Kind, ID: ev.ID, Request: ev.Request,
			Clock: ev.Clock, Index: ev.Index})
	case KindPreemption:
		return writeSSE(w, ev.Kind, wirePreemption{Type: ev.Kind, ID: ev.ID, Request: ev.Request,
			Clock: ev.Clock, Generated: ev.Generated})
	case KindCompletion:
		return writeSSE(w, ev.Kind, wireCompletion{Type: ev.Kind, ID: ev.ID, Request: ev.Request,
			Clock: ev.Clock, TTFT: ev.TTFT, TPOT: ev.TPOT, E2E: ev.E2E,
			SLOMet: ev.SLOMet, Preemptions: ev.Preemptions})
	case KindError:
		return writeSSE(w, ev.Kind, wireError{Type: ev.Kind, ID: ev.ID, Request: ev.Request,
			Clock: ev.Clock, Error: ev.Err})
	default:
		return fmt.Errorf("gateway: unknown event kind %q", ev.Kind)
	}
}

// writeDropMarker surfaces a DropOldest overflow to the client: n events
// were lost ahead of whatever follows.
func writeDropMarker(w io.Writer, id string, request, n int) error {
	return writeSSE(w, "dropped", wireDropped{Type: "dropped", ID: id, Request: request, Dropped: n})
}

// writeDone terminates an SSE stream OpenAI-style.
func writeDone(w io.Writer) error {
	_, err := io.WriteString(w, "data: [DONE]\n\n")
	return err
}
