package gateway

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"testing"
	"time"

	alisa "repro"
)

func testEngine(t *testing.T) *alisa.Engine {
	t.Helper()
	eng, err := alisa.New("opt-6.7b",
		alisa.WithMaxBatch(4),
		alisa.WithSLO(10, 0.5),
		alisa.WithMetricsWindow(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testBridge(t *testing.T, scale float64, buffer int, policy OverflowPolicy, hold bool) *Bridge {
	t.Helper()
	b, err := newBridge(testEngine(t), scale, buffer, policy, hold, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		b.Abort()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		b.Drain(ctx)
	})
	return b
}

// drainEvents pulls events until the terminal one (or the deadline),
// returning them along with the accumulated drop counts Next reported.
func drainEvents(t *testing.T, sub *Subscriber) (events []Event, drops []int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for {
		ev, dropped, ok := sub.Next(ctx)
		if !ok {
			t.Fatalf("event stream ended before a terminal event (have %d events)", len(events))
		}
		events = append(events, ev)
		drops = append(drops, dropped)
		if ev.Kind.Terminal() {
			return events, drops
		}
	}
}

// TestBridgeBlockDeliversEverything runs a request through a 1-slot
// Block-mode buffer with a consumer in lockstep: backpressure stalls the
// driver instead of losing events, so the full lifecycle arrives in
// order with zero drops.
func TestBridgeBlockDeliversEverything(t *testing.T) {
	b := testBridge(t, 0, 1, Block, false)
	sub, err := b.Submit(context.Background(), SubmitSpec{ID: "blk", Input: 16, Output: 5, HasArrival: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if sub.ID() != "blk" || sub.Request() != 0 {
		t.Fatalf("subscriber identity = (%q, %d), want (blk, 0)", sub.ID(), sub.Request())
	}

	events, drops := drainEvents(t, sub)
	wantKinds := []Kind{KindAdmission, KindFirstToken, KindToken, KindToken, KindToken, KindToken, KindToken, KindCompletion}
	if len(events) != len(wantKinds) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(wantKinds), events)
	}
	tokenIndex := 0
	for i, ev := range events {
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %q, want %q", i, ev.Kind, wantKinds[i])
		}
		if drops[i] != 0 {
			t.Errorf("event %d reported %d drops; Block mode must not lose events", i, drops[i])
		}
		if ev.ID != "blk" || ev.Request != 0 {
			t.Errorf("event %d correlation = (%q, %d), want (blk, 0)", i, ev.ID, ev.Request)
		}
		if ev.Kind == KindToken {
			tokenIndex++
			if ev.Index != tokenIndex {
				t.Errorf("token event index = %d, want %d", ev.Index, tokenIndex)
			}
		}
	}
	final := events[len(events)-1]
	if final.TTFT <= 0 || final.E2E < final.TTFT {
		t.Errorf("completion latencies TTFT=%v E2E=%v implausible", final.TTFT, final.E2E)
	}
}

// TestBridgeDropOldestMarksLoss leaves a 2-slot DropOldest buffer
// unconsumed until the whole generation has run: the oldest events are
// discarded and counted, but the terminal completion survives (it is
// published last, so it is never the oldest at overflow time).
func TestBridgeDropOldestMarksLoss(t *testing.T) {
	b := testBridge(t, 0, 2, DropOldest, false)
	sub, err := b.Submit(context.Background(), SubmitSpec{ID: "slow", Input: 16, Output: 8, HasArrival: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Wait for the generation to finish before reading a single event:
	// the driver serves Status only once it has gone idle.
	st, err := b.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Pending != 0 || st.InFlight != 0 {
		t.Fatalf("status after idle = %+v, want drained queues", st)
	}

	events, drops := drainEvents(t, sub)
	// 11 lifecycle events (admission, first token, 8 tokens, completion)
	// squeezed through 2 slots: exactly the last two survive.
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(events), events)
	}
	if drops[0] != 9 {
		t.Errorf("first delivered event reported %d drops, want 9", drops[0])
	}
	if events[1].Kind != KindCompletion {
		t.Errorf("final event kind = %q, want completion to survive overflow", events[1].Kind)
	}
	if st.Window.Count != 1 {
		t.Errorf("window count = %d, want 1 — drops must not touch metrics", st.Window.Count)
	}
}

// TestBridgeDrainRejectsSubmissions pins the admission gate: the instant
// Drain is requested, Submit fails with ErrDraining — even while the
// driver is stalled mid-advance on a backpressured subscriber and cannot
// serve commands.
func TestBridgeDrainRejectsSubmissions(t *testing.T) {
	b := testBridge(t, 0, 1, Block, false)
	sub, err := b.Submit(context.Background(), SubmitSpec{ID: "inflight", Input: 16, Output: 4, HasArrival: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Don't consume: the driver wedges on the 1-slot buffer, so the
	// drain below cannot complete (ruling out an ErrClosed race) until
	// we drain the events ourselves.
	drainDone := make(chan error, 1)
	go func() {
		_, err := b.Drain(context.Background())
		drainDone <- err
	}()
	for b.Accepting() {
		time.Sleep(time.Millisecond)
	}

	if _, err := b.Submit(context.Background(), SubmitSpec{ID: "late", Input: 8, Output: 2, HasArrival: true}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit during drain: %v, want ErrDraining", err)
	}

	events, _ := drainEvents(t, sub)
	if events[len(events)-1].Kind != KindCompletion {
		t.Fatalf("in-flight request must complete through a drain, got %+v", events)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	res, err := b.Result()
	if err != nil || res == nil || res.Completed != 1 {
		t.Fatalf("Result after drain = %+v, %v; want 1 completion", res, err)
	}
	if _, err := b.Submit(context.Background(), SubmitSpec{Input: 8, Output: 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after close: %v, want ErrClosed", err)
	}
	if st, err := b.Status(context.Background()); err != nil || !st.Draining {
		t.Fatalf("final Status = %+v, %v; want retained draining snapshot", st, err)
	}
}

// TestBridgeHoldGatesClock pins the scripted-workload gate: submissions
// against a held bridge queue on the simulated timeline but the clock
// stays at zero until Release.
func TestBridgeHoldGatesClock(t *testing.T) {
	b := testBridge(t, 0, 8, DropOldest, true)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		spec := SubmitSpec{Input: 16, Output: 2, Arrival: float64(i) * 0.25, HasArrival: true}
		if _, err := b.Submit(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}
	st, err := b.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Held || st.Clock != 0 || st.Pending != 3 {
		t.Fatalf("held status = %+v, want clock 0 with 3 pending", st)
	}
	if err := b.Release(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := b.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3 {
		t.Fatalf("completed %d of 3 after release", res.Completed)
	}
}

// TestBridgeAbortTerminatesStreams cancels a real-time (-time-scale 1)
// bridge mid-generation: every open stream must end with an error event
// rather than hang, and the bridge must report the failure.
func TestBridgeAbortTerminatesStreams(t *testing.T) {
	b := testBridge(t, 1, 64, DropOldest, false)
	sub, err := b.Submit(context.Background(), SubmitSpec{ID: "doomed", Input: 256, Output: 64, HasArrival: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	b.Abort()

	events, _ := drainEvents(t, sub)
	final := events[len(events)-1]
	if final.Kind != KindError || final.Err == "" {
		t.Fatalf("aborted stream ended with %+v, want an error event", final)
	}
	if b.Accepting() {
		t.Error("bridge still accepting after Abort")
	}
	if _, err := b.Submit(context.Background(), SubmitSpec{Input: 8, Output: 2}); err == nil {
		t.Error("Submit accepted after Abort")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := b.Drain(ctx); err == nil {
		t.Error("Drain after Abort should surface the cancellation")
	}
}
