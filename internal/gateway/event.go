// Package gateway puts a network wire on the streaming serving
// simulation: an HTTP server exposing an OpenAI-style completions
// endpoint where every request becomes a Session.Push and the request's
// lifecycle events stream back as server-sent events, plus a metrics
// snapshot endpoint backed by the session's rolling window.
//
// The core piece is the pacing bridge (Bridge): one driver goroutine
// owns the alisa.Session — which is single-goroutine by contract — and
// advances simulated time at a configurable dilation of the wall clock,
// while concurrent HTTP handlers talk to it only through a command
// channel and per-request Subscriber buffers. Simulated results are a
// pure function of the pushed requests; the dilation factor changes only
// when events are *delivered*, never what they contain (DESIGN.md §14).
package gateway

import "time"

// Kind enumerates the wire event types a request's subscriber stream
// carries. The string values double as the SSE `event:` names.
type Kind string

const (
	// KindAdmission reports the request joining the decode batch.
	KindAdmission Kind = "admission"
	// KindFirstToken reports the end of prefill — the first output token.
	KindFirstToken Kind = "first_token"
	// KindToken reports one generated output token.
	KindToken Kind = "token"
	// KindPreemption reports the request losing its KV under pressure.
	KindPreemption Kind = "preemption"
	// KindCompletion reports the request finishing; it is terminal.
	KindCompletion Kind = "completion"
	// KindError reports a failed session (cancellation, fatal simulation
	// error); it is terminal and delivered to every live subscriber.
	KindError Kind = "error"
)

// Terminal reports whether the kind ends a request's event stream.
func (k Kind) Terminal() bool { return k == KindCompletion || k == KindError }

// Event is one lifecycle event of one gateway request, as buffered
// between the simulation driver and a connection handler. It is a flat
// union over the kinds — only the fields a kind documents are
// meaningful — so the subscriber ring stores events by value with no
// per-event allocation. The SSE encoder projects it onto per-kind wire
// payloads; see encodeSSE.
type Event struct {
	Kind    Kind
	ID      string  // gateway correlation ID, threaded through logs
	Request int     // session request ID
	Clock   float64 // simulated seconds

	// At is the event's wall-clock delivery deadline under a paced
	// (-time-scale > 0) bridge: the wall instant corresponding to Clock.
	// A turn emits all its events at once, so without this stamp a
	// consumer would see everything at the turn's start; the HTTP layer
	// holds each event until At before writing it. Zero means deliver
	// immediately (unpaced bridge, or a terminate path that must not
	// wait).
	At time.Time

	// Admission.
	Wait          float64
	Input, Output int
	Batch         int

	// FirstToken and Completion.
	TTFT float64

	// Token.
	Index int

	// Preemption.
	Generated int

	// Completion.
	TPOT        float64
	E2E         float64
	SLOMet      bool
	Preemptions int

	// Error.
	Err string
}
