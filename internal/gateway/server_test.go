package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	alisa "repro"
)

func newTestGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = testEngine(t)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := g.Drain(ctx); err != nil && ctx.Err() != nil {
			g.Abort()
			g.Drain(context.Background())
		}
	})
	return g
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestGatewayConfigValidation(t *testing.T) {
	eng := testEngine(t)
	cases := []struct {
		name      string
		cfg       Config
		wantField string
	}{
		{"nil engine", Config{}, "Engine"},
		{"negative time scale", Config{Engine: eng, TimeScale: -1}, "TimeScale"},
		{"negative buffer", Config{Engine: eng, Buffer: -8}, "Buffer"},
		{"unknown policy", Config{Engine: eng, OnFull: OverflowPolicy(7)}, "OnFull"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			var ce *alisa.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("New: %v, want *alisa.ConfigError", err)
			}
			if ce.Field != tc.wantField {
				t.Fatalf("ConfigError field = %q, want %q", ce.Field, tc.wantField)
			}
		})
	}
}

// TestGatewayBlockingCompletion is the stream=false happy path: one POST,
// one JSON body carrying the request's final simulated latencies.
func TestGatewayBlockingCompletion(t *testing.T) {
	g := newTestGateway(t, Config{TimeScale: 0})
	rec := postJSON(t, g, "/v1/completions", `{"id":"alpha","input_tokens":32,"max_tokens":4}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var cr completionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.ID != "alpha" || cr.Request != 0 || cr.Model != "opt-6.7b" {
		t.Errorf("identity = (%q, %d, %q), want (alpha, 0, opt-6.7b)", cr.ID, cr.Request, cr.Model)
	}
	if cr.InputTokens != 32 || cr.OutputTokens != 4 {
		t.Errorf("shape = (%d, %d), want (32, 4)", cr.InputTokens, cr.OutputTokens)
	}
	if cr.TTFT <= 0 || cr.E2E < cr.TTFT || cr.Clock < cr.E2E {
		t.Errorf("latencies TTFT=%v E2E=%v Clock=%v implausible", cr.TTFT, cr.E2E, cr.Clock)
	}

	// A prompt string is costed by its whitespace-split length.
	rec = postJSON(t, g, "/v1/completions", `{"prompt":"to be or not to be","max_tokens":2}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("prompt status = %d, body %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.InputTokens != 6 || cr.ID != "req-1" {
		t.Errorf("prompt request = (%d tokens, %q), want (6, req-1)", cr.InputTokens, cr.ID)
	}

	mrec := get(t, g, "/v1/metrics")
	if mrec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", mrec.Code)
	}
	var mr metricsResponse
	if err := json.Unmarshal(mrec.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Model != "opt-6.7b" || mr.Window.Count != 2 || mr.Pending != 0 || mr.InFlight != 0 {
		t.Errorf("metrics = %+v, want 2 windowed completions on an idle gateway", mr)
	}
}

// goldenSSE is the exact wire transcript of one scripted request
// (input 8, max_tokens 3, arrival 0) against the testEngine
// configuration — pinned bytes, so any drift in event framing, field
// order, or the simulation's costed timings fails loudly.
const goldenSSE = "event: admission\n" +
	"data: {\"type\":\"admission\",\"id\":\"golden-1\",\"request\":0,\"clock\":0.015131815275497834,\"wait\":0,\"input_tokens\":8,\"output_tokens\":3,\"batch\":1}\n\n" +
	"event: first_token\n" +
	"data: {\"type\":\"first_token\",\"id\":\"golden-1\",\"request\":0,\"clock\":0.015131815275497834,\"ttft\":0.015131815275497834}\n\n" +
	"event: token\n" +
	"data: {\"type\":\"token\",\"id\":\"golden-1\",\"request\":0,\"clock\":0.030226609657720054,\"index\":1}\n\n" +
	"event: token\n" +
	"data: {\"type\":\"token\",\"id\":\"golden-1\",\"request\":0,\"clock\":0.04532199127549783,\"index\":2}\n\n" +
	"event: token\n" +
	"data: {\"type\":\"token\",\"id\":\"golden-1\",\"request\":0,\"clock\":0.06041796012883116,\"index\":3}\n\n" +
	"event: completion\n" +
	"data: {\"type\":\"completion\",\"id\":\"golden-1\",\"request\":0,\"clock\":0.06041796012883116,\"ttft\":0.015131815275497834,\"tpot\":0.015095381617777777,\"e2e\":0.06041796012883116,\"slo_met\":true,\"preemptions\":0}\n\n" +
	"data: [DONE]\n\n"

// TestGatewaySSEGoldenTranscript streams one held, scripted request over
// real HTTP and compares the whole SSE body byte-for-byte.
func TestGatewaySSEGoldenTranscript(t *testing.T) {
	g := newTestGateway(t, Config{TimeScale: 0, Hold: true})
	srv := httptest.NewServer(g)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/completions", "application/json",
		strings.NewReader(`{"id":"golden-1","input_tokens":8,"max_tokens":3,"arrival":0,"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	if id := resp.Header.Get("X-Request-Id"); id != "golden-1" {
		t.Errorf("X-Request-Id = %q, want golden-1", id)
	}

	// The clock is held; open the gate and read the full stream.
	rel, err := http.Post(srv.URL+"/v1/admin/release", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	rel.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != goldenSSE {
		t.Errorf("SSE transcript drifted:\n got: %q\nwant: %q", body, goldenSSE)
	}
}

func TestGatewayValidationErrors(t *testing.T) {
	g := newTestGateway(t, Config{TimeScale: 0})
	cases := []struct {
		name      string
		body      string
		wantParam string
	}{
		{"malformed json", `{oops`, "body"},
		{"wrong model", `{"model":"gpt-4","input_tokens":4,"max_tokens":1}`, "model"},
		{"prompt and input_tokens", `{"prompt":"hi there","input_tokens":4,"max_tokens":1}`, "input_tokens"},
		{"no prompt length", `{"max_tokens":1}`, "input_tokens"},
		{"negative input_tokens", `{"input_tokens":-3,"max_tokens":1}`, "input_tokens"},
		{"missing max_tokens", `{"input_tokens":4}`, "max_tokens"},
		{"negative arrival", `{"input_tokens":4,"max_tokens":1,"arrival":-0.5}`, "arrival"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postJSON(t, g, "/v1/completions", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", rec.Code, rec.Body)
			}
			var eb errorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
				t.Fatal(err)
			}
			if eb.Error.Type != "invalid_request_error" || eb.Error.Param != tc.wantParam {
				t.Errorf("envelope = %+v, want invalid_request_error on param %q", eb.Error, tc.wantParam)
			}
			if eb.Error.Message == "" {
				t.Error("error message empty")
			}
		})
	}
}

// TestGatewayDrainLifecycle walks the shutdown contract over the wire:
// readiness flips the moment a drain begins, new completions bounce with
// 503 + Retry-After, and liveness plus final metrics stay served.
func TestGatewayDrainLifecycle(t *testing.T) {
	g := newTestGateway(t, Config{TimeScale: 0})
	if rec := get(t, g, "/readyz"); rec.Code != http.StatusOK || rec.Body.String() != "ready\n" {
		t.Fatalf("readyz before drain = %d %q", rec.Code, rec.Body)
	}
	if rec := get(t, g, "/healthz"); rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := g.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	rec := postJSON(t, g, "/v1/completions", `{"input_tokens":4,"max_tokens":1}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("completion during shutdown = %d, want 503 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q, want 1", rec.Header().Get("Retry-After"))
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Type != "unavailable_error" {
		t.Errorf("error type = %q, want unavailable_error", eb.Error.Type)
	}

	if rec := get(t, g, "/readyz"); rec.Code != http.StatusServiceUnavailable || rec.Body.String() != "draining\n" {
		t.Errorf("readyz during shutdown = %d %q, want 503 draining", rec.Code, rec.Body)
	}
	if rec := get(t, g, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz during shutdown = %d, want 200", rec.Code)
	}
	mrec := get(t, g, "/v1/metrics")
	if mrec.Code != http.StatusOK {
		t.Fatalf("metrics after close = %d", mrec.Code)
	}
	var mr metricsResponse
	if err := json.Unmarshal(mrec.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Draining {
		t.Errorf("final metrics snapshot = %+v, want draining=true", mr)
	}
}

// TestGatewayErrorMapping pins writeError's status mapping for every
// sentinel the handlers can surface.
func TestGatewayErrorMapping(t *testing.T) {
	g := newTestGateway(t, Config{TimeScale: 0})
	cases := []struct {
		err        error
		wantStatus int
		wantType   string
	}{
		{&alisa.ConfigError{Field: "max_tokens", Value: 0, Reason: "must be positive"}, 400, "invalid_request_error"},
		{ErrDraining, 503, "unavailable_error"},
		{ErrClosed, 503, "unavailable_error"},
		{fmt.Errorf("wrapped: %w", ErrFailed), 503, "unavailable_error"},
		{alisa.ErrSessionClosed, 503, "unavailable_error"},
		{fmt.Errorf("some push contract violation"), 400, "invalid_request_error"},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		g.writeError(rec, tc.err)
		if rec.Code != tc.wantStatus {
			t.Errorf("writeError(%v) status = %d, want %d", tc.err, rec.Code, tc.wantStatus)
		}
		var eb errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
			t.Fatal(err)
		}
		if eb.Error.Type != tc.wantType {
			t.Errorf("writeError(%v) type = %q, want %q", tc.err, eb.Error.Type, tc.wantType)
		}
	}
}

// scriptedMetrics runs the fixed six-request workload against a gateway
// at the given time scale — held, submitted concurrently with explicit
// arrivals, then released — and returns the raw /v1/metrics window plus
// the per-request completion bodies keyed by ID.
func scriptedMetrics(t *testing.T, scale float64) (window json.RawMessage, clock float64, byID map[string]completionResponse) {
	t.Helper()
	g := newTestGateway(t, Config{TimeScale: scale, Hold: true})
	srv := httptest.NewServer(g)
	defer srv.Close()

	specs := []struct {
		id      string
		input   int
		output  int
		arrival float64
	}{
		{"r0", 64, 8, 0},
		{"r1", 128, 4, 0.05},
		{"r2", 32, 12, 0.1},
		{"r3", 256, 6, 0.15},
		{"r4", 64, 8, 0.2},
		{"r5", 96, 4, 0.25},
	}
	byID = make(map[string]completionResponse)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, s := range specs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fmt.Sprintf(`{"id":%q,"input_tokens":%d,"max_tokens":%d,"arrival":%g}`,
				s.id, s.input, s.output, s.arrival)
			resp, err := http.Post(srv.URL+"/v1/completions", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("POST %s: %v", s.id, err)
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("POST %s: status %d, err %v, body %s", s.id, resp.StatusCode, err, data)
				return
			}
			var cr completionResponse
			if err := json.Unmarshal(data, &cr); err != nil {
				t.Errorf("POST %s: %v", s.id, err)
				return
			}
			mu.Lock()
			byID[s.id] = cr
			mu.Unlock()
		}()
	}

	// Open the gate only after every submission is queued on the
	// simulated timeline, so wall-clock submission order cannot matter.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := g.bridge.Status(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Pending == len(specs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d submissions queued", st.Pending, len(specs))
		}
		time.Sleep(time.Millisecond)
	}
	if err := g.Release(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var mr struct {
		Clock  float64         `json:"clock"`
		Window json.RawMessage `json:"window"`
	}
	mrec := get(t, g, "/v1/metrics")
	if mrec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", mrec.Code)
	}
	if err := json.Unmarshal(mrec.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	return mr.Window, mr.Clock, byID
}

// TestGatewayTimeScaleBitIdentical is the pacing-bridge determinism
// contract, end to end over HTTP: the same scripted workload produces
// byte-identical window metrics and identical per-request latencies
// whether the gateway free-runs (-time-scale 0) or paces delivery
// against the wall clock (-time-scale 400). Dilation may only move
// events in wall time, never change them.
func TestGatewayTimeScaleBitIdentical(t *testing.T) {
	winFast, clockFast, fast := scriptedMetrics(t, 0)
	winPaced, clockPaced, paced := scriptedMetrics(t, 400)

	if string(winFast) != string(winPaced) {
		t.Errorf("window metrics differ across time scales:\n scale 0:   %s\n scale 400: %s", winFast, winPaced)
	}
	if clockFast != clockPaced {
		t.Errorf("final clock differs: %v (scale 0) vs %v (scale 400)", clockFast, clockPaced)
	}
	if len(fast) != len(paced) {
		t.Fatalf("completion counts differ: %d vs %d", len(fast), len(paced))
	}
	for id, f := range fast {
		p, ok := paced[id]
		if !ok {
			t.Errorf("request %s missing at scale 400", id)
			continue
		}
		// The numeric request number depends on wall-clock submission
		// order; everything simulated must match exactly.
		if f.TTFT != p.TTFT || f.TPOT != p.TPOT || f.E2E != p.E2E ||
			f.Clock != p.Clock || f.SLOMet != p.SLOMet || f.Preemptions != p.Preemptions {
			t.Errorf("request %s diverged across time scales:\n scale 0:   %+v\n scale 400: %+v", id, f, p)
		}
	}
}
