package gateway

import (
	"context"
	"sync"
)

// OverflowPolicy says what the bridge does when a subscriber's bounded
// event buffer is full — the slow-consumer contract. Either way the
// buffer never grows: a stalled SSE connection cannot hold unbounded
// memory hostage.
type OverflowPolicy int

const (
	// DropOldest discards the oldest buffered event to admit the new one
	// and counts the loss; the consumer sees a `dropped` marker carrying
	// the count before its next delivered event. The simulation never
	// stalls. A request's terminal event cannot be lost: it is published
	// last, so it is never the oldest when an overflow happens.
	DropOldest OverflowPolicy = iota
	// Block applies backpressure instead: the simulation driver waits
	// for the consumer to free a slot, trading simulated-time progress
	// for lossless delivery. Delivery timing changes; simulated results
	// do not (the pacing-bridge determinism contract).
	Block
)

// String names the policy as the -on-full flag spells it.
func (p OverflowPolicy) String() string {
	if p == Block {
		return "block"
	}
	return "drop"
}

// Subscriber is one request's bounded event stream between the bridge's
// driver goroutine (producer) and its HTTP connection handler
// (consumer). The producer publishes lifecycle events into a fixed ring;
// the consumer pulls them with Next. Exactly one goroutine produces and
// one consumes.
type Subscriber struct {
	id    string
	req   int
	block bool

	mu      sync.Mutex
	space   sync.Cond // producer waits here in Block mode
	buf     []Event   // fixed-capacity ring
	head, n int
	dropped int // events discarded since the last Next (DropOldest)
	closed  bool

	wake chan struct{} // 1-buffered consumer wakeup
}

func newSubscriber(id string, req, buffer int, policy OverflowPolicy) *Subscriber {
	s := &Subscriber{
		id:    id,
		req:   req,
		block: policy == Block,
		buf:   make([]Event, buffer),
		wake:  make(chan struct{}, 1),
	}
	s.space.L = &s.mu
	return s
}

// ID returns the gateway correlation ID the subscriber streams for.
func (s *Subscriber) ID() string { return s.id }

// Request returns the session's numeric request ID.
func (s *Subscriber) Request() int { return s.req }

// publish appends one event, honouring the overflow policy. It runs on
// the bridge's driver goroutine, inline with the simulation — this is
// the fan-out hot path, so it must not allocate or format.
//
//alisa:hotpath
func (s *Subscriber) publish(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.buf) {
		if s.block {
			for s.n == len(s.buf) && !s.closed {
				s.space.Wait()
			}
			if s.closed {
				s.mu.Unlock()
				return
			}
		} else {
			s.head++
			if s.head == len(s.buf) {
				s.head = 0
			}
			s.n--
			s.dropped++
		}
	}
	i := s.head + s.n
	if i >= len(s.buf) {
		i -= len(s.buf)
	}
	s.buf[i] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Next pops the oldest buffered event, blocking until one is available
// or ctx is done. dropped is how many events were discarded (DropOldest
// overflow) before the returned event — a non-zero count is surfaced to
// the client as a marker ahead of the event. ok is false only when ctx
// ended the wait.
func (s *Subscriber) Next(ctx context.Context) (ev Event, dropped int, ok bool) {
	for {
		s.mu.Lock()
		if s.n > 0 {
			ev = s.buf[s.head]
			s.head++
			if s.head == len(s.buf) {
				s.head = 0
			}
			s.n--
			dropped = s.dropped
			s.dropped = 0
			if s.block {
				s.space.Signal()
			}
			s.mu.Unlock()
			return ev, dropped, true
		}
		s.mu.Unlock()
		select {
		case <-s.wake:
		case <-ctx.Done():
			return Event{}, 0, false
		}
	}
}

// terminate force-publishes a terminal event, dropping the oldest
// buffered event to make room if needed — regardless of policy, and
// without ever blocking. A dying session must be able to end every
// stream even when a consumer has stalled a full Block-mode buffer.
func (s *Subscriber) terminate(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.buf) {
		s.head++
		if s.head == len(s.buf) {
			s.head = 0
		}
		s.n--
		s.dropped++
	}
	i := s.head + s.n
	if i >= len(s.buf) {
		i -= len(s.buf)
	}
	s.buf[i] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Close marks the consumer gone: pending and future publishes become
// no-ops and a producer blocked on backpressure is released. Idempotent;
// called by the handler when its connection ends and by the bridge when
// the session fails.
func (s *Subscriber) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.space.Broadcast()
}
