package gateway

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	alisa "repro"
)

// ErrDraining rejects a submission once the bridge has begun its
// graceful drain: in-flight requests finish, new ones are refused. The
// HTTP layer maps it (and the session's own ErrSessionClosed) to 503.
var ErrDraining = errors.New("gateway: draining, not admitting new requests")

// ErrClosed reports a bridge whose driver has exited — drain complete or
// aborted. Late metric reads fall back to the final snapshot instead.
var ErrClosed = errors.New("gateway: closed")

// ErrFailed reports submissions refused because the session latched a
// fatal error (cancellation included); the cause is attached.
var ErrFailed = errors.New("gateway: session failed")

// SubmitSpec is one admission request handed to the bridge.
type SubmitSpec struct {
	// ID is the client's correlation ID, threaded through every event
	// and log line of the request; empty means the bridge assigns
	// "req-<n>" from its sequential counter.
	ID string
	// Input and Output are the request's prompt and generation lengths
	// in tokens.
	Input, Output int
	// Arrival is an explicit simulated arrival time — the scripted-load
	// mode whose results are independent of wall-clock delivery. When
	// HasArrival is false the request is stamped with the current
	// simulated clock: live mode, where the wall clock shapes the
	// simulated arrival process.
	Arrival    float64
	HasArrival bool
}

// Status is a point-in-time view of the bridge for the metrics and
// readiness endpoints.
type Status struct {
	Clock    float64
	Pending  int
	InFlight int
	Held     bool
	Draining bool
	Window   alisa.WindowSnapshot
}

// Bridge is the virtual-time↔wall-clock pacing bridge: a single driver
// goroutine owns the alisa.Session (single-goroutine by contract) and
// advances simulated time no faster than `scale` simulated seconds per
// wall second, while concurrent connection handlers reach the session
// only through a command channel. Events fan out to per-request
// Subscriber buffers inline on the driver.
//
// Determinism contract (DESIGN.md §14): the simulated outcome is a pure
// function of the submitted requests and their arrival stamps. The
// dilation factor, consumer speed, and overflow policy change when and
// whether events are delivered — never the events themselves or the
// metrics.
type Bridge struct {
	scale  float64 // simulated seconds per wall second; 0 = as fast as possible
	buffer int
	policy OverflowPolicy
	log    *slog.Logger

	session *alisa.Session
	cancel  context.CancelFunc

	cmds      chan func()
	doneCh    chan struct{}
	accepting atomic.Bool

	// Driver-goroutine state; never touched elsewhere.
	nextID   int
	held     bool
	draining bool
	failed   error
	anchored bool
	anchor   time.Time

	mu          sync.Mutex
	subs        map[int]*Subscriber
	failedCause error
	finalStatus Status
	result      *alisa.ServeResult
	resultErr   error
}

// newBridge opens a session against the engine and starts the driver.
// hold true starts the bridge gated: submissions queue on the simulated
// timeline but the clock does not move until Release — the scripted-
// workload mode that makes results independent of submission timing.
func newBridge(eng *alisa.Engine, scale float64, buffer int, policy OverflowPolicy, hold bool, log *slog.Logger) (*Bridge, error) {
	ctx, cancel := context.WithCancel(context.Background())
	b := &Bridge{
		scale:  scale,
		buffer: buffer,
		policy: policy,
		log:    log,
		cancel: cancel,
		cmds:   make(chan func()),
		doneCh: make(chan struct{}),
		held:   hold,
		subs:   make(map[int]*Subscriber),
	}
	session, err := eng.Open(ctx)
	if err != nil {
		cancel()
		return nil, err
	}
	if err := session.Subscribe(bridgeTap{b}); err != nil {
		cancel()
		return nil, err
	}
	b.session = session
	b.accepting.Store(true)
	go b.run()
	return b, nil
}

// run is the driver loop: process commands, pace, advance.
func (b *Bridge) run() {
	for {
		idle := b.session.Pending() == 0 && b.session.InFlight() == 0
		if b.draining && (idle || b.failed != nil) {
			b.finish()
			return
		}
		if b.failed != nil || b.held || idle {
			// Nothing to simulate (or simulation forbidden): the wall
			// anchor goes stale, block for the next command.
			b.anchored = false
			cmd := <-b.cmds
			cmd()
			continue
		}
		if b.scale > 0 && !b.draining {
			// Fix the wall anchor BEFORE the turn runs, so the simulated
			// time the turn consumes is owed to the wall clock — deriving
			// it afterwards would silently absorb the first turn out of
			// every idle stretch.
			b.ensureAnchor()
		}
		if b.scale > 0 && b.session.InFlight() == 0 {
			// The next Advance jumps the clock straight to the head
			// arrival: sleep the dilated interval up front so delivery
			// happens at the arrival's wall time, not before. A drain
			// skips the wait — queued future work is flushed, not paced.
			if a, ok := b.session.NextArrival(); ok && a > b.session.Clock() {
				if b.draining {
					b.anchored = false
				} else if !b.pace(b.wallFor(a)) {
					continue // a command landed; recompute state
				}
			}
		}
		if _, err := b.session.Advance(); err != nil {
			b.fail(err)
			continue
		}
		if b.scale > 0 {
			// Let the wall clock catch up to the turn we just ran.
			b.ensureAnchor()
			for !b.pace(b.wallFor(b.session.Clock())) {
			}
		}
	}
}

// ensureAnchor fixes the wall instant that corresponds to simulated time
// zero, re-derived whenever the bridge wakes from an unpaced stretch
// (idle, held, or a drain flush) so dead wall time is never "owed".
func (b *Bridge) ensureAnchor() {
	if !b.anchored {
		b.anchor = time.Now().Add(-b.dilate(b.session.Clock()))
		b.anchored = true
	}
}

// dilate converts a simulated duration to its wall-clock length.
func (b *Bridge) dilate(sim float64) time.Duration {
	return time.Duration(sim / b.scale * float64(time.Second))
}

// wallFor is the wall deadline for simulated time v.
func (b *Bridge) wallFor(v float64) time.Time { return b.anchor.Add(b.dilate(v)) }

// pace sleeps until target, unless a command arrives first (the command
// runs, and pace reports false so the caller recomputes its state).
func (b *Bridge) pace(target time.Time) bool {
	d := time.Until(target)
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case cmd := <-b.cmds:
		cmd()
		return false
	}
}

// fail latches a fatal session error (cancellation included), stops
// admitting, and terminates every live subscriber stream with an error
// event so no connection hangs.
func (b *Bridge) fail(err error) {
	b.failed = err
	b.mu.Lock()
	b.failedCause = err
	b.mu.Unlock()
	b.accepting.Store(false)
	b.log.Error("gateway: session failed", "err", err)
	clock := b.session.Clock()
	b.mu.Lock()
	subs := b.subs
	b.subs = make(map[int]*Subscriber)
	b.mu.Unlock()
	for req, sub := range subs {
		sub.terminate(Event{Kind: KindError, ID: sub.id, Request: req, Clock: clock, Err: err.Error()})
	}
}

// finish closes the session, records the final outcome, and releases
// every waiter. Runs once, on the driver, as its last act.
func (b *Bridge) finish() {
	res, err := b.session.Close()
	st := b.status()
	st.Draining = true
	b.mu.Lock()
	b.finalStatus = st
	b.result, b.resultErr = res, err
	b.mu.Unlock()
	if res != nil {
		b.log.Info("gateway: drained",
			"completed", res.Completed, "clock", st.Clock,
			"throughput", res.Throughput, "goodput", res.Goodput,
			"slo_attainment", res.SLOAttainment,
			"p95_ttft", res.TTFT.P95, "p95_e2e", res.E2E.P95,
			"preemptions", res.Preemptions)
	}
	if err != nil {
		b.log.Error("gateway: drain finished with error", "err", err)
	}
	close(b.doneCh)
}

// status is the driver-side snapshot.
func (b *Bridge) status() Status {
	return Status{
		Clock:    b.session.Clock(),
		Pending:  b.session.Pending(),
		InFlight: b.session.InFlight(),
		Held:     b.held,
		Draining: b.draining,
		Window:   b.session.Snapshot(),
	}
}

// do enqueues fn for the driver; it fails only when the bridge is
// closed or ctx ends first.
func (b *Bridge) do(ctx context.Context, fn func()) error {
	select {
	case b.cmds <- fn:
		return nil
	case <-b.doneCh:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// call runs fn on the driver and waits for it to finish.
func (b *Bridge) call(ctx context.Context, fn func()) error {
	done := make(chan struct{})
	if err := b.do(ctx, func() { fn(); close(done) }); err != nil {
		return err
	}
	select {
	case <-done:
		return nil
	case <-b.doneCh:
		// The driver may have exited with our command still queued —
		// or run it on its way out; only the former is a failure.
		select {
		case <-done:
			return nil
		default:
			return ErrClosed
		}
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit pushes one request onto the simulated timeline and returns its
// event stream. The returned Subscriber must be Closed by the caller
// when its connection ends. Validation failures (the session's Push
// contract) come back verbatim; ErrDraining and ErrClosed mean the
// gateway is shutting down.
func (b *Bridge) Submit(ctx context.Context, spec SubmitSpec) (*Subscriber, error) {
	// Fast-path rejection once admission is closed: a drain must refuse
	// new work immediately even while the driver is deep in a paced (or
	// backpressured) advance and not serving commands.
	if !b.accepting.Load() {
		b.mu.Lock()
		ferr := b.failedCause
		b.mu.Unlock()
		if ferr != nil {
			return nil, fmt.Errorf("%w: %v", ErrFailed, ferr)
		}
		select {
		case <-b.doneCh:
			return nil, ErrClosed
		default:
			return nil, ErrDraining
		}
	}
	var sub *Subscriber
	var err error
	if cerr := b.call(ctx, func() { sub, err = b.submit(spec) }); cerr != nil {
		return nil, cerr
	}
	return sub, err
}

// submit runs on the driver.
func (b *Bridge) submit(spec SubmitSpec) (*Subscriber, error) {
	if b.draining {
		return nil, ErrDraining
	}
	if b.failed != nil {
		return nil, fmt.Errorf("%w: %v", ErrFailed, b.failed)
	}
	req := b.nextID
	id := spec.ID
	if id == "" {
		id = fmt.Sprintf("req-%d", req)
	}
	arrival := spec.Arrival
	if !spec.HasArrival {
		arrival = b.session.Clock()
	}
	if err := b.session.Push(alisa.Request{ID: req, Arrival: arrival, Input: spec.Input, Output: spec.Output}); err != nil {
		return nil, err
	}
	b.nextID++
	sub := newSubscriber(id, req, b.buffer, b.policy)
	b.mu.Lock()
	b.subs[req] = sub
	b.mu.Unlock()
	b.log.Info("gateway: accepted", "id", id, "request", req,
		"input", spec.Input, "output", spec.Output, "arrival", arrival)
	return sub, nil
}

// Status reports the bridge's current clock, queue depths, and rolling
// metrics window. After the bridge closes it returns the final snapshot.
func (b *Bridge) Status(ctx context.Context) (Status, error) {
	var st Status
	err := b.call(ctx, func() { st = b.status() })
	if errors.Is(err, ErrClosed) {
		b.mu.Lock()
		st = b.finalStatus
		b.mu.Unlock()
		return st, nil
	}
	return st, err
}

// Result returns the final ServeResult once the bridge has closed, or
// nil while it is still running.
func (b *Bridge) Result() (*alisa.ServeResult, error) {
	select {
	case <-b.doneCh:
	default:
		return nil, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.result, b.resultErr
}

// Accepting reports whether new submissions are admitted — the readiness
// signal. False once a drain begins or the session fails.
func (b *Bridge) Accepting() bool { return b.accepting.Load() }

// Release opens a held bridge: the simulation starts advancing (and the
// wall anchor is set now). Idempotent; a no-op on a closed bridge.
func (b *Bridge) Release(ctx context.Context) error {
	err := b.call(ctx, func() {
		if b.held {
			b.held = false
			b.log.Info("gateway: released")
		}
	})
	if errors.Is(err, ErrClosed) {
		return nil
	}
	return err
}

// Drain gracefully shuts the bridge down: stop admitting, run every
// pending and in-flight request to completion (flushing their event
// streams), close the session, and return the final ServeResult. Safe
// to call from several goroutines; all of them receive the outcome. A
// ctx cancellation abandons the wait, not the drain — pair it with
// Abort for a hard stop.
func (b *Bridge) Drain(ctx context.Context) (*alisa.ServeResult, error) {
	// Admission closes the instant a drain is requested, not when the
	// driver next reads a command — new submissions see ErrDraining
	// right away while in-flight work runs to completion.
	b.accepting.Store(false)
	if err := b.do(ctx, b.startDrain); err != nil && !errors.Is(err, ErrClosed) {
		return nil, err
	}
	select {
	case <-b.doneCh:
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.result, b.resultErr
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// startDrain runs on the driver.
func (b *Bridge) startDrain() {
	if !b.draining {
		b.log.Info("gateway: draining", "pending", b.session.Pending(), "in_flight", b.session.InFlight())
	}
	b.draining = true
	b.held = false
	b.accepting.Store(false)
}

// Abort cancels the session's context — in-flight KV is released, the
// partial result over completed requests is computed, and every open
// stream ends with an error event — then drains. The escalation path
// when a graceful Drain outlives its deadline.
func (b *Bridge) Abort() {
	b.accepting.Store(false)
	b.cancel()
	select {
	case b.cmds <- b.startDrain:
	case <-b.doneCh:
	}
}

// fanout delivers one simulation event to its request's subscriber, if
// any. It runs inline on the driver's simulation turn — the fan-out hot
// path — so it must not allocate, format, or log.
//
//alisa:hotpath
func (b *Bridge) fanout(ev Event) {
	if b.scale > 0 && b.anchored {
		// Stamp the dilated delivery deadline: a turn publishes all its
		// events at once, wall-wise at the turn's start; the consumer
		// holds each until the wall instant its simulated clock maps to.
		ev.At = b.wallFor(ev.Clock)
	}
	b.mu.Lock()
	sub := b.subs[ev.Request]
	if sub != nil && ev.Kind.Terminal() {
		delete(b.subs, ev.Request)
	}
	b.mu.Unlock()
	if sub == nil {
		return
	}
	ev.ID = sub.id
	sub.publish(ev)
}

// logCompletion emits the per-request correlation log line, looked up
// before fanout retires the subscriber.
func (b *Bridge) logCompletion(e alisa.CompletionEvent) {
	b.mu.Lock()
	sub := b.subs[e.Request]
	b.mu.Unlock()
	if sub == nil {
		return
	}
	b.log.Info("gateway: completion", "id", sub.id, "request", e.Request,
		"clock", e.Clock, "ttft", e.TTFT, "e2e", e.E2E, "slo_met", e.SLOMet)
}

// bridgeTap adapts the session's observer stream onto the fan-out. Step
// events are batch-level, not request-level; no subscriber carries them.
type bridgeTap struct{ b *Bridge }

func (t bridgeTap) OnStep(alisa.StepEvent) {}

func (t bridgeTap) OnAdmission(e alisa.AdmissionEvent) {
	t.b.fanout(Event{Kind: KindAdmission, Request: e.Request, Clock: e.Clock,
		Wait: e.Wait, Input: e.Input, Output: e.Output, Batch: e.Batch})
}

func (t bridgeTap) OnFirstToken(e alisa.FirstTokenEvent) {
	t.b.fanout(Event{Kind: KindFirstToken, Request: e.Request, Clock: e.Clock, TTFT: e.TTFT})
}

//alisa:hotpath
func (t bridgeTap) OnToken(e alisa.TokenEvent) {
	t.b.fanout(Event{Kind: KindToken, Request: e.Request, Clock: e.Clock, Index: e.Index})
}

func (t bridgeTap) OnPreemption(e alisa.PreemptionEvent) {
	t.b.fanout(Event{Kind: KindPreemption, Request: e.Request, Clock: e.Clock, Generated: e.Generated})
}

func (t bridgeTap) OnCompletion(e alisa.CompletionEvent) {
	t.b.logCompletion(e)
	t.b.fanout(Event{Kind: KindCompletion, Request: e.Request, Clock: e.Clock,
		TTFT: e.TTFT, TPOT: e.TPOT, E2E: e.E2E, SLOMet: e.SLOMet, Preemptions: e.Preemptions})
}
