package textfmt

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+rule+2 rows, got %d lines:\n%s", len(lines), out)
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("rule width mismatch:\n%s", out)
	}
	if !strings.HasPrefix(lines[3], "longer-name") {
		t.Fatalf("row order wrong:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("x")
	if !strings.Contains(tb.String(), "x") {
		t.Fatal("short row lost")
	}
}

func TestTableOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("a").AddRow("1", "2")
}

func TestHeatmapShape(t *testing.T) {
	m := [][]float64{{0, 1}, {0.5, 0}}
	out := Heatmap(m)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d", len(lines))
	}
	if len(lines[0]) != 4 {
		t.Fatalf("want 2 chars per cell, got %q", lines[0])
	}
	// The maximum value must render darkest, zero lightest.
	if lines[0][2] != '@' || lines[0][0] != ' ' {
		t.Fatalf("shading wrong: %q", lines[0])
	}
}

func TestHeatmapAllZeros(t *testing.T) {
	out := Heatmap([][]float64{{0, 0}})
	if strings.TrimRight(out, "\n") != "    " {
		t.Fatalf("all-zero map should be blank, got %q", out)
	}
}

func TestBar(t *testing.T) {
	full := Bar(10, 10, 8)
	if strings.Count(full, "█") != 8 {
		t.Fatalf("full bar = %q", full)
	}
	half := Bar(5, 10, 8)
	if strings.Count(half, "█") != 4 {
		t.Fatalf("half bar = %q", half)
	}
	over := Bar(20, 10, 8)
	if strings.Count(over, "█") != 8 {
		t.Fatalf("overflow bar = %q", over)
	}
	if got := Bar(1, 2, 0); len([]rune(got)) != 40 {
		t.Fatalf("default width = %d", len([]rune(got)))
	}
}

func TestBytes(t *testing.T) {
	cases := map[int64]string{
		512:             "512 B",
		2048:            "2.0 KiB",
		3 << 20:         "3.0 MiB",
		int64(32) << 30: "32.0 GiB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSeconds(t *testing.T) {
	cases := map[float64]string{
		0:     "0",
		5e-6:  "5.0 µs",
		2e-3:  "2.0 ms",
		1.5:   "1.50 s",
		600.0: "10.0 min",
	}
	for in, want := range cases {
		if got := Seconds(in); got != want {
			t.Errorf("Seconds(%v) = %q, want %q", in, got, want)
		}
	}
}
