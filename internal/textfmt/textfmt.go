// Package textfmt renders the evaluation outputs as terminal text: aligned
// tables for the per-figure series, shade heat maps for attention weight
// maps (Fig. 5), horizontal bars for breakdowns (Fig. 1, 11, 12), and
// human-readable byte and time formatting.
package textfmt

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells and long
// rows panic (a programming error).
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("textfmt: row has %d cells for %d columns", len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// shades from light to dark for heat maps.
const shades = " .:-=+*#%@"

// Heatmap renders a matrix as shade characters, scaled to the matrix
// maximum. Each cell becomes two characters for a squarer aspect ratio.
func Heatmap(m [][]float64) string {
	var maxv float64
	for _, row := range m {
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
	}
	var b strings.Builder
	for _, row := range m {
		for _, v := range row {
			idx := 0
			if maxv > 0 && v > 0 {
				idx = int(v / maxv * float64(len(shades)-1))
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			b.WriteByte(shades[idx])
			b.WriteByte(shades[idx])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Bar renders value as a proportional bar of at most width characters
// against max, with the numeric value appended.
func Bar(value, max float64, width int) string {
	if width <= 0 {
		width = 40
	}
	n := 0
	if max > 0 {
		n = int(value / max * float64(width))
		if n > width {
			n = width
		}
	}
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}

// Bytes formats a byte count with binary units.
func Bytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// Seconds formats a duration in engineering units.
func Seconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.1f µs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1f ms", s*1e3)
	case s < 120:
		return fmt.Sprintf("%.2f s", s)
	default:
		return fmt.Sprintf("%.1f min", s/60)
	}
}
