package quant

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/tensor"
)

// FuzzQuantRoundTrip checks, on arbitrary finite matrices, that the
// channel-wise quantizer honours its contract: codes stay on the b-bit
// grid and the reconstruction error of every element respects the
// per-channel half-step bound of Eq. 7 (with a float32-arithmetic slack).
func FuzzQuantRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 2, 8)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, 1, 4)
	f.Add([]byte{255, 255, 127, 127, 1, 0, 0, 0}, 1, 8)
	f.Fuzz(func(t *testing.T, data []byte, cols, bits int) {
		if len(data) > 1<<14 {
			t.Skip("cap input size")
		}
		if cols < 1 {
			cols = 1
		}
		if cols > 64 {
			cols = cols%64 + 1
		}
		bits = ((bits%16)+16)%16 + 1 // 1..16
		n := len(data) / 4
		rows := n / cols
		if rows == 0 {
			t.Skip("not enough data for one row")
		}
		vals := make([]float32, rows*cols)
		for i := range vals {
			v := math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:]))
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 0
			}
			vals[i] = v
		}
		m := tensor.FromSlice(rows, cols, vals)

		q := Quantize(m, bits)
		levels := int32(1)<<bits - 1
		for i, code := range q.Codes {
			if code < 0 || code > levels {
				t.Fatalf("code %d at %d off the %d-bit grid", code, i, bits)
			}
		}
		if got := q.Bytes(); got <= 0 {
			t.Fatalf("non-positive wire size %d", got)
		}

		d := q.Dequantize()
		for c := 0; c < cols; c++ {
			scale := float64(q.Scale[c])
			// Half a quantization step, plus the irreducible float32
			// terms: clamp slack at the channel extremes (the stored
			// scale's rounding can push the top code past the grid) and
			// the output's own representation rounding.
			base := q.MaxError(c)*(1+1e-5) + scale*float64(levels)*2e-7 + 1e-38
			for r := 0; r < rows; r++ {
				bound := base + math.Abs(float64(m.At(r, c)))*2.4e-7
				err := math.Abs(float64(m.At(r, c)) - float64(d.At(r, c)))
				if err > bound {
					t.Fatalf("channel %d row %d (bits %d): |%v - %v| = %g exceeds bound %g (scale %v)",
						c, r, bits, m.At(r, c), d.At(r, c), err, bound, q.Scale[c])
				}
			}
		}
	})
}
