package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestRoundTripErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.New(64, 8)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * 3)
	}
	q := Quantize(m, 8)
	d := q.Dequantize()
	for c := 0; c < m.Cols; c++ {
		bound := q.MaxError(c) + 1e-6
		for r := 0; r < m.Rows; r++ {
			diff := math.Abs(float64(m.At(r, c)) - float64(d.At(r, c)))
			if diff > bound {
				t.Fatalf("channel %d row %d error %v exceeds λ/2 bound %v", c, r, diff, bound)
			}
		}
	}
}

func TestExtremesAreExact(t *testing.T) {
	// Channel min and max sit exactly on grid points, so they reconstruct
	// exactly (up to float32 rounding).
	m := tensor.FromSlice(4, 1, []float32{-3, -1, 2, 5})
	d := Quantize(m, 8).Dequantize()
	if math.Abs(float64(d.At(0, 0)+3)) > 1e-5 {
		t.Fatalf("min reconstructed as %v, want -3", d.At(0, 0))
	}
	if math.Abs(float64(d.At(3, 0)-5)) > 1e-5 {
		t.Fatalf("max reconstructed as %v, want 5", d.At(3, 0))
	}
}

func TestConstantChannelLossless(t *testing.T) {
	m := tensor.FromSlice(3, 2, []float32{7, -2, 7, -2, 7, -2})
	d := Quantize(m, 8).Dequantize()
	if !d.Equal(m, 1e-6) {
		t.Fatalf("constant channels should be lossless: %v vs %v", d.Data, m.Data)
	}
}

func TestChannelsIndependent(t *testing.T) {
	// A huge-range channel must not degrade a small-range one.
	m := tensor.New(16, 2)
	rng := rand.New(rand.NewSource(2))
	for r := 0; r < 16; r++ {
		m.Set(r, 0, float32(rng.NormFloat64()*1000))
		m.Set(r, 1, float32(rng.NormFloat64()*0.01))
	}
	q := Quantize(m, 8)
	if q.MaxError(1) > 0.001 {
		t.Fatalf("small channel error bound %v polluted by large channel", q.MaxError(1))
	}
}

func TestCodesWithinRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := tensor.New(32, 4)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	for _, bits := range []int{1, 2, 4, 8} {
		q := Quantize(m, bits)
		limit := int32(1)<<bits - 1
		for i, code := range q.Codes {
			if code < 0 || code > limit {
				t.Fatalf("bits=%d code[%d]=%d out of [0,%d]", bits, i, code, limit)
			}
		}
	}
}

func TestBytesAccounting(t *testing.T) {
	q := &Tensor{Rows: 10, Cols: 4, Bits: 8}
	// 40 codes at 1 byte + 4 channels × 4 bytes of parameters.
	if got := q.Bytes(); got != 40+16 {
		t.Fatalf("Bytes = %d, want 56", got)
	}
	q4 := &Tensor{Rows: 10, Cols: 4, Bits: 4}
	if got := q4.Bytes(); got != 20+16 {
		t.Fatalf("4-bit Bytes = %d, want 36", got)
	}
}

func TestCompressionRatioApproachesTwo(t *testing.T) {
	// For large tensors the per-channel parameter overhead vanishes and
	// INT8 achieves ~2× over FP16.
	r := CompressionRatio(4096, 128, 8)
	if r < 1.9 || r > 2.0 {
		t.Fatalf("INT8 compression ratio = %v, want ≈2", r)
	}
	r4 := CompressionRatio(4096, 128, 4)
	if r4 < 3.8 || r4 > 4.0 {
		t.Fatalf("INT4 compression ratio = %v, want ≈4", r4)
	}
}

func TestUnsupportedBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0-bit quantization")
		}
	}()
	Quantize(tensor.New(1, 1), 0)
}

func TestRoundTripInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := tensor.New(8, 8)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	orig := m.Clone()
	RoundTrip(m, 8)
	q := Quantize(orig, 8)
	for c := 0; c < 8; c++ {
		for r := 0; r < 8; r++ {
			diff := math.Abs(float64(m.At(r, c) - orig.At(r, c)))
			if diff > q.MaxError(c)+1e-6 {
				t.Fatalf("in-place round trip error %v exceeds bound", diff)
			}
		}
	}
}

// Property: quantization error never exceeds λ/2 per channel, for random
// shapes, values, and bit widths.
func TestErrorBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(16)
		cols := 1 + rng.Intn(8)
		bits := 1 + rng.Intn(8)
		m := tensor.New(rows, cols)
		for i := range m.Data {
			m.Data[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2)))
		}
		q := Quantize(m, bits)
		d := q.Dequantize()
		for c := 0; c < cols; c++ {
			bound := q.MaxError(c) * (1 + 1e-4)
			for r := 0; r < rows; r++ {
				if math.Abs(float64(m.At(r, c))-float64(d.At(r, c))) > bound+1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantization is idempotent — quantizing a dequantized tensor
// reproduces it exactly.
func TestIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := tensor.New(1+rng.Intn(8), 1+rng.Intn(4))
		for i := range m.Data {
			m.Data[i] = float32(rng.NormFloat64())
		}
		once := Quantize(m, 8).Dequantize()
		twice := Quantize(once, 8).Dequantize()
		return twice.Equal(once, 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
