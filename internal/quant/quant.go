// Package quant implements the KV compression of ALISA §V-B: fine-grained
// channel-wise quantization of KV tensors to b-bit integers (INT8 in the
// paper), with dequantization back to floating point for computation.
//
// Following Eq. 7 of the paper, for each channel with observed range
// [min, max] the scale is λ = (max − min)/(2^b − 1) and values quantize as
// round(x/λ + z). The zero point z is chosen so that min maps to the lowest
// code, making the transform affine and exactly invertible at the grid
// points. Per-channel parameters make the scheme robust to the wildly
// different magnitudes of key and value channels (Chmiel et al., cited as
// [9] in the paper).
package quant

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Tensor is a channel-wise quantized matrix: rows are tokens, columns are
// channels, and each channel carries its own (scale, zero-point) pair.
type Tensor struct {
	Rows, Cols int
	Bits       int
	Codes      []int32   // Rows*Cols codes in [0, 2^Bits-1]
	Scale      []float32 // per-channel λ
	Zero       []float32 // per-channel z (in code units)
}

// Quantize compresses m channel-wise to the given bit width (1..16).
// Constant channels quantize losslessly with λ chosen as 1.
func Quantize(m *tensor.Matrix, bits int) *Tensor {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("quant: unsupported bit width %d", bits))
	}
	q := &Tensor{
		Rows:  m.Rows,
		Cols:  m.Cols,
		Bits:  bits,
		Codes: make([]int32, m.Rows*m.Cols),
		Scale: make([]float32, m.Cols),
		Zero:  make([]float32, m.Cols),
	}
	levels := float64(int32(1)<<bits - 1)
	for c := 0; c < m.Cols; c++ {
		lo, hi := channelRange(m, c)
		scale := (hi - lo) / levels
		if scale == 0 {
			scale = 1 // constant channel: every value maps to code 0 + zero offset
		}
		q.Scale[c] = float32(scale)
		q.Zero[c] = float32(-lo / scale)
		// Quantize against the parameters as stored (FP16/FP32 on the
		// wire), not their exact float64 precursors: dequantization uses
		// the stored values, so rounding them before computing codes keeps
		// the round-trip error inside the half-step bound instead of
		// adding a hidden parameter-rounding term.
		sc := float64(q.Scale[c])
		z := float64(q.Zero[c])
		for r := 0; r < m.Rows; r++ {
			code := math.Round(float64(m.At(r, c))/sc + z)
			if code < 0 {
				code = 0
			}
			if code > levels {
				code = levels
			}
			q.Codes[r*m.Cols+c] = int32(code)
		}
	}
	return q
}

func channelRange(m *tensor.Matrix, c int) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for r := 0; r < m.Rows; r++ {
		v := float64(m.At(r, c))
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if m.Rows == 0 {
		lo, hi = 0, 0
	}
	return lo, hi
}

// Dequantize reconstructs the floating-point matrix: x = λ·(code − z).
// The exact reconstruction never exceeds the observed channel range, so a
// value pushed past float32 by the rounding of the stored λ is clamped to
// the finite float32 range rather than overflowing to ±Inf.
func (q *Tensor) Dequantize() *tensor.Matrix {
	m := tensor.New(q.Rows, q.Cols)
	for c := 0; c < q.Cols; c++ {
		scale := float64(q.Scale[c])
		zero := float64(q.Zero[c])
		for r := 0; r < q.Rows; r++ {
			x := scale * (float64(q.Codes[r*q.Cols+c]) - zero)
			if x > math.MaxFloat32 {
				x = math.MaxFloat32
			} else if x < -math.MaxFloat32 {
				x = -math.MaxFloat32
			}
			m.Set(r, c, float32(x))
		}
	}
	return m
}

// MaxError returns the worst-case absolute reconstruction error bound for
// channel c: half a quantization step.
func (q *Tensor) MaxError(c int) float64 { return float64(q.Scale[c]) / 2 }

// Bytes reports the wire size of the quantized tensor: packed codes plus
// one scale and one zero point per channel (stored as FP16 on the wire).
func (q *Tensor) Bytes() int64 {
	codeBits := int64(q.Rows) * int64(q.Cols) * int64(q.Bits)
	codeBytes := (codeBits + 7) / 8
	paramBytes := int64(q.Cols) * 4 // scale + zero, 2 bytes each in FP16
	return codeBytes + paramBytes
}

// CompressionRatio returns FP16 bytes divided by quantized bytes for an
// r×c tensor at the given bit width — the traffic reduction the scheduler
// credits to KV compression.
func CompressionRatio(rows, cols, bits int) float64 {
	fp16 := int64(rows) * int64(cols) * 2
	q := &Tensor{Rows: rows, Cols: cols, Bits: bits}
	return float64(fp16) / float64(q.Bytes())
}

// RoundTrip imposes quantization error on m in place, as the simulator does
// when KV tensors cross the PCIe link in compressed form.
func RoundTrip(m *tensor.Matrix, bits int) {
	d := Quantize(m, bits).Dequantize()
	copy(m.Data, d.Data)
}
