package grid

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunCoversAllCells checks every index runs exactly once and lands at
// its own slot, across worker counts.
func TestRunCoversAllCells(t *testing.T) {
	const n = 64
	for _, workers := range []int{0, 1, 2, 7, n, n * 2} {
		got := make([]int32, n)
		err := Run(context.Background(), n, workers, func(_ context.Context, i int) {
			atomic.AddInt32(&got[i], 1)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range got {
			if c != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestRunBoundsConcurrency tracks the high-water mark of concurrently
// running cells against the worker cap.
func TestRunBoundsConcurrency(t *testing.T) {
	const n, workers = 128, 4
	var inFlight, peak atomic.Int32
	err := Run(context.Background(), n, workers, func(_ context.Context, i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		for j := 0; j < 1000; j++ { // widen the overlap window
			_ = j
		}
		inFlight.Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent cells, cap %d", p, workers)
	}
}

// TestRunSerialOrder pins the inline single-worker mode: cells run in
// index order on the caller's goroutine.
func TestRunSerialOrder(t *testing.T) {
	var order []int
	err := Run(context.Background(), 8, 1, func(_ context.Context, i int) {
		order = append(order, i) // no locking: inline mode is sequential
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

// TestRunCancellationSkipsUnstarted cancels mid-sweep and checks Run
// reports it and that not every cell ran.
func TestRunCancellationSkipsUnstarted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 1024
	var ran atomic.Int32
	err := Run(ctx, n, 2, func(_ context.Context, i int) {
		if ran.Add(1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= n {
		t.Fatalf("all %d cells ran despite cancellation", got)
	}
}

// TestRunEmpty pins the degenerate inputs.
func TestRunEmpty(t *testing.T) {
	if err := Run(context.Background(), 0, 4, func(context.Context, int) {
		t.Fatal("fn ran for n=0")
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Run(ctx, 4, 2, func(context.Context, int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Run: err = %v", err)
	}
}
