// Package grid is the bounded-worker executor behind sweep-style fan-out:
// Engine.ServeMany, `alisa-serve -sweep -parallel`, and `alisa-bench
// -grid` all run their (scheduler × rate / model × batch) cells through
// Run. Each cell is an index into caller-owned storage, so results land
// in deterministic positions no matter which worker finishes first — the
// cells themselves are single-goroutine deterministic simulations, making
// the whole sweep reproducible under any worker count.
package grid

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Run executes fn(ctx, i) for every i in [0, n) on at most workers
// concurrent goroutines; workers ≤ 0 selects GOMAXPROCS. With one worker
// (or one cell) the cells run inline on the caller's goroutine in index
// order, so a serial sweep behaves exactly as a plain loop.
//
// fn must write its result into caller-owned, index-addressed storage
// (distinct indices, so no locking is needed); Run never reorders or
// drops indices that started. When ctx is cancelled, cells that have not
// started are skipped — fn never runs for them — and Run returns
// ctx.Err() after in-flight cells wind down through their own
// cancellation paths (fn receives ctx for exactly that purpose).
func Run(ctx context.Context, n, workers int, fn func(ctx context.Context, i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(ctx, i)
		}
		return ctx.Err()
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				fn(ctx, i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
