package kvcache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLocationString(t *testing.T) {
	if GPU.String() != "gpu" || CPU.String() != "cpu" || Deleted.String() != "deleted" {
		t.Fatal("location names wrong")
	}
	if Location(9).String() == "" {
		t.Fatal("unknown location should still format")
	}
}

func TestTokenStoreAppendMove(t *testing.T) {
	s := NewTokenStore()
	for i := 0; i < 5; i++ {
		if got := s.Append(GPU); got != i {
			t.Fatalf("Append returned %d, want %d", got, i)
		}
	}
	if s.Count(GPU) != 5 || s.Count(CPU) != 0 {
		t.Fatalf("counts wrong: gpu=%d cpu=%d", s.Count(GPU), s.Count(CPU))
	}
	s.Move(1, CPU)
	s.Move(3, CPU)
	s.Move(1, Deleted)
	if s.Count(GPU) != 3 || s.Count(CPU) != 1 || s.Count(Deleted) != 1 {
		t.Fatalf("counts after moves: gpu=%d cpu=%d del=%d", s.Count(GPU), s.Count(CPU), s.Count(Deleted))
	}
	if s.Loc(3) != CPU || s.Loc(1) != Deleted {
		t.Fatal("locations wrong after moves")
	}
	// Move to the same location is a no-op.
	s.Move(3, CPU)
	if s.Count(CPU) != 1 {
		t.Fatal("self-move changed counts")
	}
}

func TestTokenStoreOldestNewest(t *testing.T) {
	s := NewTokenStore()
	for i := 0; i < 6; i++ {
		s.Append(GPU)
	}
	s.Move(0, CPU)
	s.Move(2, CPU)
	s.Move(5, CPU)
	oldest := s.OldestIn(CPU, 2)
	if len(oldest) != 2 || oldest[0] != 0 || oldest[1] != 2 {
		t.Fatalf("OldestIn = %v, want [0 2]", oldest)
	}
	newest := s.NewestIn(CPU, 2)
	if len(newest) != 2 || newest[0] != 5 || newest[1] != 2 {
		t.Fatalf("NewestIn = %v, want [5 2]", newest)
	}
	if got := s.OldestIn(Deleted, 3); len(got) != 0 {
		t.Fatalf("no deleted positions expected, got %v", got)
	}
	if got := s.OldestIn(CPU, 0); len(got) != 0 {
		t.Fatalf("max 0 should return nothing, got %v", got)
	}
}

func TestTokenStoreFractionIn(t *testing.T) {
	s := NewTokenStore()
	for i := 0; i < 10; i++ {
		if i < 4 {
			s.Append(CPU)
		} else {
			s.Append(GPU)
		}
	}
	if f := s.FractionIn(CPU, 8); f != 0.5 {
		t.Fatalf("FractionIn(CPU, 8) = %v, want 0.5", f)
	}
	if f := s.FractionIn(CPU, 0); f != 0 {
		t.Fatalf("FractionIn with empty prefix = %v", f)
	}
	if f := s.FractionIn(CPU, 100); f != 0.4 {
		t.Fatalf("FractionIn clamps prefix: %v, want 0.4", f)
	}
}

func TestTokenStoreOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTokenStore().Loc(0)
}

// Property: counts always equal the number of positions at each location,
// and every position is in exactly one location.
func TestTokenStoreConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := NewTokenStore()
		for _, op := range ops {
			if s.Len() == 0 || op%5 == 0 {
				s.Append(Location(op % 3))
				continue
			}
			s.Move(int(op)%s.Len(), Location(op%3))
		}
		var counts [3]int
		for i := 0; i < s.Len(); i++ {
			counts[s.Loc(i)]++
		}
		return counts[GPU] == s.Count(GPU) &&
			counts[CPU] == s.Count(CPU) &&
			counts[Deleted] == s.Count(Deleted) &&
			counts[GPU]+counts[CPU]+counts[Deleted] == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockStoreAllocation(t *testing.T) {
	b := NewBlockStore(4)
	for i := 0; i < 9; i++ {
		grew := b.Append()
		wantGrow := i%4 == 0
		if grew != wantGrow {
			t.Fatalf("token %d: grew=%v, want %v", i, grew, wantGrow)
		}
	}
	if b.Tokens() != 9 || b.Blocks() != 3 {
		t.Fatalf("tokens=%d blocks=%d, want 9/3", b.Tokens(), b.Blocks())
	}
	// Fragmentation: 3 blocks hold capacity 12 for 9 tokens.
	if b.AllocatedTokens() != 12 {
		t.Fatalf("allocated tokens = %d, want 12", b.AllocatedTokens())
	}
}

func TestBlockStoreSwap(t *testing.T) {
	b := NewBlockStore(2)
	for i := 0; i < 8; i++ {
		b.Append()
	}
	if moved := b.SwapOut(3); moved != 3 {
		t.Fatalf("SwapOut moved %d, want 3", moved)
	}
	if b.BlocksIn(CPU) != 3 || b.BlocksIn(GPU) != 1 {
		t.Fatalf("blocks gpu=%d cpu=%d", b.BlocksIn(GPU), b.BlocksIn(CPU))
	}
	if moved := b.SwapIn(99); moved != 3 {
		t.Fatalf("SwapIn moved %d, want 3", moved)
	}
	if b.BlocksIn(GPU) != 4 {
		t.Fatal("swap in did not restore blocks")
	}
}

func TestBlockStoreBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBlockStore(0)
}

func TestHeadStoreSplit(t *testing.T) {
	h := NewHeadStore(32, 24)
	if h.GPUFraction() != 0.75 {
		t.Fatalf("GPUFraction = %v, want 0.75", h.GPUFraction())
	}
	gpu, cpu := h.Split(1000)
	if gpu != 750 || cpu != 250 {
		t.Fatalf("Split = %d/%d, want 750/250", gpu, cpu)
	}
	h.Append()
	h.Append()
	if h.Tokens() != 2 {
		t.Fatal("token count wrong")
	}
}

func TestHeadStoreBadSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHeadStore(8, 9)
}

// Property: block-store allocated capacity is always within one block of
// the token count, and swaps conserve block counts.
func TestBlockStoreInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBlockStore(1 + rng.Intn(8))
		for i := 0; i < 100; i++ {
			switch rng.Intn(3) {
			case 0:
				b.Append()
			case 1:
				b.SwapOut(rng.Intn(4))
			case 2:
				b.SwapIn(rng.Intn(4))
			}
			if b.BlocksIn(GPU)+b.BlocksIn(CPU) != b.Blocks() {
				return false
			}
			if b.AllocatedTokens() < b.Tokens() ||
				b.AllocatedTokens() >= b.Tokens()+b.BlockSize()+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
