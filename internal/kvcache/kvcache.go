// Package kvcache provides the KV-tensor placement bookkeeping for the
// three caching granularities the paper compares (Table I):
//
//   - TokenStore — ALISA's token-level placement: every token position is
//     individually on GPU, on CPU, or deleted (recomputable).
//   - BlockStore — vLLM-style paged blocks: fixed groups of tokens move
//     between devices as units, with partial-block allocation overhead.
//   - HeadStore — FlexGen-style head-level static split: a fixed fraction
//     of every token's KV lives on each device for the whole run.
//
// Stores track logical placement and byte accounting; the memsim system
// charges the actual transfer times.
package kvcache

import "fmt"

// Location says where a token's KV tensors currently live.
type Location uint8

// Locations of KV tensors.
const (
	GPU Location = iota
	CPU
	Deleted
)

// String returns the location name.
func (l Location) String() string {
	switch l {
	case GPU:
		return "gpu"
	case CPU:
		return "cpu"
	case Deleted:
		return "deleted"
	}
	return fmt.Sprintf("location(%d)", uint8(l))
}

// TokenStore tracks per-token-position KV placement for a batch whose
// sequences advance in lockstep (the paper's system evaluation setting).
// Position i covers the KV of token i in every sequence of the batch.
type TokenStore struct {
	loc    []Location
	counts [3]int
}

// NewTokenStore returns an empty token-level store.
func NewTokenStore() *TokenStore { return &TokenStore{} }

// Len returns the number of token positions tracked (including deleted).
func (s *TokenStore) Len() int { return len(s.loc) }

// Clone returns an independent deep copy of the store, for scheduler
// forking.
func (s *TokenStore) Clone() *TokenStore {
	return &TokenStore{loc: append([]Location(nil), s.loc...), counts: s.counts}
}

// Append adds a new token position at the given location and returns its
// index.
func (s *TokenStore) Append(loc Location) int {
	s.loc = append(s.loc, loc)
	s.counts[loc]++
	return len(s.loc) - 1
}

// Loc returns the location of position i.
func (s *TokenStore) Loc(i int) Location {
	s.check(i)
	return s.loc[i]
}

// Move relocates position i to the given location. Moving a deleted token
// back to GPU models recomputation.
func (s *TokenStore) Move(i int, to Location) {
	s.check(i)
	from := s.loc[i]
	if from == to {
		return
	}
	s.counts[from]--
	s.counts[to]++
	s.loc[i] = to
}

// Count returns how many positions live at loc.
func (s *TokenStore) Count(loc Location) int { return s.counts[loc] }

// Counts returns the populations of all three locations at once — the
// partition the byte-accounting invariants are stated over.
func (s *TokenStore) Counts() (gpu, cpu, deleted int) {
	return s.counts[GPU], s.counts[CPU], s.counts[Deleted]
}

// Bytes returns the resident byte totals of the sequence at tokenBytes per
// position. Deleted positions hold no memory.
func (s *TokenStore) Bytes(tokenBytes int64) (gpu, cpu int64) {
	if tokenBytes < 0 {
		panic(fmt.Sprintf("kvcache: negative token bytes %d", tokenBytes))
	}
	return int64(s.counts[GPU]) * tokenBytes, int64(s.counts[CPU]) * tokenBytes
}

// Reset empties the store, releasing its positions for reuse — the
// free-on-completion hook of the serving loop. The backing array is
// retained so a recycled sequence reallocates nothing.
func (s *TokenStore) Reset() {
	s.loc = s.loc[:0]
	s.counts = [3]int{}
}

// OldestIn returns up to max position indices at loc, oldest first — the
// eviction order of both ALISA's offload heuristic ("store the preceding
// ones in the CPU") and its Phase III deletion ("delete the oldest KV
// tensors in the CPU").
func (s *TokenStore) OldestIn(loc Location, max int) []int {
	if max <= 0 {
		return nil
	}
	out := make([]int, 0, max)
	for i, l := range s.loc {
		if l == loc {
			out = append(out, i)
			if len(out) == max {
				break
			}
		}
	}
	return out
}

// NewestIn returns up to max position indices at loc, newest first.
func (s *TokenStore) NewestIn(loc Location, max int) []int {
	if max <= 0 {
		return nil
	}
	out := make([]int, 0, max)
	for i := len(s.loc) - 1; i >= 0; i-- {
		if s.loc[i] == loc {
			out = append(out, i)
			if len(out) == max {
				break
			}
		}
	}
	return out
}

// FractionIn returns the fraction of the first prefix positions that live
// at loc; prefix ≤ 0 returns 0.
func (s *TokenStore) FractionIn(loc Location, prefix int) float64 {
	if prefix <= 0 {
		return 0
	}
	if prefix > len(s.loc) {
		prefix = len(s.loc)
	}
	n := 0
	for i := 0; i < prefix; i++ {
		if s.loc[i] == loc {
			n++
		}
	}
	return float64(n) / float64(prefix)
}

func (s *TokenStore) check(i int) {
	if i < 0 || i >= len(s.loc) {
		panic(fmt.Sprintf("kvcache: position %d out of range %d", i, len(s.loc)))
	}
}

// BlockStore is vLLM-style paged placement: tokens fill fixed-size blocks;
// whole blocks move between devices. Allocation is block-granular, so the
// final partially filled block still occupies a full block of memory.
type BlockStore struct {
	blockSize int
	tokens    int
	blocks    []Location // one entry per allocated block
}

// NewBlockStore returns an empty paged store with the given block size.
func NewBlockStore(blockSize int) *BlockStore {
	if blockSize <= 0 {
		panic(fmt.Sprintf("kvcache: block size must be positive, got %d", blockSize))
	}
	return &BlockStore{blockSize: blockSize}
}

// BlockSize returns the tokens per block.
func (b *BlockStore) BlockSize() int { return b.blockSize }

// Clone returns an independent deep copy of the store, for scheduler
// forking.
func (b *BlockStore) Clone() *BlockStore {
	return &BlockStore{blockSize: b.blockSize, tokens: b.tokens, blocks: append([]Location(nil), b.blocks...)}
}

// Tokens returns the number of tokens stored.
func (b *BlockStore) Tokens() int { return b.tokens }

// Blocks returns the number of allocated blocks.
func (b *BlockStore) Blocks() int { return len(b.blocks) }

// Append adds one token, allocating a new GPU block when the current one
// is full. It reports whether a new block was allocated.
func (b *BlockStore) Append() bool {
	grew := false
	if b.tokens == len(b.blocks)*b.blockSize {
		b.blocks = append(b.blocks, GPU)
		grew = true
	}
	b.tokens++
	return grew
}

// AllocatedTokens returns the token capacity of all allocated blocks —
// the fragmentation-inclusive footprint vLLM's paging avoids wasting
// beyond one block.
func (b *BlockStore) AllocatedTokens() int { return len(b.blocks) * b.blockSize }

// WouldGrow reports whether the next Append allocates a new block —
// letting callers reserve the block's memory before mutating the store.
func (b *BlockStore) WouldGrow() bool { return b.tokens == len(b.blocks)*b.blockSize }

// Reset empties the store for reuse after its sequence completes.
func (b *BlockStore) Reset() {
	b.blocks = b.blocks[:0]
	b.tokens = 0
}

// BlocksIn counts blocks at the given location.
func (b *BlockStore) BlocksIn(loc Location) int {
	n := 0
	for _, l := range b.blocks {
		if l == loc {
			n++
		}
	}
	return n
}

// SwapOut moves up to n of the oldest GPU blocks to CPU, returning how
// many moved.
func (b *BlockStore) SwapOut(n int) int {
	moved := 0
	for i := 0; i < len(b.blocks) && moved < n; i++ {
		if b.blocks[i] == GPU {
			b.blocks[i] = CPU
			moved++
		}
	}
	return moved
}

// SwapIn moves up to n of the oldest CPU blocks back to GPU, returning how
// many moved.
func (b *BlockStore) SwapIn(n int) int {
	moved := 0
	for i := 0; i < len(b.blocks) && moved < n; i++ {
		if b.blocks[i] == CPU {
			b.blocks[i] = GPU
			moved++
		}
	}
	return moved
}

// HeadStore is FlexGen-style head-level static placement: GPUFraction of
// every token's KV bytes stay on GPU and the rest on CPU, fixed for the
// whole inference ("splits KV tensors along the head dimension and remains
// static", Fig. 7(a)).
type HeadStore struct {
	heads    int
	gpuHeads int
	tokens   int
}

// NewHeadStore returns a head-split store keeping gpuHeads of heads on GPU.
func NewHeadStore(heads, gpuHeads int) *HeadStore {
	if heads <= 0 || gpuHeads < 0 || gpuHeads > heads {
		panic(fmt.Sprintf("kvcache: bad head split %d/%d", gpuHeads, heads))
	}
	return &HeadStore{heads: heads, gpuHeads: gpuHeads}
}

// Append adds one token position.
func (h *HeadStore) Append() { h.tokens++ }

// Clone returns an independent copy of the store, for scheduler forking.
func (h *HeadStore) Clone() *HeadStore {
	c := *h
	return &c
}

// Reset empties the store for reuse after its sequence completes.
func (h *HeadStore) Reset() { h.tokens = 0 }

// Tokens returns the number of stored token positions.
func (h *HeadStore) Tokens() int { return h.tokens }

// GPUFraction returns the byte fraction resident on GPU.
func (h *HeadStore) GPUFraction() float64 { return float64(h.gpuHeads) / float64(h.heads) }

// Split divides total KV bytes between the devices.
func (h *HeadStore) Split(totalBytes int64) (gpu, cpu int64) {
	gpu = int64(float64(totalBytes) * h.GPUFraction())
	return gpu, totalBytes - gpu
}
