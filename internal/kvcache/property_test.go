package kvcache

import (
	"math/rand"
	"testing"
)

// locations in a fixed order for sampling and recounting.
var allLocations = []Location{GPU, CPU, Deleted}

// recount tallies TokenStore locations the slow way, as the reference for
// the cached counters.
func recount(s *TokenStore) [3]int {
	var c [3]int
	for i := 0; i < s.Len(); i++ {
		c[s.Loc(i)]++
	}
	return c
}

// checkTokenStore asserts every TokenStore invariant: the three locations
// partition the token set, no counter is negative, and byte totals are
// exactly counts × tokenBytes.
func checkTokenStore(t *testing.T, s *TokenStore, tokenBytes int64) {
	t.Helper()
	ref := recount(s)
	gpu, cpu, del := s.Counts()
	if gpu != ref[GPU] || cpu != ref[CPU] || del != ref[Deleted] {
		t.Fatalf("cached counts (%d,%d,%d) != recount (%d,%d,%d)",
			gpu, cpu, del, ref[GPU], ref[CPU], ref[Deleted])
	}
	if gpu < 0 || cpu < 0 || del < 0 {
		t.Fatalf("negative counts (%d,%d,%d)", gpu, cpu, del)
	}
	if gpu+cpu+del != s.Len() {
		t.Fatalf("locations do not partition the token set: %d+%d+%d != %d", gpu, cpu, del, s.Len())
	}
	for _, loc := range allLocations {
		if s.Count(loc) != ref[loc] {
			t.Fatalf("Count(%v) = %d, recount %d", loc, s.Count(loc), ref[loc])
		}
	}
	gb, cb := s.Bytes(tokenBytes)
	if gb != int64(gpu)*tokenBytes || cb != int64(cpu)*tokenBytes {
		t.Fatalf("Bytes(%d) = (%d,%d), want (%d,%d)", tokenBytes, gb, cb,
			int64(gpu)*tokenBytes, int64(cpu)*tokenBytes)
	}
	if gb < 0 || cb < 0 {
		t.Fatalf("negative byte totals (%d,%d)", gb, cb)
	}
}

// TestTokenStoreProperties drives random op sequences — append, move,
// reset — and checks the byte-accounting invariants after every op.
func TestTokenStoreProperties(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewTokenStore()
		tokenBytes := int64(1 + rng.Intn(1<<20))
		for op := 0; op < 2000; op++ {
			switch r := rng.Float64(); {
			case r < 0.5 || s.Len() == 0:
				s.Append(allLocations[rng.Intn(3)])
			case r < 0.95:
				s.Move(rng.Intn(s.Len()), allLocations[rng.Intn(3)])
			default:
				s.Reset()
			}
			checkTokenStore(t, s, tokenBytes)
		}
		// Oldest/newest enumeration agrees with the counters and with
		// each other (reversed) at every location.
		for _, loc := range allLocations {
			oldest := s.OldestIn(loc, s.Len())
			newest := s.NewestIn(loc, s.Len())
			if len(oldest) != s.Count(loc) || len(newest) != s.Count(loc) {
				t.Fatalf("seed %d: enumeration of %v returned %d/%d, count %d",
					seed, loc, len(oldest), len(newest), s.Count(loc))
			}
			for i := range oldest {
				if oldest[i] != newest[len(newest)-1-i] {
					t.Fatalf("seed %d: oldest/newest disagree at %d", seed, i)
				}
				if s.Loc(oldest[i]) != loc {
					t.Fatalf("seed %d: enumerated position %d not at %v", seed, oldest[i], loc)
				}
			}
		}
	}
}

// TestBlockStoreProperties drives random append/swap sequences and checks
// block-level accounting: blocks partition across devices, token counts
// stay within the allocated capacity, and WouldGrow predicts exactly when
// Append allocates.
func TestBlockStoreProperties(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		bs := 1 + rng.Intn(32)
		b := NewBlockStore(bs)
		for op := 0; op < 2000; op++ {
			switch r := rng.Float64(); {
			case r < 0.6:
				predicted := b.WouldGrow()
				if grew := b.Append(); grew != predicted {
					t.Fatalf("seed %d: WouldGrow=%v but Append grew=%v", seed, predicted, grew)
				}
			case r < 0.8:
				n := rng.Intn(4)
				if moved := b.SwapOut(n); moved > n || moved > b.Blocks() {
					t.Fatalf("seed %d: SwapOut(%d) moved %d of %d blocks", seed, n, moved, b.Blocks())
				}
			default:
				n := rng.Intn(4)
				if moved := b.SwapIn(n); moved > n || moved > b.Blocks() {
					t.Fatalf("seed %d: SwapIn(%d) moved %d of %d blocks", seed, n, moved, b.Blocks())
				}
			}
			gpu, cpu, del := b.BlocksIn(GPU), b.BlocksIn(CPU), b.BlocksIn(Deleted)
			if gpu+cpu+del != b.Blocks() {
				t.Fatalf("seed %d: blocks do not partition: %d+%d+%d != %d", seed, gpu, cpu, del, b.Blocks())
			}
			if del != 0 {
				t.Fatalf("seed %d: paged store invented deleted blocks", seed)
			}
			if b.Tokens() > b.AllocatedTokens() {
				t.Fatalf("seed %d: %d tokens exceed capacity %d", seed, b.Tokens(), b.AllocatedTokens())
			}
			if b.AllocatedTokens()-b.Tokens() >= bs {
				t.Fatalf("seed %d: more than one partial block of slack (%d tokens, %d allocated, block %d)",
					seed, b.Tokens(), b.AllocatedTokens(), bs)
			}
			if b.AllocatedTokens() != b.Blocks()*bs {
				t.Fatalf("seed %d: capacity %d != %d blocks × %d", seed, b.AllocatedTokens(), b.Blocks(), bs)
			}
		}
		b.Reset()
		if b.Tokens() != 0 || b.Blocks() != 0 || !b.WouldGrow() {
			t.Fatalf("seed %d: Reset left state: %d tokens, %d blocks", seed, b.Tokens(), b.Blocks())
		}
	}
}

// TestHeadStoreProperties checks the static split: shares sum exactly to
// the total for random head splits and byte totals, and never go negative.
func TestHeadStoreProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		heads := 1 + rng.Intn(96)
		gpuHeads := rng.Intn(heads + 1)
		h := NewHeadStore(heads, gpuHeads)
		if f := h.GPUFraction(); f < 0 || f > 1 {
			t.Fatalf("fraction %v outside [0,1]", f)
		}
		for i := 0; i < 10; i++ {
			total := rng.Int63n(1 << 40)
			gpu, cpu := h.Split(total)
			if gpu < 0 || cpu < 0 {
				t.Fatalf("negative split (%d,%d) of %d", gpu, cpu, total)
			}
			if gpu+cpu != total {
				t.Fatalf("split (%d,%d) does not sum to %d", gpu, cpu, total)
			}
		}
		n := rng.Intn(50)
		for i := 0; i < n; i++ {
			h.Append()
		}
		if h.Tokens() != n {
			t.Fatalf("tokens %d after %d appends", h.Tokens(), n)
		}
		h.Reset()
		if h.Tokens() != 0 {
			t.Fatalf("Reset left %d tokens", h.Tokens())
		}
	}
}
