package workload

import (
	"math/rand"
	"testing"
)

func TestAlpacaSpecMatchesPaper(t *testing.T) {
	s := Alpaca(64)
	if s.Input != 128 || s.Output != 512 {
		t.Fatalf("spec %v, paper uses s=128 n=512", s)
	}
	if s.TotalTokens() != 64*512 {
		t.Fatalf("total tokens = %d", s.TotalTokens())
	}
	if s.String() == "" {
		t.Fatal("empty spec string")
	}
}

func TestFig9Batches(t *testing.T) {
	b := Fig9Batches()
	want := []int{4, 8, 16, 32, 64}
	if len(b) != len(want) {
		t.Fatalf("batches = %v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("batches = %v, want %v", b, want)
		}
	}
}

func TestFig1Workloads(t *testing.T) {
	ws := Fig1Workloads()
	if len(ws) != 2 {
		t.Fatalf("want two workloads, got %d", len(ws))
	}
	if ws[0].Batch >= ws[1].Batch {
		t.Fatal("w2 should be the larger batch")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(100, 7).Prompt(50)
	b := NewGenerator(100, 7).Prompt(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewGenerator(100, 8).Prompt(50)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorTokensInVocab(t *testing.T) {
	g := NewGenerator(64, 3)
	for _, tok := range g.Prompt(500) {
		if tok < 0 || tok >= 64 {
			t.Fatalf("token %d out of vocab", tok)
		}
	}
}

func TestGeneratorZipfSkew(t *testing.T) {
	// Zipf streams concentrate on few tokens: the most common token
	// should appear far more than 1/vocab of the time.
	g := NewGenerator(96, 5)
	counts := make(map[int]int)
	const n = 4000
	for _, tok := range g.Prompt(n) {
		counts[tok]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/n < 3.0/96 {
		t.Fatalf("stream not skewed: max frequency %v", float64(max)/n)
	}
}

func TestGeneratorRepetition(t *testing.T) {
	g := NewGenerator(1000, 11)
	g.SetStyle(1.01, 0.8)
	toks := g.Prompt(400)
	repeats := 0
	for i := 1; i < len(toks); i++ {
		for j := max(0, i-16); j < i; j++ {
			if toks[j] == toks[i] {
				repeats++
				break
			}
		}
	}
	if float64(repeats)/float64(len(toks)) < 0.5 {
		t.Fatalf("high-repeat style produced only %d/%d repeats", repeats, len(toks))
	}
}

func TestGeneratorPanics(t *testing.T) {
	assertPanic(t, func() { NewGenerator(1, 0) })
	assertPanic(t, func() { NewGenerator(10, 0).SetStyle(0.5, 0) })
	assertPanic(t, func() { NewGenerator(10, 0).SetStyle(1.2, 1.0) })
}

func TestDatasetsComplete(t *testing.T) {
	ds := Datasets()
	if len(ds) != 7 {
		t.Fatalf("paper evaluates 7 datasets, got %d", len(ds))
	}
	models := []string{
		"opt-6.7b", "opt-13b", "opt-30b",
		"llama-7b", "llama-13b", "llama-33b",
		"pythia-6.9b", "pythia-12b",
	}
	for _, d := range ds {
		if d.Task != "lm" && d.Task != "qa" {
			t.Fatalf("%s: bad task %q", d.Name, d.Task)
		}
		if d.Task == "qa" && (d.Chance <= 0 || d.Chance >= 1) {
			t.Fatalf("%s: bad chance %v", d.Name, d.Chance)
		}
		for _, m := range models {
			v, err := d.DenseBaseline(m)
			if err != nil {
				t.Fatalf("%s/%s: %v", d.Name, m, err)
			}
			if d.Task == "qa" && (v <= d.Chance || v >= 1) {
				t.Fatalf("%s/%s: accuracy %v not in (chance, 1)", d.Name, m, v)
			}
			if d.Task == "lm" && v <= 1 {
				t.Fatalf("%s/%s: perplexity %v must exceed 1", d.Name, m, v)
			}
		}
	}
}

func TestLargerModelsBetterBaselines(t *testing.T) {
	// Within a family, larger models have lower perplexity.
	for _, d := range Datasets() {
		if d.Task != "lm" {
			continue
		}
		for _, fam := range [][]string{
			{"opt-6.7b", "opt-13b", "opt-30b"},
			{"llama-7b", "llama-13b", "llama-33b"},
			{"pythia-6.9b", "pythia-12b"},
		} {
			prev := 0.0
			for i, m := range fam {
				v, _ := d.DenseBaseline(m)
				if i > 0 && v >= prev {
					t.Fatalf("%s: %s ppl %v not below predecessor %v", d.Name, m, v, prev)
				}
				prev = v
			}
		}
	}
}

func TestDatasetByName(t *testing.T) {
	if _, err := DatasetByName("piqa"); err != nil {
		t.Fatal(err)
	}
	if _, err := DatasetByName("imagenet"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	if _, err := Datasets()[0].DenseBaseline("gpt-5"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func assertPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// eqShape compares requests field by field — Request carries a token
// slice now, so == no longer compiles. The shape traces under test never
// set Tokens, so the scalar fields are the whole identity.
func eqShape(a, b Request) bool {
	return a.ID == b.ID && a.Arrival == b.Arrival && a.Input == b.Input && a.Output == b.Output
}

func TestPoissonTraceDeterministicAndValid(t *testing.T) {
	a := PoissonTrace(64, 2.5, 9)
	b := PoissonTrace(64, 2.5, 9)
	if len(a) != 64 {
		t.Fatalf("trace length %d", len(a))
	}
	for i := range a {
		if !eqShape(a[i], b[i]) {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if err := a.Validate(2048); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if c := PoissonTrace(64, 2.5, 10); eqShape(c[5], a[5]) && eqShape(c[6], a[6]) {
		t.Errorf("different seeds produced identical requests")
	}
	// Mean inter-arrival should be near 1/rate.
	mean := a[len(a)-1].Arrival / float64(len(a))
	if mean < 0.2 || mean > 0.8 {
		t.Errorf("mean inter-arrival %.3f implausible for rate 2.5", mean)
	}
	// The mixture must actually produce heterogeneous shapes.
	shapes := map[[2]int]bool{}
	for _, r := range a {
		shapes[[2]int{r.Input, r.Output}] = true
	}
	if len(shapes) < 16 {
		t.Errorf("only %d distinct shapes in 64 requests", len(shapes))
	}
	if got := a.TotalOutput(); got <= 0 {
		t.Errorf("total output %d", got)
	}
}

func TestUniformTraceAndValidate(t *testing.T) {
	tr := UniformTrace(4, 0.25, 128, 64)
	if err := tr.Validate(2048); err != nil {
		t.Fatalf("uniform trace invalid: %v", err)
	}
	if tr[3].Arrival != 0.75 || tr[3].Input != 128 || tr[3].Output != 64 {
		t.Errorf("unexpected request %+v", tr[3])
	}
	bad := []Trace{
		{},
		{{ID: 0, Arrival: 1, Input: 8, Output: 8}, {ID: 1, Arrival: 0.5, Input: 8, Output: 8}},
		{{ID: 0, Arrival: 0, Input: 0, Output: 8}},
		{{ID: 0, Arrival: 0, Input: 8, Output: 8}},
		// Duplicate IDs would alias per-request serving records.
		{{ID: 3, Arrival: 0, Input: 8, Output: 8}, {ID: 3, Arrival: 1, Input: 8, Output: 8}},
	}
	maxSeqs := []int{0, 0, 0, 15, 0}
	for i, b := range bad {
		if err := b.Validate(maxSeqs[i]); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
	// Sorted restores arrival order.
	shuffled := Trace{{ID: 1, Arrival: 2}, {ID: 0, Arrival: 1}}
	s := shuffled.Sorted()
	if s[0].ID != 0 || s[1].ID != 1 {
		t.Errorf("Sorted: %+v", s)
	}
}

// TestTraceConstructorValidation is the table test over the validated
// trace constructors: every degenerate argument reports a clear error
// instead of silently producing an empty or degenerate trace, and the
// panicking wrappers surface the same message.
func TestTraceConstructorValidation(t *testing.T) {
	poisson := []struct {
		name string
		n    int
		rate float64
	}{
		{"zero count", 0, 2},
		{"negative count", -4, 2},
		{"zero rate", 16, 0},
		{"negative rate", 16, -1.5},
	}
	for _, tc := range poisson {
		t.Run("poisson/"+tc.name, func(t *testing.T) {
			tr, err := NewPoissonTrace(tc.n, tc.rate, 1)
			if err == nil {
				t.Fatalf("NewPoissonTrace(%d, %v) accepted, produced %d requests", tc.n, tc.rate, len(tr))
			}
			if tr != nil {
				t.Fatalf("error case returned a trace of %d requests", len(tr))
			}
			assertPanic(t, func() { PoissonTrace(tc.n, tc.rate, 1) })
		})
	}

	uniform := []struct {
		name          string
		n             int
		spacing       float64
		input, output int
	}{
		{"zero count", 0, 0.5, 8, 8},
		{"negative count", -1, 0.5, 8, 8},
		{"negative spacing", 4, -0.5, 8, 8},
		{"zero input", 4, 0.5, 0, 8},
		{"negative input", 4, 0.5, -8, 8},
		{"zero output", 4, 0.5, 8, 0},
		{"negative output", 4, 0.5, 8, -8},
	}
	for _, tc := range uniform {
		t.Run("uniform/"+tc.name, func(t *testing.T) {
			tr, err := NewUniformTrace(tc.n, tc.spacing, tc.input, tc.output)
			if err == nil {
				t.Fatalf("NewUniformTrace(%d, %v, %d, %d) accepted, produced %d requests",
					tc.n, tc.spacing, tc.input, tc.output, len(tr))
			}
			if tr != nil {
				t.Fatalf("error case returned a trace of %d requests", len(tr))
			}
			assertPanic(t, func() { UniformTrace(tc.n, tc.spacing, tc.input, tc.output) })
		})
	}

	// The valid boundary cases stay valid: spacing 0 is the simultaneous-
	// arrival control workload the serving tests rely on.
	if tr, err := NewUniformTrace(3, 0, 64, 32); err != nil || len(tr) != 3 {
		t.Fatalf("spacing-0 uniform trace rejected: %v", err)
	}
	if tr, err := NewPoissonTrace(1, 0.25, 7); err != nil || len(tr) != 1 {
		t.Fatalf("single-request poisson trace rejected: %v", err)
	}

	// The checked and panicking constructors produce identical traces.
	want, err := NewPoissonTrace(32, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	got := PoissonTrace(32, 3, 11)
	for i := range want {
		if !eqShape(want[i], got[i]) {
			t.Fatalf("checked and wrapper constructors diverged at %d: %+v vs %+v", i, want[i], got[i])
		}
	}
}

// TestSampleShapeMatchesPoissonMixture pins that SampleShape draws from
// the same stream and mixture PoissonTrace uses: replaying a trace's RNG
// (skipping the inter-arrival draw) reproduces its shapes exactly.
func TestSampleShapeMatchesPoissonMixture(t *testing.T) {
	tr := PoissonTrace(24, 2, 5)
	rng := rand.New(rand.NewSource(5))
	for i, r := range tr {
		rng.ExpFloat64() // the inter-arrival draw SampleShape does not consume
		in, out := SampleShape(rng)
		if in != r.Input || out != r.Output {
			t.Fatalf("request %d: SampleShape (%d,%d) != trace shape (%d,%d)", i, in, out, r.Input, r.Output)
		}
	}
}
