// Package workload defines the evaluation workloads: the system-level
// batch specs of §VI (Alpaca-sampled prompts, input 128 / output 512,
// batch 4–64), the Fig. 1 motivation workloads, synthetic token streams
// with natural-language-like statistics for the runnable decoder, the
// seven datasets of Fig. 8 with their published dense-attention baselines
// (the anchors the accuracy proxies are expressed against), and the
// arrival traces the serving simulator replays: timestamped requests with
// heterogeneous input/output lengths on a Poisson timeline.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Spec is one system-level workload: a batch of identical-shape requests.
type Spec struct {
	Name   string
	Batch  int
	Input  int // prompt tokens (s)
	Output int // generated tokens (n)
}

// String formats the spec like the paper's (b, s, n) triples.
func (s Spec) String() string {
	return fmt.Sprintf("%s(b=%d,s=%d,n=%d)", s.Name, s.Batch, s.Input, s.Output)
}

// TotalTokens returns the generated-token count the throughput metric
// divides by.
func (s Spec) TotalTokens() int { return s.Batch * s.Output }

// Alpaca returns the paper's system workload (§VI-A: "an input sequence
// length of 128 and an output sequence length of 512") at the given batch.
func Alpaca(batch int) Spec {
	return Spec{Name: "alpaca", Batch: batch, Input: 128, Output: 512}
}

// Fig9Batches lists the batch sizes of the throughput sweep.
func Fig9Batches() []int { return []int{4, 8, 16, 32, 64} }

// Fig1Workloads returns the two motivation workloads of Fig. 1 for
// OPT-6.7B on a V100-32G: a small batch that fits everywhere (where the
// CPU-placement slowdowns of ≈3×/5× are measured) and a large batch that
// OOMs without offloading.
func Fig1Workloads() []Spec {
	return []Spec{
		{Name: "w1", Batch: 4, Input: 512, Output: 512},
		{Name: "w2", Batch: 64, Input: 512, Output: 512},
	}
}

// Generator produces token streams with natural-language-like statistics
// for the runnable decoder: Zipf-distributed token frequencies with local
// repetition (recently used tokens recur), deterministic in the seed.
type Generator struct {
	vocab  int
	repeat float64 // probability the next token repeats one of the recent
	window int
	rng    *rand.Rand
	zipf   *rand.Zipf
	recent []int
}

// NewGenerator returns a generator over the given vocabulary.
func NewGenerator(vocab int, seed int64) *Generator {
	if vocab < 2 {
		panic(fmt.Sprintf("workload: vocabulary too small: %d", vocab))
	}
	rng := rand.New(rand.NewSource(seed))
	return &Generator{
		vocab:  vocab,
		repeat: 0.2,
		window: 16,
		rng:    rng,
		zipf:   rand.NewZipf(rng, 1.2, 1, uint64(vocab-1)),
	}
}

// SetStyle adjusts the stream statistics: zipfS ≥ 1.01 steepens the
// frequency distribution, repeat ∈ [0,1) raises local repetition.
func (g *Generator) SetStyle(zipfS, repeat float64) {
	if zipfS < 1.01 || repeat < 0 || repeat >= 1 {
		panic(fmt.Sprintf("workload: bad style zipf=%v repeat=%v", zipfS, repeat))
	}
	g.zipf = rand.NewZipf(g.rng, zipfS, 1, uint64(g.vocab-1))
	g.repeat = repeat
}

// Next returns the next token of the stream.
func (g *Generator) Next() int {
	var tok int
	if len(g.recent) > 0 && g.rng.Float64() < g.repeat {
		tok = g.recent[g.rng.Intn(len(g.recent))]
	} else {
		tok = int(g.zipf.Uint64())
	}
	g.recent = append(g.recent, tok)
	if len(g.recent) > g.window {
		g.recent = g.recent[1:]
	}
	return tok
}

// Prompt returns n tokens.
func (g *Generator) Prompt(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Dataset describes one of the paper's seven evaluation datasets with the
// dense-attention baseline the accuracy proxies anchor to. Baselines are
// per model name; missing entries fall back to the family default.
type Dataset struct {
	Name string
	Task string // "lm" (perplexity, lower better) or "qa" (accuracy)
	// Chance is the accuracy floor for QA tasks (random guessing).
	Chance float64
	// Dense maps model name to the dense-attention metric: perplexity for
	// lm, accuracy for qa. Values follow the published evaluations of the
	// OPT, LLaMA, and Pythia model cards under lm-evaluation-harness.
	Dense map[string]float64
}

// Datasets returns the seven datasets of Fig. 8 in the paper's order.
func Datasets() []Dataset {
	return []Dataset{
		{
			Name: "wikitext-2", Task: "lm",
			Dense: map[string]float64{
				"opt-6.7b": 10.9, "opt-13b": 10.1, "opt-30b": 9.6,
				"llama-7b": 5.7, "llama-13b": 5.1, "llama-33b": 4.1,
				"pythia-6.9b": 12.7, "pythia-12b": 11.6,
			},
		},
		{
			Name: "ptb", Task: "lm",
			Dense: map[string]float64{
				"opt-6.7b": 13.1, "opt-13b": 12.3, "opt-30b": 11.8,
				"llama-7b": 8.9, "llama-13b": 8.2, "llama-33b": 7.4,
				"pythia-6.9b": 15.2, "pythia-12b": 14.1,
			},
		},
		{
			Name: "alpaca", Task: "lm",
			Dense: map[string]float64{
				"opt-6.7b": 8.7, "opt-13b": 8.1, "opt-30b": 7.7,
				"llama-7b": 6.2, "llama-13b": 5.8, "llama-33b": 5.1,
				"pythia-6.9b": 9.9, "pythia-12b": 9.2,
			},
		},
		{
			Name: "piqa", Task: "qa", Chance: 0.5,
			Dense: map[string]float64{
				"opt-6.7b": 0.763, "opt-13b": 0.769, "opt-30b": 0.777,
				"llama-7b": 0.781, "llama-13b": 0.790, "llama-33b": 0.809,
				"pythia-6.9b": 0.752, "pythia-12b": 0.760,
			},
		},
		{
			Name: "copa", Task: "qa", Chance: 0.5,
			Dense: map[string]float64{
				"opt-6.7b": 0.81, "opt-13b": 0.82, "opt-30b": 0.85,
				"llama-7b": 0.85, "llama-13b": 0.87, "llama-33b": 0.89,
				"pythia-6.9b": 0.79, "pythia-12b": 0.81,
			},
		},
		{
			Name: "openbookqa", Task: "qa", Chance: 0.25,
			Dense: map[string]float64{
				"opt-6.7b": 0.352, "opt-13b": 0.354, "opt-30b": 0.362,
				"llama-7b": 0.424, "llama-13b": 0.436, "llama-33b": 0.452,
				"pythia-6.9b": 0.330, "pythia-12b": 0.340,
			},
		},
		{
			Name: "winogrande", Task: "qa", Chance: 0.5,
			Dense: map[string]float64{
				"opt-6.7b": 0.653, "opt-13b": 0.650, "opt-30b": 0.682,
				"llama-7b": 0.701, "llama-13b": 0.727, "llama-33b": 0.760,
				"pythia-6.9b": 0.641, "pythia-12b": 0.651,
			},
		},
	}
}

// DenseBaseline returns the dataset's dense metric for the model, or an
// error for unknown models.
func (d Dataset) DenseBaseline(modelName string) (float64, error) {
	if v, ok := d.Dense[modelName]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("workload: no %s baseline for model %q", d.Name, modelName)
}

// DatasetByName looks up one of the seven datasets.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("workload: unknown dataset %q", name)
}

// Request is one serving request on an arrival timeline: it becomes
// visible to the admission loop at Arrival seconds, carries an
// Input-token prompt, and completes after Output generated tokens.
type Request struct {
	ID      int
	Arrival float64 // seconds since trace start
	Input   int     // prompt tokens (s)
	Output  int     // generated tokens (n)
	// Tokens, when non-nil, is the prompt's token-ID content — the
	// identity the shared prefix cache matches on. It must then hold
	// exactly Input tokens. A nil Tokens keeps the request anonymous:
	// every cost is identical, it just can never share prefix KV. The
	// multi-turn, agent, and RAG generators populate it; the shape-only
	// traces (Poisson, uniform) leave it nil.
	Tokens []int
}

// String formats the request like a (t, s, n) triple.
func (r Request) String() string {
	return fmt.Sprintf("r%d(t=%.3f,s=%d,n=%d)", r.ID, r.Arrival, r.Input, r.Output)
}

// Trace is a serving workload: requests ordered by arrival time.
type Trace []Request

// Validate checks that the trace is non-empty, arrival-ordered, has
// unique request IDs, and that every request has positive lengths fitting
// maxSeq (ignored when ≤ 0).
func (t Trace) Validate(maxSeq int) error {
	if len(t) == 0 {
		return fmt.Errorf("workload: empty trace")
	}
	seen := make(map[int]bool, len(t))
	prev := 0.0
	for i, r := range t {
		if seen[r.ID] {
			return fmt.Errorf("workload: duplicate request ID %d at %d", r.ID, i)
		}
		seen[r.ID] = true
		if r.Arrival < prev {
			return fmt.Errorf("workload: trace not arrival-ordered at %d (%.3f < %.3f)", i, r.Arrival, prev)
		}
		prev = r.Arrival
		if r.Input <= 0 || r.Output <= 0 {
			return fmt.Errorf("workload: request %d has non-positive lengths s=%d n=%d", i, r.Input, r.Output)
		}
		if maxSeq > 0 && r.Input+r.Output > maxSeq {
			return fmt.Errorf("workload: request %d sequence %d exceeds max %d", i, r.Input+r.Output, maxSeq)
		}
		if r.Tokens != nil && len(r.Tokens) != r.Input {
			return fmt.Errorf("workload: request %d carries %d token IDs for an input of %d", i, len(r.Tokens), r.Input)
		}
	}
	return nil
}

// TotalOutput returns the generated-token count across the trace — the
// numerator of serving throughput.
func (t Trace) TotalOutput() int {
	n := 0
	for _, r := range t {
		n += r.Output
	}
	return n
}

// shapeClass is one mode of the heterogeneous request-shape mixture.
type shapeClass struct {
	weight       float64
	inLo, inHi   int // inclusive prompt-length range
	outLo, outHi int // inclusive output-length range
}

// serveMixture is the default request-shape mixture of PoissonTrace:
// chat-style short exchanges, document-grounded prompts with short
// answers, and generation-heavy completions — the heterogeneity regime
// continuous batching exists for.
var serveMixture = []shapeClass{
	{weight: 0.5, inLo: 64, inHi: 256, outLo: 32, outHi: 192},    // chat
	{weight: 0.25, inLo: 512, inHi: 1024, outLo: 32, outHi: 128}, // long-doc QA
	{weight: 0.25, inLo: 96, inHi: 192, outLo: 256, outHi: 512},  // generation-heavy
}

// SampleShape draws one request shape — prompt and output lengths —
// from the default heterogeneous serving mixture using the caller's RNG
// stream. PoissonTrace draws its shapes through exactly this function,
// so closed-loop clients sampling their next request see the same shape
// population as an open-loop Poisson trace.
func SampleShape(rng *rand.Rand) (input, output int) {
	cls := pickClass(rng, serveMixture)
	input = cls.inLo + rng.Intn(cls.inHi-cls.inLo+1)
	output = cls.outLo + rng.Intn(cls.outHi-cls.outLo+1)
	return input, output
}

// NewPoissonTrace returns n requests with exponential inter-arrival
// times at the given mean rate (requests/second) and shapes drawn from
// the default heterogeneous mixture. Deterministic in the seed. The
// arguments are validated: a non-positive request count or arrival rate
// is an error, never a silently empty or degenerate trace.
func NewPoissonTrace(n int, rate float64, seed int64) (Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: poisson trace needs a positive request count, got %d", n)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("workload: poisson trace needs a positive arrival rate, got %v req/s", rate)
	}
	rng := rand.New(rand.NewSource(seed))
	t := make(Trace, 0, n)
	clock := 0.0
	for i := 0; i < n; i++ {
		clock += rng.ExpFloat64() / rate
		input, output := SampleShape(rng)
		t = append(t, Request{ID: i, Arrival: clock, Input: input, Output: output})
	}
	return t, nil
}

// PoissonTrace is NewPoissonTrace for arguments known to be valid; it
// panics with the validation error otherwise. Kept for the inline
// construction the tests and benchmarks rely on.
func PoissonTrace(n int, rate float64, seed int64) Trace {
	t, err := NewPoissonTrace(n, rate, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// NewUniformTrace returns n identical-shape requests at fixed spacing —
// the lockstep-like control workload for serving experiments and the
// replay tests. Spacing 0 (every request arriving at once) is valid; a
// negative spacing, non-positive count, or non-positive shape is an
// error, never a silently degenerate trace.
func NewUniformTrace(n int, spacing float64, input, output int) (Trace, error) {
	switch {
	case n <= 0:
		return nil, fmt.Errorf("workload: uniform trace needs a positive request count, got %d", n)
	case spacing < 0:
		return nil, fmt.Errorf("workload: uniform trace needs non-negative spacing, got %v", spacing)
	case input <= 0 || output <= 0:
		return nil, fmt.Errorf("workload: uniform trace needs positive request lengths, got s=%d n=%d", input, output)
	}
	t := make(Trace, 0, n)
	for i := 0; i < n; i++ {
		t = append(t, Request{ID: i, Arrival: float64(i) * spacing, Input: input, Output: output})
	}
	return t, nil
}

// UniformTrace is NewUniformTrace for arguments known to be valid; it
// panics with the validation error otherwise.
func UniformTrace(n int, spacing float64, input, output int) Trace {
	t, err := NewUniformTrace(n, spacing, input, output)
	if err != nil {
		panic(err)
	}
	return t
}

// pickClass samples one mixture mode by weight.
func pickClass(rng *rand.Rand, classes []shapeClass) shapeClass {
	var total float64
	for _, c := range classes {
		total += c.weight
	}
	x := rng.Float64() * total
	for _, c := range classes {
		if x < c.weight {
			return c
		}
		x -= c.weight
	}
	return classes[len(classes)-1]
}

// Sorted returns a copy of the trace in arrival order with IDs preserved,
// for traces assembled from merged sources.
func (t Trace) Sorted() Trace {
	out := append(Trace(nil), t...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
	return out
}
