package workload

import (
	"fmt"
	"math/rand"
)

// This file holds the prefix-sharing workloads: request streams whose
// prompts carry token IDs with realistic sharing structure — growing
// conversation histories, agent loops over one huge tool preamble, and
// RAG prompts grounded in a small document pool. Each client draws from
// its own seeded RNG stream (seed + client stride), so replay is
// bit-identical regardless of how clients interleave at serving time.

// clientSeedStride separates per-client RNG streams; the same stride
// the closed-loop session clients use.
const clientSeedStride = 1_000_003

// prefixVocab is the token vocabulary of the prefix workloads. Matching
// is exact token-ID equality, so the size only shapes collision odds.
const prefixVocab = 1024

// ClosedClient is one deterministic closed-loop client script. Each
// Next call returns the client's next request — prompt token IDs,
// output length, and the think time separating it from the previous
// completion — or ok=false when the script is exhausted. The returned
// token slice is owned by the caller (never aliased by later calls).
type ClosedClient interface {
	Next() (tokens []int, output int, think float64, ok bool)
}

// convClient is one multi-turn conversation: a per-client system
// prompt, then turns whose prompts replay the full growing history
// (earlier prompts and synthesized assistant replies) plus fresh user
// tokens — the workload shape where prefix caching pays most.
type convClient struct {
	gen     *Generator
	rng     *rand.Rand
	think   float64
	maxSeq  int
	hist    []int
	prevOut int
	turn    int
	turns   int
}

func (c *convClient) Next() ([]int, int, float64, bool) {
	if c.turn >= c.turns {
		return nil, 0, 0, false
	}
	if c.turn > 0 {
		// Fold the previous assistant reply into the history; the token
		// IDs are synthesized from the client's stream, deterministically.
		c.hist = append(c.hist, c.gen.Prompt(c.prevOut)...)
	}
	c.hist = append(c.hist, c.gen.Prompt(16+c.rng.Intn(33))...)
	output := 32 + c.rng.Intn(65)
	if c.maxSeq > 0 && len(c.hist)+output > c.maxSeq {
		// The conversation hit the context window; the script ends.
		return nil, 0, 0, false
	}
	c.turn++
	c.prevOut = output
	tokens := append([]int(nil), c.hist...)
	return tokens, output, c.rng.ExpFloat64() * c.think, true
}

// NewConversationClients returns n multi-turn conversation clients with
// up to turns turns each, exponential think times of the given mean
// between a completion and the next turn, and histories capped by
// maxSeq (a conversation that would overflow the context window ends
// early). Each client's system prompt and token stream come from its
// own seeded RNG, so two clients never share a prefix — sharing is
// within a conversation, which is exactly what a prefix-affinity router
// must keep on one replica.
func NewConversationClients(n, turns int, think float64, maxSeq int, seed int64) []ClosedClient {
	clients := make([]ClosedClient, n)
	for i := range clients {
		s := seed + int64(i)*clientSeedStride
		c := &convClient{
			gen:    NewGenerator(prefixVocab, s),
			rng:    rand.New(rand.NewSource(s + 1)),
			think:  think,
			maxSeq: maxSeq,
			turns:  turns,
		}
		// A 64-token per-client system prompt opens every turn's prompt.
		c.hist = c.gen.Prompt(64)
		clients[i] = c
	}
	return clients
}

// agentClient is one agent loop: every step issues a short task over
// the same huge shared tool preamble and expects a short reply — the
// high-hit-rate, cross-client sharing regime (all clients share the
// preamble blocks).
type agentClient struct {
	preamble []int
	gen      *Generator
	rng      *rand.Rand
	think    float64
	maxSeq   int
	step     int
	steps    int
}

func (a *agentClient) Next() ([]int, int, float64, bool) {
	if a.step >= a.steps {
		return nil, 0, 0, false
	}
	task := a.gen.Prompt(8 + a.rng.Intn(17))
	output := 16 + a.rng.Intn(33)
	if a.maxSeq > 0 && len(a.preamble)+len(task)+output > a.maxSeq {
		return nil, 0, 0, false
	}
	a.step++
	tokens := make([]int, 0, len(a.preamble)+len(task))
	tokens = append(tokens, a.preamble...)
	tokens = append(tokens, task...)
	return tokens, output, a.rng.ExpFloat64() * a.think, true
}

// agentPreambleTokens is the shared tool-prompt length of the agent
// workload — deliberately huge relative to the per-step task, so the
// prefill saving dominates.
const agentPreambleTokens = 512

// NewAgentClients returns n agent-loop clients running up to steps
// short tool-call bursts each over one seed-derived tool preamble
// shared by every client. Think times are exponential with the given
// mean — agents barely pause between steps, so pass a small mean.
func NewAgentClients(n, steps int, think float64, maxSeq int, seed int64) []ClosedClient {
	preamble := NewGenerator(prefixVocab, seed).Prompt(agentPreambleTokens)
	clients := make([]ClosedClient, n)
	for i := range clients {
		s := seed + int64(i+1)*clientSeedStride
		clients[i] = &agentClient{
			preamble: preamble,
			gen:      NewGenerator(prefixVocab, s),
			rng:      rand.New(rand.NewSource(s + 1)),
			think:    think,
			maxSeq:   maxSeq,
			steps:    steps,
		}
	}
	return clients
}

const (
	ragPreambleTokens = 32
	ragDocTokens      = 384
	ragDocPool        = 12
)

// NewRAGTrace returns an open-loop Poisson trace of n retrieval-
// augmented requests at the given mean rate: every prompt is a shared
// 32-token system preamble, one of 12 fixed 384-token documents, and a
// unique short question. Requests grounded in the same document share
// the preamble+document prefix — a long-context mixture with moderate,
// popularity-skewed reuse. Deterministic in the seed.
func NewRAGTrace(n int, rate float64, maxSeq int, seed int64) (Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: rag trace needs a positive request count, got %d", n)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("workload: rag trace needs a positive arrival rate, got %v req/s", rate)
	}
	preamble := NewGenerator(prefixVocab, seed).Prompt(ragPreambleTokens)
	docs := make([][]int, ragDocPool)
	for d := range docs {
		docs[d] = NewGenerator(prefixVocab, seed+1000+int64(d)).Prompt(ragDocTokens)
	}
	rng := rand.New(rand.NewSource(seed + 2))
	qgen := NewGenerator(prefixVocab, seed+3)
	t := make(Trace, 0, n)
	clock := 0.0
	for i := 0; i < n; i++ {
		clock += rng.ExpFloat64() / rate
		// min of two uniform draws skews retrieval toward popular documents.
		d := rng.Intn(ragDocPool)
		if d2 := rng.Intn(ragDocPool); d2 < d {
			d = d2
		}
		question := qgen.Prompt(8 + rng.Intn(25))
		output := 24 + rng.Intn(73)
		tokens := make([]int, 0, ragPreambleTokens+ragDocTokens+len(question))
		tokens = append(tokens, preamble...)
		tokens = append(tokens, docs[d]...)
		tokens = append(tokens, question...)
		if maxSeq > 0 && len(tokens)+output > maxSeq {
			return nil, fmt.Errorf("workload: rag request %d needs %d tokens, exceeding max %d", i, len(tokens)+output, maxSeq)
		}
		t = append(t, Request{ID: i, Arrival: clock, Input: len(tokens), Output: output, Tokens: tokens})
	}
	return t, nil
}

// NewConversationTrace returns an open-loop multi-turn trace for fleet
// routing experiments: conversations' turns interleave round-robin on
// one Poisson arrival timeline, each turn's prompt replaying its
// conversation's full history (synthesized replies included, on the
// open-loop approximation that users respond on schedule). A
// conversation that would overflow maxSeq resets to a fresh session.
// Turn k of conversation c is request c + k*conversations, so arrivals
// stay ordered while every consecutive window mixes all conversations
// — the regime where router choice decides the prefix hit rate.
func NewConversationTrace(conversations, turns int, rate float64, maxSeq int, seed int64) (Trace, error) {
	if conversations <= 0 || turns <= 0 {
		return nil, fmt.Errorf("workload: conversation trace needs positive conversations and turns, got %d×%d", conversations, turns)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("workload: conversation trace needs a positive arrival rate, got %v req/s", rate)
	}
	type convState struct {
		gen  *Generator
		rng  *rand.Rand
		hist []int
	}
	convs := make([]*convState, conversations)
	for c := range convs {
		s := seed + int64(c)*clientSeedStride
		convs[c] = &convState{
			gen: NewGenerator(prefixVocab, s),
			rng: rand.New(rand.NewSource(s + 1)),
		}
		convs[c].hist = convs[c].gen.Prompt(64)
	}
	arrival := rand.New(rand.NewSource(seed + 7))
	n := conversations * turns
	t := make(Trace, 0, n)
	clock := 0.0
	for i := 0; i < n; i++ {
		clock += arrival.ExpFloat64() / rate
		cs := convs[i%conversations]
		cs.hist = append(cs.hist, cs.gen.Prompt(16+cs.rng.Intn(33))...)
		output := 32 + cs.rng.Intn(65)
		if maxSeq > 0 && len(cs.hist)+output > maxSeq {
			// Context window exhausted: start a fresh session.
			cs.hist = cs.gen.Prompt(64)
			cs.hist = append(cs.hist, cs.gen.Prompt(16+cs.rng.Intn(33))...)
		}
		tokens := append([]int(nil), cs.hist...)
		t = append(t, Request{ID: i, Arrival: clock, Input: len(tokens), Output: output, Tokens: tokens})
		// The (synthesized) reply joins the history for the next turn.
		cs.hist = append(cs.hist, cs.gen.Prompt(output)...)
	}
	return t, nil
}
