// Package costmodel converts transformer operations into simulated
// execution times on a memsim hardware profile using a roofline model: an
// operation takes max(flops / attainable FLOPS, bytes / bandwidth) plus a
// fixed kernel-launch latency.
//
// Two second-order effects the paper measures are modelled explicitly:
//
//   - GPU under-utilisation for small operands (Fig. 11's FLOPS drop): the
//     attainable-FLOPS term degrades linearly below a saturation size, and
//     the launch latency keeps tiny kernels from shrinking to zero, so
//     "execution time does not decrease proportionally as KV sparsity
//     increases".
//   - Batched attention reads each sequence's own KV tensors, so KV bytes
//     scale with batch × attended tokens × hidden — the memory-bound term
//     that makes attention I/O-dominated, per §III-A.
package costmodel

import (
	"repro/internal/memsim"
	"repro/internal/model"
)

// Kernel-launch latencies per operation, seconds. Tiny ops bottom out here.
const launchLatency = 4e-6

// sparseBookkeeping is the per-layer per-step framework cost of token-level
// sparsity: building gather indices, updating the local attention sums, and
// managing the token-level cache. ALISA's implementation sits on FlexGen +
// HuggingFace (§VI-A), where this host-side work is a real, roughly
// constant per-layer charge.
const sparseBookkeeping = 100e-6

// Sample is the outcome of costing one operation.
type Sample struct {
	Seconds float64
	FLOPs   int64
	Bytes   int64
}

// EffFLOPS returns the achieved FLOP/s (the number printed inside the
// bars of Fig. 11). Zero-time samples report 0.
func (s Sample) EffFLOPS() float64 {
	if s.Seconds <= 0 {
		return 0
	}
	return float64(s.FLOPs) / s.Seconds
}

// add accumulates another sample into s.
func (s *Sample) add(o Sample) {
	s.Seconds += o.Seconds
	s.FLOPs += o.FLOPs
	s.Bytes += o.Bytes
}

// Cost evaluates operation timings against a hardware profile.
//
// The exported constructor New precomputes the per-profile constant
// products the hot-path methods would otherwise rebuild on every call
// (peak GEMM FLOPS, the elementwise FLOPS ceiling, the scatter-penalised
// gather bandwidth). A zero-valued literal Cost{Prof: p} still works —
// the accessors fall back to computing the same products, bit for bit.
type Cost struct {
	Prof memsim.Profile

	gemmPeak  float64 // PeakFLOPS · GEMMUtil
	vecPeak   float64 // PeakFLOPS · 0.05 (elementwise compute ceiling)
	scatterBW float64 // HBMBandwidth · scatterEff
}

// scatterEff discounts gather bandwidth for irregular reads.
const scatterEff = 0.7

// New returns a cost model over the profile with the per-profile
// constants hoisted.
func New(p memsim.Profile) Cost {
	return Cost{
		Prof:      p,
		gemmPeak:  p.PeakFLOPS * p.GEMMUtil,
		vecPeak:   p.PeakFLOPS * 0.05,
		scatterBW: p.HBMBandwidth * scatterEff,
	}
}

// gemmPeakFLOPS returns PeakFLOPS·GEMMUtil, hoisted by New or recomputed
// for literal constructions.
func (c Cost) gemmPeakFLOPS() float64 {
	if c.gemmPeak != 0 {
		return c.gemmPeak
	}
	return c.Prof.PeakFLOPS * c.Prof.GEMMUtil
}

// vecPeakFLOPS returns the elementwise compute ceiling PeakFLOPS·0.05.
func (c Cost) vecPeakFLOPS() float64 {
	if c.vecPeak != 0 {
		return c.vecPeak
	}
	return c.Prof.PeakFLOPS * 0.05
}

// scatterBandwidth returns HBMBandwidth·scatterEff.
func (c Cost) scatterBandwidth() float64 {
	if c.scatterBW != 0 {
		return c.scatterBW
	}
	return c.Prof.HBMBandwidth * scatterEff
}

// attainable returns the FLOP/s a GEMM with the given output size can
// achieve: full GEMMUtil·Peak once the output saturates the GPU, degrading
// linearly below SaturationElems with a floor (tiny ops cannot fill the
// machine).
func (c Cost) attainable(outputElems int64) float64 {
	frac := 1.0
	if sat := c.Prof.SaturationElems; sat > 0 && float64(outputElems) < sat {
		frac = float64(outputElems) / sat
		if frac < 0.02 {
			frac = 0.02
		}
	}
	return c.gemmPeakFLOPS() * frac
}

// GEMM costs an m×k · k×n matrix multiply at the given element width with
// operands read once and the result written once.
func (c Cost) GEMM(m, k, n int64, bytesPerElem int) Sample {
	flops := 2 * m * k * n
	bytes := (m*k + k*n + m*n) * int64(bytesPerElem)
	tCompute := float64(flops) / c.attainable(m*n)
	tMemory := float64(bytes) / c.Prof.HBMBandwidth
	return Sample{Seconds: maxf(tCompute, tMemory) + launchLatency, FLOPs: flops, Bytes: bytes}
}

// BatchedGEMV costs batch independent vector-matrix products v(1×k)·M(k×n)
// where every sequence has its own M — the decode-attention shape. Memory
// traffic is dominated by reading all batch matrices.
func (c Cost) BatchedGEMV(batch, k, n int64, bytesPerElem int) Sample {
	flops := 2 * batch * k * n
	bytes := batch * (k + k*n + n) * int64(bytesPerElem)
	tCompute := float64(flops) / c.attainable(batch*n)
	tMemory := float64(bytes) / c.Prof.HBMBandwidth
	return Sample{Seconds: maxf(tCompute, tMemory) + launchLatency, FLOPs: flops, Bytes: bytes}
}

// Elementwise costs a streaming pass over n elements with flopsPerElem
// arithmetic each — softmax, layernorm, residual adds. vectorEff scales the
// achievable bandwidth (1 = streaming-friendly).
func (c Cost) elementwise(n int64, flopsPerElem, bytesPerElem int, vectorEff float64) Sample {
	flops := n * int64(flopsPerElem)
	bytes := 2 * n * int64(bytesPerElem) // read + write
	tCompute := float64(flops) / c.vecPeakFLOPS()
	tMemory := float64(bytes) / (c.Prof.HBMBandwidth * vectorEff)
	return Sample{Seconds: maxf(tCompute, tMemory) + launchLatency, FLOPs: flops, Bytes: bytes}
}

// Elementwise costs a streaming-friendly elementwise pass.
func (c Cost) Elementwise(n int64, flopsPerElem, bytesPerElem int) Sample {
	return c.elementwise(n, flopsPerElem, bytesPerElem, 1)
}

// Gather costs packing n sparse rows of rowBytes each into a dense tensor
// (scattered read + dense write), the "sparse KV tensors" bar of Fig. 11.
func (c Cost) Gather(n int64, rowBytes int64) Sample {
	bytes := 2 * n * rowBytes
	return Sample{
		Seconds: float64(bytes)/c.scatterBandwidth() + launchLatency,
		Bytes:   bytes,
	}
}

// Quantize costs an INT8 quantize or dequantize pass over bytes of FP16
// data: one streaming read, one half-width write, light arithmetic.
func (c Cost) Quantize(fp16Bytes int64) Sample {
	bytes := fp16Bytes + fp16Bytes/2
	return Sample{Seconds: float64(bytes)/c.Prof.HBMBandwidth + launchLatency, Bytes: bytes}
}

// PrefixReuse costs wiring a cached prefix's KV into a newly admitted
// sequence: one streaming HBM read of the shared blocks and one write
// into the sequence's private tensors, plus a launch. Orders of
// magnitude cheaper than re-prefilling the same tokens — that gap is
// the whole prefix-cache payoff — but not free, so a cache hit still
// charges bandwidth proportional to the reused bytes.
func (c Cost) PrefixReuse(kvBytes int64) Sample {
	bytes := 2 * kvBytes
	return Sample{Seconds: float64(bytes)/c.Prof.HBMBandwidth + launchLatency, Bytes: bytes}
}

// AttnConfig describes one attention-module invocation.
type AttnConfig struct {
	Batch    int
	Hidden   int
	Heads    int
	Attended int // tokens attended per sequence (selected + current)
	BytesKV  int // element width of KV operands (2 = FP16)
	// LocalWindow > 0 enables SWA accounting: the local-attention-sum and
	// sparse-KV gather overheads of Algorithm 1.
	LocalWindow int
}

// AttnBreakdown is the per-operation timing of one attention module — the
// bars of Fig. 11.
type AttnBreakdown struct {
	QProj    Sample // Q/K/V/O projections (weight GEMMs)
	QKT      Sample // query · gathered-keysᵀ
	LocalSum Sample // SWA local attention sum (zero for dense)
	Gather   Sample // sparse-KV packing (zero for dense)
	Softmax  Sample
	AV       Sample // attention-weights · values
}

// Total returns the module's end-to-end time.
func (b AttnBreakdown) Total() float64 {
	return b.QProj.Seconds + b.QKT.Seconds + b.LocalSum.Seconds +
		b.Gather.Seconds + b.Softmax.Seconds + b.AV.Seconds
}

// Attention costs a single-step (one new token per sequence) attention
// module under the configuration.
func (c Cost) Attention(cfg AttnConfig) AttnBreakdown {
	b := int64(cfg.Batch)
	h := int64(cfg.Hidden)
	sel := int64(cfg.Attended)
	kvb := cfg.BytesKV

	var out AttnBreakdown
	// Weight projections are shared across the batch: one h×4h GEMM.
	out.QProj = c.GEMM(b, h, 4*h, 2)
	// Per-sequence score and context products: every sequence reads its own
	// sel×h keys and values.
	out.QKT = c.BatchedGEMV(b, h, sel, kvb)
	out.Softmax = c.Elementwise(b*int64(cfg.Heads)*sel, 5, 2)
	out.AV = c.BatchedGEMV(b, sel, h, kvb)
	if cfg.LocalWindow > 0 {
		// Local attention sum: summing the last LocalWindow head-reduced
		// attention rows of length ≈ sel per sequence; a low-arithmetic
		// vector op with poor data reuse ("vector vs. matrix operation",
		// Fig. 11 discussion).
		out.LocalSum = c.elementwise(b*int64(cfg.LocalWindow)*sel, 1, 4, 0.2)
		// Gather K and V rows for the selected tokens into dense tensors.
		out.Gather = c.Gather(b*sel, 2*h*int64(kvb))
	}
	return out
}

// FFNTime costs the feed-forward block for one step of a batch.
func (c Cost) FFNTime(batch, hidden, ffn int, gated bool) Sample {
	mats := 2
	if gated {
		mats = 3
	}
	s := c.GEMM(int64(batch), int64(hidden), int64(ffn), 2)
	var total Sample
	for i := 0; i < mats; i++ {
		total.add(s)
	}
	return total
}

// DecodeLayerTime returns the MHA and FFN times for one decode step of one
// layer at the given attended-token count.
func (c Cost) DecodeLayerTime(cfg model.Config, batch, attended, kvBytes int, swa bool) (mha, ffn float64) {
	ac := AttnConfig{
		Batch:    batch,
		Hidden:   cfg.Hidden,
		Heads:    cfg.Heads,
		Attended: attended,
		BytesKV:  kvBytes,
	}
	if swa {
		ac.LocalWindow = attended / 2
	}
	br := c.Attention(ac)
	f := c.FFNTime(batch, cfg.Hidden, cfg.FFN, cfg.GatedFFN)
	mha = br.Total()
	if swa {
		mha += sparseBookkeeping
	}
	return mha, f.Seconds
}

// RaggedDecodeTime returns the model-wide MHA and FFN times of one fused
// continuous-batching decode iteration over a dynamic batch whose
// sequences attend to heterogeneous token counts. Projections and the FFN
// run as single batch-wide GEMMs (one row per sequence); the attention
// kernels run raggedly — each sequence reads its own attended KV — but
// launch once per kernel class, so only the first sequence pays the
// per-kernel launch latency. For a single sequence this reduces exactly
// to DecodeLayerTime at batch 1 summed over layers, keeping the serving
// loop's charges consistent with the lockstep engine's.
func (c Cost) RaggedDecodeTime(cfg model.Config, attended []int, kvBytes int, swa bool) (mha, ffn float64) {
	b := len(attended)
	if b == 0 {
		return 0, 0
	}
	h := int64(cfg.Hidden)
	proj := c.GEMM(int64(b), h, 4*h, 2)
	mhaLayer := proj.Seconds

	kernels := 3.0 // QKT, softmax, AV
	if swa {
		kernels = 5 // + local sum, gather
	}
	for _, sel := range attended {
		ac := AttnConfig{
			Batch:    1,
			Hidden:   cfg.Hidden,
			Heads:    cfg.Heads,
			Attended: sel,
			BytesKV:  kvBytes,
		}
		if swa {
			ac.LocalWindow = sel / 2
		}
		br := c.Attention(ac)
		mhaLayer += br.Total() - br.QProj.Seconds // projection fused above
	}
	mhaLayer -= float64(b-1) * kernels * launchLatency
	if swa {
		mhaLayer += sparseBookkeeping
	}
	layers := float64(cfg.Layers)
	ffnLayer := c.FFNTime(b, cfg.Hidden, cfg.FFN, cfg.GatedFFN)
	return mhaLayer * layers, ffnLayer.Seconds * layers
}

// PrefillTime returns the time to prefill a batch of prompts of length s:
// projection GEMMs at batch·s rows plus causal (half-square) attention,
// where each sequence multiplies against its own keys and values.
func (c Cost) PrefillTime(cfg model.Config, batch, s int) float64 {
	rows := int64(batch) * int64(s)
	h := int64(cfg.Hidden)
	sl := int64(s)
	proj := c.GEMM(rows, h, 4*h, 2)
	ffn := c.FFNTime(batch*s, cfg.Hidden, cfg.FFN, cfg.GatedFFN)
	// Per-sequence s×h · h×(s/2) score product, batch of them.
	qkt := c.GEMM(sl, h, sl/2+1, 2)
	av := c.GEMM(sl, sl/2+1, h, 2)
	soft := c.Elementwise(rows*sl/2, 5, 2)
	perLayer := proj.Seconds + ffn.Seconds + float64(batch)*(qkt.Seconds+av.Seconds) + soft.Seconds
	return perLayer * float64(cfg.Layers)
}

// RecomputeTime returns the time to recompute K/V tensors for n deleted
// tokens of a batch: the K and V projections charged over the token rows
// (paper Table II's Tr).
func (c Cost) RecomputeTime(cfg model.Config, batch, tokens int) float64 {
	if tokens <= 0 {
		return 0
	}
	rows := int64(batch) * int64(tokens)
	h := int64(cfg.Hidden)
	kv := c.GEMM(rows, h, 2*h, 2) // K and V projections fused
	return kv.Seconds * float64(cfg.Layers)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
