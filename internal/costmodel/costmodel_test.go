package costmodel

import (
	"math"
	"testing"

	"repro/internal/memsim"
	"repro/internal/model"
)

func TestGEMMRooflineRegimes(t *testing.T) {
	c := New(memsim.V100_16G())
	// A large square GEMM is compute-bound: time ≈ flops / attainable.
	big := c.GEMM(4096, 4096, 4096, 2)
	attain := c.Prof.PeakFLOPS * c.Prof.GEMMUtil
	computeTime := float64(big.FLOPs) / attain
	if big.Seconds < computeTime*0.99 {
		t.Fatalf("big GEMM faster than compute bound: %v < %v", big.Seconds, computeTime)
	}
	// A skinny GEMM (batch-1 decode) is memory-bound: time ≈ bytes / bw
	// plus launch latency.
	skinny := c.GEMM(1, 4096, 4096, 2)
	memTime := float64(skinny.Bytes) / c.Prof.HBMBandwidth
	if skinny.Seconds < memTime || skinny.Seconds > memTime+10e-6 {
		t.Fatalf("skinny GEMM should be memory-bound: %v vs %v", skinny.Seconds, memTime)
	}
}

func TestSmallGEMMUnderUtilisation(t *testing.T) {
	// Fig. 11's FLOPS drop: shrinking the output tensor must shrink
	// effective FLOPS once below the saturation size.
	c := New(memsim.H100_80G())
	large := c.GEMM(64, 7168, 128, 2)
	small := c.GEMM(64, 7168, 16, 2)
	if small.EffFLOPS() >= large.EffFLOPS() {
		t.Fatalf("small GEMM FLOPS %.3e should drop below large %.3e",
			small.EffFLOPS(), large.EffFLOPS())
	}
	// But execution time must not *increase* when work shrinks.
	if small.Seconds > large.Seconds {
		t.Fatalf("smaller GEMM slower: %v > %v", small.Seconds, large.Seconds)
	}
}

func TestAttentionSparsityReducesTime(t *testing.T) {
	// Fig. 11: higher KV sparsity always reduces SWA module time.
	c := New(memsim.V100_32G())
	mk := func(attended int) float64 {
		return c.Attention(AttnConfig{
			Batch: 64, Hidden: 4096, Heads: 32,
			Attended: attended, BytesKV: 2, LocalWindow: attended / 2,
		}).Total()
	}
	dense := mk(128)
	sp40 := mk(77) // 40 % sparsity of 128
	sp80 := mk(26)
	if !(dense > sp40 && sp40 > sp80) {
		t.Fatalf("attention time should fall with sparsity: %v, %v, %v", dense, sp40, sp80)
	}
}

func TestSWAOverheadVisible(t *testing.T) {
	// SWA introduces local-sum and gather overhead vs. dense attention at
	// the same attended size (the "execution overhead" in Fig. 11).
	c := New(memsim.V100_32G())
	cfg := AttnConfig{Batch: 64, Hidden: 4096, Heads: 32, Attended: 64, BytesKV: 2}
	dense := c.Attention(cfg)
	cfg.LocalWindow = 32
	swa := c.Attention(cfg)
	if swa.Total() <= dense.Total() {
		t.Fatalf("SWA should carry overhead: %v vs %v", swa.Total(), dense.Total())
	}
	if swa.LocalSum.Seconds == 0 || swa.Gather.Seconds == 0 {
		t.Fatal("SWA overhead components missing")
	}
	if dense.LocalSum.Seconds != 0 || dense.Gather.Seconds != 0 {
		t.Fatal("dense attention must not pay SWA overhead")
	}
}

func TestLargerModelHigherOverhead(t *testing.T) {
	// Fig. 11: larger LLMs incur higher local-sum and gather overheads.
	c := New(memsim.H100_80G())
	small := c.Attention(AttnConfig{Batch: 64, Hidden: 4096, Heads: 32, Attended: 64, BytesKV: 2, LocalWindow: 32})
	large := c.Attention(AttnConfig{Batch: 64, Hidden: 7168, Heads: 56, Attended: 64, BytesKV: 2, LocalWindow: 32})
	if large.LocalSum.Seconds+large.Gather.Seconds <= small.LocalSum.Seconds+small.Gather.Seconds {
		t.Fatal("larger model should pay more SWA overhead")
	}
}

func TestFFNGatedCostsMore(t *testing.T) {
	c := New(memsim.V100_16G())
	plain := c.FFNTime(8, 4096, 11008, false)
	gated := c.FFNTime(8, 4096, 11008, true)
	if gated.Seconds <= plain.Seconds {
		t.Fatal("gated FFN should cost 3/2 of plain")
	}
}

func TestPrefillScalesAtLeastLinearly(t *testing.T) {
	// At moderate lengths prefill is dominated by the linear GEMM terms;
	// the quadratic attention share grows with s, so doubling s must at
	// least double time and the per-token cost must not fall.
	c := New(memsim.V100_32G())
	cfg := model.MustByName("opt-6.7b")
	t256 := c.PrefillTime(cfg, 8, 256)
	t512 := c.PrefillTime(cfg, 8, 512)
	t2048 := c.PrefillTime(cfg, 8, 2048)
	if t512 < 1.95*t256 {
		t.Fatalf("prefill sublinear: %v vs %v", t256, t512)
	}
	// Quadratic share visible at long sequences: 8× tokens, strictly more
	// than 8× time (projections are linear; attention adds the excess).
	if t2048 <= 8.02*t256 {
		t.Fatalf("prefill quadratic share missing: t2048=%v t256=%v", t2048, t256)
	}
}

func TestRecomputeTimeProperties(t *testing.T) {
	c := New(memsim.H100_80G())
	cfg := model.MustByName("opt-30b")
	if c.RecomputeTime(cfg, 64, 0) != 0 {
		t.Fatal("zero tokens should cost zero")
	}
	r10 := c.RecomputeTime(cfg, 64, 10)
	r20 := c.RecomputeTime(cfg, 64, 20)
	if r20 <= r10 {
		t.Fatal("recompute time should grow with token count")
	}
	// The central Phase III trade-off: recomputing a token must be cheaper
	// than fetching it over PCIe once compute is fast enough — otherwise
	// recomputation could never win (paper Fig. 12(b)).
	kvBytes := cfg.KVBytesPerToken(2) * 64 * 10
	fetch := float64(kvBytes) / c.Prof.PCIeBandwidth
	if r10 >= fetch {
		t.Fatalf("recompute (%v) should beat PCIe fetch (%v) on H100", r10, fetch)
	}
}

func TestQuantizePassCheaperThanTransferSavings(t *testing.T) {
	// Compressing KV to INT8 must cost less than the transfer time it
	// saves at PCIe speeds, or the paper's KV compression would not help.
	c := New(memsim.V100_32G())
	bytes := int64(1) << 30
	q := c.Quantize(bytes)
	saved := float64(bytes/2) / c.Prof.PCIeBandwidth
	if q.Seconds >= saved {
		t.Fatalf("quantization %v not worth the saved transfer %v", q.Seconds, saved)
	}
}

func TestDecodeLayerTimeShape(t *testing.T) {
	c := New(memsim.V100_32G())
	cfg := model.MustByName("opt-6.7b")
	// At large batch the per-sequence KV traffic dominates, so attending
	// 5× fewer tokens wins despite SWA's gather/local-sum/bookkeeping
	// overheads.
	mhaDense, ffn := c.DecodeLayerTime(cfg, 64, 640, 2, false)
	mhaSparse, ffn2 := c.DecodeLayerTime(cfg, 64, 128, 2, true)
	if ffn != ffn2 {
		t.Fatal("FFN time must not depend on attention sparsity")
	}
	if mhaSparse >= mhaDense {
		t.Fatalf("sparse MHA (%v) should beat dense (%v) at 5× fewer tokens", mhaSparse, mhaDense)
	}
	// At the SAME attended size the sparse path must cost more — the SWA
	// overhead of Fig. 11.
	mhaDenseSame, _ := c.DecodeLayerTime(cfg, 64, 128, 2, false)
	if mhaSparse <= mhaDenseSame {
		t.Fatalf("SWA at equal attended size should carry overhead: %v vs %v", mhaSparse, mhaDenseSame)
	}
}

func TestSampleEffFLOPSZeroSafe(t *testing.T) {
	if (Sample{}).EffFLOPS() != 0 {
		t.Fatal("zero sample should report zero FLOPS")
	}
}

func TestRaggedDecodeTimeSingleMatchesLockstep(t *testing.T) {
	c := New(memsim.V100_16G())
	cfg := model.MustByName("opt-6.7b")
	for _, swa := range []bool{false, true} {
		for _, sel := range []int{1, 17, 300} {
			mhaLock, ffnLock := c.DecodeLayerTime(cfg, 1, sel, 2, swa)
			layers := float64(cfg.Layers)
			mha, ffn := c.RaggedDecodeTime(cfg, []int{sel}, 2, swa)
			if math.Abs(mha-mhaLock*layers) > mha*1e-12 || math.Abs(ffn-ffnLock*layers) > ffn*1e-12 {
				t.Errorf("swa=%v sel=%d: ragged single (%.12g, %.12g) != lockstep batch-1 (%.12g, %.12g)",
					swa, sel, mha, ffn, mhaLock*layers, ffnLock*layers)
			}
		}
	}
}

func TestRaggedDecodeTimeProperties(t *testing.T) {
	c := New(memsim.V100_16G())
	cfg := model.MustByName("opt-6.7b")
	if m, f := c.RaggedDecodeTime(cfg, nil, 2, false); m != 0 || f != 0 {
		t.Errorf("empty batch costs (%v, %v)", m, f)
	}
	total := func(attended []int) float64 {
		m, f := c.RaggedDecodeTime(cfg, attended, 2, true)
		if m <= 0 || f <= 0 {
			t.Fatalf("non-positive charge (%v, %v) for %v", m, f, attended)
		}
		return m + f
	}
	// Fusing beats running the sequences as separate batch-1 iterations.
	attended := []int{64, 512, 129, 1000}
	fused := total(attended)
	var separate float64
	for _, sel := range attended {
		separate += total([]int{sel})
	}
	if fused >= separate {
		t.Errorf("fused iteration %.6g not cheaper than separate %.6g", fused, separate)
	}
	// Monotone in any sequence's attended count.
	if more := total([]int{64, 512, 400, 1000}); more <= fused {
		t.Errorf("more attended tokens not more expensive: %.6g <= %.6g", more, fused)
	}
}
