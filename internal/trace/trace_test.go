package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBreakdownAddGetTotal(t *testing.T) {
	b := NewBreakdown()
	b.Add(CatMHA, 1.5)
	b.Add(CatMHA, 0.5)
	b.Add(CatFFN, 1.0)
	if b.Get(CatMHA) != 2.0 {
		t.Fatalf("MHA = %v, want 2.0", b.Get(CatMHA))
	}
	if b.Total() != 3.0 {
		t.Fatalf("Total = %v, want 3.0", b.Total())
	}
	if b.Get(CatQuant) != 0 {
		t.Fatal("unset category should be zero")
	}
}

func TestBreakdownNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBreakdown().Add(CatMHA, -1)
}

func TestBreakdownMerge(t *testing.T) {
	a := NewBreakdown()
	a.Add(CatMHA, 1)
	b := NewBreakdown()
	b.Add(CatMHA, 2)
	b.Add(CatTransfer, 3)
	a.Merge(b)
	if a.Get(CatMHA) != 3 || a.Get(CatTransfer) != 3 {
		t.Fatalf("merge wrong: %v", a)
	}
}

func TestBreakdownStringSorted(t *testing.T) {
	b := NewBreakdown()
	b.Add(CatTransfer, 2)
	b.Add(CatFFN, 1)
	s := b.String()
	if !strings.Contains(s, "ffn=1.000s") || !strings.Contains(s, "transfer=2.000s") {
		t.Fatalf("String = %q", s)
	}
	if strings.Index(s, "ffn") > strings.Index(s, "transfer") {
		t.Fatalf("categories not sorted: %q", s)
	}
}

func TestCategoriesOmitZero(t *testing.T) {
	b := NewBreakdown()
	b.Add(CatMHA, 0)
	b.Add(CatFFN, 1)
	cats := b.Categories()
	if len(cats) != 1 || cats[0] != CatFFN {
		t.Fatalf("Categories = %v", cats)
	}
}

func TestMemSeries(t *testing.T) {
	var m MemSeries
	m.Record(0, 100, 10)
	m.Record(1, 300, 20)
	m.Record(2, 200, 50)
	if m.PeakGPU() != 300 || m.PeakCPU() != 50 {
		t.Fatalf("peaks = %d/%d", m.PeakGPU(), m.PeakCPU())
	}
	s, ok := m.At(1)
	if !ok || s.GPUBytes != 300 {
		t.Fatalf("At(1) = %+v, %v", s, ok)
	}
	if _, ok := m.At(9); ok {
		t.Fatal("At(9) should miss")
	}
	var empty MemSeries
	if empty.PeakGPU() != 0 || empty.PeakCPU() != 0 {
		t.Fatal("empty series peaks should be zero")
	}
}

// Property: Total equals the sum of all category gets, under any sequence
// of additions.
func TestTotalConsistencyProperty(t *testing.T) {
	cats := []Category{CatPrefill, CatMHA, CatFFN, CatTransfer, CatRecompute, CatQuant, CatOther}
	f := func(charges []uint16) bool {
		b := NewBreakdown()
		for i, c := range charges {
			b.Add(cats[i%len(cats)], float64(c)/1000)
		}
		var sum float64
		for _, c := range cats {
			sum += b.Get(c)
		}
		return math.Abs(sum-b.Total()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
