// Package trace accumulates the per-category execution time and per-step
// memory usage that the paper's breakdown figures report: Fig. 1 (MHA /
// FFN / memory access), Fig. 2(c) (time and memory per step), and
// Fig. 12(a) (per-phase time and GPU/CPU memory).
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Category labels a slice of execution time.
type Category string

// Execution-time categories used by the engine.
const (
	CatPrefill     Category = "prefill"
	CatMHA         Category = "mha"
	CatFFN         Category = "ffn"
	CatTransfer    Category = "transfer"
	CatRecompute   Category = "recompute"
	CatQuant       Category = "quant"
	CatFullForward Category = "full-forward"
	CatOther       Category = "other"
)

// Breakdown accumulates seconds by category.
type Breakdown struct {
	seconds map[Category]float64
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{seconds: make(map[Category]float64)}
}

// Add charges dt seconds to the category; negative charges panic.
func (b *Breakdown) Add(cat Category, dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("trace: negative charge %v to %s", dt, cat))
	}
	b.seconds[cat] += dt
}

// Get returns the seconds charged to cat.
func (b *Breakdown) Get(cat Category) float64 { return b.seconds[cat] }

// Total returns the sum across categories.
func (b *Breakdown) Total() float64 {
	var t float64
	for _, v := range b.seconds {
		t += v
	}
	return t
}

// Merge adds every category of o into b.
func (b *Breakdown) Merge(o *Breakdown) {
	for c, v := range o.seconds {
		b.seconds[c] += v
	}
}

// Clone returns an independent copy of the breakdown.
func (b *Breakdown) Clone() *Breakdown {
	c := NewBreakdown()
	for cat, v := range b.seconds {
		c.seconds[cat] = v
	}
	return c
}

// Categories returns the non-zero categories in stable (sorted) order.
func (b *Breakdown) Categories() []Category {
	cats := make([]Category, 0, len(b.seconds))
	for c, v := range b.seconds {
		if v > 0 {
			cats = append(cats, c)
		}
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	return cats
}

// String formats the breakdown as "cat=1.234s" pairs in sorted order.
func (b *Breakdown) String() string {
	cats := b.Categories()
	parts := make([]string, 0, len(cats))
	for _, c := range cats {
		parts = append(parts, fmt.Sprintf("%s=%.3fs", c, b.seconds[c]))
	}
	return strings.Join(parts, " ")
}

// MemSample records device memory at one decode step.
type MemSample struct {
	Step     int
	GPUBytes int64
	CPUBytes int64
}

// MemSeries is the per-step memory trajectory of a run.
type MemSeries struct {
	Samples []MemSample
}

// Record appends a sample.
func (m *MemSeries) Record(step int, gpu, cpu int64) {
	m.Samples = append(m.Samples, MemSample{Step: step, GPUBytes: gpu, CPUBytes: cpu})
}

// PeakGPU returns the largest GPU sample, 0 when empty.
func (m *MemSeries) PeakGPU() int64 {
	var peak int64
	for _, s := range m.Samples {
		if s.GPUBytes > peak {
			peak = s.GPUBytes
		}
	}
	return peak
}

// PeakCPU returns the largest CPU sample, 0 when empty.
func (m *MemSeries) PeakCPU() int64 {
	var peak int64
	for _, s := range m.Samples {
		if s.CPUBytes > peak {
			peak = s.CPUBytes
		}
	}
	return peak
}

// At returns the sample at the given step, or false when absent.
func (m *MemSeries) At(step int) (MemSample, bool) {
	for _, s := range m.Samples {
		if s.Step == step {
			return s, true
		}
	}
	return MemSample{}, false
}
