package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestPercentileEdgeCases is the table pinning Percentile's documented
// contract: empty, single-element, all-equal, clamped p, interpolation,
// and NaN propagation.
func TestPercentileEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		v    []float64
		p    float64
		want float64 // compared with == except NaN, checked via IsNaN
	}{
		{"empty", nil, 50, 0},
		{"empty-zero-len", []float64{}, 99, 0},
		{"single-mid", []float64{3.5}, 50, 3.5},
		{"single-low", []float64{3.5}, 0, 3.5},
		{"single-high", []float64{3.5}, 100, 3.5},
		{"single-clamped-negative", []float64{3.5}, -10, 3.5},
		{"single-clamped-over", []float64{3.5}, 250, 3.5},
		{"all-equal-mid", []float64{2, 2, 2, 2}, 50, 2},
		{"all-equal-tail", []float64{2, 2, 2, 2}, 99, 2},
		{"two-interpolated", []float64{1, 2}, 50, 1.5},
		{"unsorted-input", []float64{4, 1, 3, 2}, 0, 1},
		{"unsorted-max", []float64{4, 1, 3, 2}, 100, 4},
		{"clamp-low", []float64{1, 2, 3}, -5, 1},
		{"clamp-high", []float64{1, 2, 3}, 105, 3},
		{"nan-low-rank", []float64{nan, 1, 2, 3}, 0, nan},
		{"nan-high-rank-clean", []float64{nan, 1, 2, 3}, 100, 3},
		{"all-nan", []float64{nan, nan}, 50, nan},
	}
	for _, tc := range cases {
		got := Percentile(tc.v, tc.p)
		if math.IsNaN(tc.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: Percentile(%v) = %v, want NaN", tc.name, tc.p, got)
			}
			continue
		}
		if got != tc.want {
			t.Errorf("%s: Percentile(%v, %v) = %v, want %v", tc.name, tc.v, tc.p, got, tc.want)
		}
	}
	// The contract also promises v is never modified, even with NaN.
	v := []float64{3, math.NaN(), 1}
	_ = Percentile(v, 50)
	if v[0] != 3 || !math.IsNaN(v[1]) || v[2] != 1 {
		t.Errorf("Percentile mutated its input: %v", v)
	}
}

// TestLatencyDigestMatchesSummarize checks the digest against the exact
// path: Mean/Max identical, percentiles within the sketch's value error
// implied by its rank bound.
func TestLatencyDigestMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 10, 1000, 30_000} {
		v := make([]float64, n)
		d := NewLatencyDigest(256)
		for i := range v {
			v[i] = rng.ExpFloat64() * 0.3
			d.Observe(v[i])
		}
		exact := Summarize(v)
		got := d.Summary()
		if math.Abs(got.Mean-exact.Mean) > 1e-9*math.Max(1, exact.Mean) {
			t.Errorf("n=%d: digest mean %v, exact %v", n, got.Mean, exact.Mean)
		}
		if got.Max != exact.Max {
			t.Errorf("n=%d: digest max %v, exact %v", n, got.Max, exact.Max)
		}
		// Rank bound → value tolerance: the p-th answer must lie between
		// the exact percentiles at p ± bound ranks.
		bound := 3 * float64(n) / 256
		if bound < 1 {
			bound = 1
		}
		for _, p := range []struct {
			pct float64
			got float64
		}{{50, got.P50}, {95, got.P95}, {99, got.P99}} {
			loRank := math.Max(0, p.pct/100*float64(n-1)-bound)
			hiRank := math.Min(float64(n-1), p.pct/100*float64(n-1)+bound)
			lo := Percentile(v, loRank/math.Max(1, float64(n-1))*100)
			hi := Percentile(v, hiRank/math.Max(1, float64(n-1))*100)
			if p.got < lo || p.got > hi {
				t.Errorf("n=%d p%v: digest %v outside exact envelope [%v, %v]", n, p.pct, p.got, lo, hi)
			}
		}
	}
}

// TestLatencyDigestEmptyAndClone pins the zero summary and clone
// independence.
func TestLatencyDigestEmptyAndClone(t *testing.T) {
	d := NewLatencyDigest(0)
	if s := d.Summary(); s != (LatencySummary{}) {
		t.Fatalf("empty digest summary %+v", s)
	}
	for i := 0; i < 5000; i++ {
		d.Observe(float64(i % 97))
	}
	c := d.Clone()
	if c.Summary() != d.Summary() {
		t.Fatal("clone summary diverged")
	}
	before := d.Summary()
	for i := 0; i < 5000; i++ {
		c.Observe(1e6)
	}
	if d.Summary() != before {
		t.Fatal("observing into clone mutated original")
	}
	if d.RetainedItems() == 0 {
		t.Fatal("retained items unexpectedly zero")
	}
}

// TestLatencyDigestMerge pins mergeability across shards.
func TestLatencyDigestMerge(t *testing.T) {
	a, b := NewLatencyDigest(256), NewLatencyDigest(256)
	whole := NewLatencyDigest(256)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10_000; i++ {
		v := rng.Float64() * 10
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), whole.Count())
	}
	as, ws := a.Summary(), whole.Summary()
	if math.Abs(as.Mean-ws.Mean) > 1e-9 || as.Max != ws.Max {
		t.Fatalf("merged mean/max %v/%v, whole %v/%v", as.Mean, as.Max, ws.Mean, ws.Max)
	}
	if err := a.Merge(NewLatencyDigest(64)); err == nil {
		t.Fatal("capacity mismatch merge accepted")
	}
}

// TestWindowClone pins Window.Clone: identical snapshots, then full
// independence under further observations.
func TestWindowClone(t *testing.T) {
	w := NewWindow(8)
	for i := 0; i < 13; i++ { // wrap the ring
		w.Observe(float64(i), 0.1, 0.01, 0.5+float64(i), 10, i%2 == 0)
	}
	c := w.Clone()
	if c.Snapshot() != w.Snapshot() {
		t.Fatal("clone snapshot diverged")
	}
	before := w.Snapshot()
	c.Observe(100, 9, 9, 9, 1000, false)
	if w.Snapshot() != before {
		t.Fatal("observing into clone mutated original window")
	}
	w.Observe(200, 1, 1, 1, 5, true)
	if c.Len() != 8 || c.Snapshot().Newest == 200 {
		t.Fatal("observing into original leaked into clone")
	}
}
