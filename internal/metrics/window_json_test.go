package metrics

import (
	"encoding/json"
	"testing"
)

// TestWindowSnapshotJSONGolden pins the WindowSnapshot wire format. The
// gateway's /v1/metrics endpoint serves this encoding verbatim, so the
// field names, order, and shape are a public contract: a diff here is a
// wire-protocol break that every scraper and dashboard sees, not an
// internal refactor.
func TestWindowSnapshotJSONGolden(t *testing.T) {
	snap := WindowSnapshot{
		Count:  3,
		Oldest: 1.5,
		Newest: 4.25,
		TTFT:   LatencySummary{Mean: 0.5, P50: 0.45, P95: 0.9, P99: 0.99, Max: 1.25},
		TPOT:   LatencySummary{Mean: 0.05, P50: 0.04, P95: 0.09, P99: 0.1, Max: 0.125},
		E2E:    LatencySummary{Mean: 2, P50: 1.75, P95: 3.5, P99: 3.9, Max: 4},

		Throughput:    128.5,
		Goodput:       96.25,
		SLOAttainment: 0.75,

		PrefixHits:         2,
		PrefixMisses:       1,
		PrefixHitRate:      0.6666666666666666,
		PrefixCachedTokens: 48,
		PrefixSharedBytes:  4096,
	}
	const want = `{` +
		`"count":3,"oldest":1.5,"newest":4.25,` +
		`"ttft":{"mean":0.5,"p50":0.45,"p95":0.9,"p99":0.99,"max":1.25},` +
		`"tpot":{"mean":0.05,"p50":0.04,"p95":0.09,"p99":0.1,"max":0.125},` +
		`"e2e":{"mean":2,"p50":1.75,"p95":3.5,"p99":3.9,"max":4},` +
		`"throughput":128.5,"goodput":96.25,"slo_attainment":0.75,` +
		`"prefix_hits":2,"prefix_misses":1,"prefix_hit_rate":0.6666666666666666,` +
		`"prefix_cached_tokens":48,"prefix_shared_bytes":4096}`
	got, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("WindowSnapshot wire format changed:\n got %s\nwant %s", got, want)
	}

	// The zero snapshot must stay fully populated (no omitempty): a
	// scraper polling an idle gateway sees every field, zero-valued.
	zero, err := json.Marshal(WindowSnapshot{})
	if err != nil {
		t.Fatal(err)
	}
	const wantZero = `{` +
		`"count":0,"oldest":0,"newest":0,` +
		`"ttft":{"mean":0,"p50":0,"p95":0,"p99":0,"max":0},` +
		`"tpot":{"mean":0,"p50":0,"p95":0,"p99":0,"max":0},` +
		`"e2e":{"mean":0,"p50":0,"p95":0,"p99":0,"max":0},` +
		`"throughput":0,"goodput":0,"slo_attainment":0,` +
		`"prefix_hits":0,"prefix_misses":0,"prefix_hit_rate":0,` +
		`"prefix_cached_tokens":0,"prefix_shared_bytes":0}`
	if string(zero) != wantZero {
		t.Errorf("zero WindowSnapshot wire format changed:\n got %s\nwant %s", zero, wantZero)
	}

	// Round-trip: the wire names decode back onto the same struct.
	var back WindowSnapshot
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back != snap {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", back, snap)
	}
}
