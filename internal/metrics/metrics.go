// Package metrics provides the measurement toolkit used throughout the
// evaluation: Spearman rank correlation (paper Fig. 4), attention-weight
// sparsity under the paper's 1 %-of-row-max threshold (Fig. 3/10),
// attention-mass recall (the accuracy mechanism behind Fig. 8), and basic
// summary statistics for throughput reporting.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Spearman returns the Spearman rank correlation coefficient ρ between a
// and b, which must have equal non-zero length. Ties receive fractional
// (average) ranks. The result lies in [-1, 1]; ρ close to 1 means the two
// attention score vectors order tokens almost identically — the criterion
// the paper uses to validate SWA against dense attention.
func Spearman(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: spearman length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) < 2 {
		return 0, fmt.Errorf("metrics: spearman needs at least 2 samples, got %d", len(a))
	}
	ra := FractionalRanks(a)
	rb := FractionalRanks(b)
	return Pearson(ra, rb)
}

// FractionalRanks assigns 1-based ranks to v, averaging ranks across ties.
func FractionalRanks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return v[idx[i]] < v[idx[j]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		// Average of 1-based ranks i+1 .. j+1.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson correlation of a and b. Vectors with zero
// variance yield an error, since correlation is undefined there.
func Pearson(a, b []float64) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("metrics: pearson length mismatch %d vs %d", len(a), len(b))
	}
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, fmt.Errorf("metrics: pearson undefined for zero-variance input")
	}
	return cov / math.Sqrt(va*vb), nil
}

// Sparsity returns the fraction of elements in row that fall below
// threshold × max(row), the zero criterion from the paper's Fig. 3
// ("elements are zeros if they fall below 1 % of the row-wise maximum").
// Rows with a non-positive maximum count as fully sparse.
func Sparsity(row []float64, threshold float64) float64 {
	if len(row) == 0 {
		return 0
	}
	maxv := math.Inf(-1)
	for _, v := range row {
		if v > maxv {
			maxv = v
		}
	}
	if maxv <= 0 {
		return 1
	}
	cut := threshold * maxv
	zeros := 0
	for _, v := range row {
		if v < cut {
			zeros++
		}
	}
	return float64(zeros) / float64(len(row))
}

// SparsityMasked returns Sparsity(row, threshold) for the implicit
// length-rowLen row that holds weights at len(weights) distinct positions
// and zeros everywhere else, without materialising the row — the masked
// attention rows the policies produce, where len(weights) ≪ rowLen. The
// result is bit-identical to materialising and calling Sparsity.
func SparsityMasked(weights []float64, rowLen int, threshold float64) float64 {
	if rowLen == 0 {
		return 0
	}
	maxv := math.Inf(-1)
	for _, v := range weights {
		if v > maxv {
			maxv = v
		}
	}
	if len(weights) < rowLen && maxv < 0 {
		maxv = 0 // the implicit zero positions participate in the row max
	}
	if maxv <= 0 {
		return 1
	}
	cut := threshold * maxv
	zeros := 0
	if 0 < cut {
		zeros = rowLen - len(weights) // every implicit zero falls below cut
	}
	for _, v := range weights {
		if v < cut {
			zeros++
		}
	}
	return float64(zeros) / float64(rowLen)
}

// MassRecall returns the fraction of total probability mass in weights that
// the retained index set captures. This is the mechanistic accuracy proxy:
// a sparse policy that retains nearly all attention mass produces nearly
// dense attention scores (paper Fig. 4), hence nearly dense accuracy.
func MassRecall(weights []float64, retained []int) float64 {
	var total, kept float64
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return 1
	}
	seen := make(map[int]bool, len(retained))
	for _, i := range retained {
		if i < 0 || i >= len(weights) || seen[i] {
			continue
		}
		seen[i] = true
		kept += weights[i]
	}
	return kept / total
}

// PerplexityProxy maps mean attention-mass recall to a perplexity estimate
// relative to the dense baseline: ppl = dense · exp(7·(1−recall)^2.35).
//
// Losing attention mass starves the prediction head of context; in the
// paper's Fig. 8 the degradation is gentle near recall 1 and catastrophic
// ("accuracy collapse") as recall falls. The two constants are calibrated
// to the paper's anchors: SWA at 80 % KV sparsity retains ≈88 % of mass
// and shows <5 % perplexity regression, while local attention at the same
// sparsity loses half the mass and collapses (≥4× perplexity).
func PerplexityProxy(densePPL, recall float64) float64 {
	if recall >= 1 {
		return densePPL
	}
	if recall < 0 {
		recall = 0
	}
	lost := 1 - recall
	return densePPL * math.Exp(7.0*math.Pow(lost, 2.35))
}

// AccuracyProxy maps recall to a QA-task accuracy relative to the dense
// baseline accuracy, with chance as the collapse floor. The same
// recall→quality shape as PerplexityProxy, expressed on a bounded scale.
func AccuracyProxy(denseAcc, chance, recall float64) float64 {
	if recall >= 1 {
		return denseAcc
	}
	if recall < 0 {
		recall = 0
	}
	lost := 1 - recall
	retainFrac := math.Exp(-5.5 * math.Pow(lost, 2.35))
	return chance + (denseAcc-chance)*retainFrac
}

// Mean returns the arithmetic mean of v, or 0 for empty input.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// GeoMean returns the geometric mean of strictly positive v values.
func GeoMean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(v)))
}

// Percentile returns the p-th percentile of v using linear interpolation
// between order statistics. v is not modified. The contract, pinned by
// the edge-case table tests:
//
//   - Empty input returns 0 (there is no distribution to ask about).
//   - p ≤ 0 returns the minimum and p ≥ 100 the maximum; p is
//     effectively clamped to [0, 100], never an error.
//   - A single-element or all-equal input returns that value for every p.
//   - Otherwise the result interpolates linearly between the two order
//     statistics straddling rank p/100·(n−1), so p=50 of [1, 2] is 1.5.
//   - NaN samples are not rejected: sort.Float64s orders NaN before
//     every number, so NaNs occupy the lowest ranks and low percentiles
//     (and interpolations touching them) come back NaN. Callers with
//     possibly-NaN data must filter first — the serving pipeline never
//     produces NaN latencies, and the streaming sketch path rejects NaN
//     outright.
func Percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return sortedPercentile(s, p)
}

// LatencySummary is the percentile digest the serving evaluation reports
// for each latency distribution (TTFT, TPOT, end-to-end). The JSON tags
// are part of the WindowSnapshot wire format served by the gateway's
// /v1/metrics endpoint; see the golden encoding test.
type LatencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// Summarize digests v into its serving percentiles. Empty input yields the
// zero summary. v is not modified.
func Summarize(v []float64) LatencySummary {
	sum, _ := SummarizeInto(v, nil)
	return sum
}

// SummarizeInto is Summarize with a caller-owned scratch buffer: v is
// copied into scratch (grown as needed), sorted once, and every quantile
// of the summary is read from that single sort. It returns the summary
// and the (possibly grown) scratch for reuse, so a caller digesting
// several distributions — the serving loop's TTFT/TPOT/E2E triple —
// performs no per-summary allocation after the first. v is not modified;
// the returned scratch holds v's values in sorted order until the next
// call. Bit-identical to Summarize.
func SummarizeInto(v, scratch []float64) (LatencySummary, []float64) {
	if len(v) == 0 {
		return LatencySummary{}, scratch
	}
	s := append(scratch[:0], v...)
	sort.Float64s(s)
	return LatencySummary{
		Mean: Mean(s),
		P50:  sortedPercentile(s, 50),
		P95:  sortedPercentile(s, 95),
		P99:  sortedPercentile(s, 99),
		Max:  s[len(s)-1],
	}, s
}

// sortedPercentile is Percentile over already-sorted data, so one sort
// serves all the quantiles of a summary.
func sortedPercentile(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Normalize scales v so it sums to 1, returning a copy. An all-zero input
// returns a uniform distribution.
func Normalize(v []float64) []float64 {
	out := make([]float64, len(v))
	var total float64
	for _, x := range v {
		total += x
	}
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(v))
		}
		return out
	}
	for i, x := range v {
		out[i] = x / total
	}
	return out
}
