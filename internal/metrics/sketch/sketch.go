// Package sketch provides a deterministic, mergeable quantile sketch in
// the KLL family (Karnin–Lang–Liberty), sized in constant memory no
// matter how many observations stream through it. The serving loop's
// scale mode streams every completed request's latency into three of
// these, so a 10⁷-request run answers p50/p95/p99 queries from a few
// kilobytes of state instead of a 10⁷-element sort at finalize.
//
// The classic KLL compactor chooses a random offset when halving a full
// buffer; this implementation alternates the offset per level instead,
// trading the randomized guarantee for bit-for-bit replay determinism —
// the property every simulator artifact in this repository is pinned on.
// The deterministic variant keeps the same compaction structure (geometric
// capacity decay c = 2/3 below the top level, weight 2^h per level-h
// item), and its observed rank error is bounded by the property suite at
// 3·n/K across random trace shapes; see RankErrorBound.
package sketch

import (
	"fmt"
	"math"
	"sort"
)

// DefaultK is the top-level compactor capacity used when NewSketch is
// given a non-positive K: ~1.2 % worst-case observed rank error, a few
// kilobytes of state.
const DefaultK = 256

// minLevelCap floors the geometric capacity decay so deep levels still
// buffer enough items to compact meaningfully.
const minLevelCap = 8

// capacityDecay is the per-level shrink factor below the top compactor
// (the KLL paper's c).
const capacityDecay = 2.0 / 3.0

// Sketch is a streaming quantile summary. The zero value is not usable;
// construct with NewSketch. A Sketch is single-goroutine, like the
// serving loop that feeds it.
type Sketch struct {
	k      int
	levels [][]float64 // levels[h] holds items of weight 2^h
	flip   []bool      // per-level alternating compaction offset
	count  uint64
	min    float64
	max    float64

	// scratch backs Quantile's weighted merge so steady-state queries
	// allocate nothing once warm.
	scratch []weighted
}

type weighted struct {
	v float64
	w uint64
}

// NewSketch returns an empty sketch with top-level capacity k (≤ 0
// selects DefaultK).
func NewSketch(k int) *Sketch {
	if k <= 0 {
		k = DefaultK
	}
	return &Sketch{k: k, min: math.Inf(1), max: math.Inf(-1)}
}

// K returns the configured top-level capacity.
func (s *Sketch) K() int { return s.k }

// Count returns the number of observations streamed in.
func (s *Sketch) Count() uint64 { return s.count }

// Min and Max return the exact extremes seen so far (0 when empty) —
// tracked outside the compactors, so they never suffer sketch error.
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum observation (0 when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// RankErrorBound returns the documented rank-error envelope for a sketch
// of this capacity over n observations: a quantile answer's true rank
// lies within ±RankErrorBound(n) of the requested rank. The bound is the
// empirical envelope the property suite enforces for the deterministic-
// offset compactor (3·n/K, floored at 1); the randomized KLL analysis
// gives the same 1/K shape.
func (s *Sketch) RankErrorBound(n int) float64 {
	b := 3 * float64(n) / float64(s.k)
	if b < 1 {
		b = 1
	}
	return b
}

// Observe streams one value into the sketch. NaN observations are
// rejected with a panic: the sketch orders its compactors by <, under
// which NaN is unsortable, and every latency the serving loop produces
// is a finite clock difference.
//
//alisa:hotpath
func (s *Sketch) Observe(v float64) {
	if math.IsNaN(v) {
		panic("sketch: NaN observation")
	}
	if len(s.levels) == 0 {
		s.levels = append(s.levels, make([]float64, 0, s.k))
		s.flip = append(s.flip, false)
	}
	s.count++
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.levels[0] = append(s.levels[0], v)
	if len(s.levels[0]) >= s.capacity(0) {
		s.compress()
	}
}

// capacity returns level h's buffer capacity: k at the top level,
// decaying geometrically below it.
func (s *Sketch) capacity(h int) int {
	c := float64(s.k)
	for i := len(s.levels) - 1; i > h; i-- {
		c *= capacityDecay
	}
	if c < minLevelCap {
		return minLevelCap
	}
	return int(math.Ceil(c))
}

// compress walks the levels bottom-up, halving any buffer at or over
// capacity into the level above.
//
//alisa:hotpath
func (s *Sketch) compress() {
	for h := 0; h < len(s.levels); h++ {
		if len(s.levels[h]) < s.capacity(h) {
			continue
		}
		s.compact(h)
	}
}

// compact sorts level h and promotes alternate elements (offset flipping
// per compaction, the deterministic stand-in for KLL's coin toss) to
// level h+1; an odd leftover stays behind at level h.
//
//alisa:hotpath
func (s *Sketch) compact(h int) {
	buf := s.levels[h]
	if len(buf) < 2 {
		return
	}
	sort.Float64s(buf)
	if h+1 == len(s.levels) {
		s.levels = append(s.levels, make([]float64, 0, minLevelCap))
		s.flip = append(s.flip, false)
	}
	offset := 0
	if s.flip[h] {
		offset = 1
	}
	s.flip[h] = !s.flip[h]
	n := len(buf)
	pairs := n / 2
	for i := 0; i < pairs; i++ {
		s.levels[h+1] = append(s.levels[h+1], buf[2*i+offset])
	}
	if n%2 == 1 {
		// The odd element survives in place at its own weight.
		buf[0] = buf[n-1]
		s.levels[h] = buf[:1]
	} else {
		s.levels[h] = buf[:0]
	}
}

// Quantile returns the estimated q-quantile (q in [0, 1]) of everything
// observed so far: the retained value whose weighted rank covers
// q·(count−1). q ≤ 0 returns the exact minimum and q ≥ 1 the exact
// maximum; an empty sketch returns 0. The answer's true rank lies within
// RankErrorBound(Count()) of the requested rank.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	items := s.scratch[:0]
	for h, buf := range s.levels {
		w := uint64(1) << uint(h)
		for _, v := range buf {
			items = append(items, weighted{v, w})
		}
	}
	s.scratch = items
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	target := q * float64(s.count-1)
	var cum float64
	for _, it := range items {
		cum += float64(it.w)
		if cum > target {
			return it.v
		}
	}
	return s.max
}

// Merge folds o into s: the result summarizes the concatenation of both
// observation streams. o is left untouched. Merging sketches with
// different K is an error — the serving layer always merges digests built
// from one configuration.
func (s *Sketch) Merge(o *Sketch) error {
	if o.k != s.k {
		return fmt.Errorf("sketch: merge K mismatch %d vs %d", o.k, s.k)
	}
	if o.count == 0 {
		return nil
	}
	for len(s.levels) < len(o.levels) {
		s.levels = append(s.levels, make([]float64, 0, minLevelCap))
		s.flip = append(s.flip, false)
	}
	for h, buf := range o.levels {
		s.levels[h] = append(s.levels[h], buf...)
	}
	s.count += o.count
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.compress()
	return nil
}

// Clone returns an independent deep copy, including the deterministic
// compaction offsets, so a forked sketch replays exactly like its
// original — the property the engine snapshot/fork test pins.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{k: s.k, count: s.count, min: s.min, max: s.max}
	c.levels = make([][]float64, len(s.levels))
	for h, buf := range s.levels {
		c.levels[h] = append(make([]float64, 0, cap(buf)), buf...)
	}
	c.flip = append([]bool(nil), s.flip...)
	return c
}

// RetainedItems returns how many values the sketch currently holds across
// all levels — the fixed-size memory story, exposed for the heap-growth
// guard tests.
func (s *Sketch) RetainedItems() int {
	n := 0
	for _, buf := range s.levels {
		n += len(buf)
	}
	return n
}
