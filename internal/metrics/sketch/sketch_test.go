package sketch

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// rankError returns how far the requested rank falls outside the rank
// interval the value v covers in sorted: [#{x < v}, #{x ≤ v}]. A value
// with duplicates covers the whole tie run, so answering it is exact for
// any rank inside the run — the standard KLL error convention.
func rankError(sorted []float64, v, wantRank float64) float64 {
	lo := float64(sort.SearchFloat64s(sorted, v))
	hi := float64(sort.SearchFloat64s(sorted, math.Nextafter(v, math.Inf(1))))
	switch {
	case wantRank < lo:
		return lo - wantRank
	case wantRank > hi:
		return wantRank - hi
	}
	return 0
}

// TestSketchExactWhileSmall pins that a sketch holding fewer values than
// one compaction answers exactly.
func TestSketchExactWhileSmall(t *testing.T) {
	s := NewSketch(64)
	vals := []float64{5, 1, 4, 2, 3}
	for _, v := range vals {
		s.Observe(v)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 5 {
		t.Errorf("q1 = %v, want 5", got)
	}
	if got := s.Quantile(0.5); got != 3 {
		t.Errorf("q0.5 = %v, want 3", got)
	}
	if s.Count() != 5 || s.Min() != 1 || s.Max() != 5 {
		t.Errorf("count/min/max = %d/%v/%v", s.Count(), s.Min(), s.Max())
	}
}

// TestSketchEmptyAndEdgeQuantiles pins the documented edge contract.
func TestSketchEmptyAndEdgeQuantiles(t *testing.T) {
	s := NewSketch(0)
	if s.K() != DefaultK {
		t.Fatalf("default K = %d", s.K())
	}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty sketch q%v = %v, want 0", q, got)
		}
	}
	s.Observe(7)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 7 {
			t.Errorf("single-element q%v = %v, want 7", q, got)
		}
	}
}

// TestSketchDeterministicReplay pins the deterministic-offset design: the
// same stream must produce bit-identical quantiles on every replay.
func TestSketchDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		s := NewSketch(128)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 50_000; i++ {
			s.Observe(rng.ExpFloat64())
		}
		return []float64{s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99)}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at quantile %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSketchNaNPanics pins the NaN rejection contract.
func TestSketchNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NaN observation did not panic")
		}
	}()
	NewSketch(32).Observe(math.NaN())
}

// streamShapes are the random trace shapes of the rank-error property
// suite: heavy-tailed, uniform, bimodal, constant-heavy, and sorted
// streams, each stressing the compactors differently.
var streamShapes = []struct {
	name string
	gen  func(rng *rand.Rand, n int) []float64
}{
	{"exponential", func(rng *rand.Rand, n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.ExpFloat64()
		}
		return v
	}},
	{"uniform", func(rng *rand.Rand, n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64() * 100
		}
		return v
	}},
	{"bimodal", func(rng *rand.Rand, n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			if rng.Intn(10) == 0 {
				v[i] = 50 + rng.NormFloat64()
			} else {
				v[i] = 1 + rng.Float64()
			}
		}
		return v
	}},
	{"mostly-equal", func(rng *rand.Rand, n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = 0.25
			if rng.Intn(100) == 0 {
				v[i] = rng.Float64()
			}
		}
		return v
	}},
	{"ascending", func(rng *rand.Rand, n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i) + rng.Float64()
		}
		return v
	}},
}

// TestSketchRankErrorProperty is the property suite of the acceptance
// criterion: across random trace shapes, sizes, and seeds, every
// quantile answer's true rank must lie within the documented
// RankErrorBound of the requested rank. Cases run concurrently on
// GOMAXPROCS workers (CI runs this under -race at GOMAXPROCS=4), which
// also proves independent sketches share no hidden state.
func TestSketchRankErrorProperty(t *testing.T) {
	type tcase struct {
		shape int
		n     int
		seed  int64
		k     int
	}
	var cases []tcase
	for shape := range streamShapes {
		for _, n := range []int{500, 5_000, 60_000} {
			for seed := int64(1); seed <= 3; seed++ {
				cases = append(cases, tcase{shape, n, seed, 256})
			}
		}
	}
	quantiles := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}

	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	ch := make(chan tcase)
	var mu sync.Mutex
	var failures []string
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tc := range ch {
				sh := streamShapes[tc.shape]
				vals := sh.gen(rand.New(rand.NewSource(tc.seed)), tc.n)
				s := NewSketch(tc.k)
				for _, v := range vals {
					s.Observe(v)
				}
				sorted := append([]float64(nil), vals...)
				sort.Float64s(sorted)
				bound := s.RankErrorBound(tc.n)
				for _, q := range quantiles {
					got := s.Quantile(q)
					wantRank := q * float64(tc.n-1)
					if d := rankError(sorted, got, wantRank); d > bound {
						mu.Lock()
						failures = append(failures, sh.name+": rank error exceeds bound")
						t.Errorf("%s n=%d seed=%d q=%v: answer %v misses rank %.0f by %.0f (bound %.0f)",
							sh.name, tc.n, tc.seed, q, got, wantRank, d, bound)
						mu.Unlock()
					}
				}
			}
		}()
	}
	for _, tc := range cases {
		ch <- tc
	}
	close(ch)
	wg.Wait()
	if len(failures) > 0 {
		t.Fatalf("%d rank-error violations", len(failures))
	}
}

// TestSketchMerge pins mergeability: merging two sketches must summarize
// the concatenated stream within the combined bound, and K mismatches
// must be rejected.
func TestSketchMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := NewSketch(256), NewSketch(256)
	var all []float64
	for i := 0; i < 20_000; i++ {
		v := rng.ExpFloat64() * 10
		all = append(all, v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != uint64(len(all)) {
		t.Fatalf("merged count %d, want %d", a.Count(), len(all))
	}
	sort.Float64s(all)
	n := len(all)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := a.Quantile(q)
		wantRank := q * float64(n-1)
		if d := rankError(all, got, wantRank); d > 2*a.RankErrorBound(n) {
			t.Errorf("merged q%v: rank off by %.0f (bound %.0f)", q, d, a.RankErrorBound(n))
		}
	}
	if err := a.Merge(NewSketch(64)); err == nil {
		t.Fatal("K mismatch merge accepted")
	}
	if err := a.Merge(NewSketch(256)); err != nil {
		t.Fatalf("empty merge: %v", err)
	}
}

// TestSketchCloneIndependence pins Clone: the copy answers identically,
// and further observations into either side do not affect the other.
func TestSketchCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewSketch(128)
	for i := 0; i < 10_000; i++ {
		s.Observe(rng.Float64())
	}
	c := s.Clone()
	for _, q := range []float64{0.05, 0.5, 0.95} {
		if s.Quantile(q) != c.Quantile(q) {
			t.Fatalf("clone diverged at q%v before further observations", q)
		}
	}
	// Feed both the same continuation: they must stay identical (this is
	// what fork-then-advance vs straight-line relies on).
	rng2 := rand.New(rand.NewSource(10))
	for i := 0; i < 10_000; i++ {
		v := rng2.Float64() * 2
		s.Observe(v)
		c.Observe(v)
	}
	for _, q := range []float64{0.05, 0.5, 0.95, 0.999} {
		if s.Quantile(q) != c.Quantile(q) {
			t.Fatalf("clone diverged at q%v after identical continuations", q)
		}
	}
	before := s.Quantile(0.5)
	for i := 0; i < 5_000; i++ {
		c.Observe(1e9)
	}
	if s.Quantile(0.5) != before {
		t.Fatal("observing into the clone mutated the original")
	}
	if s.RetainedItems() == 0 || c.RetainedItems() == 0 {
		t.Fatal("retained items unexpectedly zero")
	}
}

// BenchmarkSketchObserve measures the steady-state per-observation cost.
func BenchmarkSketchObserve(b *testing.B) {
	s := NewSketch(256)
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = rng.ExpFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(vals[i&(len(vals)-1)])
	}
}
