package metrics

import (
	"math/rand"
	"testing"
)

func TestWindowEmpty(t *testing.T) {
	w := NewWindow(8)
	if w.Cap() != 8 || w.Len() != 0 {
		t.Fatalf("fresh window cap=%d len=%d", w.Cap(), w.Len())
	}
	if snap := w.Snapshot(); snap != (WindowSnapshot{}) {
		t.Fatalf("empty window snapshot %+v, want zero value", snap)
	}
	assertWindowPanic(t, func() { NewWindow(0) })
	assertWindowPanic(t, func() { NewWindow(-3) })
}

// TestWindowMatchesSummarize pins the core contract: while the window is
// not yet full, its percentile digests are exactly Summarize over every
// observed sample, and the aggregates match a direct recount.
func TestWindowMatchesSummarize(t *testing.T) {
	w := NewWindow(64)
	rng := rand.New(rand.NewSource(3))
	var ttft, tpot, e2e []float64
	totalTokens, goodTokens, good := 0, 0, 0
	clock := 0.0
	for i := 0; i < 40; i++ {
		clock += rng.Float64()
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		tokens := 1 + rng.Intn(100)
		ok := rng.Intn(2) == 0
		ttft, tpot, e2e = append(ttft, a), append(tpot, b), append(e2e, c)
		totalTokens += tokens
		if ok {
			goodTokens += tokens
			good++
		}
		w.Observe(clock, a, b, c, tokens, ok)
	}

	snap := w.Snapshot()
	if snap.Count != 40 {
		t.Fatalf("count %d, want 40", snap.Count)
	}
	if snap.TTFT != Summarize(ttft) || snap.TPOT != Summarize(tpot) || snap.E2E != Summarize(e2e) {
		t.Fatalf("window digests diverged from Summarize:\nTTFT %+v vs %+v", snap.TTFT, Summarize(ttft))
	}
	span := snap.Newest - snap.Oldest
	if span <= 0 {
		t.Fatalf("span %v not positive", span)
	}
	if want := float64(totalTokens) / span; snap.Throughput != want {
		t.Fatalf("throughput %v, want %v", snap.Throughput, want)
	}
	if want := float64(goodTokens) / span; snap.Goodput != want {
		t.Fatalf("goodput %v, want %v", snap.Goodput, want)
	}
	if want := float64(good) / 40; snap.SLOAttainment != want {
		t.Fatalf("SLO attainment %v, want %v", snap.SLOAttainment, want)
	}
}

// TestWindowRolls pins eviction: once full, only the last N completions
// contribute — bit-identically to summarizing that suffix directly.
func TestWindowRolls(t *testing.T) {
	const cap = 16
	w := NewWindow(cap)
	rng := rand.New(rand.NewSource(9))
	type sample struct {
		clock, ttft, tpot, e2e float64
		tokens                 int
		good                   bool
	}
	var all []sample
	clock := 0.0
	for i := 0; i < 100; i++ {
		clock += 0.25 + rng.Float64()
		s := sample{clock, rng.Float64(), rng.Float64(), rng.Float64(), 1 + rng.Intn(50), rng.Intn(3) > 0}
		all = append(all, s)
		w.Observe(s.clock, s.ttft, s.tpot, s.e2e, s.tokens, s.good)
	}
	if w.Len() != cap {
		t.Fatalf("len %d, want %d", w.Len(), cap)
	}

	live := all[len(all)-cap:]
	var ttft []float64
	totalTokens, goodTokens, good := 0, 0, 0
	for _, s := range live {
		ttft = append(ttft, s.ttft)
		totalTokens += s.tokens
		if s.good {
			goodTokens += s.tokens
			good++
		}
	}
	snap := w.Snapshot()
	if snap.Count != cap {
		t.Fatalf("count %d, want %d", snap.Count, cap)
	}
	if snap.Oldest != live[0].clock || snap.Newest != live[cap-1].clock {
		t.Fatalf("span [%v, %v], want [%v, %v]", snap.Oldest, snap.Newest, live[0].clock, live[cap-1].clock)
	}
	if snap.TTFT != Summarize(ttft) {
		t.Fatalf("rolled TTFT digest %+v, want %+v", snap.TTFT, Summarize(ttft))
	}
	span := snap.Newest - snap.Oldest
	if snap.Throughput != float64(totalTokens)/span || snap.Goodput != float64(goodTokens)/span {
		t.Fatalf("windowed rates diverged from recount")
	}
	if snap.SLOAttainment != float64(good)/cap {
		t.Fatalf("SLO attainment %v, want %v", snap.SLOAttainment, float64(good)/cap)
	}

	// Repeated snapshots of an unchanged window are identical (the
	// scratch reuse must not corrupt state).
	if again := w.Snapshot(); again != snap {
		t.Fatalf("second snapshot diverged: %+v vs %+v", again, snap)
	}
}

// TestWindowSteadyStateAllocs pins the online-metrics hot path: once the
// ring and scratches are warm, Observe and Snapshot allocate nothing.
func TestWindowSteadyStateAllocs(t *testing.T) {
	w := NewWindow(32)
	for i := 0; i < 64; i++ {
		w.Observe(float64(i), 0.1, 0.01, 0.5, 10, true)
	}
	w.Snapshot() // warm the linearization and sort scratches
	clock := 64.0
	allocs := testing.AllocsPerRun(100, func() {
		clock++
		w.Observe(clock, 0.1, 0.01, 0.5, 10, true)
		w.Snapshot()
	})
	if allocs != 0 {
		t.Fatalf("warm Observe+Snapshot allocates %.1f per call, want 0", allocs)
	}
}

// TestWindowSingleCompletion pins the degenerate-span behaviour: one
// completion has no span, so the windowed rates stay 0 rather than
// dividing by zero.
func TestWindowSingleCompletion(t *testing.T) {
	w := NewWindow(4)
	w.Observe(1.5, 0.2, 0.02, 1.0, 25, true)
	snap := w.Snapshot()
	if snap.Count != 1 || snap.Oldest != 1.5 || snap.Newest != 1.5 {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap.Throughput != 0 || snap.Goodput != 0 {
		t.Fatalf("degenerate span produced rates %v / %v, want 0", snap.Throughput, snap.Goodput)
	}
	if snap.TTFT.Mean != 0.2 || snap.TTFT.P99 != 0.2 || snap.SLOAttainment != 1 {
		t.Fatalf("single-sample digest %+v", snap.TTFT)
	}
}

func assertWindowPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
