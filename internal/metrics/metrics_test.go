package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpearmanPerfectCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	rho, err := Spearman(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Fatalf("ρ = %v, want 1", rho)
	}
}

func TestSpearmanPerfectAnticorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{9, 7, 5, 3}
	rho, err := Spearman(a, []float64{-b[0], -b[1], -b[2], -b[3]})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Fatalf("negated anticorrelation ρ = %v, want 1", rho)
	}
	rho, err = Spearman(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho+1) > 1e-12 {
		t.Fatalf("ρ = %v, want -1", rho)
	}
}

func TestSpearmanMonotoneTransformInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = math.Exp(a[i]) // strictly monotone transform
	}
	rho, err := Spearman(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Fatalf("monotone transform ρ = %v, want 1", rho)
	}
}

func TestSpearmanTies(t *testing.T) {
	// With ties, fractional ranks keep ρ well-defined and symmetric.
	a := []float64{1, 1, 2, 3}
	b := []float64{2, 2, 4, 6}
	rho, err := Spearman(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Fatalf("tied ρ = %v, want 1", rho)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := Spearman([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := Spearman([]float64{1}, []float64{2}); err == nil {
		t.Fatal("expected too-short error")
	}
	if _, err := Spearman([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("expected zero-variance error for constant input")
	}
}

func TestFractionalRanks(t *testing.T) {
	got := FractionalRanks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

func TestSparsityThreshold(t *testing.T) {
	// max = 1.0; cut at 1% → 0.01. Elements below 0.01 are "zeros".
	row := []float64{1.0, 0.5, 0.009, 0.0001, 0}
	if got := Sparsity(row, 0.01); got != 3.0/5 {
		t.Fatalf("sparsity = %v, want 0.6", got)
	}
}

func TestSparsityDegenerate(t *testing.T) {
	if Sparsity(nil, 0.01) != 0 {
		t.Fatal("empty row sparsity should be 0")
	}
	if Sparsity([]float64{0, 0}, 0.01) != 1 {
		t.Fatal("all-zero row should be fully sparse")
	}
}

func TestMassRecall(t *testing.T) {
	w := []float64{0.5, 0.3, 0.1, 0.1}
	if got := MassRecall(w, []int{0, 1}); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("recall = %v, want 0.8", got)
	}
	// Duplicates and out-of-range indices are ignored.
	if got := MassRecall(w, []int{0, 0, 99, -1}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("recall with dupes = %v, want 0.5", got)
	}
	if MassRecall([]float64{0, 0}, nil) != 1 {
		t.Fatal("zero-mass weights should recall 1")
	}
}

func TestPerplexityProxyShape(t *testing.T) {
	dense := 12.0
	if got := PerplexityProxy(dense, 1.0); got != dense {
		t.Fatalf("full recall ppl = %v, want dense %v", got, dense)
	}
	nearly := PerplexityProxy(dense, 0.99)
	if (nearly-dense)/dense > 0.05 {
		t.Fatalf("99%% recall should degrade <5%%: %v vs %v", nearly, dense)
	}
	collapsed := PerplexityProxy(dense, 0.4)
	if collapsed < dense*5 {
		t.Fatalf("40%% recall should collapse: %v vs dense %v", collapsed, dense)
	}
	// Monotone: less recall, more perplexity.
	prev := dense
	for r := 0.99; r >= 0; r -= 0.01 {
		cur := PerplexityProxy(dense, r)
		if cur < prev {
			t.Fatalf("perplexity not monotone at recall %v", r)
		}
		prev = cur
	}
}

func TestAccuracyProxyShape(t *testing.T) {
	dense, chance := 0.78, 0.25
	if got := AccuracyProxy(dense, chance, 1); got != dense {
		t.Fatalf("full recall acc = %v, want %v", got, dense)
	}
	if got := AccuracyProxy(dense, chance, 0); got < chance-1e-9 || got > chance+0.02 {
		t.Fatalf("zero recall should approach chance: %v", got)
	}
	hi := AccuracyProxy(dense, chance, 0.98)
	if dense-hi > 0.05 {
		t.Fatalf("98%% recall should stay near dense: %v", hi)
	}
}

func TestMeanGeoMeanPercentile(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean broken")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean = %v, want 2", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("geomean with non-positive input should be 0")
	}
	v := []float64{4, 1, 3, 2}
	if p := Percentile(v, 50); math.Abs(p-2.5) > 1e-12 {
		t.Fatalf("median = %v, want 2.5", p)
	}
	if Percentile(v, 0) != 1 || Percentile(v, 100) != 4 {
		t.Fatal("percentile extremes broken")
	}
}

func TestNormalize(t *testing.T) {
	n := Normalize([]float64{1, 3})
	if n[0] != 0.25 || n[1] != 0.75 {
		t.Fatalf("normalize = %v", n)
	}
	u := Normalize([]float64{0, 0})
	if u[0] != 0.5 || u[1] != 0.5 {
		t.Fatalf("zero input should normalize to uniform, got %v", u)
	}
}

// Property: Spearman ρ is symmetric and bounded in [-1, 1].
func TestSpearmanBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		ab, err1 := Spearman(a, b)
		ba, err2 := Spearman(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(ab-ba) < 1e-9 && ab >= -1-1e-9 && ab <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MassRecall of the full index set is 1; of the empty set with
// positive mass is 0; and adding indices never decreases recall.
func TestMassRecallMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64()
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		if math.Abs(MassRecall(w, all)-1) > 1e-9 {
			return false
		}
		prev := 0.0
		for k := 0; k <= n; k++ {
			cur := MassRecall(w, all[:k])
			if cur+1e-12 < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSparsityMaskedMatchesMaterialised(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 400; trial++ {
		rowLen := 1 + rng.Intn(96)
		k := 1 + rng.Intn(rowLen)
		// Distinct positions for the retained weights.
		perm := rng.Perm(rowLen)[:k]
		weights := make([]float64, k)
		for i := range weights {
			switch rng.Intn(4) {
			case 0:
				weights[i] = 0
			default:
				weights[i] = rng.Float64()
			}
		}
		row := make([]float64, rowLen)
		for i, p := range perm {
			row[p] = weights[i]
		}
		for _, threshold := range []float64{0.01, 0.1, 0} {
			want := Sparsity(row, threshold)
			got := SparsityMasked(weights, rowLen, threshold)
			if got != want {
				t.Fatalf("trial %d (rowLen=%d k=%d thr=%v): SparsityMasked=%v, Sparsity=%v",
					trial, rowLen, k, threshold, got, want)
			}
		}
	}
	// Degenerate shapes.
	if got := SparsityMasked(nil, 0, 0.01); got != 0 {
		t.Errorf("empty row: got %v, want 0", got)
	}
	if got, want := SparsityMasked(nil, 5, 0.01), Sparsity(make([]float64, 5), 0.01); got != want {
		t.Errorf("all-implicit-zero row: got %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s != (LatencySummary{}) {
		t.Errorf("empty input: %+v", s)
	}
	v := []float64{5, 1, 4, 2, 3}
	s := Summarize(v)
	if s.Mean != 3 || s.P50 != 3 || s.Max != 5 {
		t.Errorf("summary %+v", s)
	}
	// Percentile fields must agree with the standalone Percentile and be
	// monotone.
	for _, p := range []struct {
		name string
		got  float64
		pct  float64
	}{{"p50", s.P50, 50}, {"p95", s.P95, 95}, {"p99", s.P99, 99}} {
		if want := Percentile(v, p.pct); p.got != want {
			t.Errorf("%s = %v, Percentile gives %v", p.name, p.got, want)
		}
	}
	if !(s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Errorf("percentiles not monotone: %+v", s)
	}
	// Input must not be reordered.
	if v[0] != 5 || v[4] != 3 {
		t.Errorf("Summarize mutated its input: %v", v)
	}
}

// TestSummarizeIntoMatchesSummarize pins the scratch-reusing digest
// bit-for-bit against Summarize, across sizes and one buffer threaded
// through every call — the serving finalizer's usage pattern.
func TestSummarizeIntoMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var scratch []float64
	for _, n := range []int{0, 1, 2, 3, 7, 50, 501} {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 10
		}
		orig := append([]float64(nil), v...)
		want := Summarize(v)
		var got LatencySummary
		got, scratch = SummarizeInto(v, scratch)
		if got != want {
			t.Fatalf("n=%d: SummarizeInto %+v != Summarize %+v", n, got, want)
		}
		for i := range v {
			if v[i] != orig[i] {
				t.Fatalf("n=%d: SummarizeInto mutated its input at %d", n, i)
			}
		}
	}
	// A reused scratch larger than the next input must not leak stale
	// values into the digest.
	small := []float64{2, 1}
	got, _ := SummarizeInto(small, scratch)
	if want := Summarize(small); got != want {
		t.Fatalf("reused scratch corrupted digest: %+v != %+v", got, want)
	}
}
