package metrics

import "repro/internal/metrics/sketch"

// LatencyDigest is the streaming counterpart of a sorted latency slice:
// fixed-size state (exact count/sum/min/max plus a mergeable quantile
// sketch) that a serving loop feeds one completed request at a time,
// freeing the per-request record immediately. Its Summary reports the
// same LatencySummary shape as SummarizeInto, with P50/P95/P99 answered
// by the sketch within its documented rank-error bound instead of an
// end-of-run sort — the scale-mode contract (see DESIGN.md §10).
//
// A LatencyDigest is single-goroutine, like the loop that feeds it. The
// zero value is not usable; construct with NewLatencyDigest.
type LatencyDigest struct {
	sum float64
	sk  *sketch.Sketch
}

// NewLatencyDigest returns an empty digest. k sets the sketch's
// top-level capacity (≤ 0 selects sketch.DefaultK).
func NewLatencyDigest(k int) *LatencyDigest {
	return &LatencyDigest{sk: sketch.NewSketch(k)}
}

// Observe streams one latency sample into the digest. Samples must not
// be NaN (the sketch panics); every latency the serving loop produces is
// a finite clock difference.
func (d *LatencyDigest) Observe(v float64) {
	d.sum += v
	d.sk.Observe(v)
}

// Count returns the number of samples observed.
func (d *LatencyDigest) Count() uint64 { return d.sk.Count() }

// Summary digests everything observed so far. Mean and Max are exact;
// the percentiles are sketch estimates whose true rank lies within
// sketch.Sketch.RankErrorBound of the requested rank. An empty digest
// yields the zero summary, like SummarizeInto on empty input.
func (d *LatencyDigest) Summary() LatencySummary {
	n := d.sk.Count()
	if n == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Mean: d.sum / float64(n),
		P50:  d.sk.Quantile(0.50),
		P95:  d.sk.Quantile(0.95),
		P99:  d.sk.Quantile(0.99),
		Max:  d.sk.Max(),
	}
}

// Quantile answers an arbitrary quantile from the sketch (q in [0, 1]).
func (d *LatencyDigest) Quantile(q float64) float64 { return d.sk.Quantile(q) }

// Merge folds o into d so the result summarizes both sample streams;
// sketches must share a capacity. o is left untouched.
func (d *LatencyDigest) Merge(o *LatencyDigest) error {
	if err := d.sk.Merge(o.sk); err != nil {
		return err
	}
	d.sum += o.sum
	return nil
}

// Clone returns an independent deep copy that replays exactly like the
// original — the digest half of the engine snapshot/fork contract.
func (d *LatencyDigest) Clone() *LatencyDigest {
	return &LatencyDigest{sum: d.sum, sk: d.sk.Clone()}
}

// RetainedItems reports how many sample values the digest currently
// holds — constant in the stream length, exposed for heap-growth guards.
func (d *LatencyDigest) RetainedItems() int { return d.sk.RetainedItems() }
