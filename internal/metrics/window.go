package metrics

// Window is a rolling completion window for online serving metrics: it
// keeps the last N request completions and digests them on demand into
// the same latency percentiles the end-of-run summary reports, plus
// windowed throughput and goodput. Streaming sessions feed it from
// completion events and read Snapshot between turns, so tail latency is
// observable while the simulation is still running — the online
// counterpart of the final Result.
//
// A Window is single-goroutine like the serving loop that feeds it.
// Observe is allocation-free once the ring is warm, and Snapshot reuses
// one sort scratch across calls.
type Window struct {
	cap int

	// Parallel ring buffers of per-completion samples; head is the slot
	// the next completion overwrites, n the filled count.
	clock  []float64
	ttft   []float64
	tpot   []float64
	e2e    []float64
	tokens []int
	good   []bool
	head   int
	n      int

	// Running aggregates over the window, maintained incrementally so
	// Snapshot does not rescan for them.
	totalTokens int
	goodTokens  int
	goodCount   int

	// lin and sortScratch serve the three percentile digests of one
	// Snapshot: the ring is linearized into lin, and SummarizeInto sorts
	// into sortScratch. Both stabilise at the window capacity.
	lin         []float64
	sortScratch []float64

	// Prefix-cache counters, fed by ObservePrefix from admission events.
	// Unlike the completion samples these are running totals over the
	// session, not windowed — a hit rate over the last N completions
	// would swing too wildly to steer by.
	prefixHits         int
	prefixMisses       int
	prefixCachedTokens int64
	prefixSharedBytes  int64
}

// NewWindow returns a rolling window over the last n completions. n must
// be positive.
func NewWindow(n int) *Window {
	if n <= 0 {
		panic("metrics: window size must be positive")
	}
	return &Window{
		cap:    n,
		clock:  make([]float64, n),
		ttft:   make([]float64, n),
		tpot:   make([]float64, n),
		e2e:    make([]float64, n),
		tokens: make([]int, n),
		good:   make([]bool, n),
	}
}

// Cap returns the window capacity in completions.
func (w *Window) Cap() int { return w.cap }

// Len returns the number of completions currently in the window.
func (w *Window) Len() int { return w.n }

// Observe records one request completion: its completion clock, final
// latencies, generated-token count, and whether it met the SLOs (the
// goodput criterion). The oldest completion falls out once the window is
// full.
//
//alisa:hotpath
func (w *Window) Observe(clock, ttft, tpot, e2e float64, tokens int, good bool) {
	if w.n == w.cap {
		// Evict the slot we are about to overwrite from the aggregates.
		w.totalTokens -= w.tokens[w.head]
		if w.good[w.head] {
			w.goodTokens -= w.tokens[w.head]
			w.goodCount--
		}
	} else {
		w.n++
	}
	w.clock[w.head] = clock
	w.ttft[w.head] = ttft
	w.tpot[w.head] = tpot
	w.e2e[w.head] = e2e
	w.tokens[w.head] = tokens
	w.good[w.head] = good
	w.totalTokens += tokens
	if good {
		w.goodTokens += tokens
		w.goodCount++
	}
	w.head++
	if w.head == w.cap {
		w.head = 0
	}
}

// ObservePrefix records one prefix-cache-probed admission: how many
// leading prompt tokens the shared cache served (0 on a miss) and the
// cache's resident bytes after the admission.
func (w *Window) ObservePrefix(cachedTokens int, sharedBytes int64) {
	if cachedTokens > 0 {
		w.prefixHits++
	} else {
		w.prefixMisses++
	}
	w.prefixCachedTokens += int64(cachedTokens)
	w.prefixSharedBytes = sharedBytes
}

// WindowSnapshot is one point-in-time digest of a rolling Window.
// The JSON field names are a stable wire format: the serving gateway's
// /v1/metrics endpoint and any dashboard scraping it share this one
// encoding, pinned by a golden test. Renaming a tag is a wire-protocol
// break, not a refactor.
type WindowSnapshot struct {
	// Count is the completions in the window; the zero snapshot (no
	// completions yet) has Count 0 and every other field zero.
	Count int `json:"count"`
	// Oldest and Newest are the completion clocks spanning the window,
	// in simulated seconds.
	Oldest float64 `json:"oldest"`
	Newest float64 `json:"newest"`

	TTFT LatencySummary `json:"ttft"`
	TPOT LatencySummary `json:"tpot"`
	E2E  LatencySummary `json:"e2e"`

	// Throughput and Goodput are generated tokens per second over the
	// window span — all completions, and SLO-meeting completions only.
	// Both are 0 while the span is degenerate (fewer than two distinct
	// completion clocks).
	Throughput float64 `json:"throughput"`
	Goodput    float64 `json:"goodput"`
	// SLOAttainment is the fraction of windowed completions that met
	// both SLOs.
	SLOAttainment float64 `json:"slo_attainment"`

	// PrefixHits and PrefixMisses are the session-cumulative prefix-cache
	// probe outcomes (admissions of token-carrying requests); all four
	// prefix fields stay zero when the cache is off. PrefixHitRate is
	// hits over probes.
	PrefixHits    int     `json:"prefix_hits"`
	PrefixMisses  int     `json:"prefix_misses"`
	PrefixHitRate float64 `json:"prefix_hit_rate"`
	// PrefixCachedTokens is the cumulative prompt tokens served from the
	// shared cache; PrefixSharedBytes the cache's resident bytes at the
	// most recent admission.
	PrefixCachedTokens int64 `json:"prefix_cached_tokens"`
	PrefixSharedBytes  int64 `json:"prefix_shared_bytes"`
}

// Snapshot digests the current window. The three latency summaries are
// computed exactly as the end-of-run metrics (one sort each, linear
// interpolation), so a window as large as the run converges to the final
// Result's percentiles.
func (w *Window) Snapshot() WindowSnapshot {
	var snap WindowSnapshot
	snap.PrefixHits, snap.PrefixMisses = w.prefixHits, w.prefixMisses
	snap.PrefixCachedTokens = w.prefixCachedTokens
	snap.PrefixSharedBytes = w.prefixSharedBytes
	if probes := w.prefixHits + w.prefixMisses; probes > 0 {
		snap.PrefixHitRate = float64(w.prefixHits) / float64(probes)
	}
	// The prefix counters are filled even with no completions yet:
	// admissions precede completions, often by a long prefill.
	if w.n == 0 {
		return snap
	}
	snap.Count = w.n
	snap.SLOAttainment = float64(w.goodCount) / float64(w.n)
	// Ring order is overwrite order; the oldest live sample sits at head
	// when full, at 0 while filling.
	start := 0
	if w.n == w.cap {
		start = w.head
	}
	snap.Oldest = w.clock[start]
	newestIdx := w.head - 1
	if newestIdx < 0 {
		newestIdx = w.cap - 1
	}
	snap.Newest = w.clock[newestIdx]

	snap.TTFT = w.summarizeRing(w.ttft, start)
	snap.TPOT = w.summarizeRing(w.tpot, start)
	snap.E2E = w.summarizeRing(w.e2e, start)

	if span := snap.Newest - snap.Oldest; span > 0 {
		snap.Throughput = float64(w.totalTokens) / span
		snap.Goodput = float64(w.goodTokens) / span
	}
	return snap
}

// Clone returns an independent deep copy of the window: the copy
// snapshots identically and further observations into either side do not
// affect the other. Used by Session.Fork.
func (w *Window) Clone() *Window {
	c := &Window{
		cap:         w.cap,
		clock:       append([]float64(nil), w.clock...),
		ttft:        append([]float64(nil), w.ttft...),
		tpot:        append([]float64(nil), w.tpot...),
		e2e:         append([]float64(nil), w.e2e...),
		tokens:      append([]int(nil), w.tokens...),
		good:        append([]bool(nil), w.good...),
		head:        w.head,
		n:           w.n,
		totalTokens: w.totalTokens,
		goodTokens:  w.goodTokens,
		goodCount:   w.goodCount,

		prefixHits:         w.prefixHits,
		prefixMisses:       w.prefixMisses,
		prefixCachedTokens: w.prefixCachedTokens,
		prefixSharedBytes:  w.prefixSharedBytes,
	}
	return c
}

// summarizeRing linearizes one ring buffer and digests it.
func (w *Window) summarizeRing(ring []float64, start int) LatencySummary {
	w.lin = w.lin[:0]
	for i := 0; i < w.n; i++ {
		j := start + i
		if j >= w.cap {
			j -= w.cap
		}
		w.lin = append(w.lin, ring[j])
	}
	var sum LatencySummary
	sum, w.sortScratch = SummarizeInto(w.lin, w.sortScratch)
	return sum
}
