package sched

import "fmt"

// GPUOnly keeps every KV tensor in GPU memory with no offloading — the
// "GPU only" configuration of Fig. 1, which runs fastest while it fits and
// dies with OOM when it does not.
type GPUOnly struct {
	tokens int
}

// NewGPUOnly returns the no-offload scheduler.
func NewGPUOnly() *GPUOnly { return &GPUOnly{} }

// Name implements Scheduler.
func (g *GPUOnly) Name() string { return "gpu-only" }

// CloneScheduler implements Cloner.
func (g *GPUOnly) CloneScheduler() Scheduler {
	c := *g
	return &c
}

// Init implements Scheduler.
func (g *GPUOnly) Init(ctx *Context) error {
	g.tokens = 0
	for i := 0; i < ctx.Input; i++ {
		if err := ctx.Sys.AllocGPU(ctx.TokenBytes()); err != nil {
			return fmt.Errorf("gpu-only: prefill KV: %w", err)
		}
		g.tokens++
	}
	return nil
}

// Step implements Scheduler.
func (g *GPUOnly) Step(ctx *Context, j int) (StepPlan, error) {
	plan := StepPlan{Attended: attendedTokens(ctx, g.tokens), Sparse: ctx.CachingRatio < 1}
	if err := ctx.Sys.AllocGPU(ctx.TokenBytes()); err != nil {
		return plan, fmt.Errorf("gpu-only: new-token KV: %w", err)
	}
	g.tokens++
	return plan, nil
}

// Release implements Releaser.
func (g *GPUOnly) Release(ctx *Context) (gpuBytes, cpuBytes int64) {
	gpuBytes = int64(g.tokens) * ctx.TokenBytes()
	ctx.Sys.FreeGPU(gpuBytes)
	g.tokens = 0
	return gpuBytes, 0
}

// NoCache disables KV caching entirely: every decode step reprocesses the
// whole sequence from scratch — the quadratic-time arm of Fig. 2(c).
// Memory stays flat (no KV is retained) while time per step grows.
type NoCache struct {
	tokens int
}

// NewNoCache returns the caching-disabled scheduler.
func NewNoCache() *NoCache { return &NoCache{} }

// Name implements Scheduler.
func (n *NoCache) Name() string { return "no-cache" }

// CloneScheduler implements Cloner.
func (n *NoCache) CloneScheduler() Scheduler {
	c := *n
	return &c
}

// Init implements Scheduler; nothing is cached.
func (n *NoCache) Init(ctx *Context) error {
	n.tokens = ctx.Input
	return nil
}

// Step implements Scheduler, requesting a full forward pass.
func (n *NoCache) Step(ctx *Context, j int) (StepPlan, error) {
	n.tokens++
	return StepPlan{Attended: n.tokens, FullRecompute: true}, nil
}

// Release implements Releaser; nothing is ever cached.
func (n *NoCache) Release(ctx *Context) (gpuBytes, cpuBytes int64) {
	n.tokens = 0
	return 0, 0
}

// PCIeSplit keeps a fixed fraction of every token's KV in CPU memory and
// streams it across PCIe at every decode step — the configuration the
// paper measures in Fig. 1 ("50 % means the ratio of the KV tensors
// allocated to CPU/GPU memory"), where 50 % on CPU slows inference ≈3×
// and 100 % ≈5×.
type PCIeSplit struct {
	// CPUFrac is the byte fraction of KV resident in CPU memory.
	CPUFrac float64

	tokens int
}

// NewPCIeSplit returns a split-KV scheduler streaming cpuFrac over PCIe.
func NewPCIeSplit(cpuFrac float64) *PCIeSplit {
	if cpuFrac < 0 || cpuFrac > 1 {
		panic(fmt.Sprintf("sched: CPU fraction %v out of [0,1]", cpuFrac))
	}
	return &PCIeSplit{CPUFrac: cpuFrac}
}

// Name implements Scheduler.
func (p *PCIeSplit) Name() string { return "pcie-split" }

// CloneScheduler implements Cloner.
func (p *PCIeSplit) CloneScheduler() Scheduler {
	c := *p
	return &c
}

// Init implements Scheduler.
func (p *PCIeSplit) Init(ctx *Context) error {
	p.tokens = 0
	gpuShare, cpuShare := p.split(ctx)
	for i := 0; i < ctx.Input; i++ {
		if err := p.allocToken(ctx, gpuShare, cpuShare); err != nil {
			return fmt.Errorf("pcie-split: prefill token: %w", err)
		}
	}
	return nil
}

// allocToken reserves one token's shares on both devices, leaving nothing
// allocated on failure.
func (p *PCIeSplit) allocToken(ctx *Context, gpuShare, cpuShare int64) error {
	if err := ctx.Sys.AllocGPU(gpuShare); err != nil {
		return err
	}
	if cpuShare > 0 {
		if err := ctx.Sys.AllocCPU(cpuShare); err != nil {
			ctx.Sys.FreeGPU(gpuShare)
			return err
		}
		ctx.ChargeToCPU(cpuShare)
	}
	p.tokens++
	return nil
}

// Step implements Scheduler: fetch the CPU share of the whole context.
func (p *PCIeSplit) Step(ctx *Context, j int) (StepPlan, error) {
	attended := attendedTokens(ctx, p.tokens)
	plan := StepPlan{Attended: attended, Sparse: ctx.CachingRatio < 1}
	gpuShare, cpuShare := p.split(ctx)
	if cpuShare > 0 {
		ctx.ChargeToGPU(int64(attended-1) * cpuShare)
		plan.FetchedTokens = attended - 1
	}
	if err := p.allocToken(ctx, gpuShare, cpuShare); err != nil {
		return plan, fmt.Errorf("pcie-split: new-token shares: %w", err)
	}
	if cpuShare > 0 {
		plan.OffloadedTokens = 1
	}
	return plan, nil
}

// Release implements Releaser: free both static shares of every token.
func (p *PCIeSplit) Release(ctx *Context) (gpuBytes, cpuBytes int64) {
	gpuShare, cpuShare := p.split(ctx)
	n := int64(p.tokens)
	gpuBytes, cpuBytes = n*gpuShare, n*cpuShare
	ctx.Sys.FreeGPU(gpuBytes)
	ctx.Sys.FreeCPU(cpuBytes)
	p.tokens = 0
	return gpuBytes, cpuBytes
}

func (p *PCIeSplit) split(ctx *Context) (gpuShare, cpuShare int64) {
	tokenBytes := ctx.TokenBytes()
	cpuShare = int64(p.CPUFrac * float64(tokenBytes))
	return tokenBytes - cpuShare, cpuShare
}

// interface checks
var (
	_ Scheduler = (*GPUOnly)(nil)
	_ Releaser  = (*GPUOnly)(nil)
	_ Scheduler = (*NoCache)(nil)
	_ Releaser  = (*NoCache)(nil)
	_ Scheduler = (*PCIeSplit)(nil)
	_ Releaser  = (*PCIeSplit)(nil)
)
