package sched

import (
	"math"

	"repro/internal/trace"
)

// Params are the scheduling parameters of Eq. 5: offload ratio α,
// recompute ratio β, and the phase switch steps p1 and p2.
type Params struct {
	Alpha  float64
	Beta   float64
	P1, P2 int
	// PredictedSeconds is the optimizer's cost estimate for the chosen
	// parameters.
	PredictedSeconds float64
}

// StepComputeSeconds returns the model-wide compute time (MHA + FFN over
// all layers) of one decode step attending to `attended` tokens.
func StepComputeSeconds(ctx *Context, attended int, sparse bool) (mha, ffn float64) {
	m, f := ctx.Cost.DecodeLayerTime(ctx.Model, ctx.Batch, attended, ctx.kvComputeWidth(), sparse)
	layers := float64(ctx.Model.Layers)
	return m * layers, f * layers
}

// RecomputeSeconds returns the time to recompute the KV of `tokens`
// deleted positions (Tr in Table II).
func RecomputeSeconds(ctx *Context, tokens int) float64 {
	return ctx.Cost.RecomputeTime(ctx.Model, ctx.Batch, tokens)
}

// QuantSeconds returns the time to quantize (or dequantize) `positions`
// token positions' worth of FP16 KV.
func QuantSeconds(ctx *Context, positions int) float64 {
	if positions <= 0 {
		return 0
	}
	return ctx.Cost.Quantize(int64(positions) * ctx.TokenBytesFP16()).Seconds
}

// Optimize performs the paper's offline parameter search (§V-A): the data
// transfer sub-problem is solved from hardware constraints (α and p1
// follow from memory capacity), and the computation sub-problem by greedy
// search over (β, p2) against a closed-form cost prediction built from the
// same cost model the runtime uses — the stand-in for the paper's
// profiling tables.
func Optimize(ctx *Context) Params {
	tokenBytes := ctx.TokenBytes()
	budget := int(ctx.Sys.GPUHeadroom() / tokenBytes)
	maxSeq := ctx.MaxSeq()

	// p1: the first decode step at which cached tokens exceed the GPU
	// budget (Phase II trigger). Offloading starts at prefill when even
	// the prompt does not fit.
	p1 := budget - ctx.Input
	if p1 < 0 {
		p1 = 0
	}
	if p1 > ctx.Output {
		p1 = ctx.Output
	}

	// α: the CPU share of KV at full sequence length, forced by capacity.
	alpha := 0.0
	if maxSeq > budget && maxSeq > 0 {
		alpha = 1 - float64(budget)/float64(maxSeq)
	}

	best := Params{Alpha: alpha, Beta: 0, P1: p1, P2: ctx.Output,
		PredictedSeconds: predictCost(ctx, budget, p1, ctx.Output, 0)}
	if p1 >= ctx.Output {
		// Everything fits on the GPU; Phases II and III never trigger.
		return best
	}
	// Phase III candidates start one grid notch after p1: deletion acts on
	// the CPU-resident pool, which Phase II must populate first, and
	// deleting tokens straight after paying their offload transfer wastes
	// that transfer. The grid therefore keeps a structural Phase II, as in
	// the paper's three-phase design.
	for _, beta := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		for frac := 0.125; frac <= 1.0; frac += 0.125 {
			p2 := p1 + int(frac*float64(ctx.Output-p1))
			cost := predictCost(ctx, budget, p1, p2, beta)
			if cost < best.PredictedSeconds {
				best = Params{Alpha: alpha, Beta: beta, P1: p1, P2: p2, PredictedSeconds: cost}
			}
		}
	}
	return best
}

// predictCost evaluates Eq. 5 for one parameter candidate with a
// closed-form placement recurrence: the layout is always, oldest to
// newest, [deleted | cpu | gpu], matching the scheduler's oldest-first
// eviction, so per-step fetch and recompute expectations follow from three
// counters.
func predictCost(ctx *Context, budget, p1, p2 int, beta float64) float64 {
	var total float64
	gpu := minInt(ctx.Input, budget)
	cpu := ctx.Input - gpu
	del := 0
	tokenBytes := float64(ctx.TokenBytes())
	pcie := ctx.Sys.Prof.PCIeBandwidth

	for j := 0; j < ctx.Output; j++ {
		n := ctx.Input + j
		attended := attendedTokens(ctx, n)
		local := (attended - 1) / 2
		if ctx.CachingRatio >= 1 {
			local = n
		}
		global := attended - 1 - local
		prefix := n - local

		mha, ffn := StepComputeSeconds(ctx, attended, ctx.CachingRatio < 1)
		total += mha + ffn

		if global > 0 && prefix > 0 {
			_, cpuW, delW := layoutFractions(prefix, del, cpu)
			fetched := math.Round(float64(global) * cpuW)
			recomp := math.Round(float64(global) * delW)
			total += fetched * tokenBytes / pcie
			total += RecomputeSeconds(ctx, int(recomp))
		}
		if ctx.KVBits < 16 {
			total += QuantSeconds(ctx, 1)
		}

		// Placement recurrence: the new token lands on GPU; overflow
		// spills the oldest GPU token to CPU; Phase III deletes to hold
		// the β share.
		gpu++
		if gpu > budget {
			gpu--
			cpu++
			total += tokenBytes / pcie // offload transfer
		}
		if j >= p2 && beta > 0 {
			for cpu > 0 && float64(del) < beta*float64(del+cpu) {
				cpu--
				del++
			}
		}
	}
	_ = p1
	return total
}

// layoutFractions is the closed-form analogue of Alisa.weightedFractions
// for the canonical [deleted | cpu | gpu] layout over a prefix: uniform
// selection makes the fractions plain region shares.
func layoutFractions(prefix, del, cpu int) (gpuW, cpuW, delW float64) {
	if prefix <= 0 {
		return 0, 0, 0
	}
	if del > prefix {
		del, cpu = prefix, 0
	} else if del+cpu > prefix {
		cpu = prefix - del
	}
	total := float64(prefix)
	return float64(prefix-del-cpu) / total, float64(cpu) / total, float64(del) / total
}

// ChargeStepCompute charges a step's compute to the system and breakdown:
// the MHA/FFN pair, recomputation, and the per-step quantization pass for
// compressed KV. It is shared by the engine so runtime charging and the
// optimizer's predictions stay consistent.
func ChargeStepCompute(ctx *Context, plan StepPlan) {
	mha, ffn := StepComputeSeconds(ctx, plan.Attended, plan.Sparse)
	ctx.Sys.Advance(mha + ffn)
	ctx.Breakdown.Add(trace.CatMHA, mha)
	ctx.Breakdown.Add(trace.CatFFN, ffn)
	if plan.RecomputedTokens > 0 {
		r := RecomputeSeconds(ctx, plan.RecomputedTokens)
		ctx.Sys.Advance(r)
		ctx.Breakdown.Add(trace.CatRecompute, r)
	}
	if ctx.KVBits < 16 {
		q := QuantSeconds(ctx, 1+plan.FetchedTokens)
		ctx.Sys.Advance(q)
		ctx.Breakdown.Add(trace.CatQuant, q)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
