package sched

import (
	"errors"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/kvcache"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/trace"
)

// newTestContext builds a context with weights and activations already
// reserved, as the engine does.
func newTestContext(t *testing.T, prof memsim.Profile, name string, batch, input, output int, ratio float64, kvBits int) *Context {
	t.Helper()
	sys := memsim.NewSystem(prof)
	cfg := model.MustByName(name)
	ctx := &Context{
		Sys:          sys,
		Cost:         costmodel.New(prof),
		Model:        cfg,
		Batch:        batch,
		Input:        input,
		Output:       output,
		CachingRatio: ratio,
		KVBits:       kvBits,
		Breakdown:    trace.NewBreakdown(),
	}
	if err := sys.AllocGPU(ctx.WeightBytes()); err != nil {
		t.Fatalf("weights do not fit: %v", err)
	}
	if err := sys.AllocGPU(ctx.ActivationBytes()); err != nil {
		t.Fatalf("activations do not fit: %v", err)
	}
	return ctx
}

func drive(t *testing.T, s Scheduler, ctx *Context) []StepPlan {
	t.Helper()
	if err := s.Init(ctx); err != nil {
		t.Fatalf("init: %v", err)
	}
	plans := make([]StepPlan, 0, ctx.Output)
	for j := 0; j < ctx.Output; j++ {
		plan, err := s.Step(ctx, j)
		if err != nil {
			t.Fatalf("step %d: %v", j, err)
		}
		plans = append(plans, plan)
	}
	return plans
}

func TestAlisaPhaseIWhenEverythingFits(t *testing.T) {
	// Small batch on a 32 GB card: KV never exceeds GPU, so no transfers.
	ctx := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 4, 128, 128, 0.2, 16)
	a := NewAlisaManual(0.5, 64, true)
	drive(t, a, ctx)
	toCPU, toGPU, _ := ctx.Sys.TransferStats()
	if toCPU != 0 || toGPU != 0 {
		t.Fatalf("Phase I run moved bytes: toCPU=%d toGPU=%d", toCPU, toGPU)
	}
	if p2, p3 := a.PhaseStarts(); p2 != -1 || p3 != -1 {
		t.Fatalf("phases triggered unexpectedly: %d/%d", p2, p3)
	}
	for j := 0; j < ctx.Output; j++ {
		if a.Phase(j) != 1 {
			t.Fatalf("step %d phase = %d, want 1", j, a.Phase(j))
		}
	}
}

func TestAlisaEntersPhaseIIUnderPressure(t *testing.T) {
	// Batch 64 on V100-32G: KV at full length ≈ 21 GB with ~18 GB headroom,
	// so Phase II must trigger partway through.
	ctx := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 64, 128, 512, 0.2, 16)
	a := NewAlisaManual(0, ctx.Output, true) // no Phase III
	plans := drive(t, a, ctx)
	p2, p3 := a.PhaseStarts()
	if p2 < 0 {
		t.Fatal("Phase II never triggered")
	}
	if p3 != -1 {
		t.Fatalf("Phase III should not trigger with β=0, got start %d", p3)
	}
	toCPU, _, _ := ctx.Sys.TransferStats()
	if toCPU == 0 {
		t.Fatal("Phase II should offload bytes to CPU")
	}
	// Before the switch, no step offloads; after, steps offload.
	for j, plan := range plans {
		if j < p2 && plan.OffloadedTokens > 0 {
			t.Fatalf("step %d offloaded before Phase II start %d", j, p2)
		}
	}
}

func TestAlisaPhaseIIIDeletesAndRecomputes(t *testing.T) {
	// Paper pairing: 7B models run on the 16 GB V100, where batch 64 KV
	// far exceeds the GPU and Phases II/III carry real load.
	ctx := newTestContext(t, memsim.V100_16G(), "opt-6.7b", 64, 128, 512, 0.2, 16)
	a := NewAlisaManual(0.6, 100, true)
	plans := drive(t, a, ctx)
	_, p3 := a.PhaseStarts()
	if p3 < 100 {
		t.Fatalf("Phase III started at %d, before P2=100", p3)
	}
	var deleted, recomputed int
	for _, plan := range plans {
		deleted += plan.DeletedTokens
		recomputed += plan.RecomputedTokens
	}
	if deleted == 0 {
		t.Fatal("β=0.6 should delete tokens in Phase III")
	}
	if recomputed == 0 {
		t.Fatal("deleted tokens should eventually be recomputed")
	}
}

func TestAlisaRecomputeDisabledNeverDeletes(t *testing.T) {
	ctx := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 64, 128, 512, 0.2, 16)
	a := NewAlisaManual(0.6, 100, false)
	plans := drive(t, a, ctx)
	for _, plan := range plans {
		if plan.DeletedTokens > 0 {
			t.Fatal("recompute-disabled scheduler deleted tokens")
		}
	}
}

func TestAlisaSparsityReducesTraffic(t *testing.T) {
	// Higher KV sparsity ⇒ fewer fetched tokens ⇒ fewer bytes moved —
	// the main contributor per Fig. 12(a).
	run := func(ratio float64) int64 {
		ctx := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 64, 128, 512, ratio, 16)
		drive(t, NewAlisaManual(0, ctx.Output, true), ctx)
		_, toGPU, _ := ctx.Sys.TransferStats()
		return toGPU
	}
	dense := run(1.0)
	sparse := run(0.2)
	if sparse >= dense {
		t.Fatalf("sparse fetch traffic %d should be below dense %d", sparse, dense)
	}
}

func TestAlisaINT8HalvesTokenBytes(t *testing.T) {
	ctx16 := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 8, 32, 8, 0.2, 16)
	ctx8 := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 8, 32, 8, 0.2, 8)
	if ctx8.TokenBytes()*2 != ctx16.TokenBytes() {
		t.Fatalf("INT8 token bytes %d should be half of FP16 %d", ctx8.TokenBytes(), ctx16.TokenBytes())
	}
}

func TestAlisaGPUNeverExceedsCapacity(t *testing.T) {
	ctx := newTestContext(t, memsim.V100_16G(), "opt-6.7b", 32, 128, 256, 0.2, 16)
	a := NewAlisaManual(0.3, 50, true)
	if err := a.Init(ctx); err != nil {
		t.Fatalf("init: %v", err)
	}
	for j := 0; j < ctx.Output; j++ {
		if _, err := a.Step(ctx, j); err != nil {
			t.Fatalf("step %d: %v", j, err)
		}
		gpu, _ := ctx.Sys.Usage()
		if gpu > ctx.Sys.Prof.GPUMemBytes {
			t.Fatalf("GPU usage %d exceeds capacity at step %d", gpu, j)
		}
	}
}

func TestOptimizerConstraints(t *testing.T) {
	ctx := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 64, 128, 512, 0.2, 16)
	p := Optimize(ctx)
	if p.P1 < 0 || p.P1 > p.P2 || p.P2 > ctx.Output {
		t.Fatalf("phase steps violate 0 ≤ p1 ≤ p2 ≤ n: %+v", p)
	}
	if p.Alpha < 0 || p.Alpha >= 1 || p.Beta < 0 || p.Beta >= 1 {
		t.Fatalf("ratios out of range: %+v", p)
	}
	if p.PredictedSeconds <= 0 {
		t.Fatalf("predicted cost must be positive: %+v", p)
	}
}

func TestOptimizerSkipsPhasesWhenEverythingFits(t *testing.T) {
	ctx := newTestContext(t, memsim.H100_80G(), "opt-6.7b", 4, 64, 64, 0.2, 16)
	p := Optimize(ctx)
	if p.P1 != ctx.Output || p.Beta != 0 {
		t.Fatalf("tiny workload should stay in Phase I: %+v", p)
	}
	if p.Alpha != 0 {
		t.Fatalf("no offload needed, α should be 0: %+v", p)
	}
}

func TestOptimizerPicksRecomputeOnFastGPU(t *testing.T) {
	// On H100 recomputing a token is cheaper than fetching it over PCIe
	// (TestRecomputeTimeProperties in costmodel), so the optimizer should
	// engage Phase III for a memory-pressured workload.
	ctx := newTestContext(t, memsim.H100_80G(), "opt-30b", 64, 128, 512, 0.2, 16)
	p := Optimize(ctx)
	if p.Beta == 0 {
		t.Fatalf("optimizer should choose recomputation on H100: %+v", p)
	}
	if p.P2 >= ctx.Output {
		t.Fatalf("Phase III should start before the run ends: %+v", p)
	}
}

func TestFlexGenStaticSplitAndStreaming(t *testing.T) {
	// 16 GB card: most KV lands on the CPU, so CPU-side attention is
	// exposed beyond what GPU compute overlap hides.
	ctx := newTestContext(t, memsim.V100_16G(), "opt-6.7b", 64, 128, 512, 1.0, 16)
	f := NewFlexGen()
	plans := drive(t, f, ctx)
	if g := f.GPUFraction(); g <= 0 || g >= 1 {
		t.Fatalf("expected partial GPU fraction under pressure, got %v", g)
	}
	toCPU, toGPU, _ := ctx.Sys.TransferStats()
	if toCPU == 0 {
		t.Fatal("FlexGen must store the CPU share over PCIe")
	}
	if toGPU == 0 {
		t.Fatal("FlexGen with CPU share must stream KV in every step")
	}
	// Dense attention: every plan attends to the full context.
	for j, plan := range plans {
		if plan.Attended != ctx.Input+j+1 {
			t.Fatalf("step %d attended %d, want dense %d", j, plan.Attended, ctx.Input+j+1)
		}
	}
}

func TestFlexGenFullGPUWhenFits(t *testing.T) {
	ctx := newTestContext(t, memsim.H100_80G(), "opt-6.7b", 8, 128, 128, 1.0, 16)
	f := NewFlexGen()
	drive(t, f, ctx)
	if g := f.GPUFraction(); g != 1 {
		t.Fatalf("GPU fraction = %v, want 1 when everything fits", g)
	}
	toCPU, toGPU, _ := ctx.Sys.TransferStats()
	if toCPU != 0 || toGPU != 0 {
		t.Fatal("no transfers expected when split is 1.0")
	}
}

func TestVLLMWaves(t *testing.T) {
	ctx := newTestContext(t, memsim.V100_16G(), "opt-6.7b", 64, 128, 512, 1.0, 16)
	v := NewVLLM()
	waves, err := v.Waves(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) < 2 {
		t.Fatalf("batch 64 at 640 tokens should not fit one wave: %v", waves)
	}
	total := 0
	for _, w := range waves {
		if w <= 0 {
			t.Fatalf("non-positive wave: %v", waves)
		}
		total += w
	}
	if total != ctx.Batch {
		t.Fatalf("waves sum to %d, want %d", total, ctx.Batch)
	}
}

func TestVLLMSingleWaveWhenFits(t *testing.T) {
	ctx := newTestContext(t, memsim.H100_80G(), "opt-6.7b", 8, 128, 128, 1.0, 16)
	waves, err := NewVLLM().Waves(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) != 1 || waves[0] != 8 {
		t.Fatalf("waves = %v, want [8]", waves)
	}
}

func TestVLLMBlockGranularAllocation(t *testing.T) {
	ctx := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 4, 100, 8, 1.0, 16)
	v := NewVLLM()
	gpuBefore, _ := ctx.Sys.Usage()
	drive(t, v, ctx)
	gpuAfter, _ := ctx.Sys.Usage()
	used := gpuAfter - gpuBefore
	blockBytes := int64(v.BlockSize) * ctx.TokenBytes()
	if used%blockBytes != 0 {
		t.Fatalf("vLLM allocation %d not block-granular (block %d)", used, blockBytes)
	}
	// 108 tokens at block 16 = 7 blocks.
	if want := int64(7) * blockBytes; used != want {
		t.Fatalf("allocated %d, want %d", used, want)
	}
}

func TestDeepSpeedOOMAtLargeBatch(t *testing.T) {
	// Batch 64, OPT-6.7B on a 32 GB card: dense KV (≈21 GB) plus nothing
	// else fits, but activations + KV exceed capacity at full length.
	sys := memsim.NewSystem(memsim.V100_16G())
	ctx := &Context{
		Sys: sys, Cost: costmodel.New(memsim.V100_16G()),
		Model: model.MustByName("opt-6.7b"),
		Batch: 64, Input: 128, Output: 512,
		CachingRatio: 1.0, KVBits: 16,
		Breakdown: trace.NewBreakdown(),
	}
	d := NewDeepSpeed()
	// DeepSpeed keeps weights on CPU.
	if !d.WeightsOnCPU() {
		t.Fatal("DeepSpeed should keep weights on CPU")
	}
	if err := sys.AllocCPU(ctx.WeightBytes()); err != nil {
		t.Fatal(err)
	}
	if err := sys.AllocGPU(ctx.ActivationBytes()); err != nil {
		t.Fatal(err)
	}
	err := d.Init(ctx)
	for j := 0; err == nil && j < ctx.Output; j++ {
		_, err = d.Step(ctx, j)
	}
	var oom *memsim.OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("expected GPU OOM, got %v", err)
	}
}

func TestHFAccelerateStreamsEverything(t *testing.T) {
	ctx := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 16, 64, 64, 1.0, 16)
	plans := drive(t, NewHFAccelerate(), ctx)
	gpuKV, cpuKV := int64(0), int64(0)
	_ = gpuKV
	_, cpu := ctx.Sys.Usage()
	if cpu < ctx.TokenBytes()*int64(ctx.Input) {
		t.Fatalf("CPU should hold all KV, has %d", cpu)
	}
	cpuKV = cpu
	_ = cpuKV
	for j, plan := range plans {
		if plan.FetchedTokens != ctx.Input+j {
			t.Fatalf("step %d fetched %d, want whole context %d", j, plan.FetchedTokens, ctx.Input+j)
		}
	}
}

func TestGPUOnlyOOM(t *testing.T) {
	ctx := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 64, 128, 512, 1.0, 16)
	g := NewGPUOnly()
	err := g.Init(ctx)
	for j := 0; err == nil && j < ctx.Output; j++ {
		_, err = g.Step(ctx, j)
	}
	var oom *memsim.OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestNoCachePlansFullRecompute(t *testing.T) {
	ctx := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 4, 16, 8, 1.0, 16)
	plans := drive(t, NewNoCache(), ctx)
	for j, plan := range plans {
		if !plan.FullRecompute {
			t.Fatalf("step %d should be full recompute", j)
		}
		if plan.Attended != ctx.Input+j+1 {
			t.Fatalf("step %d attended %d, want %d", j, plan.Attended, ctx.Input+j+1)
		}
	}
	gpu, cpu := ctx.Sys.Usage()
	base := ctx.WeightBytes() + ctx.ActivationBytes()
	if gpu != base || cpu != 0 {
		t.Fatalf("no-cache should hold no KV: gpu=%d cpu=%d base=%d", gpu, cpu, base)
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("Name() = %q, want %q", s.Name(), name)
		}
	}
	for _, extra := range []string{"gpu-only", "no-cache"} {
		if _, err := ByName(extra); err != nil {
			t.Fatalf("ByName(%q): %v", extra, err)
		}
	}
	if _, err := ByName("magic"); err == nil {
		t.Fatal("expected error for unknown scheduler")
	}
}

func TestTokenStoreConservationThroughRun(t *testing.T) {
	ctx := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 64, 128, 256, 0.2, 16)
	a := NewAlisaManual(0.5, 50, true)
	if err := a.Init(ctx); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < ctx.Output; j++ {
		if _, err := a.Step(ctx, j); err != nil {
			t.Fatal(err)
		}
		total := a.store.Count(kvcache.GPU) + a.store.Count(kvcache.CPU) + a.store.Count(kvcache.Deleted)
		if total != ctx.Input+j+1 {
			t.Fatalf("step %d: store holds %d positions, want %d", j, total, ctx.Input+j+1)
		}
	}
}
