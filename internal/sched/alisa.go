package sched

import (
	"fmt"
	"math"

	"repro/internal/kvcache"
	"repro/internal/memsim"
	"repro/internal/trace"
)

// Alisa is the paper's three-phase token-level dynamic scheduler
// (Algorithm 2, Fig. 7(b)):
//
//	Phase I   — all KV tensors fit in GPU memory; no CPU traffic.
//	Phase II  — KV exceeds GPU capacity; the overflow lives in CPU memory
//	            at token granularity and the globally-selected tokens that
//	            land there are streamed in per step. Locally static tokens
//	            (the most recent window) stay GPU-resident, which is why
//	            eviction is oldest-first ("we choose to keep the KV
//	            tensors for the locally static tokens in the GPU").
//	Phase III — from step P2 on, the oldest β-fraction of the CPU-resident
//	            tokens is deleted and recomputed on demand, trading GPU
//	            compute for PCIe traffic.
//
// Phase transitions are capacity-triggered (Phase II) and step-triggered
// (Phase III at P2), with β and P2 chosen offline by Optimize.
type Alisa struct {
	// Beta is the recompute ratio β: the share of would-be CPU-resident
	// tokens that is deleted instead, from Phase III on.
	Beta float64
	// P2 is the Phase III switch step. Steps j ≥ P2 delete.
	P2 int
	// Recompute false disables Phase III entirely (the Fig. 12(b)
	// "without recomputation" arm).
	Recompute bool
	// AutoTune runs the offline optimizer at Init to pick Beta and P2.
	AutoTune bool
	// EvictNewestFirst inverts the offload order for the eviction-order
	// ablation: instead of keeping the locally static window GPU-resident
	// (the paper's heuristic), the newest tokens are offloaded first,
	// forcing the local window to stream from CPU memory every step.
	EvictNewestFirst bool

	store *kvcache.TokenStore

	phase2Start int // first step that offloaded (-1 until seen)
	phase3Start int // first step that deleted (-1 until seen)
	params      Params
}

// NewAlisa returns an auto-tuned three-phase scheduler.
func NewAlisa() *Alisa {
	return &Alisa{Recompute: true, AutoTune: true, phase2Start: -1, phase3Start: -1}
}

// NewAlisaManual returns a scheduler with explicit β and P2 (no tuning).
func NewAlisaManual(beta float64, p2 int, recompute bool) *Alisa {
	return &Alisa{Beta: beta, P2: p2, Recompute: recompute, phase2Start: -1, phase3Start: -1}
}

// Name implements Scheduler.
func (a *Alisa) Name() string { return "alisa" }

// CloneScheduler implements Cloner: parameters, phase markers, and the
// token store are deep-copied.
func (a *Alisa) CloneScheduler() Scheduler {
	c := *a
	if a.store != nil {
		c.store = a.store.Clone()
	}
	return &c
}

// Params returns the parameters in effect after Init.
func (a *Alisa) Params() Params { return a.params }

// Init implements Scheduler: tune parameters, then place the prefill KV —
// GPU first, overflow to CPU oldest-first.
func (a *Alisa) Init(ctx *Context) error {
	a.store = kvcache.NewTokenStore()
	a.phase2Start, a.phase3Start = -1, -1
	if a.AutoTune {
		a.params = Optimize(ctx)
		a.Beta = a.params.Beta
		a.P2 = a.params.P2
	} else {
		a.params = Params{Beta: a.Beta, P2: a.P2}
	}

	tokenBytes := ctx.TokenBytes()
	for i := 0; i < ctx.Input; i++ {
		if err := ctx.Sys.AllocGPU(tokenBytes); err == nil {
			a.store.Append(kvcache.GPU)
			continue
		}
		// Prefill KV does not fit: spill this token to CPU. The tensors
		// were produced on the GPU, so spilling costs a PCIe store. When
		// CPU memory is itself exhausted and recomputation is available,
		// the oldest CPU token gives way (early Phase III); without
		// recomputation the run cannot proceed soundly.
		for {
			errCPU := ctx.Sys.AllocCPU(tokenBytes)
			if errCPU == nil {
				ctx.ChargeToCPU(tokenBytes)
				a.store.Append(kvcache.CPU)
				break
			}
			if !a.Recompute {
				return fmt.Errorf("alisa: prefill KV exceeds CPU memory: %w", errCPU)
			}
			old := a.store.OldestIn(kvcache.CPU, 1)
			if len(old) == 0 {
				// Nothing deletable: cache this token as already deleted;
				// it will be recomputed on demand.
				a.store.Append(kvcache.Deleted)
				a.markPhase3(0)
				break
			}
			ctx.Sys.FreeCPU(tokenBytes)
			a.store.Move(old[0], kvcache.Deleted)
			a.markPhase3(0)
		}
	}
	if ctx.KVBits < 16 {
		// Quantize the prefill KV once (KV compression, §V-B).
		q := ctx.Cost.Quantize(int64(ctx.Input) * ctx.TokenBytesFP16())
		ctx.Sys.Advance(q.Seconds)
		ctx.Breakdown.Add(trace.CatQuant, q.Seconds)
	}
	return nil
}

// Step implements Scheduler for decode step j.
func (a *Alisa) Step(ctx *Context, j int) (StepPlan, error) {
	n := a.store.Len()
	tokenBytes := ctx.TokenBytes()
	attended := attendedTokens(ctx, n)
	plan := StepPlan{Attended: attended, Sparse: ctx.CachingRatio < 1}

	// Split the budget per Algorithm 1: half locally static (most recent),
	// half globally dynamic from the earlier prefix.
	local := (attended - 1) / 2
	if ctx.CachingRatio >= 1 {
		local = n // dense: everything is "local"
	}
	if local > n {
		local = n
	}
	global := attended - 1 - local
	if global < 0 {
		global = 0
	}

	// Locally static tokens: exact placement check of the newest `local`
	// positions. Oldest-first eviction keeps these GPU-resident except
	// under extreme pressure.
	fetched, recomputed := a.localMisses(n, local)

	// Globally dynamic tokens: expected placement under the
	// recency-biased selection model over the prefix.
	prefix := n - local
	if global > 0 && prefix > 0 {
		_, cpuW, delW := a.weightedFractions(prefix)
		fetched += int(math.Round(float64(global) * cpuW))
		recomputed += int(math.Round(float64(global) * delW))
	}

	if fetched > 0 {
		ctx.ChargeToGPU(int64(fetched) * tokenBytes)
	}
	plan.FetchedTokens = fetched
	plan.RecomputedTokens = recomputed

	// Make room for and store the new token's KV on the GPU.
	offloaded, deleted, err := a.ensureGPUSpace(ctx, tokenBytes, j)
	if err != nil {
		return plan, err
	}
	if err := ctx.Sys.AllocGPU(tokenBytes); err != nil {
		return plan, fmt.Errorf("alisa: new-token KV: %w", err)
	}
	a.store.Append(kvcache.GPU)

	// Phase III: delete the oldest CPU tokens to hold the deletion share
	// at β of the CPU-side population.
	if a.Recompute && j >= a.P2 && a.Beta > 0 {
		deleted += a.enforceDeletionShare(ctx, tokenBytes, j)
	}
	plan.OffloadedTokens = offloaded
	plan.DeletedTokens = deleted
	return plan, nil
}

// localMisses counts, among the newest `local` cached positions, how many
// must be fetched from CPU or recomputed.
func (a *Alisa) localMisses(n, local int) (fetched, recomputed int) {
	for pos := n - local; pos < n; pos++ {
		switch a.store.Loc(pos) {
		case kvcache.CPU:
			fetched++
		case kvcache.Deleted:
			recomputed++
		}
	}
	return fetched, recomputed
}

// ensureGPUSpace offloads GPU tokens to CPU until one more token fits,
// deleting from CPU if CPU memory is itself exhausted. The default
// oldest-first order is the paper's keep-local heuristic; the ablation
// flag inverts it.
func (a *Alisa) ensureGPUSpace(ctx *Context, tokenBytes int64, j int) (offloaded, deleted int, err error) {
	for ctx.Sys.GPUHeadroom() < tokenBytes {
		var victims []int
		if a.EvictNewestFirst {
			victims = a.store.NewestIn(kvcache.GPU, 1)
		} else {
			victims = a.store.OldestIn(kvcache.GPU, 1)
		}
		if len(victims) == 0 {
			return offloaded, deleted, fmt.Errorf("alisa: GPU full with no evictable KV (token bytes %d, headroom %d)",
				tokenBytes, ctx.Sys.GPUHeadroom())
		}
		if errCPU := ctx.Sys.AllocCPU(tokenBytes); errCPU != nil {
			// CPU full: delete the oldest CPU token to make room, which
			// is only sound when recomputation is available.
			if !a.Recompute {
				return offloaded, deleted, fmt.Errorf("alisa: CPU memory exhausted and recomputation disabled: %w", errCPU)
			}
			old := a.store.OldestIn(kvcache.CPU, 1)
			if len(old) == 0 {
				return offloaded, deleted, fmt.Errorf("alisa: CPU memory exhausted with nothing deletable: %w", errCPU)
			}
			ctx.Sys.FreeCPU(tokenBytes)
			a.store.Move(old[0], kvcache.Deleted)
			deleted++
			a.markPhase3(j)
			continue
		}
		ctx.ChargeToCPU(tokenBytes)
		ctx.Sys.FreeGPU(tokenBytes)
		a.store.Move(victims[0], kvcache.CPU)
		offloaded++
		a.markPhase2(j)
	}
	return offloaded, deleted, nil
}

// enforceDeletionShare deletes oldest CPU tokens until deleted ≥
// β·(deleted+cpu), freeing CPU memory (deletion itself is free; the cost
// returns later as recomputation).
func (a *Alisa) enforceDeletionShare(ctx *Context, tokenBytes int64, j int) int {
	deleted := 0
	for {
		cpu := a.store.Count(kvcache.CPU)
		del := a.store.Count(kvcache.Deleted)
		if cpu == 0 || float64(del) >= a.Beta*float64(del+cpu) {
			return deleted
		}
		victim := a.store.OldestIn(kvcache.CPU, 1)
		ctx.Sys.FreeCPU(tokenBytes)
		a.store.Move(victim[0], kvcache.Deleted)
		deleted++
		a.markPhase3(j)
	}
}

// Release implements Releaser: drop every KV byte the sequence holds from
// both memories (deletion is free; recomputation never comes due because
// the sequence is finished or will restart from its prompt).
func (a *Alisa) Release(ctx *Context) (gpuBytes, cpuBytes int64) {
	if a.store == nil {
		return 0, 0
	}
	gpuBytes, cpuBytes = a.store.Bytes(ctx.TokenBytes())
	ctx.Sys.FreeGPU(gpuBytes)
	ctx.Sys.FreeCPU(cpuBytes)
	a.store.Reset()
	return gpuBytes, cpuBytes
}

func (a *Alisa) markPhase2(j int) {
	if a.phase2Start < 0 {
		a.phase2Start = j
	}
}

func (a *Alisa) markPhase3(j int) {
	if a.phase3Start < 0 {
		a.phase3Start = j
	}
}

// Phase reports which scheduling phase step j executed in (1, 2 or 3),
// valid after the run.
func (a *Alisa) Phase(j int) int {
	if a.phase3Start >= 0 && j >= a.phase3Start {
		return 3
	}
	if a.phase2Start >= 0 && j >= a.phase2Start {
		return 2
	}
	return 1
}

// PhaseStarts returns the first steps of Phases II and III (-1 when a
// phase never occurred).
func (a *Alisa) PhaseStarts() (p2Start, p3Start int) {
	return a.phase2Start, a.phase3Start
}

// weightedFractions returns the probability that a globally-selected token
// lies on each device. The paper's heuristic keeps the locally static
// window on the GPU precisely because "global tokens are less predictable"
// (§VI-C) — the globally dynamic set drifts across the whole prefix — so
// selection is modelled as uniform over the prefix and the fractions are
// the exact placement shares under the store's current layout.
func (a *Alisa) weightedFractions(prefix int) (gpuW, cpuW, delW float64) {
	if prefix <= 0 {
		return 0, 0, 0
	}
	var counts [3]int
	for i := 0; i < prefix; i++ {
		counts[a.store.Loc(i)]++
	}
	total := float64(prefix)
	return float64(counts[kvcache.GPU]) / total,
		float64(counts[kvcache.CPU]) / total,
		float64(counts[kvcache.Deleted]) / total
}

// interface checks
var (
	_ Scheduler = (*Alisa)(nil)
	_ Releaser  = (*Alisa)(nil)
)

// sanity check that memsim errors propagate as *memsim.OOMError
var _ error = (*memsim.OOMError)(nil)
