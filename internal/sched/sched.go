// Package sched implements the KV-cache scheduling policies the paper
// compares at the system level (Table I):
//
//   - Alisa — the paper's contribution: token-level three-phase dynamic
//     scheduling (Algorithm 2) with sparsity-aware caching and
//     caching-vs-recomputation balancing, plus the offline optimizer for
//     {α, β, p1, p2} (Eq. 3–6).
//   - FlexGen — static head-level GPU/CPU split, streamed every step.
//   - VLLM — block-level paged cache, GPU-resident, run in waves when the
//     batch does not fit.
//   - DeepSpeed — ZeRO-style weight offloading with GPU-pinned KV.
//   - HFAccelerate — whole-KV CPU offload.
//
// Schedulers operate against the memsim system (bytes and capacities) and
// return per-step plans; the engine in internal/core charges compute.
package sched

import (
	"repro/internal/costmodel"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/trace"
)

// Context is the runtime a scheduler operates in for one simulated
// inference run. All sequences in the batch advance in lockstep, so one
// "token position" covers the whole batch's KV at that position.
type Context struct {
	Sys   *memsim.System
	Cost  costmodel.Cost
	Model model.Config

	Batch  int
	Input  int // prompt length s
	Output int // generated tokens n

	// CachingRatio is r = 1 − KV sparsity; 1.0 means dense attention.
	CachingRatio float64
	// KVBits is the stored KV precision: 16 (FP16), 8 (the INT8
	// compression of §V-B), or 4 (the INT4 extension the paper cites as
	// viable for OPT [14]).
	KVBits int

	// Breakdown receives transfer-time charges made by schedulers.
	Breakdown *trace.Breakdown
}

// TokenBytes returns the KV bytes of one token position across the batch
// at the context's storage precision — the unit of all placement
// decisions.
func (c *Context) TokenBytes() int64 {
	return int64(c.Batch) * c.Model.KVBytesPerToken(2) * int64(c.KVBits) / 16
}

// kvComputeWidth returns the element width the attention kernels read;
// sub-byte storage still reads byte-aligned words.
func (c *Context) kvComputeWidth() int {
	if c.KVBits >= 16 {
		return 2
	}
	return 1
}

// TokenBytesFP16 returns the uncompressed (FP16) KV bytes of one position,
// used to charge quantization passes.
func (c *Context) TokenBytesFP16() int64 {
	return int64(c.Batch) * c.Model.KVBytesPerToken(2)
}

// WeightBytes returns the FP16 model weight footprint.
func (c *Context) WeightBytes() int64 { return c.Model.WeightBytes(2) }

// ActivationBytes returns the transient activation footprint reserved on
// the GPU for the whole run.
func (c *Context) ActivationBytes() int64 { return c.Model.ActivationBytes(c.Batch, 2) }

// MaxSeq returns the final sequence length s + n.
func (c *Context) MaxSeq() int { return c.Input + c.Output }

// ChargeToGPU charges a CPU→GPU PCIe transfer to the system clock and the
// breakdown.
func (c *Context) ChargeToGPU(bytes int64) {
	dt := c.Sys.TransferToGPU(bytes)
	c.Breakdown.Add(trace.CatTransfer, dt)
}

// ChargeToCPU charges a GPU→CPU PCIe transfer.
func (c *Context) ChargeToCPU(bytes int64) {
	dt := c.Sys.TransferToCPU(bytes)
	c.Breakdown.Add(trace.CatTransfer, dt)
}

// StepPlan is what a scheduler decided for one decode step. The scheduler
// has already charged transfer time; the engine charges compute from the
// token counts.
type StepPlan struct {
	// Attended is the number of tokens the step attends to per sequence,
	// including the newly generated token.
	Attended int
	// FetchedTokens is how many attended token positions were streamed
	// from CPU memory this step (transfer already charged).
	FetchedTokens int
	// RecomputedTokens is how many attended positions must be recomputed
	// on the GPU because their KV was deleted (engine charges Tr).
	RecomputedTokens int
	// OffloadedTokens and DeletedTokens report placement changes made
	// this step (for tracing).
	OffloadedTokens int
	DeletedTokens   int
	// Sparse marks steps that pay SWA's local-sum and gather overheads.
	Sparse bool
	// FullRecompute marks a step that reprocesses the whole sequence
	// (KV caching disabled, Fig. 2(c)); Attended is then the sequence
	// length and the engine charges a prefill-shaped pass.
	FullRecompute bool
}

// Scheduler plans KV placement for a simulated inference run.
type Scheduler interface {
	Name() string
	// Init allocates the prefill KV (s tokens) according to the policy.
	// The engine has already reserved weights and activations.
	Init(ctx *Context) error
	// Step plans decode step j ∈ [0, Output): placement changes for the
	// new token, fetches for this step's attention, offloads and
	// deletions. Transfer time is charged inside; compute is returned.
	Step(ctx *Context, j int) (StepPlan, error)
}

// WavePlanner is implemented by schedulers that split a batch into
// sequential waves when it cannot be served at once (vLLM-style
// admission). The engine runs one full inference per wave.
type WavePlanner interface {
	Waves(ctx *Context) ([]int, error)
}

// Cloner is implemented by schedulers whose per-sequence state can be
// deep-copied mid-run: CloneScheduler returns an independent instance
// that, driven through the same Step sequence against a cloned system,
// behaves identically to the original — the requirement behind the
// serving loop's Snapshot/Fork. Every built-in scheduler implements it.
type Cloner interface {
	CloneScheduler() Scheduler
}

// Releaser frees every byte a scheduler's sequence holds on the simulated
// system — the free-on-completion (and preemption) hook of the serving
// loop. Release must be exact: after any Init or Step return, successful
// or not, the scheduler's bookkeeping matches its live allocations, so
// Release(ctx) leaves the system as if the sequence never ran. It reports
// the freed GPU and CPU bytes.
type Releaser interface {
	Release(ctx *Context) (gpuBytes, cpuBytes int64)
}

// attendedTokens returns how many tokens a step attends to under the
// context's caching ratio with n cached tokens: the sparse budget plus the
// current token.
func attendedTokens(ctx *Context, n int) int {
	if ctx.CachingRatio >= 1 {
		return n + 1
	}
	b := int(float64(n)*ctx.CachingRatio + 0.5)
	if b < 1 {
		b = 1
	}
	if b > n {
		b = n
	}
	return b + 1
}
