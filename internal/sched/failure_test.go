package sched

import (
	"errors"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/kvcache"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/trace"
)

// tinyCPUContext builds a context on hardware whose CPU memory is barely
// larger than the weights — the failure-injection rig for CPU exhaustion.
func tinyCPUContext(t *testing.T, cpuBytes int64, recompute bool) (*Context, *Alisa) {
	t.Helper()
	prof := memsim.V100_16G()
	prof.CPUMemBytes = cpuBytes
	sys := memsim.NewSystem(prof)
	cfg := model.MustByName("opt-6.7b")
	ctx := &Context{
		Sys: sys, Cost: costmodel.New(prof), Model: cfg,
		Batch: 64, Input: 128, Output: 512,
		CachingRatio: 0.2, KVBits: 16,
		Breakdown: trace.NewBreakdown(),
	}
	if err := sys.AllocGPU(ctx.WeightBytes()); err != nil {
		t.Fatal(err)
	}
	if err := sys.AllocGPU(ctx.ActivationBytes()); err != nil {
		t.Fatal(err)
	}
	if err := sys.AllocGPU(prof.ReserveBytes); err != nil {
		t.Fatal(err)
	}
	return ctx, NewAlisaManual(0.3, 200, recompute)
}

func TestAlisaCPUExhaustionWithoutRecomputeFails(t *testing.T) {
	// CPU holds only ~40 token positions; once GPU and CPU are both full,
	// a scheduler that may not delete has nowhere to put KV.
	ctx, a := tinyCPUContext(t, 40*33554432, false)
	err := a.Init(ctx)
	for j := 0; err == nil && j < ctx.Output; j++ {
		_, err = a.Step(ctx, j)
	}
	if err == nil {
		t.Fatal("expected failure when CPU memory runs out and recomputation is disabled")
	}
	var oom *memsim.OOMError
	if !errors.As(err, &oom) || oom.Device != "CPU" {
		t.Fatalf("expected CPU OOM cause, got %v", err)
	}
}

func TestAlisaCPUExhaustionWithRecomputeSurvives(t *testing.T) {
	// With recomputation allowed, CPU exhaustion turns into deletion: the
	// same rig must complete, deleting the oldest CPU tokens.
	ctx, a := tinyCPUContext(t, 40*33554432, true)
	if err := a.Init(ctx); err != nil {
		t.Fatal(err)
	}
	deleted := 0
	for j := 0; j < ctx.Output; j++ {
		plan, err := a.Step(ctx, j)
		if err != nil {
			t.Fatalf("step %d should survive via deletion: %v", j, err)
		}
		deleted += plan.DeletedTokens
		if _, cpu := ctx.Sys.Usage(); cpu > ctx.Sys.Prof.CPUMemBytes {
			t.Fatalf("CPU capacity violated at step %d", j)
		}
	}
	if deleted == 0 {
		t.Fatal("pressure run should have deleted tokens")
	}
}

func TestAlisaINT4QuartersTokenBytes(t *testing.T) {
	prof := memsim.V100_16G()
	mk := func(bits int) *Context {
		return &Context{
			Sys: memsim.NewSystem(prof), Cost: costmodel.New(prof),
			Model: model.MustByName("opt-6.7b"),
			Batch: 8, Input: 32, Output: 8,
			CachingRatio: 0.2, KVBits: bits,
			Breakdown: trace.NewBreakdown(),
		}
	}
	fp16 := mk(16).TokenBytes()
	int8 := mk(8).TokenBytes()
	int4 := mk(4).TokenBytes()
	if int8*2 != fp16 || int4*4 != fp16 {
		t.Fatalf("precision scaling broken: fp16=%d int8=%d int4=%d", fp16, int8, int4)
	}
}

func TestSchedulersDeterministic(t *testing.T) {
	// Identical contexts and schedulers must produce byte-identical
	// placement traffic — the whole simulator is deterministic.
	run := func() (int64, int64, float64) {
		ctx := newTestContext(t, memsim.V100_16G(), "opt-6.7b", 64, 128, 256, 0.2, 8)
		a := NewAlisa()
		if err := a.Init(ctx); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < ctx.Output; j++ {
			if _, err := a.Step(ctx, j); err != nil {
				t.Fatal(err)
			}
		}
		toCPU, toGPU, _ := ctx.Sys.TransferStats()
		return toCPU, toGPU, ctx.Sys.Clock()
	}
	c1, g1, t1 := run()
	c2, g2, t2 := run()
	if c1 != c2 || g1 != g2 || t1 != t2 {
		t.Fatalf("nondeterministic run: (%d,%d,%v) vs (%d,%d,%v)", c1, g1, t1, c2, g2, t2)
	}
}

func TestAlisaDeletedNeverResurrects(t *testing.T) {
	// Once deleted, a position stays deleted (recompute streams it
	// transiently, it is never re-cached) — the store must never move a
	// token out of the Deleted state.
	ctx := newTestContext(t, memsim.V100_16G(), "opt-6.7b", 64, 128, 384, 0.2, 16)
	a := NewAlisaManual(0.5, 50, true)
	if err := a.Init(ctx); err != nil {
		t.Fatal(err)
	}
	prevDeleted := 0
	for j := 0; j < ctx.Output; j++ {
		if _, err := a.Step(ctx, j); err != nil {
			t.Fatal(err)
		}
		del := a.store.Count(kvcache.Deleted)
		if del < prevDeleted {
			t.Fatalf("step %d: deleted count fell from %d to %d", j, prevDeleted, del)
		}
		prevDeleted = del
	}
}

func TestKeepLocalEvictionBeatsNewestFirst(t *testing.T) {
	// DESIGN.md §4.5 / paper §V-A: "we choose to keep the KV tensors for
	// the locally static tokens in the GPU". Inverting the eviction order
	// pushes the local window to CPU, so every step pays local fetches.
	run := func(newestFirst bool) (fetched int, clock float64) {
		ctx := newTestContext(t, memsim.V100_16G(), "opt-6.7b", 64, 128, 256, 0.2, 16)
		a := NewAlisaManual(0, ctx.Output, true)
		a.EvictNewestFirst = newestFirst
		if err := a.Init(ctx); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < ctx.Output; j++ {
			plan, err := a.Step(ctx, j)
			if err != nil {
				t.Fatal(err)
			}
			fetched += plan.FetchedTokens
		}
		return fetched, ctx.Sys.Clock()
	}
	keepLocalFetched, keepLocalClock := run(false)
	invertedFetched, invertedClock := run(true)
	if keepLocalFetched >= invertedFetched {
		t.Fatalf("keep-local should fetch less: %d vs %d", keepLocalFetched, invertedFetched)
	}
	if keepLocalClock >= invertedClock {
		t.Fatalf("keep-local should be faster: %v vs %v", keepLocalClock, invertedClock)
	}
}
