package sched

import (
	"fmt"

	"repro/internal/kvcache"
	"repro/internal/trace"
)

// FlexGen is the static head-level offloading baseline [31] (Fig. 7(a)):
// an offline-chosen fraction of every token's KV stays on the GPU and the
// rest lives in CPU memory, streamed across PCIe at every step. The split
// is solved from memory capacity once and never changes ("remains static
// across different sequence lengths").
type FlexGen struct {
	// GPUHeads / Heads is the static split; -1 requests the offline solve.
	GPUHeads int

	store *kvcache.HeadStore
}

// NewFlexGen returns a FlexGen baseline with the split solved at Init.
func NewFlexGen() *FlexGen { return &FlexGen{GPUHeads: -1} }

// Name implements Scheduler.
func (f *FlexGen) Name() string { return "flexgen" }

// CloneScheduler implements Cloner.
func (f *FlexGen) CloneScheduler() Scheduler {
	c := *f
	if f.store != nil {
		c.store = f.store.Clone()
	}
	return &c
}

// GPUFraction returns the static GPU share chosen at Init.
func (f *FlexGen) GPUFraction() float64 { return f.store.GPUFraction() }

// Init implements Scheduler: solve the head split from capacity, place the
// prefill KV.
func (f *FlexGen) Init(ctx *Context) error {
	heads := ctx.Model.Heads
	gpuHeads := f.GPUHeads
	if gpuHeads < 0 {
		// Offline linear solve: the largest head fraction whose peak-KV
		// share fits the GPU headroom.
		peakKV := float64(ctx.MaxSeq()) * float64(ctx.TokenBytes())
		frac := float64(ctx.Sys.GPUHeadroom()) / peakKV
		if frac > 1 {
			frac = 1
		}
		gpuHeads = int(frac * float64(heads))
	}
	f.store = kvcache.NewHeadStore(heads, gpuHeads)

	tokenBytes := ctx.TokenBytes()
	gpuShare, cpuShare := f.store.Split(tokenBytes)
	for i := 0; i < ctx.Input; i++ {
		if err := f.allocToken(ctx, gpuShare, cpuShare); err != nil {
			return fmt.Errorf("flexgen: prefill token: %w", err)
		}
	}
	return nil
}

// allocToken reserves one token's static shares on both devices, leaving
// nothing allocated on failure so the store always matches live memory.
func (f *FlexGen) allocToken(ctx *Context, gpuShare, cpuShare int64) error {
	if err := ctx.Sys.AllocGPU(gpuShare); err != nil {
		return err
	}
	if cpuShare > 0 {
		if err := ctx.Sys.AllocCPU(cpuShare); err != nil {
			ctx.Sys.FreeGPU(gpuShare)
			return err
		}
		ctx.ChargeToCPU(cpuShare)
	}
	f.store.Append()
	return nil
}

// Step implements Scheduler: stream the CPU-resident share of every
// attended token across PCIe, store the new token's shares to their
// static homes. This is the configuration the paper measures — Fig. 1
// attributes FlexGen's slowdown to "moving KV tensors between CPU and GPU"
// on the PCIe bus, and Fig. 7(a) shows the head-level split streamed
// per step.
func (f *FlexGen) Step(ctx *Context, j int) (StepPlan, error) {
	n := f.store.Tokens()
	attended := attendedTokens(ctx, n)
	plan := StepPlan{Attended: attended, Sparse: ctx.CachingRatio < 1}

	tokenBytes := ctx.TokenBytes()
	gpuShare, cpuShare := f.store.Split(tokenBytes)
	if cpuShare > 0 {
		ctx.ChargeToGPU(int64(attended-1) * cpuShare)
		plan.FetchedTokens = attended - 1
	}

	if err := f.allocToken(ctx, gpuShare, cpuShare); err != nil {
		return plan, fmt.Errorf("flexgen: new-token shares: %w", err)
	}
	if cpuShare > 0 {
		plan.OffloadedTokens = 1
	}
	return plan, nil
}

// Release implements Releaser: free the static shares of every stored
// token on both devices.
func (f *FlexGen) Release(ctx *Context) (gpuBytes, cpuBytes int64) {
	if f.store == nil {
		return 0, 0
	}
	gpuShare, cpuShare := f.store.Split(ctx.TokenBytes())
	n := int64(f.store.Tokens())
	gpuBytes, cpuBytes = n*gpuShare, n*cpuShare
	ctx.Sys.FreeGPU(gpuBytes)
	ctx.Sys.FreeCPU(cpuBytes)
	f.store.Reset()
	return gpuBytes, cpuBytes
}

// VLLM is the paged-attention baseline [21]: KV lives in fixed-size GPU
// blocks with no static reservation, so memory is used exactly as needed
// (plus at most one partial block per sequence). When a batch cannot fit
// at its peak length, admission control runs it in sequential waves —
// vLLM's continuous-batching behaviour projected onto the paper's
// lockstep-batch evaluation. Dense attention; no offload streaming.
type VLLM struct {
	BlockSize int

	store *kvcache.BlockStore
}

// NewVLLM returns a vLLM baseline with the serving default of 16-token
// blocks.
func NewVLLM() *VLLM { return &VLLM{BlockSize: 16} }

// Name implements Scheduler.
func (v *VLLM) Name() string { return "vllm" }

// CloneScheduler implements Cloner.
func (v *VLLM) CloneScheduler() Scheduler {
	c := *v
	if v.store != nil {
		c.store = v.store.Clone()
	}
	return &c
}

// Waves implements WavePlanner: admit as many sequences as the GPU can
// hold at their *average* footprint. Continuous batching overlaps
// sequence lifetimes, so steady-state occupancy tracks the mean allocation
// (s + n/2 tokens, block-rounded), not the peak; projected onto the
// paper's lockstep batches this sets the wave size.
func (v *VLLM) Waves(ctx *Context) ([]int, error) {
	avgLen := ctx.Input + ctx.Output/2
	perSeqBlocks := (avgLen + v.BlockSize - 1) / v.BlockSize
	blockBytes := int64(v.BlockSize) * ctx.Model.KVBytesPerToken(2) * int64(ctx.KVBits) / 16
	perSeqBytes := int64(perSeqBlocks) * blockBytes
	fit := int(ctx.Sys.GPUHeadroom() / perSeqBytes)
	if fit <= 0 {
		return nil, fmt.Errorf("vllm: a single sequence's KV (%d bytes) exceeds GPU headroom %d",
			perSeqBytes, ctx.Sys.GPUHeadroom())
	}
	if fit > ctx.Batch {
		fit = ctx.Batch
	}
	var waves []int
	for remaining := ctx.Batch; remaining > 0; remaining -= fit {
		waves = append(waves, minInt(fit, remaining))
	}
	return waves, nil
}

// Init implements Scheduler for one wave (ctx.Batch is the wave size).
func (v *VLLM) Init(ctx *Context) error {
	v.store = kvcache.NewBlockStore(v.BlockSize)
	blockBytes := v.blockBytes(ctx)
	for i := 0; i < ctx.Input; i++ {
		// Reserve the block before growing the store, so a failed
		// allocation leaves bookkeeping and live memory in agreement.
		if v.store.WouldGrow() {
			if err := ctx.Sys.AllocGPU(blockBytes); err != nil {
				return fmt.Errorf("vllm: prefill block: %w", err)
			}
		}
		v.store.Append()
	}
	return nil
}

// Step implements Scheduler: dense attention over paged blocks. When the
// wave outgrows the GPU late in the run (admission sized it by average
// footprint), the oldest blocks are swapped to CPU memory and streamed
// back across PCIe each step — vLLM's preemption-swap behaviour.
func (v *VLLM) Step(ctx *Context, j int) (StepPlan, error) {
	n := v.store.Tokens()
	plan := StepPlan{Attended: attendedTokens(ctx, n), Sparse: ctx.CachingRatio < 1}
	blockBytes := v.blockBytes(ctx)

	if swapped := v.store.BlocksIn(kvcache.CPU); swapped > 0 {
		ctx.ChargeToGPU(int64(swapped) * blockBytes)
		plan.FetchedTokens = swapped * v.BlockSize
	}

	if v.store.WouldGrow() {
		for ctx.Sys.GPUHeadroom() < blockBytes {
			// Secure the CPU destination before the swap mutates the store.
			if err := ctx.Sys.AllocCPU(blockBytes); err != nil {
				return plan, fmt.Errorf("vllm: swap destination: %w", err)
			}
			if v.store.SwapOut(1) == 0 {
				ctx.Sys.FreeCPU(blockBytes)
				return plan, fmt.Errorf("vllm: GPU full with nothing to swap (block %d bytes)", blockBytes)
			}
			ctx.ChargeToCPU(blockBytes)
			ctx.Sys.FreeGPU(blockBytes)
			plan.OffloadedTokens += v.BlockSize
		}
		if err := ctx.Sys.AllocGPU(blockBytes); err != nil {
			return plan, fmt.Errorf("vllm: decode block: %w", err)
		}
	}
	v.store.Append()
	return plan, nil
}

// Release implements Releaser: free every allocated block on its current
// device.
func (v *VLLM) Release(ctx *Context) (gpuBytes, cpuBytes int64) {
	if v.store == nil {
		return 0, 0
	}
	blockBytes := v.blockBytes(ctx)
	gpuBytes = int64(v.store.BlocksIn(kvcache.GPU)) * blockBytes
	cpuBytes = int64(v.store.BlocksIn(kvcache.CPU)) * blockBytes
	ctx.Sys.FreeGPU(gpuBytes)
	ctx.Sys.FreeCPU(cpuBytes)
	v.store.Reset()
	return gpuBytes, cpuBytes
}

func (v *VLLM) blockBytes(ctx *Context) int64 {
	return int64(v.BlockSize) * ctx.TokenBytes()
}

// DeepSpeed is the ZeRO-Inference baseline [1]: model weights live in CPU
// memory and stream across PCIe every forward pass (overlapped with
// compute), while KV tensors are pinned to the GPU — which is why it hits
// OOM at large batch sizes in Fig. 9 ("it does not offload KV tensors").
type DeepSpeed struct {
	tokens int
}

// NewDeepSpeed returns the ZeRO-style baseline.
func NewDeepSpeed() *DeepSpeed { return &DeepSpeed{} }

// Name implements Scheduler.
func (d *DeepSpeed) Name() string { return "deepspeed-zero" }

// CloneScheduler implements Cloner.
func (d *DeepSpeed) CloneScheduler() Scheduler {
	c := *d
	return &c
}

// WeightsOnCPU reports that this scheduler keeps weights off the GPU; the
// engine skips the GPU weight reservation and charges streaming instead.
func (d *DeepSpeed) WeightsOnCPU() bool { return true }

// Init implements Scheduler: all prefill KV on GPU.
func (d *DeepSpeed) Init(ctx *Context) error {
	d.tokens = 0
	tokenBytes := ctx.TokenBytes()
	for i := 0; i < ctx.Input; i++ {
		if err := ctx.Sys.AllocGPU(tokenBytes); err != nil {
			return fmt.Errorf("deepspeed: prefill KV: %w", err)
		}
		d.tokens++
	}
	return nil
}

// Step implements Scheduler: stream the weights (less what compute time
// hides), keep KV on GPU.
func (d *DeepSpeed) Step(ctx *Context, j int) (StepPlan, error) {
	n := d.tokens
	attended := attendedTokens(ctx, n)
	plan := StepPlan{Attended: attended, Sparse: ctx.CachingRatio < 1}

	// Weight streaming overlaps with compute; charge only the exposed
	// remainder as transfer time.
	mha, ffn := StepComputeSeconds(ctx, attended, plan.Sparse)
	weightTime := float64(ctx.WeightBytes()) / ctx.Sys.Prof.PCIeBandwidth
	exposed := weightTime - (mha + ffn)
	if exposed > 0 {
		// Charge the exposed stall directly; counting the full weight
		// bytes every step would distort byte statistics, and the stall
		// is what the end-to-end time sees.
		ctx.Sys.Advance(exposed)
		ctx.Breakdown.Add(trace.CatTransfer, exposed)
	}

	if err := ctx.Sys.AllocGPU(ctx.TokenBytes()); err != nil {
		return plan, fmt.Errorf("deepspeed: new-token KV: %w", err)
	}
	d.tokens++
	return plan, nil
}

// Release implements Releaser: KV is GPU-pinned, so everything frees there.
func (d *DeepSpeed) Release(ctx *Context) (gpuBytes, cpuBytes int64) {
	gpuBytes = int64(d.tokens) * ctx.TokenBytes()
	ctx.Sys.FreeGPU(gpuBytes)
	d.tokens = 0
	return gpuBytes, 0
}

// HFAccelerate is the HuggingFace Accelerate baseline [39]: the whole KV
// cache lives in CPU memory ("offloading the whole KV tensors to the CPU
// memory"), so every step streams the entire attended context in and the
// new token's KV out — the 100 %-CPU bar of Fig. 1.
type HFAccelerate struct {
	tokens int
}

// NewHFAccelerate returns the whole-KV-offload baseline.
func NewHFAccelerate() *HFAccelerate { return &HFAccelerate{} }

// Name implements Scheduler.
func (h *HFAccelerate) Name() string { return "hf-accelerate" }

// CloneScheduler implements Cloner.
func (h *HFAccelerate) CloneScheduler() Scheduler {
	c := *h
	return &c
}

// Init implements Scheduler: prefill KV goes straight to CPU.
func (h *HFAccelerate) Init(ctx *Context) error {
	h.tokens = 0
	tokenBytes := ctx.TokenBytes()
	for i := 0; i < ctx.Input; i++ {
		if err := ctx.Sys.AllocCPU(tokenBytes); err != nil {
			return fmt.Errorf("hf-accelerate: prefill KV: %w", err)
		}
		ctx.ChargeToCPU(tokenBytes)
		h.tokens++
	}
	return nil
}

// Step implements Scheduler: fetch everything, store the new token back.
func (h *HFAccelerate) Step(ctx *Context, j int) (StepPlan, error) {
	n := h.tokens
	attended := attendedTokens(ctx, n)
	plan := StepPlan{Attended: attended, Sparse: ctx.CachingRatio < 1}

	fetch := int64(attended-1) * ctx.TokenBytes()
	if fetch > 0 {
		ctx.ChargeToGPU(fetch)
		plan.FetchedTokens = attended - 1
	}
	if err := ctx.Sys.AllocCPU(ctx.TokenBytes()); err != nil {
		return plan, fmt.Errorf("hf-accelerate: new-token KV: %w", err)
	}
	ctx.ChargeToCPU(ctx.TokenBytes())
	h.tokens++
	return plan, nil
}

// Release implements Releaser: the whole cache lives in CPU memory.
func (h *HFAccelerate) Release(ctx *Context) (gpuBytes, cpuBytes int64) {
	cpuBytes = int64(h.tokens) * ctx.TokenBytes()
	ctx.Sys.FreeCPU(cpuBytes)
	h.tokens = 0
	return 0, cpuBytes
}

// interface checks
var (
	_ Scheduler   = (*FlexGen)(nil)
	_ Releaser    = (*FlexGen)(nil)
	_ Scheduler   = (*VLLM)(nil)
	_ WavePlanner = (*VLLM)(nil)
	_ Releaser    = (*VLLM)(nil)
	_ Scheduler   = (*DeepSpeed)(nil)
	_ Releaser    = (*DeepSpeed)(nil)
	_ Scheduler   = (*HFAccelerate)(nil)
	_ Releaser    = (*HFAccelerate)(nil)
)
