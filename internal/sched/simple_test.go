package sched

import (
	"math"
	"testing"

	"repro/internal/memsim"
)

func TestPCIeSplitStreamsCPUShare(t *testing.T) {
	ctx := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 4, 64, 32, 1.0, 16)
	p := NewPCIeSplit(0.5)
	plans := drive(t, p, ctx)

	tokenBytes := ctx.TokenBytes()
	// Prefill stores half of every prompt token to CPU; each step fetches
	// half of the attended context and stores half of the new token.
	toCPU, toGPU, _ := ctx.Sys.TransferStats()
	wantToCPU := (int64(ctx.Input) + int64(ctx.Output)) * tokenBytes / 2
	if toCPU != wantToCPU {
		t.Fatalf("toCPU = %d, want %d", toCPU, wantToCPU)
	}
	var wantToGPU int64
	for j := 0; j < ctx.Output; j++ {
		wantToGPU += int64(ctx.Input+j) * (tokenBytes / 2)
	}
	if toGPU != wantToGPU {
		t.Fatalf("toGPU = %d, want %d", toGPU, wantToGPU)
	}
	for j, plan := range plans {
		if plan.FetchedTokens != ctx.Input+j {
			t.Fatalf("step %d fetched %d, want %d", j, plan.FetchedTokens, ctx.Input+j)
		}
	}
}

func TestPCIeSplitZeroFractionIsGPUOnly(t *testing.T) {
	ctx := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 4, 64, 16, 1.0, 16)
	drive(t, NewPCIeSplit(0), ctx)
	toCPU, toGPU, _ := ctx.Sys.TransferStats()
	if toCPU != 0 || toGPU != 0 {
		t.Fatalf("zero CPU fraction moved bytes: %d/%d", toCPU, toGPU)
	}
}

func TestPCIeSplitSlowdownScalesWithFraction(t *testing.T) {
	// The Fig. 1 mechanism in isolation: more CPU share, more time.
	run := func(frac float64) float64 {
		ctx := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 4, 128, 64, 1.0, 16)
		drive(t, NewPCIeSplit(frac), ctx)
		return ctx.Sys.Clock()
	}
	t0, t50, t100 := run(0), run(0.5), run(1.0)
	if !(t0 < t50 && t50 < t100) {
		t.Fatalf("slowdown not monotone: %v, %v, %v", t0, t50, t100)
	}
	// Transfer time is linear in the fraction, so the increments match.
	if math.Abs((t100-t50)-(t50-t0)) > 1e-6*(t100+1) {
		t.Fatalf("transfer increments not linear: %v vs %v", t100-t50, t50-t0)
	}
}

func TestPCIeSplitBadFractionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for fraction > 1")
		}
	}()
	NewPCIeSplit(1.5)
}

func TestGPUOnlyFitsSmallRun(t *testing.T) {
	ctx := newTestContext(t, memsim.V100_32G(), "opt-6.7b", 4, 64, 32, 1.0, 16)
	plans := drive(t, NewGPUOnly(), ctx)
	toCPU, toGPU, _ := ctx.Sys.TransferStats()
	if toCPU != 0 || toGPU != 0 {
		t.Fatal("gpu-only must never transfer")
	}
	if plans[0].Attended != ctx.Input+1 {
		t.Fatalf("first step attended %d", plans[0].Attended)
	}
}
