package sched

import (
	"fmt"
	"sort"
	"sync"
)

// Factory constructs a fresh scheduler instance. Every simulated run (and,
// in the serving simulator, every admission) gets its own instance, so
// factories must not share mutable state between the schedulers they
// return.
type Factory func() Scheduler

// registry maps canonical (and alias) names to factories. Built-ins are
// installed at package init; user code extends the set through Register.
var registry = struct {
	sync.RWMutex
	m map[string]Factory
}{m: make(map[string]Factory)}

// builtin guards the paper's evaluation set (and its aliases) against
// replacement so the pinned experiment results stay trustworthy.
var builtin = map[string]bool{}

func init() {
	for name, f := range map[string]Factory{
		"alisa":          func() Scheduler { return NewAlisa() },
		"flexgen":        func() Scheduler { return NewFlexGen() },
		"vllm":           func() Scheduler { return NewVLLM() },
		"deepspeed-zero": func() Scheduler { return NewDeepSpeed() },
		"deepspeed":      func() Scheduler { return NewDeepSpeed() },
		"hf-accelerate":  func() Scheduler { return NewHFAccelerate() },
		"accelerate":     func() Scheduler { return NewHFAccelerate() },
		"gpu-only":       func() Scheduler { return NewGPUOnly() },
		"no-cache":       func() Scheduler { return NewNoCache() },
	} {
		registry.m[name] = f
		builtin[name] = true
	}
}

// Register makes a scheduler constructible by name through ByName, from
// any package — the extension point for placement policies beyond the
// paper's evaluation set. Built-in names cannot be replaced;
// re-registering an extension name replaces it. Register is safe for
// concurrent use with itself and with ByName.
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("sched: Register with empty name")
	}
	if f == nil {
		return fmt.Errorf("sched: Register %q with nil factory", name)
	}
	if builtin[name] {
		return fmt.Errorf("sched: Register %q: cannot replace a built-in scheduler", name)
	}
	registry.Lock()
	defer registry.Unlock()
	registry.m[name] = f
	return nil
}

// ByName constructs a fresh scheduler from its registered name. Safe for
// concurrent use.
func ByName(name string) (Scheduler, error) {
	registry.RLock()
	f, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (registered: %v)", name, Registered())
	}
	return f(), nil
}

// MustByName is ByName for static names — the experiment tables and
// examples whose scheduler names are compile-time constants. It panics
// on an unknown name, which for a static name is a programming error,
// not an input error.
func MustByName(name string) Scheduler {
	s, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// FactoryByName resolves the registered factory once, so callers that
// construct many instances (compiled engines, per-admission schedulers)
// skip the lookup on the hot path. Safe for concurrent use.
func FactoryByName(name string) (Factory, error) {
	registry.RLock()
	f, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (registered: %v)", name, Registered())
	}
	return f, nil
}

// Names lists the paper's evaluation set in evaluation order. Extensions
// registered at runtime are resolvable through ByName and enumerable
// through Registered, but deliberately do not join this list: the
// experiment suite iterates Names and its outputs are pinned.
func Names() []string {
	return []string{"deepspeed-zero", "hf-accelerate", "flexgen", "vllm", "alisa"}
}

// Registered lists every registered name (built-ins, aliases, and
// extensions) in sorted order.
func Registered() []string {
	registry.RLock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	registry.RUnlock()
	sort.Strings(names)
	return names
}
