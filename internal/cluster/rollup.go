package cluster

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// ReplicaResult is one fleet member's contribution to the final Result.
type ReplicaResult struct {
	ID   int
	Tier string
	// Routed is how many requests the router dispatched here; Completed
	// how many ran to completion (they differ only under cancellation).
	Routed    int
	Completed int
	// Forked marks autoscaler-added, warm-started replicas; Retired
	// marks members the autoscaler removed before the fleet closed.
	Forked  bool
	Retired bool
	// Serve is the replica's full per-engine result — the same shape
	// serve.Run produces, per-request records included on the exact path.
	Serve *serve.Result
}

// Result is the fleet outcome: per-replica results plus the fleet-level
// aggregates the load curves report.
type Result struct {
	Router   string
	Replicas []ReplicaResult

	// Pushed and Completed count requests over the whole fleet.
	Pushed    int
	Completed int
	// Makespan is the fleet's end time: the maximum replica makespan
	// (replicas keep independent clocks started at zero).
	Makespan float64
	// Throughput and Goodput are fleet generated-token rates over the
	// fleet makespan — all completions, and SLO-meeting ones only. Token
	// counts come from the completion stream, so they are exact in both
	// metrics modes.
	Throughput float64
	Goodput    float64
	// SLOAttainment is the completion-weighted fleet SLO fraction.
	SLOAttainment float64

	// Window is the final fleet rolling-window digest — the online view
	// at close time.
	Window metrics.WindowSnapshot

	// ScaleUps, ScaleDowns, and PeakReplicas summarise autoscaler
	// activity; a fixed fleet reports 0, 0, and its size.
	ScaleUps     int
	ScaleDowns   int
	PeakReplicas int

	// Prefix-cache fleet aggregates, summed over replicas (each replica
	// keeps an independent cache; routing is the only sharing mechanism,
	// which is what the hit-rate-by-router sweeps measure). All zero when
	// the cache is off. Deliberately NOT rendered into Fingerprint: the
	// fingerprint format predates the cache and stays byte-stable.
	PrefillTokens      int64
	PrefixHits         int
	PrefixMisses       int
	PrefixCachedTokens int64
	// PrefixSharedBytes sums the replicas' peak cache residency.
	PrefixSharedBytes int64
}

// PrefixHitRate is the fleet prefix-cache hit rate over probed
// admissions, 0 before any probe.
func (r *Result) PrefixHitRate() float64 {
	if probes := r.PrefixHits + r.PrefixMisses; probes > 0 {
		return float64(r.PrefixHits) / float64(probes)
	}
	return 0
}

// rollup aggregates the finalized replicas into the fleet Result.
func (c *Cluster) rollup() *Result {
	res := &Result{
		Router:       c.router.Name(),
		Pushed:       c.pushed,
		Window:       c.window.Snapshot(),
		ScaleUps:     c.scaleUps,
		ScaleDowns:   c.scaleDowns,
		PeakReplicas: c.peakReplicas,
	}
	var tokens, goodTokens int64
	var sloMet int
	for _, r := range c.replicas {
		res.Replicas = append(res.Replicas, ReplicaResult{
			ID:        r.id,
			Tier:      r.tier,
			Routed:    r.routed,
			Completed: r.completed,
			Forked:    r.forked,
			Retired:   r.retired,
			Serve:     r.result,
		})
		res.Completed += r.completed
		tokens += r.tokens
		goodTokens += r.goodTokens
		sloMet += r.sloMet
		if r.result != nil {
			if r.result.Makespan > res.Makespan {
				res.Makespan = r.result.Makespan
			}
			res.PrefillTokens += r.result.PrefillTokens
			res.PrefixHits += r.result.PrefixHits
			res.PrefixMisses += r.result.PrefixMisses
			res.PrefixCachedTokens += r.result.PrefixCachedTokens
			res.PrefixSharedBytes += r.result.PrefixSharedBytes
		}
	}
	if res.Makespan > 0 {
		res.Throughput = float64(tokens) / res.Makespan
		res.Goodput = float64(goodTokens) / res.Makespan
	}
	if res.Completed > 0 {
		res.SLOAttainment = float64(sloMet) / float64(res.Completed)
	}
	return res
}

// Fingerprint renders the fleet result with full float precision —
// fleet aggregates, autoscaler trail, and every replica's metrics and
// per-request records — so the determinism suite can pin two runs
// bit-identical with one string compare.
func (r *Result) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "router=%s pushed=%d completed=%d makespan=%.9f tput=%.9f goodput=%.9f slo=%.9f up=%d down=%d peak=%d\n",
		r.Router, r.Pushed, r.Completed, r.Makespan, r.Throughput, r.Goodput, r.SLOAttainment,
		r.ScaleUps, r.ScaleDowns, r.PeakReplicas)
	for _, rep := range r.Replicas {
		fmt.Fprintf(&b, "replica %d tier=%s routed=%d completed=%d forked=%t retired=%t",
			rep.ID, rep.Tier, rep.Routed, rep.Completed, rep.Forked, rep.Retired)
		if s := rep.Serve; s != nil {
			fmt.Fprintf(&b, " makespan=%.9f tput=%.9f goodput=%.9f slo=%.9f pre=%d meanbatch=%.9f peakgpu=%d",
				s.Makespan, s.Throughput, s.Goodput, s.SLOAttainment, s.Preemptions, s.MeanBatch, s.PeakGPU)
		}
		b.WriteByte('\n')
		if s := rep.Serve; s != nil {
			for _, rec := range s.Requests {
				b.WriteString("  ")
				b.WriteString(rec.String())
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}
