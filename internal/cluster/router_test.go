package cluster

import (
	"testing"

	"repro/internal/workload"
)

// TestRouterRegistry pins the built-in policy set: at least the four
// shipped policies, resolvable by name, with unknown names rejected.
func TestRouterRegistry(t *testing.T) {
	names := Routers()
	if len(names) < 4 {
		t.Fatalf("registered routers %v, want at least 4", names)
	}
	for _, want := range []string{"round-robin", "least-outstanding", "least-kv", "affinity"} {
		r, err := RouterByName(want)
		if err != nil {
			t.Fatalf("RouterByName(%q): %v", want, err)
		}
		if r.Name() != want {
			t.Fatalf("router %q reports name %q", want, r.Name())
		}
	}
	if _, err := RouterByName("no-such-policy"); err == nil {
		t.Fatal("unknown router name resolved")
	}
}

func views(t *testing.T, n int) []ReplicaView {
	t.Helper()
	v := make([]ReplicaView, n)
	for i := range v {
		v[i] = ReplicaView{ID: i, GPUCapacity: 1 << 30, GPUHeadroom: 1 << 29}
	}
	return v
}

// TestRoundRobinCycles pins the dispatch-counter rotation, including its
// behaviour when the fleet grows between picks: the cursor counts
// dispatches, so a resize re-phases but never panics or starves.
func TestRoundRobinCycles(t *testing.T) {
	r, _ := RouterByName("round-robin")
	v := views(t, 3)
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, r.Pick(workload.Request{ID: i}, v))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pick sequence %v, want %v", got, want)
		}
	}
	// Shrink to one replica: every pick must stay in range.
	one := views(t, 1)
	for i := 0; i < 3; i++ {
		if p := r.Pick(workload.Request{ID: i}, one); p != 0 {
			t.Fatalf("pick %d on one-replica fleet", p)
		}
	}
}

// TestLeastOutstanding pins queue-depth balancing with the
// lowest-ID tie-break.
func TestLeastOutstanding(t *testing.T) {
	r, _ := RouterByName("least-outstanding")
	v := views(t, 3)
	v[0].Pending, v[0].Active = 2, 2
	v[1].Pending, v[1].Active = 1, 1
	v[2].Pending, v[2].Active = 3, 0
	if p := r.Pick(workload.Request{}, v); p != 1 {
		t.Fatalf("picked %d, want 1 (2 outstanding)", p)
	}
	v[1].Pending = 3 // now 0 and 1 tie at 4; 2 has 3
	if p := r.Pick(workload.Request{}, v); p != 2 {
		t.Fatalf("picked %d, want 2", p)
	}
	v[2].Pending = 4 // all tie at 4 → lowest ID
	if p := r.Pick(workload.Request{}, v); p != 0 {
		t.Fatalf("tie broke to %d, want 0", p)
	}
}

// TestLeastKVUsesFraction pins the heterogeneous-fleet property: the
// free *fraction* ranks replicas, so a half-empty small card beats a
// nearly-full big card that has more absolute bytes free.
func TestLeastKVUsesFraction(t *testing.T) {
	r, _ := RouterByName("least-kv")
	v := []ReplicaView{
		{ID: 0, GPUCapacity: 80 << 30, GPUHeadroom: 8 << 30}, // 10% free, 8 GiB
		{ID: 1, GPUCapacity: 16 << 30, GPUHeadroom: 8 << 30}, // 50% free, 8 GiB
		{ID: 2, GPUCapacity: 16 << 30, GPUHeadroom: 4 << 30}, // 25% free
	}
	if p := r.Pick(workload.Request{}, v); p != 1 {
		t.Fatalf("picked %d, want 1 (largest free fraction)", p)
	}
	// Equal fractions tie to the lowest ID.
	v[0].GPUHeadroom = 40 << 30 // 50%
	if p := r.Pick(workload.Request{}, v); p != 0 {
		t.Fatalf("tie broke to %d, want 0", p)
	}
}

// TestAffinityStickyAndStable pins the two rendezvous-hashing
// properties the policy exists for: the same key always lands on the
// same live replica, and a fleet resize moves only the keys whose
// winner actually changed — most assignments survive.
func TestAffinityStickyAndStable(t *testing.T) {
	r, _ := RouterByName("affinity")
	v3 := views(t, 3)
	const keys = 256
	before := make([]int, keys)
	for k := 0; k < keys; k++ {
		p := r.Pick(workload.Request{ID: k}, v3)
		before[k] = v3[p].ID
		if again := r.Pick(workload.Request{ID: k}, v3); v3[again].ID != before[k] {
			t.Fatalf("key %d not sticky: %d then %d", k, before[k], v3[again].ID)
		}
	}
	// Every replica should own a reasonable share.
	share := make(map[int]int)
	for _, id := range before {
		share[id]++
	}
	for id, n := range share {
		if n < keys/10 {
			t.Fatalf("replica %d owns only %d/%d keys — hash badly skewed", id, n, keys)
		}
	}
	// Add a fourth replica: keys either stay put or move to the new one;
	// no key may shuffle between surviving replicas.
	v4 := views(t, 4)
	moved := 0
	for k := 0; k < keys; k++ {
		id := v4[r.Pick(workload.Request{ID: k}, v4)].ID
		if id != before[k] {
			if id != 3 {
				t.Fatalf("key %d reshuffled from %d to surviving replica %d", k, before[k], id)
			}
			moved++
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Fatalf("%d/%d keys moved to the new replica, want roughly 1/4", moved, keys)
	}
}
