package cluster

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/grid"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/workload"
)

// replicaConfig is the suite's per-replica serving configuration: the
// paper's sparse/INT8 alisa setting on a V100-16G, small batch cap so
// modest traces still exercise queueing and routing pressure.
func replicaConfig() serve.Config {
	return serve.Config{
		Model:      model.MustByName("opt-6.7b"),
		Profile:    memsim.V100_16G(),
		Scheduler:  "alisa",
		KVSparsity: 0.8,
		KVBits:     8,
		MaxBatch:   4,
	}
}

func fleetConfig(n int, router string) Config {
	cfg := Config{Router: router}
	for i := 0; i < n; i++ {
		cfg.Replicas = append(cfg.Replicas, replicaConfig())
	}
	return cfg
}

// TestReplayCompletesAllPolicies drives one trace through every
// registered routing policy: every request must complete exactly once,
// routed counts must account for the whole trace, and the fleet window
// must have observed completions.
func TestReplayCompletesAllPolicies(t *testing.T) {
	tr := workload.PoissonTrace(40, 6, 11)
	for _, router := range Routers() {
		res, err := Replay(context.Background(), fleetConfig(3, router), tr)
		if err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		if res.Completed != len(tr) || res.Pushed != len(tr) {
			t.Fatalf("%s: completed %d pushed %d of %d", router, res.Completed, res.Pushed, len(tr))
		}
		routed := 0
		for _, rep := range res.Replicas {
			routed += rep.Routed
			if rep.Routed != rep.Completed {
				t.Fatalf("%s: replica %d routed %d but completed %d", router, rep.ID, rep.Routed, rep.Completed)
			}
		}
		if routed != len(tr) {
			t.Fatalf("%s: routed %d of %d", router, routed, len(tr))
		}
		if res.Window.Count == 0 {
			t.Fatalf("%s: fleet window never observed a completion", router)
		}
		if res.SLOAttainment < 0 || res.SLOAttainment > 1 {
			t.Fatalf("%s: SLO attainment %v out of range", router, res.SLOAttainment)
		}
		if res.Throughput <= 0 || res.Makespan <= 0 {
			t.Fatalf("%s: degenerate aggregates: tput %v makespan %v", router, res.Throughput, res.Makespan)
		}
	}
}

// TestSingleReplicaMatchesLoop pins the base case of the fleet layer: a
// one-replica cluster replaying a trace must be bit-identical to a bare
// serve.Loop driven with the same dispatch rule (push a request at the
// first turn boundary at-or-after its arrival — Replay's front-end
// model), so routing, windows, and the roll-up add zero perturbation to
// the simulation itself.
func TestSingleReplicaMatchesLoop(t *testing.T) {
	tr := workload.PoissonTrace(32, 5, 7)
	ctx := context.Background()

	l, err := serve.NewLoop(replicaConfig())
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for {
		if next < len(tr) && (tr[next].Arrival <= l.Clock() || (l.Pending() == 0 && l.Active() == 0)) {
			if err := l.Inject(tr[next]); err != nil {
				t.Fatal(err)
			}
			next++
			continue
		}
		progressed, err := l.Advance(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !progressed && next >= len(tr) {
			break
		}
	}
	if err := l.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	direct := l.Finalize()

	res, err := Replay(ctx, fleetConfig(1, "round-robin"), tr)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Replicas[0].Serve
	if got.Makespan != direct.Makespan || got.Throughput != direct.Throughput ||
		got.Goodput != direct.Goodput || got.SLOAttainment != direct.SLOAttainment ||
		got.Preemptions != direct.Preemptions || got.MeanBatch != direct.MeanBatch {
		t.Fatalf("aggregates diverged from the bare loop:\n cluster %+v\n direct  %+v", got, direct)
	}
	if len(got.Requests) != len(direct.Requests) {
		t.Fatalf("record count %d vs %d", len(got.Requests), len(direct.Requests))
	}
	for i := range got.Requests {
		if got.Requests[i] != direct.Requests[i] {
			t.Fatalf("record %d diverged:\n cluster %s\n direct  %s", i, got.Requests[i], direct.Requests[i])
		}
	}
}

// TestReplayDeterministicAndParallel is the fleet determinism contract:
// the same (seed, fleet config) replayed serially twice and again inside
// a parallel grid (GOMAXPROCS pinned at 4, the -race CI shape) must
// produce bit-identical fingerprints for every routing policy.
func TestReplayDeterministicAndParallel(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	tr := workload.PoissonTrace(48, 8, 13)
	routers := Routers()
	serial := make([]string, len(routers))
	for i, router := range routers {
		res, err := Replay(context.Background(), fleetConfig(3, router), tr)
		if err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		serial[i] = res.Fingerprint()
	}

	again := make([]string, len(routers))
	for i, router := range routers {
		res, err := Replay(context.Background(), fleetConfig(3, router), tr)
		if err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		again[i] = res.Fingerprint()
	}

	parallel := make([]string, len(routers))
	errs := make([]error, len(routers))
	_ = grid.Run(context.Background(), len(routers), 4, func(ctx context.Context, i int) {
		res, err := Replay(ctx, fleetConfig(3, routers[i]), tr)
		if err != nil {
			errs[i] = err
			return
		}
		parallel[i] = res.Fingerprint()
	})
	for i, router := range routers {
		if errs[i] != nil {
			t.Fatalf("%s (parallel): %v", router, errs[i])
		}
		if serial[i] != again[i] {
			t.Fatalf("%s: two serial replays diverged", router)
		}
		if serial[i] != parallel[i] {
			t.Fatalf("%s: parallel replay diverged from serial", router)
		}
	}
}

// TestHeterogeneousFleet mixes V100-16G and V100-32G tiers: round-robin
// must spread traffic across both tiers, while the KV-pressure policy
// must recognise the bigger card's much larger free-KV fraction and
// send it the majority of the load — the routing signal heterogeneity
// exists for. Both runs must complete the full trace.
func TestHeterogeneousFleet(t *testing.T) {
	tr := workload.PoissonTrace(48, 8, 17)
	mixed := func(router string) Config {
		small := replicaConfig()
		big := replicaConfig()
		big.Profile = memsim.V100_32G()
		return Config{Router: router, Replicas: []serve.Config{small, big}}
	}
	routedByTier := func(router string) map[string]int {
		res, err := Replay(context.Background(), mixed(router), tr)
		if err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		if res.Completed != len(tr) {
			t.Fatalf("%s: completed %d of %d", router, res.Completed, len(tr))
		}
		tiers := map[string]int{}
		for _, rep := range res.Replicas {
			tiers[rep.Tier] += rep.Routed
		}
		return tiers
	}

	rr := routedByTier("round-robin")
	if rr["V100-16GB"] != len(tr)/2 || rr["V100-32GB"] != len(tr)/2 {
		t.Fatalf("round-robin split %v, want even halves", rr)
	}
	kv := routedByTier("least-kv")
	if kv["V100-32GB"] <= kv["V100-16GB"] {
		t.Fatalf("least-kv split %v: the 32G tier's larger free fraction should attract the majority", kv)
	}
}

// TestAutoscaleUp pins the scale-up trigger: an unmeetable SLO drives
// windowed attainment to zero, so the fleet must grow from its initial
// size toward Max, warm-starting forked replicas that then serve
// traffic.
func TestAutoscaleUp(t *testing.T) {
	rc := replicaConfig()
	rc.SLOTTFT = 1e-9 // nothing can meet it: attainment pins at 0
	cfg := Config{
		Router:   "least-outstanding",
		Replicas: []serve.Config{rc},
		Autoscale: &Autoscale{
			Min: 1, Max: 3,
			SLOTarget: 0.9,
			MinObs:    4,
		},
	}
	res, err := Replay(context.Background(), cfg, workload.PoissonTrace(48, 10, 19))
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleUps == 0 {
		t.Fatal("fleet never scaled up despite 0% windowed attainment")
	}
	if res.PeakReplicas != 3 {
		t.Fatalf("peak fleet size %d, want 3 (Max)", res.PeakReplicas)
	}
	forkedServed := 0
	for _, rep := range res.Replicas {
		if rep.Forked {
			forkedServed += rep.Completed
		}
	}
	if forkedServed == 0 {
		t.Fatal("warm-started replicas never served a request")
	}
	if res.Completed != 48 {
		t.Fatalf("completed %d of 48", res.Completed)
	}
}

// TestAutoscaleDown pins the scale-down trigger: after a burst drains
// and the trace goes quiet, the replica left idle past IdleAfter is
// retired — and its completions still count in the final roll-up.
func TestAutoscaleDown(t *testing.T) {
	cfg := Config{
		Router:   "round-robin",
		Replicas: []serve.Config{replicaConfig(), replicaConfig()},
		Autoscale: &Autoscale{
			Min: 1, Max: 2,
			IdleAfter: 5,
		},
	}
	// A burst at the start, then one straggler far in the future: the
	// clock jump to the straggler exposes the other replica's idle span.
	tr := workload.UniformTrace(8, 0.25, 96, 48)
	tr = append(tr, workload.Request{ID: 8, Arrival: 1000, Input: 64, Output: 16})
	res, err := Replay(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleDowns == 0 {
		t.Fatal("fleet never scaled down despite a >5s idle replica")
	}
	if res.Completed != len(tr) {
		t.Fatalf("completed %d of %d — a retired replica lost completions", res.Completed, len(tr))
	}
	retired := 0
	for _, rep := range res.Replicas {
		if rep.Retired {
			retired++
			if rep.Completed == 0 {
				t.Fatal("retired replica reported no completions despite serving the burst")
			}
		}
	}
	if retired == 0 {
		t.Fatal("ScaleDowns counted but no replica marked retired")
	}
}

// TestReplayCancellation mirrors the serve/session cancellation
// contract at fleet level: a cancelled context yields the partial
// result alongside a cancellation-classified error.
func TestReplayCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Replay(ctx, fleetConfig(2, "round-robin"), workload.PoissonTrace(16, 5, 3))
	if err == nil || !serve.IsCancellation(err) {
		t.Fatalf("err = %v, want a cancellation", err)
	}
	if res == nil {
		t.Fatal("cancelled fleet must return the partial result")
	}
}

// TestClusterValidation sweeps the fleet-level config errors.
func TestClusterValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := New(Config{Replicas: []serve.Config{replicaConfig()}, Router: "nope"}); err == nil {
		t.Fatal("unknown router accepted")
	}
	if _, err := New(Config{Replicas: []serve.Config{replicaConfig()}, Window: -1}); err == nil {
		t.Fatal("negative window accepted")
	}
	bad := []Autoscale{
		{Min: 0, Max: 2},
		{Min: 2, Max: 1},
		{Min: 2, Max: 4}, // Min above initial size 1
		{Min: 1, Max: 2, SLOTarget: 1.5},
		{Min: 1, Max: 2, IdleAfter: -1},
		{Min: 1, Max: 2, Cooldown: -1},
		{Min: 1, Max: 2, MinObs: -1},
		{Min: 1, Max: 2, Template: 5},
	}
	for i, as := range bad {
		a := as
		if _, err := New(Config{Replicas: []serve.Config{replicaConfig()}, Autoscale: &a}); err == nil {
			t.Fatalf("bad autoscale %d (%+v) accepted", i, as)
		}
	}
	// Closed-fleet transitions fail.
	c, err := New(fleetConfig(1, ""))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.Push(workload.Request{ID: 1, Arrival: 0, Input: 8, Output: 4}); err == nil {
		t.Fatal("push on closed fleet accepted")
	}
	if _, err := c.Advance(context.Background()); err == nil {
		t.Fatal("advance on closed fleet accepted")
	}
}

// TestStatusSurfacesFleetState drives a few requests by hand —
// Push/Advance, the Session-like interactive surface — and checks the
// per-replica status and fleet snapshot stay coherent.
func TestStatusSurfacesFleetState(t *testing.T) {
	c, err := New(fleetConfig(2, "round-robin"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range workload.UniformTrace(6, 0.3, 64, 16) {
		if err := c.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	for {
		progressed, err := c.Advance(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !progressed {
			break
		}
	}
	if got := c.Snapshot(); got.Count != 6 {
		t.Fatalf("fleet window count %d, want 6", got.Count)
	}
	status := c.Status()
	if len(status) != 2 {
		t.Fatalf("status entries %d, want 2", len(status))
	}
	total := 0
	for _, st := range status {
		total += st.Window.Count
	}
	if total != 6 {
		t.Fatalf("per-replica windows hold %d completions, want 6", total)
	}
	if res, err := c.Close(context.Background()); err != nil || res.Completed != 6 {
		t.Fatalf("close: %v completed %d", err, res.Completed)
	}
}
