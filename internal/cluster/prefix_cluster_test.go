package cluster

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/grid"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/workload"
)

// prefixReplicaConfig is the cache-on replica used by the fleet prefix
// tests: the 32G card gives each replica's cache a budget that holds a
// conversation working set (see internal/serve's prefix tests for the
// operating-point rationale).
func prefixReplicaConfig() serve.Config {
	return serve.Config{
		Model:       model.MustByName("opt-6.7b"),
		Profile:     memsim.V100_32G(),
		Scheduler:   "alisa",
		KVBits:      16,
		MaxBatch:    8,
		PrefixBlock: 16,
	}
}

func prefixFleetConfig(n int, router string) Config {
	cfg := Config{Router: router}
	for i := 0; i < n; i++ {
		cfg.Replicas = append(cfg.Replicas, prefixReplicaConfig())
	}
	return cfg
}

// fleetConvTrace is the routed multi-turn workload: enough interleaved
// conversations that a 3-replica fleet sees real routing choices. The
// conversation count is deliberately coprime to the replica count —
// with a multiple of 3, round-robin over the interleaved turn stream
// degenerates into accidental perfect affinity.
func fleetConvTrace(t *testing.T) workload.Trace {
	t.Helper()
	tr, err := workload.NewConversationTrace(10, 6, 6.0, 2048, 33)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestFleetPrefixDeterministic extends the fleet determinism contract to
// cache-on replicas: with refcounted COW blocks, leases, and eviction
// live inside every replica, serial and grid-parallel replays must still
// produce bit-identical fingerprints for every routing policy.
func TestFleetPrefixDeterministic(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	tr := fleetConvTrace(t)
	routers := Routers()
	serial := make([]string, len(routers))
	for i, router := range routers {
		res, err := Replay(context.Background(), prefixFleetConfig(3, router), tr)
		if err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		if res.Completed != len(tr) {
			t.Fatalf("%s: completed %d of %d", router, res.Completed, len(tr))
		}
		serial[i] = res.Fingerprint()
	}

	parallel := make([]string, len(routers))
	errs := make([]error, len(routers))
	_ = grid.Run(context.Background(), len(routers), 4, func(ctx context.Context, i int) {
		res, err := Replay(ctx, prefixFleetConfig(3, routers[i]), tr)
		if err != nil {
			errs[i] = err
			return
		}
		parallel[i] = res.Fingerprint()
	})
	for i, router := range routers {
		if errs[i] != nil {
			t.Fatalf("%s (parallel): %v", router, errs[i])
		}
		if serial[i] != parallel[i] {
			t.Fatalf("%s: cache-on parallel replay diverged from serial", router)
		}
	}
}

// TestPrefixAffinityRouting pins the routing half of the prefix-cache
// story: with independent per-replica caches, a router that scatters a
// conversation's turns (round-robin) wastes most of the reuse, while
// prefix-affinity rendezvous hashing lands every turn on the replica
// already holding its blocks — a measurably higher fleet hit rate and
// fewer prefilled tokens for the same trace.
func TestPrefixAffinityRouting(t *testing.T) {
	tr := fleetConvTrace(t)
	run := func(router string) *Result {
		res, err := Replay(context.Background(), prefixFleetConfig(3, router), tr)
		if err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		if res.Completed != len(tr) {
			t.Fatalf("%s: completed %d of %d", router, res.Completed, len(tr))
		}
		return res
	}
	rr := run("round-robin")
	aff := run("prefix-affinity")

	if aff.PrefixHits == 0 {
		t.Fatal("prefix-affinity fleet recorded no cache hits")
	}
	if aff.PrefixHitRate() <= rr.PrefixHitRate() {
		t.Errorf("prefix-affinity hit rate %.3f not above round-robin %.3f",
			aff.PrefixHitRate(), rr.PrefixHitRate())
	}
	if aff.PrefillTokens >= rr.PrefillTokens {
		t.Errorf("prefix-affinity prefilled %d tokens, round-robin %d — affinity should prefill less",
			aff.PrefillTokens, rr.PrefillTokens)
	}
	// The fleet window observed the same probes the roll-up summed.
	if aff.Window.PrefixHits != aff.PrefixHits || aff.Window.PrefixMisses != aff.PrefixMisses {
		t.Errorf("fleet window prefix counters %d/%d diverged from roll-up %d/%d",
			aff.Window.PrefixHits, aff.Window.PrefixMisses, aff.PrefixHits, aff.PrefixMisses)
	}
}
