// Package cluster is the fleet layer above internal/serve: N independent
// serve.Loop replicas driven behind a pluggable front-end router, with a
// windowed-metrics autoscaler on top. One engine simulates one GPU; this
// package simulates the system level the KV-cache-management literature
// frames above per-GPU scheduling — request routing across replicas,
// heterogeneous hardware tiers, and capacity that follows load.
//
// The whole fleet is one discrete-event simulation: replicas keep
// independent virtual clocks, and the fleet advances whichever busy
// replica is furthest behind (ties to the lowest replica ID), so a run
// is a deterministic function of (seed, fleet config) — the same
// single-goroutine discipline as serve.Loop, and the property the
// bit-identity tests pin under -race.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/workload"
)

// ReplicaView is the router's read-only view of one live replica at
// routing time: identity, tier, queue state, and KV pressure. Views are
// ordered by replica ID and contain live (non-retired) replicas only.
type ReplicaView struct {
	// ID is the replica's fleet-unique identity. IDs are never reused —
	// a replica added by the autoscaler gets a fresh ID — so affinity
	// hashing stays stable across scale events.
	ID int
	// Tier is the replica's hardware profile name (e.g. "V100-16GB").
	Tier string
	// Pending and Active are the replica's wait-queue depth and current
	// decode-batch occupancy.
	Pending int
	Active  int
	// MaxBatch is the replica's decode-batch cap.
	MaxBatch int
	// Clock is the replica's simulated time in seconds.
	Clock float64
	// GPUHeadroom is the simulated GPU bytes currently free on the
	// replica; GPUCapacity is its total HBM. Together they give the
	// KV-pressure fraction heterogeneous fleets compare by.
	GPUHeadroom int64
	GPUCapacity int64
}

// Outstanding returns the replica's total in-system request count — the
// load signal queue-depth routing balances.
func (v ReplicaView) Outstanding() int { return v.Pending + v.Active }

// Router picks the replica each arriving request is dispatched to.
// Pick returns an index into views (not a replica ID); views is never
// empty. Routers may keep internal state (a round-robin cursor) — each
// cluster owns a private instance from the registry's factory — but must
// be deterministic: the same request/view sequence must produce the same
// picks, because fleet results are pinned bit-identical in (seed, config).
type Router interface {
	Name() string
	Pick(req workload.Request, views []ReplicaView) int
}

// Factory constructs a fresh Router instance; each cluster gets its own,
// so stateful policies never share cursors across fleets.
type Factory func() Router

var (
	routersMu sync.RWMutex
	routers   = map[string]Factory{}
)

// RegisterRouter adds a routing policy to the registry under its name.
// Registering an empty name, a nil factory, or a duplicate panics —
// registration is init-time wiring, and the built-ins are always present.
func RegisterRouter(name string, f Factory) {
	routersMu.Lock()
	defer routersMu.Unlock()
	if name == "" || f == nil {
		panic("cluster: RegisterRouter requires a name and a factory")
	}
	if _, dup := routers[name]; dup {
		panic(fmt.Sprintf("cluster: router %q already registered", name))
	}
	routers[name] = f
}

// RouterByName instantiates a registered routing policy.
func RouterByName(name string) (Router, error) {
	routersMu.RLock()
	f, ok := routers[name]
	routersMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cluster: unknown router %q (have %v)", name, Routers())
	}
	return f(), nil
}

// Routers returns the registered policy names, sorted.
func Routers() []string {
	routersMu.RLock()
	defer routersMu.RUnlock()
	names := make([]string, 0, len(routers))
	for n := range routers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterRouter("round-robin", func() Router { return &roundRobin{} })
	RegisterRouter("least-outstanding", func() Router { return leastOutstanding{} })
	RegisterRouter("least-kv", func() Router { return leastKV{} })
	RegisterRouter("affinity", func() Router { return affinity{} })
	RegisterRouter("prefix-affinity", func() Router { return prefixAffinity{} })
}

// roundRobin cycles through the live replicas in ID order. The cursor
// counts dispatches, not positions, so the rotation stays well-defined
// when the autoscaler grows or shrinks the view slice between picks.
type roundRobin struct{ n uint64 }

func (r *roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Pick(_ workload.Request, views []ReplicaView) int {
	i := int(r.n % uint64(len(views)))
	r.n++
	return i
}

// leastOutstanding dispatches to the replica with the fewest in-system
// requests (queued + in batch), ties to the lowest replica ID — classic
// least-connections balancing, which tracks load directly instead of
// assuming homogeneous replicas.
type leastOutstanding struct{}

func (leastOutstanding) Name() string { return "least-outstanding" }

func (leastOutstanding) Pick(_ workload.Request, views []ReplicaView) int {
	best := 0
	for i := 1; i < len(views); i++ {
		if views[i].Outstanding() < views[best].Outstanding() {
			best = i
		}
	}
	return best
}

// leastKV dispatches to the replica with the largest free-KV fraction
// (GPU headroom over capacity), ties to the lowest replica ID. The
// fraction — not the absolute byte count — is what makes a mixed fleet
// fair: a half-empty 16G card beats a nearly-full 80G card even though
// the latter has more absolute bytes free.
type leastKV struct{}

func (leastKV) Name() string { return "least-kv" }

func (leastKV) Pick(_ workload.Request, views []ReplicaView) int {
	best := 0
	bestFrac := kvFreeFrac(views[0])
	for i := 1; i < len(views); i++ {
		if f := kvFreeFrac(views[i]); f > bestFrac {
			best, bestFrac = i, f
		}
	}
	return best
}

// kvFreeFrac is the replica's free-GPU fraction; a degenerate capacity
// ranks last.
func kvFreeFrac(v ReplicaView) float64 {
	if v.GPUCapacity <= 0 {
		return -1
	}
	return float64(v.GPUHeadroom) / float64(v.GPUCapacity)
}

// affinity pins each request key to a replica by rendezvous
// (highest-random-weight) hashing over the live replica IDs: the chosen
// replica is the one whose (key, ID) hash scores highest. Session and
// prefix caches love this policy — a key always lands on the same
// replica while that replica lives, and when the autoscaler adds or
// removes a replica only the keys whose winner changed move (~1/N of
// them), instead of the wholesale reshuffle modulo hashing causes.
// The key is the request ID, the session identity in this simulator.
type affinity struct{}

func (affinity) Name() string { return "affinity" }

func (affinity) Pick(req workload.Request, views []ReplicaView) int {
	best, bestScore := 0, rendezvousScore(uint64(req.ID), views[0].ID)
	for i := 1; i < len(views); i++ {
		if s := rendezvousScore(uint64(req.ID), views[i].ID); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// prefixPinTokens bounds how many leading token IDs prefixAffinity
// hashes: enough to tell conversations (distinct system prompts) apart,
// cheap enough to stay off the routing hot path's conscience.
const prefixPinTokens = 64

// prefixAffinity pins each request's prompt prefix to a replica by
// rendezvous hashing over the first prefixPinTokens token IDs. Requests
// that share a prefix — a conversation's turns, an agent fleet's common
// tool preamble — then land on the replica whose prefix cache already
// holds their blocks, which is what turns per-replica caching into a
// fleet-level hit rate (replicas keep independent caches; the router is
// the only cross-replica sharing mechanism). Requests without token IDs
// fall back to request-ID affinity.
type prefixAffinity struct{}

func (prefixAffinity) Name() string { return "prefix-affinity" }

func (prefixAffinity) Pick(req workload.Request, views []ReplicaView) int {
	key := prefixKey(req)
	best, bestScore := 0, rendezvousScore(key, views[0].ID)
	for i := 1; i < len(views); i++ {
		if s := rendezvousScore(key, views[i].ID); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// prefixKey hashes the request's leading token IDs with FNV-1a; a
// token-less request keys on its ID, degrading to plain affinity.
func prefixKey(req workload.Request) uint64 {
	if len(req.Tokens) == 0 {
		return uint64(req.ID)
	}
	n := len(req.Tokens)
	if n > prefixPinTokens {
		n = prefixPinTokens
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, tok := range req.Tokens[:n] {
		putU64(buf[:], uint64(tok))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// rendezvousScore hashes (key, replica ID) with FNV-1a. 64-bit FNV over
// the two little-endian words is cheap, stable across runs, and spreads
// keys evenly enough for fleet balancing.
func rendezvousScore(key uint64, replicaID int) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	putU64(buf[:8], key)
	putU64(buf[8:], uint64(replicaID))
	h.Write(buf[:])
	return h.Sum64()
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
