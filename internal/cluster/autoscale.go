package cluster

import (
	"context"
	"fmt"
)

// Autoscale is the fleet's capacity policy, driven entirely by the
// simulation's own signals so scaling decisions are deterministic in
// (seed, config):
//
//   - Scale up when the fleet's rolling window holds at least MinObs
//     completions and its windowed SLO attainment drops below SLOTarget —
//     the load has outrun the fleet. The new replica warm-starts as a
//     fork of the template replica's pristine snapshot and gets a fresh,
//     never-reused ID (affinity hashing stays stable).
//   - Scale down when a replica has been idle — no queued or in-flight
//     work — for more than IdleAfter simulated seconds of fleet
//     frontier time. The retired replica is finalized immediately; its
//     completions stay in the fleet roll-up.
//
// Both directions respect the [Min, Max] size bounds and a shared
// Cooldown between actions, so one congested window cannot stampede the
// fleet to Max in consecutive turns.
type Autoscale struct {
	// Min and Max bound the live fleet size. Min must be ≥ 1 and ≤ the
	// initial replica count; Max must be ≥ Min.
	Min, Max int
	// SLOTarget is the windowed SLO-attainment floor in [0, 1]; windowed
	// attainment below it triggers a scale-up.
	SLOTarget float64
	// MinObs is how many completions the fleet window needs before
	// attainment is trusted (0 → 8): scaling on one slow request is
	// noise, not signal.
	MinObs int
	// IdleAfter is the sustained-idle span, in simulated seconds, after
	// which a replica beyond Min is retired. 0 disables scale-down.
	IdleAfter float64
	// Cooldown is the minimum fleet-frontier time between scale actions,
	// in simulated seconds.
	Cooldown float64
	// Template indexes Config.Replicas: scale-ups clone this member's
	// configuration (and fork its pristine snapshot).
	Template int
}

// validate reports the first invalid autoscale field. n is the initial
// fleet size.
func (a Autoscale) validate(n int) error {
	switch {
	case a.Min < 1:
		return fmt.Errorf("cluster: autoscale Min must be >= 1, got %d", a.Min)
	case a.Max < a.Min:
		return fmt.Errorf("cluster: autoscale Max %d below Min %d", a.Max, a.Min)
	case a.Min > n:
		return fmt.Errorf("cluster: autoscale Min %d above initial fleet size %d", a.Min, n)
	case a.SLOTarget < 0 || a.SLOTarget > 1:
		return fmt.Errorf("cluster: autoscale SLOTarget must be in [0,1], got %v", a.SLOTarget)
	case a.MinObs < 0:
		return fmt.Errorf("cluster: autoscale MinObs must be >= 0, got %d", a.MinObs)
	case a.IdleAfter < 0:
		return fmt.Errorf("cluster: autoscale IdleAfter must be >= 0 seconds, got %v", a.IdleAfter)
	case a.Cooldown < 0:
		return fmt.Errorf("cluster: autoscale Cooldown must be >= 0 seconds, got %v", a.Cooldown)
	case a.Template < 0 || a.Template >= n:
		return fmt.Errorf("cluster: autoscale Template %d outside initial fleet [0,%d)", a.Template, n)
	}
	return nil
}

// minObs applies the MinObs default.
func (a Autoscale) minObs() int {
	if a.MinObs == 0 {
		return 8
	}
	return a.MinObs
}

// autoscaleStep gives the policy one look after a fleet turn: at most
// one scale action per turn, scale-down considered first (reclaiming an
// idle replica can never hurt attainment the way skipping a needed
// scale-up can — and a fleet both idle-heavy and SLO-starved should
// rebalance, not thrash).
func (c *Cluster) autoscaleStep(ctx context.Context) error {
	as := c.cfg.Autoscale
	if as == nil {
		return nil
	}
	f := c.Frontier()
	if f-c.lastScale < as.Cooldown && (c.scaleUps > 0 || c.scaleDowns > 0) {
		return nil
	}

	if as.IdleAfter > 0 && c.Size() > as.Min {
		for _, r := range c.replicas {
			if r.retired || r.busy() {
				continue
			}
			if f-r.lastBusy > as.IdleAfter {
				if err := c.retire(ctx, r); err != nil {
					return err
				}
				c.lastScale = f
				return nil
			}
		}
	}

	if c.Size() < as.Max {
		snap := c.window.Snapshot()
		if snap.Count >= as.minObs() && snap.SLOAttainment < as.SLOTarget {
			if _, err := c.addReplica(c.cfg.Replicas[as.Template], true); err != nil {
				return fmt.Errorf("cluster: scale-up: %w", err)
			}
			c.scaleUps++
			if n := c.Size(); n > c.peakReplicas {
				c.peakReplicas = n
			}
			c.lastScale = f
		}
	}
	return nil
}

// retire drains (running serve's KV-leak check — the replica is idle, so
// this is one no-op turn), finalizes, and removes an idle replica from
// routing. Its completions remain in every window and in the final
// roll-up.
func (c *Cluster) retire(ctx context.Context, r *replica) error {
	if err := r.loop.Drain(ctx); err != nil {
		return err
	}
	r.retired = true
	r.result = r.loop.Finalize()
	c.scaleDowns++
	return nil
}
