package cluster

import (
	"context"
	"fmt"

	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/workload"
)

// DefaultWindow is the fleet rolling-window capacity when Config.Window
// is zero — the population the autoscaler and Snapshot digest.
const DefaultWindow = 64

// Config specifies one fleet simulation.
type Config struct {
	// Replicas are the initial fleet members, one serve.Config each.
	// Mixed profiles are allowed — that is the heterogeneous-fleet case —
	// and each replica's Observer (if any) receives that replica's events
	// after the fleet's own metrics tap.
	Replicas []serve.Config

	// Router selects the registered routing policy ("" → "round-robin").
	Router string

	// Window is the fleet rolling completion window capacity
	// (0 → DefaultWindow). The window digests completions in fleet
	// scheduling order — the deterministic order replicas are advanced —
	// and drives both Snapshot and the autoscaler.
	Window int

	// Autoscale, when non-nil, lets the fleet grow and shrink at runtime;
	// see the Autoscale type. New replicas warm-start as forks of a
	// pristine snapshot of the template replica's loop.
	Autoscale *Autoscale
}

// Validate reports the first invalid fleet-level field; per-replica
// serve configs are validated by serve.NewLoop itself.
func (c Config) Validate() error {
	if len(c.Replicas) == 0 {
		return fmt.Errorf("cluster: at least one replica required")
	}
	if c.Window < 0 {
		return fmt.Errorf("cluster: negative metrics window %d", c.Window)
	}
	if c.Autoscale != nil {
		if err := c.Autoscale.validate(len(c.Replicas)); err != nil {
			return err
		}
	}
	return nil
}

// replica is one fleet member: a serve.Loop plus the fleet's bookkeeping
// about it.
type replica struct {
	id   int
	tier string
	cfg  serve.Config
	loop *serve.Loop
	// window is the replica's own rolling completion window — the
	// per-replica counterpart of the fleet window.
	window *metrics.Window
	// routed counts requests dispatched to this replica; the counters
	// below accumulate its completions for the fleet roll-up.
	routed     int
	completed  int
	tokens     int64
	goodTokens int64
	sloMet     int
	// lastBusy is the replica's clock when it last held work; the
	// autoscaler retires replicas whose idle span exceeds IdleAfter.
	lastBusy float64
	// forked marks autoscaler-added replicas (warm-started via Fork).
	forked  bool
	retired bool
	// result is set when the replica is finalized (retirement or fleet
	// close).
	result *serve.Result
}

func (r *replica) busy() bool { return r.loop.Pending() > 0 || r.loop.Active() > 0 }

// view projects the replica into the router's read-only view.
func (r *replica) view() ReplicaView {
	return ReplicaView{
		ID:          r.id,
		Tier:        r.tier,
		Pending:     r.loop.Pending(),
		Active:      r.loop.Active(),
		MaxBatch:    r.cfg.MaxBatch,
		Clock:       r.loop.Clock(),
		GPUHeadroom: r.loop.GPUHeadroom(),
		GPUCapacity: r.cfg.Profile.GPUMemBytes,
	}
}

// Cluster is a live fleet: replicas behind the configured router,
// advanced as one discrete-event simulation. Like serve.Loop and the
// public Session it is single-goroutine — Push, Advance, Snapshot, and
// Close must not race — and a fleet fed the same request sequence
// produces bit-identical results.
type Cluster struct {
	cfg    Config
	router Router
	window *metrics.Window

	replicas []*replica
	nextID   int

	// pristine is the idle template loop's snapshot the autoscaler forks
	// scale-up replicas from; nil when autoscaling is off.
	pristine *serve.Snapshot

	// lastScale is the fleet frontier at the last autoscale action,
	// enforcing the cooldown; scaleUps/scaleDowns and peak feed the
	// result.
	lastScale    float64
	scaleUps     int
	scaleDowns   int
	peakReplicas int

	pushed    int
	err       error
	closed    bool
	result    *Result
	closeErr  error
	finalized bool
}

// New validates the fleet configuration and builds an idle cluster.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	name := cfg.Router
	if name == "" {
		name = "round-robin"
	}
	router, err := RouterByName(name)
	if err != nil {
		return nil, err
	}
	window := cfg.Window
	if window == 0 {
		window = DefaultWindow
	}
	c := &Cluster{
		cfg:    cfg,
		router: router,
		window: metrics.NewWindow(window),
	}
	for _, rc := range cfg.Replicas {
		if _, err := c.addReplica(rc, false); err != nil {
			return nil, err
		}
	}
	c.peakReplicas = len(c.replicas)
	if as := cfg.Autoscale; as != nil {
		// The pristine template is snapshotted idle, observer-free; each
		// scale-up forks it and attaches the new replica's own tap —
		// serve's fork determinism contract makes the warm start exact.
		tmpl := cfg.Replicas[as.Template]
		tmpl.Observer = nil
		tl, err := serve.NewLoop(tmpl)
		if err != nil {
			return nil, fmt.Errorf("cluster: autoscale template: %w", err)
		}
		sn, err := tl.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("cluster: autoscale template: %w", err)
		}
		c.pristine = sn
	}
	return c, nil
}

// addReplica builds one replica with the fleet tap chained in front of
// the config's own observer. Warm-started replicas fork the pristine
// snapshot instead of building a loop from scratch.
func (c *Cluster) addReplica(rc serve.Config, fork bool) (*replica, error) {
	r := &replica{
		id:     c.nextID,
		tier:   rc.Profile.Name,
		cfg:    rc,
		window: metrics.NewWindow(c.windowCap()),
		forked: fork,
	}
	tap := events.Multi(&fleetTap{c: c, r: r}, rc.Observer)
	var err error
	if fork {
		r.loop, err = c.pristine.Fork(tap)
	} else {
		rc.Observer = tap
		r.loop, err = serve.NewLoop(rc)
	}
	if err != nil {
		return nil, err
	}
	c.nextID++
	c.replicas = append(c.replicas, r)
	return r, nil
}

func (c *Cluster) windowCap() int {
	if c.cfg.Window > 0 {
		return c.cfg.Window
	}
	return DefaultWindow
}

// live appends the views of the non-retired replicas into buf.
func (c *Cluster) live(buf []ReplicaView) []ReplicaView {
	for _, r := range c.replicas {
		if !r.retired {
			buf = append(buf, r.view())
		}
	}
	return buf
}

// Size returns the live (non-retired) replica count.
func (c *Cluster) Size() int {
	n := 0
	for _, r := range c.replicas {
		if !r.retired {
			n++
		}
	}
	return n
}

// Pending and InFlight aggregate queue depth and decode occupancy over
// the live fleet.
func (c *Cluster) Pending() int {
	n := 0
	for _, r := range c.replicas {
		if !r.retired {
			n += r.loop.Pending()
		}
	}
	return n
}

// InFlight returns the fleet-wide decode-batch occupancy.
func (c *Cluster) InFlight() int {
	n := 0
	for _, r := range c.replicas {
		if !r.retired {
			n += r.loop.Active()
		}
	}
	return n
}

// Idle reports whether no live replica holds work.
func (c *Cluster) Idle() bool {
	for _, r := range c.replicas {
		if !r.retired && r.busy() {
			return false
		}
	}
	return true
}

// Frontier is the fleet's causal clock: the minimum simulated time among
// busy replicas — no event before it can still be produced — or, when
// the fleet is idle, the maximum replica clock reached.
func (c *Cluster) Frontier() float64 {
	frontier, any := 0.0, false
	maxClock := 0.0
	for _, r := range c.replicas {
		if r.retired {
			continue
		}
		clk := r.loop.Clock()
		if clk > maxClock {
			maxClock = clk
		}
		if r.busy() && (!any || clk < frontier) {
			frontier, any = clk, true
		}
	}
	if !any {
		return maxClock
	}
	return frontier
}

// Push routes one request through the configured policy and injects it
// into the chosen replica. Like Session.Push, the arrival may lie in the
// future (the replica jumps its clock when idle) or in the past
// (immediately due); request IDs must be unique fleet-wide because
// routing is sticky — a request lives on one replica.
func (c *Cluster) Push(req workload.Request) error {
	if c.closed {
		return fmt.Errorf("cluster: fleet closed")
	}
	if c.err != nil {
		return c.err
	}
	views := c.live(make([]ReplicaView, 0, len(c.replicas)))
	idx := c.router.Pick(req, views)
	if idx < 0 || idx >= len(views) {
		c.err = fmt.Errorf("cluster: router %q picked replica index %d of %d", c.router.Name(), idx, len(views))
		return c.err
	}
	r := c.replicaByID(views[idx].ID)
	if err := r.loop.Inject(req); err != nil {
		c.err = err
		return err
	}
	r.routed++
	c.pushed++
	return nil
}

func (c *Cluster) replicaByID(id int) *replica {
	for _, r := range c.replicas {
		if r.id == id {
			return r
		}
	}
	return nil
}

// Advance runs one fleet turn: the busy replica furthest behind in
// simulated time (ties to the lowest ID) advances one event-loop turn,
// then the autoscaler gets one look. false with a nil error means the
// fleet is idle — everything pushed has completed. Errors latch, exactly
// as on serve.Loop.
func (c *Cluster) Advance(ctx context.Context) (bool, error) {
	if c.closed {
		return false, fmt.Errorf("cluster: fleet closed")
	}
	return c.advance(ctx)
}

// advance is one fleet turn without the closed gate; Close's drain uses
// it directly.
//
//alisa:hotpath
func (c *Cluster) advance(ctx context.Context) (bool, error) {
	if c.err != nil {
		return false, c.err
	}
	var pick *replica
	for _, r := range c.replicas {
		if r.retired || !r.busy() {
			continue
		}
		if pick == nil || r.loop.Clock() < pick.loop.Clock() {
			pick = r
		}
	}
	if pick == nil {
		return false, nil
	}
	progressed, err := pick.loop.Advance(ctx)
	if err != nil {
		c.err = err
		return false, err
	}
	if pick.busy() {
		pick.lastBusy = pick.loop.Clock()
	}
	if err := c.autoscaleStep(ctx); err != nil {
		c.err = err
		return false, err
	}
	return progressed, nil
}

// Close drains the fleet — every routed request runs to completion —
// finalizes each replica, and rolls the fleet Result up. On context
// cancellation the partial result over completed requests is returned
// alongside the error, mirroring Session.Close; other fatal errors
// return a nil result. Close is idempotent.
func (c *Cluster) Close(ctx context.Context) (*Result, error) {
	if c.closed {
		return c.result, c.closeErr
	}
	c.closed = true
	for c.err == nil {
		progressed, err := c.advance(ctx)
		if err != nil || !progressed {
			break
		}
	}
	if c.err == nil {
		// Each idle replica's Drain runs serve's end-of-run leak check:
		// KV accounting must have returned exactly to the static
		// reservations on every fleet member.
		for _, r := range c.replicas {
			if r.result == nil {
				if err := r.loop.Drain(ctx); err != nil {
					c.err = err
					break
				}
			}
		}
	}
	if c.err != nil && !serve.IsCancellation(c.err) {
		c.closeErr = c.err
		return nil, c.closeErr
	}
	c.finalizeReplicas()
	c.result = c.rollup()
	c.closeErr = c.err
	return c.result, c.closeErr
}

// finalizeReplicas finalizes every live replica; retired replicas were
// finalized at retirement.
func (c *Cluster) finalizeReplicas() {
	for _, r := range c.replicas {
		if r.result == nil {
			r.result = r.loop.Finalize()
		}
	}
}

// Snapshot digests the fleet rolling completion window — the online
// fleet-level view between turns, and the signal the autoscaler acts on.
func (c *Cluster) Snapshot() metrics.WindowSnapshot { return c.window.Snapshot() }

// ReplicaStatus is the per-replica counterpart of Snapshot: the live
// routing view plus the replica's own rolling window digest.
type ReplicaStatus struct {
	ReplicaView
	Retired bool
	// Forked marks replicas the autoscaler warm-started from the
	// template snapshot.
	Forked bool
	Routed int
	Window metrics.WindowSnapshot
}

// Status returns one entry per replica ever in the fleet, in ID order,
// retired members included.
func (c *Cluster) Status() []ReplicaStatus {
	out := make([]ReplicaStatus, 0, len(c.replicas))
	for _, r := range c.replicas {
		out = append(out, ReplicaStatus{
			ReplicaView: r.view(),
			Retired:     r.retired,
			Forked:      r.forked,
			Routed:      r.routed,
			Window:      r.window.Snapshot(),
		})
	}
	return out
}

// fleetTap is each replica's fleet-side observer: completions feed the
// replica and fleet windows and the roll-up counters before the event
// reaches the replica config's own observer (the Multi in addReplica
// orders fleet tap first, mirroring the session's engine-observer-first
// contract).
type fleetTap struct {
	c *Cluster
	r *replica
}

func (t *fleetTap) OnStep(events.Step) {}

func (t *fleetTap) OnAdmission(e events.Admission) {
	if e.PrefixProbed {
		t.r.window.ObservePrefix(e.CachedTokens, e.SharedBytes)
		t.c.window.ObservePrefix(e.CachedTokens, e.SharedBytes)
	}
}

func (t *fleetTap) OnFirstToken(events.FirstToken) {}
func (t *fleetTap) OnToken(events.Token)           {}
func (t *fleetTap) OnPreemption(events.Preemption) {}

func (t *fleetTap) OnCompletion(e events.Completion) {
	t.r.window.Observe(e.Clock, e.TTFT, e.TPOT, e.E2E, e.Output, e.SLOMet)
	t.c.window.Observe(e.Clock, e.TTFT, e.TPOT, e.E2E, e.Output, e.SLOMet)
	t.r.completed++
	t.r.tokens += int64(e.Output)
	if e.SLOMet {
		t.r.goodTokens += int64(e.Output)
		t.r.sloMet++
	}
}

// Replay drives a trace through a fresh fleet and closes it: requests
// are pushed in arrival order the moment the fleet frontier reaches them
// (or immediately when the fleet is idle, jumping the clock), so routing
// decisions are causal — the router sees replica state as of each
// arrival, not a fully pre-loaded fleet. The front-end therefore
// dispatches at turn boundaries: a request arriving mid-turn (during
// another request's prefill, say) is routed before the next turn, which
// is why a one-replica fleet matches a turn-boundary-driven serve.Loop
// bit for bit rather than serve.Run's pre-seeded queue. This is the
// offline load-curve driver the CLI, bench harness, and determinism
// tests all share.
func Replay(ctx context.Context, cfg Config, tr workload.Trace) (*Result, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	next := 0
	for {
		if next < len(tr) && (tr[next].Arrival <= c.Frontier() || c.Idle()) {
			if err := c.Push(tr[next]); err != nil {
				break // latched; Close reports it
			}
			next++
			continue
		}
		progressed, err := c.Advance(ctx)
		if err != nil || (!progressed && next >= len(tr)) {
			break
		}
	}
	return c.Close(ctx)
}
