package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// Finding is one resolved diagnostic: a concrete source position plus
// the analyzer that produced it. The "ignore" pseudo-analyzer reports
// malformed suppression comments and cannot itself be suppressed.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding the way compilers do:
// path:line:col: [analyzer] message.
func (f Finding) String() string {
	return f.Pos.String() + ": [" + f.Analyzer + "] " + f.Message
}

// IgnoreDirective is the comment prefix that suppresses a finding:
//
//	//alisa:ignore <analyzer> <reason>
//
// The directive applies to findings from <analyzer> on its own line and
// on the line directly below it (so it works both as a trailing comment
// and as a comment line above the flagged statement). The reason is
// mandatory — a bare suppression is itself reported, under the "ignore"
// pseudo-analyzer, and suppresses nothing.
const IgnoreDirective = "//alisa:ignore"

// suppression is one parsed //alisa:ignore directive.
type suppression struct {
	analyzer string
	line     int
}

// Run applies every analyzer to every loaded package (honoring each
// analyzer's Match), resolves suppression comments, and returns the
// surviving findings sorted by position. Malformed suppressions are
// returned as findings too.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		sup, malformed := collectSuppressions(pkg)
		findings = append(findings, malformed...)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if suppressed(sup, a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// collectSuppressions parses every //alisa:ignore directive in the
// package. Well-formed directives (analyzer name + non-empty reason)
// become suppressions; malformed ones become findings.
func collectSuppressions(pkg *Package) (map[string][]suppression, []Finding) {
	sup := make(map[string][]suppression)
	var malformed []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, IgnoreDirective)
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					malformed = append(malformed, Finding{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  "suppression requires an analyzer name and a reason: //alisa:ignore <analyzer> <reason>",
					})
					continue
				}
				sup[pos.Filename] = append(sup[pos.Filename], suppression{analyzer: fields[0], line: pos.Line})
			}
		}
	}
	return sup, malformed
}

// suppressed reports whether a finding from analyzer at pos is covered
// by a directive on the same line or the line directly above.
func suppressed(sup map[string][]suppression, analyzer string, pos token.Position) bool {
	for _, s := range sup[pos.Filename] {
		if s.analyzer != analyzer {
			continue
		}
		if s.line == pos.Line || s.line == pos.Line-1 {
			return true
		}
	}
	return false
}
