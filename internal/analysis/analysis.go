// Package analysis is the repo's static-contract framework: a
// self-contained reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus a package loader built on
// `go list -export` and the stdlib gc export-data importer.
//
// The toolchain image this repo builds under has no module cache and no
// network, so the x/tools module itself is unavailable; analyzers here
// are written against the same shape as x/tools analyzers — a Run
// function over a type-checked Pass — so porting them onto the real
// framework is a mechanical change of import path, not a rewrite.
//
// The framework exists to turn three repo-wide invariants from
// test-time luck into compile-time law (DESIGN.md §12):
//
//   - determinism: simulation packages never read wall clocks, global
//     RNG state, or map iteration order that can reach output;
//   - hot-path memory discipline: functions annotated //alisa:hotpath
//     stay free of the allocation idioms the serving-loop alloc guards
//     exist to catch;
//   - registry contracts: built-in schedulers and policies are reached
//     through their registries, never constructed directly.
//
// cmd/alisa-lint is the multichecker-style driver; analyzertest runs
// analyzers over fixture modules with // want expectations.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name findings are reported
// under, documentation, and a Run function applied to each loaded
// package. Match, when non-nil, restricts the analyzer to packages whose
// import path it accepts; a nil Match means every package.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //alisa:ignore suppression comments. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Match restricts the analyzer to accepted import paths (nil = all).
	Match func(pkgPath string) bool
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer, mirroring
// x/tools' analysis.Pass: syntax, type information, and a Report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Package is one loaded, parsed, type-checked package ready for
// analysis.
type Package struct {
	// Path is the package's import path (e.g. "repro/internal/serve").
	Path string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset positions every file in the load (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Pkg and Info are the type-checker's output.
	Pkg  *types.Package
	Info *types.Info
}
