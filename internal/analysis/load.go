package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Export     string
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") in dir the way the go tool
// does, then parses and type-checks every matched package against the
// export data of its dependencies. Test files are not loaded: the
// contracts the analyzers enforce bind the shipped simulator, and tests
// legitimately construct built-ins directly.
//
// The heavy lifting — dependency resolution and compilation — is
// delegated to `go list -export -deps`, so Load works offline on any
// tree the toolchain can build, with no third-party loader.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, errb.String())
	}

	var roots []*listPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(&out)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: loading %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			roots = append(roots, lp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	pkgs := make([]*Package, 0, len(roots))
	for _, lp := range roots {
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which the loader does not support", lp.ImportPath)
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  lp.ImportPath,
			Dir:   lp.Dir,
			Fset:  fset,
			Files: files,
			Pkg:   tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
