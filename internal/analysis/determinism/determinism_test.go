package determinism

import (
	"testing"

	"repro/internal/analysis/analyzertest"
)

// TestFixtures runs the analyzer (unscoped, so the fixture module's
// packages are in range) over the positive and negative fixtures,
// including the justified-suppression file.
func TestFixtures(t *testing.T) {
	analyzertest.Run(t, "../testdata/determinism", New(nil))
}

// TestMatchDefault pins the enforced package set: the simulation
// packages are in, their subpackages are in by prefix, and the
// wall-clock-legal layers (cmd, experiments, the lint suite itself)
// are out.
func TestMatchDefault(t *testing.T) {
	in := []string{
		"repro/internal/core",
		"repro/internal/serve",
		"repro/internal/cluster",
		"repro/internal/oracle",
		"repro/internal/metrics",
		"repro/internal/metrics/sketch",
		"repro/internal/sched",
		"repro/internal/attention",
		"repro/internal/trace",
		"repro/internal/workload",
	}
	out := []string{
		"repro",
		"repro/cmd/alisa-bench",
		"repro/internal/experiments",
		"repro/internal/analysis",
		"repro/internal/metricsfoo", // prefix match must not cross path segments
		"repro/internal/kvcache",
	}
	for _, p := range in {
		if !MatchDefault(p) {
			t.Errorf("MatchDefault(%q) = false, want true", p)
		}
	}
	for _, p := range out {
		if MatchDefault(p) {
			t.Errorf("MatchDefault(%q) = true, want false", p)
		}
	}
}

// TestProductionAnalyzerScoped verifies the production instance carries
// the scope: Analyzer.Match must be MatchDefault's behavior, so running
// the suite over cmd/ cannot flag benchmark wall-clock reads.
func TestProductionAnalyzerScoped(t *testing.T) {
	if Analyzer.Match == nil {
		t.Fatal("production determinism analyzer has no package scope")
	}
	if Analyzer.Match("repro/cmd/alisa-bench") {
		t.Error("production determinism analyzer must not cover cmd/alisa-bench")
	}
	if !Analyzer.Match("repro/internal/serve") {
		t.Error("production determinism analyzer must cover internal/serve")
	}
}
