// Package determinism enforces the simulator's bit-identical
// replay/fork contract (DESIGN.md §§9–11) mechanically: simulation
// packages must be pure functions of (seed, config), so they may not
// read wall clocks, draw from the process-global RNG, or let map
// iteration order reach anything a caller can observe.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Packages is the enforced set: every package whose state feeds a
// pinned, replayable result. Paths are prefixes — "repro/internal/metrics"
// covers metrics/sketch. cmd/ and the experiment drivers stay free to
// read wall clocks for benchmarking.
var Packages = []string{
	"repro/internal/core",
	"repro/internal/serve",
	"repro/internal/cluster",
	"repro/internal/oracle",
	"repro/internal/metrics",
	"repro/internal/sched",
	"repro/internal/attention",
	"repro/internal/trace",
	"repro/internal/workload",
}

// MatchDefault reports whether path falls under the enforced set.
func MatchDefault(path string) bool {
	for _, p := range Packages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// randAllowed are the package-level math/rand names that are
// deterministic given an explicit seed and therefore legal: stream and
// distribution constructors. Everything else at package level draws
// from the shared global source.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// New returns the analyzer restricted to packages accepted by match
// (nil = every package; the production configuration is MatchDefault).
func New(match func(string) bool) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:  "determinism",
		Doc:   "forbid wall clocks, global math/rand, and observable map iteration order in simulation packages",
		Match: match,
		Run:   run,
	}
}

// Analyzer is the production instance enforcing Packages.
var Analyzer = New(MatchDefault)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkForbiddenRef(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// checkForbiddenRef flags references to time.Now/time.Since and to
// package-level math/rand functions outside the seeded-constructor
// allowlist. Resolution is by type-checked object, so a local package
// alias cannot dodge the check.
func checkForbiddenRef(pass *analysis.Pass, sel *ast.SelectorExpr) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Only package-level functions: methods (e.g. (*rand.Rand).Intn,
	// (time.Time).Sub) carry their own explicit state and are fine.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if name := fn.Name(); name == "Now" || name == "Since" {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock; simulation time must come from the simulated clock so replay and fork stay bit-identical", name)
		}
	case "math/rand", "math/rand/v2":
		if !randAllowed[fn.Name()] {
			pass.Reportf(sel.Pos(), "global math/rand state (rand.%s) is shared across the process; draw from an explicitly seeded *rand.Rand stream instead", fn.Name())
		}
	}
}

// checkMapRanges flags `range` over a map whose body lets iteration
// order escape — an append, a channel send, a return, or an emit-style
// fmt call inside the loop. One escape is tolerated: appending into a
// slice that the same function later passes to a sort call, the
// canonical collect-then-sort idiom the registries use, because sorting
// erases the order again.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if _, isMap := pass.TypesInfo.TypeOf(rs.X).Underlying().(*types.Map); isMap {
				ranges = append(ranges, rs)
			}
		}
		return true
	})
	for _, rs := range ranges {
		if why := orderEscape(pass, body, rs); why != "" {
			pass.Reportf(rs.Pos(), "map iteration order reaches %s; iterate a sorted key list or sort the collected result (replay must be bit-identical)", why)
		}
	}
}

// orderEscape reports how iteration order leaks out of the map range,
// or "" when the body is order-insensitive under this analyzer's rules.
func orderEscape(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) string {
	why := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			why = "a return"
		case *ast.SendStmt:
			why = "a channel send"
		case *ast.CallExpr:
			switch {
			case isAppend(pass, n):
				if target, ok := n.Args[0].(*ast.Ident); ok && sortedAfter(pass, fnBody, rs, target) {
					return true
				}
				why = "an append"
			case isEmit(pass, n):
				why = "an emitted output"
			}
		}
		return true
	})
	return why
}

func isAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isEmit recognizes fmt printing calls — output a reader sees in
// iteration order.
func isEmit(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	return strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")
}

// sortFuncs are the sort/slices entry points that restore a
// deterministic order over a collected slice.
var sortFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"SortFunc": true, "SortStableFunc": true,
}

// sortedAfter reports whether target (the appended-to slice) is passed
// to a sort call after the range statement in the same function body,
// which restores a deterministic order.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, target *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[target]
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if !sortFuncs[fn.Name()] {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.Uses[arg] == obj {
			sorted = true
		}
		return true
	})
	return sorted
}
