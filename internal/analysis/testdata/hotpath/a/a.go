// Package a is the hotpath fixture: each forbidden allocation idiom in
// an annotated function, each with its legal twin, and the same idioms
// unflagged in an unannotated function.
package a

import "fmt"

type state struct {
	scratch []int
	sink    []string
}

func sinkAny(v any)     {}
func sinkInt(v int)     {}
func name(x int) string { return "x" }

//alisa:hotpath
func HotFmt(n int) string {
	s := fmt.Sprintf("%d", n) // want `fmt\.Sprintf allocates on the hot path`
	_ = fmt.Sprint(n)         // want `fmt\.Sprint allocates on the hot path`
	return s
}

//alisa:hotpath
func HotAppend(s *state, xs []int) {
	var grown []int
	empty := []int{}
	capless := make([]int, 0)
	capped := make([]int, 0, len(xs))
	out := s.scratch[:0]
	for _, x := range xs {
		grown = append(grown, x)     // want `append into "grown", declared without capacity`
		empty = append(empty, x)     // want `append into "empty", declared without capacity`
		capless = append(capless, x) // want `append into "capless", declared without capacity`
		capped = append(capped, x)   // ok: capacity preallocated
		out = append(out, x)         // ok: reused scratch
	}
	s.scratch = out
}

//alisa:hotpath
func HotClosure(xs []int) int {
	total := 0
	f := func() int { return total }         // want `closure captures "total" and escapes`
	func() { total++ }()                     // ok: immediately invoked
	g := func(a, b int) int { return a + b } // ok: captures nothing
	return f() + g(1, 2)
}

//alisa:hotpath
func HotBoxing(xs []int) error {
	for _, x := range xs {
		sinkAny(x) // want `passing concrete int to interface parameter`
		sinkInt(x) // ok: concrete parameter
		var e error = nil
		sinkAny(e) // ok: already an interface
		if x < 0 {
			return fmt.Errorf("negative %d", x) // ok: cold exit leaving the loop
		}
	}
	sinkAny(len(xs)) // ok: boxing outside any loop is a one-off
	return nil
}

//alisa:hotpath
func HotConversion(xs []int) {
	for _, x := range xs {
		_ = any(x) // want `conversion to interface any inside a loop`
	}
}

// ColdTwin runs every forbidden idiom unannotated: nothing fires.
func ColdTwin(xs []int) string {
	var grown []int
	for _, x := range xs {
		grown = append(grown, x)
		sinkAny(x)
	}
	f := func() int { return len(grown) }
	return fmt.Sprintf("%d", f())
}
