// Package exempt stands in for the package that defines the predicate:
// it must test context errors directly, and the analyzer's exempt list
// keeps it legal.
package exempt

import (
	"context"
	"errors"
)

func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
