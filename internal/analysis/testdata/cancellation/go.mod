module canfix

go 1.24
