// Package a is the cancellation fixture: hand-rolled context-error
// tests that should route through the one predicate.
package a

import (
	"context"
	"errors"
	"io"
)

func BadIs(err error) bool {
	return errors.Is(err, context.Canceled) // want `errors\.Is against context\.Canceled`
}

func BadChain(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) // want `context\.Canceled` `context\.DeadlineExceeded`
}

func BadCompare(err error) bool {
	return err == context.Canceled // want `comparing against context\.Canceled misses wrapped causes`
}

func BadCompareFlipped(err error) bool {
	return context.DeadlineExceeded != err // want `comparing against context\.DeadlineExceeded misses wrapped causes`
}

func OKOtherSentinel(err error) bool {
	return errors.Is(err, io.EOF) // ok: not a context sentinel
}

func OKCtxErrCall(ctx context.Context) error {
	return ctx.Err() // ok: reading the error is fine; testing it is not
}
