// Package use consumes the fixture registry from outside the owning
// package: by-name resolution is legal, direct construction is not.
package use

import "regfix/sched"

func Good() sched.Scheduler {
	s, err := sched.ByName("alisa")
	if err != nil {
		panic(err)
	}
	return s
}

func BadCall() sched.Scheduler {
	return sched.NewAlisa() // want `direct construction of built-in sched\.NewAlisa bypasses the registry`
}

func BadLit() sched.Scheduler {
	return &sched.Alisa{Beta: 0.5} // want `composite literal of built-in sched\.Alisa bypasses the registry`
}

func OKManual() sched.Scheduler {
	return sched.NewManual() // ok: parameterized ablation constructor, not registry-reachable
}

func OKTypeRef(s sched.Scheduler) bool {
	_, ok := s.(*sched.Alisa) // ok: type reference, not construction
	return ok
}
