// Package sched is the registry fixture's owning package: it defines a
// built-in with its constructor and the by-name lookup. Direct
// construction inside this package is the registry's own wiring and
// stays legal.
package sched

import "fmt"

type Scheduler interface{ Name() string }

type Alisa struct{ Beta float64 }

func (*Alisa) Name() string { return "alisa" }

// Manual is a parameterized ablation type deliberately outside the
// protected set.
type Manual struct{}

func (*Manual) Name() string { return "manual" }

func NewAlisa() *Alisa { return &Alisa{} }

func NewManual() *Manual { return &Manual{} }

func ByName(name string) (Scheduler, error) {
	if name == "alisa" {
		return NewAlisa(), nil
	}
	return nil, fmt.Errorf("unknown scheduler %q", name)
}
