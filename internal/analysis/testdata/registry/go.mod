module regfix

go 1.24
