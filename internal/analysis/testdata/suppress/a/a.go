// Package a is the malformed-suppression fixture: a reason-less
// //alisa:ignore suppresses nothing and is itself reported, and a
// directive naming a different analyzer does not cover the finding.
package a

import "time"

func Bare() time.Time {
	//alisa:ignore determinism
	t := time.Now()
	return t
}

func WrongAnalyzer() time.Time {
	t := time.Now() //alisa:ignore hotpath wrong analyzer name, does not cover determinism
	return t
}
