package a

import "time"

// Suppressed shows the escape hatch: a justified //alisa:ignore on the
// offending line (or the line directly above) swallows the finding.
// The bare-directive case lives in the suppress fixture module, where
// the malformed-suppression finding is asserted by message.
func Suppressed() time.Duration {
	start := time.Now() //alisa:ignore determinism coarse self-timing, never feeds results
	//alisa:ignore determinism coarse self-timing, never feeds results
	elapsed := time.Since(start)
	return elapsed
}
