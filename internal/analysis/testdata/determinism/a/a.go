// Package a is the determinism fixture: wall clocks, global RNG, and
// map-order escapes, next to their legal counterparts.
package a

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func WallClock() float64 {
	t := time.Now()        // want `time\.Now reads the wall clock`
	_ = time.Since(t)      // want `time\.Since reads the wall clock`
	_ = t.Sub(time.Time{}) // ok: method on an explicit value
	return 0
}

func GlobalRand() int {
	r := rand.New(rand.NewSource(1))   // ok: explicitly seeded stream
	_ = r.Intn(10)                     // ok: method on the stream
	_ = rand.NewZipf(r, 1.1, 1, 10)    // ok: distribution over the stream
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand state \(rand\.Shuffle\)`
	return rand.Intn(10)               // want `global math/rand state \(rand\.Intn\)`
}

func CollectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order reaches an append`
		out = append(out, k)
	}
	return out
}

func CollectSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // ok: sorted below, order erased
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func Count(m map[string]int) int {
	n := 0
	for range m { // ok: commutative accumulation only
		n++
	}
	return n
}

func FirstMatch(m map[string]int) string {
	for k, v := range m { // want `map iteration order reaches a return`
		if v > 0 {
			return k
		}
	}
	return ""
}

func Emit(m map[string]int) {
	for k := range m { // want `map iteration order reaches an emitted output`
		fmt.Println(k)
	}
}

func Send(m map[string]int, ch chan string) {
	for k := range m { // want `map iteration order reaches a channel send`
		ch <- k
	}
}

func OverSlice(xs []int, ch chan int) {
	for _, x := range xs { // ok: slices iterate in order
		ch <- x
	}
}
