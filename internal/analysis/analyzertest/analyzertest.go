// Package analyzertest runs analyzers over fixture modules and checks
// their findings against // want comments, mirroring the x/tools
// analysistest contract: every finding must be expected, and every
// expectation must fire.
//
// Fixtures live under a testdata directory, each as its own tiny Go
// module (go tooling ignores testdata, so the inner go.mod never leaks
// into the outer build). Expectations annotate the offending line:
//
//	t := time.Now() // want `time\.Now`
//
// One backquoted (or double-quoted) regexp per expected finding; a line
// with two findings carries two patterns. The runner applies the same
// pipeline as cmd/alisa-lint — including //alisa:ignore suppression
// resolution — so fixtures can also assert that suppressions hold and
// that bare suppressions are themselves reported (as analyzer
// "ignore").
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe pulls the patterns off a want comment: backquoted or
// double-quoted strings after "// want".
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads the fixture module rooted at dir, applies the analyzers,
// and reports every mismatch between findings and // want comments on
// t.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectWants(t, pkg.Fset, f, func(file string, line int, re *regexp.Regexp) {
				k := key{file, line}
				wants[k] = append(wants[k], re)
			})
		}
	}

	matched := make(map[key][]bool)
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, fd := range findings {
		k := key{fd.Pos.Filename, fd.Pos.Line}
		ok := false
		for i, re := range wants[k] {
			if re.MatchString(fd.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", fd)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// collectWants scans a file's comments for want expectations and emits
// (file, line, pattern) triples.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, emit func(string, int, *regexp.Regexp)) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			idx := strings.Index(c.Text, "// want ")
			if idx < 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, raw := range wantRe.FindAllString(c.Text[idx+len("// want "):], -1) {
				pat := raw
				if pat[0] == '`' {
					pat = pat[1 : len(pat)-1]
				} else {
					unq, err := strconv.Unquote(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, raw, err)
					}
					pat = unq
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
				}
				emit(pos.Filename, pos.Line, re)
			}
		}
	}
}

// Findings loads dir and returns the raw finding list — for tests that
// assert on counts or exact messages rather than per-line wants.
func Findings(dir string, analyzers ...*analysis.Analyzer) ([]analysis.Finding, error) {
	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		return nil, fmt.Errorf("loading fixture %s: %w", dir, err)
	}
	return analysis.Run(pkgs, analyzers)
}
