package registry

import (
	"testing"

	"repro/internal/analysis/analyzertest"
)

// TestFixtures runs the analyzer, configured for the fixture module's
// own registry package, over legal by-name resolution and the two
// direct-construction bypasses (constructor call, composite literal).
// The owning package constructs its built-in freely.
func TestFixtures(t *testing.T) {
	a := New(Config{
		"regfix/sched": {
			Constructors: []string{"NewAlisa"},
			Types:        []string{"Alisa"},
		},
	})
	analyzertest.Run(t, "../testdata/registry", a)
}

// TestDefaultConfigCoversEvaluationSets pins the production config to
// the registered builtin sets: every sched registry name's constructor
// and every attention comparison policy is protected.
func TestDefaultConfigCoversEvaluationSets(t *testing.T) {
	sched := DefaultConfig["repro/internal/sched"]
	attn := DefaultConfig["repro/internal/attention"]
	wantSched := []string{"NewAlisa", "NewFlexGen", "NewVLLM", "NewDeepSpeed", "NewHFAccelerate", "NewGPUOnly", "NewNoCache"}
	wantAttn := []string{"NewDense", "NewLocal", "NewStrided", "NewSWA", "NewH2O"}
	if got, want := len(sched.Constructors), len(wantSched); got != want {
		t.Fatalf("sched constructors: got %d, want %d", got, want)
	}
	for i, n := range wantSched {
		if sched.Constructors[i] != n {
			t.Errorf("sched constructor %d = %q, want %q", i, sched.Constructors[i], n)
		}
	}
	for i, n := range wantAttn {
		if attn.Constructors[i] != n {
			t.Errorf("attention constructor %d = %q, want %q", i, attn.Constructors[i], n)
		}
	}
	if len(sched.Types) != len(sched.Constructors) || len(attn.Types) != len(attn.Constructors) {
		t.Error("every protected constructor needs its composite-literal type protected too")
	}
}
